// Package caai is a from-scratch reproduction of "TCP Congestion Avoidance
// Algorithm Identification" (Yang, Shao, Luo, Xu, Deogun, Lu -- ICDCS 2011
// / IEEE/ACM ToN 2014): an active measurement tool that identifies which
// TCP congestion avoidance algorithm a remote Web server runs, together
// with the simulated Internet it is evaluated against.
//
// The package is a facade over the building blocks in internal/:
//
//   - internal/cc: the 14 congestion avoidance algorithms (RENO, BIC,
//     CTCP1/2, CUBIC1/2, HSTCP, HTCP, ILLINOIS, STCP, VEGAS, VENO,
//     WESTWOOD+, YEAH) ported from the Linux kernel / CTCP paper.
//   - internal/tcpsim + internal/websim: the simulated Web servers.
//   - internal/probe: CAAI step 1 (trace gathering in emulated network
//     environments A and B).
//   - internal/feature: CAAI step 2 (feature extraction).
//   - internal/forest: CAAI step 3 (random forest classification).
//   - internal/census: the 63 124-server measurement study.
//
// Quick start:
//
//	id, err := caai.Train(caai.TrainingOptions{ConditionsPerPair: 25})
//	if err != nil { ... }
//	server := caai.NewTestbedServer("CUBIC2")
//	rng := rand.New(rand.NewSource(1))
//	result := id.Identify(server, caai.LosslessCondition(), rng)
//	fmt.Println(result) // CUBIC2 (confidence 98%, wmax=512, mss=100)
package caai

import (
	"math/rand"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/feature"
	"repro/internal/forest"
	"repro/internal/netem"
	"repro/internal/probe"
	"repro/internal/trace"
	"repro/internal/websim"
)

// Re-exported result and configuration types. (Aliases keep the in-module
// examples and tools on one import path.)
type (
	// Server is a simulated Web server (see NewTestbedServer).
	Server = websim.Server
	// Condition is a network condition between prober and server.
	Condition = netem.Condition
	// Identification is the outcome of identifying one server.
	Identification = core.Identification
	// Vector is the extracted feature vector.
	Vector = feature.Vector
	// Trace is a gathered window trace.
	Trace = trace.Trace
	// ProbeConfig tunes trace gathering (zero value = paper defaults).
	ProbeConfig = probe.Config
	// Algorithm is the congestion avoidance extension point: implement
	// it to fingerprint your own algorithm (see examples/customcc).
	Algorithm = cc.Algorithm
	// Conn is the congestion state an Algorithm manipulates.
	Conn = cc.Conn
)

// Labels re-exported from the pipeline.
const (
	// LabelUnsure is reported below the 40% confidence threshold.
	LabelUnsure = core.LabelUnsure
	// LabelRCSmall merges RENO/CTCP at small wmax thresholds.
	LabelRCSmall = core.LabelRCSmall
)

// TrainingOptions configures Train.
type TrainingOptions struct {
	// ConditionsPerPair is the number of emulated network conditions
	// per (algorithm, wmax) pair; the paper uses 100 (5600 vectors).
	ConditionsPerPair int
	// Trees and Subspace are the random forest parameters K and F
	// (paper: 80 and 4).
	Trees    int
	Subspace int
	// Seed makes training deterministic.
	Seed int64
}

// Identifier is a trained CAAI instance. Safe for concurrent use.
type Identifier struct {
	core    *core.Identifier
	dataset *forest.Dataset
}

// Train builds the training set on the emulated testbed and trains the
// random forest, returning a ready-to-use identifier.
func Train(opts TrainingOptions) (*Identifier, error) {
	ds, err := core.GenerateTrainingSet(netem.MeasuredDatabase(), core.TrainingConfig{
		ConditionsPerPair: opts.ConditionsPerPair,
		Seed:              opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	model := forest.Train(ds, forest.Config{
		Trees:    opts.Trees,
		Subspace: opts.Subspace,
		Seed:     opts.Seed + 1,
	})
	return &Identifier{core: core.NewIdentifier(model), dataset: ds}, nil
}

// Identify runs the full CAAI pipeline against server under cond: ladder
// probing in environments A and B, feature extraction, special-case
// detection, and random forest classification with the Unsure rule.
func (id *Identifier) Identify(server *Server, cond Condition, rng *rand.Rand) Identification {
	return id.core.Identify(server, cond, ProbeConfig{}, rng)
}

// IdentifyWithConfig is Identify with a custom probe configuration.
func (id *Identifier) IdentifyWithConfig(server *Server, cond Condition, cfg ProbeConfig, rng *rand.Rand) Identification {
	return id.core.Identify(server, cond, cfg, rng)
}

// TrainingSet exposes the generated training vectors.
func (id *Identifier) TrainingSet() *forest.Dataset { return id.dataset }

// Algorithms lists the 14 supported congestion avoidance algorithms.
func Algorithms() []string { return cc.CAAINames() }

// NewAlgorithm instantiates a registered algorithm by name.
func NewAlgorithm(name string) (Algorithm, error) { return cc.New(name) }

// NewTestbedServer returns a cooperative lab server running the named
// algorithm (unlimited pipelining, an effectively infinite page).
func NewTestbedServer(algorithm string) *Server { return websim.Testbed(algorithm) }

// LosslessCondition returns the ideal testbed network condition.
func LosslessCondition() Condition { return netem.Lossless }

// SampleCondition draws a realistic Internet condition from the paper's
// measured RTT/loss distributions (Figs. 4, 10, 11).
func SampleCondition(rng *rand.Rand) Condition {
	return netem.MeasuredDatabase().Sample(rng)
}

// GatherTraces runs only CAAI step 1 against server: environment A and B
// trace gathering with the wmax/MSS ladders. Useful for inspecting raw
// window traces.
func GatherTraces(server *Server, cond Condition, cfg ProbeConfig, rng *rand.Rand) (ta, tb *Trace, wmax int, valid bool) {
	p := probe.New(cfg, cond, rng)
	res := p.Gather(server)
	return res.TraceA, res.TraceB, res.Wmax, res.Valid
}

// ExtractFeatures runs only CAAI step 2 on a gathered trace pair.
func ExtractFeatures(ta, tb *Trace) Vector { return feature.Extract(ta, tb) }

// DefaultInterEnvWait is the paper's wait between environments A and B.
const DefaultInterEnvWait = 10 * time.Minute
