// Package caai is a from-scratch reproduction of "TCP Congestion Avoidance
// Algorithm Identification" (Yang, Shao, Luo, Xu, Deogun, Lu -- ICDCS 2011
// / IEEE/ACM ToN 2014): an active measurement tool that identifies which
// TCP congestion avoidance algorithm a remote Web server runs, together
// with the simulated Internet it is evaluated against.
//
// The package is a facade over the building blocks in internal/:
//
//   - internal/cc: the 14 congestion avoidance algorithms (RENO, BIC,
//     CTCP1/2, CUBIC1/2, HSTCP, HTCP, ILLINOIS, STCP, VEGAS, VENO,
//     WESTWOOD+, YEAH) ported from the Linux kernel / CTCP paper.
//   - internal/tcpsim + internal/websim: the simulated Web servers.
//   - internal/probe: CAAI step 1 (trace gathering in emulated network
//     environments A and B).
//   - internal/feature: CAAI step 2 (feature extraction).
//   - internal/classify: the pluggable classifier abstraction of CAAI
//     step 3, plus model persistence (save a trained model once, load it
//     everywhere).
//   - internal/forest: the paper's random forest backend.
//   - internal/ml: the Weka-comparison backends (kNN, naive Bayes,
//     decision tree, neural net, linear SVM), all behind the same
//     Classifier interface.
//   - internal/engine: the bounded worker-pool execution layer used for
//     training-set generation, batched identification, and the census.
//   - internal/service: identification-as-a-service -- the HTTP/JSON API
//     behind cmd/caai-serve, with an async job queue, a hot-swappable
//     model registry, and an LRU result cache.
//   - internal/census: the 63 124-server measurement study.
//
// Quick start (train, identify one server):
//
//	id, err := caai.Train(caai.TrainingOptions{ConditionsPerPair: 25})
//	if err != nil { ... }
//	server := caai.NewTestbedServer("CUBIC2")
//	rng := rand.New(rand.NewSource(1))
//	result := id.Identify(server, caai.LosslessCondition(), rng)
//	fmt.Println(result) // CUBIC2 (confidence 98%, wmax=512, mss=100)
//
// Train once, identify many (the production flow):
//
//	id, _ := caai.Train(caai.TrainingOptions{ConditionsPerPair: 100})
//	_ = id.SaveModel("caai-model.json")
//	...
//	id, _ = caai.LoadModel("caai-model.json") // no retraining
//	jobs := []caai.BatchJob{{Server: s1, Cond: c1}, {Server: s2, Cond: c2}}
//	for _, r := range id.IdentifyBatch(jobs, caai.BatchOptions{}) {
//		fmt.Println(r.Out)
//	}
//
// Alternative classifier backends (the paper's Weka comparison):
//
//	id, _ := caai.TrainWithClassifier(caai.TrainingOptions{}, "knn")
//
// Serving identifications over HTTP (the resident-service flow): train
// and save a model as above, then run cmd/caai-serve against it -- it
// loads models once, answers POST /v1/identify and async POST /v1/batch
// jobs, hot-swaps retrained model files via POST /v1/models/reload, and
// caches repeated identifications. See the README's "Serving
// identifications" section for the HTTP API.
package caai

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/cc"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/feature"
	"repro/internal/flow"
	"repro/internal/forest"
	"repro/internal/ml"
	"repro/internal/netem"
	"repro/internal/probe"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/websim"
)

// Re-exported result and configuration types. (Aliases keep the in-module
// examples and tools on one import path.)
type (
	// Server is a simulated Web server (see NewTestbedServer).
	Server = websim.Server
	// Condition is a network condition between prober and server.
	Condition = netem.Condition
	// Identification is the outcome of identifying one server.
	Identification = core.Identification
	// Vector is the extracted feature vector.
	Vector = feature.Vector
	// Trace is a gathered window trace.
	Trace = trace.Trace
	// ProbeConfig tunes trace gathering (zero value = paper defaults).
	ProbeConfig = probe.Config
	// Algorithm is the congestion avoidance extension point: implement
	// it to fingerprint your own algorithm (see examples/customcc).
	Algorithm = cc.Algorithm
	// Conn is the congestion state an Algorithm manipulates.
	Conn = cc.Conn
	// Classifier is the pluggable classification backend interface; any
	// implementation can drive the pipeline (see TrainWithClassifier).
	Classifier = classify.Classifier
	// BatchJob is one (server, condition) identification request for
	// IdentifyBatch. A zero Seed derives a per-job seed deterministically.
	BatchJob = engine.Job
	// BatchResult pairs a BatchJob with its Identification.
	BatchResult = engine.Result[core.Identification]
	// BatchOptions tunes IdentifyBatch (parallelism, probe config, seed,
	// and an optional streaming OnResult callback).
	BatchOptions = engine.BatchConfig[core.Identification]
	// FlowIdentification is the classification of one captured flow pair
	// (see Identifier.IdentifyCapture).
	FlowIdentification = flow.FlowIdentification
	// CaptureStats summarizes one ingested packet capture.
	CaptureStats = flow.CaptureStats
	// CaptureOptions tunes capture ingestion (tracker bounds,
	// classification parallelism, optional per-stage span recording).
	CaptureOptions = flow.IdentifyOptions
	// StreamOptions tunes Identifier.IdentifyStream (decode sharding,
	// ingest ring size, tracker bounds, pairing depth).
	StreamOptions = flow.IdentifyStreamOptions
	// CaptureStream is a running streaming-identification pipeline: an
	// io.Writer fed capture bytes, emitting classified flows as they
	// close (see Identifier.IdentifyStream).
	CaptureStream = flow.IdentifyStream
	// StageTimings is one identification's per-stage wall-clock span
	// breakdown (see Identification.Timings and IdentifyTimed); index it
	// with the Stage* constants.
	StageTimings = telemetry.StageTimings
	// Stage indexes a StageTimings entry.
	Stage = telemetry.Stage
)

// Pipeline stages re-exported for StageTimings consumers.
const (
	StageQueueWait = telemetry.StageQueueWait
	StageGather    = telemetry.StageGather
	StageFeature   = telemetry.StageFeature
	StageClassify  = telemetry.StageClassify
	StageCache     = telemetry.StageCache
	NumStages      = telemetry.NumStages
)

// Labels re-exported from the pipeline.
const (
	// LabelUnsure is reported below the 40% confidence threshold.
	LabelUnsure = core.LabelUnsure
	// LabelRCSmall merges RENO/CTCP at small wmax thresholds.
	LabelRCSmall = core.LabelRCSmall
)

// TrainingOptions configures Train.
type TrainingOptions struct {
	// ConditionsPerPair is the number of emulated network conditions
	// per (algorithm, wmax) pair; the paper uses 100 (5600 vectors).
	ConditionsPerPair int
	// Trees and Subspace are the random forest parameters K and F
	// (paper: 80 and 4), honored by Train and TrainWithClassifier's
	// forest backend; the non-forest backends ignore them.
	Trees    int
	Subspace int
	// Seed makes training deterministic.
	Seed int64
	// Parallelism bounds concurrent trace gathering on the worker pool;
	// 0 uses all CPUs.
	Parallelism int
}

// Identifier is a trained CAAI instance. Safe for concurrent use.
type Identifier struct {
	core    *core.Identifier
	model   classify.Classifier
	dataset *forest.Dataset
}

// Train builds the training set on the emulated testbed and trains the
// paper's random forest, returning a ready-to-use identifier.
func Train(opts TrainingOptions) (*Identifier, error) {
	ds, err := generateTrainingSet(opts)
	if err != nil {
		return nil, err
	}
	model := forest.Train(ds, forest.Config{
		Trees:    opts.Trees,
		Subspace: opts.Subspace,
		Seed:     opts.Seed + 1,
	})
	return newIdentifier(model, ds), nil
}

// TrainWithClassifier is Train with a pluggable backend: "randomforest"
// (the paper's choice), "knn", "naivebayes", "decisiontree", "neuralnet",
// or "linearsvm" (short aliases like "forest", "bayes", "tree", "mlp",
// "svm" also work). Only the random forest backend supports SaveModel.
func TrainWithClassifier(opts TrainingOptions, backend string) (*Identifier, error) {
	ds, err := generateTrainingSet(opts)
	if err != nil {
		return nil, err
	}
	model, err := ml.NewByName(backend, ds, ml.Params{
		Seed:     opts.Seed + 1,
		Trees:    opts.Trees,
		Subspace: opts.Subspace,
	})
	if err != nil {
		return nil, err
	}
	return newIdentifier(model, ds), nil
}

// ClassifierBackends lists the backend names TrainWithClassifier accepts.
func ClassifierBackends() []string { return ml.Backends() }

func generateTrainingSet(opts TrainingOptions) (*forest.Dataset, error) {
	return core.GenerateTrainingSet(netem.MeasuredDatabase(), core.TrainingConfig{
		ConditionsPerPair: opts.ConditionsPerPair,
		Seed:              opts.Seed,
		Parallelism:       opts.Parallelism,
	})
}

func newIdentifier(model classify.Classifier, ds *forest.Dataset) *Identifier {
	return &Identifier{core: core.NewIdentifier(model), model: model, dataset: ds}
}

// Identify runs the full CAAI pipeline against server under cond: ladder
// probing in environments A and B, feature extraction, special-case
// detection, and classification with the Unsure rule.
func (id *Identifier) Identify(server *Server, cond Condition, rng *rand.Rand) Identification {
	return id.core.Identify(server, cond, ProbeConfig{}, rng)
}

// IdentifyWithConfig is Identify with a custom probe configuration.
func (id *Identifier) IdentifyWithConfig(server *Server, cond Condition, cfg ProbeConfig, rng *rand.Rand) Identification {
	return id.core.Identify(server, cond, cfg, rng)
}

// IdentifyTimed is Identify with per-stage span recording: the returned
// Identification's Timings carries the gather / feature / classify
// wall-clock breakdown (see cmd/caai-probe -timings). Results are
// otherwise identical to Identify.
func (id *Identifier) IdentifyTimed(server *Server, cond Condition, cfg ProbeConfig, rng *rand.Rand) Identification {
	sess := id.core.NewSession()
	sess.EnableTimings(nil)
	return sess.Identify(server, cond, cfg, rng)
}

// IdentifyBatch probes every job on a bounded worker pool and returns the
// identifications in input order. Results are deterministic for a fixed
// (jobs, opts.Seed) regardless of opts.Parallelism; set opts.OnResult to
// stream results as they complete. Each pool worker runs a reusable
// block-inference session: it recycles probe and feature scratch across
// its jobs and gathers their feature vectors into blocks, so the model
// classifies up to 64 probes in one batched inference call instead of
// walking every tree per job. Block grouping never changes an outcome
// (batched classification is bit-identical to scalar), it only changes
// when results land: streaming arrives in block-sized bursts.
func (id *Identifier) IdentifyBatch(jobs []BatchJob, opts BatchOptions) []BatchResult {
	if opts.NewWorkerIdentifier == nil && opts.NewWorkerBlock == nil {
		opts.NewWorkerBlock = func() engine.BlockIdentifier[core.Identification] {
			return id.core.NewBlockSession()
		}
	}
	return engine.IdentifyBatch[core.Identification](id.core, jobs, opts)
}

// IdentifyCapture runs the passive pipeline against a pcap or pcapng
// stream: decode, per-flow TCP reassembly and congestion-window
// reconstruction, environment pairing, and classification -- the
// capture-ingestion counterpart of Identify for traffic that was recorded
// rather than probed. The stream is decoded incrementally in bounded
// memory. See cmd/caai-pcap for the command-line front end and the
// service's POST /v1/pcap for the HTTP one.
func (id *Identifier) IdentifyCapture(r io.Reader, opts CaptureOptions) ([]FlowIdentification, CaptureStats, error) {
	return flow.IdentifyCapture(r, id.model, opts)
}

// IdentifyStream starts the streaming form of IdentifyCapture for live
// or unbounded captures: write pcap/pcapng bytes into the returned
// stream as they arrive (any chunking) and onResult fires -- serially,
// from the pipeline's emitter goroutine -- for each flow pair the moment
// it closes, rather than at end of input. Flows close when idle past the
// expiry threshold, when evicted by the tracker bound, or when Close
// drains the pipeline. Decode parallelizes across 4-tuple shards; every
// pipeline stage is bounded, so Write blocks (backpressure) instead of
// growing memory when classification falls behind. Callers must Close
// (or Abort) the stream exactly once. See cmd/caai-pcap -follow and the
// service's POST /v1/pcap/stream for the command-line and HTTP fronts.
func (id *Identifier) IdentifyStream(ctx context.Context, opts StreamOptions, onResult func(FlowIdentification)) *CaptureStream {
	return flow.NewIdentifyStream(ctx, id.model, opts, onResult)
}

// SaveModel writes the trained model to path so later runs can LoadModel
// instead of retraining. The backend must have a registered persistence
// codec (the random forest does).
func (id *Identifier) SaveModel(path string) error {
	if err := classify.SaveFile(path, id.model); err != nil {
		return fmt.Errorf("caai: saving model: %w", err)
	}
	return nil
}

// LoadModel reads a model saved with SaveModel and returns a ready
// identifier without regenerating the training set. The loaded model
// reproduces the saved model's classifications exactly. TrainingSet
// returns nil on a loaded identifier.
func LoadModel(path string) (*Identifier, error) {
	model, err := classify.LoadFile(path)
	if err != nil {
		return nil, fmt.Errorf("caai: loading model: %w", err)
	}
	return newIdentifier(model, nil), nil
}

// NewIdentifierFromClassifier wraps an already trained (or loaded)
// classifier in a ready identifier, for callers that manage models
// themselves (custom registries, out-of-tree persistence) rather than
// going through Train or LoadModel. TrainingSet returns nil on the
// result.
func NewIdentifierFromClassifier(c Classifier) *Identifier {
	return newIdentifier(c, nil)
}

// Classifier exposes the trained classification backend.
func (id *Identifier) Classifier() Classifier { return id.model }

// TrainingSet exposes the generated training vectors (nil for identifiers
// restored with LoadModel).
func (id *Identifier) TrainingSet() *forest.Dataset { return id.dataset }

// Algorithms lists the 14 supported congestion avoidance algorithms.
func Algorithms() []string { return cc.CAAINames() }

// NewAlgorithm instantiates a registered algorithm by name.
func NewAlgorithm(name string) (Algorithm, error) { return cc.New(name) }

// NewTestbedServer returns a cooperative lab server running the named
// algorithm (unlimited pipelining, an effectively infinite page).
func NewTestbedServer(algorithm string) *Server { return websim.Testbed(algorithm) }

// LosslessCondition returns the ideal testbed network condition.
func LosslessCondition() Condition { return netem.Lossless }

// SampleCondition draws a realistic Internet condition from the paper's
// measured RTT/loss distributions (Figs. 4, 10, 11).
func SampleCondition(rng *rand.Rand) Condition {
	return netem.MeasuredDatabase().Sample(rng)
}

// GatherTraces runs only CAAI step 1 against server: environment A and B
// trace gathering with the wmax/MSS ladders. Useful for inspecting raw
// window traces.
func GatherTraces(server *Server, cond Condition, cfg ProbeConfig, rng *rand.Rand) (ta, tb *Trace, wmax int, valid bool) {
	p := probe.New(cfg, cond, rng)
	res := p.Gather(server)
	return res.TraceA, res.TraceB, res.Wmax, res.Valid
}

// ExtractFeatures runs only CAAI step 2 on a gathered trace pair.
func ExtractFeatures(ta, tb *Trace) Vector { return feature.Extract(ta, tb) }

// DefaultInterEnvWait is the paper's wait between environments A and B.
const DefaultInterEnvWait = 10 * time.Minute
