// Tracegallery: render Fig. 3 -- the window traces of all 14 TCP
// congestion avoidance algorithms in emulated environments A and B -- as
// ASCII charts.
//
//	go run ./examples/tracegallery
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	ctx := experiments.NewQuickContext()
	results, _, err := experiments.Fig3(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		series := map[string][]int{
			"env A": append(append([]int{}, r.TraceA.Pre...), r.TraceA.Post...),
			"env B": append(append([]int{}, r.TraceB.Pre...), r.TraceB.Post...),
		}
		fmt.Println(experiments.AsciiChart("Fig. 3: "+r.Algorithm, series, 14))
		fmt.Println()
	}
}
