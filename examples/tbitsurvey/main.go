// Tbitsurvey: probe the TCP components CAAI does NOT identify.
//
// The paper identifies only the congestion avoidance component and defers
// the initial window and loss recovery components to TBIT (Padhye & Floyd,
// SIGCOMM 2001), whose code CAAI extends. This example runs the
// reimplemented TBIT probes against a spread of server stacks and also
// demonstrates the Section IV-B result: measuring the multiplicative
// decrease through a *loss event* is wrecked by Linux burstiness control,
// which is why CAAI emulates timeouts.
//
//	go run ./examples/tbitsurvey
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	ctx := experiments.NewQuickContext()

	survey, err := experiments.TBITSurvey(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(survey)

	tvl, err := experiments.TimeoutVsLossEvent(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tvl)
}
