// Quickstart: train CAAI and identify the congestion avoidance algorithm
// of a simulated Web server, end to end.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	caai "repro"
)

func main() {
	// Train on the emulated testbed: 14 algorithms x 4 wmax thresholds
	// x 20 network conditions (the paper uses 100 per pair).
	fmt.Println("training CAAI...")
	id, err := caai.Train(caai.TrainingOptions{ConditionsPerPair: 20, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// A remote Web server whose TCP algorithm we do not know. Here we
	// simulate one running CUBIC (Linux >= 2.6.26) behind a realistic
	// Internet path.
	server := caai.NewTestbedServer("CUBIC2")
	rng := rand.New(rand.NewSource(42))
	cond := caai.SampleCondition(rng)
	fmt.Printf("probing %s over path %s\n", server.Name, cond)

	// The three CAAI steps, one call: gather window traces in emulated
	// network environments A and B, extract the beta / growth features,
	// classify with the random forest.
	result := id.Identify(server, cond, rng)
	fmt.Println("identification:", result)
	fmt.Println("feature vector:", result.Vector)

	// The raw traces are available too.
	ta, tb, wmax, valid := caai.GatherTraces(server, cond, caai.ProbeConfig{}, rng)
	if valid {
		fmt.Printf("\nraw trace (env A, wmax=%d):\n  %s\n", wmax, ta)
		fmt.Printf("raw trace (env B):\n  %s\n", tb)
	}

	// Production flow: persist the trained model and identify a whole
	// fleet in one batched call on the worker pool -- no retraining.
	path := filepath.Join(os.TempDir(), "caai-quickstart-model.json")
	if err := id.SaveModel(path); err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)
	loaded, err := caai.LoadModel(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreloaded %s model from %s\n", loaded.Classifier().Name(), path)

	jobs := make([]caai.BatchJob, 0, 6)
	for _, alg := range []string{"RENO", "BIC", "CUBIC2", "STCP", "VEGAS", "HTCP"} {
		jobs = append(jobs, caai.BatchJob{Server: caai.NewTestbedServer(alg), Cond: caai.LosslessCondition()})
	}
	for _, r := range loaded.IdentifyBatch(jobs, caai.BatchOptions{Seed: 9}) {
		fmt.Printf("  %-10s -> %s\n", r.Job.Server.Name, r.Out)
	}
}
