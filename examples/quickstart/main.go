// Quickstart: train CAAI and identify the congestion avoidance algorithm
// of a simulated Web server, end to end.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	caai "repro"
)

func main() {
	// Train on the emulated testbed: 14 algorithms x 4 wmax thresholds
	// x 20 network conditions (the paper uses 100 per pair).
	fmt.Println("training CAAI...")
	id, err := caai.Train(caai.TrainingOptions{ConditionsPerPair: 20, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// A remote Web server whose TCP algorithm we do not know. Here we
	// simulate one running CUBIC (Linux >= 2.6.26) behind a realistic
	// Internet path.
	server := caai.NewTestbedServer("CUBIC2")
	rng := rand.New(rand.NewSource(42))
	cond := caai.SampleCondition(rng)
	fmt.Printf("probing %s over path %s\n", server.Name, cond)

	// The three CAAI steps, one call: gather window traces in emulated
	// network environments A and B, extract the beta / growth features,
	// classify with the random forest.
	result := id.Identify(server, cond, rng)
	fmt.Println("identification:", result)
	fmt.Println("feature vector:", result.Vector)

	// The raw traces are available too.
	ta, tb, wmax, valid := caai.GatherTraces(server, cond, caai.ProbeConfig{}, rng)
	if valid {
		fmt.Printf("\nraw trace (env A, wmax=%d):\n  %s\n", wmax, ta)
		fmt.Printf("raw trace (env B):\n  %s\n", tb)
	}
}
