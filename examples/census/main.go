// Census: a scaled-down version of the paper's Internet measurement with
// ground-truth checking.
//
// It generates 1000 synthetic Web servers (realistic page sizes, request
// limits, stack quirks, and a Table IV-like algorithm mix), probes each
// with the full CAAI ladder, prints the Table IV layout, and -- because
// the simulation knows the ground truth the real study could not -- the
// identification accuracy.
//
//	go run ./examples/census
package main

import (
	"fmt"
	"log"

	"repro/internal/census"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/netem"
)

func main() {
	ctx := experiments.NewQuickContext()
	ctx.TrainingConditions = 25

	fmt.Println("training CAAI...")
	model, err := ctx.Model()
	if err != nil {
		log.Fatal(err)
	}
	id := core.NewIdentifier(model)

	cfg := census.DefaultPopulationConfig()
	cfg.Servers = 1000
	pop := census.GeneratePopulation(cfg)
	fmt.Printf("probing %d servers...\n\n", len(pop))

	report := census.Run(pop, id, netem.MeasuredDatabase(), census.RunConfig{Seed: 1})
	fmt.Println(report.TableIV())
	fmt.Printf("BIC+CUBIC share of valid traces: %.2f%% (paper: 46.92%%)\n",
		report.LabelShare("BIC")+report.LabelShare("CUBIC1")+report.LabelShare("CUBIC2"))
	fmt.Printf("ground-truth agreement on ordinary valid traces: %.2f%%\n", report.Accuracy()*100)
}
