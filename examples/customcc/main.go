// Customcc: fingerprint a user-defined congestion avoidance algorithm.
//
// The paper's motivation notes that "Linux developers can even design and
// then add their own TCP algorithms"; this example implements one (an
// AIMD with beta=2/3 and increase 3/RTT), gathers its window traces, and
// shows that a trained CAAI reports it as UNSURE or misclassifies it with
// low confidence -- exactly how an unknown algorithm shows up in the
// census.
//
//	go run ./examples/customcc
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	caai "repro"
)

// myAIMD is a homegrown congestion avoidance algorithm: slow start, then
// +3 packets per RTT, and a multiplicative decrease of 2/3.
type myAIMD struct{}

var _ caai.Algorithm = (*myAIMD)(nil)

func (*myAIMD) Name() string         { return "MY-AIMD" }
func (*myAIMD) Reset(*caai.Conn)     {}
func (*myAIMD) OnTimeout(*caai.Conn) {}
func (*myAIMD) OnAck(c *caai.Conn, _ int, _ time.Duration) {
	if c.InSlowStart() {
		c.Cwnd++
		return
	}
	c.Cwnd += 3 / c.Cwnd
}
func (*myAIMD) Ssthresh(c *caai.Conn) float64 {
	return math.Max(c.Cwnd*2/3, 2)
}

func main() {
	id, err := caai.Train(caai.TrainingOptions{ConditionsPerPair: 20, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	server := caai.NewTestbedServer("RENO") // base config...
	server.Name = "my-custom-server"
	server.CustomAlgorithm = func() caai.Algorithm { return &myAIMD{} } // ...custom stack

	rng := rand.New(rand.NewSource(9))
	ta, tb, wmax, valid := caai.GatherTraces(server, caai.LosslessCondition(), caai.ProbeConfig{}, rng)
	if !valid {
		log.Fatal("no valid trace")
	}
	fmt.Printf("custom algorithm traces (wmax=%d):\n  A: %s\n  B: %s\n", wmax, ta, tb)
	fmt.Println("features:", caai.ExtractFeatures(ta, tb))

	result := id.Identify(server, caai.LosslessCondition(), rng)
	fmt.Println("\nCAAI says:", result)
	fmt.Println("(an out-of-catalogue algorithm should surface as UNSURE or a low-confidence label;")
	fmt.Println(" beta=0.667 and G(3)=9 sit between RENO and the high-speed group)")
}
