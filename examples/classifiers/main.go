// Classifiers: reproduce the paper's Weka classifier comparison.
//
// The paper compared random forest against k-NN, decision trees, naive
// Bayes, neural networks and SVMs and found random forest consistently
// most accurate. This example runs our from-scratch random forest, k-NN,
// Gaussian naive Bayes, and single decision tree on the same training set
// and prints their held-out accuracy.
//
//	go run ./examples/classifiers
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	ctx := experiments.NewQuickContext()
	ctx.TrainingConditions = 25

	ds, err := ctx.TrainingSet()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training set: %d vectors, %d classes\n\n", ds.Len(), len(ds.Classes()))

	_, rendered, err := experiments.ClassifierComparison(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rendered)
	fmt.Println("(the paper's Weka study reached the same conclusion: random forest wins)")
}
