package caai

import (
	"math/rand"
	"path/filepath"
	"testing"
	"time"
)

// sharedIdentifier caches one trained identifier across the facade tests.
var sharedIdentifier *Identifier

func identifier(t *testing.T) *Identifier {
	t.Helper()
	if sharedIdentifier == nil {
		id, err := Train(TrainingOptions{ConditionsPerPair: 8, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		sharedIdentifier = id
	}
	return sharedIdentifier
}

func TestAlgorithmsList(t *testing.T) {
	names := Algorithms()
	if len(names) != 14 {
		t.Fatalf("Algorithms() = %v", names)
	}
}

func TestNewAlgorithm(t *testing.T) {
	alg, err := NewAlgorithm("CUBIC2")
	if err != nil || alg.Name() != "CUBIC2" {
		t.Fatalf("NewAlgorithm: %v, %v", alg, err)
	}
	if _, err := NewAlgorithm("BOGUS"); err == nil {
		t.Fatal("expected error")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	id := identifier(t)
	for _, alg := range []string{"CUBIC2", "BIC", "STCP"} {
		got := id.Identify(NewTestbedServer(alg), LosslessCondition(), rand.New(rand.NewSource(3)))
		if !got.Valid {
			t.Fatalf("%s: invalid (%s)", alg, got.Reason)
		}
		if got.Label != alg {
			t.Errorf("%s identified as %s (%.0f%%)", alg, got.Label, got.Confidence*100)
		}
	}
}

func TestGatherAndExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ta, tb, wmax, valid := GatherTraces(NewTestbedServer("RENO"), LosslessCondition(), ProbeConfig{}, rng)
	if !valid {
		t.Fatal("gather failed")
	}
	if wmax != 512 {
		t.Fatalf("wmax = %d, want 512 (first ladder entry works on the testbed)", wmax)
	}
	v := ExtractFeatures(ta, tb)
	if v[0] != 0.5 {
		t.Fatalf("betaA = %v, want 0.5", v[0])
	}
}

func TestSampleCondition(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := SampleCondition(rng)
	if c.MeanRTT <= 0 {
		t.Fatalf("condition = %v", c)
	}
}

func TestTrainingSetExposed(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	id := identifier(t)
	if id.TrainingSet().Len() != 14*4*8 {
		t.Fatalf("training set = %d", id.TrainingSet().Len())
	}
}

func TestDefaultInterEnvWait(t *testing.T) {
	if DefaultInterEnvWait != 10*time.Minute {
		t.Fatal("paper wait changed")
	}
}

func TestSaveLoadModelRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	id := identifier(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := id.SaveModel(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.TrainingSet() != nil {
		t.Fatal("loaded identifier should not carry a training set")
	}
	// The loaded model must reproduce the in-memory model's labels
	// exactly on a deterministic server set.
	for i, alg := range Algorithms() {
		server := NewTestbedServer(alg)
		want := id.Identify(server, LosslessCondition(), rand.New(rand.NewSource(int64(i))))
		got := loaded.Identify(server, LosslessCondition(), rand.New(rand.NewSource(int64(i))))
		if got.Label != want.Label || got.Confidence != want.Confidence {
			t.Errorf("%s: loaded model says %s/%v, in-memory says %s/%v",
				alg, got.Label, got.Confidence, want.Label, want.Confidence)
		}
	}
}

func TestLoadModelMissingFile(t *testing.T) {
	if _, err := LoadModel(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("expected error")
	}
}

func TestIdentifyBatchMatchesSingleAndIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	id := identifier(t)
	algs := []string{"CUBIC2", "BIC", "STCP", "RENO", "VEGAS", "HTCP"}
	jobs := make([]BatchJob, len(algs))
	for i, alg := range algs {
		jobs[i] = BatchJob{Server: NewTestbedServer(alg), Cond: LosslessCondition(), Seed: int64(100 + i)}
	}
	serial := id.IdentifyBatch(jobs, BatchOptions{Parallelism: 1, Seed: 7})
	parallel := id.IdentifyBatch(jobs, BatchOptions{Parallelism: 4, Seed: 7})
	for i := range jobs {
		if serial[i].Out.Label != parallel[i].Out.Label || serial[i].Out.Confidence != parallel[i].Out.Confidence {
			t.Errorf("job %d: parallelism changed the result (%s vs %s)",
				i, serial[i].Out.Label, parallel[i].Out.Label)
		}
		want := id.Identify(NewTestbedServer(algs[i]), LosslessCondition(), rand.New(rand.NewSource(int64(100+i))))
		if serial[i].Out.Label != want.Label {
			t.Errorf("job %d: batch says %s, single-shot says %s", i, serial[i].Out.Label, want.Label)
		}
	}
}

func TestIdentifyBatchStreaming(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	id := identifier(t)
	jobs := []BatchJob{
		{Server: NewTestbedServer("BIC"), Cond: LosslessCondition()},
		{Server: NewTestbedServer("CUBIC2"), Cond: LosslessCondition()},
	}
	streamed := 0
	id.IdentifyBatch(jobs, BatchOptions{
		Parallelism: 2,
		Seed:        3,
		OnResult:    func(BatchResult) { streamed++ },
	})
	if streamed != len(jobs) {
		t.Fatalf("streamed %d results, want %d", streamed, len(jobs))
	}
}

func TestTrainWithClassifierBackends(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	// kNN memorizes the training set, so on the lossless testbed it
	// should still recognize an easy, distinctive algorithm.
	id, err := TrainWithClassifier(TrainingOptions{ConditionsPerPair: 4, Seed: 31}, "knn")
	if err != nil {
		t.Fatal(err)
	}
	if id.Classifier().Name() != "kNN" {
		t.Fatalf("backend = %s", id.Classifier().Name())
	}
	got := id.Identify(NewTestbedServer("VEGAS"), LosslessCondition(), rand.New(rand.NewSource(2)))
	if !got.Valid {
		t.Fatalf("invalid: %s", got.Reason)
	}
	if got.Label != "VEGAS" {
		t.Errorf("kNN identified VEGAS as %s", got.Label)
	}

	if _, err := TrainWithClassifier(TrainingOptions{ConditionsPerPair: 1}, "quantum"); err == nil {
		t.Fatal("expected error for unknown backend")
	}
}

func TestClassifierBackendsListed(t *testing.T) {
	backends := ClassifierBackends()
	want := map[string]bool{"randomforest": false, "knn": false, "naivebayes": false, "decisiontree": false, "neuralnet": false, "linearsvm": false}
	for _, b := range backends {
		if _, ok := want[b]; ok {
			want[b] = true
		}
	}
	for b, seen := range want {
		if !seen {
			t.Errorf("backend %s missing from %v", b, backends)
		}
	}
}

func TestNewIdentifierFromClassifier(t *testing.T) {
	trained := identifier(t)
	wrapped := NewIdentifierFromClassifier(trained.Classifier())
	if wrapped.TrainingSet() != nil {
		t.Fatal("wrapped identifier exposes a training set")
	}
	if wrapped.Classifier() != trained.Classifier() {
		t.Fatal("wrapped identifier swapped the classifier")
	}
	rng := rand.New(rand.NewSource(9))
	got := wrapped.Identify(NewTestbedServer("CUBIC2"), LosslessCondition(), rng)
	want := trained.Identify(NewTestbedServer("CUBIC2"), LosslessCondition(), rand.New(rand.NewSource(9)))
	if got != want {
		t.Fatalf("wrapped identify = %+v, trained identify = %+v", got, want)
	}
}
