package caai

import (
	"math/rand"
	"testing"
	"time"
)

// sharedIdentifier caches one trained identifier across the facade tests.
var sharedIdentifier *Identifier

func identifier(t *testing.T) *Identifier {
	t.Helper()
	if sharedIdentifier == nil {
		id, err := Train(TrainingOptions{ConditionsPerPair: 8, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		sharedIdentifier = id
	}
	return sharedIdentifier
}

func TestAlgorithmsList(t *testing.T) {
	names := Algorithms()
	if len(names) != 14 {
		t.Fatalf("Algorithms() = %v", names)
	}
}

func TestNewAlgorithm(t *testing.T) {
	alg, err := NewAlgorithm("CUBIC2")
	if err != nil || alg.Name() != "CUBIC2" {
		t.Fatalf("NewAlgorithm: %v, %v", alg, err)
	}
	if _, err := NewAlgorithm("BOGUS"); err == nil {
		t.Fatal("expected error")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	id := identifier(t)
	for _, alg := range []string{"CUBIC2", "BIC", "STCP"} {
		got := id.Identify(NewTestbedServer(alg), LosslessCondition(), rand.New(rand.NewSource(3)))
		if !got.Valid {
			t.Fatalf("%s: invalid (%s)", alg, got.Reason)
		}
		if got.Label != alg {
			t.Errorf("%s identified as %s (%.0f%%)", alg, got.Label, got.Confidence*100)
		}
	}
}

func TestGatherAndExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ta, tb, wmax, valid := GatherTraces(NewTestbedServer("RENO"), LosslessCondition(), ProbeConfig{}, rng)
	if !valid {
		t.Fatal("gather failed")
	}
	if wmax != 512 {
		t.Fatalf("wmax = %d, want 512 (first ladder entry works on the testbed)", wmax)
	}
	v := ExtractFeatures(ta, tb)
	if v[0] != 0.5 {
		t.Fatalf("betaA = %v, want 0.5", v[0])
	}
}

func TestSampleCondition(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := SampleCondition(rng)
	if c.MeanRTT <= 0 {
		t.Fatalf("condition = %v", c)
	}
}

func TestTrainingSetExposed(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	id := identifier(t)
	if id.TrainingSet().Len() != 14*4*8 {
		t.Fatalf("training set = %d", id.TrainingSet().Len())
	}
}

func TestDefaultInterEnvWait(t *testing.T) {
	if DefaultInterEnvWait != 10*time.Minute {
		t.Fatal("paper wait changed")
	}
}
