package caai

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md section 4). Each benchmark regenerates its
// exhibit at reduced scale and reports the headline metric the paper
// reports (accuracy, valid-trace percentage, ...) via b.ReportMetric, so
// `go test -bench=. -benchmem` doubles as the reproduction harness. The
// cmd/caai-figures binary prints the full rows at paper scale.

import (
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/cc"
	"repro/internal/experiments"
	"repro/internal/forest"
)

// benchCtx lazily builds one reduced-scale experiment context shared by
// the benchmarks, so the (expensive) training set is generated once and
// excluded from per-benchmark timing.
var (
	benchCtxOnce sync.Once
	benchCtxVal  *experiments.Context
)

func benchCtx(b *testing.B) *experiments.Context {
	b.Helper()
	benchCtxOnce.Do(func() {
		benchCtxVal = experiments.NewQuickContext()
		if _, err := benchCtxVal.TrainingSet(); err != nil {
			b.Fatal(err)
		}
		if _, err := benchCtxVal.Model(); err != nil {
			b.Fatal(err)
		}
	})
	return benchCtxVal
}

// BenchmarkTableIRegistry regenerates the Table I algorithm catalogue.
func BenchmarkTableIRegistry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.TableI(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig2Environments regenerates the environment RTT schedules.
func BenchmarkFig2Environments(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.Fig2(); len(out) == 0 {
			b.Fatal("empty schedules")
		}
	}
}

// BenchmarkFig3Traces regenerates the 14-algorithm trace gallery of
// Fig. 3 (28 gathering sessions plus panel o).
func BenchmarkFig3Traces(b *testing.B) {
	ctx := benchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, _, err := experiments.Fig3(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != 14 {
			b.Fatalf("got %d algorithms", len(results))
		}
	}
}

// BenchmarkFig4RTTDatabase regenerates the mean-RTT CDF of Fig. 4.
func BenchmarkFig4RTTDatabase(b *testing.B) {
	ctx := benchCtx(b)
	for i := 0; i < b.N; i++ {
		if out := experiments.Fig4(ctx); len(out) == 0 {
			b.Fatal("empty CDF")
		}
	}
}

// BenchmarkFig6RequestLimits regenerates the repeated-request CDF of
// Fig. 6 against a sampled population.
func BenchmarkFig6RequestLimits(b *testing.B) {
	ctx := benchCtx(b)
	for i := 0; i < b.N; i++ {
		if out := experiments.Fig6(ctx); len(out) == 0 {
			b.Fatal("empty CDF")
		}
	}
}

// BenchmarkFig7PageSizes regenerates the page-size CDFs of Fig. 7.
func BenchmarkFig7PageSizes(b *testing.B) {
	ctx := benchCtx(b)
	for i := 0; i < b.N; i++ {
		if out := experiments.Fig7(ctx); len(out) == 0 {
			b.Fatal("empty CDF")
		}
	}
}

// BenchmarkFig10RTTStddev regenerates the RTT-stddev CDF of Fig. 10.
func BenchmarkFig10RTTStddev(b *testing.B) {
	ctx := benchCtx(b)
	for i := 0; i < b.N; i++ {
		if out := experiments.Fig10(ctx); len(out) == 0 {
			b.Fatal("empty CDF")
		}
	}
}

// BenchmarkFig11LossRates regenerates the loss-rate CDF of Fig. 11.
func BenchmarkFig11LossRates(b *testing.B) {
	ctx := benchCtx(b)
	for i := 0; i < b.N; i++ {
		if out := experiments.Fig11(ctx); len(out) == 0 {
			b.Fatal("empty CDF")
		}
	}
}

// BenchmarkFig12ParameterSweep regenerates a reduced K x F grid of the
// Fig. 12 cross-validation sweep and reports the best accuracy.
func BenchmarkFig12ParameterSweep(b *testing.B) {
	ctx := benchCtx(b)
	b.ResetTimer()
	var best float64
	for i := 0; i < b.N; i++ {
		points, _, err := experiments.Fig12(ctx, []int{5, 40, 80}, []int{2, 4})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.Accuracy > best {
				best = p.Accuracy
			}
		}
	}
	b.ReportMetric(best*100, "best-accuracy-%")
}

// BenchmarkTableIIMSS regenerates the minimum-MSS table.
func BenchmarkTableIIMSS(b *testing.B) {
	ctx := benchCtx(b)
	for i := 0; i < b.N; i++ {
		if out := experiments.TableII(ctx); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTableIIICrossValidation regenerates the Table III confusion
// matrix (paper overall: 96.98%) and reports the measured accuracy.
func BenchmarkTableIIICrossValidation(b *testing.B) {
	ctx := benchCtx(b)
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableIII(ctx)
		if err != nil {
			b.Fatal(err)
		}
		acc = res.Accuracy
	}
	b.ReportMetric(acc*100, "accuracy-%")
}

// BenchmarkTableIVCensus regenerates the census (paper: 47% valid traces,
// BIC/CUBIC plurality) and reports the valid-trace share and ground-truth
// agreement.
func BenchmarkTableIVCensus(b *testing.B) {
	ctx := benchCtx(b)
	b.ResetTimer()
	var valid, agree float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableIV(ctx)
		if err != nil {
			b.Fatal(err)
		}
		valid = 100 * float64(res.Report.Valid()) / float64(res.Report.Total)
		agree = res.Report.Accuracy() * 100
	}
	b.ReportMetric(valid, "valid-%")
	b.ReportMetric(agree, "truth-agreement-%")
}

// BenchmarkSpecialTraces regenerates the Figs. 13-17 special traces.
func BenchmarkSpecialTraces(b *testing.B) {
	ctx := benchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SpecialTraces(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClassifierComparison regenerates the Weka-style classifier
// comparison and reports the random forest margin.
func BenchmarkClassifierComparison(b *testing.B) {
	ctx := benchCtx(b)
	b.ResetTimer()
	var rf float64
	for i := 0; i < b.N; i++ {
		acc, _, err := experiments.ClassifierComparison(ctx)
		if err != nil {
			b.Fatal(err)
		}
		rf = acc["RandomForest"]
	}
	b.ReportMetric(rf*100, "rf-accuracy-%")
}

// BenchmarkAblationEnvB measures the two-environment design choice.
func BenchmarkAblationEnvB(b *testing.B) {
	ctx := benchCtx(b)
	b.ResetTimer()
	var res experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationEnvB(ctx, 12)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.With*100, "with-%")
	b.ReportMetric(res.Without*100, "without-%")
}

// BenchmarkAblationFRTO measures the dup-ACK counter-measure.
func BenchmarkAblationFRTO(b *testing.B) {
	ctx := benchCtx(b)
	b.ResetTimer()
	var res experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationFRTO(ctx, 12)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.With*100, "with-%")
	b.ReportMetric(res.Without*100, "without-%")
}

// BenchmarkAblationTimeoutVsLossEvent regenerates the Section IV-B
// comparison of timeout-based versus loss-event-based beta measurement.
func BenchmarkAblationTimeoutVsLossEvent(b *testing.B) {
	ctx := benchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TimeoutVsLossEvent(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTBITSurvey regenerates the TBIT component survey (initial
// window, loss recovery, loss-event beta).
func BenchmarkTBITSurvey(b *testing.B) {
	ctx := benchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TBITSurvey(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Microbenchmarks of the hot paths ---
//
// These delegate to internal/bench, the shared suite cmd/caai-bench runs
// standalone and persists to BENCH_<n>.json (see DESIGN.md section on the
// perf-regression harness). Names here stay stable because the perf
// history and the CI budget gate reference the suite's measurements.

// BenchmarkGatherSession measures one full environment-A gathering session
// against a lossless CUBIC2 testbed server with a reused prober.
func BenchmarkGatherSession(b *testing.B) {
	bench.GatherSession()(b)
}

// BenchmarkFeatureExtraction measures CAAI step 2 on a gathered trace with
// reused scratch.
func BenchmarkFeatureExtraction(b *testing.B) {
	bench.FeatureExtraction()(b)
}

// BenchmarkForestClassify measures CAAI step 3 on a trained model.
func BenchmarkForestClassify(b *testing.B) {
	ctx := benchCtx(b)
	model, err := ctx.Model()
	if err != nil {
		b.Fatal(err)
	}
	bench.ForestClassify(model)(b)
}

// BenchmarkForestVotesInto measures the arena vote walk with a reused
// buffer (the zero-allocation classification core).
func BenchmarkForestVotesInto(b *testing.B) {
	ctx := benchCtx(b)
	model, err := ctx.Model()
	if err != nil {
		b.Fatal(err)
	}
	f, ok := model.(*forest.Forest)
	if !ok {
		b.Skipf("model backend is %T, not a forest", model)
	}
	bench.ForestVotesInto(f)(b)
}

// BenchmarkForestClassifyBatch measures the batched branch-free kernel on
// a 64-sample block with caller-owned scratch (one op = one block; see
// the ns/sample extra metric for the per-sample cost against
// BenchmarkForestClassify).
func BenchmarkForestClassifyBatch(b *testing.B) {
	ctx := benchCtx(b)
	model, err := ctx.Model()
	if err != nil {
		b.Fatal(err)
	}
	f, ok := model.(*forest.Forest)
	if !ok {
		b.Skipf("model backend is %T, not a forest", model)
	}
	bench.ForestClassifyBatch(f, 64)(b)
}

// BenchmarkForestTrain measures growing the paper's K=80 forest.
func BenchmarkForestTrain(b *testing.B) {
	ctx := benchCtx(b)
	ds, err := ctx.TrainingSet()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		forest.Train(ds, forest.Config{Trees: 80, Subspace: 4, Seed: int64(i)})
	}
}

// BenchmarkAlgorithmOnAck measures the per-ACK cost of each congestion
// avoidance algorithm (the simulation's innermost loop).
func BenchmarkAlgorithmOnAck(b *testing.B) {
	for _, name := range cc.Names() {
		b.Run(name, func(b *testing.B) {
			alg, err := cc.New(name)
			if err != nil {
				b.Fatal(err)
			}
			c := cc.NewConn(536, 2)
			c.Cwnd, c.Ssthresh = 300, 300
			alg.Reset(c)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%256 == 0 {
					c.Round++
				}
				alg.OnAck(c, 1, 1e9)
			}
		})
	}
}

// BenchmarkIdentifyBatch measures the batch identification engine: many
// (server, condition) jobs through a pretrained model on the bounded
// worker pool with per-worker sessions, the production
// train-once/identify-many hot path.
func BenchmarkIdentifyBatch(b *testing.B) {
	ctx := benchCtx(b)
	model, err := ctx.Model()
	if err != nil {
		b.Fatal(err)
	}
	bench.IdentifyBatch(model, 64)(b)
}

// BenchmarkPcapIngest measures the passive pipeline end to end: pcap
// decode, TCP flow reassembly, congestion-window reconstruction, and
// classification of a synthetic two-server capture (MB/s of capture).
func BenchmarkPcapIngest(b *testing.B) {
	ctx := benchCtx(b)
	model, err := ctx.Model()
	if err != nil {
		b.Fatal(err)
	}
	bench.PcapIngest(model)(b)
}

// BenchmarkPcapStreamIngest measures the streaming pipeline (bounded
// ring, sharded decode, online flow tracking) over a live-monitoring
// workload of concurrent MTU-sized bulk transfers (MB/s of capture).
func BenchmarkPcapStreamIngest(b *testing.B) {
	bench.PcapStreamIngest()(b)
}

// BenchmarkServiceIdentify measures the HTTP service path of
// internal/service end to end (JSON decode, registry lookup, cache,
// pipeline, JSON encode): "hit" serves one request repeatedly from the
// LRU result cache, "miss" forces a fresh probe every iteration by
// varying the seed.
func BenchmarkServiceIdentify(b *testing.B) {
	ctx := benchCtx(b)
	model, err := ctx.Model()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("hit", bench.ServiceIdentify(model, false))
	b.Run("miss", bench.ServiceIdentify(model, true))
}
