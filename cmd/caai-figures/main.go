// Command caai-figures regenerates every table and figure of the paper's
// evaluation in one run. Use -quick for a reduced-scale pass.
//
// Usage:
//
//	caai-figures          # full scale (paper parameters; slow)
//	caai-figures -quick   # reduced scale for a fast end-to-end pass
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "caai-figures:", err)
		os.Exit(1)
	}
}

func run() error {
	quick := flag.Bool("quick", false, "reduced-scale run")
	ablationTrials := flag.Int("ablation-trials", 40, "trials per ablation arm")
	conditions := flag.Int("conditions", 0, "override training conditions per pair")
	servers := flag.Int("servers", 0, "override census population size")
	folds := flag.Int("folds", 0, "override cross-validation folds")
	flag.Parse()

	ctx := experiments.NewContext()
	if *quick {
		ctx = experiments.NewQuickContext()
	}
	if *conditions > 0 {
		ctx.TrainingConditions = *conditions
	}
	if *servers > 0 {
		ctx.CensusServers = *servers
	}
	if *folds > 0 {
		ctx.Folds = *folds
	}

	fmt.Println(experiments.TableI())
	fmt.Println(experiments.Fig2())

	_, fig3, err := experiments.Fig3(ctx)
	if err != nil {
		return err
	}
	fmt.Println(fig3)

	fmt.Println(experiments.Fig4(ctx))
	fmt.Println(experiments.Fig6(ctx))
	fmt.Println(experiments.Fig7(ctx))
	fmt.Println(experiments.Fig10(ctx))
	fmt.Println(experiments.Fig11(ctx))
	fmt.Println(experiments.TableII(ctx))

	t3, err := experiments.TableIII(ctx)
	if err != nil {
		return err
	}
	fmt.Println(t3)

	// The sweep grid: the full paper grid (K up to 100, F 1..7) is
	// expensive; this subset exposes the same trends (accuracy rises
	// with K and flattens by 80; nearly flat in F).
	trees, subspaces := []int{1, 5, 20, 80, 100}, []int{1, 2, 4, 6}
	if *quick {
		trees, subspaces = []int{1, 5, 20, 80}, []int{2, 4}
	}
	_, fig12, err := experiments.Fig12(ctx, trees, subspaces)
	if err != nil {
		return err
	}
	fmt.Println(fig12)

	special, err := experiments.SpecialTraces(ctx)
	if err != nil {
		return err
	}
	fmt.Println(special)

	tvl, err := experiments.TimeoutVsLossEvent(ctx)
	if err != nil {
		return err
	}
	fmt.Println(tvl)

	survey, err := experiments.TBITSurvey(ctx)
	if err != nil {
		return err
	}
	fmt.Println(survey)

	t4, err := experiments.TableIV(ctx)
	if err != nil {
		return err
	}
	fmt.Println(t4)

	_, cmp, err := experiments.ClassifierComparison(ctx)
	if err != nil {
		return err
	}
	fmt.Println(cmp)

	demo, err := experiments.Demographics(ctx)
	if err != nil {
		return err
	}
	fmt.Println(demo)

	abl, err := experiments.Ablations(ctx, *ablationTrials)
	if err != nil {
		return err
	}
	fmt.Println(abl)
	return nil
}
