// Command caai-eval runs the scenario-matrix accuracy evaluation and
// appends one machine-readable trajectory point (ACCURACY_<n>.json) to the
// accuracy history, enforcing the checked-in accuracy budgets — the
// quality counterpart of cmd/caai-bench. CI runs it at reduced scale on
// every push and archives the JSON; developers run it before and after a
// pipeline change and paste the Compare table into the PR.
//
// Usage:
//
//	caai-eval -train 25                 # train in-process, sweep the matrix, write ACCURACY_<n>.json
//	caai-eval -model model.json         # evaluate a saved model
//	caai-eval -scenarios clean,loss_5   # sweep a subset (exploratory: no file, no gate)
//	caai-eval -compare ACCURACY_0.json ACCURACY_1.json   # render a before/after table
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cc"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/forest"
	"repro/internal/netem"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "caai-eval:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("caai-eval", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	out := fs.String("out", ".", "directory holding the ACCURACY_<n>.json history")
	label := fs.String("label", "", "free-form provenance label for the point")
	modelPath := fs.String("model", "", "saved model to evaluate (see caai-train -save); empty trains in-process")
	train := fs.Int("train", 25, "training conditions per (algorithm, wmax) pair when no -model is given")
	trees := fs.Int("trees", 80, "forest size for in-process training")
	trials := fs.Int("trials", 12, "identification trials per matrix cell")
	seed := fs.Int64("seed", 2011, "seed for training and the matrix trials")
	parallelism := fs.Int("parallelism", 0, "worker pool width (0 = all CPUs)")
	algorithms := fs.String("algorithms", "", "comma-separated ground-truth algorithms (default: all 14 CAAI targets)")
	scenarios := fs.String("scenarios", "", "comma-separated scenario subset (exploratory: no trajectory write, no gate)")
	budgets := fs.String("budgets", "", "comma-separated probe-budget subset (exploratory, like -scenarios)")
	budgetPath := fs.String("budget", "accuracy_budget.json", "accuracy budget file to enforce; empty or missing disables the gate")
	dryRun := fs.Bool("n", false, "run and print without writing the trajectory file")
	compare := fs.Bool("compare", false, "compare two trajectory files (args: before.json after.json) instead of running")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			fs.SetOutput(stdout)
			fs.Usage()
			return nil
		}
		return err
	}

	if *compare {
		if fs.NArg() != 2 {
			return fmt.Errorf("-compare wants exactly two trajectory files, got %d", fs.NArg())
		}
		before, err := eval.ReadPoint(fs.Arg(0))
		if err != nil {
			return err
		}
		after, err := eval.ReadPoint(fs.Arg(1))
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, eval.Compare(before, after))
		return nil
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	cfg := eval.Config{
		Trials:      *trials,
		Seed:        *seed,
		Parallelism: *parallelism,
	}
	filtered := false
	if *algorithms != "" {
		filtered = true
		for _, name := range strings.Split(*algorithms, ",") {
			name = strings.ToUpper(strings.TrimSpace(name))
			if _, ok := cc.Lookup(name); !ok {
				return fmt.Errorf("-algorithms: unknown algorithm %q", name)
			}
			cfg.Algorithms = append(cfg.Algorithms, name)
		}
	}
	if *scenarios != "" {
		filtered = true
		selected, err := selectByName(*scenarios, eval.DefaultScenarios(),
			func(s eval.Scenario) string { return s.Name })
		if err != nil {
			return fmt.Errorf("-scenarios: %v", err)
		}
		cfg.Scenarios = selected
	}
	if *budgets != "" {
		filtered = true
		selected, err := selectByName(*budgets, eval.DefaultBudgets(),
			func(b eval.ProbeBudget) string { return b.Name })
		if err != nil {
			return fmt.Errorf("-budgets: %v", err)
		}
		cfg.Budgets = selected
	}

	var model classify.Classifier
	modelDesc := ""
	if *modelPath != "" {
		var err error
		model, err = classify.LoadFile(*modelPath)
		if err != nil {
			return err
		}
		modelDesc = fmt.Sprintf("%s (%s)", model.Name(), *modelPath)
		fmt.Fprintf(stdout, "evaluating %s model from %s\n", model.Name(), *modelPath)
	} else {
		fmt.Fprintf(stdout, "training the evaluation model (%d conditions per pair, %d trees)...\n", *train, *trees)
		ds, err := core.GenerateTrainingSet(netem.MeasuredDatabase(), core.TrainingConfig{
			ConditionsPerPair: *train,
			Seed:              *seed,
			Parallelism:       *parallelism,
		})
		if err != nil {
			return err
		}
		model = forest.Train(ds, forest.Config{Trees: *trees, Subspace: 4, Seed: *seed + 1})
		modelDesc = fmt.Sprintf("randomforest (in-process, conditions=%d trees=%d seed=%d)", *train, *trees, *seed)
	}

	matrix := eval.Run(core.NewIdentifier(model), cfg)
	fmt.Fprint(stdout, matrix.Table())
	point := eval.NewPoint(*label, modelDesc, *seed, matrix)

	if filtered {
		// A filtered run is a partial measurement: writing it would punch a
		// hole in the trajectory, and gating it would report the skipped
		// scenarios as violations. Treat it as exploratory.
		fmt.Fprintln(stdout, "filtered run: trajectory write and budget gate skipped")
		return nil
	}

	if !*dryRun {
		path, err := eval.NextPointPath(*out)
		if err != nil {
			return err
		}
		if err := eval.WritePoint(path, point); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", path)
	}
	if *budgetPath != "" {
		budget, err := eval.LoadBudget(*budgetPath)
		if os.IsNotExist(err) {
			return nil // no gate configured
		}
		if err != nil {
			return err
		}
		if violations := budget.Check(point); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(stdout, "ACCURACY VIOLATION:", v)
			}
			return fmt.Errorf("%d accuracy budget violation(s)", len(violations))
		}
		fmt.Fprintln(stdout, "all accuracy budgets met")
	}
	return nil
}

// selectByName filters items by a comma-separated name list, preserving
// the default order.
func selectByName[T any](list string, items []T, name func(T) string) ([]T, error) {
	want := map[string]bool{}
	for _, n := range strings.Split(list, ",") {
		want[strings.TrimSpace(n)] = true
	}
	var out []T
	for _, it := range items {
		if want[name(it)] {
			out = append(out, it)
			delete(want, name(it))
		}
	}
	if len(want) > 0 {
		var missing []string
		for n := range want {
			missing = append(missing, n)
		}
		return nil, fmt.Errorf("unknown name(s) %v", missing)
	}
	return out, nil
}
