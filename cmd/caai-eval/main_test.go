package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/eval"
)

// TestEvalWritesPointAndEnforcesBudget drives the command end to end at a
// tiny scale: train, sweep a full (unfiltered) matrix over a reduced
// algorithm list, write ACCURACY_0.json, and gate it against a budget file.
func TestEvalWritesPointAndEnforcesBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	dir := t.TempDir()
	budget := filepath.Join(dir, "accuracy_budget.json")
	if err := os.WriteFile(budget, []byte(`{"overall": {"min_accuracy": 0.0}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run([]string{
		"-train", "4", "-trees", "20", "-trials", "2",
		"-out", dir, "-budget", budget, "-label", "test",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "all accuracy budgets met") {
		t.Fatalf("budget gate did not run:\n%s", out.String())
	}
	p, err := eval.ReadPoint(filepath.Join(dir, "ACCURACY_0.json"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Summary.Cells == 0 || len(p.Cells) != p.Summary.Cells {
		t.Fatalf("point has inconsistent cells: %+v", p.Summary)
	}
	if len(p.Confusion) == 0 {
		t.Fatal("point has no confusion matrices")
	}

	// An impossible budget must fail the run.
	if err := os.WriteFile(budget, []byte(`{"scenario/clean": {"min_accuracy": 1.01}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{
		"-train", "4", "-trees", "20", "-trials", "2",
		"-out", dir, "-budget", budget, "-n",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "violation") {
		t.Fatalf("impossible budget should fail the run, got %v", err)
	}
}

// TestEvalFilteredRunSkipsWriteAndGate mirrors caai-bench: subset runs
// (any of -algorithms, -scenarios, -budgets) are exploratory — a partial
// matrix must neither enter the trajectory history nor face the gate.
func TestEvalFilteredRunSkipsWriteAndGate(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	dir := t.TempDir()
	var out strings.Builder
	err := run([]string{
		"-train", "4", "-trees", "20", "-trials", "2",
		"-algorithms", "CUBIC2", "-scenarios", "clean",
		"-out", dir, "-budget", "",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "filtered run") {
		t.Fatalf("filtered run not announced:\n%s", out.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "ACCURACY_0.json")); !os.IsNotExist(err) {
		t.Fatal("filtered run must not write a trajectory point")
	}
}

func TestEvalRejectsUnknownNames(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-algorithms", "NOPE"}, &out); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
	if err := run([]string{"-scenarios", "nope"}, &out); err == nil {
		t.Fatal("unknown scenario should fail")
	}
	if err := run([]string{"-budgets", "nope"}, &out); err == nil {
		t.Fatal("unknown budget should fail")
	}
}
