// Command caai-bench runs the hot-path benchmark suite and appends one
// machine-readable trajectory point (BENCH_<n>.json) to the perf history,
// enforcing the checked-in allocation budgets. CI runs it at reduced scale
// on every push and archives the JSON; developers run it before and after
// a performance change and paste the Compare table into the PR.
//
// Usage:
//
//	caai-bench                         # run suite, write BENCH_<n>.json, enforce bench_budget.json
//	caai-bench -filter 'service/'      # run a subset
//	caai-bench -label after-arena      # tag the point
//	caai-bench -compare BENCH_0.json BENCH_1.json   # render a before/after table
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"

	"repro/internal/bench"
	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "caai-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("caai-bench", flag.ContinueOnError)
	out := fs.String("out", ".", "directory holding the BENCH_<n>.json history")
	label := fs.String("label", "", "free-form provenance label for the point")
	filterExpr := fs.String("filter", "", "regexp selecting suite benchmarks")
	conditions := fs.Int("conditions", 12, "training conditions per (algorithm, wmax) pair")
	folds := fs.Int("folds", 5, "cross-validation folds for the accuracy metric")
	seed := fs.Int64("seed", 2011, "training seed")
	accuracy := fs.Bool("accuracy", true, "record the reduced-scale cross-validation accuracy")
	budgetPath := fs.String("budget", "bench_budget.json", "budget file to enforce; empty or missing disables the gate")
	dryRun := fs.Bool("n", false, "run and print without writing the trajectory file")
	compare := fs.Bool("compare", false, "compare two trajectory files (args: before.json after.json) instead of running")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *compare {
		if fs.NArg() != 2 {
			return fmt.Errorf("-compare wants exactly two trajectory files, got %d", fs.NArg())
		}
		before, err := bench.ReadPoint(fs.Arg(0))
		if err != nil {
			return err
		}
		after, err := bench.ReadPoint(fs.Arg(1))
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, bench.Compare(before, after))
		return nil
	}

	var filter *regexp.Regexp
	if *filterExpr != "" {
		var err error
		if filter, err = regexp.Compile(*filterExpr); err != nil {
			return fmt.Errorf("bad -filter: %w", err)
		}
	}

	ctx := experiments.NewQuickContext()
	ctx.TrainingConditions = *conditions
	ctx.Folds = *folds
	ctx.Seed = *seed

	fmt.Fprintf(stdout, "training the suite model (%d conditions per pair)...\n", *conditions)
	cases, err := bench.Suite(ctx)
	if err != nil {
		return err
	}
	point := bench.NewPoint(*label, fmt.Sprintf("quick-%d", *conditions))
	point.Benchmarks, err = bench.Run(cases, filter, stdout)
	if err != nil {
		return err
	}

	if *accuracy {
		acc, err := bench.Accuracy(ctx)
		if err != nil {
			return err
		}
		point.Metrics["crossval_accuracy"] = acc
		fmt.Fprintf(stdout, "%-28s %14.2f%%\n", "crossval accuracy", acc*100)
	}

	if filter != nil {
		// A filtered run is a partial measurement: writing it would leave
		// a hole in the trajectory history, and gating it would report the
		// skipped benchmarks as violations. Treat it as exploratory.
		fmt.Fprintln(stdout, "filtered run: trajectory write and budget gate skipped")
		return nil
	}

	if !*dryRun {
		path, err := bench.NextPointPath(*out)
		if err != nil {
			return err
		}
		if err := bench.WritePoint(path, point); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", path)
	}
	if *budgetPath != "" {
		budget, err := bench.LoadBudget(*budgetPath)
		if os.IsNotExist(err) {
			return nil // no gate configured
		}
		if err != nil {
			return err
		}
		if violations := budget.Check(point.Benchmarks); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(stdout, "BUDGET VIOLATION:", v)
			}
			return fmt.Errorf("%d benchmark budget violation(s)", len(violations))
		}
		fmt.Fprintln(stdout, "all benchmark budgets met")
	}
	return nil
}
