package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

// TestCompareMode: -compare renders a before/after table without running
// the (expensive) suite.
func TestCompareMode(t *testing.T) {
	dir := t.TempDir()
	before := bench.NewPoint("before", "quick")
	before.Benchmarks = []bench.Result{{Name: "service/identify_miss", NsPerOp: 900000, AllocsPerOp: 594}}
	after := bench.NewPoint("after", "quick")
	after.Benchmarks = []bench.Result{{Name: "service/identify_miss", NsPerOp: 450000, AllocsPerOp: 88}}
	b0 := filepath.Join(dir, "BENCH_0.json")
	b1 := filepath.Join(dir, "BENCH_1.json")
	if err := bench.WritePoint(b0, before); err != nil {
		t.Fatal(err)
	}
	if err := bench.WritePoint(b1, after); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := run([]string{"-compare", b0, b1}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2.00x") {
		t.Fatalf("compare output missing speedup:\n%s", out.String())
	}
}

// TestCompareModeArgValidation: -compare without two files is an error.
func TestCompareModeArgValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-compare", "one.json"}, &out); err == nil {
		t.Fatal("expected an argument error")
	}
}

// TestBudgetsFileParses: the checked-in budget file must stay loadable and
// reference only suite benchmark names.
func TestBudgetsFileParses(t *testing.T) {
	path := filepath.Join("..", "..", "bench_budget.json")
	if _, err := os.Stat(path); err != nil {
		t.Skipf("budget file not present: %v", err)
	}
	budget, err := bench.LoadBudget(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := budget["service/identify_miss"]; !ok {
		t.Fatal("budget must gate service/identify_miss (the cache-miss hot path)")
	}
	for name, lim := range budget {
		if lim.MaxAllocsPerOp != nil && *lim.MaxAllocsPerOp < 0 {
			t.Fatalf("budget %s has a negative alloc limit", name)
		}
		if lim.MaxNsPerOp != nil && *lim.MaxNsPerOp < 0 {
			t.Fatalf("budget %s has a negative ns limit", name)
		}
	}
	// The zero-alloc budgets must be explicit zeros (enforced), not
	// absent fields.
	if lim := budget["forest/votes_into"]; lim.MaxAllocsPerOp == nil || *lim.MaxAllocsPerOp != 0 {
		t.Fatal("forest/votes_into must carry an explicit 0 allocs/op budget")
	}
}
