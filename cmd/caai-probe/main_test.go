package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	caai "repro"
)

func TestRunArgumentErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the expected error
	}{
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"positional args", []string{"CUBIC2"}, "unexpected arguments"},
		{"loss out of range", []string{"-loss", "1.5"}, "out of range"},
		{"negative loss", []string{"-loss", "-0.1"}, "out of range"},
		{"model and classifier", []string{"-model", "m.json", "-classifier", "knn"}, "mutually exclusive"},
		{"missing model file", []string{"-model", "/does/not/exist.json"}, "exist.json"},
		{"unknown backend", []string{"-conditions", "1", "-classifier", "nope"}, "nope"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(tc.args, &out)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) err = %v, want substring %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestRunTrainsAndIdentifies(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-algorithm", "RENO", "-conditions", "1", "-seed", "3"}, &out); err != nil {
		t.Fatalf("run: %v\noutput: %s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"training CAAI randomforest", "trace A:", "trace B:", "wmax:", "features:", "identification:"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunWithSavedModel(t *testing.T) {
	id, err := caai.Train(caai.TrainingOptions{ConditionsPerPair: 2, Trees: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := id.SaveModel(path); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-algorithm", "BIC", "-model", path}, &out); err != nil {
		t.Fatalf("run: %v\noutput: %s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "loaded RandomForest model from "+path) {
		t.Fatalf("missing load banner:\n%s", got)
	}
	if strings.Contains(got, "training CAAI") {
		t.Fatalf("-model run retrained:\n%s", got)
	}
	if !strings.Contains(got, "identification:") {
		t.Fatalf("missing identification:\n%s", got)
	}
}

func TestRunHelpIsNotAnError(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-h"}, &out); err != nil {
		t.Fatalf("run(-h) = %v", err)
	}
	if !strings.Contains(out.String(), "Usage of caai-probe") {
		t.Fatalf("usage not printed:\n%s", out.String())
	}
}
