// Command caai-probe runs the CAAI pipeline against one simulated Web
// server and prints the gathered traces, the extracted feature vector, and
// the classification. With -model it loads a model saved by caai-train
// -save instead of retraining; -classifier selects an alternative backend
// (knn, naivebayes, decisiontree, neuralnet, linearsvm).
//
// Usage:
//
//	caai-probe -algorithm CUBIC2 -loss 0.01 -conditions 25
//	caai-probe -algorithm BIC -model model.json
//	caai-probe -algorithm STCP -classifier knn
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	caai "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "caai-probe:", err)
		os.Exit(1)
	}
}

func run() error {
	algorithm := flag.String("algorithm", "CUBIC2", "server congestion avoidance algorithm ("+strings.Join(caai.Algorithms(), ", ")+")")
	loss := flag.Float64("loss", 0, "path packet-loss rate in [0,1]")
	rttStddev := flag.Duration("jitter", 0, "path RTT standard deviation")
	conditions := flag.Int("conditions", 25, "training conditions per (algorithm, wmax) pair")
	seed := flag.Int64("seed", 1, "random seed")
	model := flag.String("model", "", "load a saved model instead of retraining (see caai-train -save)")
	backend := flag.String("classifier", "randomforest", "classifier backend ("+strings.Join(caai.ClassifierBackends(), ", ")+")")
	flag.Parse()

	var id *caai.Identifier
	var err error
	if *model != "" {
		classifierSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "classifier" {
				classifierSet = true
			}
		})
		if classifierSet {
			return fmt.Errorf("-model and -classifier are mutually exclusive: a loaded model already fixes the backend")
		}
		id, err = caai.LoadModel(*model)
		if err != nil {
			return err
		}
		fmt.Printf("loaded %s model from %s\n", id.Classifier().Name(), *model)
	} else {
		fmt.Printf("training CAAI %s (%d conditions per pair)...\n", *backend, *conditions)
		id, err = caai.TrainWithClassifier(caai.TrainingOptions{ConditionsPerPair: *conditions, Seed: *seed}, *backend)
		if err != nil {
			return err
		}
	}

	server := caai.NewTestbedServer(*algorithm)
	cond := caai.Condition{MeanRTT: 50 * time.Millisecond, RTTStdDev: *rttStddev, LossRate: *loss}
	rng := rand.New(rand.NewSource(*seed))

	ta, tb, wmax, valid := caai.GatherTraces(server, cond, caai.ProbeConfig{}, rng)
	if !valid {
		return fmt.Errorf("no valid trace gathered from %s", server.Name)
	}
	fmt.Printf("\ntrace A: %s\n", ta)
	fmt.Printf("trace B: %s\n", tb)
	fmt.Printf("wmax: %d\n", wmax)
	fmt.Printf("features: %s\n", caai.ExtractFeatures(ta, tb))

	result := id.Identify(server, cond, rand.New(rand.NewSource(*seed+1)))
	fmt.Printf("\nidentification: %s\n", result)
	return nil
}
