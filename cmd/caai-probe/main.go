// Command caai-probe runs the CAAI pipeline against one simulated Web
// server and prints the gathered traces, the extracted feature vector, and
// the classification. With -model it loads a model saved by caai-train
// -save instead of retraining; -classifier selects an alternative backend
// (knn, naivebayes, decisiontree, neuralnet, linearsvm).
//
// Usage:
//
//	caai-probe -algorithm CUBIC2 -loss 0.01 -conditions 25
//	caai-probe -algorithm BIC -model model.json
//	caai-probe -algorithm STCP -classifier knn
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"time"

	caai "repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "caai-probe:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("caai-probe", flag.ContinueOnError)
	// Parse errors surface once, via the returned error; only an explicit
	// -h prints usage, on the success stream.
	fs.SetOutput(io.Discard)
	algorithm := fs.String("algorithm", "CUBIC2", "server congestion avoidance algorithm ("+strings.Join(caai.Algorithms(), ", ")+")")
	loss := fs.Float64("loss", 0, "path packet-loss rate in [0,1]")
	rttStddev := fs.Duration("jitter", 0, "path RTT standard deviation")
	conditions := fs.Int("conditions", 25, "training conditions per (algorithm, wmax) pair")
	seed := fs.Int64("seed", 1, "random seed")
	model := fs.String("model", "", "load a saved model instead of retraining (see caai-train -save)")
	backend := fs.String("classifier", "randomforest", "classifier backend ("+strings.Join(caai.ClassifierBackends(), ", ")+")")
	timings := fs.Bool("timings", false, "print the per-stage wall-clock breakdown of the identification")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(stdout)
			fs.Usage()
			return nil // a help request is not a failure
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *loss < 0 || *loss > 1 {
		return fmt.Errorf("-loss %v out of range [0, 1]", *loss)
	}

	var id *caai.Identifier
	var err error
	if *model != "" {
		classifierSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "classifier" {
				classifierSet = true
			}
		})
		if classifierSet {
			return fmt.Errorf("-model and -classifier are mutually exclusive: a loaded model already fixes the backend")
		}
		id, err = caai.LoadModel(*model)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "loaded %s model from %s\n", id.Classifier().Name(), *model)
	} else {
		fmt.Fprintf(stdout, "training CAAI %s (%d conditions per pair)...\n", *backend, *conditions)
		id, err = caai.TrainWithClassifier(caai.TrainingOptions{ConditionsPerPair: *conditions, Seed: *seed}, *backend)
		if err != nil {
			return err
		}
	}

	server := caai.NewTestbedServer(*algorithm)
	cond := caai.Condition{MeanRTT: 50 * time.Millisecond, RTTStdDev: *rttStddev, LossRate: *loss}
	rng := rand.New(rand.NewSource(*seed))

	ta, tb, wmax, valid := caai.GatherTraces(server, cond, caai.ProbeConfig{}, rng)
	if !valid {
		return fmt.Errorf("no valid trace gathered from %s", server.Name)
	}
	fmt.Fprintf(stdout, "\ntrace A: %s\n", ta)
	fmt.Fprintf(stdout, "trace B: %s\n", tb)
	fmt.Fprintf(stdout, "wmax: %d\n", wmax)
	fmt.Fprintf(stdout, "features: %s\n", caai.ExtractFeatures(ta, tb))

	var result caai.Identification
	if *timings {
		result = id.IdentifyTimed(server, cond, caai.ProbeConfig{}, rand.New(rand.NewSource(*seed+1)))
	} else {
		result = id.Identify(server, cond, rand.New(rand.NewSource(*seed+1)))
	}
	fmt.Fprintf(stdout, "\nidentification: %s\n", result)
	if *timings {
		printTimings(stdout, result.Timings)
	}
	return nil
}

// printTimings renders the recorded per-stage spans, skipping stages that
// did not run (the CLI has no queue or cache).
func printTimings(w io.Writer, tm caai.StageTimings) {
	fmt.Fprintf(w, "\nstage timings (total %s):\n", tm.Total())
	for s := 0; s < caai.NumStages; s++ {
		if tm[s] == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-10s %s\n", caai.Stage(s), tm[s])
	}
}
