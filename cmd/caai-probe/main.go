// Command caai-probe runs the CAAI pipeline against one simulated Web
// server and prints the gathered traces, the extracted feature vector, and
// the classification.
//
// Usage:
//
//	caai-probe -algorithm CUBIC2 -loss 0.01 -conditions 25
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	caai "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "caai-probe:", err)
		os.Exit(1)
	}
}

func run() error {
	algorithm := flag.String("algorithm", "CUBIC2", "server congestion avoidance algorithm ("+strings.Join(caai.Algorithms(), ", ")+")")
	loss := flag.Float64("loss", 0, "path packet-loss rate in [0,1]")
	rttStddev := flag.Duration("jitter", 0, "path RTT standard deviation")
	conditions := flag.Int("conditions", 25, "training conditions per (algorithm, wmax) pair")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	fmt.Printf("training CAAI (%d conditions per pair)...\n", *conditions)
	id, err := caai.Train(caai.TrainingOptions{ConditionsPerPair: *conditions, Seed: *seed})
	if err != nil {
		return err
	}

	server := caai.NewTestbedServer(*algorithm)
	cond := caai.Condition{MeanRTT: 50 * time.Millisecond, RTTStdDev: *rttStddev, LossRate: *loss}
	rng := rand.New(rand.NewSource(*seed))

	ta, tb, wmax, valid := caai.GatherTraces(server, cond, caai.ProbeConfig{}, rng)
	if !valid {
		return fmt.Errorf("no valid trace gathered from %s", server.Name)
	}
	fmt.Printf("\ntrace A: %s\n", ta)
	fmt.Printf("trace B: %s\n", tb)
	fmt.Printf("wmax: %d\n", wmax)
	fmt.Printf("features: %s\n", caai.ExtractFeatures(ta, tb))

	result := id.Identify(server, cond, rand.New(rand.NewSource(*seed+1)))
	fmt.Printf("\nidentification: %s\n", result)
	return nil
}
