package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	caai "repro"
	"repro/internal/eval"
)

func TestSplitModelFlag(t *testing.T) {
	cases := []struct {
		in, name, path string
		wantErr        bool
	}{
		{in: "prod=/models/a.json", name: "prod", path: "/models/a.json"},
		{in: "/models/caai-model.json", name: "caai-model", path: "/models/caai-model.json"},
		{in: "model.json", name: "model", path: "model.json"},
		{in: "=path", wantErr: true},
		{in: "name=", wantErr: true},
	}
	for _, tc := range cases {
		name, path, err := splitModelFlag(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("splitModelFlag(%q) expected error", tc.in)
			}
			continue
		}
		if err != nil || name != tc.name || path != tc.path {
			t.Errorf("splitModelFlag(%q) = %q, %q, %v; want %q, %q", tc.in, name, path, err, tc.name, tc.path)
		}
	}
}

func TestRunArgumentErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the expected error
	}{
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"no model no train", nil, "no models"},
		{"missing model file", []string{"-model", "/does/not/exist.json"}, "exist.json"},
		{"malformed model flag", []string{"-model", "=x"}, "want [name=]path"},
		{"positional args", []string{"-train", "1", "extra"}, "unexpected arguments"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(context.Background(), tc.args, &out)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) err = %v, want substring %q", tc.args, err, tc.want)
			}
		})
	}
}

// syncBuffer lets the test read run()'s output while run still writes it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRe = regexp.MustCompile(`listening on (http://\S+)`)

// startServe launches run() on a free loopback port and returns the base
// URL plus a shutdown func that asserts a clean exit.
func startServe(t *testing.T, args []string) (string, *syncBuffer, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() { done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out) }()

	deadline := time.Now().Add(60 * time.Second)
	var base string
	for base == "" {
		if m := listenRe.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("run exited before listening: %v\noutput: %s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never listened; output: %s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	shutdown := sync.OnceFunc(func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("run returned %v on shutdown", err)
			}
		case <-time.After(30 * time.Second):
			t.Error("run did not return within 30s of cancellation")
		}
	})
	return base, out, shutdown
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestServeEndToEnd exercises the acceptance flow against a real listener:
// train a quick-scale model, serve it, identify synchronously, run an
// async batch to completion, hot-swap the model file via /v1/models/reload,
// and confirm a repeated request is answered from the cache via /metrics.
func TestServeEndToEnd(t *testing.T) {
	// NewQuickContext-scale training options (12 conditions per pair).
	id, err := caai.Train(caai.TrainingOptions{ConditionsPerPair: 12, Trees: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.json")
	if err := id.SaveModel(modelPath); err != nil {
		t.Fatal(err)
	}

	base, out, shutdown := startServe(t, []string{"-model", "caai=" + modelPath, "-workers", "2", "-trace-sample", "1"})
	defer shutdown()

	if !strings.Contains(out.String(), `loaded RandomForest model "caai"`) {
		t.Fatalf("missing load banner in output: %s", out.String())
	}

	// Liveness.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// Synchronous identification of a CUBIC2 testbed server.
	identifyReq := map[string]any{
		"server": map[string]any{"algorithm": "CUBIC2"},
		"seed":   3,
	}
	status, data := postJSON(t, base+"/v1/identify", identifyReq)
	if status != http.StatusOK {
		t.Fatalf("identify = %d: %s", status, data)
	}
	var ident struct {
		Model  string `json:"model"`
		Label  string `json:"label"`
		Valid  bool   `json:"valid"`
		Cached bool   `json:"cached"`
	}
	if err := json.Unmarshal(data, &ident); err != nil {
		t.Fatal(err)
	}
	if !ident.Valid || ident.Cached || ident.Model != "caai@1" {
		t.Fatalf("identify = %+v (%s)", ident, data)
	}
	if ident.Label == "" {
		t.Fatalf("no label in %s", data)
	}

	// Async batch: submit, poll to completion.
	batchReq := map[string]any{"jobs": []map[string]any{
		{"server": map[string]any{"algorithm": "RENO"}, "seed": 11},
		{"server": map[string]any{"algorithm": "BIC"}, "seed": 12},
	}}
	status, data = postJSON(t, base+"/v1/batch", batchReq)
	if status != http.StatusAccepted {
		t.Fatalf("batch = %d: %s", status, data)
	}
	var acc struct {
		JobID  string `json:"job_id"`
		Status string `json:"status_url"`
	}
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	var job struct {
		State     string `json:"state"`
		Completed int    `json:"completed"`
		Results   []struct {
			Valid bool   `json:"valid"`
			Label string `json:"label"`
		} `json:"results"`
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + acc.Status)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if job.State == "done" || job.State == "failed" || job.State == "cancelled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch stuck in %s", job.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if job.State != "done" || job.Completed != 2 || len(job.Results) != 2 {
		t.Fatalf("batch final = %+v", job)
	}
	for i, r := range job.Results {
		if !r.Valid {
			t.Fatalf("batch result %d invalid", i)
		}
	}

	// Hot-swap: re-save the model file, reload, and expect a new version.
	if err := id.SaveModel(modelPath); err != nil {
		t.Fatal(err)
	}
	status, data = postJSON(t, base+"/v1/models/reload", nil)
	if status != http.StatusOK {
		t.Fatalf("reload = %d: %s", status, data)
	}
	var rel struct {
		Reloaded []struct {
			Version string `json:"version"`
		} `json:"reloaded"`
	}
	if err := json.Unmarshal(data, &rel); err != nil {
		t.Fatal(err)
	}
	if len(rel.Reloaded) != 1 || rel.Reloaded[0].Version != "caai@2" {
		t.Fatalf("reloaded = %s", data)
	}

	// The same identify request now misses (new model version) ...
	status, data = postJSON(t, base+"/v1/identify", identifyReq)
	if status != http.StatusOK {
		t.Fatalf("identify after reload = %d", status)
	}
	if err := json.Unmarshal(data, &ident); err != nil {
		t.Fatal(err)
	}
	if ident.Cached || ident.Model != "caai@2" {
		t.Fatalf("identify after reload = %+v", ident)
	}
	// ... and repeating it is a cache hit, visible in /metrics.
	status, data = postJSON(t, base+"/v1/identify", identifyReq)
	if status != http.StatusOK {
		t.Fatalf("repeat identify = %d", status)
	}
	if err := json.Unmarshal(data, &ident); err != nil {
		t.Fatal(err)
	}
	if !ident.Cached {
		t.Fatalf("repeat identify not cached: %s", data)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		Cache struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
		ModelsReloaded int64 `json:"models_reloaded"`
		Labels         map[string]int64
	}
	err = json.NewDecoder(resp.Body).Decode(&metrics)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Cache.Hits < 1 {
		t.Fatalf("metrics cache hits = %d, want >= 1", metrics.Cache.Hits)
	}
	if metrics.Cache.Misses < 4 {
		t.Fatalf("metrics cache misses = %d, want >= 4", metrics.Cache.Misses)
	}
	if metrics.ModelsReloaded != 1 {
		t.Fatalf("models_reloaded = %d, want 1", metrics.ModelsReloaded)
	}

	// Flight recorder: with -trace-sample 1 every request above is
	// retained, so the sync identify's trace is listable by route and its
	// full span tree resolvable by ID.
	resp, err = http.Get(base + "/v1/traces?route=POST+%2Fv1%2Fidentify&limit=5")
	if err != nil {
		t.Fatal(err)
	}
	var traces struct {
		Traces []struct {
			ID    string `json:"id"`
			Route string `json:"route"`
			Spans int    `json:"spans"`
		} `json:"traces"`
	}
	err = json.NewDecoder(resp.Body).Decode(&traces)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(traces.Traces) == 0 {
		t.Fatal("no retained traces for POST /v1/identify with -trace-sample 1")
	}
	resp, err = http.Get(base + "/v1/traces/" + traces.Traces[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		ID    string `json:"id"`
		Spans []struct {
			Kind string `json:"kind"`
			Name string `json:"name"`
		} `json:"spans"`
	}
	err = json.NewDecoder(resp.Body).Decode(&tr)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if tr.ID != traces.Traces[0].ID {
		t.Fatalf("trace lookup returned %q, want %q", tr.ID, traces.Traces[0].ID)
	}

	// Shutdown banner appears on clean exit.
	shutdown()
	if !strings.Contains(out.String(), "shut down") {
		t.Fatalf("missing shutdown banner: %s", out.String())
	}
}

// TestServeTrainInProcess covers the -train path at minimal scale.
func TestServeTrainInProcess(t *testing.T) {
	base, out, shutdown := startServe(t, []string{"-train", "2", "-trees", "8", "-seed", "5"})
	defer shutdown()
	if !strings.Contains(out.String(), "training random forest") {
		t.Fatalf("missing training banner: %s", out.String())
	}
	status, data := postJSON(t, base+"/v1/identify", map[string]any{
		"server": map[string]any{"algorithm": "RENO"},
	})
	if status != http.StatusOK {
		t.Fatalf("identify = %d: %s", status, data)
	}
	var ident struct {
		Model string `json:"model"`
		Valid bool   `json:"valid"`
	}
	if err := json.Unmarshal(data, &ident); err != nil {
		t.Fatal(err)
	}
	if !ident.Valid || ident.Model != "default@1" {
		t.Fatalf("identify = %+v", ident)
	}
}

func TestRunHelpIsNotAnError(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-h"}, &out); err != nil {
		t.Fatalf("run(-h) = %v", err)
	}
	if !strings.Contains(out.String(), "Usage of caai-serve") {
		t.Fatalf("usage not printed:\n%s", out.String())
	}
}

func TestRunRejectsDuplicateModelNames(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-model", "a/model.json", "-model", "b/model.json"}, &out)
	if err == nil || !strings.Contains(err.Error(), "used for both") {
		t.Fatalf("duplicate names err = %v", err)
	}
}

func TestRunRejectsModelPlusTrain(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-model", "m.json", "-train", "4"}, &out)
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("-model + -train err = %v", err)
	}
}

// TestServeEvalSummaryFlag: -eval loads the newest ACCURACY_<n>.json of a
// history directory and exposes its summary on GET /metrics.
func TestServeEvalSummaryFlag(t *testing.T) {
	dir := t.TempDir()
	older := eval.Point{Schema: eval.PointSchema, Source: "caai-eval",
		Summary: eval.Summary{Label: "older", OverallAccuracy: 0.8}}
	newest := eval.Point{Schema: eval.PointSchema, Source: "caai-eval",
		Summary: eval.Summary{Label: "newest", OverallAccuracy: 0.9,
			ScenarioAccuracy: map[string]float64{"clean": 0.99}}}
	if err := eval.WritePoint(filepath.Join(dir, "ACCURACY_0.json"), older); err != nil {
		t.Fatal(err)
	}
	if err := eval.WritePoint(filepath.Join(dir, "ACCURACY_1.json"), newest); err != nil {
		t.Fatal(err)
	}

	base, out, shutdown := startServe(t, []string{"-train", "3", "-trees", "8", "-eval", dir})
	defer shutdown()
	if !strings.Contains(out.String(), `serving eval summary "newest"`) {
		t.Fatalf("missing eval banner: %s", out.String())
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Eval *eval.Summary `json:"eval"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Eval == nil || snap.Eval.Label != "newest" || snap.Eval.ScenarioAccuracy["clean"] != 0.99 {
		t.Fatalf("metrics eval = %+v", snap.Eval)
	}
}

// TestLoadEvalSummaryErrors: a missing path, an empty history, and a
// non-ACCURACY JSON file all fail loudly instead of serving silence.
func TestLoadEvalSummaryErrors(t *testing.T) {
	if _, err := loadEvalSummary(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing -eval path should error")
	}
	if _, err := loadEvalSummary(t.TempDir()); err == nil {
		t.Fatal("empty -eval history should error")
	}
	foreign := filepath.Join(t.TempDir(), "BENCH_0.json")
	if err := os.WriteFile(foreign, []byte(`{"schema":1,"source":"caai-bench"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadEvalSummary(foreign); err == nil {
		t.Fatal("a non-ACCURACY point should be rejected, not served as 0% accuracy")
	}
	var out bytes.Buffer
	err := run(context.Background(), []string{"-train", "1", "-eval", "/does/not/exist"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-eval") {
		t.Fatalf("run with bad -eval = %v", err)
	}
}
