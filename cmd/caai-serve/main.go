// Command caai-serve runs CAAI as a resident identification service: it
// loads one or more trained models once (or trains one in-process) and
// answers identification requests over HTTP until interrupted.
//
// Usage:
//
//	caai-serve -model caai-model.json                      # serve a saved model
//	caai-serve -model prod=a.json -model canary=b.json     # several named models
//	caai-serve -train 12 -addr :9090                       # train in-process, then serve
//
// Endpoints: POST /v1/identify (synchronous), POST /v1/batch plus
// GET /v1/jobs/{id} (asynchronous), POST /v1/pcap (upload a packet
// capture; per-flow identifications land in the async job payload),
// POST /v1/models/reload (hot-swap retrained model files without
// downtime), GET /v1/models, GET /v1/traces plus GET /v1/traces/{id}
// (tail-sampled request traces from the flight recorder; tune with
// -trace-sample and -trace-slow), GET /healthz, GET /metrics. See the
// README's "Serving identifications", "Identifying from packet
// captures" and "Observability" sections for curl examples.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	caai "repro"
	"repro/internal/eval"
	"repro/internal/service"
)

// loadEvalSummary resolves -eval: a file loads that trajectory point, a
// directory loads only the newest ACCURACY_<n>.json of its history (old
// or stale points are neither parsed nor able to block startup).
func loadEvalSummary(path string) (eval.Summary, error) {
	info, err := os.Stat(path)
	if err != nil {
		return eval.Summary{}, err
	}
	p := eval.Point{}
	if info.IsDir() {
		p, err = eval.LatestPoint(path)
	} else {
		p, err = eval.ReadPoint(path)
	}
	if err != nil {
		return eval.Summary{}, err
	}
	return p.Summary, nil
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "caai-serve:", err)
		os.Exit(1)
	}
}

// modelList collects repeated -model flags ("[name=]path").
type modelList []string

func (m *modelList) String() string { return strings.Join(*m, ", ") }

func (m *modelList) Set(v string) error {
	if v == "" {
		return fmt.Errorf("empty -model value")
	}
	*m = append(*m, v)
	return nil
}

// splitModelFlag parses one -model value. A bare path names the model
// after its file base (sans extension).
func splitModelFlag(v string) (name, path string, err error) {
	if i := strings.IndexByte(v, '='); i >= 0 {
		name, path = v[:i], v[i+1:]
		if name == "" || path == "" {
			return "", "", fmt.Errorf("-model %q: want [name=]path", v)
		}
		return name, path, nil
	}
	base := filepath.Base(v)
	return strings.TrimSuffix(base, filepath.Ext(base)), v, nil
}

// run is the testable body of the command: it serves until ctx is
// cancelled (then shuts down gracefully) or the listener fails.
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("caai-serve", flag.ContinueOnError)
	// Parse errors surface once, via the returned error; only an explicit
	// -h prints usage, on the success stream.
	fs.SetOutput(io.Discard)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	var models modelList
	fs.Var(&models, "model", "model file saved by caai-train -save, as [name=]path; repeatable, first is the default model")
	train := fs.Int("train", 0, "without -model: train an in-process random forest with this many conditions per (algorithm, wmax) pair")
	trees := fs.Int("trees", 0, "forest size for -train (0 = paper's 80)")
	seed := fs.Int64("seed", 2011, "random seed for -train")
	cache := fs.Int("cache", 0, "LRU result cache entries (0 = default 4096, negative disables)")
	queue := fs.Int("queue", 0, "bounded async job queue length (0 = default 64)")
	workers := fs.Int("workers", 0, "concurrent batch executors (0 = 1)")
	parallelism := fs.Int("parallelism", 0, "engine pool width per running batch (0 = all CPUs)")
	maxBatch := fs.Int("max-batch", 0, "max jobs per POST /v1/batch (0 = default 10000)")
	retain := fs.Int("retain", 0, "finished async jobs kept pollable before eviction (0 = default 256)")
	evalPath := fs.String("eval", "", "ACCURACY_<n>.json file or history directory; the latest point's summary is exposed on GET /metrics")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof profiling handlers at /debug/pprof/ (opt-in: exposes goroutine and heap internals)")
	logRequests := fs.Bool("log-requests", false, "log every request (method, route, status, duration, request ID) as structured slog lines on stderr")
	traceSample := fs.Int("trace-sample", service.DefaultTraceSampleN, "tail-sampling rate for normal traffic: keep 1 in N traces (1 keeps all, negative keeps none); error/unsure/slow traces are always kept")
	traceSlow := fs.Duration("trace-slow", service.DefaultTraceSlow, "requests at least this slow are always trace-retained regardless of sampling")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(stdout)
			fs.Usage()
			return nil // a help request is not a failure
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	if len(models) > 0 && *train > 0 {
		return fmt.Errorf("-model and -train are mutually exclusive: -train only applies when no saved model is given")
	}
	// Validate every -model flag (including name collisions, which would
	// otherwise silently hot-swap one model over another) before loading.
	type namedModel struct{ name, path string }
	var toLoad []namedModel
	seen := map[string]string{}
	for _, v := range models {
		name, path, err := splitModelFlag(v)
		if err != nil {
			return err
		}
		if prev, dup := seen[name]; dup {
			return fmt.Errorf("-model name %q used for both %s and %s: give one an explicit name=path", name, prev, path)
		}
		seen[name] = path
		toLoad = append(toLoad, namedModel{name, path})
	}
	// Resolve -eval before the (potentially minutes-long) model loading and
	// training: a typoed path should fail immediately.
	var evalSummary *eval.Summary
	if *evalPath != "" {
		sum, err := loadEvalSummary(*evalPath)
		if err != nil {
			return fmt.Errorf("-eval: %w", err)
		}
		evalSummary = &sum
	}

	reg := service.NewRegistry()
	for _, nm := range toLoad {
		m, err := reg.Load(nm.name, nm.path)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "caai-serve: loaded %s model %q from %s\n", m.Backend, m.Name, nm.path)
	}
	if reg.Len() == 0 {
		if *train <= 0 {
			return fmt.Errorf("no models: pass -model path (see caai-train -save) or -train N to train in-process")
		}
		fmt.Fprintf(stdout, "caai-serve: training random forest (%d conditions per pair)...\n", *train)
		id, err := caai.Train(caai.TrainingOptions{ConditionsPerPair: *train, Trees: *trees, Seed: *seed})
		if err != nil {
			return err
		}
		reg.Add("default", id.Classifier())
	}

	svcCfg := service.Config{
		CacheSize:    *cache,
		QueueSize:    *queue,
		Workers:      *workers,
		Parallelism:  *parallelism,
		MaxBatchJobs: *maxBatch,
		JobRetention: *retain,
		TraceSampleN: *traceSample,
		TraceSlow:    *traceSlow,
	}
	if *logRequests {
		svcCfg.AccessLog = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	svc := service.New(reg, svcCfg)
	defer svc.Close()

	if evalSummary != nil {
		svc.SetEvalSummary(*evalSummary)
		fmt.Fprintf(stdout, "caai-serve: serving eval summary %q (overall accuracy %.1f%%) on /metrics\n",
			evalSummary.Label, evalSummary.OverallAccuracy*100)
	}

	handler := svc.Handler()
	if *pprofOn {
		// The API handler keeps the root; pprof mounts beside it on an
		// explicit mux (not http.DefaultServeMux, which third-party imports
		// can pollute).
		root := http.NewServeMux()
		root.Handle("/", handler)
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = root
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	fmt.Fprintf(stdout, "caai-serve: listening on http://%s (models: %s)\n", ln.Addr(), strings.Join(reg.Names(), ", "))
	if *pprofOn {
		fmt.Fprintf(stdout, "caai-serve: pprof enabled at http://%s/debug/pprof/\n", ln.Addr())
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		<-errc // Serve has returned ErrServerClosed
		fmt.Fprintln(stdout, "caai-serve: shut down")
		return nil
	case err := <-errc:
		return err
	}
}
