package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenModel is the committed forest the eval and flow golden fixtures
// pin; loading it keeps CLI tests fast (no training).
var goldenModel = filepath.Join("..", "..", "internal", "eval", "testdata", "golden", "model.json")

// genCapture writes a small synthetic capture via the CLI's own -gen mode.
func genCapture(t *testing.T, algorithms string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "capture.pcap")
	var out bytes.Buffer
	if err := run([]string{"-gen", algorithms, "-o", path, "-seed", "41"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote pcap capture") {
		t.Fatalf("gen output: %q", out.String())
	}
	return path
}

func TestIdentifyCaptureTable(t *testing.T) {
	path := genCapture(t, "CUBIC2,RENO")
	var out bytes.Buffer
	if err := run([]string{"-model", goldenModel, path}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "flows (") || !strings.Contains(text, "IDENTIFICATION") {
		t.Fatalf("missing table header:\n%s", text)
	}
	// Two servers probed -> two result rows with confident labels.
	if strings.Count(text, "confidence") != 2 {
		t.Fatalf("want 2 identifications:\n%s", text)
	}
}

func TestIdentifyCaptureJSON(t *testing.T) {
	path := genCapture(t, "CUBIC2")
	var out bytes.Buffer
	if err := run([]string{"-model", goldenModel, "-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	// -json keeps stdout pure JSON (status lines are suppressed).
	text := out.String()
	var doc struct {
		Stats struct {
			Flows        int64 `json:"flows"`
			Classifiable int64 `json:"classifiable"`
		} `json:"stats"`
		Results []struct {
			Server  string  `json:"server"`
			ClientA string  `json:"client_a"`
			ClientB string  `json:"client_b"`
			Label   string  `json:"label"`
			Valid   bool    `json:"valid"`
			RTTMs   float64 `json:"rtt_ms"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(text), &doc); err != nil {
		t.Fatalf("stdout is not pure JSON: %v\n%s", err, text)
	}
	// Both the environment A and B gatherings of CUBIC2 time out, so the
	// capture holds two flows and both reconstruct to valid traces.
	if doc.Stats.Flows != 2 || doc.Stats.Classifiable != 2 {
		t.Fatalf("stats: %+v", doc.Stats)
	}
	if len(doc.Results) != 1 || !doc.Results[0].Valid || doc.Results[0].Label == "" {
		t.Fatalf("results: %+v", doc.Results)
	}
	if doc.Results[0].ClientB == "" || doc.Results[0].RTTMs != 1000 {
		t.Fatalf("pairing metadata: %+v", doc.Results[0])
	}
}

func TestStdinInput(t *testing.T) {
	path := genCapture(t, "RENO")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdin
	r, w, _ := os.Pipe()
	os.Stdin = r
	t.Cleanup(func() { os.Stdin = old })
	go func() {
		w.Write(data)
		w.Close()
	}()
	var out bytes.Buffer
	if err := run([]string{"-model", goldenModel, "-"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "confidence") {
		t.Fatalf("no identification from stdin:\n%s", out.String())
	}
}

func TestArgumentErrors(t *testing.T) {
	var out bytes.Buffer
	cases := [][]string{
		{},                               // no input
		{"a.pcap", "b.pcap"},             // two inputs
		{"-gen", "CUBIC2", "x.pcap"},     // gen with input
		{"-gen", "NOPE", "-o", "x.pcap"}, // unknown algorithm
		{"-model", "nope.json", "-classifier", "knn", "x"}, // exclusive flags
	}
	for _, args := range cases {
		if err := run(args, &out); err == nil {
			t.Fatalf("args %v: expected an error", args)
		}
	}
	if err := run([]string{"-h"}, &out); err != nil {
		t.Fatalf("-h: %v", err)
	}
	if !strings.Contains(out.String(), "-model") {
		t.Fatal("usage not printed")
	}
}

func TestMissingFile(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-model", goldenModel, "definitely-missing.pcap"}, &out); err == nil {
		t.Fatal("missing capture file must error")
	}
}
