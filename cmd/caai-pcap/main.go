// Command caai-pcap identifies TCP congestion avoidance algorithms from
// packet captures: it decodes a pcap/pcapng file, reassembles the TCP
// flows, reconstructs each flow's per-RTT congestion window trace, pairs
// the connections a client made to one server, and classifies every pair
// with a trained model -- the passive counterpart of caai-probe. With
// -gen it synthesizes a capture from the simulated testbed instead, so
// the whole passive pipeline can be exercised without real traffic.
//
// Usage:
//
//	caai-pcap -model model.json capture.pcap
//	caai-pcap -conditions 12 capture.pcap          (train a fresh model)
//	caai-pcap -model model.json -json capture.pcap
//	cat capture.pcap | caai-pcap -model model.json -
//	tcpdump -i eth0 -w - | caai-pcap -model model.json -follow -
//	caai-pcap -gen CUBIC2,RENO,VEGAS -o capture.pcap
//
// -follow switches to the streaming pipeline: flows are classified and
// printed the moment they close (idle past the expiry threshold), so an
// endless live capture produces a continuous result stream in bounded
// memory instead of buffering until EOF.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	caai "repro"
	"repro/internal/pcapgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "caai-pcap:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("caai-pcap", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	model := fs.String("model", "", "load a saved model instead of retraining (see caai-train -save)")
	backend := fs.String("classifier", "randomforest", "classifier backend ("+strings.Join(caai.ClassifierBackends(), ", ")+")")
	conditions := fs.Int("conditions", 25, "training conditions per (algorithm, wmax) pair when no -model is given")
	seed := fs.Int64("seed", 1, "random seed (training and -gen)")
	jsonOut := fs.Bool("json", false, "emit JSON instead of the table")
	parallelism := fs.Int("parallelism", 0, "classification parallelism (0 = all CPUs)")
	timings := fs.Bool("timings", false, "record and report per-stage wall-clock timings (decode, feature, classify)")
	maxFlows := fs.Int("max-flows", 0, "bound on concurrently tracked flows (0 = default)")
	follow := fs.Bool("follow", false, "stream continuously: classify and print each flow as it closes (idle flows expire) instead of waiting for end of input; suits endless live captures on stdin")
	gen := fs.String("gen", "", "generate a synthetic capture for the comma-separated algorithms instead of ingesting one")
	out := fs.String("o", "", "output file for -gen (default stdout)")
	format := fs.String("format", "pcap", "capture format for -gen (pcap or pcapng)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(stdout)
			fs.Usage()
			return nil
		}
		return err
	}

	if *gen != "" {
		if fs.NArg() > 0 {
			return fmt.Errorf("-gen writes a capture and takes no input file")
		}
		return generate(stdout, *gen, *out, *format, *seed)
	}

	if fs.NArg() != 1 {
		return fmt.Errorf("exactly one capture file is required (or - for stdin)")
	}
	input := fs.Arg(0)

	// Status lines would corrupt the machine-readable document, so -json
	// keeps stdout for the JSON alone.
	status := stdout
	if *jsonOut {
		status = io.Discard
	}
	id, err := loadOrTrain(status, *model, *backend, *conditions, *seed, fs)
	if err != nil {
		return err
	}

	var r io.Reader
	if input == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(input)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}

	if *follow {
		return followStream(stdout, id, r, *jsonOut, *maxFlows, *parallelism)
	}

	opts := caai.CaptureOptions{Parallelism: *parallelism, Timings: *timings}
	opts.Tracker.MaxFlows = *maxFlows
	pairs, stats, err := id.IdentifyCapture(r, opts)
	if err != nil {
		return err
	}
	if *jsonOut {
		return writeJSON(stdout, pairs, stats, *timings)
	}
	writeTable(stdout, pairs, stats)
	if *timings {
		writeTimingsSummary(stdout, pairs)
	}
	return nil
}

// followStream runs the streaming pipeline: capture bytes in (typically
// an endless live capture piped to stdin), one result line out per flow
// pair as it closes. With -json each line is a self-contained JSON
// object (NDJSON); otherwise a table row prints under a one-time header.
func followStream(stdout io.Writer, id *caai.Identifier, r io.Reader, jsonOut bool, maxFlows, parallelism int) error {
	var opts caai.StreamOptions
	opts.Stream.Tracker.MaxFlows = maxFlows
	opts.Stream.Shards = parallelism
	enc := json.NewEncoder(stdout)
	if !jsonOut {
		fmt.Fprintf(stdout, "%-22s %-22s %7s %8s  %s\n", "SERVER", "CLIENT", "PKTS", "RTT", "IDENTIFICATION")
	}
	var results int64
	st := id.IdentifyStream(context.Background(), opts, func(p caai.FlowIdentification) {
		results++
		if jsonOut {
			_ = enc.Encode(toJSONResult(p))
			return
		}
		client := p.A.Client
		pkts := p.A.Packets
		if p.B != nil {
			client += "+"
			pkts += p.B.Packets
		}
		fmt.Fprintf(stdout, "%-22s %-22s %7d %8s  %s\n",
			p.A.Server, client, pkts, p.A.RTT.Round(time.Millisecond), p.ID)
	})
	_, cerr := io.Copy(st, r)
	err := st.Close()
	if err == nil {
		err = cerr
	}
	stats := st.Stats()
	if jsonOut {
		_ = enc.Encode(map[string]any{"stats": stats})
	} else {
		fmt.Fprintf(stdout, "\n%d packets, %d TCP segments, %d flows (%d classifiable), %d results\n",
			stats.Packets, stats.TCPSegments, stats.Flows, stats.Classifiable, results)
	}
	return err
}

// writeTimingsSummary totals the per-stage spans over every classified
// pair for the -timings table footer.
func writeTimingsSummary(w io.Writer, pairs []caai.FlowIdentification) {
	var total caai.StageTimings
	for _, p := range pairs {
		for s := 0; s < caai.NumStages; s++ {
			total[s] += p.ID.Timings[s]
		}
	}
	fmt.Fprintf(w, "\nstage timings over %d pair(s) (total %s):\n", len(pairs), total.Total())
	for s := 0; s < caai.NumStages; s++ {
		if total[s] == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-10s %s\n", caai.Stage(s), total[s])
	}
}

// loadOrTrain resolves the model exactly as caai-probe does: -model loads
// a saved file (and excludes -classifier), otherwise a fresh model is
// trained on the simulated testbed.
func loadOrTrain(stdout io.Writer, model, backend string, conditions int, seed int64, fs *flag.FlagSet) (*caai.Identifier, error) {
	if model != "" {
		classifierSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "classifier" {
				classifierSet = true
			}
		})
		if classifierSet {
			return nil, fmt.Errorf("-model and -classifier are mutually exclusive: a loaded model already fixes the backend")
		}
		id, err := caai.LoadModel(model)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(stdout, "loaded %s model from %s\n", id.Classifier().Name(), model)
		return id, nil
	}
	fmt.Fprintf(stdout, "training CAAI %s (%d conditions per pair)...\n", backend, conditions)
	return caai.TrainWithClassifier(caai.TrainingOptions{ConditionsPerPair: conditions, Seed: seed}, backend)
}

// generate writes a synthetic testbed capture for the named algorithms.
func generate(stdout io.Writer, algorithms, out, format string, seed int64) error {
	var specs []pcapgen.ServerSpec
	for i, alg := range strings.Split(algorithms, ",") {
		alg = strings.TrimSpace(alg)
		if alg == "" {
			continue
		}
		if _, err := caai.NewAlgorithm(alg); err != nil {
			return err
		}
		specs = append(specs, pcapgen.ServerSpec{Algorithm: alg, Seed: seed + int64(i)})
	}
	if len(specs) == 0 {
		return fmt.Errorf("-gen needs at least one algorithm")
	}
	w := stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	results, err := pcapgen.Generate(w, specs, pcapgen.Options{Format: format})
	if err != nil {
		return err
	}
	dest := "stdout"
	if out != "" {
		dest = out
	}
	if out != "" { // keep stdout parseable when the capture itself goes there
		valid := 0
		for _, res := range results {
			if res.Valid {
				valid++
			}
		}
		fmt.Fprintf(stdout, "wrote %s capture of %d server(s) (%d valid gatherings) to %s\n",
			format, len(specs), valid, dest)
	}
	return nil
}

// jsonResult is the -json wire form of one identification.
type jsonResult struct {
	Server     string    `json:"server"`
	ClientA    string    `json:"client_a"`
	ClientB    string    `json:"client_b,omitempty"`
	Packets    int64     `json:"packets"`
	RTTMs      float64   `json:"rtt_ms"`
	Label      string    `json:"label,omitempty"`
	Confidence float64   `json:"confidence,omitempty"`
	Special    string    `json:"special,omitempty"`
	Valid      bool      `json:"valid"`
	Reason     string    `json:"reason,omitempty"`
	Wmax       int       `json:"wmax,omitempty"`
	MSS        int       `json:"mss,omitempty"`
	Features   []float64 `json:"features,omitempty"`
	// Timings is the per-stage wall-clock breakdown in milliseconds,
	// present only under -timings (keys follow internal/telemetry's stage
	// names).
	Timings map[string]float64 `json:"timings_ms,omitempty"`
	Text    string             `json:"text"`
}

func toJSONResult(p caai.FlowIdentification) jsonResult {
	out := jsonResult{
		Server:  p.A.Server,
		ClientA: p.A.Client,
		Packets: p.A.Packets,
		RTTMs:   float64(p.A.RTT) / float64(time.Millisecond),
		Valid:   p.ID.Valid,
		Reason:  string(p.ID.Reason),
		Wmax:    p.ID.Wmax,
		MSS:     p.ID.MSS,
		Text:    p.ID.String(),
	}
	if p.B != nil {
		out.ClientB = p.B.Client
		out.Packets += p.B.Packets
	}
	switch {
	case !p.ID.Valid:
	case p.ID.Special != 0:
		out.Special = p.ID.Special.String()
	default:
		out.Label = p.ID.Label
		out.Confidence = p.ID.Confidence
		out.Features = append([]float64(nil), p.ID.Vector.Slice()...)
	}
	return out
}

func writeJSON(w io.Writer, pairs []caai.FlowIdentification, stats caai.CaptureStats, timings bool) error {
	results := make([]jsonResult, 0, len(pairs))
	for _, p := range pairs {
		jr := toJSONResult(p)
		if timings {
			jr.Timings = map[string]float64{}
			for s := 0; s < caai.NumStages; s++ {
				if d := p.ID.Timings[s]; d != 0 {
					jr.Timings[caai.Stage(s).String()] = float64(d) / float64(time.Millisecond)
				}
			}
		}
		results = append(results, jr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{"stats": stats, "results": results})
}

func writeTable(w io.Writer, pairs []caai.FlowIdentification, stats caai.CaptureStats) {
	fmt.Fprintf(w, "\n%d packets, %d TCP segments, %d flows (%d classifiable)\n\n",
		stats.Packets, stats.TCPSegments, stats.Flows, stats.Classifiable)
	fmt.Fprintf(w, "%-22s %-22s %7s %8s %6s  %s\n", "SERVER", "CLIENT", "PKTS", "RTT", "WMAX", "IDENTIFICATION")
	for _, p := range pairs {
		pkts := p.A.Packets
		client := p.A.Client
		if p.B != nil {
			pkts += p.B.Packets
			client += "+"
		}
		wmax := "-"
		if p.ID.Wmax > 0 {
			wmax = fmt.Sprint(p.ID.Wmax)
		}
		fmt.Fprintf(w, "%-22s %-22s %7d %8s %6s  %s\n",
			p.A.Server, client, pkts, p.A.RTT.Round(time.Millisecond), wmax, p.ID)
	}
}
