package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	caai "repro"
)

// trainedModel trains one tiny forest per test binary and saves it for
// every test that needs a -model file.
var trainedModel = sync.OnceValues(func() (string, error) {
	id, err := caai.Train(caai.TrainingOptions{ConditionsPerPair: 2, Trees: 8, Seed: 7})
	if err != nil {
		return "", err
	}
	dir, err := os.MkdirTemp("", "caai-census-test")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "model.json")
	return path, id.SaveModel(path)
})

func modelPath(t *testing.T) string {
	t.Helper()
	path, err := trainedModel()
	if err != nil {
		t.Fatal(err)
	}
	return path
}

// tableOf extracts the rendered Table IV block from command output.
func tableOf(t *testing.T, out string) string {
	t.Helper()
	i := strings.Index(out, "Servers:")
	if i < 0 {
		t.Fatalf("output has no table:\n%s", out)
	}
	return out[i:]
}

func TestRunHelp(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-h"}, &buf); err != nil {
		t.Fatalf("-h returned %v", err)
	}
	if !strings.Contains(buf.String(), "-fault-plan") {
		t.Fatalf("usage output missing flags:\n%s", buf.String())
	}
}

func TestRunFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"unexpected args", []string{"bogus"}},
		{"unknown flag", []string{"-nope"}},
		{"resume without checkpoint", []string{"-resume"}},
		{"missing fault plan", []string{"-fault-plan", filepath.Join(t.TempDir(), "absent.json")}},
		{"missing model", []string{"-model", filepath.Join(t.TempDir(), "absent.json")}},
	} {
		var buf bytes.Buffer
		if err := run(context.Background(), tc.args, &buf); err == nil {
			t.Errorf("%s: run accepted %v", tc.name, tc.args)
		}
	}
}

func TestCensusRunPrintsTable(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-model", modelPath(t), "-servers", "120", "-seed", "3", "-workers", "2"}
	if err := run(context.Background(), args, &buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	table := tableOf(t, buf.String())
	if !strings.Contains(table, "120 total") || !strings.Contains(table, "label \\ wmax") {
		t.Fatalf("unexpected table:\n%s", table)
	}
}

// TestInterruptResumeMatchesClean is the command-level determinism
// contract: interrupt a checkpointed run mid-campaign (the SIGINT path:
// context cancellation), resume it, and require the resumed table to be
// byte-identical to an uninterrupted run. The fault plan injects only
// latency spikes -- they stretch the run enough to interrupt reliably
// without changing any probe outcome.
func TestInterruptResumeMatchesClean(t *testing.T) {
	model := modelPath(t)
	plan := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(plan, []byte(`{"seed":1,"latency_spike_rate":1,"latency_spike_ms":10}`), 0o644); err != nil {
		t.Fatal(err)
	}
	base := []string{"-model", model, "-servers", "200", "-seed", "3", "-workers", "4", "-fault-plan", plan}

	var clean bytes.Buffer
	if err := run(context.Background(), base, &clean); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	want := tableOf(t, clean.String())

	// Interrupted run: cancel as soon as the first checkpoint record is
	// durable (with 10 ms spikes the campaign has ~500 ms left to run).
	ckpt := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var interrupted bytes.Buffer
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, append(base, "-checkpoint", ckpt), &interrupted)
	}()
	records := filepath.Join(ckpt, "checkpoint.jsonl")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if fi, err := os.Stat(records); err == nil && fi.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("checkpoint never grew a record")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	err := <-errc
	if err == nil {
		t.Fatal("interrupted run returned nil (campaign finished before the cancel; raise the spike)")
	}
	if !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("interrupted run error = %v", err)
	}
	out := interrupted.String()
	if !strings.Contains(out, "partial results over") || !strings.Contains(out, "re-run with -resume") {
		t.Fatalf("interrupted output missing partial table or resume hint:\n%s", out)
	}

	// Resume with the same flags: restored targets are not re-probed and
	// the final table matches the uninterrupted run exactly.
	var resumed bytes.Buffer
	if err := run(context.Background(), append(base, "-checkpoint", ckpt, "-resume"), &resumed); err != nil {
		t.Fatalf("resume run: %v\n%s", err, resumed.String())
	}
	if !strings.Contains(resumed.String(), "resumed ") {
		t.Fatalf("resume run restored nothing:\n%s", resumed.String())
	}
	if got := tableOf(t, resumed.String()); got != want {
		t.Fatalf("resumed table diverged from clean run:\n--- resumed\n%s\n--- clean\n%s", got, want)
	}
}
