// Command caai-census reproduces the paper's Internet measurement: it
// generates the synthetic population of Web servers, probes every one with
// the CAAI ladder, and prints Table IV. With -model it loads a model saved
// by caai-train -save and skips retraining entirely.
//
// Usage:
//
//	caai-census -servers 63124 -conditions 100
//	caai-census -servers 63124 -model model.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/classify"
	"repro/internal/experiments"
	"repro/internal/prof"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "caai-census:", err)
		os.Exit(1)
	}
}

func run() error {
	servers := flag.Int("servers", 63124, "population size")
	conditions := flag.Int("conditions", 100, "training conditions per (algorithm, wmax) pair")
	seed := flag.Int64("seed", 2011, "random seed")
	model := flag.String("model", "", "load a saved model instead of retraining (see caai-train -save)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stop, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer stop()

	ctx := experiments.NewContext()
	ctx.CensusServers = *servers
	ctx.TrainingConditions = *conditions
	ctx.Seed = *seed

	if *model != "" {
		c, err := classify.LoadFile(*model)
		if err != nil {
			return err
		}
		ctx.UseModel(c)
		fmt.Printf("loaded %s model from %s, probing %d servers...\n\n", c.Name(), *model, *servers)
	} else {
		fmt.Printf("training CAAI (%d conditions per pair), then probing %d servers...\n\n", *conditions, *servers)
	}
	t4, err := experiments.TableIV(ctx)
	if err != nil {
		return err
	}
	fmt.Println(t4)
	return nil
}
