// Command caai-census reproduces the paper's Internet measurement as a
// fault-tolerant campaign: it generates the synthetic population of Web
// servers, shards it across coordinator workers (retry/backoff, work
// stealing, optional checkpointing), and prints Table IV. With -model it
// loads a model saved by caai-train -save and skips retraining entirely.
//
// Usage:
//
//	caai-census -servers 63124 -conditions 100
//	caai-census -servers 63124 -model model.json -workers 8
//	caai-census -model model.json -checkpoint run1/            # resumable
//	caai-census -model model.json -checkpoint run1/ -resume    # continue
//	caai-census -model model.json -fault-plan chaos.json       # inject faults
//
// An interrupted run (SIGINT/SIGTERM) flushes its checkpoint, prints the
// partial table over the targets completed so far, and exits non-zero;
// re-running with -resume picks up where it stopped and converges to the
// same table as an uninterrupted run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	caai "repro"
	"repro/internal/census"
	"repro/internal/census/shard"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/prof"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "caai-census:", err)
		os.Exit(1)
	}
}

// run is the testable body of the command: it probes until the census
// completes or ctx is cancelled (then it flushes the checkpoint, prints
// the partial table, and returns a non-nil "interrupted" error).
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("caai-census", flag.ContinueOnError)
	// Parse errors surface once, via the returned error; only an explicit
	// -h prints usage, on the success stream.
	fs.SetOutput(io.Discard)
	servers := fs.Int("servers", 63124, "population size")
	conditions := fs.Int("conditions", 100, "training conditions per (algorithm, wmax) pair (ignored with -model)")
	seed := fs.Int64("seed", 2011, "random seed")
	model := fs.String("model", "", "load a saved model instead of retraining (see caai-train -save)")
	workers := fs.Int("workers", 0, "coordinator shard workers (0 = default 4)")
	maxAttempts := fs.Int("max-attempts", 0, "probe attempts per target before abandoning (0 = default 4)")
	maxDeferrals := fs.Int("max-deferrals", 0, "rate-limit deferrals per target before abandoning (0 = default 8)")
	checkpoint := fs.String("checkpoint", "", "directory for incremental checkpointing (enables kill+resume)")
	resume := fs.Bool("resume", false, "resume a prior run from -checkpoint instead of starting over")
	faultPlan := fs.String("fault-plan", "", "JSON fault-injection plan (see internal/census/shard.FaultPlan)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(stdout)
			fs.Usage()
			return nil // a help request is not a failure
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume needs -checkpoint: there is nothing to resume from")
	}

	var plan *shard.FaultPlan
	if *faultPlan != "" {
		p, err := shard.LoadFaultPlan(*faultPlan)
		if err != nil {
			return err
		}
		plan = p
	}

	stop, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer stop()

	var id *core.Identifier
	if *model != "" {
		c, err := classify.LoadFile(*model)
		if err != nil {
			return err
		}
		id = core.NewIdentifier(c)
		fmt.Fprintf(stdout, "loaded %s model from %s, probing %d servers...\n\n", c.Name(), *model, *servers)
	} else {
		fmt.Fprintf(stdout, "training CAAI (%d conditions per pair), then probing %d servers...\n\n", *conditions, *servers)
		trained, err := caai.Train(caai.TrainingOptions{ConditionsPerPair: *conditions, Seed: *seed})
		if err != nil {
			return err
		}
		id = core.NewIdentifier(trained.Classifier())
	}

	// The same seed derivations as experiments.TableIV and the service's
	// POST /v1/census, so every runner produces the identical table.
	popCfg := census.DefaultPopulationConfig()
	popCfg.Servers = *servers
	popCfg.Seed = *seed + 77
	pop := census.GeneratePopulation(popCfg)

	coord, err := shard.New(pop, id, netem.MeasuredDatabase(), shard.Config{
		Workers:      *workers,
		Seed:         *seed + 99,
		MaxAttempts:  *maxAttempts,
		MaxDeferrals: *maxDeferrals,
		Checkpoint:   *checkpoint,
		Resume:       *resume,
		Fault:        plan,
	})
	if err != nil {
		return err
	}
	runErr := coord.Run(ctx)
	p := coord.Progress()
	if p.Resumed > 0 {
		fmt.Fprintf(stdout, "resumed %d targets from checkpoint %s\n", p.Resumed, *checkpoint)
	}
	if p.Retries+p.Deferrals+p.TargetsAbandoned > 0 {
		fmt.Fprintf(stdout, "fault handling: %d retries, %d deferrals, %d targets abandoned, %.2fs backoff\n",
			p.Retries, p.Deferrals, p.TargetsAbandoned, p.BackoffSeconds)
	}
	if runErr != nil {
		if ctx.Err() == nil {
			return runErr
		}
		// Interrupted: the deferred checkpoint close already flushed the
		// manifest. Print what the campaign learned so far, then fail the
		// exit status so callers know the table is partial.
		if p.Completed > 0 {
			fmt.Fprintf(stdout, "\npartial results over %d/%d targets:\n\n%s\n", p.Completed, p.Targets, coord.Report().TableIV())
		}
		if *checkpoint != "" {
			fmt.Fprintf(stdout, "checkpoint flushed to %s; re-run with -resume to continue\n", *checkpoint)
		}
		return fmt.Errorf("interrupted with %d/%d targets complete", p.Completed, p.Targets)
	}
	fmt.Fprintln(stdout, coord.Report().TableIV())
	return nil
}
