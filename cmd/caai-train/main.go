// Command caai-train generates the CAAI training set, cross-validates the
// random forest (the paper's Table III), optionally sweeps the forest
// parameters (Fig. 12), and can persist the trained model so caai-census
// and caai-probe identify without retraining.
//
// Usage:
//
//	caai-train -conditions 100 -folds 10          # Table III
//	caai-train -conditions 50 -sweep              # Fig. 12 parameter sweep
//	caai-train -conditions 100 -save model.json   # train once, reuse everywhere
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/classify"
	"repro/internal/experiments"
	"repro/internal/prof"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "caai-train:", err)
		os.Exit(1)
	}
}

func run() error {
	conditions := flag.Int("conditions", 100, "network conditions per (algorithm, wmax) pair")
	folds := flag.Int("folds", 10, "cross-validation folds")
	seed := flag.Int64("seed", 2011, "random seed")
	sweep := flag.Bool("sweep", false, "also sweep K and F (Fig. 12)")
	save := flag.String("save", "", "write the trained model to this path")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stop, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer stop()

	ctx := experiments.NewContext()
	ctx.TrainingConditions = *conditions
	ctx.Folds = *folds
	ctx.Seed = *seed

	ds, err := ctx.TrainingSet()
	if err != nil {
		return err
	}
	fmt.Printf("training set: %d feature vectors, %d classes\n\n", ds.Len(), len(ds.Classes()))

	t3, err := experiments.TableIII(ctx)
	if err != nil {
		return err
	}
	fmt.Println(t3)

	if *sweep {
		_, rendered, err := experiments.Fig12(ctx, nil, nil)
		if err != nil {
			return err
		}
		fmt.Println(rendered)
	}

	_, cmp, err := experiments.ClassifierComparison(ctx)
	if err != nil {
		return err
	}
	fmt.Println(cmp)

	if *save != "" {
		model, err := ctx.Model()
		if err != nil {
			return err
		}
		if err := classify.SaveFile(*save, model); err != nil {
			return err
		}
		fmt.Printf("saved trained %s model to %s\n", model.Name(), *save)
	}
	return nil
}
