package pcap

import (
	"bytes"
	"io"
	"net/netip"
	"testing"
)

// sniffFrames is a spread of tuples over both IP versions.
func sniffFrames() []*FrameSpec {
	v6a := netip.MustParseAddrPort("[2001:db8::1]:40000")
	v6b := netip.MustParseAddrPort("[2001:db8::2]:443")
	var fs []*FrameSpec
	for i := 0; i < 8; i++ {
		src := netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, 0, byte(1 + i)}), uint16(40000+i))
		fs = append(fs,
			&FrameSpec{Src: src, Dst: testDst, Seq: uint32(i), Flags: FlagSYN},
			&FrameSpec{Src: testDst, Dst: src, Seq: 100, Ack: uint32(i + 1), Flags: FlagSYN | FlagACK, PayloadLen: 64})
	}
	fs = append(fs,
		&FrameSpec{Src: v6a, Dst: v6b, Seq: 1, Flags: FlagSYN},
		&FrameSpec{Src: v6b, Dst: v6a, Seq: 2, Ack: 2, Flags: FlagACK, PayloadLen: 128})
	return fs
}

// TestTupleHashAgreesWithParse pins the sniffer's contract: every frame
// the full parse classifies as TCP must sniff ok, and every packet of
// one connection -- both directions -- must land on the same hash.
func TestTupleHashAgreesWithParse(t *testing.T) {
	data := buildCapture(t, "pcap", 0, sniffFrames()...)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	byFlow := map[string]uint64{}
	hashes := map[uint64]bool{}
	var rec RawRecord
	var pkt Packet
	for {
		err := r.NextRaw(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		pkt.Time, pkt.CapturedLen, pkt.OrigLen = rec.Time, rec.CapturedLen, rec.OrigLen
		if ParseFrame(rec.LinkType, rec.Data, &pkt) != FrameTCP {
			t.Fatalf("unexpected non-TCP frame in synthetic capture")
		}
		h, ok := TupleHash(rec.LinkType, rec.Data)
		if !ok {
			t.Fatalf("parse said TCP but sniff failed: %s -> %s", pkt.Src(), pkt.Dst())
		}
		// Direction-normalized flow name.
		a, b := pkt.Src(), pkt.Dst()
		if b < a {
			a, b = b, a
		}
		key := a + "|" + b
		if prev, seen := byFlow[key]; seen && prev != h {
			t.Fatalf("flow %s hashed to both %x and %x", key, prev, h)
		}
		byFlow[key] = h
		hashes[h] = true
	}
	if len(byFlow) != 9 {
		t.Fatalf("flows = %d, want 9", len(byFlow))
	}
	if len(hashes) < 8 {
		t.Fatalf("only %d distinct hashes over 9 flows: sniffer mixes poorly", len(hashes))
	}
}

// TestTupleHashOtherLinkTypes covers the VLAN, null, loopback and raw-IP
// paths the Ethernet-only capture above does not reach.
func TestTupleHashOtherLinkTypes(t *testing.T) {
	full := AppendFrame(nil, &FrameSpec{Src: testSrc, Dst: testDst, Seq: 9, Flags: FlagSYN})
	ip := full[14:]
	tagged := append([]byte{}, full[:12]...)
	tagged = append(tagged, 0x81, 0x00, 0x00, 0x2a)
	tagged = append(tagged, full[12:]...)
	cases := []struct {
		name     string
		linkType uint32
		frame    []byte
	}{
		{"ethernet", LinkEthernet, full},
		{"vlan", LinkEthernet, tagged},
		{"raw", LinkRaw, ip},
		{"null-le", LinkNull, append([]byte{2, 0, 0, 0}, ip...)},
		{"loop-be", LinkLoop, append([]byte{0, 0, 0, 2}, ip...)},
	}
	var want uint64
	for i, tc := range cases {
		var pkt Packet
		if ParseFrame(tc.linkType, tc.frame, &pkt) != FrameTCP {
			t.Fatalf("%s: full parse rejected the frame", tc.name)
		}
		h, ok := TupleHash(tc.linkType, tc.frame)
		if !ok {
			t.Fatalf("%s: sniff failed on a parseable TCP frame", tc.name)
		}
		if i == 0 {
			want = h
		} else if h != want {
			t.Fatalf("%s: hash %x, want %x (same tuple must hash identically across encapsulations)", tc.name, h, want)
		}
	}
	if _, ok := TupleHash(LinkEthernet, []byte{1, 2, 3}); ok {
		t.Fatal("sniff accepted a 3-byte frame")
	}
}

// TestTupleSniffSpanPreservesParse pins the header-span contract the
// streaming framer relies on: parsing just data[:span] must classify
// the frame identically and decode the exact same Packet, because no
// layer reads payload bytes (lengths come from the IP header).
func TestTupleSniffSpanPreservesParse(t *testing.T) {
	for _, spec := range sniffFrames() {
		frame := AppendFrame(nil, spec)
		var full Packet
		class := ParseFrame(LinkEthernet, frame, &full)
		_, span, ok := TupleSniff(LinkEthernet, frame)
		if !ok {
			t.Fatalf("sniff failed on synthetic frame %v", spec)
		}
		if spec.PayloadLen > 0 && span >= len(frame) {
			t.Fatalf("span %d did not exclude the %d-byte payload (frame %d bytes)",
				span, spec.PayloadLen, len(frame))
		}
		snapped := frame
		if span < len(snapped) {
			snapped = snapped[:span]
		}
		var snap Packet
		if got := ParseFrame(LinkEthernet, snapped, &snap); got != class {
			t.Fatalf("snapped parse classified %v, full parse %v", got, class)
		}
		if snap != full {
			t.Fatalf("snapped decode differs:\nsnap %+v\nfull %+v", snap, full)
		}
	}
}

// FuzzTupleSniff hammers the sniffer with arbitrary frames: it must
// never panic, must never miss a frame the full parse accepts as TCP
// (a miss would break flow-affinity in the sharded pipeline), and its
// header span must never change what ParseFrame decodes.
func FuzzTupleSniff(f *testing.F) {
	f.Add(uint8(0), AppendFrame(nil, &FrameSpec{Src: testSrc, Dst: testDst, Seq: 1, Flags: FlagSYN}))
	f.Add(uint8(2), AppendFrame(nil, &FrameSpec{Src: testSrc, Dst: testDst, Seq: 1, Flags: FlagSYN})[14:])
	f.Add(uint8(1), []byte{0, 0, 0, 2})
	f.Add(uint8(3), []byte{})
	f.Fuzz(func(t *testing.T, link uint8, data []byte) {
		linkTypes := []uint32{LinkEthernet, LinkNull, LinkRaw, LinkLoop, 147}
		linkType := linkTypes[int(link)%len(linkTypes)]
		var pkt Packet
		class := ParseFrame(linkType, data, &pkt)
		h1, span, ok := TupleSniff(linkType, data)
		if class == FrameTCP && !ok {
			t.Fatalf("parse=TCP but sniff failed (link %d)", linkType)
		}
		h2, ok2 := TupleHash(linkType, data)
		if ok != ok2 || h1 != h2 {
			t.Fatal("sniff not deterministic")
		}
		if ok {
			snapped := data
			if span < len(snapped) {
				snapped = snapped[:span]
			}
			var snap Packet
			if got := ParseFrame(linkType, snapped, &snap); got != class {
				t.Fatalf("span %d changed the parse: %v -> %v (link %d)", span, class, got, linkType)
			}
			if class == FrameTCP && snap != pkt {
				t.Fatalf("span %d changed the decode (link %d):\nsnap %+v\nfull %+v", span, linkType, snap, pkt)
			}
		}
	})
}

// TestNextRawMatchesNext pins that the raw-record path plus ParseFrame
// reproduces the one-shot Next path exactly, packets and stats both.
func TestNextRawMatchesNext(t *testing.T) {
	frames := sniffFrames()
	for _, format := range []string{"pcap", "pcapng"} {
		data := buildCapture(t, format, 0, frames...)
		wantPkts, wantStats := readAll(t, data)

		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		var got []Packet
		stats := Stats{}
		var rec RawRecord
		for {
			err := r.NextRaw(&rec)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			var pkt Packet
			pkt.Time, pkt.CapturedLen, pkt.OrigLen = rec.Time, rec.CapturedLen, rec.OrigLen
			switch ParseFrame(rec.LinkType, rec.Data, &pkt) {
			case FrameTCP:
				stats.TCP++
				got = append(got, pkt)
			case FrameTruncated:
				stats.Truncated++
			default:
				stats.Skipped++
			}
		}
		stats.Packets = r.Stats().Packets
		if stats != wantStats {
			t.Fatalf("%s: stats %+v, want %+v", format, stats, wantStats)
		}
		if len(got) != len(wantPkts) {
			t.Fatalf("%s: %d packets, want %d", format, len(got), len(wantPkts))
		}
		for i := range got {
			if got[i] != wantPkts[i] {
				t.Fatalf("%s: packet %d differs:\n raw %+v\nnext %+v", format, i, got[i], wantPkts[i])
			}
		}
	}
}
