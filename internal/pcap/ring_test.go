package pcap

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestRingRoundTrip(t *testing.T) {
	g := NewRing(4 << 10)
	// 1 MiB through a 4 KiB ring: the writer must block and resume.
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	go func() {
		for off := 0; off < len(payload); off += 1000 {
			end := off + 1000
			if end > len(payload) {
				end = len(payload)
			}
			if _, err := g.Write(payload[off:end]); err != nil {
				t.Errorf("Write: %v", err)
				return
			}
		}
		g.Close()
	}()
	got, err := io.ReadAll(g)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("ring corrupted the stream: %d bytes, want %d", len(got), len(payload))
	}
	if hw := g.HighWater(); hw <= 0 || hw > 4<<10 {
		t.Fatalf("high water = %d, want in (0, %d]", hw, 4<<10)
	}
}

func TestRingCloseUnblocksReader(t *testing.T) {
	g := NewRing(0)
	done := make(chan error, 1)
	go func() {
		var b [16]byte
		_, err := g.Read(b[:])
		done <- err
	}()
	g.Close()
	if err := <-done; err != io.EOF {
		t.Fatalf("Read after Close = %v, want EOF", err)
	}
	if _, err := g.Write([]byte("x")); err != ErrRingClosed {
		t.Fatalf("Write after Close = %v, want ErrRingClosed", err)
	}
}

func TestRingCloseWithErrorAborts(t *testing.T) {
	g := NewRing(0)
	if _, err := g.Write(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("client went away")
	g.CloseWithError(boom)
	var b [16]byte
	if _, err := g.Read(b[:]); err != boom {
		t.Fatalf("Read after abort = %v, want the abort error (no drain)", err)
	}
	if _, err := g.Write([]byte("x")); err != boom {
		t.Fatalf("Write after abort = %v, want the abort error", err)
	}
}

func TestRingBlockedWriterAborts(t *testing.T) {
	g := NewRing(0) // 4 KiB floor
	done := make(chan error, 1)
	go func() {
		_, err := g.Write(make([]byte, 64<<10)) // must block at 4 KiB
		done <- err
	}()
	boom := errors.New("abort")
	g.CloseWithError(boom)
	if err := <-done; err != boom {
		t.Fatalf("blocked Write unblocked with %v, want abort error", err)
	}
}
