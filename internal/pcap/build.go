package pcap

import "net/netip"

// FrameSpec describes one synthetic TCP segment for AppendFrame: the
// inverse of the decoder, used by internal/pcapgen and the decoder's own
// round-trip tests.
type FrameSpec struct {
	// Src and Dst are the endpoints; IPv4 addresses yield an IPv4 frame.
	Src netip.AddrPort
	Dst netip.AddrPort
	Seq uint32
	Ack uint32
	// Flags is the TCP flag byte.
	Flags  uint8
	Window uint16
	// PayloadLen is the data length; the payload bytes are zeros (capture
	// writers may truncate them away via snaplen anyway).
	PayloadLen int
	// Opt selects the TCP options to encode (MSS, window scale, SACK
	// permitted, timestamps; SACK blocks).
	Opt TCPOptions
}

// AppendFrame appends the Ethernet/IP/TCP frame described by spec to dst
// and returns the grown slice.
func AppendFrame(dst []byte, spec *FrameSpec) []byte {
	opts := appendTCPOptions(nil, &spec.Opt)
	tcpLen := 20 + len(opts)
	v6 := spec.Src.Addr().Is6() && !spec.Src.Addr().Is4In6()

	// Ethernet header.
	dst = append(dst,
		0x02, 0, 0, 0, 0, 2, // dst MAC
		0x02, 0, 0, 0, 0, 1, // src MAC
	)
	if v6 {
		dst = append(dst, 0x86, 0xdd)
		ipPayload := tcpLen + spec.PayloadLen
		dst = append(dst, 0x60, 0, 0, 0, byte(ipPayload>>8), byte(ipPayload), 6, 64)
		src16 := spec.Src.Addr().As16()
		dst16 := spec.Dst.Addr().As16()
		dst = append(dst, src16[:]...)
		dst = append(dst, dst16[:]...)
	} else {
		dst = append(dst, 0x08, 0x00)
		total := 20 + tcpLen + spec.PayloadLen
		dst = append(dst, 0x45, 0, byte(total>>8), byte(total), 0, 0, 0x40, 0, 64, 6, 0, 0)
		src4 := spec.Src.Addr().Unmap().As4()
		dst4 := spec.Dst.Addr().Unmap().As4()
		dst = append(dst, src4[:]...)
		dst = append(dst, dst4[:]...)
	}

	// TCP header.
	dst = append(dst,
		byte(spec.Src.Port()>>8), byte(spec.Src.Port()),
		byte(spec.Dst.Port()>>8), byte(spec.Dst.Port()),
		byte(spec.Seq>>24), byte(spec.Seq>>16), byte(spec.Seq>>8), byte(spec.Seq),
		byte(spec.Ack>>24), byte(spec.Ack>>16), byte(spec.Ack>>8), byte(spec.Ack),
		byte(tcpLen/4)<<4, spec.Flags,
		byte(spec.Window>>8), byte(spec.Window),
		0, 0, 0, 0, // checksum, urgent pointer
	)
	dst = append(dst, opts...)
	for i := 0; i < spec.PayloadLen; i++ {
		dst = append(dst, 0)
	}
	return dst
}

// appendTCPOptions encodes the selected options, NOP-padded to a 4-byte
// multiple.
func appendTCPOptions(dst []byte, o *TCPOptions) []byte {
	if o.HasMSS {
		dst = append(dst, 2, 4, byte(o.MSS>>8), byte(o.MSS))
	}
	if o.SackPermitted {
		dst = append(dst, 4, 2)
	}
	if o.HasTS {
		dst = append(dst, 8, 10,
			byte(o.TSVal>>24), byte(o.TSVal>>16), byte(o.TSVal>>8), byte(o.TSVal),
			byte(o.TSEcr>>24), byte(o.TSEcr>>16), byte(o.TSEcr>>8), byte(o.TSEcr))
	}
	if o.HasWScale {
		dst = append(dst, 3, 3, o.WScale)
	}
	for i := 0; i < o.SackCount && i < maxSackBlocks; i++ {
		b := o.Sack[i]
		dst = append(dst, 5, 10,
			byte(b.Start>>24), byte(b.Start>>16), byte(b.Start>>8), byte(b.Start),
			byte(b.End>>24), byte(b.End>>16), byte(b.End>>8), byte(b.End))
	}
	for len(dst)%4 != 0 {
		dst = append(dst, 1) // NOP
	}
	return dst
}
