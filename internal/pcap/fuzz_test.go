package pcap

import (
	"bytes"
	"io"
	"net/netip"
	"testing"
	"time"
)

// fuzzSeedCapture builds a small valid capture in the given format for the
// fuzz corpus.
func fuzzSeedCapture(format string) []byte {
	src := netip.MustParseAddrPort("10.0.0.1:40000")
	dst := netip.MustParseAddrPort("10.0.0.2:80")
	var buf bytes.Buffer
	w, err := NewPacketWriter(&buf, format, LinkEthernet, 96)
	if err != nil {
		panic(err)
	}
	ts := time.Unix(1700000000, 0).UTC()
	frames := []*FrameSpec{
		{Src: src, Dst: dst, Seq: 100, Flags: FlagSYN,
			Opt: TCPOptions{MSS: 536, HasMSS: true, SackPermitted: true, HasTS: true, TSVal: 1}},
		{Src: dst, Dst: src, Seq: 9000, Ack: 101, Flags: FlagSYN | FlagACK,
			Opt: TCPOptions{MSS: 536, HasMSS: true}},
		{Src: src, Dst: dst, Seq: 101, Ack: 9001, Flags: FlagACK},
		{Src: dst, Dst: src, Seq: 9001, Ack: 101, Flags: FlagACK, PayloadLen: 536,
			Opt: TCPOptions{HasTS: true, TSVal: 2, TSEcr: 1}},
	}
	for i, f := range frames {
		frame := AppendFrame(nil, f)
		if err := w.WritePacket(ts.Add(time.Duration(i)*time.Millisecond), len(frame), frame); err != nil {
			panic(err)
		}
	}
	return buf.Bytes()
}

// FuzzDecode hammers the full decoder with arbitrary bytes: it must
// return errors on garbage -- never panic, never hang, and never allocate
// beyond the MaxSnapLen-scale buffers regardless of what length fields
// the input claims.
func FuzzDecode(f *testing.F) {
	f.Add(fuzzSeedCapture("pcap"))
	f.Add(fuzzSeedCapture("pcapng"))
	f.Add([]byte{})
	f.Add([]byte{0xd4, 0xc3, 0xb2, 0xa1}) // magic only
	truncated := fuzzSeedCapture("pcap")
	f.Add(truncated[:len(truncated)-7])
	ng := fuzzSeedCapture("pcapng")
	f.Add(ng[:30])

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var pkt Packet
		for i := 0; i < 1_000_000; i++ {
			err = r.Next(&pkt)
			if err != nil {
				break
			}
			if pkt.PayloadLen < 0 || pkt.CapturedLen > MaxSnapLen {
				t.Fatalf("impossible packet lengths: payload %d captured %d", pkt.PayloadLen, pkt.CapturedLen)
			}
		}
		if err == nil {
			t.Fatal("Next never terminated")
		}
		if err != io.EOF {
			// Any non-EOF error is acceptable; it must just be an error,
			// not a panic.
			_ = err.Error()
		}
	})
}
