package pcap

import "encoding/binary"

// TupleHash extracts the TCP 4-tuple from a raw frame without a full
// decode and returns a direction-normalized hash: both directions of a
// connection map to the same value, so a pipeline that shards packets
// by TupleHash keeps every flow on one worker. The sniff walks the same
// link/IP layers as ParseFrame but reads only addresses and ports.
//
// ok is false when the frame has no reachable TCP 4-tuple. The sniff is
// deliberately laxer than the full parse in that case -- a frame
// ParseFrame classifies as TCP always sniffs ok with the right tuple
// (pinned by TestTupleHashAgreesWithParse), while a frame that sniffs
// ok may still fail the full parse; it then just lands on some shard
// and is counted skipped or truncated there.
func TupleHash(linkType uint32, data []byte) (uint64, bool) {
	h, _, ok := TupleSniff(linkType, data)
	return h, ok
}

// TupleSniff is TupleHash plus the frame's header span: the number of
// leading bytes covering the link, IP, and TCP headers, options
// included. ParseFrame never reads past that span -- the payload length
// comes from the IP header, not the captured bytes -- so a sharding
// framer may hand workers data[:min(span, len(data))] and decode
// identically while skipping the payload copy (pinned by
// TestTupleSniffSpanPreservesParse). When the capture cut the frame
// before the TCP header-length byte, span falls back to len(data).
func TupleSniff(linkType uint32, data []byte) (hash uint64, span int, ok bool) {
	orig := len(data)
	switch linkType {
	case LinkEthernet:
		if len(data) < 14 {
			return 0, 0, false
		}
		etherType := be.Uint16(data[12:14])
		data = data[14:]
		for tags := 0; tags < 2 && (etherType == 0x8100 || etherType == 0x88a8); tags++ {
			if len(data) < 4 {
				return 0, 0, false
			}
			etherType = be.Uint16(data[2:4])
			data = data[4:]
		}
		switch etherType {
		case 0x0800:
			return sniffV4(data, orig-len(data))
		case 0x86dd:
			return sniffV6(data, orig-len(data))
		}
		return 0, 0, false
	case LinkNull, LinkLoop:
		if len(data) < 4 {
			return 0, 0, false
		}
		famLE := binary.LittleEndian.Uint32(data[:4])
		famBE := be.Uint32(data[:4])
		data = data[4:]
		switch {
		case famLE == 2 || famBE == 2:
			return sniffV4(data, 4)
		case isV6Family(famLE) || isV6Family(famBE):
			return sniffV6(data, 4)
		}
		return 0, 0, false
	case LinkRaw:
		if len(data) < 1 {
			return 0, 0, false
		}
		switch data[0] >> 4 {
		case 4:
			return sniffV4(data, 0)
		case 6:
			return sniffV6(data, 0)
		}
		return 0, 0, false
	}
	return 0, 0, false
}

// sniffV4 hashes an IPv4 packet's 4-tuple. base is the link-layer byte
// count preceding data; the returned span is relative to the whole frame.
func sniffV4(data []byte, base int) (uint64, int, bool) {
	if len(data) < 20 || data[0]>>4 != 4 {
		return 0, 0, false
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < 20 {
		return 0, 0, false
	}
	if data[9] != 6 { // not TCP
		return 0, 0, false
	}
	if be.Uint16(data[6:8])&0x1fff != 0 { // non-first fragment
		return 0, 0, false
	}
	if len(data) < ihl+4 { // need the TCP port words
		return 0, 0, false
	}
	tcp := data[ihl:]
	span := base + len(data)
	if len(tcp) >= 13 {
		if dataOff := int(tcp[12]>>4) * 4; dataOff >= 20 {
			span = base + ihl + dataOff
		}
	}
	return tupleHash(data[12:16], data[16:20], be.Uint16(tcp[0:2]), be.Uint16(tcp[2:4])), span, true
}

// sniffV6 hashes an IPv6 packet's 4-tuple, walking the extension chain
// the same way parseIPv6 does. base is as in sniffV4.
func sniffV6(data []byte, base int) (uint64, int, bool) {
	if len(data) < 40 || data[0]>>4 != 6 {
		return 0, 0, false
	}
	next := data[6]
	rest := data[40:]
	off := 40
	for hops := 0; hops < 8; hops++ {
		switch next {
		case 6: // TCP
			if len(rest) < 4 {
				return 0, 0, false
			}
			span := base + len(data)
			if len(rest) >= 13 {
				if dataOff := int(rest[12]>>4) * 4; dataOff >= 20 {
					span = base + off + dataOff
				}
			}
			return tupleHash(data[8:24], data[24:40], be.Uint16(rest[0:2]), be.Uint16(rest[2:4])), span, true
		case 0, 43, 60: // hop-by-hop, routing, destination options
			if len(rest) < 8 {
				return 0, 0, false
			}
			extLen := 8 + int(rest[1])*8
			if len(rest) < extLen {
				return 0, 0, false
			}
			next = rest[0]
			rest = rest[extLen:]
			off += extLen
		case 44: // fragment
			if len(rest) < 8 {
				return 0, 0, false
			}
			if be.Uint16(rest[2:4])&0xfff8 != 0 {
				return 0, 0, false // non-first fragment
			}
			next = rest[0]
			rest = rest[8:]
			off += 8
		default:
			return 0, 0, false
		}
	}
	return 0, 0, false
}

// tupleHash combines the two endpoints order-independently, so both
// packet directions hash identically, then runs a finalizer so shard
// selection by modulo sees well-mixed bits.
func tupleHash(srcIP, dstIP []byte, srcPort, dstPort uint16) uint64 {
	a := endpointHash(srcIP, srcPort)
	b := endpointHash(dstIP, dstPort)
	return mix64(a + b + (a^b)<<1)
}

// endpointHash is FNV-1a over the address bytes and port.
func endpointHash(ip []byte, port uint16) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range ip {
		h = (h ^ uint64(c)) * 1099511628211
	}
	h = (h ^ uint64(port&0xff)) * 1099511628211
	h = (h ^ uint64(port>>8)) * 1099511628211
	return h
}

// mix64 is the SplitMix64 finalizer.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
