// Package pcap is a pure-Go (no cgo, no libpcap) streaming decoder for
// packet capture files: classic pcap (all four magic variants) and pcapng
// (section/interface/enhanced/simple packet blocks), Ethernet, loopback
// and raw-IP link layers, IPv4 and IPv6, and TCP headers including the
// options CAAI's flow reconstruction needs (MSS, window scale, SACK,
// timestamps). The reader is an iterator over caller-owned Packet structs
// and never buffers more than one block, so arbitrarily large captures
// decode in constant memory. The package also provides classic-pcap and
// pcapng writers, used by internal/pcapgen to synthesize round-trippable
// captures from simulated TCP senders.
//
// Decoding is strict at the file-framing layer (bad magic, impossible
// block or capture lengths are errors, never panics or unbounded
// allocations) and tolerant at the packet layer: non-TCP, fragmented, or
// snaplen-truncated packets are counted and skipped, exactly as passive
// measurement tools must behave on production captures.
package pcap

import (
	"fmt"
	"net/netip"
	"time"
)

// Link types (the subset of the tcpdump LINKTYPE registry the decoder
// understands).
const (
	// LinkNull is the BSD loopback encapsulation: a 4-byte host-endian
	// address family precedes the IP packet.
	LinkNull = 0
	// LinkEthernet is standard 14-byte Ethernet II framing.
	LinkEthernet = 1
	// LinkRaw is raw IP: the packet begins directly with the IP header.
	LinkRaw = 101
	// LinkLoop is OpenBSD loopback: like LinkNull with a big-endian
	// address family.
	LinkLoop = 108
)

// MaxSnapLen bounds the per-packet capture length (and pcapng block
// length) the reader accepts. Anything larger is a framing error: no
// real-world capture carries megabyte frames, and the bound keeps a
// malicious length field from turning into an unbounded allocation.
const MaxSnapLen = 1 << 20

// TCP header flags.
const (
	FlagFIN = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
	FlagECE
	FlagCWR
)

// SackBlock is one SACK option block (absolute sequence edges).
type SackBlock struct {
	Start uint32
	End   uint32
}

// maxSackBlocks is the most blocks a 40-byte option area can carry.
const maxSackBlocks = 4

// TCPOptions carries the parsed TCP options of one segment.
type TCPOptions struct {
	// MSS is the maximum segment size option (SYN segments).
	MSS    uint16
	HasMSS bool
	// WScale is the window scale shift count (SYN segments).
	WScale    uint8
	HasWScale bool
	// SackPermitted reports the SACK-permitted option (SYN segments).
	SackPermitted bool
	// Sack holds up to four SACK blocks; SackCount is how many are valid.
	Sack      [maxSackBlocks]SackBlock
	SackCount int
	// TSVal and TSEcr are the RFC 7323 timestamp value and echo reply.
	TSVal uint32
	TSEcr uint32
	HasTS bool
}

// Packet is one decoded TCP segment. Next fills a caller-owned Packet, so
// iterating a capture allocates nothing per packet.
type Packet struct {
	// Time is the capture timestamp.
	Time time.Time
	// IPv6 reports the IP version; addresses are stored as 16-byte
	// values, IPv4 in the v4-mapped form.
	IPv6  bool
	SrcIP [16]byte
	DstIP [16]byte
	// SrcPort and DstPort are the TCP ports.
	SrcPort uint16
	DstPort uint16
	// Seq and Ack are the raw 32-bit sequence and acknowledgment numbers.
	Seq uint32
	Ack uint32
	// Flags is the TCP flag byte (FlagSYN | FlagACK | ...).
	Flags uint8
	// Window is the unscaled advertised window.
	Window uint16
	// PayloadLen is the TCP payload length in bytes, derived from the IP
	// length fields -- correct even when the capture's snaplen truncated
	// the payload bytes away.
	PayloadLen int
	// CapturedLen and OrigLen are the captured and original (on-the-wire)
	// frame lengths.
	CapturedLen int
	OrigLen     int
	// Opt holds the parsed TCP options.
	Opt TCPOptions
}

// Src renders the source endpoint as "ip:port".
func (p *Packet) Src() string { return endpoint(p.SrcIP, p.SrcPort) }

// Dst renders the destination endpoint as "ip:port".
func (p *Packet) Dst() string { return endpoint(p.DstIP, p.DstPort) }

func endpoint(ip [16]byte, port uint16) string {
	return netip.AddrPortFrom(netip.AddrFrom16(ip).Unmap(), port).String()
}

// FIN, SYN, RST, ACK report the respective flag bits.
func (p *Packet) FIN() bool { return p.Flags&FlagFIN != 0 }
func (p *Packet) SYN() bool { return p.Flags&FlagSYN != 0 }
func (p *Packet) RST() bool { return p.Flags&FlagRST != 0 }
func (p *Packet) ACK() bool { return p.Flags&FlagACK != 0 }

// Stats counts what the reader saw, including the packets it skipped, so
// ingest pipelines can report decode health (the service exposes these on
// /metrics).
type Stats struct {
	// Packets is every capture record read, TCP or not.
	Packets int64
	// TCP is how many records decoded to TCP segments (what Next returns).
	TCP int64
	// Skipped counts records that were not TCP over IPv4/IPv6 (ARP, UDP,
	// fragments, unknown link protocols, per-packet garbage).
	Skipped int64
	// Truncated counts records whose snaplen cut into the link/IP/TCP
	// headers, making them undecodable.
	Truncated int64
}

// ErrFormat marks input that is not a pcap or pcapng capture at all.
var ErrFormat = fmt.Errorf("pcap: unrecognized capture format")
