package pcap

import (
	"errors"
	"io"
	"sync"
)

// ErrRingClosed is returned by Ring.Write after the write side closed.
var ErrRingClosed = errors.New("pcap: ring closed")

// Ring is a bounded in-memory byte ring connecting a capture producer
// (an HTTP request body, stdin) to the streaming decoder. Write blocks
// while the ring is full and Read blocks while it is empty, so the pair
// gives a streaming pipeline end-to-end backpressure with one fixed
// buffer: a slow decoder stalls the producer instead of growing memory,
// and an unbounded capture never needs to be resident at once.
//
// One writer and one reader may use the ring concurrently. Close ends
// the stream cleanly (the reader drains, then sees io.EOF);
// CloseWithError aborts both sides immediately.
type Ring struct {
	mu     sync.Mutex
	nempty sync.Cond // signaled when bytes (or EOF) become readable
	nfull  sync.Cond // signaled when space becomes writable
	buf    []byte
	r, w   int // cursors; w chases r modulo len(buf)
	n      int // bytes buffered
	high   int // most bytes ever buffered
	closed bool
	err    error
}

// NewRing returns a ring buffering up to size bytes (floored at 4 KiB).
func NewRing(size int) *Ring {
	if size < 4<<10 {
		size = 4 << 10
	}
	g := &Ring{buf: make([]byte, size)}
	g.nempty.L = &g.mu
	g.nfull.L = &g.mu
	return g
}

// Write copies p into the ring, blocking while it is full. It returns
// ErrRingClosed after Close and the abort error after CloseWithError.
func (g *Ring) Write(p []byte) (int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	written := 0
	for len(p) > 0 {
		for g.n == len(g.buf) && g.err == nil && !g.closed {
			g.nfull.Wait()
		}
		if g.err != nil {
			return written, g.err
		}
		if g.closed {
			return written, ErrRingClosed
		}
		chunk := len(g.buf) - g.n
		if chunk > len(p) {
			chunk = len(p)
		}
		// Copy in up to two runs around the wrap point.
		tail := len(g.buf) - g.w
		if tail >= chunk {
			copy(g.buf[g.w:], p[:chunk])
		} else {
			copy(g.buf[g.w:], p[:tail])
			copy(g.buf, p[tail:chunk])
		}
		g.w = (g.w + chunk) % len(g.buf)
		g.n += chunk
		if g.n > g.high {
			g.high = g.n
		}
		p = p[chunk:]
		written += chunk
		g.nempty.Signal()
	}
	return written, nil
}

// Read copies buffered bytes into p, blocking while the ring is empty.
// After Close it drains the remaining bytes and then returns io.EOF;
// after CloseWithError it returns the abort error immediately.
func (g *Ring) Read(p []byte) (int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.n == 0 && g.err == nil && !g.closed {
		g.nempty.Wait()
	}
	if g.err != nil {
		return 0, g.err
	}
	if g.n == 0 {
		return 0, io.EOF
	}
	chunk := g.n
	if chunk > len(p) {
		chunk = len(p)
	}
	tail := len(g.buf) - g.r
	if tail >= chunk {
		copy(p, g.buf[g.r:g.r+chunk])
	} else {
		copy(p, g.buf[g.r:])
		copy(p[tail:], g.buf[:chunk-tail])
	}
	g.r = (g.r + chunk) % len(g.buf)
	g.n -= chunk
	g.nfull.Signal()
	return chunk, nil
}

// Close ends the write side: subsequent Writes fail and the reader sees
// io.EOF once the buffered bytes drain.
func (g *Ring) Close() error {
	g.mu.Lock()
	g.closed = true
	g.mu.Unlock()
	g.nempty.Broadcast()
	g.nfull.Broadcast()
	return nil
}

// CloseWithError aborts both sides: blocked and future Reads and Writes
// return err (io.ErrClosedPipe when nil) without draining.
func (g *Ring) CloseWithError(err error) {
	if err == nil {
		err = io.ErrClosedPipe
	}
	g.mu.Lock()
	if g.err == nil {
		g.err = err
	}
	g.closed = true
	g.mu.Unlock()
	g.nempty.Broadcast()
	g.nfull.Broadcast()
}

// HighWater returns the most bytes the ring has ever buffered.
func (g *Ring) HighWater() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.high
}

// Buffered returns the bytes currently buffered.
func (g *Ring) Buffered() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}
