package pcap

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// PacketWriter is the shared interface of the classic-pcap and pcapng
// writers: one captured frame per call. origLen is the on-the-wire frame
// length; len(data) may be smaller when the capture is snaplen-truncated.
type PacketWriter interface {
	WritePacket(ts time.Time, origLen int, data []byte) error
}

// Writer emits a classic pcap file (little-endian, microsecond
// timestamps). Create with NewWriter, which writes the file header.
type Writer struct {
	w       io.Writer
	snapLen uint32
	scratch [16]byte
}

// NewWriter writes the classic-pcap file header for the given link type
// and snap length (0 means MaxSnapLen) and returns the packet writer.
func NewWriter(w io.Writer, linkType uint32, snapLen uint32) (*Writer, error) {
	if snapLen == 0 || snapLen > MaxSnapLen {
		snapLen = MaxSnapLen
	}
	var hdr [24]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:4], magicMicros)
	le.PutUint16(hdr[4:6], 2) // version 2.4
	le.PutUint16(hdr[6:8], 4)
	le.PutUint32(hdr[16:20], snapLen)
	le.PutUint32(hdr[20:24], linkType)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: w, snapLen: snapLen}, nil
}

// WritePacket appends one record. data beyond the snap length is
// truncated, exactly as a capturing kernel would.
func (w *Writer) WritePacket(ts time.Time, origLen int, data []byte) error {
	if len(data) > int(w.snapLen) {
		data = data[:w.snapLen]
	}
	if origLen < len(data) {
		origLen = len(data)
	}
	le := binary.LittleEndian
	le.PutUint32(w.scratch[0:4], uint32(ts.Unix()))
	le.PutUint32(w.scratch[4:8], uint32(ts.Nanosecond()/1000))
	le.PutUint32(w.scratch[8:12], uint32(len(data)))
	le.PutUint32(w.scratch[12:16], uint32(origLen))
	if _, err := w.w.Write(w.scratch[:]); err != nil {
		return err
	}
	_, err := w.w.Write(data)
	return err
}

// NGWriter emits a minimal pcapng file: one section header, one
// interface, enhanced packet blocks (little-endian, microsecond
// timestamps). Create with NewNGWriter, which writes the SHB and IDB.
type NGWriter struct {
	w       io.Writer
	snapLen uint32
	buf     []byte
}

// NewNGWriter writes the section and interface headers and returns the
// packet writer.
func NewNGWriter(w io.Writer, linkType uint32, snapLen uint32) (*NGWriter, error) {
	if snapLen == 0 || snapLen > MaxSnapLen {
		snapLen = MaxSnapLen
	}
	le := binary.LittleEndian
	var shb [28]byte
	le.PutUint32(shb[0:4], ngBlockSHB)
	le.PutUint32(shb[4:8], 28)
	le.PutUint32(shb[8:12], ngByteOrderMagic)
	le.PutUint16(shb[12:14], 1) // version 1.0
	le.PutUint16(shb[14:16], 0)
	le.PutUint64(shb[16:24], ^uint64(0)) // unknown section length
	le.PutUint32(shb[24:28], 28)
	var idb [20]byte
	le.PutUint32(idb[0:4], ngBlockIDB)
	le.PutUint32(idb[4:8], 20)
	le.PutUint16(idb[8:10], uint16(linkType))
	le.PutUint32(idb[12:16], snapLen)
	le.PutUint32(idb[16:20], 20)
	if _, err := w.Write(shb[:]); err != nil {
		return nil, err
	}
	if _, err := w.Write(idb[:]); err != nil {
		return nil, err
	}
	return &NGWriter{w: w, snapLen: snapLen}, nil
}

// WritePacket appends one enhanced packet block.
func (w *NGWriter) WritePacket(ts time.Time, origLen int, data []byte) error {
	if len(data) > int(w.snapLen) {
		data = data[:w.snapLen]
	}
	if origLen < len(data) {
		origLen = len(data)
	}
	padded := (len(data) + 3) &^ 3
	total := 32 + padded
	if cap(w.buf) < total {
		w.buf = make([]byte, total)
	}
	b := w.buf[:total]
	for i := range b {
		b[i] = 0
	}
	le := binary.LittleEndian
	le.PutUint32(b[0:4], ngBlockEPB)
	le.PutUint32(b[4:8], uint32(total))
	le.PutUint32(b[8:12], 0) // interface 0
	us := uint64(ts.UnixMicro())
	le.PutUint32(b[12:16], uint32(us>>32))
	le.PutUint32(b[16:20], uint32(us))
	le.PutUint32(b[20:24], uint32(len(data)))
	le.PutUint32(b[24:28], uint32(origLen))
	copy(b[28:], data)
	le.PutUint32(b[28+padded:], uint32(total))
	_, err := w.w.Write(b)
	return err
}

// NewPacketWriter returns a writer for the named format: "pcap" or
// "pcapng".
func NewPacketWriter(w io.Writer, format string, linkType uint32, snapLen uint32) (PacketWriter, error) {
	switch format {
	case "", "pcap":
		return NewWriter(w, linkType, snapLen)
	case "pcapng":
		return NewNGWriter(w, linkType, snapLen)
	default:
		return nil, fmt.Errorf("pcap: unknown capture format %q (want pcap or pcapng)", format)
	}
}
