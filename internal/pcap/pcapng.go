package pcap

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// pcapng block types.
const (
	ngBlockIDB = 0x00000001 // interface description
	ngBlockSPB = 0x00000003 // simple packet
	ngBlockEPB = 0x00000006 // enhanced packet
)

// ngByteOrderMagic is the section byte-order marker inside an SHB.
const ngByteOrderMagic = 0x1a2b3c4d

// maxNGBlock bounds one pcapng block body: a packet plus generous room
// for options.
const maxNGBlock = MaxSnapLen + 4096

// maxNGInterfaces bounds the per-section interface table so a crafted
// stream of IDBs cannot grow memory without bound.
const maxNGInterfaces = 256

// readSHB parses a section header block whose 4-byte type was already
// consumed. The byte-order magic inside the block determines the
// section's endianness.
func (r *Reader) readSHB() error {
	var lenBytes [4]byte
	if _, err := io.ReadFull(r.br, lenBytes[:]); err != nil {
		return fmt.Errorf("pcapng: truncated section header: %w", noEOF(err))
	}
	return r.readSHBWithLen(lenBytes[:])
}

// nextNG reads one pcapng block; it returns (frame, linkType, nil) for a
// packet block, (nil, 0, nil) for a non-packet block, and io.EOF at the
// clean end of the stream.
func (r *Reader) nextNG(pkt *Packet) ([]byte, uint32, error) {
	hdr := r.hdr[:8]
	if _, err := io.ReadFull(r.br, hdr); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("pcapng: truncated block header: %w", noEOF(err))
	}
	// An SHB starts a new section whose endianness is only known from the
	// byte-order magic that follows, so its length bytes are handed over
	// raw (the type is palindromic, readable in either order).
	if binary.BigEndian.Uint32(hdr[0:4]) == ngBlockSHB {
		return nil, 0, r.readSHBWithLen(hdr[4:8])
	}
	blockType := r.ngBO.Uint32(hdr[0:4])
	total := r.ngBO.Uint32(hdr[4:8])
	if total < 12 || total%4 != 0 || total > maxNGBlock {
		return nil, 0, fmt.Errorf("pcapng: block length %d out of range", total)
	}
	body, err := r.fill(int(total) - 8)
	if err != nil {
		return nil, 0, fmt.Errorf("pcapng: truncated block body: %w", noEOF(err))
	}
	if trailer := r.ngBO.Uint32(body[len(body)-4:]); trailer != total {
		return nil, 0, fmt.Errorf("pcapng: block trailing length %d != %d", trailer, total)
	}
	body = body[:len(body)-4]
	switch blockType {
	case ngBlockIDB:
		return nil, 0, r.readIDB(body)
	case ngBlockEPB:
		return r.readEPB(body, pkt)
	case ngBlockSPB:
		return r.readSPB(body, pkt)
	default:
		return nil, 0, nil // name resolution, statistics, custom: skip
	}
}

// readSHBWithLen finishes parsing an SHB whose type and length bytes were
// already consumed (the length bytes are passed in).
func (r *Reader) readSHBWithLen(lenBytes []byte) error {
	var magic [4]byte
	if _, err := io.ReadFull(r.br, magic[:]); err != nil {
		return fmt.Errorf("pcapng: truncated section header: %w", noEOF(err))
	}
	switch binary.BigEndian.Uint32(magic[:]) {
	case ngByteOrderMagic:
		r.ngBO = binary.BigEndian
	case 0x4d3c2b1a:
		r.ngBO = binary.LittleEndian
	default:
		return fmt.Errorf("pcapng: bad byte-order magic %#x", binary.BigEndian.Uint32(magic[:]))
	}
	total := r.ngBO.Uint32(lenBytes)
	if total < 28 || total%4 != 0 || total > maxNGBlock {
		return fmt.Errorf("pcapng: section header length %d out of range", total)
	}
	body, err := r.fill(int(total) - 12)
	if err != nil {
		return fmt.Errorf("pcapng: truncated section header: %w", noEOF(err))
	}
	if trailer := r.ngBO.Uint32(body[len(body)-4:]); trailer != total {
		return fmt.Errorf("pcapng: section header trailing length %d != %d", trailer, total)
	}
	if major := r.ngBO.Uint16(body[0:2]); major != 1 {
		return fmt.Errorf("pcapng: unsupported version %d.%d", major, r.ngBO.Uint16(body[2:4]))
	}
	r.ifaces = r.ifaces[:0]
	r.sections++
	return nil
}

// readIDB parses an interface description block body (trailer stripped).
func (r *Reader) readIDB(body []byte) error {
	if len(body) < 8 {
		return fmt.Errorf("pcapng: interface block too short (%d bytes)", len(body))
	}
	if len(r.ifaces) >= maxNGInterfaces {
		return fmt.Errorf("pcapng: more than %d interfaces in one section", maxNGInterfaces)
	}
	iface := ngIface{
		linkType: uint32(r.ngBO.Uint16(body[0:2])),
		snapLen:  r.ngBO.Uint32(body[4:8]),
		tsPow10:  6, // default resolution: microseconds
		tsPow2:   -1,
	}
	// Walk options for if_tsresol (code 9).
	opts := body[8:]
	for len(opts) >= 4 {
		code := r.ngBO.Uint16(opts[0:2])
		olen := int(r.ngBO.Uint16(opts[2:4]))
		padded := (olen + 3) &^ 3
		if 4+padded > len(opts) {
			break // malformed options: keep what we have
		}
		if code == 0 {
			break
		}
		if code == 9 && olen == 1 {
			v := opts[4]
			if v&0x80 != 0 {
				iface.tsPow2 = int(v & 0x7f)
				iface.tsPow10 = -1
			} else if int(v) <= 18 {
				iface.tsPow10 = int(v)
			}
		}
		opts = opts[4+padded:]
	}
	r.ifaces = append(r.ifaces, iface)
	return nil
}

// readEPB parses an enhanced packet block body (trailer stripped).
func (r *Reader) readEPB(body []byte, pkt *Packet) ([]byte, uint32, error) {
	if len(body) < 20 {
		return nil, 0, fmt.Errorf("pcapng: packet block too short (%d bytes)", len(body))
	}
	ifID := r.ngBO.Uint32(body[0:4])
	if int(ifID) >= len(r.ifaces) {
		return nil, 0, fmt.Errorf("pcapng: packet references undeclared interface %d", ifID)
	}
	iface := r.ifaces[ifID]
	ts := uint64(r.ngBO.Uint32(body[4:8]))<<32 | uint64(r.ngBO.Uint32(body[8:12]))
	capLen := r.ngBO.Uint32(body[12:16])
	origLen := r.ngBO.Uint32(body[16:20])
	if capLen > MaxSnapLen || int(capLen) > len(body)-20 {
		return nil, 0, fmt.Errorf("pcapng: packet capture length %d out of range", capLen)
	}
	if capLen > origLen {
		return nil, 0, fmt.Errorf("pcapng: packet capture length %d exceeds original length %d", capLen, origLen)
	}
	pkt.Time = ngTime(ts, iface)
	pkt.CapturedLen = int(capLen)
	pkt.OrigLen = int(origLen)
	return body[20 : 20+capLen], iface.linkType, nil
}

// readSPB parses a simple packet block body (trailer stripped): only the
// original length is recorded; the captured length is the lesser of the
// interface snaplen and the original length. SPBs carry no timestamp.
func (r *Reader) readSPB(body []byte, pkt *Packet) ([]byte, uint32, error) {
	if len(r.ifaces) == 0 {
		return nil, 0, fmt.Errorf("pcapng: simple packet block before any interface block")
	}
	if len(body) < 4 {
		return nil, 0, fmt.Errorf("pcapng: simple packet block too short (%d bytes)", len(body))
	}
	iface := r.ifaces[0]
	origLen := r.ngBO.Uint32(body[0:4])
	capLen := origLen
	if iface.snapLen > 0 && capLen > iface.snapLen {
		capLen = iface.snapLen
	}
	if capLen > MaxSnapLen || int(capLen) > len(body)-4 {
		return nil, 0, fmt.Errorf("pcapng: simple packet length %d out of range", capLen)
	}
	pkt.Time = time.Time{}
	pkt.CapturedLen = int(capLen)
	pkt.OrigLen = int(origLen)
	return body[4 : 4+capLen], iface.linkType, nil
}

// ngTime converts a pcapng timestamp in the interface's units to a
// time.Time, exactly (no float math).
func ngTime(ts uint64, iface ngIface) time.Time {
	if iface.tsPow2 >= 0 {
		n := uint(iface.tsPow2)
		if n > 63 {
			n = 63
		}
		sec := ts >> n
		frac := ts & (1<<n - 1)
		// frac / 2^n seconds in nanoseconds, without overflow for n <= 63.
		nanos := uint64(0)
		if n <= 30 {
			nanos = frac * 1_000_000_000 >> n
		} else {
			nanos = uint64(float64(frac) / float64(uint64(1)<<n) * 1e9)
		}
		return time.Unix(int64(sec), int64(nanos)).UTC()
	}
	pow10 := iface.tsPow10
	units := uint64(1)
	for i := 0; i < pow10 && i < 19; i++ {
		units *= 10
	}
	sec := ts / units
	rem := ts % units
	var nanos uint64
	if pow10 <= 9 {
		mult := uint64(1)
		for i := pow10; i < 9; i++ {
			mult *= 10
		}
		nanos = rem * mult
	} else {
		div := uint64(1)
		for i := 9; i < pow10; i++ {
			div *= 10
		}
		nanos = rem / div
	}
	return time.Unix(int64(sec), int64(nanos)).UTC()
}
