package pcap

import (
	"bytes"
	"errors"
	"io"
	"net/netip"
	"strings"
	"testing"
	"time"
)

var (
	testSrc = netip.MustParseAddrPort("10.0.0.1:40000")
	testDst = netip.MustParseAddrPort("10.0.0.2:80")
)

// buildCapture writes frames through the named format writer.
func buildCapture(t *testing.T, format string, snapLen uint32, frames ...*FrameSpec) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewPacketWriter(&buf, format, LinkEthernet, snapLen)
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Unix(1700000000, 0).UTC()
	for i, f := range frames {
		frame := AppendFrame(nil, f)
		if err := w.WritePacket(ts.Add(time.Duration(i)*time.Millisecond), len(frame), frame); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func readAll(t *testing.T, data []byte) ([]Packet, Stats) {
	t.Helper()
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var pkts []Packet
	var pkt Packet
	for {
		err := r.Next(&pkt)
		if err == io.EOF {
			return pkts, r.Stats()
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		pkts = append(pkts, pkt)
	}
}

func TestRoundTripBothFormats(t *testing.T) {
	frames := []*FrameSpec{
		{Src: testSrc, Dst: testDst, Seq: 100, Flags: FlagSYN, Window: 65535,
			Opt: TCPOptions{MSS: 1460, HasMSS: true, SackPermitted: true, HasWScale: true, WScale: 7, HasTS: true, TSVal: 10, TSEcr: 0}},
		{Src: testDst, Dst: testSrc, Seq: 9000, Ack: 101, Flags: FlagSYN | FlagACK, Window: 65535,
			Opt: TCPOptions{MSS: 536, HasMSS: true, SackPermitted: true}},
		{Src: testSrc, Dst: testDst, Seq: 101, Ack: 9001, Flags: FlagACK, Window: 1024},
		{Src: testDst, Dst: testSrc, Seq: 9001, Ack: 101, Flags: FlagACK | FlagPSH, Window: 512, PayloadLen: 536,
			Opt: TCPOptions{HasTS: true, TSVal: 77, TSEcr: 10}},
		{Src: testSrc, Dst: testDst, Seq: 101, Ack: 9537, Flags: FlagACK,
			Opt: TCPOptions{SackCount: 1, Sack: [maxSackBlocks]SackBlock{{Start: 9600, End: 10136}}}},
	}
	for _, format := range []string{"pcap", "pcapng"} {
		t.Run(format, func(t *testing.T) {
			pkts, stats := readAll(t, buildCapture(t, format, 0, frames...))
			if len(pkts) != len(frames) {
				t.Fatalf("decoded %d packets, want %d", len(pkts), len(frames))
			}
			if stats.TCP != int64(len(frames)) || stats.Skipped != 0 || stats.Truncated != 0 {
				t.Fatalf("stats = %+v", stats)
			}
			syn := pkts[0]
			if syn.Src() != testSrc.String() || syn.Dst() != testDst.String() {
				t.Fatalf("endpoints %s -> %s", syn.Src(), syn.Dst())
			}
			if !syn.SYN() || syn.Seq != 100 || !syn.Opt.HasMSS || syn.Opt.MSS != 1460 ||
				!syn.Opt.SackPermitted || !syn.Opt.HasWScale || syn.Opt.WScale != 7 || !syn.Opt.HasTS {
				t.Fatalf("SYN decoded wrong: %+v", syn)
			}
			data := pkts[3]
			if data.PayloadLen != 536 || data.Seq != 9001 || !data.Opt.HasTS || data.Opt.TSVal != 77 || data.Opt.TSEcr != 10 {
				t.Fatalf("data segment decoded wrong: %+v", data)
			}
			sack := pkts[4]
			if sack.Opt.SackCount != 1 || sack.Opt.Sack[0] != (SackBlock{Start: 9600, End: 10136}) {
				t.Fatalf("SACK decoded wrong: %+v", sack.Opt)
			}
			if !pkts[1].Time.After(pkts[0].Time) {
				t.Fatalf("timestamps not increasing: %v then %v", pkts[0].Time, pkts[1].Time)
			}
		})
	}
}

func TestSnapLenTruncationKeepsPayloadLen(t *testing.T) {
	// Snap at 80 bytes: headers survive, the 1000-byte payload does not.
	data := buildCapture(t, "pcap", 80,
		&FrameSpec{Src: testDst, Dst: testSrc, Seq: 1, Ack: 1, Flags: FlagACK, PayloadLen: 1000})
	pkts, _ := readAll(t, data)
	if len(pkts) != 1 {
		t.Fatalf("decoded %d packets, want 1", len(pkts))
	}
	p := pkts[0]
	if p.PayloadLen != 1000 {
		t.Fatalf("PayloadLen = %d, want 1000 (from the IP length)", p.PayloadLen)
	}
	if p.CapturedLen != 80 || p.OrigLen != 14+20+20+1000 {
		t.Fatalf("lengths: captured %d orig %d", p.CapturedLen, p.OrigLen)
	}
}

func TestIPv6RoundTrip(t *testing.T) {
	src := netip.MustParseAddrPort("[2001:db8::1]:40000")
	dst := netip.MustParseAddrPort("[2001:db8::2]:80")
	data := buildCapture(t, "pcap", 0,
		&FrameSpec{Src: src, Dst: dst, Seq: 5, Ack: 6, Flags: FlagACK, PayloadLen: 100})
	pkts, _ := readAll(t, data)
	if len(pkts) != 1 || !pkts[0].IPv6 {
		t.Fatalf("decoded %+v", pkts)
	}
	if pkts[0].Src() != src.String() || pkts[0].PayloadLen != 100 {
		t.Fatalf("src %s payload %d", pkts[0].Src(), pkts[0].PayloadLen)
	}
}

func TestNonTCPSkipped(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, LinkEthernet, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Unix(1700000000, 0)
	// An ARP frame and a UDP/IPv4 packet.
	arp := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 2, 0, 0, 0, 0, 1, 0x08, 0x06, 0, 1, 8, 0, 6, 4, 0, 1}
	_ = w.WritePacket(ts, len(arp), arp)
	udp := append([]byte{2, 0, 0, 0, 0, 2, 2, 0, 0, 0, 0, 1, 0x08, 0x00},
		0x45, 0, 0, 28, 0, 0, 0, 0, 64, 17, 0, 0, 10, 0, 0, 1, 10, 0, 0, 2, 0, 53, 0, 53, 0, 8, 0, 0)
	_ = w.WritePacket(ts, len(udp), udp)
	tcp := AppendFrame(nil, &FrameSpec{Src: testSrc, Dst: testDst, Seq: 1, Flags: FlagSYN})
	_ = w.WritePacket(ts, len(tcp), tcp)

	pkts, stats := readAll(t, buf.Bytes())
	if len(pkts) != 1 || stats.Skipped != 2 || stats.Packets != 3 {
		t.Fatalf("pkts %d stats %+v", len(pkts), stats)
	}
}

func TestLinkTypes(t *testing.T) {
	ip := AppendFrame(nil, &FrameSpec{Src: testSrc, Dst: testDst, Seq: 7, Flags: FlagSYN})[14:] // strip Ethernet
	cases := []struct {
		name     string
		linkType uint32
		frame    []byte
	}{
		{"raw", LinkRaw, ip},
		{"null-le", LinkNull, append([]byte{2, 0, 0, 0}, ip...)},
		{"loop-be", LinkLoop, append([]byte{0, 0, 0, 2}, ip...)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			w, err := NewWriter(&buf, tc.linkType, 0)
			if err != nil {
				t.Fatal(err)
			}
			_ = w.WritePacket(time.Unix(0, 0), len(tc.frame), tc.frame)
			pkts, _ := readAll(t, buf.Bytes())
			if len(pkts) != 1 || pkts[0].Seq != 7 {
				t.Fatalf("decoded %+v", pkts)
			}
		})
	}
}

func TestVLANUnwrap(t *testing.T) {
	full := AppendFrame(nil, &FrameSpec{Src: testSrc, Dst: testDst, Seq: 9, Flags: FlagSYN})
	// Splice an 802.1Q tag between the MACs and the EtherType.
	tagged := append([]byte{}, full[:12]...)
	tagged = append(tagged, 0x81, 0x00, 0x00, 0x2a) // VLAN 42
	tagged = append(tagged, full[12:]...)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, LinkEthernet, 0)
	_ = w.WritePacket(time.Unix(0, 0), len(tagged), tagged)
	pkts, _ := readAll(t, buf.Bytes())
	if len(pkts) != 1 || pkts[0].Seq != 9 {
		t.Fatalf("decoded %+v", pkts)
	}
}

func TestMalformedInputsError(t *testing.T) {
	valid := buildCapture(t, "pcap", 0, &FrameSpec{Src: testSrc, Dst: testDst, Flags: FlagSYN})
	validNG := buildCapture(t, "pcapng", 0, &FrameSpec{Src: testSrc, Dst: testDst, Flags: FlagSYN})

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("GIF89a~~~~~~~~~~~~~~~~~~~~~~~~")},
		{"header cut short", valid[:10]},
		{"record header cut short", valid[:30]},
		{"record body cut short", valid[:len(valid)-5]},
		{"ng block cut short", validNG[:len(validNG)-4]},
		{"huge caplen", func() []byte {
			d := append([]byte{}, valid...)
			// Record header caplen field at offset 24+8.
			d[32], d[33], d[34], d[35] = 0xff, 0xff, 0xff, 0x7f
			return d
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := NewReader(bytes.NewReader(tc.data))
			if err != nil {
				return // failing at the header is fine
			}
			var pkt Packet
			for {
				err = r.Next(&pkt)
				if err != nil {
					break
				}
			}
			if err == io.EOF && strings.Contains(tc.name, "cut short") {
				t.Fatal("truncated capture read to clean EOF")
			}
			if err == nil {
				t.Fatal("no error from malformed capture")
			}
		})
	}

	if _, err := NewReader(bytes.NewReader([]byte("xx"))); !errors.Is(err, ErrFormat) {
		t.Fatalf("short garbage: %v, want ErrFormat", err)
	}
}

func TestMultiSectionPcapng(t *testing.T) {
	a := buildCapture(t, "pcapng", 0, &FrameSpec{Src: testSrc, Dst: testDst, Seq: 1, Flags: FlagSYN})
	b := buildCapture(t, "pcapng", 0, &FrameSpec{Src: testDst, Dst: testSrc, Seq: 2, Flags: FlagSYN | FlagACK})
	pkts, _ := readAll(t, append(append([]byte{}, a...), b...))
	if len(pkts) != 2 || pkts[0].Seq != 1 || pkts[1].Seq != 2 {
		t.Fatalf("decoded %+v", pkts)
	}
}
