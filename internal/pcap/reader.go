package pcap

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Classic pcap magic numbers, as they appear in the first four file bytes.
const (
	magicMicros        = 0xa1b2c3d4
	magicMicrosSwapped = 0xd4c3b2a1
	magicNanos         = 0xa1b23c4d
	magicNanosSwapped  = 0x4d3cb2a1
	// ngBlockSHB is the pcapng section header block type, which doubles
	// as the file magic (the byte-order magic follows inside the block).
	ngBlockSHB = 0x0a0d0d0a
)

// Reader streams TCP segments out of a pcap or pcapng capture. Create
// with NewReader, then call Next until io.EOF. The reader holds one
// bounded buffer regardless of capture size. Not safe for concurrent use.
type Reader struct {
	br    *bufio.Reader
	ng    bool
	buf   []byte
	stats Stats
	// hdr is the reusable fixed-header scratch: passing a stack array to
	// io.ReadFull makes it escape, which would cost one allocation per
	// record (see BenchmarkPcapIngest).
	hdr [16]byte
	// raw is the scratch packet NextRaw routes record metadata through.
	raw Packet

	// Classic pcap state.
	bo       binary.ByteOrder
	nanos    bool
	linkType uint32

	// pcapng per-section state.
	ngBO     binary.ByteOrder
	ifaces   []ngIface
	sections int
}

// ngIface is one pcapng interface description: its link type and
// timestamp resolution.
type ngIface struct {
	linkType uint32
	snapLen  uint32
	// tsUnitsPow10 / tsUnitsPow2: exactly one is active. pow10 holds n for
	// 10^-n second units (default 6, microseconds); pow2 holds n for 2^-n
	// units when the high bit of if_tsresol was set (then pow10 < 0).
	tsPow10 int
	tsPow2  int
}

// NewReader sniffs the capture format from the first bytes of r and
// returns a streaming reader. It returns ErrFormat when r is neither
// pcap nor pcapng.
func NewReader(r io.Reader) (*Reader, error) {
	rd := &Reader{br: bufio.NewReaderSize(r, 1<<18)}
	var magic [4]byte
	if _, err := io.ReadFull(rd.br, magic[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: capture shorter than a file header", ErrFormat)
		}
		return nil, err
	}
	switch binary.BigEndian.Uint32(magic[:]) {
	case magicMicros:
		rd.bo, rd.nanos = binary.BigEndian, false
	case magicMicrosSwapped:
		rd.bo, rd.nanos = binary.LittleEndian, false
	case magicNanos:
		rd.bo, rd.nanos = binary.BigEndian, true
	case magicNanosSwapped:
		rd.bo, rd.nanos = binary.LittleEndian, true
	case ngBlockSHB:
		rd.ng = true
		if err := rd.readSHB(); err != nil {
			return nil, err
		}
		return rd, nil
	default:
		return nil, ErrFormat
	}
	// Classic pcap: the remaining 20 header bytes.
	var hdr [20]byte
	if _, err := io.ReadFull(rd.br, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: truncated file header: %w", noEOF(err))
	}
	major := rd.bo.Uint16(hdr[0:2])
	if major != 2 {
		return nil, fmt.Errorf("pcap: unsupported version %d.%d", major, rd.bo.Uint16(hdr[2:4]))
	}
	rd.linkType = rd.bo.Uint32(hdr[16:20])
	return rd, nil
}

// LinkType returns the capture's link type (for pcapng, the first
// interface's; 0 before any interface block was seen).
func (r *Reader) LinkType() uint32 {
	if r.ng {
		if len(r.ifaces) > 0 {
			return r.ifaces[0].linkType
		}
		return 0
	}
	return r.linkType
}

// Stats returns the running decode counters.
func (r *Reader) Stats() Stats { return r.stats }

// Next decodes capture records until it finds the next TCP segment, fills
// pkt with it, and returns nil. It returns io.EOF at the clean end of the
// capture and a descriptive error on malformed framing. Non-TCP and
// header-truncated records are counted in Stats and skipped.
func (r *Reader) Next(pkt *Packet) error {
	for {
		var (
			data     []byte
			linkType uint32
			err      error
		)
		if r.ng {
			data, linkType, err = r.nextNG(pkt)
		} else {
			data, linkType, err = r.nextClassic(pkt)
		}
		if err != nil {
			return err
		}
		if data == nil {
			continue // non-packet block (pcapng)
		}
		r.stats.Packets++
		switch parseFrame(linkType, data, pkt) {
		case parsedTCP:
			r.stats.TCP++
			return nil
		case parsedTruncated:
			r.stats.Truncated++
		default:
			r.stats.Skipped++
		}
	}
}

// RawRecord is one undecoded capture record: the frame bytes plus the
// per-record metadata the file framing carries. Data aliases the
// reader's reusable buffer and is only valid until the next Next or
// NextRaw call; callers that defer parsing must copy it.
type RawRecord struct {
	Time        time.Time
	LinkType    uint32
	CapturedLen int
	OrigLen     int
	Data        []byte
}

// NextRaw reads the next packet record without decoding its frame,
// for pipelines that fan parsing out to workers (see ParseFrame). It
// advances only Stats.Packets; frame classification counters belong to
// whoever parses. Returns io.EOF at the clean end of the capture.
func (r *Reader) NextRaw(rec *RawRecord) error {
	for {
		var (
			data     []byte
			linkType uint32
			err      error
		)
		if r.ng {
			data, linkType, err = r.nextNG(&r.raw)
		} else {
			data, linkType, err = r.nextClassic(&r.raw)
		}
		if err != nil {
			return err
		}
		if data == nil {
			continue // non-packet block (pcapng)
		}
		r.stats.Packets++
		rec.Time = r.raw.Time
		rec.LinkType = linkType
		rec.CapturedLen = r.raw.CapturedLen
		rec.OrigLen = r.raw.OrigLen
		rec.Data = data
		return nil
	}
}

// FrameClass is ParseFrame's verdict on one raw frame.
type FrameClass int

const (
	// FrameTCP: pkt holds a decoded TCP segment.
	FrameTCP FrameClass = iota
	// FrameSkip: not a whole TCP/IP packet (non-TCP, unknown link, ...).
	FrameSkip
	// FrameTruncated: the snaplen cut into a header.
	FrameTruncated
)

// ParseFrame decodes one raw frame (a RawRecord's Data) into pkt, which
// must already carry the record's Time/CapturedLen/OrigLen. It never
// errors: malformed frames classify as skipped or truncated, as passive
// tools must on real captures.
func ParseFrame(linkType uint32, data []byte, pkt *Packet) FrameClass {
	switch parseFrame(linkType, data, pkt) {
	case parsedTCP:
		return FrameTCP
	case parsedTruncated:
		return FrameTruncated
	default:
		return FrameSkip
	}
}

// nextClassic reads one classic-pcap record.
func (r *Reader) nextClassic(pkt *Packet) ([]byte, uint32, error) {
	hdr := r.hdr[:16]
	if _, err := io.ReadFull(r.br, hdr); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("pcap: truncated record header: %w", noEOF(err))
	}
	sec := int64(r.bo.Uint32(hdr[0:4]))
	sub := int64(r.bo.Uint32(hdr[4:8]))
	capLen := r.bo.Uint32(hdr[8:12])
	origLen := r.bo.Uint32(hdr[12:16])
	if capLen > MaxSnapLen {
		return nil, 0, fmt.Errorf("pcap: record capture length %d exceeds the %d-byte bound", capLen, MaxSnapLen)
	}
	if capLen > origLen {
		return nil, 0, fmt.Errorf("pcap: record capture length %d exceeds original length %d", capLen, origLen)
	}
	data, err := r.fill(int(capLen))
	if err != nil {
		return nil, 0, fmt.Errorf("pcap: truncated record body: %w", noEOF(err))
	}
	nanos := sub
	if !r.nanos {
		if sub > 999_999 {
			return nil, 0, fmt.Errorf("pcap: record microseconds field %d out of range", sub)
		}
		nanos = sub * 1000
	} else if sub > 999_999_999 {
		return nil, 0, fmt.Errorf("pcap: record nanoseconds field %d out of range", sub)
	}
	pkt.Time = time.Unix(sec, nanos).UTC()
	pkt.CapturedLen = int(capLen)
	pkt.OrigLen = int(origLen)
	return data, r.linkType, nil
}

// fill returns the next n stream bytes, valid until the next read.
// Records that fit the bufio window are served straight out of it
// (Peek+Discard, no copy); larger ones go through the reusable buffer.
func (r *Reader) fill(n int) ([]byte, error) {
	if n <= r.br.Size() {
		if b, err := r.br.Peek(n); err == nil {
			_, _ = r.br.Discard(n) // cannot fail after a full Peek
			return b, nil
		}
		// Short peek: fall through so ReadFull classifies the error.
	}
	if cap(r.buf) < n {
		r.buf = make([]byte, n, n+1024)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.br, r.buf); err != nil {
		return nil, err
	}
	return r.buf, nil
}

// noEOF converts a bare io.EOF into io.ErrUnexpectedEOF so mid-structure
// truncation is distinguishable from a clean end of file.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
