package pcap

import "encoding/binary"

// parseResult classifies one capture record.
type parseResult int

const (
	parsedTCP parseResult = iota
	parsedSkip
	parsedTruncated
)

// be is the network byte order every header field uses.
var be = binary.BigEndian

// parseFrame decodes one captured frame of the given link type into pkt
// (which already carries Time/CapturedLen/OrigLen). It never errors: a
// frame that is not a whole TCP/IP packet is classified as skipped or
// truncated and the reader moves on, as passive tools must on real
// captures.
func parseFrame(linkType uint32, data []byte, pkt *Packet) parseResult {
	switch linkType {
	case LinkEthernet:
		if len(data) < 14 {
			return parsedTruncated
		}
		etherType := be.Uint16(data[12:14])
		data = data[14:]
		// Unwrap up to two VLAN tags (802.1Q / QinQ).
		for tags := 0; tags < 2 && (etherType == 0x8100 || etherType == 0x88a8); tags++ {
			if len(data) < 4 {
				return parsedTruncated
			}
			etherType = be.Uint16(data[2:4])
			data = data[4:]
		}
		switch etherType {
		case 0x0800:
			return parseIPv4(data, pkt)
		case 0x86dd:
			return parseIPv6(data, pkt)
		default:
			return parsedSkip
		}
	case LinkNull, LinkLoop:
		if len(data) < 4 {
			return parsedTruncated
		}
		// LinkNull writes the address family in the capturing host's byte
		// order; accept either. LinkLoop is always big-endian, which the
		// either-endian check covers too.
		famLE := binary.LittleEndian.Uint32(data[:4])
		famBE := be.Uint32(data[:4])
		data = data[4:]
		switch {
		case famLE == 2 || famBE == 2:
			return parseIPv4(data, pkt)
		case isV6Family(famLE) || isV6Family(famBE):
			return parseIPv6(data, pkt)
		default:
			return parsedSkip
		}
	case LinkRaw:
		if len(data) < 1 {
			return parsedTruncated
		}
		switch data[0] >> 4 {
		case 4:
			return parseIPv4(data, pkt)
		case 6:
			return parseIPv6(data, pkt)
		default:
			return parsedSkip
		}
	default:
		return parsedSkip
	}
}

// isV6Family reports whether fam is one of the AF_INET6 values the BSDs
// use on loopback (24 FreeBSD/macOS, 28 OpenBSD, 30 NetBSD, 10 Linux).
func isV6Family(fam uint32) bool {
	switch fam {
	case 10, 24, 28, 30:
		return true
	}
	return false
}

// v4Prefix is the IPv4-mapped IPv6 prefix ::ffff:0:0/96.
var v4Prefix = [12]byte{10: 0xff, 11: 0xff}

func parseIPv4(data []byte, pkt *Packet) parseResult {
	if len(data) < 20 {
		return parsedTruncated
	}
	if data[0]>>4 != 4 {
		return parsedSkip
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < 20 {
		return parsedSkip
	}
	totalLen := int(be.Uint16(data[2:4]))
	if totalLen < ihl {
		return parsedSkip
	}
	if data[9] != 6 { // not TCP
		return parsedSkip
	}
	// Fragments other than the first carry no TCP header; reassembly of
	// fragmented TCP is vanishingly rare on modern paths, so skip them.
	fragField := be.Uint16(data[6:8])
	if fragField&0x1fff != 0 {
		return parsedSkip
	}
	if len(data) < ihl {
		return parsedTruncated
	}
	pkt.IPv6 = false
	copy(pkt.SrcIP[:12], v4Prefix[:])
	copy(pkt.SrcIP[12:], data[12:16])
	copy(pkt.DstIP[:12], v4Prefix[:])
	copy(pkt.DstIP[12:], data[16:20])
	// The payload length comes from the IP total length, not the captured
	// bytes, so snaplen-truncated captures still measure data correctly.
	return parseTCP(data[ihl:], totalLen-ihl, pkt)
}

func parseIPv6(data []byte, pkt *Packet) parseResult {
	if len(data) < 40 {
		return parsedTruncated
	}
	if data[0]>>4 != 6 {
		return parsedSkip
	}
	payloadLen := int(be.Uint16(data[4:6]))
	next := data[6]
	copy(pkt.SrcIP[:], data[8:24])
	copy(pkt.DstIP[:], data[24:40])
	pkt.IPv6 = true
	rest := data[40:]
	remaining := payloadLen
	// Walk the extension header chain (hop-by-hop, routing, destination
	// options, first fragment).
	for hops := 0; hops < 8; hops++ {
		switch next {
		case 6: // TCP
			return parseTCP(rest, remaining, pkt)
		case 0, 43, 60: // hop-by-hop, routing, destination options
			if len(rest) < 8 {
				return parsedTruncated
			}
			extLen := 8 + int(rest[1])*8
			if len(rest) < extLen || remaining < extLen {
				return parsedTruncated
			}
			next = rest[0]
			rest = rest[extLen:]
			remaining -= extLen
		case 44: // fragment
			if len(rest) < 8 {
				return parsedTruncated
			}
			if be.Uint16(rest[2:4])&0xfff8 != 0 {
				return parsedSkip // non-first fragment: no TCP header
			}
			next = rest[0]
			rest = rest[8:]
			remaining -= 8
		default:
			return parsedSkip
		}
	}
	return parsedSkip
}

// parseTCP decodes the TCP header. ipPayloadLen is the TCP segment length
// per the IP header (header + payload), which survives snaplen truncation.
func parseTCP(data []byte, ipPayloadLen int, pkt *Packet) parseResult {
	if len(data) < 20 {
		return parsedTruncated
	}
	dataOff := int(data[12]>>4) * 4
	if dataOff < 20 {
		return parsedSkip
	}
	if ipPayloadLen < dataOff {
		return parsedSkip
	}
	if len(data) < dataOff {
		return parsedTruncated
	}
	pkt.SrcPort = be.Uint16(data[0:2])
	pkt.DstPort = be.Uint16(data[2:4])
	pkt.Seq = be.Uint32(data[4:8])
	pkt.Ack = be.Uint32(data[8:12])
	pkt.Flags = data[13]
	pkt.Window = be.Uint16(data[14:16])
	pkt.PayloadLen = ipPayloadLen - dataOff
	pkt.Opt = TCPOptions{}
	parseTCPOptions(data[20:dataOff], &pkt.Opt)
	return parsedTCP
}

// parseTCPOptions walks the option area; malformed options end the walk
// (everything parsed so far is kept).
func parseTCPOptions(opts []byte, out *TCPOptions) {
	for len(opts) > 0 {
		kind := opts[0]
		switch kind {
		case 0: // end of options
			return
		case 1: // NOP
			opts = opts[1:]
			continue
		}
		if len(opts) < 2 {
			return
		}
		length := int(opts[1])
		if length < 2 || length > len(opts) {
			return
		}
		body := opts[2:length]
		switch kind {
		case 2: // MSS
			if len(body) == 2 {
				out.MSS = be.Uint16(body)
				out.HasMSS = true
			}
		case 3: // window scale
			if len(body) == 1 {
				out.WScale = body[0]
				out.HasWScale = true
			}
		case 4: // SACK permitted
			out.SackPermitted = true
		case 5: // SACK blocks
			for i := 0; i+8 <= len(body) && out.SackCount < maxSackBlocks; i += 8 {
				out.Sack[out.SackCount] = SackBlock{
					Start: be.Uint32(body[i : i+4]),
					End:   be.Uint32(body[i+4 : i+8]),
				}
				out.SackCount++
			}
		case 8: // timestamps
			if len(body) == 8 {
				out.TSVal = be.Uint32(body[0:4])
				out.TSEcr = be.Uint32(body[4:8])
				out.HasTS = true
			}
		}
		opts = opts[length:]
	}
}
