package cc

import (
	"fmt"
	"sort"
)

// Family identifies the operating system family an algorithm ships with
// (the paper's Table I).
type Family int

// Operating system families of Table I.
const (
	FamilyLinux Family = iota + 1
	FamilyWindows
	FamilyBoth
	FamilyNone // research algorithms not shipped as an OS option
)

// String returns the Table I column label.
func (f Family) String() string {
	switch f {
	case FamilyLinux:
		return "Linux"
	case FamilyWindows:
		return "Windows"
	case FamilyBoth:
		return "Linux+Windows"
	case FamilyNone:
		return "None"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Info describes one registered algorithm for Table I and the census.
type Info struct {
	// Name is the canonical algorithm name (registry key).
	Name string
	// Family is the OS family shipping the algorithm.
	Family Family
	// Default reports whether the algorithm is a default in some OS
	// release of its family.
	Default bool
	// CAAI reports whether the algorithm is one of the 14 the paper's
	// identifier targets. HYBLA (satellite links) and LP (background
	// transfers) appear in Table I but are excluded from probing, as in
	// Section III-A.
	CAAI bool
	// Description is a one-line summary.
	Description string
	// New constructs a fresh instance for one connection.
	New func() Algorithm
}

// registry holds all known algorithms keyed by canonical name. It is
// populated once below and treated as immutable afterwards.
var registry = buildRegistry()

func buildRegistry() map[string]Info {
	infos := []Info{
		{"RENO", FamilyBoth, true, true, "traditional AIMD (Jacobson 1988)", func() Algorithm { return NewReno() }},
		{"BIC", FamilyLinux, true, true, "binary increase congestion control (default before Linux 2.6.19)", func() Algorithm { return NewBIC() }},
		{"CTCP1", FamilyWindows, true, true, "Compound TCP, Windows Server 2003 / XP build", func() Algorithm { return NewCTCP(CTCPWindows2003) }},
		{"CTCP2", FamilyWindows, true, true, "Compound TCP, Windows Server 2008 / Vista / 7 build", func() Algorithm { return NewCTCP(CTCPWindows2008) }},
		{"CUBIC1", FamilyLinux, true, true, "CUBIC as in Linux <= 2.6.25 (beta 0.8)", func() Algorithm { return NewCubic(CubicLinux2625) }},
		{"CUBIC2", FamilyLinux, true, true, "CUBIC as in Linux >= 2.6.26 (beta 0.7)", func() Algorithm { return NewCubic(CubicLinux2626) }},
		{"HSTCP", FamilyLinux, false, true, "HighSpeed TCP (RFC 3649)", func() Algorithm { return NewHSTCP() }},
		{"HTCP", FamilyLinux, false, true, "Hamilton TCP", func() Algorithm { return NewHTCP() }},
		{"ILLINOIS", FamilyLinux, false, true, "TCP-Illinois loss-delay hybrid", func() Algorithm { return NewIllinois() }},
		{"STCP", FamilyLinux, false, true, "Scalable TCP", func() Algorithm { return NewSTCP() }},
		{"VEGAS", FamilyLinux, false, true, "TCP Vegas delay-based", func() Algorithm { return NewVegas() }},
		{"VENO", FamilyLinux, false, true, "TCP Veno for wireless losses", func() Algorithm { return NewVeno() }},
		{"WESTWOOD", FamilyLinux, false, true, "TCP Westwood+ bandwidth estimation", func() Algorithm { return NewWestwood() }},
		{"YEAH", FamilyLinux, false, true, "YeAH-TCP mixed-mode high speed", func() Algorithm { return NewYeAH() }},
		{"HYBLA", FamilyLinux, false, false, "TCP Hybla for satellite RTTs (in Table I; not probed by CAAI)", func() Algorithm { return NewHybla() }},
		{"LP", FamilyLinux, false, false, "TCP-LP low-priority transfers (in Table I; not probed by CAAI)", func() Algorithm { return NewLP() }},
	}
	m := make(map[string]Info, len(infos))
	for _, info := range infos {
		m[info.Name] = info
	}
	return m
}

// Names returns all registered algorithm names in sorted order, including
// the two Table I algorithms CAAI does not probe for.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// CAAINames returns the 14 algorithm names the paper's identifier
// targets, sorted.
func CAAINames() []string {
	names := make([]string, 0, len(registry))
	for name, info := range registry {
		if info.CAAI {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Lookup returns the Info for name.
func Lookup(name string) (Info, bool) {
	info, ok := registry[name]
	return info, ok
}

// New constructs a fresh algorithm instance by name.
func New(name string) (Algorithm, error) {
	info, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("cc: unknown algorithm %q", name)
	}
	return info.New(), nil
}

// All returns the Info records of all algorithms, sorted by name.
func All() []Info {
	names := Names()
	infos := make([]Info, 0, len(names))
	for _, n := range names {
		infos = append(infos, registry[n])
	}
	return infos
}
