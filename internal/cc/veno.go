package cc

import "time"

// Veno parameters from Fu and Liew (JSAC 2003) and Linux tcp_veno.c.
const (
	// venoBeta: backlog threshold distinguishing random loss from
	// congestive loss, in packets.
	venoBeta = 3.0
)

// Veno is TCP Veno: RENO growth with a Vegas-style backlog estimate used to
// (a) halve the growth rate when the network is congested and (b) shed only
// one fifth of the window on losses deemed random (backlog < 3 packets).
type Veno struct {
	baseRTT   time.Duration
	roundRTT  time.Duration
	cntRTT    int
	lastRound int64
	diff      float64 // latest backlog estimate, used by Ssthresh
	incToggle bool    // halve growth rate by acting on alternate ACKs
}

var _ Algorithm = (*Veno)(nil)

// NewVeno returns a Veno congestion avoidance component.
func NewVeno() *Veno { return &Veno{incToggle: true} }

// Name implements Algorithm.
func (*Veno) Name() string { return "VENO" }

// Reset implements Algorithm.
func (v *Veno) Reset(c *Conn) {
	v.baseRTT = 0
	v.roundRTT = 0
	v.cntRTT = 0
	v.lastRound = c.Round
	v.diff = 0
	v.incToggle = true
}

// OnAck implements Algorithm.
func (v *Veno) OnAck(c *Conn, _ int, rtt time.Duration) {
	if rtt > 0 {
		if v.baseRTT == 0 || rtt < v.baseRTT {
			v.baseRTT = rtt
		}
		if v.roundRTT == 0 || rtt < v.roundRTT {
			v.roundRTT = rtt
		}
		v.cntRTT++
	}
	if c.Round != v.lastRound {
		v.endRound(c)
		v.lastRound = c.Round
	}
	if slowStart(c) {
		return
	}
	if v.diff < venoBeta {
		// Available bandwidth not fully used: RENO increase.
		renoIncrease(c)
		return
	}
	// Congestion imminent: increase by one packet every other RTT.
	if v.incToggle {
		renoIncrease(c)
	}
}

// endRound recomputes the backlog estimate once per RTT.
func (v *Veno) endRound(c *Conn) {
	rtt := v.roundRTT
	cnt := v.cntRTT
	v.roundRTT = 0
	v.cntRTT = 0
	v.incToggle = !v.incToggle
	if cnt == 0 || rtt == 0 || v.baseRTT == 0 {
		return
	}
	v.diff = c.Cwnd * (secs(rtt) - secs(v.baseRTT)) / secs(v.baseRTT)
}

// Ssthresh implements Algorithm: 4/5 of the window for random loss
// (backlog below 3 packets), half otherwise.
func (v *Veno) Ssthresh(c *Conn) float64 {
	if v.diff < venoBeta {
		return clampSsthresh(c.Cwnd * 4 / 5)
	}
	return clampSsthresh(c.Cwnd / 2)
}

// OnTimeout implements Algorithm.
func (v *Veno) OnTimeout(*Conn) {
	v.roundRTT = 0
	v.cntRTT = 0
}
