package cc

import (
	"math"
	"time"
)

// YeAH parameters from Baiocchi, Castellani, Vacirca (PFLDNet 2007) and
// Linux tcp_yeah.c.
const (
	yeahAlpha   = 80.0 // max packets queued at the bottleneck (fast mode)
	yeahGamma   = 1.0  // fraction of queue drained on precautionary decongestion
	yeahDelta   = 3    // ssthresh reduction floor shift: cwnd/8
	yeahEpsilon = 1    // precautionary reduction cap shift: cwnd/2
	yeahPhy     = 8.0  // RTT inflation threshold: baseRTT/8
	yeahRho     = 16   // reno rounds before losses are treated as congestive
	yeahZeta    = 50.0 // fast-mode rounds before the reno count decays
)

// YeAH is "Yet Another Highspeed TCP": STCP-style growth while the
// estimated bottleneck queue is small ("fast mode"), RENO behaviour
// otherwise, with a precautionary delay-based decongestion and an adaptive
// decrease between 1/8 and 1/2 of the window.
type YeAH struct {
	baseRTT   time.Duration
	roundRTT  time.Duration
	cntRTT    int
	lastRound int64

	doingRenoNow int     // consecutive slow-mode rounds
	fastCount    int     // consecutive fast-mode rounds
	renoCount    float64 // estimated fair RENO window
	lastQ        float64 // latest queue estimate
}

var _ Algorithm = (*YeAH)(nil)

// NewYeAH returns a YeAH congestion avoidance component.
func NewYeAH() *YeAH { return &YeAH{renoCount: minCwnd} }

// Name implements Algorithm.
func (*YeAH) Name() string { return "YEAH" }

// Reset implements Algorithm.
func (y *YeAH) Reset(c *Conn) {
	y.baseRTT = 0
	y.roundRTT = 0
	y.cntRTT = 0
	y.lastRound = c.Round
	y.doingRenoNow = 0
	y.fastCount = 0
	y.renoCount = minCwnd
	y.lastQ = 0
}

// OnAck implements Algorithm.
func (y *YeAH) OnAck(c *Conn, _ int, rtt time.Duration) {
	if rtt > 0 {
		if y.baseRTT == 0 || rtt < y.baseRTT {
			y.baseRTT = rtt
		}
		if y.roundRTT == 0 || rtt < y.roundRTT {
			y.roundRTT = rtt
		}
		y.cntRTT++
	}
	if c.Round != y.lastRound {
		y.endRound(c)
		y.lastRound = c.Round
	}
	if slowStart(c) {
		return
	}
	if y.doingRenoNow > 0 {
		renoIncrease(c)
		return
	}
	// Fast mode: Scalable TCP increase.
	cnt := c.Cwnd
	if cnt > stcpAICnt {
		cnt = stcpAICnt
	}
	aiIncrease(c, cnt)
}

// endRound applies the once-per-RTT queue estimation and mode switch,
// mirroring tcp_yeah_cong_avoid's per-RTT block.
func (y *YeAH) endRound(c *Conn) {
	rtt := y.roundRTT
	cnt := y.cntRTT
	y.roundRTT = 0
	y.cntRTT = 0
	if cnt <= 2 || rtt == 0 || y.baseRTT == 0 {
		return
	}
	queue := c.Cwnd * (secs(rtt) - secs(y.baseRTT)) / secs(rtt)
	if queue > yeahAlpha || secs(rtt-y.baseRTT) > secs(y.baseRTT)/yeahPhy {
		if queue > yeahAlpha && c.Cwnd > y.renoCount {
			// Precautionary decongestion.
			reduction := math.Min(queue/yeahGamma, c.Cwnd/(1<<yeahEpsilon))
			c.Cwnd = math.Max(c.Cwnd-reduction, y.renoCount)
			c.Ssthresh = c.Cwnd
		}
		if y.renoCount <= 2 {
			y.renoCount = math.Max(c.Cwnd/2, minCwnd)
		} else {
			y.renoCount++
		}
		y.doingRenoNow++
	} else {
		y.fastCount++
		if y.fastCount > yeahZeta {
			y.renoCount = minCwnd
			y.fastCount = 0
		}
		y.doingRenoNow = 0
	}
	y.lastQ = queue
}

// Ssthresh implements Algorithm: shed the estimated queue, at least 1/8 and
// at most 1/2 of the window, unless losses look congestive (long slow-mode
// streak), in which case halve.
func (y *YeAH) Ssthresh(c *Conn) float64 {
	var reduction float64
	if y.doingRenoNow < yeahRho {
		reduction = y.lastQ
		reduction = math.Min(reduction, math.Max(c.Cwnd/2, minCwnd))
		reduction = math.Max(reduction, c.Cwnd/(1<<yeahDelta))
	} else {
		reduction = math.Max(c.Cwnd/2, minCwnd)
	}
	y.fastCount = 0
	y.renoCount = math.Max(y.renoCount/2, minCwnd)
	return clampSsthresh(c.Cwnd - reduction)
}

// OnTimeout implements Algorithm.
func (y *YeAH) OnTimeout(*Conn) {
	y.roundRTT = 0
	y.cntRTT = 0
	y.doingRenoNow = 0
}
