package cc

import (
	"math"
	"testing"
	"time"
)

func TestNewConnDefaults(t *testing.T) {
	c := NewConn(536, 4)
	if c.Cwnd != 4 {
		t.Fatalf("Cwnd = %v, want 4", c.Cwnd)
	}
	if c.Ssthresh != InitialSsthresh {
		t.Fatalf("Ssthresh = %v, want infinite", c.Ssthresh)
	}
	if !c.InSlowStart() {
		t.Fatal("fresh connection must be in slow start")
	}
}

func TestObserveRTT(t *testing.T) {
	c := NewConn(536, 2)
	c.ObserveRTT(0) // ignored
	if c.MinRTT != 0 || c.MaxRTT != 0 {
		t.Fatal("zero sample must be ignored")
	}
	c.ObserveRTT(time.Second)
	c.ObserveRTT(800 * time.Millisecond)
	c.ObserveRTT(1200 * time.Millisecond)
	if c.MinRTT != 800*time.Millisecond {
		t.Fatalf("MinRTT = %v", c.MinRTT)
	}
	if c.MaxRTT != 1200*time.Millisecond {
		t.Fatalf("MaxRTT = %v", c.MaxRTT)
	}
}

func TestSlowStartHelper(t *testing.T) {
	c := NewConn(536, 2)
	c.Ssthresh = 4
	if !slowStart(c) || c.Cwnd != 3 {
		t.Fatalf("slow start should consume ACK; cwnd=%v", c.Cwnd)
	}
	c.Cwnd = 4 // at threshold: congestion avoidance
	if slowStart(c) {
		t.Fatal("cwnd at ssthresh must not be slow start")
	}
}

func TestAIIncreaseFloorsCount(t *testing.T) {
	c := NewConn(536, 2)
	c.Cwnd = 10
	aiIncrease(c, 0.5) // cnt below 1 clamps to 1
	if c.Cwnd != 11 {
		t.Fatalf("Cwnd = %v, want 11", c.Cwnd)
	}
}

func TestRenoIncreasePerRTT(t *testing.T) {
	c := NewConn(536, 2)
	c.Ssthresh = 10
	c.Cwnd = 10
	r := NewReno()
	// A window's worth of ACKs grows the window by ~one packet.
	for i := 0; i < 10; i++ {
		r.OnAck(c, 1, time.Second)
	}
	if math.Abs(c.Cwnd-11) > 0.05 {
		t.Fatalf("Cwnd after one RTT = %v, want ~11", c.Cwnd)
	}
}

func TestClampSsthreshFloor(t *testing.T) {
	if got := clampSsthresh(0.3); got != 2 {
		t.Fatalf("clampSsthresh(0.3) = %v, want 2", got)
	}
	if got := clampSsthresh(77); got != 77 {
		t.Fatalf("clampSsthresh(77) = %v", got)
	}
}
