package cc

import (
	"time"
)

// TCP-Illinois parameters from Liu, Basar, Srikant (VALUETOOLS 2006) and
// Linux tcp_illinois.c.
const (
	illAlphaBase = 1.0
	illAlphaMin  = 0.3
	illAlphaMax  = 10.0
	illBetaBase  = 0.5
	illBetaMin   = 0.125
	illBetaMax   = 0.5
	// illWinThresh: below this window Illinois uses the base AIMD.
	illWinThresh = 15.0
	// illTheta: RTT rounds of low delay required before alpha snaps back
	// to its maximum.
	illTheta = 5
)

// Illinois is TCP-Illinois, a loss-delay hybrid: losses decide *when* to
// decrease, queueing delay decides *how much* to increase (alpha in
// [0.3, 10]) and decrease (beta in [0.125, 0.5]).
type Illinois struct {
	alpha float64
	beta  float64

	baseRTT time.Duration // minimum RTT over the connection
	maxRTT  time.Duration // maximum RTT over the connection

	sumRTT    time.Duration // accumulated samples within the round
	cntRTT    int
	lastRound int64

	rttAbove bool // delay has exceeded d1 since the last snap-back
	rttLow   int  // consecutive low-delay rounds
}

var _ Algorithm = (*Illinois)(nil)

// NewIllinois returns a TCP-Illinois congestion avoidance component.
func NewIllinois() *Illinois {
	return &Illinois{alpha: illAlphaBase, beta: illBetaBase}
}

// Name implements Algorithm.
func (*Illinois) Name() string { return "ILLINOIS" }

// Reset implements Algorithm.
func (il *Illinois) Reset(c *Conn) {
	il.alpha = illAlphaBase
	il.beta = illBetaBase
	il.baseRTT = 0
	il.maxRTT = 0
	il.sumRTT = 0
	il.cntRTT = 0
	il.lastRound = c.Round
	il.rttAbove = false
	il.rttLow = 0
}

// OnAck implements Algorithm.
func (il *Illinois) OnAck(c *Conn, _ int, rtt time.Duration) {
	if rtt > 0 {
		if il.baseRTT == 0 || rtt < il.baseRTT {
			il.baseRTT = rtt
		}
		if rtt > il.maxRTT {
			il.maxRTT = rtt
		}
		il.sumRTT += rtt
		il.cntRTT++
	}
	if c.Round != il.lastRound {
		il.updateParams(c)
		il.lastRound = c.Round
	}
	if slowStart(c) {
		return
	}
	aiIncrease(c, c.Cwnd/il.alpha)
}

// updateParams recomputes alpha and beta once per RTT round, mirroring the
// kernel's update_params/alpha/beta functions.
func (il *Illinois) updateParams(c *Conn) {
	defer func() {
		il.sumRTT = 0
		il.cntRTT = 0
	}()
	if c.Cwnd < illWinThresh {
		il.alpha = illAlphaBase
		il.beta = illBetaBase
		return
	}
	if il.cntRTT == 0 || il.baseRTT == 0 {
		return
	}
	avg := secs(il.sumRTT) / float64(il.cntRTT)
	da := avg - secs(il.baseRTT)       // average queueing delay
	dm := secs(il.maxRTT - il.baseRTT) // maximum queueing delay
	il.alpha = il.nextAlpha(da, dm)
	il.beta = nextIllinoisBeta(da, dm)
}

// nextAlpha follows tcp_illinois.c's alpha(): snap to the maximum after
// theta consecutive low-delay rounds, otherwise decay hyperbolically
// between alphaMax at d1 and alphaMin at dm.
func (il *Illinois) nextAlpha(da, dm float64) float64 {
	d1 := dm / 100
	if dm == 0 || da <= d1 {
		if !il.rttAbove {
			return illAlphaMax
		}
		il.rttLow++
		if il.rttLow < illTheta {
			return il.alpha
		}
		il.rttLow = 0
		il.rttAbove = false
		return illAlphaMax
	}
	il.rttAbove = true
	dm -= d1
	da -= d1
	return dm * illAlphaMax / (dm + da*(illAlphaMax-illAlphaMin)/illAlphaMin)
}

// nextIllinoisBeta follows tcp_illinois.c's beta(): betaMin below dm/10,
// betaMax above 8dm/10, linear in between.
func nextIllinoisBeta(da, dm float64) float64 {
	d2 := dm / 10
	d3 := 8 * dm / 10
	if da <= d2 {
		return illBetaMin
	}
	if da >= d3 || d3 <= d2 {
		return illBetaMax
	}
	return (illBetaMin*d3 - illBetaMax*d2 + (illBetaMax-illBetaMin)*da) / (d3 - d2)
}

// Ssthresh implements Algorithm: shed beta of the window.
func (il *Illinois) Ssthresh(c *Conn) float64 {
	return clampSsthresh(c.Cwnd * (1 - il.beta))
}

// OnTimeout implements Algorithm, mirroring tcp_illinois_state on entering
// Loss: parameters return to base, delay history restarts, the base RTT is
// retained.
func (il *Illinois) OnTimeout(*Conn) {
	il.alpha = illAlphaBase
	il.beta = illBetaBase
	il.rttLow = 0
	il.rttAbove = false
	il.sumRTT = 0
	il.cntRTT = 0
}
