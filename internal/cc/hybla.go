package cc

import (
	"math"
	"time"
)

// hyblaRTT0 is HYBLA's reference round-trip time: flows with RTT above it
// get proportionally more aggressive growth so satellite-grade RTTs reach
// terrestrial throughput.
const hyblaRTT0 = 25 * time.Millisecond

// Hybla is TCP Hybla (Caini and Firrincieli 2004; Linux tcp_hybla.c),
// designed for satellite links. The paper's Table I lists it but CAAI does
// not probe for it ("not designed for Web servers"); it is implemented
// here to complete the Table I catalogue and for use as an out-of-training
// algorithm in robustness tests.
type Hybla struct {
	rho float64 // RTT ratio rtt/rtt0, floored at 1
}

var _ Algorithm = (*Hybla)(nil)

// NewHybla returns a HYBLA congestion avoidance component.
func NewHybla() *Hybla { return &Hybla{rho: 1} }

// Name implements Algorithm.
func (*Hybla) Name() string { return "HYBLA" }

// Reset implements Algorithm.
func (h *Hybla) Reset(*Conn) { h.rho = 1 }

// OnAck implements Algorithm: slow start gains 2^rho - 1 packets per ACK,
// congestion avoidance rho^2/cwnd.
func (h *Hybla) OnAck(c *Conn, _ int, rtt time.Duration) {
	if rtt > 0 {
		h.rho = math.Max(secs(rtt)/secs(hyblaRTT0), 1)
		// The kernel caps the exponent to keep slow start sane.
		if h.rho > 16 {
			h.rho = 16
		}
	}
	if c.InSlowStart() {
		c.Cwnd += math.Pow(2, h.rho) - 1
		return
	}
	aiIncrease(c, c.Cwnd/(h.rho*h.rho))
}

// Ssthresh implements Algorithm: HYBLA keeps the RENO halving.
func (*Hybla) Ssthresh(c *Conn) float64 { return clampSsthresh(c.Cwnd / 2) }

// OnTimeout implements Algorithm.
func (*Hybla) OnTimeout(*Conn) {}
