package cc

import (
	"math"
	"time"
)

// HSTCP parameters from RFC 3649 (HighSpeed TCP for Large Congestion
// Windows).
const (
	hstcpLowWindow  = 38.0
	hstcpHighWindow = 83000.0
	hstcpLowB       = 0.5
	hstcpHighB      = 0.1
)

// HSTCP is HighSpeed TCP (Floyd, RFC 3649; Linux tcp_highspeed.c): the
// additive increase a(w) and multiplicative decrease b(w) scale with the
// current window so large windows recover quickly. For windows at or below
// 38 packets HSTCP is exactly RENO.
type HSTCP struct{}

var _ Algorithm = (*HSTCP)(nil)

// NewHSTCP returns an HSTCP congestion avoidance component.
func NewHSTCP() *HSTCP { return &HSTCP{} }

// Name implements Algorithm.
func (*HSTCP) Name() string { return "HSTCP" }

// Reset implements Algorithm.
func (*HSTCP) Reset(*Conn) {}

// hstcpAB returns RFC 3649's a(w) (packets added per RTT) and b(w)
// (fraction of the window shed on loss). The kernel's hstcp_aimd_vals table
// is generated from exactly these closed forms; we evaluate them directly.
func hstcpAB(w float64) (a, b float64) {
	if w <= hstcpLowWindow {
		return 1, hstcpLowB
	}
	logRatio := (math.Log(w) - math.Log(hstcpLowWindow)) /
		(math.Log(hstcpHighWindow) - math.Log(hstcpLowWindow))
	b = hstcpLowB + (hstcpHighB-hstcpLowB)*logRatio
	// RFC 3649 response function: p(w) = 0.078/w^1.2, and
	// a(w) = w^2 * p(w) * 2*b(w) / (2 - b(w)).
	p := 0.078 / math.Pow(w, 1.2)
	a = w * w * p * 2 * b / (2 - b)
	if a < 1 {
		a = 1
	}
	return a, b
}

// OnAck implements Algorithm: slow start, then a(w) packets per RTT.
func (*HSTCP) OnAck(c *Conn, _ int, _ time.Duration) {
	if slowStart(c) {
		return
	}
	a, _ := hstcpAB(c.Cwnd)
	aiIncrease(c, c.Cwnd/a)
}

// Ssthresh implements Algorithm: w*(1 - b(w)), so the paper's beta lies
// between 0.5 (small windows) and 0.9 (huge windows).
func (*HSTCP) Ssthresh(c *Conn) float64 {
	_, b := hstcpAB(c.Cwnd)
	return clampSsthresh(c.Cwnd * (1 - b))
}

// OnTimeout implements Algorithm.
func (*HSTCP) OnTimeout(*Conn) {}
