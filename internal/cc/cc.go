// Package cc implements the congestion avoidance components of the 14 TCP
// algorithms studied by the CAAI paper (Yang et al., ToN 2014): RENO, BIC,
// CTCP (Windows Server 2003 and 2008 variants), CUBIC (Linux <=2.6.25 and
// >=2.6.26 variants), HSTCP, HTCP, ILLINOIS, STCP, VEGAS, VENO, WESTWOOD+,
// and YEAH.
//
// Each algorithm follows the corresponding Linux kernel module of the
// 2.6.25/2.6.27 era (tcp_bic.c, tcp_cubic.c, tcp_highspeed.c, tcp_htcp.c,
// tcp_illinois.c, tcp_scalable.c, tcp_vegas.c, tcp_veno.c, tcp_westwood.c,
// tcp_yeah.c) or, for CTCP, the Compound TCP paper (Tan, Song, Zhang,
// Sridharan, INFOCOM 2006). Windows are tracked in packets as floats; ACK
// processing follows the pre-ABC kernel semantics the paper's servers ran:
// one congestion window update per received ACK, regardless of how many
// segments the ACK covers.
package cc

import (
	"math"
	"time"
)

// InitialSsthresh is the conventional "infinite" initial slow start
// threshold of a fresh connection, in packets.
const InitialSsthresh = 1 << 30

// minCwnd is the lower bound every multiplicative decrease respects
// (RFC 5681's two-segment floor).
const minCwnd = 2

// Conn is the per-connection congestion state shared between the TCP sender
// simulation and an Algorithm. The sender owns Cwnd/Ssthresh transitions on
// loss; algorithms own growth and the Ssthresh computation.
type Conn struct {
	// Cwnd is the congestion window in packets.
	Cwnd float64
	// Ssthresh is the slow start threshold in packets.
	Ssthresh float64
	// MSS is the negotiated maximum segment size in bytes.
	MSS int
	// Now is the simulation clock at the event being processed.
	Now time.Duration
	// Round counts emulated RTT rounds; the sender increments it each
	// round so per-RTT algorithms can detect round boundaries.
	Round int64
	// MinRTT and MaxRTT track the extreme RTT samples observed since the
	// connection started (0 when no sample has been observed).
	MinRTT time.Duration
	MaxRTT time.Duration
	// LossEvents counts timeouts experienced by the connection.
	LossEvents int
}

// NewConn returns connection state for a fresh connection with the standard
// "infinite" initial slow start threshold and the given initial window.
func NewConn(mss int, initialWindow float64) *Conn {
	c := new(Conn)
	c.Reinit(mss, initialWindow)
	return c
}

// Reinit rewinds c in place to exactly the state NewConn returns, so one
// Conn allocation can serve a stream of sequential connections (the
// zero-allocation identify hot path recycles the sender and its Conn).
func (c *Conn) Reinit(mss int, initialWindow float64) {
	*c = Conn{
		Cwnd:     initialWindow,
		Ssthresh: InitialSsthresh,
		MSS:      mss,
	}
}

// InSlowStart reports whether the connection is in the slow start state.
func (c *Conn) InSlowStart() bool { return c.Cwnd < c.Ssthresh }

// ObserveRTT folds one RTT sample into the connection-lifetime extremes.
func (c *Conn) ObserveRTT(rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	if c.MinRTT == 0 || rtt < c.MinRTT {
		c.MinRTT = rtt
	}
	if rtt > c.MaxRTT {
		c.MaxRTT = rtt
	}
}

// Algorithm is the congestion avoidance component of a TCP sender: the
// window growth function and the multiplicative decrease parameter the CAAI
// paper fingerprints. Implementations are stateful and not safe for
// concurrent use; create one per connection.
type Algorithm interface {
	// Name returns the canonical algorithm name (e.g. "CUBIC2").
	Name() string
	// Reset prepares the algorithm for a fresh connection using c.
	Reset(c *Conn)
	// OnAck processes one received ACK that newly acknowledged acked
	// segments, with the RTT sample rtt (0 when the sample is invalid,
	// e.g. for a retransmission under Karn's rule). The algorithm may
	// update c.Cwnd and, for delay-based exits, c.Ssthresh.
	OnAck(c *Conn, acked int, rtt time.Duration)
	// Ssthresh returns the new slow start threshold after a loss event or
	// timeout, in packets (the multiplicative decrease beta*w of the
	// paper). The sender applies it.
	Ssthresh(c *Conn) float64
	// OnTimeout notifies the algorithm of a retransmission timeout after
	// the sender has applied Ssthresh and reset Cwnd to one packet.
	OnTimeout(c *Conn)
}

// slowStart applies one standard slow start increment (one packet per ACK,
// pre-ABC Linux semantics) and reports whether the ACK was consumed by slow
// start.
func slowStart(c *Conn) bool {
	if !c.InSlowStart() {
		return false
	}
	c.Cwnd++
	return true
}

// renoIncrease applies the standard congestion avoidance increment of one
// packet per window per RTT: cwnd += 1/cwnd for each ACK.
func renoIncrease(c *Conn) { aiIncrease(c, c.Cwnd) }

// aiIncrease applies a generalized additive increase of 1/cnt packets for
// one ACK, mirroring the kernel's tcp_cong_avoid_ai.
func aiIncrease(c *Conn, cnt float64) {
	if cnt < 1 {
		cnt = 1
	}
	c.Cwnd += 1 / cnt
}

// clampSsthresh applies the two-packet floor every decrease respects.
func clampSsthresh(v float64) float64 { return math.Max(v, minCwnd) }

// secs converts a duration to float seconds.
func secs(d time.Duration) float64 { return d.Seconds() }
