package cc

import (
	"math"
	"time"
)

// CubicVersion selects which Linux CUBIC generation to emulate. The paper
// distinguishes CUBIC1 (kernel 2.6.25 and before) from CUBIC2 (kernel
// 2.6.26 and after); the observable difference is the multiplicative
// decrease parameter (819/1024 vs 717/1024).
type CubicVersion int

const (
	// CubicLinux2625 is the CUBIC of Linux kernels <= 2.6.25 (beta ~0.8).
	CubicLinux2625 CubicVersion = iota + 1
	// CubicLinux2626 is the CUBIC of Linux kernels >= 2.6.26 (beta ~0.7).
	CubicLinux2626
)

// cubicC is the paper's C constant (the kernel's bic_scale=41 corresponds
// to C = 0.4 in the CUBIC function W(t) = C*(t-K)^3 + Wmax).
const cubicC = 0.4

// Cubic is the CUBIC congestion avoidance algorithm (Ha, Rhee, Xu, 2008;
// Linux tcp_cubic.c). The window follows a cubic function of the elapsed
// real time since the last decrease, with a TCP-friendly region that tracks
// what RENO would have achieved.
type Cubic struct {
	version CubicVersion
	beta    float64
	// alpha is the TCP-friendly additive increase 3*(1-beta)/(1+beta),
	// fixed per version; hoisted out of the per-ACK path.
	alpha float64

	lastMax     float64       // remembered window at last loss
	epochStart  time.Duration // start of the current cubic epoch (<0: unset)
	originPoint float64       // plateau window of the cubic function
	k           float64       // seconds from epoch start to the plateau
	delayMin    time.Duration // min RTT observed (kernel's delay_min)
	ackCnt      float64       // ACKs since epoch start (friendliness)
	tcpCwnd     float64       // estimated RENO window (friendliness)

	// Cached elapsed-epoch-time term of the cubic function. Every ACK of
	// one round shares (Now, epochStart, delayMin), so the two duration-
	// to-seconds conversions (four divisions) run once per round instead
	// of once per ACK. The cached value is bit-identical to recomputing.
	tNow   time.Duration
	tEpoch time.Duration
	tDelay time.Duration
	tCache float64
	tValid bool
}

var _ Algorithm = (*Cubic)(nil)

// NewCubic returns a CUBIC component for the requested kernel generation.
func NewCubic(v CubicVersion) *Cubic {
	beta := 717.0 / 1024.0
	if v == CubicLinux2625 {
		beta = 819.0 / 1024.0
	}
	return &Cubic{version: v, beta: beta, alpha: 3 * (1 - beta) / (1 + beta), epochStart: -1}
}

// Name implements Algorithm.
func (cu *Cubic) Name() string {
	if cu.version == CubicLinux2625 {
		return "CUBIC1"
	}
	return "CUBIC2"
}

// Reset implements Algorithm, mirroring bictcp_reset.
func (cu *Cubic) Reset(*Conn) {
	cu.lastMax = 0
	cu.epochStart = -1
	cu.originPoint = 0
	cu.k = 0
	cu.delayMin = 0
	cu.ackCnt = 0
	cu.tcpCwnd = 0
	cu.tValid = false
}

// OnAck implements Algorithm, mirroring bictcp_cong_avoid/bictcp_update.
func (cu *Cubic) OnAck(c *Conn, _ int, rtt time.Duration) {
	if rtt > 0 && (cu.delayMin == 0 || rtt < cu.delayMin) {
		cu.delayMin = rtt
	}
	if slowStart(c) {
		return
	}
	aiIncrease(c, cu.count(c))
}

// count computes the kernel's ca->cnt: ACKs needed per packet of growth.
func (cu *Cubic) count(c *Conn) float64 {
	cwnd := c.Cwnd
	cu.ackCnt++
	if cu.epochStart < 0 {
		cu.epochStart = c.Now
		cu.ackCnt = 1
		cu.tcpCwnd = cwnd
		if cu.lastMax > cwnd {
			cu.k = math.Cbrt((cu.lastMax - cwnd) / cubicC)
			cu.originPoint = cu.lastMax
		} else {
			cu.k = 0
			cu.originPoint = cwnd
		}
	}
	// Elapsed epoch time, extended by the minimum RTT exactly as the
	// kernel does so that the target is one RTT ahead.
	var t float64
	if cu.tValid && c.Now == cu.tNow && cu.epochStart == cu.tEpoch && cu.delayMin == cu.tDelay {
		t = cu.tCache
	} else {
		t = secs(c.Now-cu.epochStart) + secs(cu.delayMin)
		cu.tNow, cu.tEpoch, cu.tDelay = c.Now, cu.epochStart, cu.delayMin
		cu.tCache, cu.tValid = t, true
	}
	d := t - cu.k
	target := cu.originPoint + cubicC*d*d*d

	var cnt float64
	if target > cwnd {
		cnt = cwnd / (target - cwnd)
	} else {
		cnt = 100 * cwnd // effectively no growth above the target
	}
	// TCP-friendly region: track the window RENO would have reached and
	// never grow slower than it. The emulated RENO gains
	// alpha = 3*(1-beta)/(1+beta) packets per RTT.
	delta := cwnd / cu.alpha // ACKs per packet of RENO-equivalent growth
	for cu.ackCnt > delta {
		cu.ackCnt -= delta
		cu.tcpCwnd++
	}
	if cu.tcpCwnd > cwnd {
		if maxCnt := cwnd / (cu.tcpCwnd - cwnd); cnt > maxCnt {
			cnt = maxCnt
		}
	}
	if cnt < 2 {
		cnt = 2 // cap growth at 0.5 packets per ACK
	}
	return cnt
}

// Ssthresh implements Algorithm, mirroring bictcp_recalc_ssthresh with fast
// convergence enabled.
func (cu *Cubic) Ssthresh(c *Conn) float64 {
	cwnd := c.Cwnd
	cu.epochStart = -1
	if cwnd < cu.lastMax {
		cu.lastMax = cwnd * (1 + cu.beta) / 2
	} else {
		cu.lastMax = cwnd
	}
	return clampSsthresh(cwnd * cu.beta)
}

// OnTimeout implements Algorithm: the kernel resets all CUBIC state when
// the connection enters the Loss state.
func (cu *Cubic) OnTimeout(*Conn) { cu.Reset(nil) }
