package cc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// betaSpec is the multiplicative-decrease contract of one algorithm: the
// acceptable ssthresh/cwnd ratio after a loss in steady congestion
// avoidance at a constant RTT (no queueing-delay signal). The table is
// consulted through the registry, so registering a new algorithm without
// declaring its decrease contract fails TestMultiplicativeDecreaseSpec
// instead of silently escaping coverage.
type betaSpec struct {
	lo, hi float64
	why    string
}

// betaSpecs covers every registry algorithm. Constant-RTT steady state
// pins the delay-adaptive ones to their no-congestion operating point
// (VENO's random-loss 0.8, ILLINOIS' beta_min, YeAH's fast mode).
var betaSpecs = map[string]betaSpec{
	"RENO":     {0.49, 0.51, "AIMD halves"},
	"BIC":      {0.78, 0.82, "beta 0.8 above the low-window threshold"},
	"CTCP1":    {0.49, 0.51, "Compound TCP halves the loss window"},
	"CTCP2":    {0.49, 0.51, "Compound TCP halves the loss window"},
	"CUBIC1":   {0.78, 0.82, "Linux <=2.6.25 beta 0.8"},
	"CUBIC2":   {0.69, 0.72, "Linux >=2.6.26 beta 0.7"},
	"HSTCP":    {0.49, 0.80, "RFC 3649 b(w): 0.5 at small w, shrinking with w"},
	"HTCP":     {0.75, 0.85, "RTT-ratio beta clamps to 0.8 at constant RTT"},
	"ILLINOIS": {0.86, 0.89, "beta_min 1/8 without queueing delay"},
	"STCP":     {0.86, 0.89, "scalable beta 0.875"},
	"VEGAS":    {0.49, 0.51, "loss response stays RENO's half"},
	"VENO":     {0.78, 0.82, "random-loss decrease 4/5 without backlog"},
	"WESTWOOD": {0.0, 1.10, "ssthresh tracks bw*RTTmin, not a fixed fraction"},
	"YEAH":     {0.84, 0.90, "fast mode sheds max(queue, w/8)"},
	"HYBLA":    {0.49, 0.51, "RENO decrease with rho-scaled growth"},
	"LP":       {0.49, 0.51, "RENO decrease with delay-based backoff"},
}

// TestMultiplicativeDecreaseSpec property-checks every registered
// algorithm's decrease factor against its spec across random window sizes,
// and fails when a registry entry has no spec at all.
func TestMultiplicativeDecreaseSpec(t *testing.T) {
	for _, name := range Names() {
		spec, ok := betaSpecs[name]
		if !ok {
			t.Fatalf("algorithm %s has no betaSpec: declare its multiplicative-decrease contract", name)
		}
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				cwnd := 64 + rng.Float64()*836 // above every low-window special case
				alg, err := New(name)
				if err != nil {
					t.Fatal(err)
				}
				c := newConnInCA(cwnd)
				alg.Reset(c)
				runRounds(alg, c, 3, rtt1s) // constant RTT: no congestion signal
				cw := c.Cwnd
				beta := alg.Ssthresh(c) / cw
				if beta < spec.lo || beta > spec.hi {
					t.Logf("%s: beta %.4f outside [%v, %v] at cwnd %.1f (%s)",
						name, beta, spec.lo, spec.hi, cw, spec.why)
					return false
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestWindowInvariantsUnderHostileDrive property-checks every registered
// algorithm through random ACK/timeout storms with wildly varying RTTs:
// the congestion window must stay positive and finite, the connection's
// slow start threshold must stay positive and finite, and every decrease
// the algorithm proposes must respect the two-packet floor.
func TestWindowInvariantsUnderHostileDrive(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				alg, err := New(name)
				if err != nil {
					t.Fatal(err)
				}
				c := newConnInCA(2 + rng.Float64()*500)
				alg.Reset(c)
				check := func(context string) bool {
					switch {
					case !(c.Cwnd > 0) || math.IsInf(c.Cwnd, 0):
						t.Logf("%s seed %d: cwnd %v after %s", name, seed, c.Cwnd, context)
						return false
					case !(c.Ssthresh > 0) || math.IsInf(c.Ssthresh, 0):
						t.Logf("%s seed %d: ssthresh %v after %s", name, seed, c.Ssthresh, context)
						return false
					}
					return true
				}
				for step := 0; step < 120; step++ {
					switch rng.Intn(10) {
					case 0: // retransmission timeout, as the sender applies it
						th := alg.Ssthresh(c)
						if th < 2 || math.IsNaN(th) || math.IsInf(th, 0) {
							t.Logf("%s seed %d: Ssthresh() = %v", name, seed, th)
							return false
						}
						c.Ssthresh = th
						c.Cwnd = 1
						c.LossEvents++
						alg.OnTimeout(c)
						if !check("timeout") {
							return false
						}
					case 1: // round boundary
						c.Round++
						c.Now += time.Duration(1+rng.Intn(2000)) * time.Millisecond
					default: // ACK with a random (sometimes invalid) RTT sample
						rtt := time.Duration(rng.Intn(2500)) * time.Millisecond
						if rng.Intn(8) == 0 {
							rtt = 0 // Karn's rule: invalid sample
						}
						c.ObserveRTT(rtt)
						alg.OnAck(c, 1+rng.Intn(3), rtt)
						if !check("ack") {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestSlowStartMonotoneGrowth property-checks every registered algorithm
// in slow start: window growth is monotone per ACK (never a decrease) and
// strictly positive across rounds, at any constant RTT.
func TestSlowStartMonotoneGrowth(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				rtt := time.Duration(50+rng.Intn(1500)) * time.Millisecond
				alg, err := New(name)
				if err != nil {
					t.Fatal(err)
				}
				c := NewConn(536, 2+rng.Float64()*6)
				alg.Reset(c)
				start := c.Cwnd
				for round := 0; round < 5 && c.InSlowStart(); round++ {
					c.Round++
					acks := int(c.Cwnd)
					if acks > 1000 {
						acks = 1000 // bound the drive (HYBLA explodes by design)
					}
					for i := 0; i < acks && c.InSlowStart(); i++ {
						before := c.Cwnd
						c.ObserveRTT(rtt)
						alg.OnAck(c, 1, rtt)
						if c.Cwnd < before-1e-9 {
							t.Logf("%s seed %d: slow start shrank %.3f -> %.3f in round %d",
								name, seed, before, c.Cwnd, round)
							return false
						}
					}
					c.Now += rtt
				}
				if c.Cwnd <= start {
					t.Logf("%s seed %d: no slow start growth (%.3f -> %.3f)", name, seed, start, c.Cwnd)
					return false
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Error(err)
			}
		})
	}
}
