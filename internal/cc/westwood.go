package cc

import "time"

// Westwood+ parameters from Casetti, Gerla, Mascolo, Sanadidi, Wang
// (MobiCom 2001) and Linux tcp_westwood.c.
const (
	// westwoodRTTMinWindow is the minimum bandwidth-sampling interval.
	westwoodRTTMinWindow = 50 * time.Millisecond
)

// Westwood is TCP Westwood+: RENO-style growth, but on loss the slow start
// threshold is set from an end-to-end bandwidth estimate times the minimum
// RTT (the estimated path BDP) instead of a fixed fraction of the window.
type Westwood struct {
	bwNsEst float64 // first-stage filter, packets/second
	bwEst   float64 // second-stage filter, packets/second
	first   bool

	acked       float64       // packets acknowledged since the last sample
	windowStart time.Duration // start of the current sampling window
}

var _ Algorithm = (*Westwood)(nil)

// NewWestwood returns a Westwood+ congestion avoidance component.
func NewWestwood() *Westwood { return &Westwood{first: true} }

// Name implements Algorithm.
func (*Westwood) Name() string { return "WESTWOOD" }

// Reset implements Algorithm.
func (w *Westwood) Reset(c *Conn) {
	w.bwNsEst = 0
	w.bwEst = 0
	w.first = true
	w.acked = 0
	w.windowStart = c.Now
}

// OnAck implements Algorithm: RENO growth plus bandwidth sampling once per
// RTT (or 50 ms, whichever is larger).
func (w *Westwood) OnAck(c *Conn, acked int, rtt time.Duration) {
	w.acked += float64(acked)
	interval := rtt
	if interval < westwoodRTTMinWindow {
		interval = westwoodRTTMinWindow
	}
	if delta := c.Now - w.windowStart; delta >= interval && delta > 0 {
		sample := w.acked / secs(delta)
		if w.first {
			w.bwNsEst = sample
			w.bwEst = sample
			w.first = false
		} else {
			// Two-stage EWMA filter (7/8 history, 1/8 new).
			w.bwNsEst = (7*w.bwNsEst + sample) / 8
			w.bwEst = (7*w.bwEst + w.bwNsEst) / 8
		}
		w.acked = 0
		w.windowStart = c.Now
	}
	if slowStart(c) {
		return
	}
	renoIncrease(c)
}

// Ssthresh implements Algorithm: the estimated bandwidth-delay product in
// packets, bwEst * minRTT.
func (w *Westwood) Ssthresh(c *Conn) float64 {
	return clampSsthresh(w.bwEst * secs(c.MinRTT))
}

// OnTimeout implements Algorithm: sampling restarts after the silent
// period so it does not count the timeout as an ultra-slow sample.
func (w *Westwood) OnTimeout(c *Conn) {
	w.acked = 0
	w.windowStart = c.Now
}
