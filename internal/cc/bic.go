package cc

import "time"

// BIC parameters, following Linux tcp_bic.c (kernel 2.6.27 defaults).
const (
	bicLowWindow    = 14 // below this, behave like RENO
	bicMaxIncrement = 16 // max additive increase per RTT
	bicBeta         = 819.0 / 1024.0
	bicB            = 4  // BICTCP_B: binary search coefficient
	bicSmoothPart   = 20 // RTTs spent crossing from the origin to the max
)

// BIC is Binary Increase Congestion control (Xu, Harfoush, Rhee, INFOCOM
// 2004), the Linux default before CUBIC. Growth binary-searches between the
// current window and the window at the last loss; beta is 819/1024 ~= 0.8
// for windows above 14 packets.
type BIC struct {
	lastMax         float64 // window size just before the last loss event
	fastConvergence bool
}

var _ Algorithm = (*BIC)(nil)

// NewBIC returns a BIC congestion avoidance component with kernel defaults.
func NewBIC() *BIC { return &BIC{fastConvergence: true} }

// Name implements Algorithm.
func (*BIC) Name() string { return "BIC" }

// Reset implements Algorithm.
func (b *BIC) Reset(*Conn) { b.lastMax = 0 }

// OnAck implements Algorithm, mirroring bictcp_cong_avoid/bictcp_update.
func (b *BIC) OnAck(c *Conn, _ int, _ time.Duration) {
	if slowStart(c) {
		return
	}
	aiIncrease(c, b.count(c.Cwnd))
}

// count returns the number of ACKs needed to grow the window by one packet
// (the kernel's ca->cnt).
func (b *BIC) count(cwnd float64) float64 {
	if cwnd <= bicLowWindow {
		return cwnd // RENO region
	}
	if cwnd < b.lastMax {
		// Binary search increase toward the midpoint.
		dist := (b.lastMax - cwnd) / bicB
		switch {
		case dist > bicMaxIncrement:
			return cwnd / bicMaxIncrement // linear increase
		case dist <= 1:
			return cwnd * bicSmoothPart / bicB // binary search
		default:
			return cwnd / dist
		}
	}
	// Slow start probing beyond the previous maximum.
	var cnt float64
	switch {
	case cwnd < b.lastMax+bicB:
		cnt = cwnd * bicSmoothPart / bicB
	case cwnd < b.lastMax+bicMaxIncrement*(bicB-1):
		cnt = cwnd * (bicB - 1) / (cwnd - b.lastMax)
	default:
		cnt = cwnd / bicMaxIncrement
	}
	if b.lastMax == 0 && cnt > 20 {
		cnt = 20 // careful initial probing when no maximum is known
	}
	return cnt
}

// Ssthresh implements Algorithm, mirroring bictcp_recalc_ssthresh.
func (b *BIC) Ssthresh(c *Conn) float64 {
	cwnd := c.Cwnd
	if cwnd <= bicLowWindow {
		b.lastMax = cwnd
		return clampSsthresh(cwnd / 2)
	}
	if cwnd < b.lastMax && b.fastConvergence {
		b.lastMax = cwnd * (1 + bicBeta) / 2
	} else {
		b.lastMax = cwnd
	}
	return clampSsthresh(cwnd * bicBeta)
}

// OnTimeout implements Algorithm: the kernel resets BIC state (including
// the remembered maximum) when entering the Loss state.
func (b *BIC) OnTimeout(*Conn) { b.lastMax = 0 }
