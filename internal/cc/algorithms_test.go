package cc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

const rtt1s = time.Second

// newConnInCA returns a connection already in congestion avoidance at the
// given window.
func newConnInCA(cwnd float64) *Conn {
	c := NewConn(536, 2)
	c.Cwnd = cwnd
	c.Ssthresh = cwnd
	c.ObserveRTT(rtt1s)
	return c
}

// runRounds drives alg for rounds emulated RTTs at fixed rtt and returns
// the per-round window sizes.
func runRounds(alg Algorithm, c *Conn, rounds int, rtt time.Duration) []float64 {
	out := make([]float64, 0, rounds)
	for r := 0; r < rounds; r++ {
		c.Round++
		acks := int(c.Cwnd)
		for i := 0; i < acks; i++ {
			alg.OnAck(c, 1, rtt)
		}
		c.Now += rtt
		out = append(out, c.Cwnd)
	}
	return out
}

func TestRegistryComplete(t *testing.T) {
	names := Names()
	// Table I lists 16 algorithms; CAAI probes for 14 of them (HYBLA and
	// LP are excluded per Section III-A).
	if len(names) != 16 {
		t.Fatalf("registry has %d algorithms, want 16: %v", len(names), names)
	}
	caaiNames := CAAINames()
	if len(caaiNames) != 14 {
		t.Fatalf("CAAI scope has %d algorithms, want 14: %v", len(caaiNames), caaiNames)
	}
	for _, excluded := range []string{"HYBLA", "LP"} {
		info, ok := Lookup(excluded)
		if !ok || info.CAAI {
			t.Fatalf("%s must be registered but outside the CAAI scope", excluded)
		}
	}
	for _, n := range names {
		alg, err := New(n)
		if err != nil {
			t.Fatalf("New(%s): %v", n, err)
		}
		if alg.Name() != n {
			t.Fatalf("Name mismatch: registry %q vs instance %q", n, alg.Name())
		}
		info, ok := Lookup(n)
		if !ok || info.Name != n || info.Description == "" {
			t.Fatalf("Lookup(%s) incomplete: %+v", n, info)
		}
	}
}

func TestRegistryUnknown(t *testing.T) {
	if _, err := New("NOPE"); err == nil {
		t.Fatal("New(NOPE) should error")
	}
}

func TestRegistryDefaults(t *testing.T) {
	// The paper's Table I: RENO, BIC, CUBIC, CTCP are defaults somewhere.
	for _, n := range []string{"RENO", "BIC", "CUBIC1", "CUBIC2", "CTCP1", "CTCP2"} {
		info, _ := Lookup(n)
		if !info.Default {
			t.Errorf("%s should be marked default", n)
		}
	}
	for _, n := range []string{"VEGAS", "HTCP", "STCP"} {
		info, _ := Lookup(n)
		if info.Default {
			t.Errorf("%s should not be a default", n)
		}
	}
}

func TestFamilyString(t *testing.T) {
	if FamilyLinux.String() != "Linux" || FamilyWindows.String() != "Windows" {
		t.Fatal("family labels wrong")
	}
	if Family(99).String() == "" {
		t.Fatal("unknown family must still render")
	}
}

// TestMultiplicativeDecrease checks each algorithm's beta = ssthresh/cwnd
// at a large window, the primary CAAI feature (Section III-B).
func TestMultiplicativeDecrease(t *testing.T) {
	tests := []struct {
		name   string
		lo, hi float64 // acceptable beta range at cwnd=512
	}{
		{"RENO", 0.49, 0.51},
		{"BIC", 0.79, 0.81},
		{"CUBIC1", 0.79, 0.81},
		{"CUBIC2", 0.69, 0.71},
		{"CTCP1", 0.49, 0.51},
		{"CTCP2", 0.49, 0.51},
		{"STCP", 0.87, 0.88},
		{"HSTCP", 0.60, 0.70}, // b(512) ~ 0.365 -> beta ~ 0.635
		{"VEGAS", 0.49, 0.51},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			alg, err := New(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			c := newConnInCA(512)
			alg.Reset(c)
			c.Cwnd = 512
			beta := alg.Ssthresh(c) / 512
			if beta < tc.lo || beta > tc.hi {
				t.Fatalf("beta = %v, want in [%v, %v]", beta, tc.lo, tc.hi)
			}
		})
	}
}

// TestSsthreshBounds property-checks every algorithm: the new threshold is
// at least two packets and finite for any plausible window.
func TestSsthreshBounds(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				cwnd := 2 + rng.Float64()*2000
				alg, err := New(name)
				if err != nil {
					return false
				}
				c := newConnInCA(cwnd)
				alg.Reset(c)
				c.Cwnd = cwnd
				th := alg.Ssthresh(c)
				return th >= 2 && !math.IsNaN(th) && !math.IsInf(th, 0)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestGrowthMonotoneLossBased property-checks that loss-based algorithms
// never shrink the window on ACKs under a constant RTT.
func TestGrowthMonotoneLossBased(t *testing.T) {
	for _, name := range []string{"RENO", "BIC", "CUBIC1", "CUBIC2", "HSTCP", "HTCP", "ILLINOIS", "STCP", "VENO", "WESTWOOD", "CTCP1", "CTCP2"} {
		name := name
		t.Run(name, func(t *testing.T) {
			alg, _ := New(name)
			c := newConnInCA(50)
			alg.Reset(c)
			ws := runRounds(alg, c, 12, rtt1s)
			for i := 1; i < len(ws); i++ {
				if ws[i] < ws[i-1]-1e-9 {
					t.Fatalf("window shrank at round %d: %v -> %v", i, ws[i-1], ws[i])
				}
			}
		})
	}
}

func TestRenoLinearGrowth(t *testing.T) {
	alg := NewReno()
	c := newConnInCA(100)
	alg.Reset(c)
	ws := runRounds(alg, c, 5, rtt1s)
	for i, w := range ws {
		want := 101 + float64(i)
		if math.Abs(w-want) > 0.2 {
			t.Fatalf("round %d: w = %v, want ~%v", i, w, want)
		}
	}
}

func TestSTCPExponentialGrowth(t *testing.T) {
	alg := NewSTCP()
	c := newConnInCA(500)
	alg.Reset(c)
	ws := runRounds(alg, c, 6, rtt1s)
	for i := 1; i < len(ws); i++ {
		ratio := ws[i] / ws[i-1]
		if ratio < 1.015 || ratio > 1.025 {
			t.Fatalf("round %d: growth ratio %v, want ~1.02", i, ratio)
		}
	}
}

func TestHSTCPResponseFunction(t *testing.T) {
	a, b := hstcpAB(38)
	if a != 1 || b != 0.5 {
		t.Fatalf("at low window: a=%v b=%v, want 1, 0.5", a, b)
	}
	a512, b512 := hstcpAB(512)
	if b512 <= 0.3 || b512 >= 0.45 {
		t.Fatalf("b(512) = %v, want ~0.365", b512)
	}
	if a512 < 3 || a512 > 12 {
		t.Fatalf("a(512) = %v, want mid-single-digits", a512)
	}
	// a(w) grows with w; b(w) shrinks with w.
	a83k, b83k := hstcpAB(83000)
	if a83k <= a512 || b83k >= b512 {
		t.Fatalf("HSTCP response not monotone: a=%v->%v b=%v->%v", a512, a83k, b512, b83k)
	}
}

func TestBICBinarySearchPhases(t *testing.T) {
	alg := NewBIC()
	c := newConnInCA(512)
	alg.Reset(c)
	c.Cwnd = 512
	alg.Ssthresh(c) // sets lastMax = 512
	if alg.lastMax != 512 {
		t.Fatalf("lastMax = %v, want 512", alg.lastMax)
	}
	// Far below the maximum: linear increase, cnt = cwnd/16.
	if cnt := alg.count(300); math.Abs(cnt-300.0/16) > 1e-9 {
		t.Fatalf("linear-phase cnt = %v", cnt)
	}
	// Close to the maximum: smooth binary search, slow growth.
	if cnt := alg.count(511); cnt < 511*20/4-1 {
		t.Fatalf("smooth-phase cnt = %v, want large", cnt)
	}
	// Fast convergence shrinks the remembered maximum on a second loss.
	c.Cwnd = 400
	alg.Ssthresh(c)
	want := 400 * (1 + bicBeta) / 2
	if math.Abs(alg.lastMax-want) > 1e-9 {
		t.Fatalf("fast convergence lastMax = %v, want %v", alg.lastMax, want)
	}
}

func TestBICLowWindowIsReno(t *testing.T) {
	alg := NewBIC()
	c := newConnInCA(10)
	alg.Reset(c)
	c.Cwnd = 10
	if got := alg.Ssthresh(c); got != 5 {
		t.Fatalf("low-window beta: ssthresh = %v, want 5", got)
	}
}

func TestCubicConcaveThenConvex(t *testing.T) {
	alg := NewCubic(CubicLinux2626)
	c := newConnInCA(512)
	alg.Reset(c)
	c.Cwnd = 512
	c.Ssthresh = alg.Ssthresh(c) // loss at 512: lastMax=512, target ~358
	c.Cwnd = c.Ssthresh
	ws := runRounds(alg, c, 16, rtt1s)
	// Increments shrink while approaching lastMax (concave), then grow
	// (convex).
	incs := make([]float64, 0, len(ws)-1)
	for i := 1; i < len(ws); i++ {
		incs = append(incs, ws[i]-ws[i-1])
	}
	minIdx := 0
	for i, inc := range incs {
		if inc < incs[minIdx] {
			minIdx = i
		}
	}
	if minIdx == 0 || minIdx == len(incs)-1 {
		t.Fatalf("cubic increments not concave-then-convex: %v", incs)
	}
	if incs[len(incs)-1] < 2*incs[minIdx] {
		t.Fatalf("no convex acceleration: %v", incs)
	}
}

func TestCubicVersionsDifferInBeta(t *testing.T) {
	c1, c2 := NewCubic(CubicLinux2625), NewCubic(CubicLinux2626)
	conn := newConnInCA(512)
	c1.Reset(conn)
	c2.Reset(conn)
	conn.Cwnd = 512
	b1 := c1.Ssthresh(conn) / 512
	conn.Cwnd = 512
	b2 := c2.Ssthresh(conn) / 512
	if math.Abs(b1-0.7998) > 0.001 || math.Abs(b2-0.70019) > 0.001 {
		t.Fatalf("betas = %v, %v; want ~0.8 and ~0.7", b1, b2)
	}
	if c1.Name() != "CUBIC1" || c2.Name() != "CUBIC2" {
		t.Fatal("version names wrong")
	}
}

func TestCTCPQuantization(t *testing.T) {
	t1 := NewCTCP(CTCPWindows2003)
	if got := t1.quantize(800 * time.Millisecond); got != time.Second {
		t.Fatalf("2003 quantize(800ms) = %v, want 1s", got)
	}
	if got := t1.quantize(time.Second); got != time.Second {
		t.Fatalf("2003 quantize(1s) = %v, want 1s", got)
	}
	t2 := NewCTCP(CTCPWindows2008)
	if got := t2.quantize(800 * time.Millisecond); got != 800*time.Millisecond {
		t.Fatalf("2008 quantize(800ms) = %v, want exact", got)
	}
}

func TestCTCPDelayWindowGrowsAndCollapses(t *testing.T) {
	alg := NewCTCP(CTCPWindows2008)
	c := newConnInCA(200)
	alg.Reset(c)
	// Constant RTT at the base: dwnd grows (diff = 0 < gamma).
	runRounds(alg, c, 6, 800*time.Millisecond)
	if alg.dwnd <= 0 {
		t.Fatalf("dwnd = %v, want growth at zero queue", alg.dwnd)
	}
	grown := alg.dwnd
	// RTT step: queue estimate exceeds gamma, dwnd collapses.
	runRounds(alg, c, 4, time.Second)
	if alg.dwnd >= grown {
		t.Fatalf("dwnd = %v, want collapse after RTT step (was %v)", alg.dwnd, grown)
	}
}

func TestCTCP2003InsensitiveToRTTStep(t *testing.T) {
	alg := NewCTCP(CTCPWindows2003)
	c := newConnInCA(200)
	alg.Reset(c)
	runRounds(alg, c, 6, 800*time.Millisecond)
	before := alg.dwnd
	runRounds(alg, c, 4, time.Second) // quantizes to the same tick
	if alg.dwnd <= before {
		t.Fatalf("2003 dwnd should keep growing across the step: %v -> %v", before, alg.dwnd)
	}
}

func TestCTCPLowWindowIsReno(t *testing.T) {
	alg := NewCTCP(CTCPWindows2008)
	c := newConnInCA(30) // below the 41-packet threshold
	alg.Reset(c)
	runRounds(alg, c, 5, rtt1s)
	if alg.dwnd != 0 {
		t.Fatalf("dwnd = %v below low window, want 0", alg.dwnd)
	}
}

func TestHTCPAlphaRamp(t *testing.T) {
	alg := NewHTCP()
	c := newConnInCA(100)
	alg.Reset(c)
	// Within the first second: RENO-like.
	c.Now = 500 * time.Millisecond
	if a := alg.alpha(c); a != 1 {
		t.Fatalf("alpha before deltaL = %v, want 1", a)
	}
	// Long after: quadratic ramp.
	c.Now = 10 * time.Second
	if a := alg.alpha(c); a < 10 {
		t.Fatalf("alpha after 10s = %v, want large", a)
	}
}

func TestHTCPBetaFromRTTRatio(t *testing.T) {
	alg := NewHTCP()
	c := newConnInCA(100)
	alg.Reset(c)
	// Equal min and max RTT: ratio 1 clamps to 0.8.
	alg.OnAck(c, 1, rtt1s)
	c.Cwnd = 100
	if th := alg.Ssthresh(c); math.Abs(th/100-0.8) > 1e-9 {
		t.Fatalf("beta = %v, want 0.8", th/100)
	}
	// Wildly varying RTT: ratio clamps to 0.5.
	alg.OnAck(c, 1, 100*time.Millisecond)
	alg.OnAck(c, 1, rtt1s)
	c.Cwnd = 100
	if th := alg.Ssthresh(c); math.Abs(th/100-0.5) > 1e-9 {
		t.Fatalf("beta = %v, want 0.5", th/100)
	}
}

func TestIllinoisAlphaBetaFromDelay(t *testing.T) {
	alg := NewIllinois()
	c := newConnInCA(100)
	alg.Reset(c)
	// Constant RTT: no queueing delay; alpha max, beta min.
	runRounds(alg, c, 3, 800*time.Millisecond)
	if alg.alpha != illAlphaMax {
		t.Fatalf("alpha = %v, want max %v", alg.alpha, illAlphaMax)
	}
	if alg.beta != illBetaMin {
		t.Fatalf("beta = %v, want min %v", alg.beta, illBetaMin)
	}
	// Large queueing delay: alpha collapses, beta rises to max.
	runRounds(alg, c, 3, 1600*time.Millisecond)
	if alg.alpha > 1 {
		t.Fatalf("alpha under delay = %v, want small", alg.alpha)
	}
	if alg.beta != illBetaMax {
		t.Fatalf("beta under delay = %v, want max", alg.beta)
	}
}

func TestIllinoisSmallWindowBase(t *testing.T) {
	alg := NewIllinois()
	c := newConnInCA(10) // below winThresh
	alg.Reset(c)
	runRounds(alg, c, 3, rtt1s)
	if alg.alpha != illAlphaBase || alg.beta != illBetaBase {
		t.Fatalf("small-window params = %v/%v, want base", alg.alpha, alg.beta)
	}
}

func TestVegasEquilibrium(t *testing.T) {
	alg := NewVegas()
	c := newConnInCA(50)
	alg.Reset(c)
	// Base RTT 0.8s, then persistent 1.0s: diff = w/4 > beta, so the
	// window decreases toward the equilibrium rather than growing.
	runRounds(alg, c, 2, 800*time.Millisecond)
	start := c.Cwnd
	runRounds(alg, c, 6, rtt1s)
	if c.Cwnd >= start {
		t.Fatalf("vegas window grew under queueing delay: %v -> %v", start, c.Cwnd)
	}
}

func TestVegasGrowsAtBaseRTT(t *testing.T) {
	alg := NewVegas()
	c := newConnInCA(50)
	alg.Reset(c)
	ws := runRounds(alg, c, 6, rtt1s) // rtt == base: diff 0 < alpha
	if ws[len(ws)-1] <= ws[0] {
		t.Fatalf("vegas did not grow at base RTT: %v", ws)
	}
}

func TestVenoBetaDependsOnBacklog(t *testing.T) {
	alg := NewVeno()
	c := newConnInCA(100)
	alg.Reset(c)
	runRounds(alg, c, 3, rtt1s) // no backlog
	c.Cwnd = 100
	if th := alg.Ssthresh(c); math.Abs(th/100-0.8) > 1e-9 {
		t.Fatalf("random-loss beta = %v, want 0.8", th/100)
	}
	runRounds(alg, c, 3, 1500*time.Millisecond) // large backlog
	cw := c.Cwnd
	if th := alg.Ssthresh(c); math.Abs(th/cw-0.5) > 1e-9 {
		t.Fatalf("congestive beta = %v, want 0.5", th/cw)
	}
}

func TestWestwoodBandwidthEstimate(t *testing.T) {
	alg := NewWestwood()
	c := newConnInCA(100)
	alg.Reset(c)
	// cwnd packets per 1s RTT for many rounds: the filtered bandwidth
	// estimate trails the (slowly growing) sending rate, so ssthresh =
	// bw * minRTT lands just below the final window -- unlike every
	// fixed-fraction algorithm.
	ws := runRounds(alg, c, 40, rtt1s)
	final := ws[len(ws)-1]
	th := alg.Ssthresh(c)
	if th < 0.6*final || th > 1.02*final {
		t.Fatalf("westwood ssthresh = %v, want near the estimated BDP ~%v", th, final)
	}
}

func TestWestwoodSsthreshIndependentOfCwnd(t *testing.T) {
	alg := NewWestwood()
	c := newConnInCA(100)
	alg.Reset(c)
	runRounds(alg, c, 20, rtt1s)
	th1 := alg.Ssthresh(c)
	c.Cwnd = 500 // the window itself does not matter, only the estimate
	th2 := alg.Ssthresh(c)
	if math.Abs(th1-th2) > 1e-9 {
		t.Fatalf("ssthresh depends on cwnd: %v vs %v", th1, th2)
	}
}

func TestYeahModesAndSsthresh(t *testing.T) {
	alg := NewYeAH()
	c := newConnInCA(400)
	alg.Reset(c)
	// Zero queue: fast (STCP) mode; beta = 1 - 1/8.
	runRounds(alg, c, 4, rtt1s)
	if alg.doingRenoNow != 0 {
		t.Fatal("should be in fast mode at zero queue")
	}
	cw := c.Cwnd
	if th := alg.Ssthresh(c); math.Abs(th/cw-0.875) > 0.01 {
		t.Fatalf("fast-mode beta = %v, want ~0.875", th/cw)
	}
}

func TestYeahPrecautionaryDecongestion(t *testing.T) {
	alg := NewYeAH()
	c := newConnInCA(400)
	alg.Reset(c)
	runRounds(alg, c, 3, 800*time.Millisecond)
	before := c.Cwnd
	runRounds(alg, c, 3, 1200*time.Millisecond) // queue = w/3 >> 80
	if c.Cwnd >= before {
		t.Fatalf("yeah did not decongest: %v -> %v", before, c.Cwnd)
	}
	if alg.doingRenoNow == 0 {
		t.Fatal("should have switched to reno mode")
	}
}

// TestTimeoutResetsToSlowStart drives each algorithm through the canonical
// timeout transition the sender performs and checks the invariants.
func TestTimeoutResetsToSlowStart(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			alg, _ := New(name)
			c := newConnInCA(512)
			alg.Reset(c)
			runRounds(alg, c, 3, rtt1s)
			th := alg.Ssthresh(c)
			c.Ssthresh = th
			c.Cwnd = 1
			alg.OnTimeout(c)
			if !c.InSlowStart() && th > 1 {
				t.Fatal("after timeout the connection must slow start")
			}
			// Growth must resume without panicking.
			runRounds(alg, c, 3, rtt1s)
			if c.Cwnd <= 1 {
				t.Fatalf("no growth after timeout: cwnd = %v", c.Cwnd)
			}
		})
	}
}

func TestHyblaRhoScaling(t *testing.T) {
	alg := NewHybla()
	c := newConnInCA(100)
	alg.Reset(c)
	// At a 1s RTT rho = 40 (capped 16): congestion avoidance gains
	// rho^2 per RTT -- far more aggressive than RENO.
	ws := runRounds(alg, c, 3, rtt1s)
	perRTT := ws[1] - ws[0]
	if perRTT < 100 {
		t.Fatalf("hybla CA gain = %v/RTT, want ~rho^2", perRTT)
	}
	// At the reference RTT rho = 1: plain RENO.
	alg2 := NewHybla()
	c2 := newConnInCA(100)
	alg2.Reset(c2)
	ws2 := runRounds(alg2, c2, 3, hyblaRTT0)
	if gain := ws2[1] - ws2[0]; gain > 1.5 {
		t.Fatalf("hybla at rtt0 gain = %v/RTT, want ~1", gain)
	}
}

func TestHyblaSlowStartBoost(t *testing.T) {
	alg := NewHybla()
	c := NewConn(536, 2)
	c.Ssthresh = 1 << 20
	alg.Reset(c)
	alg.OnAck(c, 1, rtt1s)
	// One ACK at rho=16 gains 2^16-1 packets (the capped exponent).
	if c.Cwnd < 1000 {
		t.Fatalf("hybla slow start gain = %v, want huge", c.Cwnd)
	}
}

func TestLPBacksOffUnderDelay(t *testing.T) {
	alg := NewLP()
	c := newConnInCA(100)
	alg.Reset(c)
	runRounds(alg, c, 3, 800*time.Millisecond) // establishes min delay
	runRounds(alg, c, 2, 1600*time.Millisecond)
	if c.Cwnd > 50 {
		t.Fatalf("LP did not back off under queueing delay: cwnd = %v", c.Cwnd)
	}
}

func TestLPRenoLikeWithoutDelay(t *testing.T) {
	alg := NewLP()
	c := newConnInCA(100)
	alg.Reset(c)
	ws := runRounds(alg, c, 5, rtt1s)
	for i := 1; i < len(ws); i++ {
		if ws[i] < ws[i-1] {
			t.Fatalf("LP shrank without delay signal: %v", ws)
		}
	}
	if math.Abs(ws[len(ws)-1]-105) > 1 {
		t.Fatalf("LP growth = %v, want RENO-like ~105", ws[len(ws)-1])
	}
}
