package cc

import "time"

// TCP-LP thresholds (Kuzmanovic and Knightly 2003; Linux tcp_lp.c).
const (
	// lpThresholdFrac: congestion is inferred when the smoothed one-way
	// delay exceeds this fraction of the observed delay range.
	lpThresholdFrac = 0.15
	// lpInference is the back-off holddown after an inference.
	lpInference = time.Second
)

// LP is TCP Low Priority: a RENO-shaped algorithm that additionally backs
// off as soon as its smoothed queueing-delay estimate crosses 15% of the
// observed delay range, yielding to best-effort traffic. The paper's
// Table I lists it but CAAI does not probe for it ("designed for
// background file transfer"); it completes the catalogue and serves as an
// out-of-training algorithm in robustness tests.
//
// Simplification (documented in DESIGN.md): the kernel infers one-way
// delay from TCP timestamps; this port uses the RTT minus the minimum RTT,
// which is the same signal in the round-driven simulation.
type LP struct {
	minOwd   float64 // seconds
	maxOwd   float64
	sowd     float64 // smoothed one-way delay
	haveOwd  bool
	lastBack time.Duration // last inference-driven backoff
}

var _ Algorithm = (*LP)(nil)

// NewLP returns a TCP-LP congestion avoidance component.
func NewLP() *LP { return &LP{} }

// Name implements Algorithm.
func (*LP) Name() string { return "LP" }

// Reset implements Algorithm.
func (l *LP) Reset(*Conn) {
	l.minOwd, l.maxOwd, l.sowd = 0, 0, 0
	l.haveOwd = false
	l.lastBack = -lpInference
}

// OnAck implements Algorithm.
func (l *LP) OnAck(c *Conn, _ int, rtt time.Duration) {
	if rtt > 0 && c.MinRTT > 0 {
		owd := secs(rtt - c.MinRTT)
		if owd < 0 {
			owd = 0
		}
		if !l.haveOwd {
			l.minOwd, l.maxOwd, l.sowd = owd, owd, owd
			l.haveOwd = true
		} else {
			if owd < l.minOwd {
				l.minOwd = owd
			}
			if owd > l.maxOwd {
				l.maxOwd = owd
			}
			l.sowd = (7*l.sowd + owd) / 8
		}
	}
	// Within the inference holddown the window is frozen (the kernel's
	// LP_WITHIN_INF state): no slow start, no additive increase.
	if c.Now-l.lastBack < lpInference {
		return
	}
	// Low-priority inference: any queueing beyond 15% of the observed
	// range means best-effort traffic is present; back off to one
	// packet and hold for the inference period.
	rangeOwd := l.maxOwd - l.minOwd
	if l.haveOwd && rangeOwd > 0 && l.sowd > l.minOwd+lpThresholdFrac*rangeOwd {
		c.Cwnd = 1
		l.lastBack = c.Now
		return
	}
	if slowStart(c) {
		return
	}
	renoIncrease(c)
}

// Ssthresh implements Algorithm: RENO halving.
func (*LP) Ssthresh(c *Conn) float64 { return clampSsthresh(c.Cwnd / 2) }

// OnTimeout implements Algorithm.
func (l *LP) OnTimeout(c *Conn) { l.lastBack = c.Now }
