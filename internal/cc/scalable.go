package cc

import "time"

// Scalable TCP parameters from Kelly (CCR 2003) and Linux tcp_scalable.c.
const (
	// stcpAICnt bounds the per-ACK increase: cwnd += 1/min(cwnd, 50),
	// i.e. multiplicative growth of 2% per RTT for large windows.
	stcpAICnt = 50.0
	// stcpBeta is the multiplicative decrease parameter (1 - 1/8).
	stcpBeta = 0.875
)

// STCP is Scalable TCP: exponential window growth (a constant 0.01 packets
// per ACK in the original design, 1/min(w,50) in the Linux port) and a
// multiplicative decrease parameter of 0.875.
type STCP struct{}

var _ Algorithm = (*STCP)(nil)

// NewSTCP returns a Scalable TCP congestion avoidance component.
func NewSTCP() *STCP { return &STCP{} }

// Name implements Algorithm.
func (*STCP) Name() string { return "STCP" }

// Reset implements Algorithm.
func (*STCP) Reset(*Conn) {}

// OnAck implements Algorithm.
func (*STCP) OnAck(c *Conn, _ int, _ time.Duration) {
	if slowStart(c) {
		return
	}
	cnt := c.Cwnd
	if cnt > stcpAICnt {
		cnt = stcpAICnt
	}
	aiIncrease(c, cnt)
}

// Ssthresh implements Algorithm.
func (*STCP) Ssthresh(c *Conn) float64 { return clampSsthresh(c.Cwnd * stcpBeta) }

// OnTimeout implements Algorithm.
func (*STCP) OnTimeout(*Conn) {}
