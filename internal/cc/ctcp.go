package cc

import (
	"math"
	"time"
)

// CTCPVersion selects which Windows Compound TCP build to emulate. The
// paper distinguishes CTCP1 (Windows Server 2003 / XP hotfix) from CTCP2
// (Windows Server 2008 / Vista / 7): CTCP2's window growth reacts to RTT
// changes after a timeout while CTCP1's does not.
type CTCPVersion int

const (
	// CTCPWindows2003 is the early CTCP of Windows Server 2003 and XP.
	CTCPWindows2003 CTCPVersion = iota + 1
	// CTCPWindows2008 is the CTCP of Windows Server 2008, Vista, and 7.
	CTCPWindows2008
)

// Compound TCP parameters from Tan, Song, Zhang, Sridharan (INFOCOM 2006).
const (
	ctcpAlpha = 0.125 // binomial increase coefficient
	ctcpBeta  = 0.5   // overall multiplicative decrease
	ctcpK     = 0.75  // binomial increase exponent
	ctcpGamma = 30.0  // queueing threshold, packets
	ctcpZeta  = 1.0   // decrease coefficient of the delay window
	// ctcpLowWindow is the window below which CTCP behaves exactly like
	// RENO; the paper observes "CTCP = RENO when their window sizes are
	// less than 41".
	ctcpLowWindow = 41.0
	// ctcp2003Tick models the coarse TCP clock of pre-Vista Windows:
	// RTT samples quantize to 500 ms ticks, which makes the delay-based
	// component insensitive to the paper's 0.8 s vs 1.0 s emulated RTTs.
	// This is the documented substitution that reproduces the observable
	// CTCP1/CTCP2 difference (DESIGN.md section 2); the true Server 2003
	// binary differences are unpublished.
	ctcp2003Tick = 500 * time.Millisecond
)

// CTCP is Compound TCP: a loss-based RENO window plus a delay-based window
// dwnd. The sending window is cwnd = reno + dwnd; dwnd grows binomially
// while the estimated bottleneck queue is below gamma and shrinks
// proportionally to the queue above it.
type CTCP struct {
	version CTCPVersion

	reno float64 // loss-based component
	dwnd float64 // delay-based component

	baseRTT   time.Duration // minimum (quantized) RTT observed
	roundRTT  time.Duration // minimum (quantized) RTT within this round
	lastRound int64
}

var _ Algorithm = (*CTCP)(nil)

// NewCTCP returns a Compound TCP component for the requested Windows build.
func NewCTCP(v CTCPVersion) *CTCP { return &CTCP{version: v} }

// Name implements Algorithm.
func (t *CTCP) Name() string {
	if t.version == CTCPWindows2003 {
		return "CTCP1"
	}
	return "CTCP2"
}

// Reset implements Algorithm.
func (t *CTCP) Reset(c *Conn) {
	t.reno = c.Cwnd
	t.dwnd = 0
	t.baseRTT = 0
	t.roundRTT = 0
	t.lastRound = c.Round
}

// quantize applies the version's RTT clock granularity.
func (t *CTCP) quantize(rtt time.Duration) time.Duration {
	if t.version != CTCPWindows2003 || rtt <= 0 {
		return rtt
	}
	ticks := (rtt + ctcp2003Tick - 1) / ctcp2003Tick
	return ticks * ctcp2003Tick
}

// OnAck implements Algorithm. The loss-based component follows RENO; the
// delay-based component is updated once per RTT round.
func (t *CTCP) OnAck(c *Conn, _ int, rtt time.Duration) {
	if rtt > 0 {
		q := t.quantize(rtt)
		if t.baseRTT == 0 || q < t.baseRTT {
			t.baseRTT = q
		}
		if t.roundRTT == 0 || q < t.roundRTT {
			t.roundRTT = q
		}
	}
	if c.Round != t.lastRound {
		t.endRound(c)
		t.lastRound = c.Round
	}
	if c.InSlowStart() {
		c.Cwnd++
		t.reno++
		return
	}
	// RENO component: one packet per sending window per RTT.
	t.reno += 1 / c.Cwnd
	c.Cwnd = t.reno + t.dwnd
}

// endRound applies the per-RTT delay window update.
func (t *CTCP) endRound(c *Conn) {
	defer func() { t.roundRTT = 0 }()
	if c.InSlowStart() || t.roundRTT == 0 || t.baseRTT == 0 {
		return
	}
	win := c.Cwnd
	if win < ctcpLowWindow {
		return // RENO region
	}
	// diff = (expected - actual) * baseRTT = win * (1 - base/rtt):
	// the estimated number of packets queued at the bottleneck.
	diff := win * (1 - secs(t.baseRTT)/secs(t.roundRTT))
	if diff < ctcpGamma {
		t.dwnd += math.Max(ctcpAlpha*math.Pow(win, ctcpK)-1, 0)
	} else {
		t.dwnd = math.Max(t.dwnd-ctcpZeta*diff, 0)
	}
	c.Cwnd = t.reno + t.dwnd
}

// Ssthresh implements Algorithm: the compound window halves overall.
func (t *CTCP) Ssthresh(c *Conn) float64 {
	win := c.Cwnd
	// On loss the RENO part halves and dwnd absorbs the rest of the
	// (1-beta) target: dwnd = win*(1-beta) - reno/2, floored at zero.
	t.dwnd = math.Max(win*(1-ctcpBeta)-t.reno/2, 0)
	t.reno /= 2
	return clampSsthresh(win * ctcpBeta)
}

// OnTimeout implements Algorithm: both components collapse; growth restarts
// from one packet of loss-based window.
func (t *CTCP) OnTimeout(c *Conn) {
	t.reno = c.Cwnd
	t.dwnd = 0
	t.roundRTT = 0
}
