package cc

import (
	"time"
)

// H-TCP parameters from Shorten and Leith (PFLDNet 2004) and Linux
// tcp_htcp.c.
const (
	htcpBetaMin = 0.5
	htcpBetaMax = 0.8
	// htcpDeltaL is the low-speed regime duration: for the first second
	// after a congestion event H-TCP behaves exactly like RENO.
	htcpDeltaL = 1.0 // seconds
)

// HTCP is Hamilton TCP: the additive increase grows quadratically with the
// elapsed time since the last congestion event, and the multiplicative
// decrease adapts to the ratio of the minimum and maximum RTT (between 0.5
// and 0.8).
type HTCP struct {
	beta     float64
	lastCong time.Duration // time of the last congestion event
	// epochMinRTT/epochMaxRTT track RTT extremes since the last backoff,
	// used for the adaptive beta.
	epochMinRTT time.Duration
	epochMaxRTT time.Duration
	// waitCAEntry restarts the alpha clock when congestion avoidance is
	// (re-)entered after slow start, mirroring the kernel's last_cong
	// bookkeeping when the connection returns to the Open state.
	waitCAEntry bool
}

var _ Algorithm = (*HTCP)(nil)

// NewHTCP returns an H-TCP congestion avoidance component.
func NewHTCP() *HTCP { return &HTCP{beta: htcpBetaMin} }

// Name implements Algorithm.
func (*HTCP) Name() string { return "HTCP" }

// Reset implements Algorithm.
func (h *HTCP) Reset(c *Conn) {
	h.beta = htcpBetaMin
	h.lastCong = c.Now
	h.epochMinRTT = 0
	h.epochMaxRTT = 0
	h.waitCAEntry = false
}

// alpha returns the H-TCP additive increase factor for the current elapsed
// time since the last congestion event, scaled by 2*(1-beta) as in the
// kernel so throughput matches the unscaled design targets.
func (h *HTCP) alpha(c *Conn) float64 {
	delta := secs(c.Now - h.lastCong)
	a := 1.0
	if delta > htcpDeltaL {
		d := delta - htcpDeltaL
		a = 1 + 10*d + 0.25*d*d
	}
	a *= 2 * (1 - h.beta)
	if a < 1 {
		a = 1
	}
	return a
}

// OnAck implements Algorithm.
func (h *HTCP) OnAck(c *Conn, _ int, rtt time.Duration) {
	if rtt > 0 {
		if h.epochMinRTT == 0 || rtt < h.epochMinRTT {
			h.epochMinRTT = rtt
		}
		if rtt > h.epochMaxRTT {
			h.epochMaxRTT = rtt
		}
	}
	if slowStart(c) {
		return
	}
	if h.waitCAEntry {
		// First congestion avoidance ACK after recovery: restart the
		// alpha clock so growth ramps up from RENO speed.
		h.lastCong = c.Now
		h.waitCAEntry = false
	}
	aiIncrease(c, c.Cwnd/h.alpha(c))
}

// Ssthresh implements Algorithm: beta adapts to minRTT/maxRTT within
// [0.5, 0.8], then the window is scaled by it.
func (h *HTCP) Ssthresh(c *Conn) float64 {
	if h.epochMinRTT > 0 && h.epochMaxRTT > 0 {
		ratio := secs(h.epochMinRTT) / secs(h.epochMaxRTT)
		switch {
		case ratio < htcpBetaMin:
			h.beta = htcpBetaMin
		case ratio > htcpBetaMax:
			h.beta = htcpBetaMax
		default:
			h.beta = ratio
		}
	} else {
		h.beta = htcpBetaMin
	}
	h.lastCong = c.Now
	h.epochMinRTT = 0
	h.epochMaxRTT = 0
	return clampSsthresh(c.Cwnd * h.beta)
}

// OnTimeout implements Algorithm: the alpha clock restarts when congestion
// avoidance resumes after the post-timeout slow start.
func (h *HTCP) OnTimeout(*Conn) { h.waitCAEntry = true }
