package cc

import "time"

// Reno is the traditional AIMD congestion avoidance algorithm (Jacobson
// 1988, RFC 5681): additive increase of one packet per RTT and a
// multiplicative decrease parameter of 0.5. The paper uses RENO to refer to
// the congestion avoidance component shared by Reno, NewReno and SACK.
type Reno struct{}

var _ Algorithm = (*Reno)(nil)

// NewReno returns a RENO congestion avoidance component.
func NewReno() *Reno { return &Reno{} }

// Name implements Algorithm.
func (*Reno) Name() string { return "RENO" }

// Reset implements Algorithm.
func (*Reno) Reset(*Conn) {}

// OnAck implements Algorithm: slow start below ssthresh, then one packet
// per window per RTT.
func (*Reno) OnAck(c *Conn, _ int, _ time.Duration) {
	if slowStart(c) {
		return
	}
	renoIncrease(c)
}

// Ssthresh implements Algorithm: half the window (beta = 0.5).
func (*Reno) Ssthresh(c *Conn) float64 { return clampSsthresh(c.Cwnd / 2) }

// OnTimeout implements Algorithm.
func (*Reno) OnTimeout(*Conn) {}
