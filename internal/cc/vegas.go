package cc

import (
	"math"
	"time"
)

// Vegas parameters from Brakmo, O'Malley, Peterson (SIGCOMM 1994) and Linux
// tcp_vegas.c.
const (
	vegasAlpha = 2.0 // grow when fewer than alpha packets are queued
	vegasBeta  = 4.0 // shrink when more than beta packets are queued
	vegasGamma = 1.0 // leave slow start when gamma packets are queued
)

// Vegas is TCP Vegas, the classic delay-based algorithm: it estimates the
// number of its own packets queued at the bottleneck from the difference
// between expected and actual throughput and holds the window between alpha
// and beta queued packets.
type Vegas struct {
	baseRTT   time.Duration // minimum RTT over the connection
	roundRTT  time.Duration // minimum RTT within the current round
	cntRTT    int
	lastRound int64
}

var _ Algorithm = (*Vegas)(nil)

// NewVegas returns a Vegas congestion avoidance component.
func NewVegas() *Vegas { return &Vegas{} }

// Name implements Algorithm.
func (*Vegas) Name() string { return "VEGAS" }

// Reset implements Algorithm.
func (v *Vegas) Reset(c *Conn) {
	v.baseRTT = 0
	v.roundRTT = 0
	v.cntRTT = 0
	v.lastRound = c.Round
}

// OnAck implements Algorithm. Window adjustments happen once per RTT round;
// within a round Vegas slow starts normally below ssthresh.
func (v *Vegas) OnAck(c *Conn, _ int, rtt time.Duration) {
	if rtt > 0 {
		if v.baseRTT == 0 || rtt < v.baseRTT {
			v.baseRTT = rtt
		}
		if v.roundRTT == 0 || rtt < v.roundRTT {
			v.roundRTT = rtt
		}
		v.cntRTT++
	}
	if c.Round != v.lastRound {
		v.endRound(c)
		v.lastRound = c.Round
	}
	if c.InSlowStart() {
		c.Cwnd++
	}
	// In congestion avoidance all growth decisions are per-round.
}

// endRound applies the per-RTT Vegas window update.
func (v *Vegas) endRound(c *Conn) {
	cnt := v.cntRTT
	rtt := v.roundRTT
	v.cntRTT = 0
	v.roundRTT = 0
	if cnt <= 2 || rtt == 0 || v.baseRTT == 0 {
		// Too few samples: fall back to RENO behaviour for the round
		// (the kernel does the same).
		if !c.InSlowStart() {
			c.Cwnd += 1 // one packet per RTT
		}
		return
	}
	// diff: estimated packets queued at the bottleneck.
	diff := c.Cwnd * (secs(rtt) - secs(v.baseRTT)) / secs(v.baseRTT)
	if c.InSlowStart() {
		if diff > vegasGamma {
			// Leaving slow start: retreat to the target window.
			target := c.Cwnd * secs(v.baseRTT) / secs(rtt)
			c.Cwnd = math.Min(c.Cwnd, target+1)
			c.Ssthresh = math.Min(c.Ssthresh, math.Max(c.Cwnd-1, minCwnd))
		}
		return
	}
	switch {
	case diff > vegasBeta:
		c.Cwnd--
	case diff < vegasAlpha:
		c.Cwnd++
	}
	if c.Cwnd < minCwnd {
		c.Cwnd = minCwnd
	}
}

// Ssthresh implements Algorithm: Vegas does not override the RENO halving.
func (*Vegas) Ssthresh(c *Conn) float64 { return clampSsthresh(c.Cwnd / 2) }

// OnTimeout implements Algorithm: round accounting restarts; the base RTT
// estimate survives (it is a connection-lifetime minimum in the kernel).
func (v *Vegas) OnTimeout(*Conn) {
	v.roundRTT = 0
	v.cntRTT = 0
}
