package pcapgen

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/pcap"
)

// TestDeterministic: identical specs must produce byte-identical captures
// and identical direct results.
func TestDeterministic(t *testing.T) {
	specs := []ServerSpec{{Algorithm: "CUBIC2", Seed: 5}, {Algorithm: "RENO", Seed: 6}}
	var a, b bytes.Buffer
	resA, err := Generate(&a, specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := Generate(&b, specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same specs produced different capture bytes")
	}
	for i := range resA {
		if resA[i].Valid != resB[i].Valid || resA[i].Wmax != resB[i].Wmax {
			t.Fatalf("direct results diverged: %+v vs %+v", resA[i], resB[i])
		}
	}
}

// TestCaptureShape decodes a generated capture and checks the wire-level
// structure: per-spec addressing, handshakes with the negotiated MSS,
// monotonic timestamps, and snaplen truncation with intact lengths.
func TestCaptureShape(t *testing.T) {
	var buf bytes.Buffer
	results, err := Generate(&buf, []ServerSpec{{Algorithm: "BIC", Seed: 9}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Valid {
		t.Fatalf("direct gathering invalid: %s", results[0].Reason)
	}
	r, err := pcap.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var pkt pcap.Packet
	var syns, dataPkts int
	lastTime := int64(0)
	conns := map[uint16]bool{}
	for {
		err := r.Next(&pkt)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ts := pkt.Time.UnixNano(); ts < lastTime {
			t.Fatalf("timestamps went backwards at %v", pkt.Time)
		} else {
			lastTime = ts
		}
		if pkt.SYN() && !pkt.ACK() {
			syns++
			conns[pkt.SrcPort] = true
			if !pkt.Opt.HasMSS || int(pkt.Opt.MSS) != results[0].MSS {
				t.Fatalf("SYN mss option %d, negotiated %d", pkt.Opt.MSS, results[0].MSS)
			}
		}
		if pkt.PayloadLen > 0 && pkt.SrcPort == 80 {
			dataPkts++
			if pkt.PayloadLen != results[0].MSS {
				t.Fatalf("data payload %d, mss %d", pkt.PayloadLen, results[0].MSS)
			}
			if pkt.CapturedLen >= pkt.OrigLen {
				t.Fatal("data frames should be snaplen-truncated by default")
			}
		}
	}
	// One ladder walk at the default config: environments A and B.
	if syns != 2 || len(conns) != 2 {
		t.Fatalf("saw %d SYNs over %d connections, want 2 and 2", syns, len(conns))
	}
	if dataPkts == 0 {
		t.Fatal("no server data packets decoded")
	}
}

// TestGenerateErrors covers the spec validation paths.
func TestGenerateErrors(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Generate(&buf, nil, Options{}); err == nil {
		t.Fatal("empty spec list must error")
	}
	if _, err := Generate(&buf, []ServerSpec{{}}, Options{}); err == nil {
		t.Fatal("spec without algorithm must error")
	}
	if _, err := Generate(&buf, []ServerSpec{{Algorithm: "RENO"}}, Options{Format: "nope"}); err == nil {
		t.Fatal("unknown format must error")
	}
}
