// Package pcapgen synthesizes packet captures from the simulated probe
// pipeline: it attaches a wire-level tap (probe.Tap) to a prober, runs the
// ordinary ladder gathering against simulated Web servers, and writes
// every observed segment as an Ethernet/IPv4/TCP frame into a pcap or
// pcapng file. The captures are deterministic for a fixed spec list, and
// Generate also returns the direct gathering results of the very same
// runs -- which is what makes every decoder and flow-reconstruction
// feature round-trip testable: simulate -> write pcap -> ingest ->
// classify must agree with the direct simulated path.
//
// The synthetic capture is taken at the server's vantage point: data
// segments appear when they leave the server, ACKs when they arrive, and
// each gathering connection gets a full handshake (SYN carrying the
// negotiated MSS, timestamps, SACK-permitted), an HTTP-request-sized
// client payload, and a closing FIN exchange. Payload bytes are zeros and
// truncated at the configured snap length, as production header-only
// captures are.
package pcapgen

import (
	"fmt"
	"io"
	"net/netip"
	"time"

	"repro/internal/netem"
	"repro/internal/pcap"
	"repro/internal/probe"
	"repro/internal/tcpsim"
	"repro/internal/websim"
	"repro/internal/xrand"
)

// ServerSpec is one simulated server to probe into the capture: the
// resulting file contains every connection of the ladder walk (normally
// the environment A and B gatherings).
type ServerSpec struct {
	// Algorithm is the server's congestion avoidance algorithm (ignored
	// when Server is set).
	Algorithm string
	// Server overrides the default cooperative testbed server.
	Server *websim.Server
	// Cond is the network condition (zero value: lossless testbed path).
	Cond netem.Condition
	// Seed drives the gathering deterministically (0 is normalized to 1).
	Seed int64
}

// Options tunes capture generation. The zero value is usable.
type Options struct {
	// Format is "pcap" (default) or "pcapng".
	Format string
	// SnapLen truncates captured frames; 0 means DefaultSnapLen, which
	// keeps headers and drops payload bytes (they are zeros anyway).
	SnapLen uint32
	// BaseTime is the capture epoch; zero means a fixed deterministic
	// epoch so identical specs produce byte-identical captures.
	BaseTime time.Time
	// Probe customizes the gathering (zero value: paper defaults).
	Probe probe.Config
}

// DefaultSnapLen keeps link/IP/TCP headers with all options and cuts
// payloads, like a production header-only capture.
const DefaultSnapLen = 96

// defaultBaseTime is an arbitrary fixed epoch (2024-01-01T00:00:00Z).
var defaultBaseTime = time.Unix(1704067200, 0).UTC()

// specGap separates consecutive specs' flows on the capture clock.
const specGap = time.Hour

// requestBytes is the synthetic HTTP request payload size.
const requestBytes = 73

// Generate probes every spec through a tapped prober, writes the observed
// packets to w, and returns the direct gathering result of each spec --
// the ground truth the passive pipeline is measured against.
func Generate(w io.Writer, specs []ServerSpec, opts Options) ([]*probe.Result, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("pcapgen: no server specs")
	}
	if opts.SnapLen == 0 {
		opts.SnapLen = DefaultSnapLen
	}
	if opts.BaseTime.IsZero() {
		opts.BaseTime = defaultBaseTime
	}
	pw, err := pcap.NewPacketWriter(w, opts.Format, pcap.LinkEthernet, opts.SnapLen)
	if err != nil {
		return nil, err
	}
	results := make([]*probe.Result, len(specs))
	for i, spec := range specs {
		server := spec.Server
		if server == nil {
			if spec.Algorithm == "" {
				return nil, fmt.Errorf("pcapgen: spec %d names no algorithm and no server", i)
			}
			server = websim.Testbed(spec.Algorithm)
		}
		seed := spec.Seed
		if seed == 0 {
			seed = 1
		}
		tap := &captureTap{
			w:          pw,
			base:       opts.BaseTime.Add(time.Duration(i) * specGap),
			client:     netip.AddrFrom4([4]byte{10, 1, byte(i >> 8), byte(i&0xff) + 1}),
			server:     netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i&0xff) + 1}),
			serverPort: 80,
			nextPort:   40001,
		}
		p := probe.New(opts.Probe, spec.Cond, xrand.New(seed))
		p.SetTap(tap)
		results[i] = p.Gather(server)
		if tap.err != nil {
			return nil, fmt.Errorf("pcapgen: writing capture for spec %d: %w", i, tap.err)
		}
	}
	return results, nil
}

// captureTap renders probe.Tap events as TCP frames. One tap serves all
// connections of one spec's ladder walk.
type captureTap struct {
	w          pcap.PacketWriter
	base       time.Time
	client     netip.Addr
	server     netip.Addr
	serverPort uint16
	nextPort   uint16
	err        error

	// Per-connection state.
	open       bool
	clientPort uint16
	mss        int
	// shift delays all session events past the handshake: the server
	// sends its first burst one RTT after the SYN-ACK (when the request
	// arrives), which the session clock does not model.
	shift     time.Duration
	clientISN uint32
	serverISN uint32
	// last is the time of the previously written packet; emissions are
	// spaced at least one microsecond apart so capture order, timestamp
	// order, and event order all agree.
	last     time.Duration
	tsClient uint32
	tsServer uint32
	frame    []byte
}

// Connect opens a new connection: handshake plus request.
func (c *captureTap) Connect(now time.Duration, env probe.Environment, wmax, mss int) {
	c.open = true
	c.clientPort = c.nextPort
	c.nextPort++
	c.mss = mss
	rtt := env.PreRTT(1)
	c.shift = rtt + time.Millisecond
	// Deterministic, connection-distinct ISNs.
	c.clientISN = 1_000_000 + uint32(c.clientPort)*2048
	c.serverISN = 5_000_000 + uint32(c.clientPort)*4096
	c.last = now - time.Microsecond

	// SYN (the client announces the MSS the prober negotiated), SYN-ACK,
	// then one RTT later the handshake ACK and the pipelined request.
	c.emit(now, true, &pcap.FrameSpec{
		Seq: c.clientISN, Flags: pcap.FlagSYN, Window: 65535,
		Opt: pcap.TCPOptions{MSS: uint16(mss), HasMSS: true, SackPermitted: true,
			HasWScale: true, WScale: 9, HasTS: true, TSVal: c.tsval(now), TSEcr: 0},
	})
	c.emit(now, false, &pcap.FrameSpec{
		Seq: c.serverISN, Ack: c.clientISN + 1, Flags: pcap.FlagSYN | pcap.FlagACK, Window: 65535,
		Opt: pcap.TCPOptions{MSS: uint16(mss), HasMSS: true, SackPermitted: true,
			HasWScale: true, WScale: 9, HasTS: true, TSVal: c.tsval(now), TSEcr: c.tsClient},
	})
	ackAt := now + rtt
	c.emit(ackAt, true, &pcap.FrameSpec{
		Seq: c.clientISN + 1, Ack: c.serverISN + 1, Flags: pcap.FlagACK, Window: 65535,
		Opt: pcap.TCPOptions{HasTS: true, TSVal: c.tsval(ackAt), TSEcr: c.tsServer},
	})
	c.emit(ackAt, true, &pcap.FrameSpec{
		Seq: c.clientISN + 1, Ack: c.serverISN + 1, Flags: pcap.FlagACK | pcap.FlagPSH,
		Window: 65535, PayloadLen: requestBytes,
		Opt: pcap.TCPOptions{HasTS: true, TSVal: c.tsval(ackAt), TSEcr: c.tsServer},
	})
}

// Data renders one server data segment.
func (c *captureTap) Data(now time.Duration, seg tcpsim.Segment) {
	if !c.open {
		return
	}
	at := now + c.shift
	flags := uint8(pcap.FlagACK)
	if seg.Retransmit {
		flags |= pcap.FlagPSH
	}
	c.emit(at, false, &pcap.FrameSpec{
		Seq:   c.serverISN + 1 + uint32(seg.ID)*uint32(c.mss),
		Ack:   c.clientISN + 1 + requestBytes,
		Flags: flags, Window: 65535, PayloadLen: c.mss,
		Opt: pcap.TCPOptions{HasTS: true, TSVal: c.tsval(at), TSEcr: c.tsClient},
	})
}

// Ack renders one cumulative client ACK arriving at the server.
func (c *captureTap) Ack(now time.Duration, ackSeg int64) {
	if !c.open {
		return
	}
	at := now + c.shift
	c.emit(at, true, &pcap.FrameSpec{
		Seq:   c.clientISN + 1 + requestBytes,
		Ack:   c.serverISN + 1 + uint32(ackSeg)*uint32(c.mss),
		Flags: pcap.FlagACK, Window: 65535,
		Opt: pcap.TCPOptions{HasTS: true, TSVal: c.tsval(at), TSEcr: c.tsServer},
	})
}

// Close ends the connection with a FIN exchange.
func (c *captureTap) Close(now time.Duration) {
	if !c.open {
		return
	}
	at := now + c.shift
	c.emit(at, true, &pcap.FrameSpec{
		Seq: c.clientISN + 1 + requestBytes, Ack: c.serverISN + 1,
		Flags: pcap.FlagFIN | pcap.FlagACK, Window: 65535,
		Opt: pcap.TCPOptions{HasTS: true, TSVal: c.tsval(at), TSEcr: c.tsServer},
	})
	c.emit(at, false, &pcap.FrameSpec{
		Seq: c.serverISN + 1, Ack: c.clientISN + 2 + requestBytes,
		Flags: pcap.FlagFIN | pcap.FlagACK, Window: 65535,
		Opt: pcap.TCPOptions{HasTS: true, TSVal: c.tsval(at), TSEcr: c.tsClient},
	})
	c.open = false
}

// tsval is the RFC 7323 timestamp clock: milliseconds of emulated time.
func (c *captureTap) tsval(at time.Duration) uint32 {
	return uint32(at / time.Millisecond)
}

// emit writes one frame, from the client when fromClient is set. Session
// events may share an emulated instant; emission bumps each packet at
// least one microsecond past the previous so file order equals time
// order.
func (c *captureTap) emit(at time.Duration, fromClient bool, spec *pcap.FrameSpec) {
	if c.err != nil {
		return
	}
	if at <= c.last {
		at = c.last + time.Microsecond
	}
	c.last = at
	if fromClient {
		spec.Src = netip.AddrPortFrom(c.client, c.clientPort)
		spec.Dst = netip.AddrPortFrom(c.server, c.serverPort)
		c.tsClient = spec.Opt.TSVal
	} else {
		spec.Src = netip.AddrPortFrom(c.server, c.serverPort)
		spec.Dst = netip.AddrPortFrom(c.client, c.clientPort)
		c.tsServer = spec.Opt.TSVal
	}
	c.frame = pcap.AppendFrame(c.frame[:0], spec)
	c.err = c.w.WritePacket(c.base.Add(at), len(c.frame), c.frame)
}
