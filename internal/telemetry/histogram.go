package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumHistBuckets is the fixed bucket count of every Histogram: bucket i
// covers durations in (2^(i-1), 2^i] microseconds, so the histogram spans
// 1µs (bucket 0 holds everything at or below it) to ~2.3 hours (the last
// bucket is the overflow). Log-spaced powers of two keep the bucket index
// a single bits.Len64 -- no search, no float math -- at a resolution
// (factor-of-two) that is plenty to tell a 100µs identification from a
// 10ms one.
const NumHistBuckets = 34

// BucketBound returns bucket i's inclusive upper bound. The last bucket
// has no upper bound (+Inf in the Prometheus exposition).
func BucketBound(i int) time.Duration {
	return time.Duration(1<<uint(i)) * time.Microsecond
}

// bucketIndex maps a duration to the smallest bucket whose upper bound
// holds it: bits.Len64((d-1)/1µs) is exactly min{i : d <= 2^i µs} for
// positive d (the -1 keeps exact powers of two in their own bucket).
func bucketIndex(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	i := bits.Len64(uint64((d - 1) / time.Microsecond))
	if i >= NumHistBuckets {
		return NumHistBuckets - 1
	}
	return i
}

// Histogram is a fixed-bucket log-spaced latency histogram with atomic
// buckets: Observe is three atomic adds on a preallocated array -- no
// locks, no allocation -- safe for any number of concurrent writers. The
// zero value is ready to use.
type Histogram struct {
	count Counter
	sum   Counter // nanoseconds
	// buckets are plain (unpadded) atomics: one Observe touches a single
	// bucket, and distinct latencies scatter across buckets, so padding
	// 34 slots per histogram buys little for 8x the footprint.
	buckets [NumHistBuckets]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(d)].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
}

// Snapshot copies the histogram's current state. Under concurrent
// observations the snapshot is not a single atomic cut: a racing Observe
// may have landed its bucket but not yet its count (or vice versa), so
// Count and the bucket total can differ by in-flight observations --
// bounded skew that vanishes at rest. Snapshots merge associatively.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sum.Load())
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram: plain values,
// safe to marshal, compare, and merge.
type HistogramSnapshot struct {
	// Count and Sum aggregate every observation.
	Count int64         `json:"count"`
	Sum   time.Duration `json:"sum"`
	// Buckets[i] counts observations in (BucketBound(i-1), BucketBound(i)]
	// (non-cumulative; the Prometheus writer accumulates).
	Buckets [NumHistBuckets]int64 `json:"buckets"`
}

// Merge adds o into s. Merging is commutative and associative, so
// per-worker snapshots aggregate into the same totals in any grouping.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the average observed duration (0 when empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) by locating the bucket
// holding the q*Count-th observation and interpolating linearly within
// it (observations are assumed uniform inside a bucket). Log-spaced
// buckets bound the error at the bucket's factor-of-two width; the
// interpolation removes the systematic "always answer the upper edge"
// bias of a pure bucket lookup. Returns 0 when empty.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	if rank > float64(s.Count) {
		rank = float64(s.Count)
	}
	var seen int64
	for i, b := range s.Buckets {
		if b == 0 {
			seen += b
			continue
		}
		if float64(seen+b) >= rank {
			// Bucket i spans (lo, hi]; place the rank-th observation
			// proportionally among the bucket's b observations.
			var lo time.Duration
			if i > 0 {
				lo = BucketBound(i - 1)
			}
			hi := BucketBound(i)
			frac := (rank - float64(seen)) / float64(b)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + time.Duration(frac*float64(hi-lo))
		}
		seen += b
	}
	return BucketBound(NumHistBuckets - 1)
}
