package telemetry

import "time"

// Stage enumerates the pipeline stages an identification passes through.
// The active path is queue wait -> gather -> feature -> classify (cache
// is the service-side lookup bracketing it); the passive (pcap) path maps
// decode/reassembly onto StageGather so both pipelines share one
// histogram set and one wire format.
type Stage uint8

// Pipeline stages, in pipeline order.
const (
	// StageQueueWait is time spent waiting for an execution slot: the
	// sync path's probe semaphore, or a batch job's time in the bounded
	// queue.
	StageQueueWait Stage = iota
	// StageGather is trace gathering (active: the emulated probe
	// session; passive: capture decode + flow reassembly).
	StageGather
	// StageFeature is validity checking, special-shape detection, and
	// feature-vector extraction.
	StageFeature
	// StageClassify is model inference (a block-inference sample is
	// charged its share of the block's one batched call).
	StageClassify
	// StageCache is the service's result-cache lookup.
	StageCache
	// NumStages sizes per-stage arrays.
	NumStages int = iota
)

// stageNames are the wire/exposition labels, indexed by Stage.
var stageNames = [NumStages]string{"queue_wait", "gather", "feature", "classify", "cache"}

// String returns the stage's snake_case label.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// StageTimings is one identification's span breakdown: how long each
// stage took, zero for stages that did not run. It is a plain value --
// recording into it never allocates, and copying it through result
// structs is five word moves.
type StageTimings [NumStages]time.Duration

// Total sums the recorded spans.
func (t *StageTimings) Total() time.Duration {
	var sum time.Duration
	for _, d := range t {
		sum += d
	}
	return sum
}

// Zero reports whether nothing was recorded (no stage span stamped).
func (t *StageTimings) Zero() bool {
	for _, d := range t {
		if d != 0 {
			return false
		}
	}
	return true
}

// Pipeline aggregates stage spans into one latency histogram per stage.
// Safe for concurrent use; the zero value is ready.
type Pipeline struct {
	hists [NumStages]Histogram
}

// Observe records one stage span.
func (p *Pipeline) Observe(s Stage, d time.Duration) {
	p.hists[s].Observe(d)
}

// ObserveTimings records every non-zero span of one identification.
func (p *Pipeline) ObserveTimings(t *StageTimings) {
	for s := range t {
		if t[s] != 0 {
			p.hists[s].Observe(t[s])
		}
	}
}

// Stage exposes one stage's histogram (for snapshots and exposition).
func (p *Pipeline) Stage(s Stage) *Histogram { return &p.hists[s] }

// Snapshot copies every stage histogram, indexed by Stage.
func (p *Pipeline) Snapshot() [NumStages]HistogramSnapshot {
	var out [NumStages]HistogramSnapshot
	for i := range p.hists {
		out[i] = p.hists[i].Snapshot()
	}
	return out
}

// SpanClock stamps consecutive stage boundaries into a StageTimings with
// one monotonic clock read per boundary: Start once, then Lap at the end
// of each stage. The zero value is inert (Lap on an unstarted clock
// records nothing), which is how disabled telemetry stays free.
type SpanClock struct {
	last time.Time
}

// Start arms the clock at the beginning of a stage sequence.
func (c *SpanClock) Start() { c.last = time.Now() }

// StartAt arms the clock at a caller-chosen instant, for callers that
// already read the clock (to anchor a trace) and must not pay a second
// read.
func (c *SpanClock) StartAt(t time.Time) { c.last = t }

// Lap records the span since the previous Start/Lap under stage s and
// re-arms for the next stage. On an unarmed clock it is a no-op.
func (c *SpanClock) Lap(t *StageTimings, s Stage) {
	if c.last.IsZero() {
		return
	}
	now := time.Now()
	t[s] = now.Sub(c.last)
	c.last = now
}
