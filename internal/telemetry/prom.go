package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Prometheus text exposition (version 0.0.4) writers. The service's
// GET /metrics composes these into its scrape body; they are plain
// formatting helpers with no registry -- the caller owns metric naming
// and snapshot consistency.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromWriter accumulates one exposition body. Families must be written
// as a unit (HELP/TYPE then samples), which the Write* helpers enforce.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// header emits the HELP/TYPE preamble of one metric family.
func (p *PromWriter) header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Header writes one family's HELP/TYPE preamble explicitly, for callers
// emitting a labelled histogram vector via HistogramSamples.
func (p *PromWriter) Header(name, help, typ string) { p.header(name, help, typ) }

// labelString renders a label set as {k="v",...}, keys sorted for a
// deterministic exposition (empty map renders empty).
func labelString(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// Counter writes one counter family with a single unlabelled sample.
func (p *PromWriter) Counter(name, help string, v int64) {
	p.header(name, help, "counter")
	p.printf("%s %d\n", name, v)
}

// FloatCounter writes one counter family whose sample is a monotonic
// float total (e.g. accumulated seconds).
func (p *PromWriter) FloatCounter(name, help string, v float64) {
	p.header(name, help, "counter")
	p.printf("%s %s\n", name, formatFloat(v))
}

// CounterVec writes one counter family with one sample per label set.
// samples maps the rendered label value (for the given label name) to the
// count; keys are emitted sorted.
func (p *PromWriter) CounterVec(name, help, label string, samples map[string]int64) {
	p.header(name, help, "counter")
	keys := make([]string, 0, len(samples))
	for k := range samples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p.printf("%s{%s=%q} %d\n", name, label, escapeLabel(k), samples[k])
	}
}

// Gauge writes one gauge family with a single unlabelled sample.
func (p *PromWriter) Gauge(name, help string, v float64) {
	p.header(name, help, "gauge")
	p.printf("%s %s\n", name, formatFloat(v))
}

// Histogram writes one histogram family in seconds: cumulative le
// buckets, +Inf, _sum, and _count, with the optional shared label set on
// every sample.
func (p *PromWriter) Histogram(name, help string, labels map[string]string, s HistogramSnapshot) {
	p.header(name, help, "histogram")
	p.HistogramSamples(name, labels, s)
}

// HistogramSamples writes the samples of one histogram series without a
// family header, so several label sets share one HELP/TYPE preamble.
func (p *PromWriter) HistogramSamples(name string, labels map[string]string, s HistogramSnapshot) {
	ls := labelString(labels)
	bucketLabels := func(le string) string {
		if ls == "" {
			return `{le="` + le + `"}`
		}
		return ls[:len(ls)-1] + `,le="` + le + `"}`
	}
	var cum int64
	for i := 0; i < NumHistBuckets-1; i++ {
		cum += s.Buckets[i]
		p.printf("%s_bucket%s %d\n", name, bucketLabels(formatFloat(BucketBound(i).Seconds())), cum)
	}
	cum += s.Buckets[NumHistBuckets-1]
	p.printf("%s_bucket%s %d\n", name, bucketLabels("+Inf"), cum)
	p.printf("%s_sum%s %s\n", name, ls, formatFloat(s.Sum.Seconds()))
	p.printf("%s_count%s %d\n", name, ls, s.Count)
}

// CountHistogram writes one small-integer histogram family: cumulative le
// buckets at the exact values 0..NumCountBuckets-2, +Inf for the overflow,
// then _sum and _count. Values are plain counts (not seconds).
func (p *PromWriter) CountHistogram(name, help string, labels map[string]string, s CountHistSnapshot) {
	p.header(name, help, "histogram")
	ls := labelString(labels)
	bucketLabels := func(le string) string {
		if ls == "" {
			return `{le="` + le + `"}`
		}
		return ls[:len(ls)-1] + `,le="` + le + `"}`
	}
	var cum int64
	for i := 0; i < NumCountBuckets-1; i++ {
		cum += s.Buckets[i]
		p.printf("%s_bucket%s %d\n", name, bucketLabels(strconv.Itoa(i)), cum)
	}
	cum += s.Buckets[NumCountBuckets-1]
	p.printf("%s_bucket%s %d\n", name, bucketLabels("+Inf"), cum)
	p.printf("%s_sum%s %d\n", name, ls, s.Sum)
	p.printf("%s_count%s %d\n", name, ls, s.Count)
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Seconds converts a duration to float seconds (exposition convention).
func Seconds(d time.Duration) float64 { return d.Seconds() }
