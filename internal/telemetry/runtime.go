package telemetry

import (
	"math"
	"runtime/metrics"
	"time"
)

// RuntimeStats is a point-in-time read of the Go runtime's own health
// signals, surfaced next to the service counters so a latency spike can
// be attributed to GC pressure or scheduler backlog without a second
// tool. Quantiles come from the runtime's cumulative float64 histograms
// (process lifetime, not windowed).
type RuntimeStats struct {
	Goroutines        int64   `json:"goroutines"`
	HeapBytes         int64   `json:"heap_bytes"`
	GCCycles          int64   `json:"gc_cycles"`
	GCPauseP50Us      float64 `json:"gc_pause_p50_us"`
	GCPauseP99Us      float64 `json:"gc_pause_p99_us"`
	SchedLatencyP50Us float64 `json:"sched_latency_p50_us"`
	SchedLatencyP99Us float64 `json:"sched_latency_p99_us"`
}

// runtimeSamples are the runtime/metrics names ReadRuntimeStats reads;
// fixed set, sampled on demand (snapshot/scrape time) so there is no
// background sampler goroutine to manage.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// ReadRuntimeStats samples the runtime metrics now.
func ReadRuntimeStats() RuntimeStats {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	metrics.Read(samples)
	var rs RuntimeStats
	for _, s := range samples {
		switch s.Name {
		case "/sched/goroutines:goroutines":
			if s.Value.Kind() == metrics.KindUint64 {
				rs.Goroutines = int64(s.Value.Uint64())
			}
		case "/memory/classes/heap/objects:bytes":
			if s.Value.Kind() == metrics.KindUint64 {
				rs.HeapBytes = int64(s.Value.Uint64())
			}
		case "/gc/cycles/total:gc-cycles":
			if s.Value.Kind() == metrics.KindUint64 {
				rs.GCCycles = int64(s.Value.Uint64())
			}
		case "/gc/pauses:seconds":
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				h := s.Value.Float64Histogram()
				rs.GCPauseP50Us = float64HistQuantile(h, 0.5) * usPerSec
				rs.GCPauseP99Us = float64HistQuantile(h, 0.99) * usPerSec
			}
		case "/sched/latencies:seconds":
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				h := s.Value.Float64Histogram()
				rs.SchedLatencyP50Us = float64HistQuantile(h, 0.5) * usPerSec
				rs.SchedLatencyP99Us = float64HistQuantile(h, 0.99) * usPerSec
			}
		}
	}
	return rs
}

const usPerSec = float64(time.Second / time.Microsecond)

// float64HistQuantile estimates a quantile of a runtime/metrics
// Float64Histogram by cumulative bucket walk, answering the holding
// bucket's finite upper bound (runtime buckets can be open-ended on
// both sides; infinities fall back to the nearest finite edge).
func float64HistQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen > rank {
			// Bucket i spans (Buckets[i], Buckets[i+1]].
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 1) { // open-ended top bucket
				hi = h.Buckets[i]
			}
			if math.IsInf(hi, 0) || math.IsNaN(hi) {
				return 0
			}
			return hi
		}
	}
	return 0
}
