// Package telemetry is the pipeline's low-overhead metrics core: lock-free
// sharded counters, gauges, fixed-bucket log-spaced latency histograms with
// mergeable snapshots, and a per-stage span recorder that stamps where each
// identification spent its time (queue wait, trace gathering, feature
// extraction, classification, cache lookup). The service aggregates stage
// spans into per-stage histograms and exposes everything as both the JSON
// snapshot and Prometheus text exposition on GET /metrics.
//
// Design constraints, in order:
//
//  1. The identify hot path must stay zero-allocation with telemetry
//     enabled. Every Observe/Add/Set is a few atomic operations on
//     preallocated fixed-size arrays; nothing on the record path touches
//     the heap, takes a lock, or formats a string.
//  2. Reads never block writes. Snapshots are plain atomic loads; a
//     snapshot taken under concurrent traffic is a consistent-enough view
//     (per-bucket counts may trail the total by in-flight observations,
//     never the reverse invariantly -- see Histogram.Snapshot).
//  3. Snapshots merge associatively, so per-worker or per-shard histograms
//     can be aggregated in any grouping with identical results.
package telemetry

import (
	"sync/atomic"
	"unsafe"
)

// counterShards is the fixed shard count of a Counter. A power of two so
// the shard index is a mask, sized past the core counts this pipeline
// targets; beyond it the false-sharing padding dominates the win.
const counterShards = 32

// cacheLine padding keeps neighbouring shards off one cache line, so two
// cores hammering different shards never ping-pong ownership.
type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a lock-free sharded monotonic counter. Add scatters across
// cache-line-padded shards keyed by the caller's stack address (distinct
// per goroutine, stable within a call), so concurrent writers on different
// goroutines usually hit different cache lines; Load sums the shards.
// The zero value is ready to use.
type Counter struct {
	shards [counterShards]paddedInt64
}

// shardIndex derives a cheap goroutine-affine shard key: goroutine stacks
// live in distinct allocations, so the address of any stack variable
// separates goroutines without runtime hooks. Bits below the typical
// frame size are discarded so one goroutine maps to one shard regardless
// of call depth jitter.
func shardIndex() int {
	var probe byte
	return int(uintptr(unsafe.Pointer(&probe))>>10) & (counterShards - 1)
}

// Add increments the counter by n (n may be negative, though counters are
// conventionally monotonic; use a Gauge for values that go down).
func (c *Counter) Add(n int64) {
	c.shards[shardIndex()].v.Add(n)
}

// Load sums the shards. Under concurrent Adds the result is a linearizable
// lower bound: every Add that returned before Load began is included.
func (c *Counter) Load() int64 {
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// Gauge is an instantaneous value: queue depth, busy workers, retained
// jobs. The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta and returns the new value.
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// SetMax raises the gauge to v if v exceeds the current value -- the
// high-water-mark primitive (lock-free CAS loop).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load reads the gauge.
func (g *Gauge) Load() int64 { return g.v.Load() }
