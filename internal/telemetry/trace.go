package telemetry

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Flight is a flight recorder for per-identification traces: every span
// and event of every request is written -- always on, no sampling
// decision up front -- into per-shard preallocated ring buffers of
// fixed-size atomic records, and only at completion does tail sampling
// decide which traces survive the ring into the bounded retained store.
// The recording path is allocation-free and lock-free: one span is a
// handful of atomic stores into a preallocated slot, so the identify hot
// path keeps its zero-allocs/op contract with tracing enabled (gated by
// the telemetry/trace_overhead budget, like telemetry/overhead gates the
// histogram path).
//
// Tail-sampling keep rules, checked in order at Finish:
//
//  1. outcome: every error / UNSURE / special / invalid trace is kept;
//  2. slow: any trace at least Slow long is kept;
//  3. sampled: a deterministic 1-in-SampleN of the remaining normal
//     traffic (keep iff mix64(id^Seed) % SampleN == 0, see Sampled).
//
// Retention runs on one collector goroutine: Finish enqueues a small
// completion record, the collector scans the rings for the trace's spans
// and inserts the assembled Trace into a bounded FIFO store. A full
// completion queue drops the trace (counted in Stats().Lost) rather than
// ever blocking a request. Drain is the read-your-writes barrier the
// HTTP surface uses; Close stops the collector (goroutine-leak-free,
// pinned by test).
type Flight struct {
	cfg  FlightConfig
	mask uint64
	// rings are goroutine-affine (shardIndex), so concurrent writers
	// usually land on different cursors and cache lines.
	rings [flightShards]flightRing

	seq atomic.Uint64 // Mint counter

	spans    Counter      // span/event records written (hot path)
	finished atomic.Int64 // Finish calls
	retained atomic.Int64 // traces that passed tail sampling
	dropped  atomic.Int64 // normal traces tail sampling discarded
	lost     atomic.Int64 // kept traces lost to a full completion queue

	finishCh chan finishMsg
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	store retainedStore
}

// FlightConfig tunes a Flight. The zero value of every field selects the
// default.
type FlightConfig struct {
	// SampleN keeps a deterministic 1-in-SampleN of normal (fast, OK)
	// traces: 1 keeps every trace, negative keeps none (errors and slow
	// traces are always kept). 0 means DefaultTraceSampleN.
	SampleN int
	// Slow is the latency threshold past which every trace is kept
	// regardless of outcome. 0 means DefaultTraceSlow.
	Slow time.Duration
	// Retain bounds the retained-trace store (FIFO eviction). 0 means
	// DefaultTraceRetain.
	Retain int
	// Slots is the per-shard ring capacity in span records, rounded up
	// to a power of two. 0 means defaultRingSlots.
	Slots int
	// Seed perturbs the deterministic sampling hash (0 = 1), so two
	// processes sampling the same IDs can keep disjoint subsets.
	Seed uint64
}

// Flight defaults.
const (
	DefaultTraceSampleN = 16
	DefaultTraceSlow    = 500 * time.Millisecond
	DefaultTraceRetain  = 256

	// flightShards is the ring count; a small power of two -- spans from
	// one goroutine stay on one cursor, and the collector scan cost is
	// flightShards * slots per retained trace.
	flightShards     = 8
	defaultRingSlots = 2048
)

func (c FlightConfig) withDefaults() FlightConfig {
	if c.SampleN == 0 {
		c.SampleN = DefaultTraceSampleN
	}
	if c.Slow == 0 {
		c.Slow = DefaultTraceSlow
	}
	if c.Retain <= 0 {
		c.Retain = DefaultTraceRetain
	}
	if c.Slots <= 0 {
		c.Slots = defaultRingSlots
	}
	for c.Slots&(c.Slots-1) != 0 {
		c.Slots &= c.Slots - 1 // clear lowest bit until a power of two...
		c.Slots <<= 1          // ...then double: next power of two above
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// flightRing is one preallocated span ring: a monotonic claim cursor and
// power-of-two slot array.
type flightRing struct {
	cursor atomic.Uint64
	_      [56]byte // keep neighbouring cursors off one cache line
	slots  []slot
}

// slot is one fixed-size span record. Every field is an atomic so
// concurrent write/scan is race-detector-clean; seq is the consistency
// protocol: a writer publishes 0 (writing), then the payload, then its
// 1-based claim position. A scanner accepts a slot only when seq reads
// the same non-zero value before and after the payload loads, so a torn
// record (overwritten mid-scan) is discarded instead of misreported. Two
// writers can collide on one slot only when the claim cursor laps the
// whole ring while the first writer is still mid-store -- nanoseconds
// versus thousands of spans -- and the cost would be one garbled
// diagnostic span, not corruption.
type slot struct {
	seq   atomic.Uint64
	trace atomic.Uint64
	meta  atomic.Uint64 // kind<<62 | code<<56 | arg (48 bits)
	start atomic.Int64  // wall clock, unix nanoseconds
	dur   atomic.Int64  // nanoseconds
}

// NewFlight starts a flight recorder and its retention collector.
// Callers own the Close.
func NewFlight(cfg FlightConfig) *Flight {
	cfg = cfg.withDefaults()
	f := &Flight{
		cfg:      cfg,
		mask:     uint64(cfg.Slots - 1),
		finishCh: make(chan finishMsg, 256),
		stop:     make(chan struct{}),
		store: retainedStore{
			cap:  cfg.Retain,
			byID: make(map[TraceID]*Trace, cfg.Retain),
		},
	}
	for i := range f.rings {
		f.rings[i].slots = make([]slot, cfg.Slots)
	}
	f.wg.Add(1)
	go f.collector()
	return f
}

// Close stops the retention collector after it drains the pending
// completions. Safe to call twice; spans recorded after Close still land
// in the rings but no further traces are retained.
func (f *Flight) Close() {
	if f == nil {
		return
	}
	f.stopOnce.Do(func() { close(f.stop) })
	f.wg.Wait()
}

// TraceID identifies one end-to-end trace. IDs are minted (Mint) or
// derived from client request IDs (HashTraceID); 0 means "no trace" and
// makes every recording call a no-op, so unthreaded paths cost nothing.
type TraceID uint64

// String renders the ID the way the service mints X-Request-ID values:
// 16 lowercase hex digits.
func (tr TraceID) String() string { return fmt.Sprintf("%016x", uint64(tr)) }

// ParseTraceID parses the String rendering.
func ParseTraceID(s string) (TraceID, bool) {
	if len(s) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil || v == 0 {
		return 0, false
	}
	return TraceID(v), true
}

// mix64 is the SplitMix64 output function (the same finalizer
// internal/xrand draws with): a cheap bijective avalanche over uint64.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mint issues a fresh process-unique trace ID: SplitMix64 over an atomic
// counter, so IDs are well-distributed for the sampling hash and the hex
// rendering doubles as the minted X-Request-ID.
func (f *Flight) Mint() TraceID {
	id := mix64(f.seq.Add(1) ^ f.cfg.Seed)
	if id == 0 {
		id = 1
	}
	return TraceID(id)
}

// HashTraceID derives the trace ID of a client-supplied request ID
// deterministically (FNV-1a then SplitMix64 finish), so a caller that
// knows the X-Request-ID it sent can look its trace up without parsing
// anything back.
func HashTraceID(reqID string) TraceID {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(reqID); i++ {
		h ^= uint64(reqID[i])
		h *= fnvPrime
	}
	id := mix64(h)
	if id == 0 {
		id = 1
	}
	return TraceID(id)
}

// Sampled reports the deterministic 1-in-n tail-sampling decision for a
// normal-outcome trace: keep iff mix64(id^seed) lands in residue class
// zero. Exported so tests (and operators predicting retention) can apply
// the exact rule.
func Sampled(tr TraceID, seed uint64, n int) bool {
	if n <= 0 {
		return false
	}
	return mix64(uint64(tr)^seed)%uint64(n) == 0
}

// Span/event records.

const (
	kindStage = 0
	kindEvent = 1
	argMask   = 1<<56 - 1
)

// Event enumerates the typed point events a trace can carry alongside
// its stage spans.
type Event uint8

const (
	// EventCacheHit / EventCacheMiss mark the service result-cache
	// outcome of a request.
	EventCacheHit Event = iota
	EventCacheMiss
	// EventShardAssign marks a batch job landing on an engine worker
	// (arg: worker<<32 | job tag) or a streamed flow leaving a decode
	// shard (arg: shard).
	EventShardAssign
	// EventRetry / EventDeferral mark census probe attempts re-queued
	// after a transient timeout or rate limit (arg: attempt/deferral
	// count).
	EventRetry
	EventDeferral
	// EventUnsure marks an identification that came back UNSURE
	// (arg: confidence in thousandths).
	EventUnsure
	numEvents int = iota
)

var eventNames = [numEvents]string{
	"cache_hit", "cache_miss", "shard_assign", "retry", "deferral", "unsure",
}

// String returns the event's snake_case label.
func (e Event) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return "unknown"
}

// emit writes one record into the caller-affine ring: claim a slot, mark
// it writing, publish the payload, publish the claim. Pure atomics on
// preallocated memory -- no allocation, no locks.
func (f *Flight) emit(tr TraceID, meta uint64, start, dur int64) {
	r := &f.rings[shardIndex()&(flightShards-1)]
	pos := r.cursor.Add(1)
	s := &r.slots[(pos-1)&f.mask]
	s.seq.Store(0)
	s.trace.Store(uint64(tr))
	s.meta.Store(meta)
	s.start.Store(start)
	s.dur.Store(dur)
	s.seq.Store(pos)
	f.spans.Add(1)
}

// Span records one stage span under tr. arg carries path-specific
// context (a batch job tag, a shard index); 0 when not meaningful.
// No-op on a nil Flight or zero TraceID.
func (f *Flight) Span(tr TraceID, s Stage, start time.Time, d time.Duration, arg uint64) {
	if f == nil || tr == 0 {
		return
	}
	f.emit(tr, uint64(kindStage)<<62|uint64(s)<<56|arg&argMask, start.UnixNano(), int64(d))
}

// Event records one point event under tr, stamped now.
// No-op on a nil Flight or zero TraceID.
func (f *Flight) Event(tr TraceID, e Event, arg uint64) {
	if f == nil || tr == 0 {
		return
	}
	f.emit(tr, uint64(kindEvent)<<62|uint64(e)<<56|arg&argMask, time.Now().UnixNano(), 0)
}

// StageSpans records every non-zero stage of a timing breakdown as
// consecutive spans starting at base (stages run in enum order on the
// recording paths). This is how a core session flushes its whole
// breakdown in one call without threading per-stage clocks around.
func (f *Flight) StageSpans(tr TraceID, base time.Time, t *StageTimings, arg uint64) {
	if f == nil || tr == 0 {
		return
	}
	for s := range t {
		if t[s] == 0 {
			continue
		}
		f.Span(tr, Stage(s), base, t[s], arg)
		base = base.Add(t[s])
	}
}

// Trace completion and tail sampling.

// Outcome classifies a finished trace for tail sampling, mirroring the
// service's outcome counters (internal/eval's accounting classes plus
// transport errors).
type Outcome uint8

const (
	OutcomeOK Outcome = iota
	OutcomeUnsure
	OutcomeSpecial
	OutcomeInvalid
	OutcomeError
	numOutcomes int = iota
)

var outcomeNames = [numOutcomes]string{"ok", "unsure", "special", "invalid", "error"}

// String returns the outcome's label.
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return "unknown"
}

// ParseOutcome resolves an outcome label (for trace filters); false for
// unknown labels.
func ParseOutcome(s string) (Outcome, bool) {
	for i, n := range outcomeNames {
		if n == s {
			return Outcome(i), true
		}
	}
	return 0, false
}

// TraceDone is one completed trace's summary, handed to Finish at the
// boundary that owns the trace (the HTTP middleware for synchronous
// requests, the job executor for async jobs).
type TraceDone struct {
	ID        TraceID
	RequestID string
	Route     string
	Outcome   Outcome
	Status    int
	Start     time.Time
	Duration  time.Duration
}

// Retention reasons recorded on kept traces.
const (
	RetainOutcome = "outcome"
	RetainSlow    = "slow"
	RetainSampled = "sampled"
)

// Finish applies tail sampling to a completed trace: kept traces are
// handed to the collector (which scans the rings and stores the span
// tree); the rest are dropped and eventually overwritten in the rings.
// Never blocks: a full completion queue loses the trace (Stats().Lost).
func (f *Flight) Finish(d TraceDone) {
	if f == nil || d.ID == 0 {
		return
	}
	f.finished.Add(1)
	var reason string
	switch {
	case d.Outcome != OutcomeOK:
		reason = RetainOutcome
	case d.Duration >= f.cfg.Slow:
		reason = RetainSlow
	case Sampled(d.ID, f.cfg.Seed, f.cfg.SampleN):
		reason = RetainSampled
	default:
		f.dropped.Add(1)
		return
	}
	select {
	case f.finishCh <- finishMsg{done: d, reason: reason}:
	case <-f.stop:
		f.lost.Add(1)
	default:
		f.lost.Add(1)
	}
}

// Drain blocks until every Finish call that returned before Drain began
// has been applied to the retained store -- the read-your-writes barrier
// GET /v1/traces uses so a freshly finished request is immediately
// visible. Returns promptly after Close.
func (f *Flight) Drain() {
	if f == nil {
		return
	}
	ack := make(chan struct{})
	select {
	case f.finishCh <- finishMsg{ack: ack}:
		select {
		case <-ack:
		case <-f.stop:
		}
	case <-f.stop:
	}
}

// finishMsg is one completion handed to the collector; ack (alone) marks
// a Drain barrier.
type finishMsg struct {
	done   TraceDone
	reason string
	ack    chan struct{}
}

// collector is the retention goroutine: it serializes ring scans and
// store inserts, so the store needs no fine-grained locking against
// writers and the scan cost never lands on a request goroutine.
func (f *Flight) collector() {
	defer f.wg.Done()
	for {
		select {
		case m := <-f.finishCh:
			f.apply(m)
		case <-f.stop:
			// Drain what is already queued so Close loses nothing that
			// was accepted, then exit.
			for {
				select {
				case m := <-f.finishCh:
					f.apply(m)
				default:
					return
				}
			}
		}
	}
}

func (f *Flight) apply(m finishMsg) {
	if m.ack != nil {
		close(m.ack)
		return
	}
	t := f.assemble(m.done, m.reason)
	f.store.put(t)
	f.retained.Add(1)
}

// assemble scans every ring for the trace's surviving spans and builds
// the retained Trace. Spans overwritten by ring wraparound before
// completion are simply absent (the flight-recorder trade: bounded
// memory, best-effort span detail).
func (f *Flight) assemble(d TraceDone, reason string) *Trace {
	t := &Trace{
		ID:         d.ID.String(),
		RequestID:  d.RequestID,
		Route:      d.Route,
		Outcome:    d.Outcome.String(),
		Status:     d.Status,
		Retained:   reason,
		Start:      d.Start.UTC(),
		DurationMs: float64(d.Duration) / float64(time.Millisecond),
	}
	startNanos := d.Start.UnixNano()
	for r := range f.rings {
		ring := &f.rings[r]
		for i := range ring.slots {
			s := &ring.slots[i]
			v1 := s.seq.Load()
			if v1 == 0 {
				continue
			}
			if TraceID(s.trace.Load()) != d.ID {
				continue
			}
			meta := s.meta.Load()
			start := s.start.Load()
			dur := s.dur.Load()
			if s.seq.Load() != v1 {
				continue // torn: overwritten mid-scan
			}
			sp := Span{
				StartUs:    float64(start-startNanos) / float64(time.Microsecond),
				DurationUs: float64(dur) / float64(time.Microsecond),
				Arg:        int64(meta & argMask),
			}
			code := uint8(meta >> 56 & 0x3f)
			if meta>>62 == kindStage {
				sp.Kind, sp.Name = "stage", Stage(code).String()
			} else {
				sp.Kind, sp.Name = "event", Event(code).String()
			}
			t.Spans = append(t.Spans, sp)
		}
	}
	sortSpans(t.Spans)
	return t
}

// sortSpans orders by start offset (insertion sort: span counts per
// trace are small and ring order is already mostly chronological).
func sortSpans(spans []Span) {
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && spans[j].StartUs < spans[j-1].StartUs; j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
}

// Trace is one retained trace: the completion summary plus the span tree
// recovered from the rings, JSON-shaped for GET /v1/traces/{id}.
type Trace struct {
	ID         string    `json:"id"`
	RequestID  string    `json:"request_id,omitempty"`
	Route      string    `json:"route,omitempty"`
	Outcome    string    `json:"outcome"`
	Status     int       `json:"status,omitempty"`
	Retained   string    `json:"retained"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"duration_ms"`
	Spans      []Span    `json:"spans"`
}

// Span is one recovered record: a stage span (with duration) or a point
// event. StartUs is the offset from the trace's start in microseconds
// (negative when a span predates the completion window's Start, e.g. a
// queue admission stamped before the measuring boundary).
type Span struct {
	Kind       string  `json:"kind"`
	Name       string  `json:"name"`
	StartUs    float64 `json:"start_us"`
	DurationUs float64 `json:"duration_us,omitempty"`
	Arg        int64   `json:"arg,omitempty"`
}

// TraceSummary is one list entry of GET /v1/traces: the completion
// summary without the span payload.
type TraceSummary struct {
	ID         string    `json:"id"`
	RequestID  string    `json:"request_id,omitempty"`
	Route      string    `json:"route,omitempty"`
	Outcome    string    `json:"outcome"`
	Status     int       `json:"status,omitempty"`
	Retained   string    `json:"retained"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"duration_ms"`
	Spans      int       `json:"spans"`
}

// TraceFilter narrows List. Zero fields match everything.
type TraceFilter struct {
	// Outcome matches the outcome label exactly ("" matches all).
	Outcome string
	// Route matches the route exactly ("" matches all).
	Route string
	// MinDuration keeps traces at least this long.
	MinDuration time.Duration
	// Limit bounds the result count (0 = no bound).
	Limit int
}

// retainedStore is the bounded FIFO keep of sampled traces. A re-finish
// of an ID already stored (an async job completing after its accepting
// request was retained) replaces the entry in place with the fuller scan.
type retainedStore struct {
	mu    sync.RWMutex
	cap   int
	byID  map[TraceID]*Trace
	order []TraceID
}

func (st *retainedStore) put(t *Trace) {
	id, _ := ParseTraceID(t.ID)
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.byID[id]; ok {
		st.byID[id] = t // replace in place, keep FIFO position
		return
	}
	st.byID[id] = t
	st.order = append(st.order, id)
	for len(st.order) > st.cap {
		delete(st.byID, st.order[0])
		st.order = st.order[1:]
	}
}

func (st *retainedStore) get(id TraceID) (*Trace, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	t, ok := st.byID[id]
	return t, ok
}

func (st *retainedStore) list(fl TraceFilter) []TraceSummary {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]TraceSummary, 0, len(st.order))
	for i := len(st.order) - 1; i >= 0; i-- { // newest first
		t := st.byID[st.order[i]]
		if fl.Outcome != "" && t.Outcome != fl.Outcome {
			continue
		}
		if fl.Route != "" && t.Route != fl.Route {
			continue
		}
		if fl.MinDuration > 0 && t.DurationMs < float64(fl.MinDuration)/float64(time.Millisecond) {
			continue
		}
		out = append(out, TraceSummary{
			ID: t.ID, RequestID: t.RequestID, Route: t.Route,
			Outcome: t.Outcome, Status: t.Status, Retained: t.Retained,
			Start: t.Start, DurationMs: t.DurationMs, Spans: len(t.Spans),
		})
		if fl.Limit > 0 && len(out) >= fl.Limit {
			break
		}
	}
	return out
}

func (st *retainedStore) len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.order)
}

// Get returns a retained trace by ID.
func (f *Flight) Get(tr TraceID) (Trace, bool) {
	if f == nil {
		return Trace{}, false
	}
	t, ok := f.store.get(tr)
	if !ok {
		return Trace{}, false
	}
	return *t, true
}

// Lookup resolves a retained trace by its wire key: the 16-hex-digit
// minted rendering, or any client-supplied X-Request-ID (hashed with
// HashTraceID -- the same derivation the service boundary applied).
func (f *Flight) Lookup(key string) (Trace, bool) {
	if f == nil {
		return Trace{}, false
	}
	if id, ok := ParseTraceID(key); ok {
		if t, ok := f.Get(id); ok {
			return t, true
		}
	}
	return f.Get(HashTraceID(key))
}

// List returns retained-trace summaries, newest first, narrowed by fl.
func (f *Flight) List(fl TraceFilter) []TraceSummary {
	if f == nil {
		return nil
	}
	return f.store.list(fl)
}

// FlightStats is the recorder's own accounting, exposed on /metrics.
type FlightStats struct {
	// Spans counts span/event records written into the rings.
	Spans int64 `json:"spans"`
	// Finished counts completed traces offered to tail sampling;
	// Retained the ones kept, Dropped the normal traffic discarded,
	// Lost the kept traces that hit a full completion queue.
	Finished int64 `json:"finished"`
	Retained int64 `json:"retained"`
	Dropped  int64 `json:"dropped"`
	Lost     int64 `json:"lost"`
	// Stored is the retained store's current occupancy (bounded FIFO).
	Stored int `json:"stored"`
}

// Stats snapshots the recorder's counters.
func (f *Flight) Stats() FlightStats {
	if f == nil {
		return FlightStats{}
	}
	return FlightStats{
		Spans:    f.spans.Load(),
		Finished: f.finished.Load(),
		Retained: f.retained.Load(),
		Dropped:  f.dropped.Load(),
		Lost:     f.lost.Load(),
		Stored:   f.store.len(),
	}
}
