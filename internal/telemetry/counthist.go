package telemetry

import "sync/atomic"

// NumCountBuckets is the fixed bucket count of a CountHist: buckets 0..15
// count the exact observed values 0..15, the last bucket is the overflow.
// Small-integer distributions (per-target probe attempts, retry counts)
// concentrate entirely below the overflow, so exact unit buckets beat the
// latency histogram's factor-of-two resolution where it matters.
const NumCountBuckets = 17

// CountHist is a lock-free histogram over small non-negative integers:
// Observe is three atomic adds on a preallocated array, mirroring
// Histogram's contract (zero allocation, any number of concurrent
// writers). The zero value is ready to use.
type CountHist struct {
	count   Counter
	sum     Counter
	buckets [NumCountBuckets]atomic.Int64
}

// Observe records one value (negative values count as 0).
func (h *CountHist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := v
	if i >= NumCountBuckets {
		i = NumCountBuckets - 1
	}
	h.buckets[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Snapshot copies the histogram's current state. The same bounded-skew
// caveat as Histogram.Snapshot applies under concurrent observations.
func (h *CountHist) Snapshot() CountHistSnapshot {
	var s CountHistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// CountHistSnapshot is a point-in-time copy of a CountHist: plain values,
// safe to marshal, compare, and merge.
type CountHistSnapshot struct {
	// Count and Sum aggregate every observation.
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	// Buckets[i] counts observations of the exact value i; the last
	// bucket counts everything at or above NumCountBuckets-1.
	Buckets [NumCountBuckets]int64 `json:"buckets"`
}

// Merge adds o into s (commutative and associative, like histogram
// snapshots).
func (s *CountHistSnapshot) Merge(o CountHistSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the average observed value (0 when empty).
func (s CountHistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Max returns the largest bucket value with an observation (the overflow
// bucket reports NumCountBuckets-1, a lower bound).
func (s CountHistSnapshot) Max() int64 {
	for i := NumCountBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] > 0 {
			return int64(i)
		}
	}
	return 0
}
