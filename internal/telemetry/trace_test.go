package telemetry

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestTraceIDRoundTrip pins the wire rendering: 16 lowercase hex digits
// that parse back to the same ID, and rejection of everything else.
func TestTraceIDRoundTrip(t *testing.T) {
	f := NewFlight(FlightConfig{})
	defer f.Close()
	for i := 0; i < 100; i++ {
		id := f.Mint()
		if id == 0 {
			t.Fatal("minted the zero (no-trace) ID")
		}
		s := id.String()
		if len(s) != 16 {
			t.Fatalf("minted ID renders as %q, want 16 hex digits", s)
		}
		back, ok := ParseTraceID(s)
		if !ok || back != id {
			t.Fatalf("round trip %q: got %v ok=%v, want %v", s, back, ok, id)
		}
	}
	for _, bad := range []string{"", "abc", "000000000000000g", "0000000000000000", "00000000000000001"} {
		if _, ok := ParseTraceID(bad); ok {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
	if HashTraceID("req-a") == HashTraceID("req-b") {
		t.Error("distinct request IDs hashed to one trace ID")
	}
	if HashTraceID("req-a") != HashTraceID("req-a") {
		t.Error("HashTraceID is not deterministic")
	}
}

// TestFlightRetainsAndAssembles pins the happy path end to end: spans
// recorded under an ID, Finish with a kept outcome, Drain, and the span
// tree readable back with names, kinds, and chronological order.
func TestFlightRetainsAndAssembles(t *testing.T) {
	f := NewFlight(FlightConfig{SampleN: -1}) // only outcome/slow retention
	defer f.Close()

	id := f.Mint()
	start := time.Now()
	var tm StageTimings
	tm[StageGather] = 3 * time.Millisecond
	tm[StageFeature] = 1 * time.Millisecond
	tm[StageClassify] = 2 * time.Millisecond
	f.StageSpans(id, start, &tm, 7)
	f.Event(id, EventUnsure, 420)

	f.Finish(TraceDone{
		ID: id, RequestID: id.String(), Route: "POST /v1/identify",
		Outcome: OutcomeUnsure, Status: 200,
		Start: start, Duration: 6 * time.Millisecond,
	})
	f.Drain()

	tr, ok := f.Get(id)
	if !ok {
		t.Fatal("UNSURE trace not retained")
	}
	if tr.Retained != RetainOutcome {
		t.Fatalf("retained reason %q, want %q", tr.Retained, RetainOutcome)
	}
	if len(tr.Spans) != 4 {
		t.Fatalf("recovered %d spans, want 4: %+v", len(tr.Spans), tr.Spans)
	}
	names := map[string]bool{}
	for i, sp := range tr.Spans {
		names[sp.Kind+"/"+sp.Name] = true
		if i > 0 && sp.StartUs < tr.Spans[i-1].StartUs {
			t.Fatalf("spans out of order at %d: %+v", i, tr.Spans)
		}
	}
	for _, want := range []string{"stage/gather", "stage/feature", "stage/classify", "event/unsure"} {
		if !names[want] {
			t.Errorf("span %s missing from %v", want, names)
		}
	}

	// Lookup resolves both the hex key and an arbitrary request ID string
	// via the hash derivation.
	if _, ok := f.Lookup(id.String()); !ok {
		t.Error("Lookup by hex rendering failed")
	}
	if _, ok := f.Lookup("no-such-trace"); ok {
		t.Error("Lookup invented a trace")
	}
}

// TestTailSamplingProperty is the sampling property pin: every non-OK
// outcome is retained regardless of rate, slow traces are retained
// regardless of outcome, and normal traffic survives exactly when the
// exported Sampled rule says so -- bit-for-bit reproducible across two
// identically-seeded recorders.
func TestTailSamplingProperty(t *testing.T) {
	const n = 400
	mk := func() *Flight {
		return NewFlight(FlightConfig{SampleN: 8, Slow: 50 * time.Millisecond, Retain: 2 * n, Seed: 99})
	}
	a, b := mk(), mk()
	defer a.Close()
	defer b.Close()

	outcomes := []Outcome{OutcomeOK, OutcomeUnsure, OutcomeSpecial, OutcomeInvalid, OutcomeError}
	start := time.Unix(1700000000, 0)
	for i := 0; i < n; i++ {
		id := a.Mint() // same seq+seed on both recorders mints the same IDs
		if got := b.Mint(); got != id {
			t.Fatalf("mint diverged at %d: %v vs %v", i, id, got)
		}
		d := TraceDone{
			ID: id, Route: "POST /v1/identify", Outcome: outcomes[i%len(outcomes)],
			Start: start, Duration: time.Duration(i%100) * time.Millisecond,
		}
		a.Finish(d)
		b.Finish(d)

		wantKeep, wantReason := false, ""
		switch {
		case d.Outcome != OutcomeOK:
			wantKeep, wantReason = true, RetainOutcome
		case d.Duration >= 50*time.Millisecond:
			wantKeep, wantReason = true, RetainSlow
		case Sampled(id, 99, 8):
			wantKeep, wantReason = true, RetainSampled
		}
		a.Drain()
		b.Drain()
		ta, oka := a.Get(id)
		tb, okb := b.Get(id)
		if oka != wantKeep {
			t.Fatalf("trace %d (outcome %v, %v): retained=%v want %v", i, d.Outcome, d.Duration, oka, wantKeep)
		}
		if oka != okb || (oka && ta.Retained != tb.Retained) {
			t.Fatalf("trace %d: recorders diverged (%v/%v)", i, oka, okb)
		}
		if oka && ta.Retained != wantReason {
			t.Fatalf("trace %d: reason %q want %q", i, ta.Retained, wantReason)
		}
	}

	st := a.Stats()
	if st.Finished != n {
		t.Errorf("finished %d, want %d", st.Finished, n)
	}
	if st.Retained+st.Dropped != st.Finished || st.Lost != 0 {
		t.Errorf("accounting does not balance: %+v", st)
	}
	// SampleN 8 over well-mixed IDs keeps some but nowhere near all of the
	// normal fast traffic.
	if st.Dropped == 0 {
		t.Error("no normal traffic was dropped; sampling is vacuous")
	}
	if st.Retained <= int64(4*n/5) {
		// every non-OK (4/5 of traffic) is kept; strictly more means slow
		// and sampled retention fired too.
		t.Errorf("retained %d, want > %d (outcome floor)", st.Retained, 4*n/5)
	}
}

// TestFlightConcurrentHammer is the -race patrol: many goroutines write
// spans into deliberately tiny rings (forcing continual wraparound) while
// others Finish, List, Lookup, and read Stats concurrently. The test
// asserts only invariants -- no torn reads surface as foreign spans, the
// store honors its bound -- because under wraparound span loss is the
// documented trade.
func TestFlightConcurrentHammer(t *testing.T) {
	f := NewFlight(FlightConfig{SampleN: 1, Slots: 64, Retain: 32})
	defer f.Close()

	const (
		writers = 8
		rounds  = 200
	)
	var writeWG, readWG sync.WaitGroup
	stop := make(chan struct{})

	for g := 0; g < writers; g++ {
		writeWG.Add(1)
		go func() {
			defer writeWG.Done()
			for r := 0; r < rounds; r++ {
				id := f.Mint()
				start := time.Now()
				f.Span(id, StageGather, start, time.Microsecond, uint64(r))
				f.Event(id, EventCacheMiss, 0)
				f.Event(id, EventShardAssign, uint64(r))
				f.Finish(TraceDone{
					ID: id, Route: "hammer", Outcome: OutcomeOK,
					Start: start, Duration: time.Since(start),
				})
			}
		}()
	}

	// Readers: list/filter/lookup/stats race the writers and collector.
	for g := 0; g < 3; g++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, s := range f.List(TraceFilter{Route: "hammer", Limit: 10}) {
					tr, ok := f.Lookup(s.ID)
					if ok && tr.Route != "hammer" {
						t.Errorf("lookup %s crossed traces: %+v", s.ID, tr)
						return
					}
				}
				_ = f.Stats()
			}
		}()
	}

	// Writers finish first, then the readers are released.
	writeWG.Wait()
	close(stop)
	readWG.Wait()

	f.Drain()
	st := f.Stats()
	if st.Finished != writers*rounds {
		t.Errorf("finished %d, want %d", st.Finished, writers*rounds)
	}
	if st.Stored > 32 {
		t.Errorf("retained store holds %d traces, bound is 32", st.Stored)
	}
	if st.Spans != writers*rounds*3 {
		t.Errorf("span counter %d, want %d", st.Spans, writers*rounds*3)
	}
}

// TestFlightCloseLeaksNoGoroutines pins collector shutdown: a Flight's
// only goroutine must be gone after Close, and Close/Drain/Finish after
// Close must not hang or panic.
func TestFlightCloseLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		f := NewFlight(FlightConfig{Slots: 64})
		id := f.Mint()
		f.Span(id, StageGather, time.Now(), time.Microsecond, 0)
		f.Finish(TraceDone{ID: id, Outcome: OutcomeError, Start: time.Now()})
		f.Close()
		f.Close() // idempotent
		f.Drain() // returns promptly after Close
		f.Finish(TraceDone{ID: id, Outcome: OutcomeError, Start: time.Now()})
	}
	// Collector goroutines exit asynchronously only through wg.Wait inside
	// Close, so any excess here is a real leak; allow brief scheduler
	// settling before declaring one.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d after 20 Flight Close cycles",
				before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFlightStoreReplacesByID pins the async-job re-finish contract: a
// second Finish of the same ID replaces the stored trace in place (the
// fuller job-completion scan wins) without consuming extra store slots.
func TestFlightStoreReplacesByID(t *testing.T) {
	f := NewFlight(FlightConfig{SampleN: -1, Retain: 8})
	defer f.Close()

	id := f.Mint()
	start := time.Now()
	f.Finish(TraceDone{ID: id, Route: "POST /v1/batch", Outcome: OutcomeError, Start: start, Duration: time.Millisecond})
	f.Drain()
	f.Span(id, StageClassify, start, time.Millisecond, 0)
	f.Finish(TraceDone{ID: id, Route: "job:batch", Outcome: OutcomeError, Start: start, Duration: 2 * time.Millisecond})
	f.Drain()

	tr, ok := f.Get(id)
	if !ok {
		t.Fatal("trace gone after re-finish")
	}
	if tr.Route != "job:batch" || len(tr.Spans) != 1 {
		t.Fatalf("re-finish did not replace: %+v", tr)
	}
	if got := f.Stats().Stored; got != 1 {
		t.Fatalf("store holds %d entries after re-finish, want 1", got)
	}
}
