package telemetry

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one counter from many goroutines (the
// -race build is the interesting run) and checks nothing is lost.
func TestCounterConcurrent(t *testing.T) {
	const goroutines, perG = 16, 10_000
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*perG {
		t.Fatalf("Counter.Load() = %d, want %d", got, goroutines*perG)
	}
}

// TestCounterNegativeAndLoad: deltas sum across shards.
func TestCounterNegativeAndLoad(t *testing.T) {
	var c Counter
	c.Add(10)
	c.Add(-3)
	c.Add(5)
	if got := c.Load(); got != 12 {
		t.Fatalf("Counter.Load() = %d, want 12", got)
	}
}

// TestGaugeSetMax: SetMax only ever raises, including under concurrency.
func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.SetMax(5)
	g.SetMax(3)
	if got := g.Load(); got != 5 {
		t.Fatalf("SetMax lowered the gauge: %d", got)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i <= 1000; i++ {
				g.SetMax(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if got := g.Load(); got != 8000 {
		t.Fatalf("concurrent SetMax high water = %d, want 8000", got)
	}
}

// TestBucketIndexBounds pins the bucket law: every duration lands in the
// smallest bucket whose upper bound holds it, exact powers of two in
// their own bucket.
func TestBucketIndexBounds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-time.Second, 0},
		{0, 0},
		{1, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10},
		{time.Second, 20},
		{time.Hour, 32},
		{240 * time.Hour, NumHistBuckets - 1}, // overflow clamps
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
		if c.d > 0 && c.want < NumHistBuckets-1 {
			if b := BucketBound(c.want); c.d > b {
				t.Errorf("bucketIndex(%v) = %d but bound %v is below it", c.d, c.want, b)
			}
		}
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines and
// checks the snapshot accounts for every observation (-race covers the
// memory model side).
func TestHistogramConcurrent(t *testing.T) {
	const goroutines, perG = 16, 5_000
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(rng.Intn(int(10 * time.Millisecond))))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("snapshot count = %d, want %d", s.Count, goroutines*perG)
	}
	var bucketTotal int64
	for _, b := range s.Buckets {
		bucketTotal += b
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
}

// TestSnapshotMergeAssociative: merging per-worker snapshots must give
// identical totals in any grouping -- (a+b)+c == a+(b+c) -- and be
// commutative, so sharded aggregation order never matters.
func TestSnapshotMergeAssociative(t *testing.T) {
	mk := func(seed int64) HistogramSnapshot {
		var h Histogram
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 1000; i++ {
			h.Observe(time.Duration(rng.Intn(int(time.Second))))
		}
		return h.Snapshot()
	}
	a, b, c := mk(1), mk(2), mk(3)

	left := a // (a+b)+c
	left.Merge(b)
	left.Merge(c)

	bc := b // a+(b+c)
	bc.Merge(c)
	right := a
	right.Merge(bc)

	if left != right {
		t.Fatalf("merge is not associative:\n(a+b)+c = %+v\na+(b+c) = %+v", left, right)
	}

	ba := b // commutativity
	ba.Merge(a)
	ab := a
	ab.Merge(b)
	if ab != ba {
		t.Fatalf("merge is not commutative")
	}
	if left.Count != 3000 {
		t.Fatalf("merged count = %d, want 3000", left.Count)
	}
}

// TestQuantileBuckets: quantiles interpolate linearly inside the bucket
// holding the ranked observation, so estimates land strictly within the
// bucket's (lower, upper] span instead of pinning to the upper edge.
func TestQuantileBuckets(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond) // bucket 7: (64µs, 128µs]
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Millisecond) // bucket 14: (~8.2ms, ~16.4ms]
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got <= BucketBound(6) || got > BucketBound(7) {
		t.Fatalf("p50 = %v, want in (%v, %v]", got, BucketBound(6), BucketBound(7))
	}
	// Rank 50 of 100 lands 50/90ths into bucket 7's 90 observations:
	// 64µs + (50/90)·64µs ≈ 99.6µs — near the true 100µs, where the old
	// upper-bound answer was a flat 128µs.
	if got := s.Quantile(0.5); got < 90*time.Microsecond || got > 110*time.Microsecond {
		t.Fatalf("p50 = %v, want ≈100µs from in-bucket interpolation", got)
	}
	if got := s.Quantile(0.99); got <= BucketBound(13) || got > BucketBound(14) {
		t.Fatalf("p99 = %v, want in (%v, %v]", got, BucketBound(13), BucketBound(14))
	}
	if got := s.Quantile(1); got != BucketBound(14) {
		t.Fatalf("p100 = %v, want holding bucket's upper bound %v", got, BucketBound(14))
	}
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

// TestSpanClock: Start/Lap stamps consecutive stages; an unarmed clock
// records nothing (the disabled-telemetry contract).
func TestSpanClock(t *testing.T) {
	var timings StageTimings
	var c SpanClock
	c.Lap(&timings, StageGather)
	if !timings.Zero() {
		t.Fatalf("unarmed Lap recorded %+v", timings)
	}
	c.Start()
	time.Sleep(time.Millisecond)
	c.Lap(&timings, StageGather)
	time.Sleep(time.Millisecond)
	c.Lap(&timings, StageClassify)
	if timings[StageGather] <= 0 || timings[StageClassify] <= 0 {
		t.Fatalf("laps not recorded: %+v", timings)
	}
	if timings.Zero() {
		t.Fatal("Zero() on stamped timings")
	}
	if total := timings.Total(); total < timings[StageGather] {
		t.Fatalf("Total() = %v below gather span", total)
	}
}

// TestPipelineObserve: ObserveTimings lands each non-zero span in its
// stage histogram only.
func TestPipelineObserve(t *testing.T) {
	var p Pipeline
	tm := StageTimings{}
	tm[StageGather] = 3 * time.Millisecond
	tm[StageClassify] = 40 * time.Microsecond
	p.ObserveTimings(&tm)
	p.Observe(StageQueueWait, time.Millisecond)

	snap := p.Snapshot()
	wantCounts := map[Stage]int64{StageQueueWait: 1, StageGather: 1, StageClassify: 1}
	for s := 0; s < NumStages; s++ {
		if got := snap[s].Count; got != wantCounts[Stage(s)] {
			t.Errorf("stage %s count = %d, want %d", Stage(s), got, wantCounts[Stage(s)])
		}
	}
	if got := p.Stage(StageGather).Snapshot().Sum; got != 3*time.Millisecond {
		t.Fatalf("gather sum = %v", got)
	}
}

// TestStageNames pins the wire labels (they appear in JSON responses,
// Prometheus series, and CLI output).
func TestStageNames(t *testing.T) {
	want := []string{"queue_wait", "gather", "feature", "classify", "cache"}
	for i, w := range want {
		if got := Stage(i).String(); got != w {
			t.Errorf("Stage(%d) = %q, want %q", i, got, w)
		}
	}
	if NumStages != len(want) {
		t.Fatalf("NumStages = %d, want %d (update the wire docs when adding stages)", NumStages, len(want))
	}
}

// TestPromHistogramExposition checks the exposition invariants a scraper
// relies on: cumulative buckets, a +Inf bucket equal to _count, and
// label merging on bucket samples.
func TestPromHistogramExposition(t *testing.T) {
	var h Histogram
	h.Observe(time.Microsecond)       // bucket 0
	h.Observe(500 * time.Microsecond) // bucket 9
	h.Observe(500 * time.Microsecond) // bucket 9
	var b strings.Builder
	pw := NewPromWriter(&b)
	pw.Histogram("caai_test_seconds", "test family", map[string]string{"stage": "gather"}, h.Snapshot())
	if err := pw.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP caai_test_seconds test family\n",
		"# TYPE caai_test_seconds histogram\n",
		`caai_test_seconds_bucket{stage="gather",le="1e-06"} 1` + "\n",
		`caai_test_seconds_bucket{stage="gather",le="0.000512"} 3` + "\n",
		`caai_test_seconds_bucket{stage="gather",le="+Inf"} 3` + "\n",
		`caai_test_seconds_count{stage="gather"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

// TestHistogramZeroAllocObserve pins the record-path allocation contract.
func TestHistogramZeroAllocObserve(t *testing.T) {
	var h Histogram
	var c Counter
	var g Gauge
	var p Pipeline
	tm := StageTimings{StageGather: time.Millisecond}
	if allocs := testing.AllocsPerRun(200, func() {
		h.Observe(123 * time.Microsecond)
		c.Add(1)
		g.SetMax(7)
		p.ObserveTimings(&tm)
	}); allocs != 0 {
		t.Fatalf("record path allocates %v per run, want 0", allocs)
	}
}

// TestCounterSpread (informational invariant): shardIndex stays in range
// whatever goroutine calls it.
func TestCounterShardIndexRange(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if i := shardIndex(); i < 0 || i >= counterShards {
				panic(fmt.Sprintf("shardIndex out of range: %d", i))
			}
		}()
	}
	wg.Wait()
}
