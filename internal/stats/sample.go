package stats

import "sort"

// Sample is a reusable collection of observations. It exists for hot loops
// that previously rebuilt a fresh slice (and re-derived summary statistics
// from scratch) on every call: Reset keeps the accumulated capacity, the
// summary methods delegate to the package functions over the live values
// (bit-identical to calling them on a plain slice), and Sorted exposes a
// sorted-once view that is re-sorted only after new observations arrive
// rather than on every quantile lookup.
//
// The zero value is ready to use. Not safe for concurrent use.
type Sample struct {
	xs []float64
	// sorted caches the ordered view; stale marks it invalid after Add.
	sorted []float64
	stale  bool
}

// Reset empties the sample, keeping capacity for reuse.
func (s *Sample) Reset() {
	s.xs = s.xs[:0]
	s.stale = true
}

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.stale = true
}

// Len returns the number of observations.
func (s *Sample) Len() int { return len(s.xs) }

// Values returns the live observations in insertion order (read-only by
// convention; valid until the next Reset).
func (s *Sample) Values() []float64 { return s.xs }

// Mean returns the arithmetic mean of the observations.
func (s *Sample) Mean() float64 { return Mean(s.xs) }

// StdDev returns the sample standard deviation of the observations.
func (s *Sample) StdDev() float64 { return StdDev(s.xs) }

// MeanCI95 returns the paper's Eq. 1 upper confidence bound over the
// observations.
func (s *Sample) MeanCI95() float64 { return MeanCI95(s.xs) }

// Sorted returns the sorted-once view of the sample. The sort runs only
// when observations changed since the last call; repeated quantile lookups
// between Adds cost no copying or sorting. The view shares the sample's
// scratch and is valid until the next Add or Reset.
func (s *Sample) Sorted() Sorted {
	if s.stale {
		s.sorted = append(s.sorted[:0], s.xs...)
		sort.Float64s(s.sorted)
		s.stale = false
	}
	return Sorted{xs: s.sorted}
}

// Sorted is an immutable non-decreasing view of a sample, built once and
// queried many times (see Sample.Sorted and NewSorted).
type Sorted struct {
	xs []float64
}

// NewSorted copies and sorts xs once, returning the queryable view.
func NewSorted(xs []float64) Sorted {
	out := make([]float64, len(xs))
	copy(out, xs)
	sort.Float64s(out)
	return Sorted{xs: out}
}

// Len returns the number of observations in the view.
func (v Sorted) Len() int { return len(v.xs) }

// Min returns the smallest observation, or 0 when empty.
func (v Sorted) Min() float64 {
	if len(v.xs) == 0 {
		return 0
	}
	return v.xs[0]
}

// Max returns the largest observation, or 0 when empty.
func (v Sorted) Max() float64 {
	if len(v.xs) == 0 {
		return 0
	}
	return v.xs[len(v.xs)-1]
}

// Quantile returns the p-quantile (p in [0, 1]) by linear interpolation
// between order statistics, or 0 when the view is empty.
func (v Sorted) Quantile(p float64) float64 {
	n := len(v.xs)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return v.xs[0]
	}
	if p >= 1 {
		return v.xs[n-1]
	}
	pos := p * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return v.xs[n-1]
	}
	return v.xs[lo] + frac*(v.xs[lo+1]-v.xs[lo])
}

// Median returns the 0.5-quantile.
func (v Sorted) Median() float64 { return v.Quantile(0.5) }
