package stats

import "math"

// z95 is the two-sided 95% normal critical value used by the paper's Eq. 1
// confidence interval.
const z95 = 1.96

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator) of xs,
// or 0 when fewer than two samples are given.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// MeanCI95 returns mean + the half-width of the 95% confidence interval of
// the mean, i.e. the upper confidence bound the paper's Eq. 1 uses as a
// conservative ACK-loss-rate estimate.
func MeanCI95(xs []float64) float64 {
	m := Mean(xs)
	if len(xs) < 2 {
		return m
	}
	return m + z95*StdDev(xs)/math.Sqrt(float64(len(xs)))
}

// Clamp bounds v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
