// Package stats provides the small statistical toolkit CAAI depends on:
// empirical cumulative distribution functions with inverse-transform
// sampling, normal sampling, and summary statistics with confidence
// intervals (used by the paper's Eq. 1 ACK-loss estimator).
package stats

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// ErrInvalidECDF reports a malformed anchor list.
var ErrInvalidECDF = errors.New("stats: invalid ECDF anchors")

// Anchor is a single (value, cumulative probability) point of an empirical
// CDF. Anchors are linearly interpolated between points.
type Anchor struct {
	Value float64
	Cum   float64
}

// ECDF is a piecewise-linear empirical cumulative distribution function.
// It is immutable after construction and safe for concurrent use.
type ECDF struct {
	anchors []Anchor
}

// NewECDF builds an ECDF from anchors. Anchors must be strictly increasing
// in Value, non-decreasing in Cum, and the final Cum must be 1. A leading
// implicit anchor at Cum 0 is added if the first anchor has Cum > 0.
func NewECDF(anchors []Anchor) (*ECDF, error) {
	if len(anchors) < 2 {
		return nil, fmt.Errorf("%w: need at least 2 anchors, got %d", ErrInvalidECDF, len(anchors))
	}
	pts := make([]Anchor, 0, len(anchors)+1)
	if anchors[0].Cum > 0 {
		pts = append(pts, Anchor{Value: anchors[0].Value, Cum: 0})
	}
	pts = append(pts, anchors...)
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value {
			return nil, fmt.Errorf("%w: values not sorted at index %d", ErrInvalidECDF, i)
		}
		if pts[i].Cum < pts[i-1].Cum {
			return nil, fmt.Errorf("%w: cumulative probabilities decrease at index %d", ErrInvalidECDF, i)
		}
	}
	last := pts[len(pts)-1]
	if last.Cum != 1 {
		return nil, fmt.Errorf("%w: final cumulative probability is %v, want 1", ErrInvalidECDF, last.Cum)
	}
	return &ECDF{anchors: pts}, nil
}

// MustECDF is NewECDF that panics on error; for package-level tables whose
// anchors are compile-time constants.
func MustECDF(anchors []Anchor) *ECDF {
	e, err := NewECDF(anchors)
	if err != nil {
		panic(err)
	}
	return e
}

// CDF returns P(X <= v). Point masses (consecutive anchors with equal
// Value) are respected: the probability at the mass is the highest Cum of
// that value.
func (e *ECDF) CDF(v float64) float64 {
	pts := e.anchors
	if v < pts[0].Value {
		return 0
	}
	if v >= pts[len(pts)-1].Value {
		return 1
	}
	// First anchor strictly above v; its predecessor is at or below.
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Value > v })
	lo, hi := pts[i-1], pts[i]
	if lo.Value == v || hi.Value == lo.Value {
		return lo.Cum
	}
	frac := (v - lo.Value) / (hi.Value - lo.Value)
	return lo.Cum + frac*(hi.Cum-lo.Cum)
}

// Quantile returns the value at cumulative probability p in [0, 1],
// the inverse of CDF up to interpolation.
func (e *ECDF) Quantile(p float64) float64 {
	pts := e.anchors
	if p <= pts[0].Cum {
		return pts[0].Value
	}
	if p >= 1 {
		return pts[len(pts)-1].Value
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Cum >= p })
	lo, hi := pts[i-1], pts[i]
	if hi.Cum == lo.Cum {
		return hi.Value
	}
	frac := (p - lo.Cum) / (hi.Cum - lo.Cum)
	return lo.Value + frac*(hi.Value-lo.Value)
}

// Sample draws one value by inverse-transform sampling.
func (e *ECDF) Sample(rng *rand.Rand) float64 {
	return e.Quantile(rng.Float64())
}

// Min returns the smallest representable value.
func (e *ECDF) Min() float64 { return e.anchors[0].Value }

// Max returns the largest representable value.
func (e *ECDF) Max() float64 { return e.anchors[len(e.anchors)-1].Value }

// Points returns a copy of the anchor list (for rendering CDFs).
func (e *ECDF) Points() []Anchor {
	out := make([]Anchor, len(e.anchors))
	copy(out, e.anchors)
	return out
}
