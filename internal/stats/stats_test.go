package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustECDF(t *testing.T, anchors []Anchor) *ECDF {
	t.Helper()
	e, err := NewECDF(anchors)
	if err != nil {
		t.Fatalf("NewECDF: %v", err)
	}
	return e
}

func TestNewECDFValidation(t *testing.T) {
	tests := []struct {
		name    string
		anchors []Anchor
		wantErr bool
	}{
		{"valid", []Anchor{{0, 0}, {1, 1}}, false},
		{"implicit leading zero", []Anchor{{1, 0.5}, {2, 1}}, false},
		{"too few", []Anchor{{0, 1}}, true},
		{"unsorted values", []Anchor{{2, 0}, {1, 1}}, true},
		{"decreasing cum", []Anchor{{0, 0.5}, {1, 0.2}, {2, 1}}, true},
		{"final not one", []Anchor{{0, 0}, {1, 0.9}}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewECDF(tc.anchors)
			if (err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tc.wantErr)
			}
		})
	}
}

func TestMustECDFPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustECDF did not panic on invalid anchors")
		}
	}()
	MustECDF([]Anchor{{0, 1}})
}

func TestECDFInterpolation(t *testing.T) {
	e := mustECDF(t, []Anchor{{0, 0}, {10, 0.5}, {20, 1}})
	tests := []struct {
		v    float64
		want float64
	}{
		{-5, 0}, {0, 0}, {5, 0.25}, {10, 0.5}, {15, 0.75}, {20, 1}, {30, 1},
	}
	for _, tc := range tests {
		if got := e.CDF(tc.v); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("CDF(%v) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

func TestECDFQuantileInvertsCDF(t *testing.T) {
	e := mustECDF(t, []Anchor{{0, 0}, {1, 0.2}, {5, 0.7}, {9, 1}})
	for _, p := range []float64{0, 0.1, 0.2, 0.35, 0.7, 0.9, 1} {
		v := e.Quantile(p)
		if got := e.CDF(v); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestECDFQuantileMonotone(t *testing.T) {
	e := mustECDF(t, []Anchor{{0, 0}, {2, 0.3}, {4, 0.9}, {10, 1}})
	f := func(a, b float64) bool {
		pa, pb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if pa > pb {
			pa, pb = pb, pa
		}
		return e.Quantile(pa) <= e.Quantile(pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestECDFSampleWithinBounds(t *testing.T) {
	e := mustECDF(t, []Anchor{{1, 0}, {3, 0.5}, {7, 1}})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		v := e.Sample(rng)
		if v < e.Min() || v > e.Max() {
			t.Fatalf("sample %v outside [%v, %v]", v, e.Min(), e.Max())
		}
	}
}

func TestECDFSampleMatchesDistribution(t *testing.T) {
	e := mustECDF(t, []Anchor{{0, 0}, {1, 0.5}, {10, 1}})
	rng := rand.New(rand.NewSource(2))
	below := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if e.Sample(rng) <= 1 {
			below++
		}
	}
	frac := float64(below) / n
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("P(X<=1) = %v, want ~0.5", frac)
	}
}

func TestECDFPointsCopied(t *testing.T) {
	e := mustECDF(t, []Anchor{{0, 0}, {1, 1}})
	pts := e.Points()
	pts[0].Value = 99
	if e.Points()[0].Value == 99 {
		t.Fatal("Points leaked internal state")
	}
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{5}); got != 0 {
		t.Fatalf("StdDev single = %v", got)
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	want := 2.138089935
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("StdDev = %v, want %v", got, want)
	}
}

func TestMeanCI95UpperBound(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.15, 0.05, 0.1}
	m, ci := Mean(xs), MeanCI95(xs)
	if ci <= m {
		t.Fatalf("MeanCI95 = %v not above mean %v", ci, m)
	}
	// Single sample: CI degenerates to the mean.
	if got := MeanCI95([]float64{0.3}); got != 0.3 {
		t.Fatalf("MeanCI95 single = %v", got)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5}, {-1, 0, 10, 0}, {11, 0, 10, 10},
	}
	for _, tc := range tests {
		if got := Clamp(tc.v, tc.lo, tc.hi); got != tc.want {
			t.Errorf("Clamp(%v) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

func TestClampProperty(t *testing.T) {
	f := func(v float64) bool {
		got := Clamp(v, 0.15, 0.60)
		return got >= 0.15 && got <= 0.60
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
