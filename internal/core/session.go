package core

import (
	"math/rand"
	"time"

	"repro/internal/feature"
	"repro/internal/netem"
	"repro/internal/probe"
	"repro/internal/telemetry"
	"repro/internal/websim"
)

// Session is a reusable single-goroutine identification pipeline over one
// Identifier: it keeps a re-armable prober (trace recorders plus burst and
// ACK scratch) and the feature-extraction scratch alive across jobs, so a
// stream of Identify calls reuses buffers instead of rebuilding the whole
// pipeline per server. Results are identical to Identifier.Identify -- the
// prober is rewound to a fresh state (clock, condition, RNG) for every
// call.
//
// A Session is NOT safe for concurrent use; the engine hands one to each
// pool worker (see engine.BatchConfig.NewWorkerIdentifier) and the service
// pools them per model.
type Session struct {
	id *Identifier
	p  *probe.Prober
	sc feature.Scratch
	// vec is the persistent classify input buffer: handing the model a
	// session-owned slice (instead of slicing the result's Vector array)
	// keeps the Identification itself from escaping through the
	// interface call, which would cost one heap allocation per job.
	vec []float64

	// record enables per-stage span recording (see EnableTimings); tel,
	// when additionally non-nil, aggregates every identification's spans
	// into per-stage histograms. Both add no allocations to Identify --
	// the span clock and timings are plain values on the session.
	record bool
	tel    *telemetry.Pipeline

	// flight/trace bind Identify to a flight-recorder trace (see
	// BindTrace): when both are set and recording is on, each call also
	// emits its stage spans (and an UNSURE event) into the recorder's
	// rings. Pure atomic stores -- the zero-alloc contract holds with
	// tracing enabled, pinned by TestSessionIdentifyAllocatesNothing.
	flight *telemetry.Flight
	trace  telemetry.TraceID
}

// NewSession returns a reusable pipeline bound to this identifier's
// classifier.
func (id *Identifier) NewSession() *Session { return &Session{id: id} }

// EnableTimings turns on per-stage span recording: every Identify stamps
// gather / feature / classify wall-clock spans into the returned
// Identification's Timings. tel, when non-nil, additionally aggregates
// each span into its per-stage histogram. Recording costs a few monotonic
// clock reads per identification and allocates nothing; a session that
// never calls EnableTimings runs the exact pre-telemetry path.
func (s *Session) EnableTimings(tel *telemetry.Pipeline) {
	s.record = true
	s.tel = tel
}

// BindTrace attaches the session's next Identify calls to a trace: stage
// spans (and an UNSURE event when the label comes back unsure) are
// recorded into f's rings under tr. Requires EnableTimings to have armed
// recording; a zero tr (or nil f) detaches. Sessions are pooled, so
// callers re-bind per request.
func (s *Session) BindTrace(f *telemetry.Flight, tr telemetry.TraceID) {
	s.flight = f
	s.trace = tr
}

// Identify runs the full pipeline for one server, reusing the session's
// scratch. It matches Identifier.Identify result-for-result (span
// recording, when enabled, only fills Identification.Timings).
func (s *Session) Identify(server *websim.Server, cond netem.Condition, cfg probe.Config, rng *rand.Rand) Identification {
	if s.p == nil {
		s.p = probe.New(cfg, cond, rng)
		s.p.Reuse()
	} else {
		s.p.Rearm(cfg, cond, rng)
	}
	if !s.record {
		res := s.p.Gather(server)
		out, need := prepareResult(res, &s.sc)
		if need {
			s.classify(&out)
		}
		return out
	}

	var clock telemetry.SpanClock
	var tm telemetry.StageTimings
	start := time.Now()
	clock.StartAt(start)
	res := s.p.Gather(server)
	clock.Lap(&tm, telemetry.StageGather)
	out, need := prepareResult(res, &s.sc)
	clock.Lap(&tm, telemetry.StageFeature)
	if need {
		s.classify(&out)
		clock.Lap(&tm, telemetry.StageClassify)
	}
	out.Timings = tm
	if s.tel != nil {
		s.tel.ObserveTimings(&out.Timings)
	}
	if s.flight != nil && s.trace != 0 {
		s.flight.StageSpans(s.trace, start, &out.Timings, 0)
		if out.Label == LabelUnsure {
			s.flight.Event(s.trace, telemetry.EventUnsure, uint64(out.Confidence*1000))
		}
	}
	return out
}

// classify finishes a prepared identification through the model, feeding
// it the session-owned vector buffer (see the vec field).
func (s *Session) classify(out *Identification) {
	if s.vec == nil {
		s.vec = make([]float64, len(out.Vector))
	}
	copy(s.vec, out.Vector[:])
	label, conf := s.id.model.Classify(s.vec)
	applyLabel(out, label, conf)
}
