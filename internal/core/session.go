package core

import (
	"math/rand"

	"repro/internal/feature"
	"repro/internal/netem"
	"repro/internal/probe"
	"repro/internal/websim"
)

// Session is a reusable single-goroutine identification pipeline over one
// Identifier: it keeps a re-armable prober (trace recorders plus burst and
// ACK scratch) and the feature-extraction scratch alive across jobs, so a
// stream of Identify calls reuses buffers instead of rebuilding the whole
// pipeline per server. Results are identical to Identifier.Identify -- the
// prober is rewound to a fresh state (clock, condition, RNG) for every
// call.
//
// A Session is NOT safe for concurrent use; the engine hands one to each
// pool worker (see engine.BatchConfig.NewWorkerIdentifier) and the service
// pools them per model.
type Session struct {
	id *Identifier
	p  *probe.Prober
	sc feature.Scratch
}

// NewSession returns a reusable pipeline bound to this identifier's
// classifier.
func (id *Identifier) NewSession() *Session { return &Session{id: id} }

// Identify runs the full pipeline for one server, reusing the session's
// scratch. It matches Identifier.Identify result-for-result.
func (s *Session) Identify(server *websim.Server, cond netem.Condition, cfg probe.Config, rng *rand.Rand) Identification {
	if s.p == nil {
		s.p = probe.New(cfg, cond, rng)
		s.p.Reuse()
	} else {
		s.p.Rearm(cfg, cond, rng)
	}
	res := s.p.Gather(server)
	return s.id.identifyResult(res, &s.sc)
}
