package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/forest"
	"repro/internal/netem"
	"repro/internal/probe"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/websim"
)

func TestTrainingLabel(t *testing.T) {
	tests := []struct {
		alg  string
		wmax int
		want string
	}{
		{"RENO", 64, LabelRCSmall},
		{"RENO", 128, LabelRCSmall},
		{"RENO", 256, "RENO-BIG"},
		{"RENO", 512, "RENO-BIG"},
		{"CTCP1", 128, LabelRCSmall},
		{"CTCP1", 512, "CTCP1-BIG"},
		{"CTCP2", 64, LabelRCSmall},
		{"CTCP2", 256, "CTCP2-BIG"},
		{"CUBIC2", 64, "CUBIC2"},
		{"BIC", 512, "BIC"},
		{"VEGAS", 128, "VEGAS"},
	}
	for _, tc := range tests {
		if got := TrainingLabel(tc.alg, tc.wmax); got != tc.want {
			t.Errorf("TrainingLabel(%s, %d) = %s, want %s", tc.alg, tc.wmax, got, tc.want)
		}
	}
}

func TestGatherPairLossless(t *testing.T) {
	vec, ok := GatherPair(websim.Testbed("RENO"), netem.Lossless, 256, 536, probe.Config{}, rand.New(rand.NewSource(1)))
	if !ok {
		t.Fatal("gather failed")
	}
	if vec[0] != 0.5 {
		t.Fatalf("betaA = %v, want 0.5", vec[0])
	}
	if vec[6] != 1 {
		t.Fatalf("flag = %v, want 1", vec[6])
	}
}

// smallTrainingSet caches a reduced training set for the package's tests.
var smallTrainingSet *forest.Dataset

func trainingSet(t *testing.T) *forest.Dataset {
	t.Helper()
	if smallTrainingSet != nil {
		return smallTrainingSet
	}
	ds, err := GenerateTrainingSet(netem.MeasuredDatabase(), TrainingConfig{ConditionsPerPair: 8, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	smallTrainingSet = ds
	return ds
}

func TestGenerateTrainingSetShape(t *testing.T) {
	ds := trainingSet(t)
	// 14 algorithms x 4 wmax x 8 conditions.
	if ds.Len() != 14*4*8 {
		t.Fatalf("training set size = %d, want %d", ds.Len(), 14*4*8)
	}
	classes := ds.Classes()
	if len(classes) != 15 {
		t.Fatalf("classes = %v, want 15", classes)
	}
	found := map[string]bool{}
	for _, c := range classes {
		found[c] = true
	}
	for _, want := range []string{LabelRCSmall, "RENO-BIG", "CTCP1-BIG", "CTCP2-BIG", "BIC", "CUBIC1", "CUBIC2", "VEGAS", "WESTWOOD"} {
		if !found[want] {
			t.Errorf("class %s missing", want)
		}
	}
	// Label counts: RC-SMALL merges 3 algorithms x 2 wmax values.
	counts := map[string]int{}
	for _, s := range ds.Samples() {
		counts[s.Label]++
	}
	if counts[LabelRCSmall] != 3*2*8 {
		t.Fatalf("RC-SMALL count = %d, want %d", counts[LabelRCSmall], 3*2*8)
	}
	if counts["BIC"] != 4*8 {
		t.Fatalf("BIC count = %d, want %d", counts["BIC"], 4*8)
	}
}

func TestIdentifierEndToEnd(t *testing.T) {
	model := forest.Train(trainingSet(t), forest.Config{Trees: 40, Subspace: 4, Seed: 3})
	id := NewIdentifier(model)
	for _, alg := range []string{"RENO", "BIC", "CUBIC1", "CUBIC2", "STCP", "VEGAS", "WESTWOOD", "HTCP"} {
		got := id.Identify(websim.Testbed(alg), netem.Lossless, probe.Config{}, rand.New(rand.NewSource(5)))
		if !got.Valid {
			t.Errorf("%s: invalid (%s)", alg, got.Reason)
			continue
		}
		want := TrainingLabel(alg, got.Wmax)
		if got.Label != want {
			t.Errorf("%s: identified as %s (confidence %.2f), want %s", alg, got.Label, got.Confidence, want)
		}
	}
}

func TestIdentifierSpecialTraceShortCircuits(t *testing.T) {
	model := forest.Train(trainingSet(t), forest.Config{Trees: 20, Subspace: 4, Seed: 4})
	id := NewIdentifier(model)
	server := websim.Testbed("RENO")
	server.PostTimeoutClamp = 1
	got := id.Identify(server, netem.Lossless, probe.Config{}, rand.New(rand.NewSource(6)))
	if !got.Valid {
		t.Fatalf("invalid: %s", got.Reason)
	}
	if got.Special != trace.RemainingAtOne {
		t.Fatalf("special = %v, want RemainingAtOne", got.Special)
	}
	if got.Label != "" {
		t.Fatalf("special traces must not be classified, got %s", got.Label)
	}
	if !strings.Contains(got.String(), "Remaining at 1 Packet") {
		t.Fatalf("String = %q", got.String())
	}
}

func TestIdentifierInvalidTrace(t *testing.T) {
	model := forest.Train(trainingSet(t), forest.Config{Trees: 20, Subspace: 4, Seed: 7})
	id := NewIdentifier(model)
	server := websim.Testbed("RENO")
	server.IgnoreRTO = true
	got := id.Identify(server, netem.Lossless, probe.Config{}, rand.New(rand.NewSource(8)))
	if got.Valid {
		t.Fatal("expected invalid identification")
	}
	if got.Reason != probe.ReasonNoResponse {
		t.Fatalf("reason = %s", got.Reason)
	}
	if !strings.Contains(got.String(), "invalid") {
		t.Fatalf("String = %q", got.String())
	}
}

func TestUnsureThresholdApplied(t *testing.T) {
	model := forest.Train(trainingSet(t), forest.Config{Trees: 40, Subspace: 4, Seed: 9})
	id := NewIdentifier(model)
	// An out-of-catalogue algorithm: aggressive AIMD unlike any class.
	server := websim.Testbed("RENO")
	server.CustomAlgorithm = func() cc.Algorithm { return cc.NewHSTCP() }
	// (HSTCP through the RENO label does classify; instead check the
	// Unsure plumbing directly with a conflicted vector.)
	got := id.IdentifyResult(&probe.Result{
		TraceA: &trace.Trace{
			Env: "A", WmaxThreshold: 256, MSS: 536,
			Pre:      []int{4, 8, 16, 32, 64, 128, 256, 512},
			Post:     []int{0, 2, 4, 8, 16, 32, 64, 128, 300, 310, 315, 318, 319, 320, 321, 322, 323, 324},
			TimedOut: true,
		},
		Wmax:  256,
		MSS:   536,
		Valid: true,
	})
	if got.Label != LabelUnsure && got.Confidence < UnsureThreshold {
		t.Fatalf("low-confidence result not labeled UNSURE: %+v", got)
	}
	if got.Label == LabelUnsure && got.Confidence >= UnsureThreshold {
		t.Fatalf("UNSURE label with confidence %v", got.Confidence)
	}
	_ = server
}

func TestTrainingDeterminism(t *testing.T) {
	cfg := TrainingConfig{ConditionsPerPair: 2, Seed: 77, Algorithms: []string{"RENO", "BIC"}, WmaxValues: []int{256}}
	ds1, err := GenerateTrainingSet(netem.MeasuredDatabase(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := GenerateTrainingSet(netem.MeasuredDatabase(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds1.Samples() {
		a, b := ds1.Samples()[i], ds2.Samples()[i]
		if a.Label != b.Label {
			t.Fatalf("labels differ at %d", i)
		}
		for d := range a.Features {
			if a.Features[d] != b.Features[d] {
				t.Fatalf("features differ at %d dim %d", i, d)
			}
		}
	}
}

// lossyDatabase returns a condition database whose sampled loss rate is
// always ~99%, so every gathering attempt fails.
func lossyDatabase() *netem.Database {
	rtt := stats.MustECDF([]stats.Anchor{{Value: 0.05, Cum: 0}, {Value: 0.051, Cum: 1}})
	stddev := stats.MustECDF([]stats.Anchor{{Value: 0, Cum: 0}, {Value: 0.001, Cum: 1}})
	loss := stats.MustECDF([]stats.Anchor{{Value: 0.99, Cum: 0}, {Value: 0.995, Cum: 1}})
	return netem.NewDatabase(rtt, stddev, loss)
}

func TestGenerateTrainingSetDropsFailedGatherings(t *testing.T) {
	// Under ~99% loss no trace pair is ever valid: the generator must
	// refuse to emit zero vectors under real labels (the old behaviour)
	// and instead report that nothing was gathered.
	ds, err := GenerateTrainingSet(lossyDatabase(), TrainingConfig{
		ConditionsPerPair: 2,
		Algorithms:        []string{"RENO", "BIC"},
		WmaxValues:        []int{64},
		Seed:              5,
	})
	if err == nil {
		for _, s := range ds.Samples() {
			zero := true
			for _, v := range s.Features {
				if v != 0 {
					zero = false
				}
			}
			if zero {
				t.Fatalf("zero feature vector leaked into the training set under label %s", s.Label)
			}
		}
		t.Fatalf("expected error from all-invalid gathering, got %d samples", ds.Len())
	}
}

// constantClassifier proves the identifier is decoupled from the forest:
// any classify.Classifier backend slots in.
type constantClassifier struct {
	label string
	conf  float64
}

func (c constantClassifier) Name() string                         { return "Constant" }
func (c constantClassifier) Classify([]float64) (string, float64) { return c.label, c.conf }

func TestIdentifierAcceptsAnyClassifier(t *testing.T) {
	id := NewIdentifier(constantClassifier{label: "BIC", conf: 0.8})
	got := id.Identify(websim.Testbed("RENO"), netem.Lossless, probe.Config{}, rand.New(rand.NewSource(10)))
	if !got.Valid {
		t.Fatalf("invalid: %s", got.Reason)
	}
	if got.Label != "BIC" || got.Confidence != 0.8 {
		t.Fatalf("got %s/%v, want the backend's constant answer BIC/0.8", got.Label, got.Confidence)
	}
	if id.Classifier().Name() != "Constant" {
		t.Fatalf("Classifier() = %s", id.Classifier().Name())
	}
}

func TestIdentifierUnsureWithLowConfidenceBackend(t *testing.T) {
	id := NewIdentifier(constantClassifier{label: "BIC", conf: 0.2})
	got := id.Identify(websim.Testbed("RENO"), netem.Lossless, probe.Config{}, rand.New(rand.NewSource(11)))
	if !got.Valid {
		t.Fatalf("invalid: %s", got.Reason)
	}
	if got.Label != LabelUnsure {
		t.Fatalf("got %s, want %s below the 40%% threshold", got.Label, LabelUnsure)
	}
}
