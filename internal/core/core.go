// Package core assembles the CAAI pipeline, the paper's primary
// contribution: training-set generation on the emulated testbed (14
// algorithms x 4 wmax thresholds x 100 network conditions = 5600 feature
// vectors, with RENO/CTCP merged into RC-small at small thresholds),
// random forest training, and the identifier that turns gathered traces
// into an algorithm label with the 40% confidence rule and the special
// trace shapes of Section VII-B.
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/cc"
	"repro/internal/classify"
	"repro/internal/engine"
	"repro/internal/feature"
	"repro/internal/forest"
	"repro/internal/netem"
	"repro/internal/probe"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/websim"
)

// Labels CAAI reports beyond the plain algorithm names.
const (
	// LabelRCSmall merges RENO, CTCP1 and CTCP2 gathered with wmax of 64
	// or 128 packets, where the three are indistinguishable.
	LabelRCSmall = "RC-SMALL"
	// LabelUnsure is reported when fewer than 40% of the trees agree.
	LabelUnsure = "UNSURE"
	// bigSuffix marks RENO/CTCP labels learned at wmax >= 256.
	bigSuffix = "-BIG"
)

// UnsureThreshold is the minimum random forest confidence.
const UnsureThreshold = 0.40

// rcSmallWmax is the largest wmax at which RENO and CTCP merge.
const rcSmallWmax = 128

// TrainingLabel maps an algorithm name and the gathering wmax to the class
// label used for training and reporting.
func TrainingLabel(algorithm string, wmax int) string {
	switch algorithm {
	case "RENO", "CTCP1", "CTCP2":
		if wmax <= rcSmallWmax {
			return LabelRCSmall
		}
		return algorithm + bigSuffix
	default:
		return algorithm
	}
}

// TrainingConfig controls training set generation.
type TrainingConfig struct {
	// ConditionsPerPair is how many random network conditions are
	// emulated per (algorithm, wmax) pair; the paper uses 100.
	ConditionsPerPair int
	// WmaxValues are the thresholds to train at; default 512/256/128/64.
	WmaxValues []int
	// MSS is the training segment size (the paper found MSS has no
	// impact on feature vectors; default 536).
	MSS int
	// Algorithms defaults to all 14 registered algorithms.
	Algorithms []string
	// Seed drives all randomness deterministically.
	Seed int64
	// Parallelism bounds concurrent trace gathering; 0 = GOMAXPROCS.
	Parallelism int
	// Probe customizes the prober; zero value = paper defaults.
	Probe probe.Config
}

func (c TrainingConfig) withDefaults() TrainingConfig {
	if c.ConditionsPerPair <= 0 {
		c.ConditionsPerPair = 100
	}
	if len(c.WmaxValues) == 0 {
		c.WmaxValues = []int{512, 256, 128, 64}
	}
	if c.MSS <= 0 {
		c.MSS = 536
	}
	if len(c.Algorithms) == 0 {
		c.Algorithms = cc.CAAINames()
	}
	return c
}

// GatherPair gathers one environment A + B trace pair from server at a
// fixed wmax and mss under cond, and returns the feature vector. The bool
// reports whether environment A produced a valid trace.
func GatherPair(server *websim.Server, cond netem.Condition, wmax, mss int, cfg probe.Config, rng *rand.Rand) (feature.Vector, bool) {
	p := probe.New(cfg, cond, rng)
	page := server.LongestPageBytes
	if page <= 0 {
		page = server.DefaultPageBytes
	}
	ta, err := p.GatherEnv(server, probe.EnvA(), wmax, mss, page)
	if err != nil || !ta.Valid() {
		return feature.Vector{}, false
	}
	tb, err := p.GatherEnv(server, probe.EnvB(), wmax, mss, page)
	if err != nil {
		return feature.Vector{}, false
	}
	if tb.TimedOut && !tb.Valid() {
		return feature.Vector{}, false
	}
	return feature.Extract(ta, tb), true
}

// GenerateTrainingSet emulates the paper's testbed data collection: for
// each (algorithm, wmax) pair it draws ConditionsPerPair network
// conditions from db and gathers one feature vector each. Invalid
// gatherings are retried with fresh conditions a few times; jobs that
// still fail are dropped rather than polluting the set with zero vectors
// under a real algorithm label. It errors when every job failed.
func GenerateTrainingSet(db *netem.Database, cfg TrainingConfig) (*forest.Dataset, error) {
	cfg = cfg.withDefaults()
	type job struct {
		alg  string
		wmax int
	}
	var jobs []job
	for _, alg := range cfg.Algorithms {
		for _, wmax := range cfg.WmaxValues {
			for i := 0; i < cfg.ConditionsPerPair; i++ {
				jobs = append(jobs, job{alg, wmax})
			}
		}
	}
	samples := make([]forest.Sample, len(jobs))
	valid := make([]bool, len(jobs))
	engine.Run(len(jobs), cfg.Parallelism, func(j int) {
		jb := jobs[j]
		seed := cfg.Seed + int64(j)*1_000_003
		rng := rand.New(rand.NewSource(seed))
		var vec feature.Vector
		ok := false
		for attempt := 0; attempt < 8 && !ok; attempt++ {
			cond := db.Sample(rng)
			server := websim.Testbed(jb.alg)
			vec, ok = GatherPair(server, cond, jb.wmax, cfg.MSS, cfg.Probe, rng)
		}
		if !ok {
			return // leave valid[j] false: no vector was gathered
		}
		valid[j] = true
		samples[j] = forest.Sample{
			Features: vec.Slice(),
			Label:    TrainingLabel(jb.alg, jb.wmax),
		}
	})
	kept := samples[:0]
	have := map[string]bool{}
	for j, s := range samples {
		if valid[j] {
			kept = append(kept, s)
			have[s.Label] = true
		}
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("core: no valid training samples in %d gathering jobs", len(jobs))
	}
	// A label with zero valid samples would train a classifier that can
	// never predict it; surface the gap instead of shipping it silently.
	var missing []string
	seen := map[string]bool{}
	for _, alg := range cfg.Algorithms {
		for _, wmax := range cfg.WmaxValues {
			label := TrainingLabel(alg, wmax)
			if !have[label] && !seen[label] {
				seen[label] = true
				missing = append(missing, label)
			}
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return nil, fmt.Errorf("core: every gathering failed for labels %v (%d of %d jobs dropped)",
			missing, len(jobs)-len(kept), len(jobs))
	}
	return forest.NewDataset(kept)
}

// Identification is the outcome of identifying one Web server.
type Identification struct {
	// Label is the identified algorithm label (a training label,
	// LabelUnsure, or empty when the trace was invalid).
	Label string
	// Confidence is the random forest vote share.
	Confidence float64
	// Special is a non-None special trace shape, reported instead of a
	// classification.
	Special trace.Special
	// Vector is the extracted feature vector (zero for special traces).
	Vector feature.Vector
	// Wmax and MSS record the ladder values used.
	Wmax int
	MSS  int
	// Valid reports whether a valid trace pair was gathered.
	Valid bool
	// Reason explains invalid gatherings.
	Reason probe.InvalidReason
	// Elapsed is the simulated probing time.
	Elapsed time.Duration
	// Timings is the wall-clock per-stage span breakdown, stamped only by
	// pipelines with span recording enabled (Session.EnableTimings,
	// BlockSession.EnableTimings, IdentifyResultsObserved); zero
	// otherwise. Unlike Elapsed -- which is simulated probe time -- these
	// are real host-clock durations.
	Timings telemetry.StageTimings
}

// String renders the identification outcome.
func (id Identification) String() string {
	switch {
	case !id.Valid:
		return fmt.Sprintf("invalid trace (%s)", id.Reason)
	case id.Special != trace.SpecialNone:
		return fmt.Sprintf("special trace: %s (wmax=%d)", id.Special, id.Wmax)
	default:
		return fmt.Sprintf("%s (confidence %.0f%%, wmax=%d, mss=%d)", id.Label, id.Confidence*100, id.Wmax, id.MSS)
	}
}

// Identifier classifies Web servers from gathered traces using any
// trained classifier backend (the paper's random forest by default). Safe
// for concurrent use when the classifier is.
type Identifier struct {
	model classify.Classifier
}

// NewIdentifier wraps a trained classifier (e.g. *forest.Forest, or any of
// the internal/ml backends).
func NewIdentifier(c classify.Classifier) *Identifier { return &Identifier{model: c} }

// Classifier exposes the underlying model.
func (id *Identifier) Classifier() classify.Classifier { return id.model }

// IdentifyResult classifies an already-gathered probe result.
func (id *Identifier) IdentifyResult(res *probe.Result) Identification {
	var sc feature.Scratch
	return id.identifyResult(res, &sc)
}

// identifyResult is IdentifyResult with caller-owned feature scratch (the
// Session hot path reuses one across jobs).
func (id *Identifier) identifyResult(res *probe.Result, sc *feature.Scratch) Identification {
	out, need := prepareResult(res, sc)
	if need {
		label, conf := id.model.Classify(out.Vector[:])
		applyLabel(&out, label, conf)
	}
	return out
}

// prepareResult runs every pipeline stage before model inference --
// validity, special-shape detection, feature extraction -- and reports
// whether the outcome still needs a classification. It is the per-sample
// half of the block paths: BlockSession and IdentifyResults prepare
// samples one at a time and classify whole blocks at once.
func prepareResult(res *probe.Result, sc *feature.Scratch) (Identification, bool) {
	out := Identification{Wmax: res.Wmax, MSS: res.MSS, Reason: res.Reason}
	if !res.Valid {
		return out, false
	}
	out.Valid = true
	if sp := trace.DetectSpecial(res.TraceA); sp != trace.SpecialNone {
		out.Special = sp
		return out, false
	}
	out.Vector = feature.ExtractWith(sc, res.TraceA, res.TraceB)
	return out, true
}

// applyLabel finishes a prepared identification with the model's verdict,
// applying the paper's 40% Unsure rule.
func applyLabel(out *Identification, label string, conf float64) {
	out.Confidence = conf
	if conf < UnsureThreshold {
		out.Label = LabelUnsure
		return
	}
	out.Label = label
}

// Identify gathers traces from server with a fresh prober under cond and
// classifies them: the full CAAI pipeline for one server.
func (id *Identifier) Identify(server *websim.Server, cond netem.Condition, cfg probe.Config, rng *rand.Rand) Identification {
	p := probe.New(cfg, cond, rng)
	res := p.Gather(server)
	return id.IdentifyResult(res)
}
