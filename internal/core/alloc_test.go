package core

import (
	"math/rand"
	"testing"

	"repro/internal/netem"
	"repro/internal/probe"
	"repro/internal/telemetry"
	"repro/internal/websim"
)

// TestSessionIdentifyAllocatesNothing pins the hot-path contract the bench
// budget enforces machine-side: after warm-up, a Session.Identify with span
// recording enabled and a live telemetry pipeline attached performs zero
// heap allocations per identification -- the prober recycles its traces,
// sender, and congestion avoidance components, the classify input goes
// through the session-owned buffer, and the span clock and histograms are
// plain values and atomics. The untimed session is held to the same zero,
// so recording provably adds nothing. A third session additionally binds a
// live flight recorder, pinning the tracing path (StageSpans into the
// preallocated rings, the UNSURE event probe) to the same zero.
func TestSessionIdentifyAllocatesNothing(t *testing.T) {
	id := NewIdentifier(stubClassifier{})
	server := websim.Testbed("CUBIC2")

	var tel telemetry.Pipeline
	timed := id.NewSession()
	timed.EnableTimings(&tel)
	plain := id.NewSession()

	flight := telemetry.NewFlight(telemetry.FlightConfig{SampleN: 1})
	defer flight.Close()
	traced := id.NewSession()
	traced.EnableTimings(&tel)
	traced.BindTrace(flight, flight.Mint())

	for name, sess := range map[string]*Session{"recording": timed, "untimed": plain, "traced": traced} {
		rng := rand.New(rand.NewSource(7))
		sess.Identify(server, netem.Lossless, probe.Config{}, rng) // warm buffers
		var out Identification
		avg := testing.AllocsPerRun(20, func() {
			out = sess.Identify(server, netem.Lossless, probe.Config{}, rng)
		})
		if !out.Valid {
			t.Fatalf("%s session: warm identify came back invalid: %+v", name, out)
		}
		if avg != 0 {
			t.Errorf("%s session: Identify allocates %.1f objects/op after warm-up, want 0", name, avg)
		}
	}

	stamped := timed.Identify(server, netem.Lossless, probe.Config{}, rand.New(rand.NewSource(8)))
	if stamped.Timings.Total() == 0 {
		t.Error("recording session stamped no Timings; the zero-allocation claim would be vacuous")
	}
}
