package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/classify"
	"repro/internal/forest"
	"repro/internal/netem"
	"repro/internal/probe"
	"repro/internal/websim"
	"repro/internal/xrand"
)

// blockJobs is a small mixed workload: several algorithms under sampled
// lossy conditions, so the buffered outcomes span confident labels,
// Unsure calls, and the occasional invalid gathering.
func blockJobs(n int) (servers []*websim.Server, conds []netem.Condition, seeds []int64) {
	algs := []string{"RENO", "BIC", "CUBIC2", "VEGAS", "STCP", "HTCP"}
	db := netem.MeasuredDatabase()
	condRng := rand.New(rand.NewSource(71))
	for i := 0; i < n; i++ {
		servers = append(servers, websim.Testbed(algs[i%len(algs)]))
		conds = append(conds, db.Sample(condRng))
		seeds = append(seeds, int64(500+i))
	}
	return
}

// TestBlockSessionMatchesIdentifier: a BlockSession must reproduce the
// plain Identifier's results job for job, for both a batched backend (the
// forest, classified at Flush) and a scalar-only backend (classified
// eagerly at Gather) -- and emission must preserve gather order and tags.
func TestBlockSessionMatchesIdentifier(t *testing.T) {
	batched := forest.Train(trainingSet(t), forest.Config{Trees: 20, Subspace: 4, Seed: 51})
	for _, tc := range []struct {
		name  string
		model classify.Classifier
	}{
		{"forest-batched", batched},
		{"scalar-backend", stubClassifier{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			id := NewIdentifier(tc.model)
			if _, isBatch := tc.model.(classify.BatchClassifier); isBatch != (tc.name == "forest-batched") {
				t.Fatalf("backend batching = %v, test expects the opposite", isBatch)
			}
			bs := id.NewBlockSession()
			servers, conds, seeds := blockJobs(9)
			want := make([]Identification, len(servers))
			for i := range servers {
				want[i] = id.Identify(servers[i], conds[i], probe.Config{}, xrand.New(seeds[i]))
				bs.Gather(i, servers[i], conds[i], probe.Config{}, xrand.New(seeds[i]))
			}
			if bs.Buffered() != len(servers) {
				t.Fatalf("Buffered() = %d, want %d", bs.Buffered(), len(servers))
			}
			var tags []int
			var got []Identification
			bs.Flush(func(tag int, out Identification) {
				tags = append(tags, tag)
				got = append(got, out)
			})
			if bs.Buffered() != 0 {
				t.Fatalf("Buffered() = %d after Flush, want 0", bs.Buffered())
			}
			for i := range servers {
				if tags[i] != i {
					t.Fatalf("emission %d has tag %d, want gather order", i, tags[i])
				}
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("job %d: block result %+v != identifier result %+v", i, got[i], want[i])
				}
			}
			// A flushed session must be reusable: the next block reuses the
			// prober and scratch without leaking prior state.
			bs.Gather(0, servers[0], conds[0], probe.Config{}, xrand.New(seeds[0]))
			bs.Flush(func(_ int, out Identification) {
				if !reflect.DeepEqual(out, want[0]) {
					t.Fatalf("reused session drifted: %+v != %+v", out, want[0])
				}
			})
			// Flushing an empty session is a no-op.
			bs.Flush(func(int, Identification) { t.Fatal("empty flush emitted a result") })
		})
	}
}

// TestIdentifyResultsMatchesIdentifyResult: the gathered-results block
// entry point must agree with IdentifyResult element for element across
// valid, invalid, and special outcomes.
func TestIdentifyResultsMatchesIdentifyResult(t *testing.T) {
	model := forest.Train(trainingSet(t), forest.Config{Trees: 20, Subspace: 4, Seed: 52})
	id := NewIdentifier(model)
	servers, conds, seeds := blockJobs(8)
	var ress []*probe.Result
	for i := range servers {
		p := probe.New(probe.Config{}, conds[i], xrand.New(seeds[i]))
		ress = append(ress, p.Gather(servers[i]))
	}
	// A special-shape server and an invalid gathering round out the mix.
	special := websim.Testbed("RENO")
	special.PostTimeoutClamp = 1
	p := probe.New(probe.Config{}, netem.Lossless, xrand.New(1))
	ress = append(ress, p.Gather(special))
	broken := websim.Testbed("RENO")
	broken.IgnoreRTO = true
	p = probe.New(probe.Config{}, netem.Lossless, xrand.New(2))
	ress = append(ress, p.Gather(broken))

	for _, par := range []int{0, 1, 3} {
		outs, err := id.IdentifyResultsCtx(context.Background(), ress, par)
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range ress {
			want := id.IdentifyResult(res)
			if !reflect.DeepEqual(outs[i], want) {
				t.Fatalf("parallelism %d result %d: %+v != %+v", par, i, outs[i], want)
			}
		}
	}
}
