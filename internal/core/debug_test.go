package core

import (
	"math/rand"
	"testing"

	"repro/internal/forest"
	"repro/internal/netem"
)

// TestDebugCrossValidation trains a reduced training set and reports the
// 10-fold cross validation accuracy; run with -v to inspect.
func TestDebugCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	db := netem.MeasuredDatabase()
	ds, err := GenerateTrainingSet(db, TrainingConfig{ConditionsPerPair: 25, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("training set: %d samples, %d classes", ds.Len(), len(ds.Classes()))
	m := forest.CrossValidate(ds, forest.Config{Trees: 80, Subspace: 4, Seed: 7}, 10, rand.New(rand.NewSource(9)))
	t.Logf("overall accuracy: %.2f%%", m.Accuracy()*100)
	for _, c := range m.Classes() {
		t.Logf("%-12s %.2f%%", c, m.ClassAccuracy(c)*100)
	}
}
