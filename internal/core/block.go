package core

import (
	"context"
	"math/rand"
	"time"

	"repro/internal/classify"
	"repro/internal/engine"
	"repro/internal/feature"
	"repro/internal/netem"
	"repro/internal/probe"
	"repro/internal/telemetry"
	"repro/internal/websim"
)

// BlockSession is the block-inference counterpart of Session: it probes
// jobs one at a time like Session.Identify but defers the model call,
// parking the gathered feature vectors until Flush classifies the whole
// block through the classifier's batched kernel (one forest sweep for up
// to 64 samples instead of 64 scalar tree walks). Backends without a
// batched entry point fall back to per-vector classification at Flush, so
// results are always identical to Session.Identify job for job --
// grouping into blocks never changes an outcome.
//
// A BlockSession is NOT safe for concurrent use; engine.IdentifyBatch
// hands one to each pool worker (see engine.BatchConfig.NewWorkerBlock)
// and flushes it whenever a block fills or the worker runs out of jobs.
type BlockSession struct {
	id    *Identifier
	batch classify.BatchClassifier // nil: scalar fallback at Flush
	p     *probe.Prober
	sc    feature.Scratch

	tags    []int
	outs    []Identification
	pending []int32 // indices into outs that still need a classification
	vecs    [][]float64
	labels  []string
	confs   []float64

	// record/tel mirror Session's span recording (see EnableTimings). A
	// deferred sample's classify span is its share of the block's one
	// batched call, stamped at Flush.
	record bool
	tel    *telemetry.Pipeline

	// flight/trace mirror Session.BindTrace: gather/feature spans are
	// recorded per job at Gather (tagged with the job tag), deferred
	// classify shares at Flush, plus an UNSURE event per unsure outcome.
	flight *telemetry.Flight
	trace  telemetry.TraceID
}

// NewBlockSession returns a reusable block-inference pipeline bound to
// this identifier's classifier. Buffers are sized for one default block
// up front so a session filled to engine.DefaultBlockSize never
// reallocates mid-batch (larger blocks still grow transparently).
func (id *Identifier) NewBlockSession() *BlockSession {
	bc, _ := id.model.(classify.BatchClassifier)
	bs := &BlockSession{
		id:    id,
		batch: bc,
		tags:  make([]int, 0, engine.DefaultBlockSize),
		outs:  make([]Identification, 0, engine.DefaultBlockSize),
	}
	if bc != nil {
		bs.pending = make([]int32, 0, engine.DefaultBlockSize)
		bs.vecs = make([][]float64, 0, engine.DefaultBlockSize)
		bs.labels = make([]string, engine.DefaultBlockSize)
		bs.confs = make([]float64, engine.DefaultBlockSize)
	}
	return bs
}

// EnableTimings turns on per-stage span recording, exactly as
// Session.EnableTimings does for the scalar path: every emitted
// Identification carries its gather / feature / classify spans in Timings,
// and tel (when non-nil) aggregates them at Flush. A sample classified in
// the block's batched call is charged an equal share of that one call.
func (bs *BlockSession) EnableTimings(tel *telemetry.Pipeline) {
	bs.record = true
	bs.tel = tel
}

// BindTrace attaches subsequent Gather/Flush span recording to a trace
// in f's rings (see Session.BindTrace). Batch jobs bind the accepting
// request's trace, so one ID correlates the HTTP submission with every
// worker's per-job spans.
func (bs *BlockSession) BindTrace(f *telemetry.Flight, tr telemetry.TraceID) {
	bs.flight = f
	bs.trace = tr
}

// Gather probes one server exactly as Session.Identify would -- same
// prober reuse, same RNG stream -- and buffers the prepared outcome under
// tag. Classification is deferred to Flush only when the backend has a
// batched kernel; for scalar-only backends deferral buys nothing, so the
// model runs right here and the session keeps Session.Identify's per-job
// timing (a gathered job is a finished job). Outcomes that need no model
// call (invalid traces, special shapes) are buffered as-is; Flush emits
// every gathered job in gather order either way.
func (bs *BlockSession) Gather(tag int, server *websim.Server, cond netem.Condition, cfg probe.Config, rng *rand.Rand) {
	if bs.p == nil {
		bs.p = probe.New(cfg, cond, rng)
		bs.p.Reuse()
	} else {
		bs.p.Rearm(cfg, cond, rng)
	}
	var clock telemetry.SpanClock
	var tm telemetry.StageTimings
	var gstart time.Time
	if bs.record {
		gstart = time.Now()
		clock.StartAt(gstart)
	}
	res := bs.p.Gather(server)
	clock.Lap(&tm, telemetry.StageGather)
	out, need := prepareResult(res, &bs.sc)
	clock.Lap(&tm, telemetry.StageFeature)
	if need {
		if bs.batch == nil {
			label, conf := bs.id.model.Classify(out.Vector[:])
			applyLabel(&out, label, conf)
			clock.Lap(&tm, telemetry.StageClassify)
		} else {
			bs.pending = append(bs.pending, int32(len(bs.outs)))
		}
	}
	out.Timings = tm
	if bs.record && bs.flight != nil && bs.trace != 0 {
		// Deferred jobs record gather+feature now (classify is still 0);
		// their classify share is recorded at Flush under the same tag.
		bs.flight.StageSpans(bs.trace, gstart, &out.Timings, uint64(tag)&0xffffffff)
	}
	bs.tags = append(bs.tags, tag)
	bs.outs = append(bs.outs, out)
}

// Buffered reports how many gathered jobs await Flush.
func (bs *BlockSession) Buffered() int { return len(bs.outs) }

// Flush classifies every pending vector in one batched model call,
// finishes the buffered identifications with the Unsure rule, and emits
// each (tag, Identification) in gather order, leaving the session empty.
func (bs *BlockSession) Flush(emit func(tag int, out Identification)) {
	if len(bs.pending) > 0 {
		bs.vecs = bs.vecs[:0]
		for _, k := range bs.pending {
			bs.vecs = append(bs.vecs, bs.outs[k].Vector[:])
		}
		n := len(bs.pending)
		if cap(bs.labels) < n {
			bs.labels = make([]string, n)
			bs.confs = make([]float64, n)
		}
		labels, confs := bs.labels[:n], bs.confs[:n]
		var start time.Time
		if bs.record {
			start = time.Now()
		}
		bs.batch.ClassifyBatch(bs.vecs, labels, confs)
		var share time.Duration
		if bs.record {
			share = time.Since(start) / time.Duration(n)
		}
		for i, k := range bs.pending {
			applyLabel(&bs.outs[k], labels[i], confs[i])
			bs.outs[k].Timings[telemetry.StageClassify] = share
			if bs.record && bs.flight != nil && bs.trace != 0 {
				bs.flight.Span(bs.trace, telemetry.StageClassify, start, share, uint64(bs.tags[k])&0xffffffff)
			}
		}
	}
	for i := range bs.outs {
		if bs.tel != nil {
			bs.tel.ObserveTimings(&bs.outs[i].Timings)
		}
		if bs.record && bs.flight != nil && bs.trace != 0 && bs.outs[i].Label == LabelUnsure {
			bs.flight.Event(bs.trace, telemetry.EventUnsure, uint64(bs.outs[i].Confidence*1000))
		}
		emit(bs.tags[i], bs.outs[i])
	}
	bs.tags = bs.tags[:0]
	bs.outs = bs.outs[:0]
	bs.pending = bs.pending[:0]
}

// IdentifyResults classifies a batch of already-gathered probe results:
// the pipeline for traces that arrived without probing (reassembled
// packet captures, replayed traces). Preparation -- special-shape
// detection and feature extraction -- runs per sample; the model then
// classifies every vector in one batched inference call. Results are
// identical to calling IdentifyResult per element.
func (id *Identifier) IdentifyResults(ress []*probe.Result) []Identification {
	outs, _ := id.IdentifyResultsCtx(context.Background(), ress, 0)
	return outs
}

// IdentifyResultsCtx is IdentifyResults with cancellation and bounded
// parallelism for the preparation stage (0 = all CPUs). On cancellation
// the samples already prepared are still classified and finished; the
// rest stay zero. It returns ctx.Err() when cancelled.
func (id *Identifier) IdentifyResultsCtx(ctx context.Context, ress []*probe.Result, parallelism int) ([]Identification, error) {
	return id.identifyResults(ctx, ress, parallelism, false, nil)
}

// IdentifyResultsObserved is IdentifyResultsCtx with per-stage span
// recording: every sample's feature and classify spans are stamped into
// its Timings (classify as its share of the one batched model call), and
// tel, when non-nil, aggregates them into per-stage histograms. The
// passive path charges decode/reassembly to StageGather upstream of this
// call (see internal/flow).
func (id *Identifier) IdentifyResultsObserved(ctx context.Context, ress []*probe.Result, parallelism int, tel *telemetry.Pipeline) ([]Identification, error) {
	return id.identifyResults(ctx, ress, parallelism, true, tel)
}

func (id *Identifier) identifyResults(ctx context.Context, ress []*probe.Result, parallelism int, record bool, tel *telemetry.Pipeline) ([]Identification, error) {
	outs := make([]Identification, len(ress))
	need := make([]bool, len(ress))
	scratch := make([]feature.Scratch, engine.Workers(len(ress), parallelism))
	err := engine.RunWorkers(ctx, len(ress), parallelism, func(w, i int) {
		if record {
			start := time.Now()
			outs[i], need[i] = prepareResult(ress[i], &scratch[w])
			outs[i].Timings[telemetry.StageFeature] = time.Since(start)
		} else {
			outs[i], need[i] = prepareResult(ress[i], &scratch[w])
		}
	})
	var idxs []int
	var vecs [][]float64
	for i := range outs {
		if need[i] {
			idxs = append(idxs, i)
			vecs = append(vecs, outs[i].Vector[:])
		}
	}
	if len(idxs) > 0 {
		labels := make([]string, len(idxs))
		confs := make([]float64, len(idxs))
		var start time.Time
		if record {
			start = time.Now()
		}
		classify.Batch(id.model, vecs, labels, confs)
		var share time.Duration
		if record {
			share = time.Since(start) / time.Duration(len(idxs))
		}
		for k, i := range idxs {
			applyLabel(&outs[i], labels[k], confs[k])
			outs[i].Timings[telemetry.StageClassify] = share
		}
	}
	if tel != nil {
		for i := range outs {
			tel.ObserveTimings(&outs[i].Timings)
		}
	}
	return outs, err
}
