package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/classify"
	"repro/internal/netem"
	"repro/internal/probe"
	"repro/internal/websim"
)

// stubClassifier keeps session tests independent of forest training.
type stubClassifier struct{}

func (stubClassifier) Name() string { return "stub" }
func (stubClassifier) Classify(features []float64) (string, float64) {
	if features[0] >= 0.6 { // feature.BetaA
		return "CUBICISH", 0.9
	}
	return "RENOISH", 0.8
}

var _ classify.Classifier = stubClassifier{}

// TestSessionMatchesIdentifier: a reused Session must reproduce the plain
// Identifier's results job for job -- across algorithms, lossy conditions,
// and repeated use of the same session (Rearm rewinds the clock, the
// recorders recycle trace buffers).
func TestSessionMatchesIdentifier(t *testing.T) {
	id := NewIdentifier(stubClassifier{})
	sess := id.NewSession()
	db := netem.MeasuredDatabase()
	condRng := rand.New(rand.NewSource(31))

	algs := []string{"CUBIC2", "RENO", "VEGAS", "WESTWOOD", "BIC", "ILLINOIS"}
	for i, alg := range algs {
		server := websim.Testbed(alg)
		cond := db.Sample(condRng)
		seed := int64(1000 + i)

		want := id.Identify(websim.Testbed(alg), cond, probe.Config{}, rand.New(rand.NewSource(seed)))
		got := sess.Identify(server, cond, probe.Config{}, rand.New(rand.NewSource(seed)))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: session result %+v != identifier result %+v", alg, got, want)
		}
	}
}
