package eval

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/cc"
	"repro/internal/classify"
	"repro/internal/feature"
	"repro/internal/forest"
)

// These are the pipeline-level equivalence guards for block inference:
// ClassifyBatch must agree with Classify bit for bit -- labels,
// confidences, and raw vote counts -- on realistic vectors (gathered over
// the whole cc registry), on the committed golden model, and on both the
// quantized (float32 threshold arena) and unquantized batched paths. The
// block paths threaded through engine/service/flow/eval lean entirely on
// this property: grouping samples into blocks must never change a result.

// registryVectors gathers one probe per registered CAAI algorithm against
// the golden condition and expands the extracted vectors into a corpus
// large enough to span several 64-lane kernel chunks, with hostile
// entries (short, empty, negated, zeroed) mixed in to pin the
// short-vector and out-of-distribution contracts.
func registryVectors(t *testing.T) [][]float64 {
	t.Helper()
	var vecs [][]float64
	for i, alg := range cc.CAAINames() {
		res := gatherGolden(alg, goldenSeed(i))
		if !res.Valid {
			t.Fatalf("gathering for %s went invalid (%s)", alg, res.Reason)
		}
		vec := feature.Extract(res.TraceA, res.TraceB)
		vecs = append(vecs, vec.Slice())
	}
	rng := rand.New(rand.NewSource(271828))
	base := len(vecs)
	for len(vecs) < 150 {
		src := vecs[rng.Intn(base)]
		switch rng.Intn(6) {
		case 0: // short vector: the scalar walk refuses it with zero votes
			vecs = append(vecs, src[:rng.Intn(len(src))])
		case 1: // empty
			vecs = append(vecs, []float64{})
		case 2: // sign-flipped
			neg := make([]float64, len(src))
			for d, v := range src {
				neg[d] = -v
			}
			vecs = append(vecs, neg)
		case 3: // zero vector
			vecs = append(vecs, make([]float64, len(src)))
		default: // jittered copy
			cp := make([]float64, len(src))
			for d, v := range src {
				cp[d] = v * (0.8 + 0.4*rng.Float64())
			}
			vecs = append(vecs, cp)
		}
	}
	return vecs
}

// assertBatchEquivalence pins ClassifyBatch and VotesBatch against their
// scalar counterparts on every vector, bit for bit.
func assertBatchEquivalence(t *testing.T, f *forest.Forest, vecs [][]float64) {
	t.Helper()
	m := len(vecs)
	labels := make([]string, m)
	confs := make([]float64, m)
	f.ClassifyBatch(vecs, labels, confs)
	nc := f.NumClasses()
	votes := f.VotesBatch(nil, vecs, nil)
	for i, v := range vecs {
		wantLabel, wantConf := f.Classify(v)
		if labels[i] != wantLabel {
			t.Fatalf("vector %d (len %d): batch label %q != scalar %q", i, len(v), labels[i], wantLabel)
		}
		if math.Float64bits(confs[i]) != math.Float64bits(wantConf) {
			t.Fatalf("vector %d: batch confidence %v != scalar %v (bit-exact required)", i, confs[i], wantConf)
		}
		wantVotes := f.Votes(v)
		row := votes[i*nc : (i+1)*nc]
		for c := range row {
			if int(row[c]) != wantVotes[c] {
				t.Fatalf("vector %d class %d: batch votes %d != scalar %d", i, c, row[c], wantVotes[c])
			}
		}
	}
}

// TestClassifyBatchMatchesScalarOnGoldenModel runs the equivalence
// property on the committed golden model against vectors gathered over
// the full cc registry.
func TestClassifyBatchMatchesScalarOnGoldenModel(t *testing.T) {
	model, err := classify.LoadFile(filepath.Join(goldenDir, goldenModelFile))
	if err != nil {
		t.Fatalf("golden model missing (regenerate with -update): %v", err)
	}
	f, ok := model.(*forest.Forest)
	if !ok {
		t.Fatalf("golden model is %T, want *forest.Forest", model)
	}
	assertBatchEquivalence(t, f, registryVectors(t))
}

// TestClassifyBatchMatchesScalarQuantization runs the property on both
// batched arenas: a forest whose split thresholds are all exactly
// representable in float32 (trained on a coarse dyadic grid, so the
// quantized arena is built) and one trained on arbitrary float64s (so it
// is not).
func TestClassifyBatchMatchesScalarQuantization(t *testing.T) {
	vecs := registryVectors(t)
	train := func(name string, quantize bool) *forest.Forest {
		rng := rand.New(rand.NewSource(31415))
		var samples []forest.Sample
		for i := 0; i < 320; i++ {
			fs := make([]float64, feature.NumFeatures)
			for d := range fs {
				if quantize {
					// k/512 grid: split midpoints land on k/1024, exactly
					// representable in float32.
					fs[d] = float64(rng.Intn(4096)) / 512
				} else {
					fs[d] = rng.Float64() * 8
				}
			}
			samples = append(samples, forest.Sample{Features: fs, Label: cc.CAAINames()[i%7]})
		}
		ds, err := forest.NewDataset(samples)
		if err != nil {
			t.Fatal(err)
		}
		f := forest.Train(ds, forest.Config{Trees: 31, Subspace: 3, Seed: 92653})
		if f.Quantized() != quantize {
			t.Fatalf("%s: Quantized() = %v, want %v", name, f.Quantized(), quantize)
		}
		return f
	}
	t.Run("quantized", func(t *testing.T) {
		assertBatchEquivalence(t, train("quantized", true), vecs)
	})
	t.Run("unquantized", func(t *testing.T) {
		assertBatchEquivalence(t, train("unquantized", false), vecs)
	})
}
