package eval

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/feature"
	"repro/internal/forest"
	"repro/internal/netem"
	"repro/internal/probe"
	"repro/internal/trace"
	"repro/internal/websim"
	"repro/internal/xrand"
)

// -update regenerates the golden fixtures:
//
//	go test ./internal/eval -run TestGolden -update
//
// Do this only when a deliberate pipeline change invalidates them, and
// say so in the commit.
var update = flag.Bool("update", false, "regenerate golden fixtures")

const (
	goldenDir       = "testdata/golden"
	goldenTraces    = "traces.json"
	goldenModelFile = "model.json"
)

// goldenCondition is the pinned network condition of every fixture: mild
// jitter and loss, so the RNG-consuming paths (jitter draws, drop draws)
// are all exercised and any change to their draw order shifts the traces.
func goldenCondition() netem.Condition {
	return netem.Condition{
		MeanRTT:   50 * time.Millisecond,
		RTTStdDev: 3 * time.Millisecond,
		LossRate:  0.01,
	}
}

// goldenTrace is the serialized form of one trace.
type goldenTrace struct {
	Pre           []int `json:"pre"`
	Post          []int `json:"post"`
	TimedOut      bool  `json:"timed_out"`
	DataExhausted bool  `json:"data_exhausted,omitempty"`
	WmaxThreshold int   `json:"wmax_threshold"`
	MSS           int   `json:"mss"`
}

func toGoldenTrace(t *trace.Trace) goldenTrace {
	return goldenTrace{
		Pre:           append([]int{}, t.Pre...),
		Post:          append([]int{}, t.Post...),
		TimedOut:      t.TimedOut,
		DataExhausted: t.DataExhausted,
		WmaxThreshold: t.WmaxThreshold,
		MSS:           t.MSS,
	}
}

// goldenFixture pins the full pipeline for one algorithm: the gathered
// trace pair, the extracted feature vector, and the committed model's
// classification — all bit-exact.
type goldenFixture struct {
	Algorithm  string      `json:"algorithm"`
	Seed       int64       `json:"seed"`
	Wmax       int         `json:"wmax"`
	MSS        int         `json:"mss"`
	TraceA     goldenTrace `json:"trace_a"`
	TraceB     goldenTrace `json:"trace_b"`
	Vector     []float64   `json:"vector"`
	Label      string      `json:"label"`
	Confidence float64     `json:"confidence"`
}

type goldenFile struct {
	Description string          `json:"description"`
	Condition   string          `json:"condition"`
	Fixtures    []goldenFixture `json:"fixtures"`
}

// gatherGolden runs the real prober for one algorithm at its pinned seed.
func gatherGolden(alg string, seed int64) *probe.Result {
	p := probe.New(probe.Config{}, goldenCondition(), xrand.New(seed))
	return p.Gather(websim.Testbed(alg))
}

// goldenSeed pins each algorithm's probe seed by its position in the
// sorted CAAI name list.
func goldenSeed(i int) int64 { return 4242 + int64(i)*7919 }

// trainGoldenModel trains the small committed forest (deterministic, a
// few seconds at this scale).
func trainGoldenModel(t *testing.T) classify.Classifier {
	t.Helper()
	ds, err := core.GenerateTrainingSet(netem.MeasuredDatabase(), core.TrainingConfig{
		ConditionsPerPair: 6,
		Seed:              991,
	})
	if err != nil {
		t.Fatal(err)
	}
	return forest.Train(ds, forest.Config{Trees: 20, Subspace: 4, Seed: 992})
}

// TestGoldenTraces asserts the probe -> feature -> forest pipeline is
// bit-stable against the committed fixtures: trace gathering reproduces
// the recorded window traces exactly, feature extraction reproduces the
// recorded vectors bit for bit, and the committed model file classifies
// them to the recorded labels and confidences. This is the guard rail for
// arena/scratch refactors like PR 3: any change that moves a single RNG
// draw, window sample, float operation, or tree walk fails here first,
// loudly, instead of silently shifting accuracy.
func TestGoldenTraces(t *testing.T) {
	names := cc.CAAINames()

	if *update {
		model := trainGoldenModel(t)
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := classify.SaveFile(filepath.Join(goldenDir, goldenModelFile), model); err != nil {
			t.Fatal(err)
		}
		file := goldenFile{
			Description: "bit-stability fixtures: probe traces, feature vectors, and committed-model classifications per CAAI algorithm",
			Condition:   goldenCondition().String(),
		}
		for i, alg := range names {
			res := gatherGolden(alg, goldenSeed(i))
			if !res.Valid {
				t.Fatalf("golden gathering for %s is invalid (%s); pick another seed", alg, res.Reason)
			}
			vec := feature.Extract(res.TraceA, res.TraceB)
			label, conf := model.Classify(vec.Slice())
			file.Fixtures = append(file.Fixtures, goldenFixture{
				Algorithm:  alg,
				Seed:       goldenSeed(i),
				Wmax:       res.Wmax,
				MSS:        res.MSS,
				TraceA:     toGoldenTrace(res.TraceA),
				TraceB:     toGoldenTrace(res.TraceB),
				Vector:     vec.Slice(),
				Label:      label,
				Confidence: conf,
			})
		}
		data, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(goldenDir, goldenTraces), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d fixtures) and %s", goldenTraces, len(file.Fixtures), goldenModelFile)
		return
	}

	data, err := os.ReadFile(filepath.Join(goldenDir, goldenTraces))
	if err != nil {
		t.Fatalf("golden fixtures missing (run with -update to create them): %v", err)
	}
	var file goldenFile
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatal(err)
	}
	if len(file.Fixtures) != len(names) {
		t.Fatalf("fixtures cover %d algorithms, registry has %d CAAI targets — regenerate with -update",
			len(file.Fixtures), len(names))
	}
	model, err := classify.LoadFile(filepath.Join(goldenDir, goldenModelFile))
	if err != nil {
		t.Fatal(err)
	}

	for _, fx := range file.Fixtures {
		fx := fx
		t.Run(fx.Algorithm, func(t *testing.T) {
			res := gatherGolden(fx.Algorithm, fx.Seed)
			if !res.Valid {
				t.Fatalf("gathering went invalid: %s", res.Reason)
			}
			if res.Wmax != fx.Wmax || res.MSS != fx.MSS {
				t.Fatalf("ladder settled at wmax=%d mss=%d, fixture has wmax=%d mss=%d",
					res.Wmax, res.MSS, fx.Wmax, fx.MSS)
			}
			if got := toGoldenTrace(res.TraceA); !reflect.DeepEqual(got, fx.TraceA) {
				t.Fatalf("trace A drifted:\n got %+v\nwant %+v", got, fx.TraceA)
			}
			if got := toGoldenTrace(res.TraceB); !reflect.DeepEqual(got, fx.TraceB) {
				t.Fatalf("trace B drifted:\n got %+v\nwant %+v", got, fx.TraceB)
			}

			vec := feature.Extract(res.TraceA, res.TraceB)
			if len(fx.Vector) != feature.NumFeatures {
				t.Fatalf("fixture vector has %d elements", len(fx.Vector))
			}
			for i, want := range fx.Vector {
				if math.Float64bits(vec[i]) != math.Float64bits(want) {
					t.Fatalf("feature %d drifted: got %v (%#x), want %v (%#x)",
						i, vec[i], math.Float64bits(vec[i]), want, math.Float64bits(want))
				}
			}

			label, conf := model.Classify(vec.Slice())
			if label != fx.Label {
				t.Fatalf("classification drifted: got %s, want %s", label, fx.Label)
			}
			if math.Float64bits(conf) != math.Float64bits(fx.Confidence) {
				t.Fatalf("confidence drifted: got %v, want %v", conf, fx.Confidence)
			}
		})
	}
}
