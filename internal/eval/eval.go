// Package eval is the accuracy counterpart of internal/bench: a
// scenario-matrix evaluation subsystem that sweeps {registered CC
// algorithms} x {netem scenarios: clean, random loss, reordering, jitter,
// duplication, Gilbert–Elliott burst loss, bursty cross-traffic} x
// {probing budgets}, runs every cell through the real engine worker-pool
// identification path, and aggregates per-cell accuracy, per-scenario
// confusion matrices, and feature-drift statistics. Results persist as
// ACCURACY_<n>.json trajectory points (mirroring BENCH_<n>.json), and a
// checked-in accuracy_budget.json turns the trajectory into an enforced
// contract: a scenario cell regressing below budget fails the run.
package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/feature"
	"repro/internal/trace"
	"repro/internal/websim"
)

// Config controls one matrix run.
type Config struct {
	// Algorithms are the ground-truth algorithms to probe; default
	// cc.CAAINames() (all 14 identifier targets).
	Algorithms []string
	// Scenarios are the netem conditions to sweep; default
	// DefaultScenarios(). The first scenario is the feature-drift
	// reference.
	Scenarios []Scenario
	// Budgets are the probing budgets to sweep; default DefaultBudgets().
	Budgets []ProbeBudget
	// Trials is how many seeded identifications each cell runs;
	// default 20.
	Trials int
	// Seed derives every trial's RNG deterministically: a matrix is a
	// pure function of (model, Config), independent of Parallelism.
	Seed int64
	// Parallelism bounds concurrent probes on the worker pool;
	// 0 = GOMAXPROCS.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if len(c.Algorithms) == 0 {
		c.Algorithms = cc.CAAINames()
	}
	if len(c.Scenarios) == 0 {
		c.Scenarios = DefaultScenarios()
	}
	if len(c.Budgets) == 0 {
		c.Budgets = DefaultBudgets()
	}
	if c.Trials <= 0 {
		c.Trials = 20
	}
	return c
}

// Cell is one (algorithm, scenario, budget) point of the matrix. A trial
// counts as Correct only when the pipeline produced a valid, non-special
// trace whose label matches core.TrainingLabel(algorithm, wmax) — unsure,
// special, and invalid outcomes all count against accuracy, because a
// production identification pipeline delivers none of them.
type Cell struct {
	Algorithm string  `json:"algorithm"`
	Scenario  string  `json:"scenario"`
	Budget    string  `json:"budget"`
	Trials    int     `json:"trials"`
	Correct   int     `json:"correct"`
	Wrong     int     `json:"wrong"`
	Unsure    int     `json:"unsure"`
	Special   int     `json:"special"`
	Invalid   int     `json:"invalid"`
	Accuracy  float64 `json:"accuracy"`
}

// Key renders the budget-file cell address.
func (c Cell) Key() string { return c.Algorithm + "|" + c.Scenario + "|" + c.Budget }

// ScenarioStats aggregates one scenario across all algorithms and budgets:
// its accuracy, its outcome mix, and the feature-distribution statistics
// that make silent drift visible (the classifier can stay "confident"
// while its inputs walk out of the training distribution).
type ScenarioStats struct {
	Trials   int     `json:"trials"`
	Correct  int     `json:"correct"`
	Wrong    int     `json:"wrong"`
	Unsure   int     `json:"unsure"`
	Special  int     `json:"special"`
	Invalid  int     `json:"invalid"`
	Accuracy float64 `json:"accuracy"`

	// Vectors counts the valid, non-special feature vectors behind the
	// moments below.
	Vectors int `json:"vectors"`
	// FeatureMean and FeatureStdDev are the per-feature moments of the
	// extracted vectors under this scenario.
	FeatureMean   []float64 `json:"feature_mean,omitempty"`
	FeatureStdDev []float64 `json:"feature_stddev,omitempty"`
	// Drift is the mean absolute deviation of this scenario's feature
	// means from the reference (first) scenario's, normalized per feature
	// by the pooled standard deviation across all scenarios. 0 for the
	// reference itself; large values mean the classifier is being fed
	// vectors unlike anything it saw in training.
	Drift float64 `json:"drift_from_reference"`
}

// Confusion maps ground-truth training label -> reported label -> count
// over valid, non-special trials (reported includes UNSURE).
type Confusion map[string]map[string]int

// add tallies one classification outcome.
func (m Confusion) add(truth, got string) {
	row := m[truth]
	if row == nil {
		row = map[string]int{}
		m[truth] = row
	}
	row[got]++
}

// Matrix is the aggregated outcome of one Run.
type Matrix struct {
	// Algorithms, Scenarios, Budgets, Trials echo the resolved config.
	Algorithms []string
	Scenarios  []Scenario
	Budgets    []string
	Trials     int
	// Cells holds every (algorithm, scenario, budget) cell, in
	// deterministic budget-major, scenario, algorithm order.
	Cells []Cell
	// ByScenario aggregates accuracy and feature drift per scenario.
	ByScenario map[string]*ScenarioStats
	// ConfusionByScenario maps scenario -> confusion matrix; the "overall"
	// key aggregates every scenario.
	ConfusionByScenario map[string]Confusion
}

// OverallKey is the ConfusionByScenario key aggregating all scenarios.
const OverallKey = "overall"

// Accuracy returns the whole-matrix accuracy (correct / trials).
func (m *Matrix) Accuracy() float64 {
	correct, trials := 0, 0
	for _, c := range m.Cells {
		correct += c.Correct
		trials += c.Trials
	}
	if trials == 0 {
		return 0
	}
	return float64(correct) / float64(trials)
}

// Cell returns the named cell, or nil.
func (m *Matrix) Cell(algorithm, scenario, budget string) *Cell {
	for i := range m.Cells {
		c := &m.Cells[i]
		if c.Algorithm == algorithm && c.Scenario == scenario && c.Budget == budget {
			return c
		}
	}
	return nil
}

// trialSeedStride spaces per-trial seeds (a prime, like the strides used
// elsewhere in the pipeline).
const trialSeedStride = 6700417

// Run sweeps the full matrix against id on the engine worker pool: every
// (algorithm, scenario, budget, trial) tuple is one pool job with its own
// deterministically derived RNG, probing a cooperative testbed server
// through the scenario's netem condition with the budget's prober — the
// same block-session pipeline path the service and census use. Each
// budget sweeps as one engine.IdentifyBatch whose workers gather feature
// vectors into inference blocks, so the forest runs once per block
// instead of once per trial. Outcomes are a pure function of (model,
// cfg), independent of parallelism, worker scheduling, and block
// grouping (block classification is bit-identical to scalar).
func Run(id *core.Identifier, cfg Config) *Matrix {
	cfg = cfg.withDefaults()
	type cellDef struct {
		alg    string
		scen   int
		budget int
	}
	var defs []cellDef
	for b := range cfg.Budgets {
		for s := range cfg.Scenarios {
			for _, alg := range cfg.Algorithms {
				defs = append(defs, cellDef{alg: alg, scen: s, budget: b})
			}
		}
	}
	jobs := len(defs) * cfg.Trials
	outs := make([]core.Identification, jobs)
	// The probe budget varies only along the batch-config axis, so the
	// matrix partitions into one batch per budget (defs are budget-major).
	perBudget := len(cfg.Scenarios) * len(cfg.Algorithms) * cfg.Trials
	for b := range cfg.Budgets {
		base := b * perBudget
		ejobs := make([]engine.Job, perBudget)
		for k := range ejobs {
			j := base + k
			d := defs[j/cfg.Trials]
			ejobs[k] = engine.Job{
				Server: websim.Testbed(d.alg),
				Cond:   cfg.Scenarios[d.scen].Cond,
				Seed:   cfg.Seed + int64(j+1)*trialSeedStride,
			}
		}
		results := engine.IdentifyBatch[core.Identification](id, ejobs, engine.BatchConfig[core.Identification]{
			Parallelism: cfg.Parallelism,
			Probe:       cfg.Budgets[b].Probe,
			NewWorkerBlock: func() engine.BlockIdentifier[core.Identification] {
				return id.NewBlockSession()
			},
		})
		for k, r := range results {
			outs[base+k] = r.Out
		}
	}

	m := &Matrix{
		Algorithms:          cfg.Algorithms,
		Scenarios:           cfg.Scenarios,
		Budgets:             make([]string, len(cfg.Budgets)),
		Trials:              cfg.Trials,
		ByScenario:          map[string]*ScenarioStats{},
		ConfusionByScenario: map[string]Confusion{OverallKey: Confusion{}},
	}
	for i, b := range cfg.Budgets {
		m.Budgets[i] = b.Name
	}
	for _, sc := range cfg.Scenarios {
		m.ByScenario[sc.Name] = &ScenarioStats{}
		m.ConfusionByScenario[sc.Name] = Confusion{}
	}

	// Per-scenario feature moments, accumulated over valid non-special
	// vectors.
	type moments struct {
		n          int
		sum, sumSq [feature.NumFeatures]float64
	}
	perScenario := map[string]*moments{}

	for ci, d := range defs {
		scen := cfg.Scenarios[d.scen]
		cell := Cell{
			Algorithm: d.alg,
			Scenario:  scen.Name,
			Budget:    cfg.Budgets[d.budget].Name,
			Trials:    cfg.Trials,
		}
		stats := m.ByScenario[scen.Name]
		mom := perScenario[scen.Name]
		if mom == nil {
			mom = &moments{}
			perScenario[scen.Name] = mom
		}
		for t := 0; t < cfg.Trials; t++ {
			out := outs[ci*cfg.Trials+t]
			switch {
			case !out.Valid:
				cell.Invalid++
			case out.Special != trace.SpecialNone:
				cell.Special++
			default:
				truth := core.TrainingLabel(d.alg, out.Wmax)
				m.ConfusionByScenario[scen.Name].add(truth, out.Label)
				m.ConfusionByScenario[OverallKey].add(truth, out.Label)
				mom.n++
				for f, v := range out.Vector {
					mom.sum[f] += v
					mom.sumSq[f] += v * v
				}
				switch {
				case out.Label == core.LabelUnsure:
					cell.Unsure++
				case out.Label == truth:
					cell.Correct++
				default:
					cell.Wrong++
				}
			}
		}
		cell.Accuracy = float64(cell.Correct) / float64(cell.Trials)
		m.Cells = append(m.Cells, cell)
		stats.Trials += cell.Trials
		stats.Correct += cell.Correct
		stats.Wrong += cell.Wrong
		stats.Unsure += cell.Unsure
		stats.Special += cell.Special
		stats.Invalid += cell.Invalid
	}

	// Finalize per-scenario stats: accuracy, moments, and drift from the
	// reference (first) scenario, normalized by the pooled per-feature
	// standard deviation so every feature contributes on a common scale.
	var pooled moments
	for _, mom := range perScenario {
		pooled.n += mom.n
		for f := 0; f < feature.NumFeatures; f++ {
			pooled.sum[f] += mom.sum[f]
			pooled.sumSq[f] += mom.sumSq[f]
		}
	}
	var poolStd [feature.NumFeatures]float64
	if pooled.n > 0 {
		for f := 0; f < feature.NumFeatures; f++ {
			mean := pooled.sum[f] / float64(pooled.n)
			poolStd[f] = math.Sqrt(math.Max(0, pooled.sumSq[f]/float64(pooled.n)-mean*mean))
		}
	}
	refName := cfg.Scenarios[0].Name
	refMom := perScenario[refName]
	for name, stats := range m.ByScenario {
		if stats.Trials > 0 {
			stats.Accuracy = float64(stats.Correct) / float64(stats.Trials)
		}
		mom := perScenario[name]
		if mom == nil || mom.n == 0 {
			continue
		}
		stats.Vectors = mom.n
		stats.FeatureMean = make([]float64, feature.NumFeatures)
		stats.FeatureStdDev = make([]float64, feature.NumFeatures)
		for f := 0; f < feature.NumFeatures; f++ {
			mean := mom.sum[f] / float64(mom.n)
			stats.FeatureMean[f] = mean
			stats.FeatureStdDev[f] = math.Sqrt(math.Max(0, mom.sumSq[f]/float64(mom.n)-mean*mean))
		}
		if refMom != nil && refMom.n > 0 {
			drift := 0.0
			for f := 0; f < feature.NumFeatures; f++ {
				refMean := refMom.sum[f] / float64(refMom.n)
				if poolStd[f] > 1e-12 {
					drift += math.Abs(stats.FeatureMean[f]-refMean) / poolStd[f]
				}
			}
			stats.Drift = drift / feature.NumFeatures
		}
	}
	return m
}

// Table renders the matrix as one accuracy grid per budget: rows are
// algorithms, columns scenarios, cells percent-correct.
func (m *Matrix) Table() string {
	var b strings.Builder
	for _, budget := range m.Budgets {
		fmt.Fprintf(&b, "budget %s (%d trials per cell)\n", budget, m.Trials)
		fmt.Fprintf(&b, "%-12s", "alg \\ scen")
		for _, sc := range m.Scenarios {
			fmt.Fprintf(&b, "%14s", sc.Name)
		}
		b.WriteString("\n")
		for _, alg := range m.Algorithms {
			fmt.Fprintf(&b, "%-12s", alg)
			for _, sc := range m.Scenarios {
				if c := m.Cell(alg, sc.Name, budget); c != nil {
					fmt.Fprintf(&b, "%13.1f%%", c.Accuracy*100)
				} else {
					fmt.Fprintf(&b, "%14s", "-")
				}
			}
			b.WriteString("\n")
		}
	}
	names := make([]string, 0, len(m.ByScenario))
	for name := range m.ByScenario {
		names = append(names, name)
	}
	sort.Strings(names)
	b.WriteString("scenario summary (all budgets):\n")
	for _, name := range names {
		s := m.ByScenario[name]
		fmt.Fprintf(&b, "  %-14s accuracy %5.1f%%  unsure %3d  special %3d  invalid %3d  drift %.2f\n",
			name, s.Accuracy*100, s.Unsure, s.Special, s.Invalid, s.Drift)
	}
	fmt.Fprintf(&b, "overall accuracy: %.2f%%\n", m.Accuracy()*100)
	return b.String()
}
