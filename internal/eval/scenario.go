package eval

import (
	"time"

	"repro/internal/netem"
	"repro/internal/probe"
)

// Scenario is one named netem operating condition of the evaluation
// matrix. The paper trains and evaluates across conditions drawn from its
// measured distributions; the matrix instead pins a handful of named,
// reproducible points spanning the hostile end of that space, so a
// regression in any one of them has a stable address a budget can gate.
type Scenario struct {
	// Name is the stable scenario key used in cells, budgets, and files.
	Name string
	// Description says what the scenario stresses.
	Description string
	// Cond is the emulated path the scenario probes through.
	Cond netem.Condition
}

// nominalRTT is the recorded mean path RTT of every default scenario. The
// round-driven emulation paces rounds on the environment schedules, so the
// mean path RTT is bookkeeping; RTTStdDev, loss, reordering, duplication
// and burst state are what perturb the gathered traces.
const nominalRTT = 100 * time.Millisecond

// DefaultScenarios returns the standard evaluation matrix: the near-clean
// baseline, a random-loss sweep, reordering, heavy RTT jitter,
// duplication, Gilbert–Elliott burst loss, and bursty cross-traffic.
// The first scenario is the drift reference (see Matrix.ByScenario).
func DefaultScenarios() []Scenario {
	return []Scenario{
		{
			Name:        "clean",
			Description: "near-ideal path: 2 ms RTT jitter, no loss",
			Cond:        netem.Condition{MeanRTT: nominalRTT, RTTStdDev: 2 * time.Millisecond},
		},
		{
			Name:        "loss_1",
			Description: "1% random packet loss (data and ACK)",
			Cond:        netem.Condition{MeanRTT: nominalRTT, RTTStdDev: 2 * time.Millisecond, LossRate: 0.01},
		},
		{
			Name:        "loss_3",
			Description: "3% random packet loss",
			Cond:        netem.Condition{MeanRTT: nominalRTT, RTTStdDev: 2 * time.Millisecond, LossRate: 0.03},
		},
		{
			Name:        "loss_5",
			Description: "5% random packet loss",
			Cond:        netem.Condition{MeanRTT: nominalRTT, RTTStdDev: 2 * time.Millisecond, LossRate: 0.05},
		},
		{
			Name:        "reorder",
			Description: "15% adjacent data reordering, light jitter",
			Cond:        netem.Condition{MeanRTT: nominalRTT, RTTStdDev: 5 * time.Millisecond, ReorderRate: 0.15},
		},
		{
			Name:        "jitter",
			Description: "heavy RTT variation (40 ms standard deviation)",
			Cond:        netem.Condition{MeanRTT: nominalRTT, RTTStdDev: 40 * time.Millisecond},
		},
		{
			Name:        "duplicate",
			Description: "5% data-packet duplication",
			Cond:        netem.Condition{MeanRTT: nominalRTT, RTTStdDev: 2 * time.Millisecond, DupRate: 0.05},
		},
		{
			Name:        "burst_loss",
			Description: "Gilbert–Elliott burst loss: 30% in the bad state, mean burst ~2.5 packets",
			Cond: netem.Condition{
				MeanRTT: nominalRTT, RTTStdDev: 2 * time.Millisecond,
				GEPGoodBad: 0.05, GEPBadGood: 0.40, GEGoodLoss: 0.002, GEBadLoss: 0.30,
			},
		},
		{
			Name:        "cross_traffic",
			Description: "bursty competing traffic: 30 ms jitter plus queue-overflow loss bursts",
			Cond: netem.Condition{
				MeanRTT: nominalRTT, RTTStdDev: 30 * time.Millisecond,
				GEPGoodBad: 0.02, GEPBadGood: 0.50, GEBadLoss: 0.20,
			},
		},
	}
}

// ProbeBudget is one probing-effort point of the matrix: a named
// probe.Config. The paper's prober retries a four-step wmax ladder with up
// to 40 pre-timeout rounds; a deployment that probes millions of servers
// wants to know what a leaner budget costs in accuracy.
type ProbeBudget struct {
	// Name is the stable budget key used in cells and budgets.
	Name string
	// Probe is the prober configuration of this budget (zero value =
	// paper defaults).
	Probe probe.Config
}

// DefaultBudgets returns the two standard probing budgets: the paper's
// full ladder and a lean budget that skips wmax 512 and caps rounds and
// pipelined requests.
func DefaultBudgets() []ProbeBudget {
	return []ProbeBudget{
		{Name: "paper", Probe: probe.Config{}},
		{
			Name: "lean",
			Probe: probe.Config{
				WmaxLadder:   []int{256, 128, 64},
				Requests:     8,
				MaxPreRounds: 30,
			},
		},
	}
}
