package eval

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

// stub is a fixed-answer classifier: it makes matrix accounting exact
// without training a model.
type stub struct {
	label string
	conf  float64
}

func (s stub) Name() string                         { return "stub" }
func (s stub) Classify([]float64) (string, float64) { return s.label, s.conf }

// smallConfig is a two-algorithm, two-scenario, one-budget matrix that
// still exercises the impaired netem path (burst loss).
func smallConfig() Config {
	scens := DefaultScenarios()
	var clean, burst Scenario
	for _, sc := range scens {
		switch sc.Name {
		case "clean":
			clean = sc
		case "burst_loss":
			burst = sc
		}
	}
	return Config{
		Algorithms: []string{"CUBIC2", "RENO"},
		Scenarios:  []Scenario{clean, burst},
		Budgets:    []ProbeBudget{{Name: "paper"}},
		Trials:     3,
		Seed:       42,
	}
}

func TestRunDeterministicAcrossParallelism(t *testing.T) {
	id := core.NewIdentifier(stub{label: "CUBIC2", conf: 1})
	cfg := smallConfig()
	m1 := Run(id, cfg)
	cfg.Parallelism = 1
	m2 := Run(id, cfg)
	if !reflect.DeepEqual(m1.Cells, m2.Cells) {
		t.Fatalf("cells differ across parallelism:\n%+v\nvs\n%+v", m1.Cells, m2.Cells)
	}
	if !reflect.DeepEqual(m1.ByScenario, m2.ByScenario) {
		t.Fatal("scenario stats differ across parallelism")
	}
	if !reflect.DeepEqual(m1.ConfusionByScenario, m2.ConfusionByScenario) {
		t.Fatal("confusion differs across parallelism")
	}
}

func TestRunAccountsOutcomes(t *testing.T) {
	id := core.NewIdentifier(stub{label: "CUBIC2", conf: 1})
	m := Run(id, smallConfig())
	if len(m.Cells) != 4 {
		t.Fatalf("want 4 cells, got %d", len(m.Cells))
	}
	clean := m.Cell("CUBIC2", "clean", "paper")
	if clean == nil || clean.Correct != clean.Trials || clean.Accuracy != 1 {
		t.Fatalf("CUBIC2/clean should be fully correct under the always-CUBIC2 stub: %+v", clean)
	}
	reno := m.Cell("RENO", "clean", "paper")
	if reno == nil || reno.Correct != 0 || reno.Wrong != reno.Trials {
		t.Fatalf("RENO/clean should be fully wrong under the always-CUBIC2 stub: %+v", reno)
	}
	// Confusion rows: truth labels follow TrainingLabel at the settled
	// wmax; every classified trial reports CUBIC2.
	overall := m.ConfusionByScenario[OverallKey]
	for truth, row := range overall {
		for got := range row {
			if got != "CUBIC2" {
				t.Fatalf("confusion row %s contains label %s, stub only answers CUBIC2", truth, got)
			}
		}
	}
	if m.Accuracy() <= 0 || m.Accuracy() >= 1 {
		t.Fatalf("mixed matrix accuracy should be strictly between 0 and 1: %v", m.Accuracy())
	}
	// Scenario stats cover both scenarios, and feature moments exist for
	// cells that classified anything.
	for _, name := range []string{"clean", "burst_loss"} {
		s := m.ByScenario[name]
		if s == nil || s.Trials != 6 {
			t.Fatalf("scenario %s stats missing or wrong trial count: %+v", name, s)
		}
		if s.Vectors > 0 && len(s.FeatureMean) == 0 {
			t.Fatalf("scenario %s classified %d vectors but has no feature means", name, s.Vectors)
		}
	}
	if m.ByScenario["clean"].Drift != 0 {
		t.Fatalf("reference scenario drift must be 0, got %v", m.ByScenario["clean"].Drift)
	}
}

func TestRunCountsUnsure(t *testing.T) {
	id := core.NewIdentifier(stub{label: "CUBIC2", conf: 0.2}) // below the 40% rule
	m := Run(id, smallConfig())
	for _, c := range m.Cells {
		if c.Correct != 0 {
			t.Fatalf("nothing should be correct at 20%% confidence: %+v", c)
		}
		if c.Scenario == "clean" && c.Unsure != c.Trials {
			t.Fatalf("clean cells should be all-unsure: %+v", c)
		}
	}
}

func TestTableRenders(t *testing.T) {
	id := core.NewIdentifier(stub{label: "CUBIC2", conf: 1})
	m := Run(id, smallConfig())
	table := m.Table()
	for _, want := range []string{"CUBIC2", "RENO", "clean", "burst_loss", "overall accuracy"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

func TestPointRoundTripAndHistory(t *testing.T) {
	id := core.NewIdentifier(stub{label: "CUBIC2", conf: 1})
	m := Run(id, smallConfig())
	p := NewPoint("test", "stub", 42, m)
	if p.Summary.OverallAccuracy != m.Accuracy() {
		t.Fatalf("summary accuracy %v != matrix accuracy %v", p.Summary.OverallAccuracy, m.Accuracy())
	}
	if p.Summary.WorstCellAccuracy != 0 {
		t.Fatalf("worst cell should be an all-wrong RENO cell: %+v", p.Summary)
	}

	dir := t.TempDir()
	path, err := NextPointPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "ACCURACY_0.json" {
		t.Fatalf("first point should be ACCURACY_0.json, got %s", path)
	}
	if err := WritePoint(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Cells, p.Cells) || !reflect.DeepEqual(got.Summary, p.Summary) {
		t.Fatal("point did not round-trip")
	}

	next, err := NextPointPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(next) != "ACCURACY_1.json" {
		t.Fatalf("second point should be ACCURACY_1.json, got %s", next)
	}
	if err := WritePoint(next, p); err != nil {
		t.Fatal(err)
	}
	hist, err := History(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 {
		t.Fatalf("history length %d, want 2", len(hist))
	}

	if out := Compare(p, got); !strings.Contains(out, "overall") {
		t.Fatalf("compare table missing overall row:\n%s", out)
	}
}

func TestBudgetCheck(t *testing.T) {
	id := core.NewIdentifier(stub{label: "CUBIC2", conf: 1})
	m := Run(id, smallConfig())
	p := NewPoint("test", "stub", 42, m)

	min := func(v float64) *float64 { return &v }
	ok := Budget{
		"overall":                  {MinAccuracy: min(0.0)},
		"scenario/clean":           {MinAccuracy: min(0.0)},
		"cell/CUBIC2|clean|paper":  {MinAccuracy: min(1.0)},
		"cell/RENO|clean|paper":    {},                 // no limit: unchecked
		"scenario/nonexistent_off": {MinAccuracy: nil}, // nil limit: unchecked
	}
	delete(ok, "scenario/nonexistent_off") // key itself must parse; drop it
	if v := ok.Check(p); len(v) != 0 {
		t.Fatalf("budget should pass, got violations: %v", v)
	}

	bad := Budget{
		"overall":               {MinAccuracy: min(1.1)},
		"scenario/clean":        {MinAccuracy: min(1.1)},
		"scenario/missing":      {MinAccuracy: min(0.1)},
		"cell/RENO|clean|paper": {MinAccuracy: min(0.5)},
		"cell/NOPE|clean|paper": {MinAccuracy: min(0.1)},
	}
	v := bad.Check(p)
	if len(v) != 5 {
		t.Fatalf("want 5 violations, got %d: %v", len(v), v)
	}
}

func TestBudgetLoadRejectsBadKeys(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "budget.json")
	if err := os.WriteFile(path, []byte(`{"bogus_key": {"min_accuracy": 0.5}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBudget(path); err == nil {
		t.Fatal("LoadBudget should reject unknown key forms")
	}
	if err := os.WriteFile(path, []byte(`{"scenario/clean": {"min_accuracy": 0.5}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBudget(path); err != nil {
		t.Fatalf("valid budget rejected: %v", err)
	}
}

func TestReadPointRejectsForeignFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ACCURACY_0.json")
	if err := os.WriteFile(path, []byte(`{"schema":1,"source":"caai-bench"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPoint(path); err == nil {
		t.Fatal("a bench/foreign point must not read as an ACCURACY point")
	}
	if err := os.WriteFile(path, []byte(`{"schema":99,"source":"caai-eval"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPoint(path); err == nil {
		t.Fatal("an unknown schema must be rejected")
	}
}

func TestBudgetLoadRejectsUnknownLimitField(t *testing.T) {
	path := filepath.Join(t.TempDir(), "budget.json")
	if err := os.WriteFile(path, []byte(`{"scenario/clean": {"min_accurracy": 0.95}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBudget(path); err == nil {
		t.Fatal("a typoed limit field must fail loudly, not silently disable the gate")
	}
}
