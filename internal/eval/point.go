package eval

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"repro/internal/trajectory"
)

// PointSchema is the current Point layout version.
const PointSchema = 1

// ScenarioInfo records one scenario's identity inside a Point, with its
// condition rendered as text (the structured knobs live in code; the file
// is a trajectory record, not a config format).
type ScenarioInfo struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Condition   string `json:"condition"`
}

// Summary is the headline view of a Point: what the service's /metrics
// endpoint exposes and what humans read first.
type Summary struct {
	// Label is the point's free-form provenance label.
	Label string `json:"label,omitempty"`
	// Scale describes the workload ("trials-12").
	Scale string `json:"scale,omitempty"`
	// OverallAccuracy is correct / trials over the whole matrix.
	OverallAccuracy float64 `json:"overall_accuracy"`
	// ScenarioAccuracy maps scenario name to its aggregate accuracy.
	ScenarioAccuracy map[string]float64 `json:"scenario_accuracy"`
	// WorstCell names the lowest-accuracy cell and its accuracy.
	WorstCell         string  `json:"worst_cell,omitempty"`
	WorstCellAccuracy float64 `json:"worst_cell_accuracy"`
	// Algorithms, Scenarios, Budgets, Cells and TrialsPerCell record the
	// matrix dimensions.
	Algorithms    int `json:"algorithms"`
	Scenarios     int `json:"scenarios"`
	Budgets       int `json:"budgets"`
	Cells         int `json:"cells"`
	TrialsPerCell int `json:"trials_per_cell"`
}

// Point is one trajectory point of the accuracy history (one
// ACCURACY_<n>.json), the evaluation counterpart of bench.Point.
type Point struct {
	// Schema versions the file layout.
	Schema int `json:"schema"`
	// Label is free-form provenance (a commit, "pre-change baseline", ...).
	Label string `json:"label,omitempty"`
	// Source records how the numbers were gathered ("caai-eval").
	Source string `json:"source"`
	// GoVersion/GOOS/GOARCH identify the toolchain; accuracy is
	// deterministic per (model, config, toolchain).
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// Scale describes the workload scale ("trials-12").
	Scale string `json:"scale"`
	// Seed is the matrix seed the run used.
	Seed int64 `json:"seed"`
	// Model describes the classifier that answered ("randomforest", plus
	// provenance when loaded from a file).
	Model string `json:"model,omitempty"`

	// Algorithms, Budgets and Scenarios record the matrix axes.
	Algorithms []string       `json:"algorithms"`
	Budgets    []string       `json:"budgets"`
	Scenarios  []ScenarioInfo `json:"scenarios"`

	// Summary is the headline view (also served by /metrics).
	Summary Summary `json:"summary"`
	// Cells are the per-(algorithm, scenario, budget) outcomes.
	Cells []Cell `json:"cells"`
	// ScenarioStats aggregates accuracy, outcome mix, and feature drift
	// per scenario.
	ScenarioStats map[string]*ScenarioStats `json:"scenario_stats"`
	// Confusion maps scenario (plus "overall") to truth -> reported
	// counts over valid, non-special trials.
	Confusion map[string]Confusion `json:"confusion"`
}

// NewPoint renders a finished matrix as a trajectory point with
// toolchain provenance.
func NewPoint(label, model string, seed int64, m *Matrix) Point {
	p := Point{
		Schema:        PointSchema,
		Label:         label,
		Source:        "caai-eval",
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		Scale:         fmt.Sprintf("trials-%d", m.Trials),
		Seed:          seed,
		Model:         model,
		Algorithms:    m.Algorithms,
		Budgets:       m.Budgets,
		Cells:         m.Cells,
		ScenarioStats: m.ByScenario,
		Confusion:     m.ConfusionByScenario,
	}
	for _, sc := range m.Scenarios {
		p.Scenarios = append(p.Scenarios, ScenarioInfo{
			Name:        sc.Name,
			Description: sc.Description,
			Condition:   sc.Cond.String(),
		})
	}
	p.Summary = Summary{
		Label:             label,
		Scale:             p.Scale,
		OverallAccuracy:   m.Accuracy(),
		ScenarioAccuracy:  map[string]float64{},
		Algorithms:        len(m.Algorithms),
		Scenarios:         len(m.Scenarios),
		Budgets:           len(m.Budgets),
		Cells:             len(m.Cells),
		TrialsPerCell:     m.Trials,
		WorstCellAccuracy: 1,
	}
	for name, s := range m.ByScenario {
		p.Summary.ScenarioAccuracy[name] = s.Accuracy
	}
	for _, c := range m.Cells {
		if c.Accuracy < p.Summary.WorstCellAccuracy || p.Summary.WorstCell == "" {
			p.Summary.WorstCell = c.Key()
			p.Summary.WorstCellAccuracy = c.Accuracy
		}
	}
	return p
}

// filePrefix names the trajectory files (ACCURACY_<n>.json).
const filePrefix = "ACCURACY"

// NextPointPath returns the path of the next trajectory file in dir
// (ACCURACY_<max+1>.json, starting at ACCURACY_0.json in an empty
// history).
func NextPointPath(dir string) (string, error) {
	return trajectory.NextPath(dir, filePrefix)
}

// WritePoint writes p to path as indented JSON.
func WritePoint(path string, p Point) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadPoint reads a trajectory point from path, rejecting files that are
// not ACCURACY points (a BENCH file or foreign JSON unmarshals "cleanly"
// to all-zero fields and would otherwise be served as a 0%-accuracy
// summary).
func ReadPoint(path string) (Point, error) {
	var p Point
	data, err := os.ReadFile(path)
	if err != nil {
		return p, err
	}
	if err := json.Unmarshal(data, &p); err != nil {
		return p, fmt.Errorf("eval: parsing %s: %w", path, err)
	}
	if p.Schema != PointSchema || p.Source != "caai-eval" {
		return Point{}, fmt.Errorf("eval: %s is not an ACCURACY point (schema %d, source %q)", path, p.Schema, p.Source)
	}
	return p, nil
}

// LatestPoint reads only the highest-indexed ACCURACY_<n>.json in dir —
// the cheap startup path (caai-serve -eval) that neither parses the whole
// history nor fails on a stale early point.
func LatestPoint(dir string) (Point, error) {
	path, err := trajectory.LatestPath(dir, filePrefix)
	if err != nil {
		return Point{}, err
	}
	return ReadPoint(path)
}

// History loads every ACCURACY_<n>.json in dir in index order.
func History(dir string) ([]Point, error) {
	entries, err := trajectory.Entries(dir, filePrefix)
	if err != nil {
		return nil, err
	}
	out := make([]Point, len(entries))
	for i, e := range entries {
		p, err := ReadPoint(e.Path)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// Compare renders a before/after per-scenario accuracy delta table (the
// PR-description workflow, mirroring bench.Compare).
func Compare(before, after Point) string {
	names := make([]string, 0, len(after.Summary.ScenarioAccuracy))
	for name := range after.Summary.ScenarioAccuracy {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %10s %10s %8s\n", "scenario", "before", "after", "delta")
	for _, name := range names {
		ba, ok := before.Summary.ScenarioAccuracy[name]
		if !ok {
			continue
		}
		aa := after.Summary.ScenarioAccuracy[name]
		fmt.Fprintf(&b, "%-16s %9.1f%% %9.1f%% %+7.1f%%\n", name, ba*100, aa*100, (aa-ba)*100)
	}
	fmt.Fprintf(&b, "%-16s %9.1f%% %9.1f%% %+7.1f%%\n", "overall",
		before.Summary.OverallAccuracy*100, after.Summary.OverallAccuracy*100,
		(after.Summary.OverallAccuracy-before.Summary.OverallAccuracy)*100)
	return b.String()
}
