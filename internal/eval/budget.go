package eval

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Limits bounds one budget entry. Absent (null) fields are unchecked;
// the pointer keeps an explicit 0 enforceable (a cell that must at least
// run and parse).
type Limits struct {
	MinAccuracy *float64 `json:"min_accuracy,omitempty"`
}

// Budget maps matrix addresses to minimum accuracies. Three key forms are
// understood:
//
//	"overall"                      whole-matrix accuracy
//	"scenario/<name>"              one scenario's aggregate accuracy
//	"cell/<alg>|<scenario>|<budget>"  one cell (Cell.Key)
//
// Budgeted addresses missing from the evaluated point are violations: a
// silently skipped scenario must not pass the gate.
type Budget map[string]Limits

// LoadBudget reads a budget file. Unknown keys AND unknown limit fields
// both fail loudly: a typo like "min_accurracy" would otherwise leave the
// entry limitless and silently disable the gate.
func LoadBudget(path string) (Budget, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var b Budget
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("eval: parsing budget %s: %w", path, err)
	}
	for key := range b {
		if _, err := parseBudgetKey(key); err != nil {
			return nil, fmt.Errorf("eval: budget %s: %v", path, err)
		}
	}
	return b, nil
}

// budgetTarget is one parsed budget address.
type budgetTarget struct {
	kind string // "overall", "scenario", "cell"
	name string // scenario name or cell key
}

func parseBudgetKey(key string) (budgetTarget, error) {
	switch {
	case key == "overall":
		return budgetTarget{kind: "overall"}, nil
	case strings.HasPrefix(key, "scenario/"):
		name := strings.TrimPrefix(key, "scenario/")
		if name == "" {
			return budgetTarget{}, fmt.Errorf("empty scenario in budget key %q", key)
		}
		return budgetTarget{kind: "scenario", name: name}, nil
	case strings.HasPrefix(key, "cell/"):
		name := strings.TrimPrefix(key, "cell/")
		if strings.Count(name, "|") != 2 {
			return budgetTarget{}, fmt.Errorf("budget key %q: want cell/<alg>|<scenario>|<budget>", key)
		}
		return budgetTarget{kind: "cell", name: name}, nil
	default:
		return budgetTarget{}, fmt.Errorf("unknown budget key %q (want overall, scenario/<name>, or cell/<alg>|<scenario>|<budget>)", key)
	}
}

// Check compares a point against the budget and returns one human-readable
// violation per broken limit (empty = within budget).
func (b Budget) Check(p Point) []string {
	cells := map[string]Cell{}
	for _, c := range p.Cells {
		cells[c.Key()] = c
	}
	keys := make([]string, 0, len(b))
	for key := range b {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	var violations []string
	for _, key := range keys {
		lim := b[key]
		if lim.MinAccuracy == nil {
			continue
		}
		target, err := parseBudgetKey(key)
		if err != nil {
			violations = append(violations, err.Error())
			continue
		}
		var got float64
		switch target.kind {
		case "overall":
			got = p.Summary.OverallAccuracy
		case "scenario":
			acc, ok := p.Summary.ScenarioAccuracy[target.name]
			if !ok {
				violations = append(violations, fmt.Sprintf("%s: budgeted scenario did not run", key))
				continue
			}
			got = acc
		case "cell":
			c, ok := cells[target.name]
			if !ok {
				violations = append(violations, fmt.Sprintf("%s: budgeted cell did not run", key))
				continue
			}
			got = c.Accuracy
		}
		if got < *lim.MinAccuracy {
			violations = append(violations, fmt.Sprintf("%s: accuracy %.3f below budget %.3f", key, got, *lim.MinAccuracy))
		}
	}
	return violations
}
