package ml

import (
	"math/rand"
	"testing"

	"repro/internal/forest"
)

func clusterDataset(t *testing.T, n int, seed int64) *forest.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	centers := map[string][]float64{
		"low":  {0, 0},
		"high": {8, 8},
	}
	var samples []forest.Sample
	for label, c := range centers {
		for i := 0; i < n; i++ {
			samples = append(samples, forest.Sample{
				Features: []float64{c[0] + rng.NormFloat64(), c[1] + rng.NormFloat64()},
				Label:    label,
			})
		}
	}
	ds, err := forest.NewDataset(samples)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestKNNSeparatesClusters(t *testing.T) {
	ds := clusterDataset(t, 40, 1)
	knn := NewKNN(ds, 5)
	if got, conf := knn.Classify([]float64{0.5, -0.5}); got != "low" || conf <= 0 {
		t.Fatalf("got %s/%v", got, conf)
	}
	if got, _ := knn.Classify([]float64{8.2, 7.9}); got != "high" {
		t.Fatalf("got %s", got)
	}
	if knn.Name() != "kNN" {
		t.Fatal("name")
	}
}

func TestKNNDefaultK(t *testing.T) {
	ds := clusterDataset(t, 10, 2)
	knn := NewKNN(ds, 0)
	if knn.k != 5 {
		t.Fatalf("default k = %d, want 5", knn.k)
	}
}

func TestNaiveBayesSeparatesClusters(t *testing.T) {
	ds := clusterDataset(t, 40, 3)
	nb := NewNaiveBayes(ds)
	if got, conf := nb.Classify([]float64{-0.2, 0.4}); got != "low" || conf <= 0 || conf > 1 {
		t.Fatalf("got %s/%v", got, conf)
	}
	if got, _ := nb.Classify([]float64{7.7, 8.4}); got != "high" {
		t.Fatalf("got %s", got)
	}
	if nb.Name() != "NaiveBayes" {
		t.Fatal("name")
	}
}

func TestSingleTreeSeparatesClusters(t *testing.T) {
	ds := clusterDataset(t, 40, 4)
	tree := NewSingleTree(ds, 5)
	if got, _ := tree.Classify([]float64{0, 0}); got != "low" {
		t.Fatalf("got %s", got)
	}
	if tree.Name() != "DecisionTree" {
		t.Fatal("name")
	}
}

func TestForestImplementsClassifier(t *testing.T) {
	ds := clusterDataset(t, 30, 6)
	var fc Classifier = forest.Train(ds, forest.Config{Trees: 10, Subspace: 2, Seed: 7})
	if got, _ := fc.Classify([]float64{8, 8}); got != "high" {
		t.Fatalf("got %s", got)
	}
	if fc.Name() != "RandomForest" {
		t.Fatal("name")
	}
}

func TestEvaluate(t *testing.T) {
	ds := clusterDataset(t, 50, 8)
	knn := NewKNN(ds, 3)
	if acc := Evaluate(knn, ds); acc < 0.95 {
		t.Fatalf("training accuracy = %v", acc)
	}
}

func TestSplitFractions(t *testing.T) {
	ds := clusterDataset(t, 50, 9)
	train, test := Split(ds, 0.3, rand.New(rand.NewSource(10)))
	if train.Len()+test.Len() != ds.Len() {
		t.Fatalf("split sizes %d+%d != %d", train.Len(), test.Len(), ds.Len())
	}
	want := int(float64(ds.Len()) * 0.3)
	if test.Len() != want {
		t.Fatalf("test len = %d, want %d", test.Len(), want)
	}
}

func TestAllClassifiersBeatChanceOnHeldOut(t *testing.T) {
	ds := clusterDataset(t, 60, 11)
	train, test := Split(ds, 0.25, rand.New(rand.NewSource(12)))
	classifiers := []Classifier{
		forest.Train(train, forest.Config{Trees: 20, Subspace: 2, Seed: 13}),
		NewKNN(train, 5),
		NewNaiveBayes(train),
		NewSingleTree(train, 14),
	}
	for _, c := range classifiers {
		if acc := Evaluate(c, test); acc < 0.9 {
			t.Errorf("%s held-out accuracy = %v, want >= 0.9", c.Name(), acc)
		}
	}
}

func TestMLPSeparatesClusters(t *testing.T) {
	ds := clusterDataset(t, 60, 20)
	mlp := NewMLP(ds, MLPConfig{Seed: 21})
	if got, conf := mlp.Classify([]float64{0.3, -0.1}); got != "low" || conf <= 0 || conf > 1 {
		t.Fatalf("got %s/%v", got, conf)
	}
	if got, _ := mlp.Classify([]float64{7.8, 8.1}); got != "high" {
		t.Fatalf("got %s", got)
	}
	if mlp.Name() != "NeuralNet" {
		t.Fatal("name")
	}
}

func TestMLPDeterministic(t *testing.T) {
	ds := clusterDataset(t, 30, 22)
	a := NewMLP(ds, MLPConfig{Seed: 5})
	b := NewMLP(ds, MLPConfig{Seed: 5})
	la, ca := a.Classify([]float64{4, 4})
	lb, cb := b.Classify([]float64{4, 4})
	if la != lb || ca != cb {
		t.Fatal("MLP training not deterministic")
	}
}

func TestLinearSVMSeparatesClusters(t *testing.T) {
	ds := clusterDataset(t, 60, 23)
	svm := NewLinearSVM(ds, SVMConfig{Seed: 24})
	if got, conf := svm.Classify([]float64{-0.4, 0.2}); got != "low" || conf <= 0 || conf > 1 {
		t.Fatalf("got %s/%v", got, conf)
	}
	if got, _ := svm.Classify([]float64{8.3, 7.6}); got != "high" {
		t.Fatalf("got %s", got)
	}
	if svm.Name() != "LinearSVM" {
		t.Fatal("name")
	}
}

func TestMLPAndSVMHeldOutAccuracy(t *testing.T) {
	ds := clusterDataset(t, 80, 25)
	train, test := Split(ds, 0.25, rand.New(rand.NewSource(26)))
	for _, c := range []Classifier{
		NewMLP(train, MLPConfig{Seed: 27}),
		NewLinearSVM(train, SVMConfig{Seed: 28}),
	} {
		if acc := Evaluate(c, test); acc < 0.9 {
			t.Errorf("%s held-out accuracy = %v", c.Name(), acc)
		}
	}
}
