package ml

import (
	"math"
	"math/rand"

	"repro/internal/forest"
)

// MLP is a one-hidden-layer neural network trained with plain SGD and
// softmax cross-entropy -- the "Artificial Neural Network" entry of the
// paper's Weka classifier comparison. Features are standardized per
// dimension before training.
type MLP struct {
	classes []string
	mean    []float64
	std     []float64
	// w1[h][d], b1[h]; w2[c][h], b2[c]
	w1 [][]float64
	b1 []float64
	w2 [][]float64
	b2 []float64
}

var _ Classifier = (*MLP)(nil)

// MLPConfig tunes training.
type MLPConfig struct {
	// Hidden is the hidden layer width (default 16).
	Hidden int
	// Epochs is the number of SGD passes (default 60).
	Epochs int
	// LearningRate is the SGD step (default 0.05).
	LearningRate float64
	// Seed makes training deterministic.
	Seed int64
}

func (c MLPConfig) withDefaults() MLPConfig {
	if c.Hidden <= 0 {
		c.Hidden = 16
	}
	if c.Epochs <= 0 {
		c.Epochs = 60
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.05
	}
	return c
}

// NewMLP trains an MLP on ds.
func NewMLP(ds *forest.Dataset, cfg MLPConfig) *MLP {
	cfg = cfg.withDefaults()
	samples := ds.Samples()
	classes := ds.Classes()
	index := make(map[string]int, len(classes))
	for i, c := range classes {
		index[c] = i
	}
	dims := len(samples[0].Features)

	m := &MLP{classes: classes}
	m.mean, m.std = standardize(samples, dims)

	rng := rand.New(rand.NewSource(cfg.Seed))
	m.w1 = randMatrix(rng, cfg.Hidden, dims, math.Sqrt(2/float64(dims)))
	m.b1 = make([]float64, cfg.Hidden)
	m.w2 = randMatrix(rng, len(classes), cfg.Hidden, math.Sqrt(2/float64(cfg.Hidden)))
	m.b2 = make([]float64, len(classes))

	order := rng.Perm(len(samples))
	hidden := make([]float64, cfg.Hidden)
	logits := make([]float64, len(classes))
	probs := make([]float64, len(classes))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, i := range order {
			s := samples[i]
			x := m.normalize(s.Features)
			m.forward(x, hidden, logits)
			softmax(logits, probs)
			target := index[s.Label]
			// Backprop: dL/dlogit = p - y.
			lr := cfg.LearningRate
			for c := range probs {
				grad := probs[c]
				if c == target {
					grad--
				}
				for h, hv := range hidden {
					// Gradient into the hidden layer (pre-ReLU).
					if hv > 0 {
						delta := grad * m.w2[c][h] * lr
						for d := range x {
							m.w1[h][d] -= delta * x[d]
						}
						m.b1[h] -= delta
					}
					m.w2[c][h] -= lr * grad * hv
				}
				m.b2[c] -= lr * grad
			}
		}
	}
	return m
}

func standardize(samples []forest.Sample, dims int) (mean, std []float64) {
	mean = make([]float64, dims)
	std = make([]float64, dims)
	n := float64(len(samples))
	for _, s := range samples {
		for d, v := range s.Features {
			mean[d] += v
		}
	}
	for d := range mean {
		mean[d] /= n
	}
	for _, s := range samples {
		for d, v := range s.Features {
			diff := v - mean[d]
			std[d] += diff * diff
		}
	}
	for d := range std {
		std[d] = math.Sqrt(std[d] / n)
		if std[d] < 1e-9 {
			std[d] = 1
		}
	}
	return mean, std
}

func randMatrix(rng *rand.Rand, rows, cols int, scale float64) [][]float64 {
	out := make([][]float64, rows)
	for r := range out {
		out[r] = make([]float64, cols)
		for c := range out[r] {
			out[r][c] = rng.NormFloat64() * scale
		}
	}
	return out
}

func (m *MLP) normalize(x []float64) []float64 {
	out := make([]float64, len(x))
	for d := range x {
		out[d] = (x[d] - m.mean[d]) / m.std[d]
	}
	return out
}

// forward fills hidden (ReLU) and logits.
func (m *MLP) forward(x, hidden, logits []float64) {
	for h := range m.w1 {
		sum := m.b1[h]
		for d, w := range m.w1[h] {
			sum += w * x[d]
		}
		if sum < 0 {
			sum = 0
		}
		hidden[h] = sum
	}
	for c := range m.w2 {
		sum := m.b2[c]
		for h, w := range m.w2[c] {
			sum += w * hidden[h]
		}
		logits[c] = sum
	}
}

func softmax(logits, probs []float64) {
	maxL := logits[0]
	for _, l := range logits[1:] {
		if l > maxL {
			maxL = l
		}
	}
	var sum float64
	for c, l := range logits {
		probs[c] = math.Exp(l - maxL)
		sum += probs[c]
	}
	for c := range probs {
		probs[c] /= sum
	}
}

// Name implements Classifier.
func (*MLP) Name() string { return "NeuralNet" }

// Classify implements Classifier.
func (m *MLP) Classify(features []float64) (string, float64) {
	x := m.normalize(features)
	hidden := make([]float64, len(m.w1))
	logits := make([]float64, len(m.classes))
	probs := make([]float64, len(m.classes))
	m.forward(x, hidden, logits)
	softmax(logits, probs)
	best := 0
	for c := range probs {
		if probs[c] > probs[best] {
			best = c
		}
	}
	return m.classes[best], probs[best]
}

// LinearSVM is a one-vs-rest linear support vector machine trained with
// hinge-loss SGD (Pegasos-style) -- the "SVM" entry of the paper's Weka
// comparison.
type LinearSVM struct {
	classes []string
	mean    []float64
	std     []float64
	w       [][]float64 // per class
	b       []float64
}

var _ Classifier = (*LinearSVM)(nil)

// SVMConfig tunes training.
type SVMConfig struct {
	// Epochs is the number of SGD passes (default 40).
	Epochs int
	// Lambda is the regularization strength (default 1e-4).
	Lambda float64
	// Seed makes training deterministic.
	Seed int64
}

func (c SVMConfig) withDefaults() SVMConfig {
	if c.Epochs <= 0 {
		c.Epochs = 40
	}
	if c.Lambda <= 0 {
		c.Lambda = 1e-4
	}
	return c
}

// NewLinearSVM trains a one-vs-rest linear SVM on ds.
func NewLinearSVM(ds *forest.Dataset, cfg SVMConfig) *LinearSVM {
	cfg = cfg.withDefaults()
	samples := ds.Samples()
	classes := ds.Classes()
	index := make(map[string]int, len(classes))
	for i, c := range classes {
		index[c] = i
	}
	dims := len(samples[0].Features)

	svm := &LinearSVM{classes: classes}
	svm.mean, svm.std = standardize(samples, dims)
	svm.w = make([][]float64, len(classes))
	for c := range svm.w {
		svm.w[c] = make([]float64, dims)
	}
	svm.b = make([]float64, len(classes))

	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(len(samples))
	t := 1.0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, i := range order {
			s := samples[i]
			x := svm.normalize(s.Features)
			target := index[s.Label]
			eta := 1 / (cfg.Lambda * t)
			t++
			for c := range classes {
				y := -1.0
				if c == target {
					y = 1.0
				}
				score := svm.b[c]
				for d, w := range svm.w[c] {
					score += w * x[d]
				}
				// Pegasos update: shrink, then step on margin
				// violations.
				for d := range svm.w[c] {
					svm.w[c][d] *= 1 - eta*cfg.Lambda
				}
				if y*score < 1 {
					for d := range svm.w[c] {
						svm.w[c][d] += eta * y * x[d] / float64(len(classes))
					}
					svm.b[c] += eta * y / float64(len(classes))
				}
			}
		}
	}
	return svm
}

func (s *LinearSVM) normalize(x []float64) []float64 {
	out := make([]float64, len(x))
	for d := range x {
		out[d] = (x[d] - s.mean[d]) / s.std[d]
	}
	return out
}

// Name implements Classifier.
func (*LinearSVM) Name() string { return "LinearSVM" }

// Classify implements Classifier: highest one-vs-rest margin wins.
func (s *LinearSVM) Classify(features []float64) (string, float64) {
	x := s.normalize(features)
	best, bestScore := 0, math.Inf(-1)
	var sumExp float64
	scores := make([]float64, len(s.classes))
	for c := range s.classes {
		score := s.b[c]
		for d, w := range s.w[c] {
			score += w * x[d]
		}
		scores[c] = score
		if score > bestScore {
			best, bestScore = c, score
		}
	}
	for _, sc := range scores {
		sumExp += math.Exp(sc - bestScore)
	}
	return s.classes[best], 1 / sumExp
}
