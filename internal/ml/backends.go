package ml

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/classify"
	"repro/internal/forest"
)

// Params carries the tuning knobs a backend may honor. Seed applies to
// every stochastic backend; Trees and Subspace are the random forest's K
// and F (zero = paper defaults) and are ignored by the other backends.
type Params struct {
	Seed     int64
	Trees    int
	Subspace int
}

// Builder trains one classifier backend on a dataset.
type Builder func(ds *forest.Dataset, p Params) classify.Classifier

// builders maps canonical backend names (and aliases) to constructors, so
// tools can select the classification engine with a flag.
var builders = map[string]Builder{
	"randomforest": func(ds *forest.Dataset, p Params) classify.Classifier {
		return forest.Train(ds, forest.Config{Trees: p.Trees, Subspace: p.Subspace, Seed: p.Seed})
	},
	"knn": func(ds *forest.Dataset, _ Params) classify.Classifier {
		return NewKNN(ds, 5)
	},
	"naivebayes": func(ds *forest.Dataset, _ Params) classify.Classifier {
		return NewNaiveBayes(ds)
	},
	"decisiontree": func(ds *forest.Dataset, p Params) classify.Classifier {
		return NewSingleTree(ds, p.Seed)
	},
	"neuralnet": func(ds *forest.Dataset, p Params) classify.Classifier {
		return NewMLP(ds, MLPConfig{Seed: p.Seed})
	},
	"linearsvm": func(ds *forest.Dataset, p Params) classify.Classifier {
		return NewLinearSVM(ds, SVMConfig{Seed: p.Seed})
	},
}

// aliases are accepted spellings beyond the canonical names.
var aliases = map[string]string{
	"forest": "randomforest",
	"rf":     "randomforest",
	"bayes":  "naivebayes",
	"nb":     "naivebayes",
	"tree":   "decisiontree",
	"mlp":    "neuralnet",
	"nn":     "neuralnet",
	"svm":    "linearsvm",
}

// Backends lists the canonical backend names, sorted.
func Backends() []string {
	out := make([]string, 0, len(builders))
	for name := range builders {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewByName trains the named backend on ds. Names are case-insensitive
// and common aliases (forest, knn, bayes, tree, mlp, svm) are accepted.
func NewByName(name string, ds *forest.Dataset, p Params) (classify.Classifier, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	if canonical, ok := aliases[key]; ok {
		key = canonical
	}
	build, ok := builders[key]
	if !ok {
		return nil, fmt.Errorf("ml: unknown classifier backend %q (have %s)", name, strings.Join(Backends(), ", "))
	}
	return build(ds, p), nil
}
