// Package ml provides the comparison classifiers the paper evaluated in
// Weka before settling on random forest: k-nearest-neighbour, Gaussian
// naive Bayes, a single unpruned decision tree, a one-hidden-layer neural
// network, and a linear SVM. They all implement classify.Classifier (the
// pipeline's pluggable backend interface) so the classifier-comparison
// experiment -- and the identifier itself -- can swap them uniformly.
package ml

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/classify"
	"repro/internal/forest"
)

// Classifier is the pipeline's common classification interface, now
// defined in internal/classify; the alias keeps this package's historical
// spelling working.
type Classifier = classify.Classifier

// KNN is a k-nearest-neighbour classifier with per-dimension min-max
// normalization.
type KNN struct {
	k        int
	lo, hi   []float64
	features [][]float64
	labels   []string
}

var _ Classifier = (*KNN)(nil)

// NewKNN trains (memorizes) a k-NN classifier on ds.
func NewKNN(ds *forest.Dataset, k int) *KNN {
	if k <= 0 {
		k = 5
	}
	samples := ds.Samples()
	dims := len(samples[0].Features)
	lo := make([]float64, dims)
	hi := make([]float64, dims)
	for d := 0; d < dims; d++ {
		lo[d] = math.Inf(1)
		hi[d] = math.Inf(-1)
	}
	feats := make([][]float64, len(samples))
	labels := make([]string, len(samples))
	for i, s := range samples {
		feats[i] = s.Features
		labels[i] = s.Label
		for d, v := range s.Features {
			lo[d] = math.Min(lo[d], v)
			hi[d] = math.Max(hi[d], v)
		}
	}
	return &KNN{k: k, lo: lo, hi: hi, features: feats, labels: labels}
}

// Name implements Classifier.
func (*KNN) Name() string { return "kNN" }

// normalize maps v into [0, 1] per dimension.
func (c *KNN) normalize(v []float64) []float64 {
	out := make([]float64, len(v))
	for d := range v {
		span := c.hi[d] - c.lo[d]
		if span <= 0 {
			continue
		}
		out[d] = (v[d] - c.lo[d]) / span
	}
	return out
}

// Classify implements Classifier via majority vote among the k nearest
// training samples.
func (c *KNN) Classify(features []float64) (string, float64) {
	q := c.normalize(features)
	type cand struct {
		dist  float64
		label string
	}
	cands := make([]cand, len(c.features))
	for i, f := range c.features {
		nf := c.normalize(f)
		sum := 0.0
		for d := range q {
			diff := q[d] - nf[d]
			sum += diff * diff
		}
		cands[i] = cand{dist: sum, label: c.labels[i]}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].dist < cands[b].dist })
	k := c.k
	if k > len(cands) {
		k = len(cands)
	}
	votes := map[string]int{}
	for _, cd := range cands[:k] {
		votes[cd.label]++
	}
	best, bestN := "", -1
	for l, n := range votes {
		if n > bestN || (n == bestN && l < best) {
			best, bestN = l, n
		}
	}
	return best, float64(bestN) / float64(k)
}

// NaiveBayes is a Gaussian naive Bayes classifier.
type NaiveBayes struct {
	classes []string
	priors  []float64
	mean    [][]float64
	varr    [][]float64
}

var _ Classifier = (*NaiveBayes)(nil)

// NewNaiveBayes fits per-class Gaussian feature models on ds.
func NewNaiveBayes(ds *forest.Dataset) *NaiveBayes {
	classes := ds.Classes()
	index := make(map[string]int, len(classes))
	for i, c := range classes {
		index[c] = i
	}
	samples := ds.Samples()
	dims := len(samples[0].Features)
	counts := make([]float64, len(classes))
	mean := make2d(len(classes), dims)
	varr := make2d(len(classes), dims)
	for _, s := range samples {
		c := index[s.Label]
		counts[c]++
		for d, v := range s.Features {
			mean[c][d] += v
		}
	}
	for c := range classes {
		if counts[c] == 0 {
			continue
		}
		for d := 0; d < dims; d++ {
			mean[c][d] /= counts[c]
		}
	}
	for _, s := range samples {
		c := index[s.Label]
		for d, v := range s.Features {
			diff := v - mean[c][d]
			varr[c][d] += diff * diff
		}
	}
	priors := make([]float64, len(classes))
	total := float64(len(samples))
	for c := range classes {
		priors[c] = counts[c] / total
		for d := 0; d < dims; d++ {
			if counts[c] > 1 {
				varr[c][d] /= counts[c] - 1
			}
			// Variance floor keeps degenerate features usable.
			if varr[c][d] < 1e-6 {
				varr[c][d] = 1e-6
			}
		}
	}
	return &NaiveBayes{classes: classes, priors: priors, mean: mean, varr: varr}
}

func make2d(rows, cols int) [][]float64 {
	backing := make([]float64, rows*cols)
	out := make([][]float64, rows)
	for i := range out {
		out[i], backing = backing[:cols:cols], backing[cols:]
	}
	return out
}

// Name implements Classifier.
func (*NaiveBayes) Name() string { return "NaiveBayes" }

// Classify implements Classifier by maximum posterior log-likelihood.
func (nb *NaiveBayes) Classify(features []float64) (string, float64) {
	logs := make([]float64, len(nb.classes))
	for c := range nb.classes {
		ll := math.Log(nb.priors[c] + 1e-12)
		for d, v := range features {
			m, s2 := nb.mean[c][d], nb.varr[c][d]
			ll += -0.5*math.Log(2*math.Pi*s2) - (v-m)*(v-m)/(2*s2)
		}
		logs[c] = ll
	}
	best := 0
	for c := range logs {
		if logs[c] > logs[best] {
			best = c
		}
	}
	// Softmax over log-likelihoods for a rough confidence.
	var sum float64
	for c := range logs {
		sum += math.Exp(logs[c] - logs[best])
	}
	return nb.classes[best], 1 / sum
}

// SingleTree is one unpruned CART tree (random forest with K=1 and the
// full feature set at each split).
type SingleTree struct {
	f *forest.Forest
}

var _ Classifier = (*SingleTree)(nil)

// NewSingleTree trains a single decision tree on ds.
func NewSingleTree(ds *forest.Dataset, seed int64) *SingleTree {
	cfg := forest.Config{Trees: 1, Subspace: len(ds.Samples()[0].Features), Seed: seed}
	return &SingleTree{f: forest.Train(ds, cfg)}
}

// Name implements Classifier.
func (*SingleTree) Name() string { return "DecisionTree" }

// Classify implements Classifier.
func (t *SingleTree) Classify(features []float64) (string, float64) {
	return t.f.Classify(features)
}

// Evaluate computes the accuracy of classifier c on a held-out dataset.
func Evaluate(c Classifier, ds *forest.Dataset) float64 {
	correct := 0
	for _, s := range ds.Samples() {
		if got, _ := c.Classify(s.Features); got == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

// Split partitions ds into train/test with the given test fraction.
func Split(ds *forest.Dataset, testFrac float64, rng *rand.Rand) (train, test *forest.Dataset) {
	n := ds.Len()
	perm := rng.Perm(n)
	cut := int(float64(n) * testFrac)
	if cut < 1 {
		cut = 1
	}
	return ds.Subset(perm[cut:]), ds.Subset(perm[:cut])
}
