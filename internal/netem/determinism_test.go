package netem

import (
	"testing"
	"time"

	"repro/internal/xrand"
)

// impairmentModes are the conditions the determinism contract is checked
// under: one per impairment mechanism, plus a kitchen-sink combination.
var impairmentModes = []struct {
	name string
	cond Condition
}{
	{"loss", Condition{LossRate: 0.07}},
	{"reorder", Condition{ReorderRate: 0.2}},
	{"dup", Condition{DupRate: 0.1}},
	{"jitter", Condition{RTTStdDev: 30 * time.Millisecond}},
	{"burst_loss", Condition{GEPGoodBad: 0.05, GEPBadGood: 0.4, GEGoodLoss: 0.002, GEBadLoss: 0.3}},
	{"combined", Condition{
		RTTStdDev: 20 * time.Millisecond, ReorderRate: 0.1, DupRate: 0.05,
		GEPGoodBad: 0.03, GEPBadGood: 0.5, GEBadLoss: 0.25,
	}},
}

// schedule replays n packets through a fresh Path and records every
// impairment decision (drop, dup, reorder, jitter) the condition makes
// under the given seed.
func schedule(cond Condition, seed int64, n int) []int64 {
	rng := xrand.New(seed)
	p := NewPath(cond)
	out := make([]int64, 0, 4*n)
	b := func(v bool) int64 {
		if v {
			return 1
		}
		return 0
	}
	for i := 0; i < n; i++ {
		out = append(out,
			b(p.Drop(rng)),
			b(p.Dup(rng)),
			b(p.Reorder(rng)),
			int64(cond.Jitter(rng, time.Second)))
	}
	return out
}

// TestImpairmentScheduleDeterministic: the impairment schedule is a pure
// function of (condition, seed) in every mode — same seed, same schedule;
// different seeds, distinct schedules.
func TestImpairmentScheduleDeterministic(t *testing.T) {
	const n = 512
	for _, mode := range impairmentModes {
		t.Run(mode.name, func(t *testing.T) {
			a := schedule(mode.cond, 7, n)
			b := schedule(mode.cond, 7, n)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("same seed diverged at draw %d: %d vs %d", i, a[i], b[i])
				}
			}
			c := schedule(mode.cond, 8, n)
			same := true
			for i := range a {
				if a[i] != c[i] {
					same = false
					break
				}
			}
			if same {
				t.Fatal("different seeds produced identical impairment schedules")
			}
		})
	}
}

// TestPathResetRestoresGoodState: a Gilbert–Elliott path stuck in the bad
// state returns to the good state on Reset, so every connection starts
// with a fresh channel.
func TestPathResetRestoresGoodState(t *testing.T) {
	cond := Condition{GEPGoodBad: 1, GEPBadGood: 0, GEBadLoss: 1}
	p := NewPath(cond)
	rng := xrand.New(1)
	if !p.Drop(rng) {
		t.Fatal("pGoodBad=1 with badLoss=1 must drop from the second draw on")
	}
	if !p.bad {
		t.Fatal("channel should be in the bad state")
	}
	p.Reset(cond)
	if p.bad {
		t.Fatal("Reset must restore the good state")
	}
}

// TestUnimpairedPathMatchesCondition: without extended knobs a Path is
// draw-for-draw identical to Condition.Drop — the bit-stability contract
// the probe hot path relies on.
func TestUnimpairedPathMatchesCondition(t *testing.T) {
	cond := Condition{LossRate: 0.1}
	r1, r2 := xrand.New(99), xrand.New(99)
	p := NewPath(cond)
	for i := 0; i < 2048; i++ {
		if p.Drop(r1) != cond.Drop(r2) {
			t.Fatalf("draw %d diverged from Condition.Drop", i)
		}
	}
	if r1.Uint64() != r2.Uint64() {
		t.Fatal("Path.Drop consumed a different number of draws than Condition.Drop")
	}
	if cond.Impaired() {
		t.Fatal("plain loss must not count as impaired")
	}
	if !(Condition{ReorderRate: 0.1}).Impaired() || !(Condition{DupRate: 0.1}).Impaired() || !(Condition{GEBadLoss: 0.1}).Impaired() {
		t.Fatal("extended knobs must count as impaired")
	}
}

// TestGEBurstiness sanity-checks the Gilbert–Elliott model: with the
// default burst parameters, losses cluster — the conditional loss
// probability after a loss is far higher than the marginal rate.
func TestGEBurstiness(t *testing.T) {
	cond := Condition{GEPGoodBad: 0.05, GEPBadGood: 0.4, GEGoodLoss: 0.002, GEBadLoss: 0.3}
	rng := xrand.New(3)
	p := NewPath(cond)
	const n = 200_000
	losses, afterLoss, lossAfterLoss := 0, 0, 0
	prev := false
	for i := 0; i < n; i++ {
		d := p.Drop(rng)
		if d {
			losses++
		}
		if prev {
			afterLoss++
			if d {
				lossAfterLoss++
			}
		}
		prev = d
	}
	marginal := float64(losses) / n
	conditional := float64(lossAfterLoss) / float64(afterLoss)
	if marginal < 0.01 || marginal > 0.10 {
		t.Fatalf("marginal loss rate %.4f implausible for the configured chain", marginal)
	}
	if conditional < 2*marginal {
		t.Fatalf("losses do not cluster: P(loss|loss) = %.4f vs marginal %.4f", conditional, marginal)
	}
}
