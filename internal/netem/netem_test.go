package netem

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestMeasuredDatabaseSampling(t *testing.T) {
	db := MeasuredDatabase()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		c := db.Sample(rng)
		if c.MeanRTT <= 0 || c.MeanRTT > 2*time.Second {
			t.Fatalf("MeanRTT = %v out of range", c.MeanRTT)
		}
		if c.RTTStdDev < 0 || c.RTTStdDev > 500*time.Millisecond {
			t.Fatalf("RTTStdDev = %v out of range", c.RTTStdDev)
		}
		if c.LossRate < 0 || c.LossRate > 0.3 {
			t.Fatalf("LossRate = %v out of range", c.LossRate)
		}
	}
}

func TestMeasuredRTTsBelowEmulated(t *testing.T) {
	// The paper picks a 1.0s emulated RTT because almost all real RTTs
	// are below 0.8s (Fig. 4); the database must reproduce that.
	db := MeasuredDatabase()
	if got := db.RTTCDF().CDF(0.8); got < 0.99 {
		t.Fatalf("P(RTT <= 0.8s) = %v, want >= 0.99", got)
	}
}

func TestLossCDFMassAtZero(t *testing.T) {
	// Fig. 11: a large fraction of paths show no loss at all.
	db := MeasuredDatabase()
	if got := db.LossCDF().CDF(0); got < 0.3 {
		t.Fatalf("P(loss = 0) = %v, want >= 0.3", got)
	}
}

func TestConditionDrop(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	never := Condition{}
	for i := 0; i < 100; i++ {
		if never.Drop(rng) {
			t.Fatal("zero-loss condition dropped a packet")
		}
	}
	always := Condition{LossRate: 1}
	for i := 0; i < 100; i++ {
		if !always.Drop(rng) {
			t.Fatal("certain-loss condition passed a packet")
		}
	}
	half := Condition{LossRate: 0.5}
	drops := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if half.Drop(rng) {
			drops++
		}
	}
	frac := float64(drops) / n
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("drop fraction = %v, want ~0.5", frac)
	}
}

func TestJitterClamp(t *testing.T) {
	c := Condition{RTTStdDev: 10 * time.Second} // absurd jitter
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		j := c.Jitter(rand.New(rand.NewSource(seed)), time.Second)
		return j >= -500*time.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	zero := Condition{}
	if zero.Jitter(rng, time.Second) != 0 {
		t.Fatal("zero stddev must produce zero jitter")
	}
}

func TestConditionString(t *testing.T) {
	c := Condition{MeanRTT: 50 * time.Millisecond, LossRate: 0.015}
	if got := c.String(); got == "" {
		t.Fatal("empty String")
	}
}

func TestLosslessIsLossless(t *testing.T) {
	if Lossless.LossRate != 0 || Lossless.RTTStdDev != 0 {
		t.Fatal("Lossless condition must have zero loss and jitter")
	}
}
