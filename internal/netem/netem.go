// Package netem models the Internet path between a CAAI prober and a Web
// server the way the paper does: a network condition is reduced to a mean
// RTT, an RTT standard deviation, and a packet-loss rate, and conditions
// are drawn from empirical distributions measured against 5000 popular Web
// servers (the paper's Figs. 4, 10, and 11). The paper replays such
// conditions with NetEm on its testbed; we replay them directly in the
// round-driven simulation.
package netem

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/stats"
)

// Condition is one sampled network condition between the prober and a
// server. The paper's three dimensions (mean RTT, RTT standard deviation,
// uniform loss) cover its testbed emulation; the additional knobs below
// extend the model to the hostile conditions the evaluation matrix
// (internal/eval) sweeps: packet reordering, duplication, and bursty loss
// under a two-state Gilbert–Elliott channel. All extra knobs default to
// zero (off), and a condition with none of them set behaves — draw for
// draw on the RNG — exactly as before they existed.
type Condition struct {
	// MeanRTT is the average round-trip time of the real path. The
	// emulated environments require it to be below the emulated RTT.
	MeanRTT time.Duration
	// RTTStdDev is the standard deviation of the path RTT; it jitters
	// the RTT samples the server observes around the emulated value.
	RTTStdDev time.Duration
	// LossRate is the probability that any single packet (data or ACK)
	// is lost on the path, in [0, 1]. Ignored while a Gilbert–Elliott
	// burst-loss model is configured (GEBadLoss > 0).
	LossRate float64

	// ReorderRate is the probability that a data packet is overtaken by
	// its successor (NetEm-style adjacent swap), in [0, 1].
	ReorderRate float64
	// DupRate is the probability that a data packet arrives twice, each
	// copy acknowledged, in [0, 1].
	DupRate float64

	// Gilbert–Elliott burst loss: the path alternates between a good and
	// a bad state with per-packet transition probabilities GEPGoodBad and
	// GEPBadGood; packets drop with probability GEGoodLoss in the good
	// state and GEBadLoss in the bad state. The model is active when
	// GEBadLoss > 0, and then replaces the uniform LossRate. Per-path
	// state lives in a Path (see NewPath); Condition itself stays
	// immutable and safe to share.
	GEPGoodBad float64
	GEPBadGood float64
	GEGoodLoss float64
	GEBadLoss  float64
}

// String renders the condition compactly.
func (c Condition) String() string {
	s := fmt.Sprintf("rtt=%v±%v loss=%.2f%%", c.MeanRTT, c.RTTStdDev, c.LossRate*100)
	if c.ReorderRate > 0 {
		s += fmt.Sprintf(" reorder=%.1f%%", c.ReorderRate*100)
	}
	if c.DupRate > 0 {
		s += fmt.Sprintf(" dup=%.1f%%", c.DupRate*100)
	}
	if c.GEBadLoss > 0 {
		s += fmt.Sprintf(" ge=[%.2f%%/%.2f%% p=%.2f/%.2f]",
			c.GEGoodLoss*100, c.GEBadLoss*100, c.GEPGoodBad, c.GEPBadGood)
	}
	return s
}

// Impaired reports whether any of the extended impairments (reordering,
// duplication, burst loss) is active. The probe session uses it to keep
// the original, bit-stable fast path for plain conditions.
func (c Condition) Impaired() bool {
	return c.ReorderRate > 0 || c.DupRate > 0 || c.GEBadLoss > 0
}

// Lossless is the ideal testbed condition used for Fig. 3.
var Lossless = Condition{MeanRTT: 50 * time.Millisecond}

// Database holds the three empirical distributions a condition is drawn
// from. It is immutable and safe for concurrent use.
type Database struct {
	rtt    *stats.ECDF // seconds
	stddev *stats.ECDF // seconds
	loss   *stats.ECDF // fraction
}

// NewDatabase builds a condition database from the three distributions.
func NewDatabase(rtt, stddev, loss *stats.ECDF) *Database {
	return &Database{rtt: rtt, stddev: stddev, loss: loss}
}

// MeasuredDatabase returns the condition database digitised from the
// paper's measurements of 5000 popular Web servers (2010-2011): Fig. 4
// (mean RTT: almost all below 0.8 s), Fig. 10 (RTT standard deviation), and
// Fig. 11 (packet-loss rates from PCAP traces).
func MeasuredDatabase() *Database {
	rtt := stats.MustECDF([]stats.Anchor{
		{Value: 0.005, Cum: 0},
		{Value: 0.020, Cum: 0.10},
		{Value: 0.050, Cum: 0.30},
		{Value: 0.100, Cum: 0.55},
		{Value: 0.200, Cum: 0.80},
		{Value: 0.300, Cum: 0.90},
		{Value: 0.500, Cum: 0.97},
		{Value: 0.800, Cum: 0.995},
		{Value: 1.500, Cum: 1},
	})
	stddev := stats.MustECDF([]stats.Anchor{
		{Value: 0.0005, Cum: 0},
		{Value: 0.002, Cum: 0.30},
		{Value: 0.005, Cum: 0.50},
		{Value: 0.010, Cum: 0.65},
		{Value: 0.020, Cum: 0.80},
		{Value: 0.040, Cum: 0.90},
		{Value: 0.080, Cum: 0.97},
		{Value: 0.200, Cum: 1},
	})
	loss := stats.MustECDF([]stats.Anchor{
		{Value: 0.000, Cum: 0.35},
		{Value: 0.001, Cum: 0.50},
		{Value: 0.005, Cum: 0.65},
		{Value: 0.010, Cum: 0.75},
		{Value: 0.030, Cum: 0.85},
		{Value: 0.050, Cum: 0.90},
		{Value: 0.100, Cum: 0.95},
		{Value: 0.200, Cum: 0.98},
		{Value: 0.300, Cum: 1},
	})
	return NewDatabase(rtt, stddev, loss)
}

// Sample draws one condition (independent draws per dimension, as the
// paper's testbed emulation does).
func (db *Database) Sample(rng *rand.Rand) Condition {
	return Condition{
		MeanRTT:   time.Duration(db.rtt.Sample(rng) * float64(time.Second)),
		RTTStdDev: time.Duration(db.stddev.Sample(rng) * float64(time.Second)),
		LossRate:  db.loss.Sample(rng),
	}
}

// RTTCDF exposes the mean-RTT distribution (Fig. 4).
func (db *Database) RTTCDF() *stats.ECDF { return db.rtt }

// StdDevCDF exposes the RTT standard deviation distribution (Fig. 10).
func (db *Database) StdDevCDF() *stats.ECDF { return db.stddev }

// LossCDF exposes the packet-loss distribution (Fig. 11).
func (db *Database) LossCDF() *stats.ECDF { return db.loss }

// Jitter returns a normally distributed RTT perturbation for one emulated
// round, clamped so the perturbed RTT never drops below half the emulated
// value (ACK deferral can stretch but not reverse time).
func (c Condition) Jitter(rng *rand.Rand, emulated time.Duration) time.Duration {
	if c.RTTStdDev <= 0 {
		return 0
	}
	j := time.Duration(rng.NormFloat64() * float64(c.RTTStdDev))
	if j < -emulated/2 {
		j = -emulated / 2
	}
	return j
}

// Drop reports whether a single packet is lost under this condition's
// uniform loss model. Burst-losing paths must go through a Path, which
// carries the Gilbert–Elliott channel state.
func (c Condition) Drop(rng *rand.Rand) bool {
	return c.LossRate > 0 && rng.Float64() < c.LossRate
}

// Path is the stateful view of a Condition for one connection: it carries
// the Gilbert–Elliott channel state that Condition, being an immutable
// shared value, cannot. A zero Path is unusable; call Reset before a
// gathering (the prober resets its Path per connection). Not safe for
// concurrent use.
type Path struct {
	cond Condition
	bad  bool // current Gilbert–Elliott channel state
}

// NewPath returns a path over cond, starting in the good state.
func NewPath(cond Condition) *Path {
	return &Path{cond: cond}
}

// Reset re-points the path at cond and returns the channel to the good
// state, as a fresh connection would see it.
func (p *Path) Reset(cond Condition) {
	p.cond = cond
	p.bad = false
}

// Cond returns the condition the path is replaying.
func (p *Path) Cond() Condition { return p.cond }

// Drop reports whether a single packet is lost. With a Gilbert–Elliott
// model configured it first advances the channel state (one draw), then
// draws the state's loss rate; otherwise it is exactly Condition.Drop —
// same draws, same outcomes.
func (p *Path) Drop(rng *rand.Rand) bool {
	c := &p.cond
	if c.GEBadLoss <= 0 {
		return c.Drop(rng)
	}
	if p.bad {
		if c.GEPBadGood > 0 && rng.Float64() < c.GEPBadGood {
			p.bad = false
		}
	} else {
		if c.GEPGoodBad > 0 && rng.Float64() < c.GEPGoodBad {
			p.bad = true
		}
	}
	loss := c.GEGoodLoss
	if p.bad {
		loss = c.GEBadLoss
	}
	return loss > 0 && rng.Float64() < loss
}

// Dup reports whether a data packet is duplicated. It draws from rng only
// when duplication is configured, so plain conditions keep their streams.
func (p *Path) Dup(rng *rand.Rand) bool {
	return p.cond.DupRate > 0 && rng.Float64() < p.cond.DupRate
}

// Reorder reports whether a data packet is overtaken by its successor. It
// draws from rng only when reordering is configured.
func (p *Path) Reorder(rng *rand.Rand) bool {
	return p.cond.ReorderRate > 0 && rng.Float64() < p.cond.ReorderRate
}
