// Package netem models the Internet path between a CAAI prober and a Web
// server the way the paper does: a network condition is reduced to a mean
// RTT, an RTT standard deviation, and a packet-loss rate, and conditions
// are drawn from empirical distributions measured against 5000 popular Web
// servers (the paper's Figs. 4, 10, and 11). The paper replays such
// conditions with NetEm on its testbed; we replay them directly in the
// round-driven simulation.
package netem

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/stats"
)

// Condition is one sampled network condition between the prober and a
// server.
type Condition struct {
	// MeanRTT is the average round-trip time of the real path. The
	// emulated environments require it to be below the emulated RTT.
	MeanRTT time.Duration
	// RTTStdDev is the standard deviation of the path RTT; it jitters
	// the RTT samples the server observes around the emulated value.
	RTTStdDev time.Duration
	// LossRate is the probability that any single packet (data or ACK)
	// is lost on the path, in [0, 1].
	LossRate float64
}

// String renders the condition compactly.
func (c Condition) String() string {
	return fmt.Sprintf("rtt=%v±%v loss=%.2f%%", c.MeanRTT, c.RTTStdDev, c.LossRate*100)
}

// Lossless is the ideal testbed condition used for Fig. 3.
var Lossless = Condition{MeanRTT: 50 * time.Millisecond}

// Database holds the three empirical distributions a condition is drawn
// from. It is immutable and safe for concurrent use.
type Database struct {
	rtt    *stats.ECDF // seconds
	stddev *stats.ECDF // seconds
	loss   *stats.ECDF // fraction
}

// NewDatabase builds a condition database from the three distributions.
func NewDatabase(rtt, stddev, loss *stats.ECDF) *Database {
	return &Database{rtt: rtt, stddev: stddev, loss: loss}
}

// MeasuredDatabase returns the condition database digitised from the
// paper's measurements of 5000 popular Web servers (2010-2011): Fig. 4
// (mean RTT: almost all below 0.8 s), Fig. 10 (RTT standard deviation), and
// Fig. 11 (packet-loss rates from PCAP traces).
func MeasuredDatabase() *Database {
	rtt := stats.MustECDF([]stats.Anchor{
		{Value: 0.005, Cum: 0},
		{Value: 0.020, Cum: 0.10},
		{Value: 0.050, Cum: 0.30},
		{Value: 0.100, Cum: 0.55},
		{Value: 0.200, Cum: 0.80},
		{Value: 0.300, Cum: 0.90},
		{Value: 0.500, Cum: 0.97},
		{Value: 0.800, Cum: 0.995},
		{Value: 1.500, Cum: 1},
	})
	stddev := stats.MustECDF([]stats.Anchor{
		{Value: 0.0005, Cum: 0},
		{Value: 0.002, Cum: 0.30},
		{Value: 0.005, Cum: 0.50},
		{Value: 0.010, Cum: 0.65},
		{Value: 0.020, Cum: 0.80},
		{Value: 0.040, Cum: 0.90},
		{Value: 0.080, Cum: 0.97},
		{Value: 0.200, Cum: 1},
	})
	loss := stats.MustECDF([]stats.Anchor{
		{Value: 0.000, Cum: 0.35},
		{Value: 0.001, Cum: 0.50},
		{Value: 0.005, Cum: 0.65},
		{Value: 0.010, Cum: 0.75},
		{Value: 0.030, Cum: 0.85},
		{Value: 0.050, Cum: 0.90},
		{Value: 0.100, Cum: 0.95},
		{Value: 0.200, Cum: 0.98},
		{Value: 0.300, Cum: 1},
	})
	return NewDatabase(rtt, stddev, loss)
}

// Sample draws one condition (independent draws per dimension, as the
// paper's testbed emulation does).
func (db *Database) Sample(rng *rand.Rand) Condition {
	return Condition{
		MeanRTT:   time.Duration(db.rtt.Sample(rng) * float64(time.Second)),
		RTTStdDev: time.Duration(db.stddev.Sample(rng) * float64(time.Second)),
		LossRate:  db.loss.Sample(rng),
	}
}

// RTTCDF exposes the mean-RTT distribution (Fig. 4).
func (db *Database) RTTCDF() *stats.ECDF { return db.rtt }

// StdDevCDF exposes the RTT standard deviation distribution (Fig. 10).
func (db *Database) StdDevCDF() *stats.ECDF { return db.stddev }

// LossCDF exposes the packet-loss distribution (Fig. 11).
func (db *Database) LossCDF() *stats.ECDF { return db.loss }

// Jitter returns a normally distributed RTT perturbation for one emulated
// round, clamped so the perturbed RTT never drops below half the emulated
// value (ACK deferral can stretch but not reverse time).
func (c Condition) Jitter(rng *rand.Rand, emulated time.Duration) time.Duration {
	if c.RTTStdDev <= 0 {
		return 0
	}
	j := time.Duration(rng.NormFloat64() * float64(c.RTTStdDev))
	if j < -emulated/2 {
		j = -emulated / 2
	}
	return j
}

// Drop reports whether a single packet is lost under this condition.
func (c Condition) Drop(rng *rand.Rand) bool {
	return c.LossRate > 0 && rng.Float64() < c.LossRate
}
