package engine

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/netem"
	"repro/internal/probe"
	"repro/internal/websim"
	"repro/internal/xrand"
)

func TestRunExecutesEveryJob(t *testing.T) {
	for _, par := range []int{0, 1, 3, 16} {
		hits := make([]int32, 100)
		Run(len(hits), par, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, n := range hits {
			if n != 1 {
				t.Fatalf("parallelism %d: job %d ran %d times", par, i, n)
			}
		}
	}
}

func TestRunZeroJobs(t *testing.T) {
	Run(0, 4, func(int) { t.Fatal("job ran") })
	Run(-1, 4, func(int) { t.Fatal("job ran") })
}

func TestRunBoundsConcurrency(t *testing.T) {
	const par = 3
	var cur, peak int32
	var mu sync.Mutex
	Run(64, par, func(int) {
		n := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if n > peak {
			peak = n
		}
		mu.Unlock()
		atomic.AddInt32(&cur, -1)
	})
	if peak > par {
		t.Fatalf("observed %d concurrent jobs, want <= %d", peak, par)
	}
}

// fakeIdentifier records the seed stream it was handed; its "result" is a
// deterministic function of (server name, condition, first rng draw), so
// batch determinism tests don't need a trained model.
type fakeIdentifier struct{}

type fakeOut struct {
	Server string
	Loss   float64
	Draw   int64
}

func (fakeIdentifier) Identify(server *websim.Server, cond netem.Condition, _ probe.Config, rng *rand.Rand) fakeOut {
	return fakeOut{Server: server.Name, Loss: cond.LossRate, Draw: rng.Int63()}
}

func batchJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Server: websim.Testbed("RENO"), Cond: netem.Condition{LossRate: float64(i) / 100}}
	}
	return jobs
}

func TestIdentifyBatchDeterministicAcrossParallelism(t *testing.T) {
	jobs := batchJobs(40)
	var want []Result[fakeOut]
	for _, par := range []int{1, 2, 7, 32} {
		got := IdentifyBatch[fakeOut](fakeIdentifier{}, jobs, BatchConfig[fakeOut]{Parallelism: par, Seed: 99})
		if len(got) != len(jobs) {
			t.Fatalf("parallelism %d: %d results, want %d", par, len(got), len(jobs))
		}
		for i, r := range got {
			if r.Index != i {
				t.Fatalf("parallelism %d: result %d has index %d", par, i, r.Index)
			}
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallelism %d: results differ from parallelism 1", par)
		}
	}
}

func TestIdentifyBatchHonorsExplicitJobSeed(t *testing.T) {
	jobs := batchJobs(1)
	jobs[0].Seed = 12345
	a := IdentifyBatch[fakeOut](fakeIdentifier{}, jobs, BatchConfig[fakeOut]{Seed: 1})
	b := IdentifyBatch[fakeOut](fakeIdentifier{}, jobs, BatchConfig[fakeOut]{Seed: 2})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("explicit job seed should override the batch seed")
	}
	want := xrand.New(12345).Int63()
	if a[0].Out.Draw != want {
		t.Fatalf("job rng draw = %d, want %d (seeded 12345)", a[0].Out.Draw, want)
	}
}

func TestIdentifyBatchStreamsEveryResult(t *testing.T) {
	jobs := batchJobs(25)
	var mu sync.Mutex
	seen := map[int]fakeOut{}
	results := IdentifyBatch[fakeOut](fakeIdentifier{}, jobs, BatchConfig[fakeOut]{
		Parallelism: 4,
		Seed:        7,
		OnResult: func(r Result[fakeOut]) {
			mu.Lock()
			seen[r.Index] = r.Out
			mu.Unlock()
		},
	})
	if len(seen) != len(jobs) {
		t.Fatalf("streamed %d results, want %d", len(seen), len(jobs))
	}
	for _, r := range results {
		if seen[r.Index] != r.Out {
			t.Fatalf("streamed result %d disagrees with returned result", r.Index)
		}
	}
}

func TestRunCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, par := range []int{1, 4} {
		var ran int32
		err := RunCtx(ctx, 100, par, func(int) { atomic.AddInt32(&ran, 1) })
		if err == nil {
			t.Fatalf("parallelism %d: want context error, got nil", par)
		}
		// The multi-worker path may admit at most the jobs already in
		// flight when cancellation is observed; a pre-cancelled context
		// must not run the bulk of the batch.
		if n := atomic.LoadInt32(&ran); n > int32(par) {
			t.Fatalf("parallelism %d: %d jobs ran after pre-cancel", par, n)
		}
	}
}

func TestRunCtxStopsSubmittingAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	err := RunCtx(ctx, 10_000, 2, func(i int) {
		if atomic.AddInt32(&ran, 1) == 5 {
			cancel()
		}
	})
	if err == nil {
		t.Fatal("want context error after mid-batch cancel")
	}
	// Workers observe the cancel on their next channel receive, so a
	// handful of in-flight jobs may complete -- but nowhere near all.
	if n := atomic.LoadInt32(&ran); n >= 10_000 {
		t.Fatalf("all %d jobs ran despite cancellation", n)
	}
}

func TestRunCtxCompletesWithoutCancel(t *testing.T) {
	var ran int32
	if err := RunCtx(context.Background(), 50, 3, func(int) { atomic.AddInt32(&ran, 1) }); err != nil {
		t.Fatal(err)
	}
	if ran != 50 {
		t.Fatalf("ran %d jobs, want 50", ran)
	}
}

func TestIdentifyBatchCtxCancelSkipsRemainingJobs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	jobs := batchJobs(200)
	var streamed int32
	results := IdentifyBatch[fakeOut](fakeIdentifier{}, jobs, BatchConfig[fakeOut]{
		Ctx:         ctx,
		Parallelism: 2,
		Seed:        3,
		OnResult: func(Result[fakeOut]) {
			if atomic.AddInt32(&streamed, 1) == 3 {
				cancel()
			}
		},
	})
	if len(results) != len(jobs) {
		t.Fatalf("got %d result slots, want %d", len(results), len(jobs))
	}
	var done, skipped int
	for _, r := range results {
		if r.Job.Server != nil {
			done++
		} else {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("cancelled batch skipped no jobs")
	}
	if int(atomic.LoadInt32(&streamed)) != done {
		t.Fatalf("streamed %d results but %d slots are filled", streamed, done)
	}
}

func TestRunCtxNilWhenCancelledAfterLastJob(t *testing.T) {
	// Cancellation landing after every job was handed out must not be
	// reported as a partial run.
	for _, par := range []int{1, 2} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran int32
		err := RunCtx(ctx, 50, par, func(i int) {
			if i == 49 {
				cancel()
			}
			atomic.AddInt32(&ran, 1)
		})
		cancel()
		if err != nil {
			t.Fatalf("parallelism %d: err = %v after full completion", par, err)
		}
		if ran != 50 {
			t.Fatalf("parallelism %d: ran %d of 50", par, ran)
		}
	}
}
