// Package engine is the execution layer of the pipeline: a bounded
// worker-pool executor shared by training-set generation, the census
// runner, and batched identification. It replaces the hand-rolled
// goroutine-per-job semaphore fan-outs the pipeline started with -- the
// pool spawns min(parallelism, jobs) workers that pull job indices from a
// channel, so a million-job batch costs a handful of goroutines instead of
// a million.
package engine

import (
	"context"
	"runtime"
	"sync"
)

// DefaultParallelism is the worker count used when a caller passes 0.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// Workers returns how many pool workers Run/RunCtx/RunWorkers spawn for n
// jobs at the given parallelism: min(parallelism, n), with parallelism
// <= 0 meaning DefaultParallelism. Callers that pre-size per-worker
// scratch (see RunWorkers) use it to allocate exactly one slot per worker.
func Workers(n, parallelism int) int {
	if n <= 0 {
		return 0
	}
	workers := parallelism
	if workers <= 0 {
		workers = DefaultParallelism()
	}
	if workers > n {
		workers = n
	}
	return workers
}

// Run executes fn(i) for every i in [0, n) on a pool of at most
// parallelism workers and blocks until all jobs finish. parallelism <= 0
// falls back to DefaultParallelism. Job functions must be safe to run
// concurrently; writing to disjoint slots of a pre-sized results slice is
// the intended pattern (it needs no locking and keeps output order
// deterministic regardless of scheduling).
func Run(n, parallelism int, fn func(i int)) {
	RunCtx(context.Background(), n, parallelism, fn)
}

// RunCtx is Run with cancellation: once ctx is done, no further jobs are
// started (jobs already running finish normally) and RunCtx returns
// ctx.Err(). It returns nil when every job ran -- including when ctx is
// cancelled only after the last job was already handed to a worker.
// Callers that need to know which jobs were skipped should record
// completion inside fn.
func RunCtx(ctx context.Context, n, parallelism int, fn func(i int)) error {
	return RunWorkers(ctx, n, parallelism, func(_, i int) { fn(i) })
}

// RunWorkers is RunCtx with worker identity: fn receives the index of the
// worker goroutine (in [0, Workers(n, parallelism))) running the job, so
// callers can give each worker its own reusable scratch state -- one
// session per worker, no locks -- instead of allocating per job. Jobs
// must still not depend on *which* worker runs them.
func RunWorkers(ctx context.Context, n, parallelism int, fn func(worker, job int)) error {
	return RunWorkersFlush(ctx, n, parallelism, fn, nil)
}

// RunWorkersFlush is RunWorkers with a per-worker epilogue: flush(w) runs
// on worker w's own goroutine after it has handled its last job --
// including when the run is cancelled -- so workers that buffer state
// across jobs (the pipeline's block sessions, which park gathered feature
// vectors until a whole inference block is full) get exactly one
// guaranteed drain point. A nil flush makes it RunWorkers.
func RunWorkersFlush(ctx context.Context, n, parallelism int, fn func(worker, job int), flush func(worker int)) error {
	if n <= 0 {
		return nil
	}
	workers := Workers(n, parallelism)
	if workers == 1 {
		if flush != nil {
			defer flush(0)
		}
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(0, i)
		}
		return nil
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for i := range jobs {
				fn(worker, i)
			}
			if flush != nil {
				flush(worker)
			}
		}(w)
	}
	done := ctx.Done()
	cancelled := false
submit:
	for i := 0; i < n; i++ {
		// Checked first so cancellation wins even when a worker is ready
		// to receive (select picks ready cases at random).
		select {
		case <-done:
			cancelled = true
			break submit
		default:
		}
		select {
		case jobs <- i:
		case <-done:
			cancelled = true
			break submit
		}
	}
	close(jobs)
	wg.Wait()
	if cancelled {
		return ctx.Err()
	}
	return nil
}
