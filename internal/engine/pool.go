// Package engine is the execution layer of the pipeline: a bounded
// worker-pool executor shared by training-set generation, the census
// runner, and batched identification. It replaces the hand-rolled
// goroutine-per-job semaphore fan-outs the pipeline started with -- the
// pool spawns min(parallelism, jobs) workers that pull job indices from a
// channel, so a million-job batch costs a handful of goroutines instead of
// a million.
package engine

import (
	"runtime"
	"sync"
)

// DefaultParallelism is the worker count used when a caller passes 0.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// Run executes fn(i) for every i in [0, n) on a pool of at most
// parallelism workers and blocks until all jobs finish. parallelism <= 0
// falls back to DefaultParallelism. Job functions must be safe to run
// concurrently; writing to disjoint slots of a pre-sized results slice is
// the intended pattern (it needs no locking and keeps output order
// deterministic regardless of scheduling).
func Run(n, parallelism int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := parallelism
	if workers <= 0 {
		workers = DefaultParallelism()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
