package engine

import (
	"context"
	"math/rand"

	"repro/internal/netem"
	"repro/internal/probe"
	"repro/internal/websim"
	"repro/internal/xrand"
)

// Job is one identification request: probe one server under one network
// condition. Seed, when non-zero, pins the job's randomness; otherwise the
// batch derives a per-job seed from BatchConfig.Seed and the job index, so
// results are reproducible and independent of worker scheduling either way.
type Job struct {
	Server *websim.Server
	Cond   netem.Condition
	Seed   int64
}

// Result pairs a job with its outcome. Index is the job's position in the
// input slice (results are also returned in input order).
type Result[R any] struct {
	Index int
	Job   Job
	Out   R
}

// Identifier abstracts core.Identifier (or any compatible pipeline) for
// batching without an import cycle: core depends on the engine's pool, so
// the engine cannot depend on core's types.
type Identifier[R any] interface {
	Identify(server *websim.Server, cond netem.Condition, cfg probe.Config, rng *rand.Rand) R
}

// BlockIdentifier is the block-inference counterpart of Identifier: a
// per-worker session that probes jobs one at a time but defers the
// finishing model inference, parking gathered feature vectors until the
// engine flushes a whole block through the classifier's batched kernel
// (core.BlockSession is the pipeline implementation). Implementations
// must be equivalent to the scalar path job for job -- a job's result
// must not depend on which block it landed in.
type BlockIdentifier[R any] interface {
	// Gather probes one job and buffers its finishing work under tag.
	Gather(tag int, server *websim.Server, cond netem.Condition, cfg probe.Config, rng *rand.Rand)
	// Buffered reports how many gathered jobs await Flush.
	Buffered() int
	// Flush finishes every buffered job -- one batched inference for the
	// whole block -- and emits each (tag, result), leaving the session
	// empty. Flushing an empty session is a no-op.
	Flush(emit func(tag int, out R))
}

// BatchConfig controls IdentifyBatch.
type BatchConfig[R any] struct {
	// Ctx, when non-nil, cancels the batch: once Ctx is done no further
	// jobs are started (in-flight probes finish) and the Result slots of
	// jobs that never ran are left zero -- their Job.Server is nil and
	// OnResult was never called for them. A nil Ctx never cancels.
	Ctx context.Context
	// Parallelism bounds concurrent probes; 0 = DefaultParallelism.
	Parallelism int
	// Probe customizes the prober (zero = paper defaults).
	Probe probe.Config
	// Seed derives per-job seeds for jobs that leave Job.Seed zero.
	Seed int64
	// OnResult, when set, streams each result as its probe completes
	// (completion order, not input order). Calls are serialized; the
	// callback must not block for long or it stalls the pool.
	OnResult func(Result[R])
	// NewWorkerIdentifier, when set, is called once per pool worker; its
	// result handles that worker's jobs instead of the shared identifier.
	// Pipelines use it to give every worker private reusable scratch
	// (probe buffers, feature scratch) without locks. Each returned
	// identifier must produce results identical to the shared one -- job
	// outcomes must not depend on which worker ran them.
	NewWorkerIdentifier func() Identifier[R]
	// NewWorkerBlock, when set, switches the batch to block inference and
	// takes precedence over NewWorkerIdentifier: each pool worker gathers
	// its jobs into a BlockIdentifier and the engine flushes a whole block
	// through the model at once (every BlockSize gathered jobs, plus a
	// final drain when the worker runs out of jobs or the batch is
	// cancelled). Results are identical to the scalar path; OnResult
	// streaming simply arrives in block-sized bursts.
	NewWorkerBlock func() BlockIdentifier[R]
	// BlockSize is how many gathered jobs trigger a block flush;
	// 0 = DefaultBlockSize. Only meaningful with NewWorkerBlock.
	BlockSize int
}

// DefaultBlockSize is the block-inference flush width: one 64-lane chunk
// of the forest's batched kernel, so a full flush is a single sweep.
const DefaultBlockSize = 64

// jobSeedStride spaces derived per-job seeds (a prime, like the strides
// used elsewhere in the pipeline, so neighbouring jobs never share RNG
// streams).
const jobSeedStride = 15485863

// IdentifyBatch probes every job on the worker pool and returns the
// results in input order. Each job runs with its own deterministically
// seeded RNG, so a batch's output is a pure function of (jobs, cfg.Seed)
// regardless of cfg.Parallelism or scheduling -- the block-inference path
// (cfg.NewWorkerBlock) keeps that property because block classification
// is bit-identical to scalar classification no matter how jobs group into
// blocks. Set cfg.Ctx to make the batch cancellable (see BatchConfig.Ctx
// for the partial-result contract).
func IdentifyBatch[R any](id Identifier[R], jobs []Job, cfg BatchConfig[R]) []Result[R] {
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result[R], len(jobs))
	var stream chan Result[R]
	done := make(chan struct{})
	if cfg.OnResult != nil {
		stream = make(chan Result[R])
		go func() {
			defer close(done)
			for r := range stream {
				cfg.OnResult(r)
			}
		}()
	} else {
		close(done)
	}
	jobSeed := func(i int) int64 {
		if s := jobs[i].Seed; s != 0 {
			return s
		}
		return cfg.Seed + int64(i+1)*jobSeedStride
	}
	// One RNG per worker, reseeded between jobs: a job's stream depends
	// only on its seed, so reseeding is indistinguishable from a fresh
	// xrand.New -- without two allocations per job.
	rngs := make([]*rand.Rand, Workers(len(jobs), cfg.Parallelism))
	for w := range rngs {
		rngs[w] = xrand.New(0)
	}
	jobRNG := func(w, i int) *rand.Rand {
		xrand.Reseed(rngs[w], jobSeed(i))
		return rngs[w]
	}
	if cfg.NewWorkerBlock != nil {
		// Block inference: each worker gathers probes into its own block
		// session and the model runs once per block instead of once per
		// job. The commit callback runs on the gathering worker's own
		// goroutine; result slots are disjoint, so only the stream channel
		// is shared.
		blockSize := cfg.BlockSize
		if blockSize <= 0 {
			blockSize = DefaultBlockSize
		}
		blocks := make([]BlockIdentifier[R], Workers(len(jobs), cfg.Parallelism))
		for w := range blocks {
			blocks[w] = cfg.NewWorkerBlock()
		}
		commit := func(tag int, out R) {
			results[tag] = Result[R]{Index: tag, Job: jobs[tag], Out: out}
			if stream != nil {
				stream <- results[tag]
			}
		}
		RunWorkersFlush(ctx, len(jobs), cfg.Parallelism,
			func(w, i int) {
				blocks[w].Gather(i, jobs[i].Server, jobs[i].Cond, cfg.Probe, jobRNG(w, i))
				if blocks[w].Buffered() >= blockSize {
					blocks[w].Flush(commit)
				}
			},
			// The epilogue drains the worker's partial block; it also runs
			// on cancellation, so jobs that already spent their probe still
			// deliver their result.
			func(w int) { blocks[w].Flush(commit) })
	} else {
		// Per-worker identifiers (when offered) let each pool worker reuse
		// its own probe/feature scratch across the jobs it runs.
		var perWorker []Identifier[R]
		if cfg.NewWorkerIdentifier != nil {
			perWorker = make([]Identifier[R], Workers(len(jobs), cfg.Parallelism))
			for w := range perWorker {
				perWorker[w] = cfg.NewWorkerIdentifier()
			}
		}
		RunWorkers(ctx, len(jobs), cfg.Parallelism, func(w, i int) {
			ident := id
			if perWorker != nil {
				ident = perWorker[w]
			}
			jb := jobs[i]
			out := ident.Identify(jb.Server, jb.Cond, cfg.Probe, jobRNG(w, i))
			results[i] = Result[R]{Index: i, Job: jb, Out: out}
			if stream != nil {
				stream <- results[i]
			}
		})
	}
	if stream != nil {
		close(stream)
	}
	<-done
	return results
}
