package engine

import (
	"context"
	"math/rand"

	"repro/internal/netem"
	"repro/internal/probe"
	"repro/internal/websim"
	"repro/internal/xrand"
)

// Job is one identification request: probe one server under one network
// condition. Seed, when non-zero, pins the job's randomness; otherwise the
// batch derives a per-job seed from BatchConfig.Seed and the job index, so
// results are reproducible and independent of worker scheduling either way.
type Job struct {
	Server *websim.Server
	Cond   netem.Condition
	Seed   int64
}

// Result pairs a job with its outcome. Index is the job's position in the
// input slice (results are also returned in input order).
type Result[R any] struct {
	Index int
	Job   Job
	Out   R
}

// Identifier abstracts core.Identifier (or any compatible pipeline) for
// batching without an import cycle: core depends on the engine's pool, so
// the engine cannot depend on core's types.
type Identifier[R any] interface {
	Identify(server *websim.Server, cond netem.Condition, cfg probe.Config, rng *rand.Rand) R
}

// BatchConfig controls IdentifyBatch.
type BatchConfig[R any] struct {
	// Ctx, when non-nil, cancels the batch: once Ctx is done no further
	// jobs are started (in-flight probes finish) and the Result slots of
	// jobs that never ran are left zero -- their Job.Server is nil and
	// OnResult was never called for them. A nil Ctx never cancels.
	Ctx context.Context
	// Parallelism bounds concurrent probes; 0 = DefaultParallelism.
	Parallelism int
	// Probe customizes the prober (zero = paper defaults).
	Probe probe.Config
	// Seed derives per-job seeds for jobs that leave Job.Seed zero.
	Seed int64
	// OnResult, when set, streams each result as its probe completes
	// (completion order, not input order). Calls are serialized; the
	// callback must not block for long or it stalls the pool.
	OnResult func(Result[R])
	// NewWorkerIdentifier, when set, is called once per pool worker; its
	// result handles that worker's jobs instead of the shared identifier.
	// Pipelines use it to give every worker private reusable scratch
	// (probe buffers, feature scratch) without locks. Each returned
	// identifier must produce results identical to the shared one -- job
	// outcomes must not depend on which worker ran them.
	NewWorkerIdentifier func() Identifier[R]
}

// jobSeedStride spaces derived per-job seeds (a prime, like the strides
// used elsewhere in the pipeline, so neighbouring jobs never share RNG
// streams).
const jobSeedStride = 15485863

// IdentifyBatch probes every job on the worker pool and returns the
// results in input order. Each job runs with its own deterministically
// seeded RNG, so a batch's output is a pure function of (jobs, cfg.Seed)
// regardless of cfg.Parallelism or scheduling. Set cfg.Ctx to make the
// batch cancellable (see BatchConfig.Ctx for the partial-result contract).
func IdentifyBatch[R any](id Identifier[R], jobs []Job, cfg BatchConfig[R]) []Result[R] {
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result[R], len(jobs))
	var stream chan Result[R]
	done := make(chan struct{})
	if cfg.OnResult != nil {
		stream = make(chan Result[R])
		go func() {
			defer close(done)
			for r := range stream {
				cfg.OnResult(r)
			}
		}()
	} else {
		close(done)
	}
	// Per-worker identifiers (when offered) let each pool worker reuse its
	// own probe/feature scratch across the jobs it runs.
	var perWorker []Identifier[R]
	if cfg.NewWorkerIdentifier != nil {
		perWorker = make([]Identifier[R], Workers(len(jobs), cfg.Parallelism))
		for w := range perWorker {
			perWorker[w] = cfg.NewWorkerIdentifier()
		}
	}
	RunWorkers(ctx, len(jobs), cfg.Parallelism, func(w, i int) {
		ident := id
		if perWorker != nil {
			ident = perWorker[w]
		}
		jb := jobs[i]
		seed := jb.Seed
		if seed == 0 {
			seed = cfg.Seed + int64(i+1)*jobSeedStride
		}
		rng := xrand.New(seed)
		out := ident.Identify(jb.Server, jb.Cond, cfg.Probe, rng)
		results[i] = Result[R]{Index: i, Job: jb, Out: out}
		if stream != nil {
			stream <- results[i]
		}
	})
	if stream != nil {
		close(stream)
	}
	<-done
	return results
}
