package engine

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/netem"
	"repro/internal/probe"
	"repro/internal/websim"
)

func TestWorkersBounds(t *testing.T) {
	cases := []struct{ n, par, want int }{
		{0, 4, 0},
		{10, 4, 4},
		{3, 4, 3},
	}
	for _, tc := range cases {
		if got := Workers(tc.n, tc.par); got != tc.want {
			t.Fatalf("Workers(%d, %d) = %d, want %d", tc.n, tc.par, got, tc.want)
		}
	}
	if got := Workers(3, 0); got > 3 || got < 1 {
		t.Fatalf("Workers(3, 0) = %d, want in [1, 3]", got)
	}
}

func TestRunWorkersIdentityInRange(t *testing.T) {
	const n, par = 100, 5
	workers := Workers(n, par)
	seen := make([]int32, n)
	var bad atomic.Int32
	err := RunWorkers(context.Background(), n, par, func(w, i int) {
		if w < 0 || w >= workers {
			bad.Add(1)
		}
		atomic.AddInt32(&seen[i], 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Load() != 0 {
		t.Fatalf("%d jobs saw a worker index outside [0, %d)", bad.Load(), workers)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("job %d ran %d times", i, c)
		}
	}
}

// countingFake mimics a scratch-carrying pipeline session: results match
// the shared fakeIdentifier, and every job it runs is tallied.
type countingFake struct{ n *atomic.Int64 }

func (c countingFake) Identify(server *websim.Server, cond netem.Condition, cfg probe.Config, rng *rand.Rand) fakeOut {
	c.n.Add(1)
	return fakeIdentifier{}.Identify(server, cond, cfg, rng)
}

// TestIdentifyBatchPerWorkerSessions: with NewWorkerIdentifier set, the
// factory is called once per pool worker, every job runs on a session
// (never the shared identifier), and results are identical to the shared
// run.
func TestIdentifyBatchPerWorkerSessions(t *testing.T) {
	jobs := batchJobs(30)
	want := IdentifyBatch[fakeOut](fakeIdentifier{}, jobs, BatchConfig[fakeOut]{Parallelism: 4, Seed: 5})

	var mu sync.Mutex
	var made int
	var jobCount atomic.Int64
	got := IdentifyBatch[fakeOut](fakeIdentifier{}, jobs, BatchConfig[fakeOut]{
		Parallelism: 4,
		Seed:        5,
		NewWorkerIdentifier: func() Identifier[fakeOut] {
			mu.Lock()
			made++
			mu.Unlock()
			return countingFake{&jobCount}
		},
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("per-worker sessions changed batch results")
	}
	workers := Workers(len(jobs), 4)
	if made != workers {
		t.Fatalf("factory ran %d times, want one per worker (%d)", made, workers)
	}
	if n := jobCount.Load(); n != int64(len(jobs)) {
		t.Fatalf("sessions ran %d jobs, want %d (shared identifier must not be used)", n, len(jobs))
	}
}
