package engine

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/netem"
	"repro/internal/probe"
	"repro/internal/websim"
)

// fakeBlock buffers fakeIdentifier outcomes like a pipeline block session,
// recording non-empty flush widths so tests can assert when blocks drain.
type fakeBlock struct {
	buf     []Result[fakeOut]
	mu      *sync.Mutex
	flushes *[]int
}

func (b *fakeBlock) Gather(tag int, server *websim.Server, cond netem.Condition, cfg probe.Config, rng *rand.Rand) {
	out := fakeIdentifier{}.Identify(server, cond, cfg, rng)
	b.buf = append(b.buf, Result[fakeOut]{Index: tag, Out: out})
}

func (b *fakeBlock) Buffered() int { return len(b.buf) }

func (b *fakeBlock) Flush(emit func(tag int, out fakeOut)) {
	if len(b.buf) > 0 && b.flushes != nil {
		b.mu.Lock()
		*b.flushes = append(*b.flushes, len(b.buf))
		b.mu.Unlock()
	}
	for _, r := range b.buf {
		emit(r.Index, r.Out)
	}
	b.buf = b.buf[:0]
}

// TestIdentifyBatchBlockMatchesScalar: the block path must reproduce the
// scalar path result for result, whatever the block size or parallelism --
// grouping jobs into blocks is an execution detail, not a semantic one.
func TestIdentifyBatchBlockMatchesScalar(t *testing.T) {
	jobs := batchJobs(50)
	want := IdentifyBatch[fakeOut](fakeIdentifier{}, jobs, BatchConfig[fakeOut]{Parallelism: 1, Seed: 17})
	for _, par := range []int{1, 3, 8} {
		for _, bs := range []int{0, 1, 7, 64, 1000} {
			got := IdentifyBatch[fakeOut](fakeIdentifier{}, jobs, BatchConfig[fakeOut]{
				Parallelism:    par,
				Seed:           17,
				BlockSize:      bs,
				NewWorkerBlock: func() BlockIdentifier[fakeOut] { return &fakeBlock{} },
			})
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("parallelism %d block size %d: block results differ from scalar", par, bs)
			}
		}
	}
}

// TestIdentifyBatchBlockFlushWidths: a single worker over 10 jobs with
// BlockSize 4 must drain exactly as 4+4+2 -- two full blocks and the
// epilogue's partial flush.
func TestIdentifyBatchBlockFlushWidths(t *testing.T) {
	var mu sync.Mutex
	var flushes []int
	IdentifyBatch[fakeOut](fakeIdentifier{}, batchJobs(10), BatchConfig[fakeOut]{
		Parallelism:    1,
		Seed:           5,
		BlockSize:      4,
		NewWorkerBlock: func() BlockIdentifier[fakeOut] { return &fakeBlock{mu: &mu, flushes: &flushes} },
	})
	if !reflect.DeepEqual(flushes, []int{4, 4, 2}) {
		t.Fatalf("flush widths = %v, want [4 4 2]", flushes)
	}
}

// TestIdentifyBatchBlockStreamsEveryResult: OnResult must see every job
// exactly once, matching the returned slice, even though results arrive
// in block-sized bursts.
func TestIdentifyBatchBlockStreamsEveryResult(t *testing.T) {
	jobs := batchJobs(25)
	var mu sync.Mutex
	seen := map[int]fakeOut{}
	results := IdentifyBatch[fakeOut](fakeIdentifier{}, jobs, BatchConfig[fakeOut]{
		Parallelism:    4,
		Seed:           7,
		BlockSize:      6,
		NewWorkerBlock: func() BlockIdentifier[fakeOut] { return &fakeBlock{} },
		OnResult: func(r Result[fakeOut]) {
			mu.Lock()
			seen[r.Index] = r.Out
			mu.Unlock()
		},
	})
	if len(seen) != len(jobs) {
		t.Fatalf("streamed %d results, want %d", len(seen), len(jobs))
	}
	for _, r := range results {
		if seen[r.Index] != r.Out {
			t.Fatalf("streamed result %d disagrees with returned result", r.Index)
		}
	}
}

// TestIdentifyBatchBlockCancelDrainsGathered: cancelling mid-batch must
// still deliver every job that was gathered -- a probe already spent must
// not lose its result in a worker's partial block -- while jobs never
// gathered keep zero slots.
func TestIdentifyBatchBlockCancelDrainsGathered(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	jobs := batchJobs(300)
	var mu sync.Mutex
	streamed := 0
	results := IdentifyBatch[fakeOut](fakeIdentifier{}, jobs, BatchConfig[fakeOut]{
		Ctx:            ctx,
		Parallelism:    2,
		Seed:           3,
		BlockSize:      8,
		NewWorkerBlock: func() BlockIdentifier[fakeOut] { return &fakeBlock{} },
		OnResult: func(Result[fakeOut]) {
			mu.Lock()
			streamed++
			if streamed == 8 {
				cancel()
			}
			mu.Unlock()
		},
	})
	var done, skipped int
	for _, r := range results {
		if r.Job.Server != nil {
			done++
		} else {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("cancelled batch skipped no jobs")
	}
	mu.Lock()
	defer mu.Unlock()
	if streamed != done {
		t.Fatalf("streamed %d results but %d slots are filled -- gathered jobs were dropped", streamed, done)
	}
}
