package trace

import "testing"

func TestRecorderResetReusesBuffers(t *testing.T) {
	var r Recorder
	tr := r.Reset("A", 256, 536)
	for i := 0; i < 8; i++ {
		tr.Pre = append(tr.Pre, i)
		tr.Post = append(tr.Post, i*2)
	}
	tr.TimedOut = true
	preCap, postCap := cap(tr.Pre), cap(tr.Post)

	tr2 := r.Reset("B", 64, 100)
	if tr2 != r.Trace() {
		t.Fatal("Reset must return the recorder's own trace")
	}
	if tr2.Env != "B" || tr2.WmaxThreshold != 64 || tr2.MSS != 100 {
		t.Fatalf("Reset kept stale header: %+v", tr2)
	}
	if tr2.TimedOut || tr2.DataExhausted || len(tr2.Pre) != 0 || len(tr2.Post) != 0 {
		t.Fatalf("Reset kept stale state: %+v", tr2)
	}
	if cap(tr2.Pre) != preCap || cap(tr2.Post) != postCap {
		t.Fatalf("Reset dropped buffer capacity: pre %d->%d post %d->%d",
			preCap, cap(tr2.Pre), postCap, cap(tr2.Post))
	}
	if allocs := testing.AllocsPerRun(100, func() {
		tr := r.Reset("A", 256, 536)
		for i := 0; i < 8; i++ {
			tr.Pre = append(tr.Pre, i)
		}
	}); allocs != 0 {
		t.Fatalf("warm Reset+append allocates %v per run, want 0", allocs)
	}
}
