package trace

// Recorder owns one reusable Trace: Reset re-arms it for a new gathering
// while keeping the capacity of the window slices, so a long-lived prober
// records trace after trace without reallocating Pre/Post each time.
//
// Ownership contract: the *Trace returned by Reset (and Trace) points into
// the recorder and is valid only until the next Reset. Callers that need a
// trace to outlive the recorder must copy it with Trace.Clone.
type Recorder struct {
	t Trace
}

// Reset clears the recorder for a new gathering in env with the given
// wmax threshold and MSS, reusing the window buffers, and returns the
// trace to fill.
func (r *Recorder) Reset(env string, wmax, mss int) *Trace {
	r.t = Trace{
		Env:           env,
		WmaxThreshold: wmax,
		MSS:           mss,
		Pre:           r.t.Pre[:0],
		Post:          r.t.Post[:0],
	}
	return &r.t
}

// Trace returns the recorder's current trace.
func (r *Recorder) Trace() *Trace { return &r.t }
