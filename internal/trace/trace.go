// Package trace defines the window traces CAAI gathers (the paper's
// Fig. 8): the per-RTT window sizes of a Web server before and after the
// emulated timeout, the validity predicate, and the detectors for the four
// special trace shapes of Section VII-B3.
package trace

import (
	"fmt"
	"strings"
)

// ValidPostRounds is how many post-timeout rounds a valid trace requires.
const ValidPostRounds = 18

// Trace is one gathered window trace of a Web server in one emulated
// network environment.
type Trace struct {
	// Env is the emulated environment name ("A" or "B").
	Env string
	// WmaxThreshold is the window threshold that triggers the emulated
	// timeout, in packets.
	WmaxThreshold int
	// MSS is the negotiated segment size in bytes.
	MSS int
	// Pre holds the measured windows of each emulated RTT before the
	// timeout; the last entry is w(tmo) when TimedOut is true.
	Pre []int
	// Post holds the measured windows after the timeout. Leading zeros
	// are retransmission rounds that advance no new sequence numbers.
	Post []int
	// TimedOut reports whether the window exceeded WmaxThreshold and the
	// timeout was emulated.
	TimedOut bool
	// DataExhausted reports that the server ran out of page data before
	// gathering completed (one of the paper's invalid-trace causes).
	DataExhausted bool
}

// Clone returns a deep copy of the trace whose window slices share no
// storage with the original. It is how callers honor the Recorder
// ownership contract: a trace recorded into reusable storage must be
// cloned to outlive the recorder's next Reset.
func (t *Trace) Clone() *Trace {
	if t == nil {
		return nil
	}
	cp := *t
	cp.Pre = append([]int(nil), t.Pre...)
	cp.Post = append([]int(nil), t.Post...)
	return &cp
}

// WTmo returns the window size just before the timeout, or 0 when no
// timeout was emulated.
func (t *Trace) WTmo() int {
	if !t.TimedOut || len(t.Pre) == 0 {
		return 0
	}
	return t.Pre[len(t.Pre)-1]
}

// MaxWindow returns the largest window observed anywhere in the trace.
func (t *Trace) MaxWindow() int {
	m := 0
	for _, w := range t.Pre {
		if w > m {
			m = w
		}
	}
	for _, w := range t.Post {
		if w > m {
			m = w
		}
	}
	return m
}

// Valid reports whether the trace satisfies the paper's validity
// definition: a timeout was emulated, 18 RTTs of windows were gathered
// after it, the server actually responded after the timeout, and the page
// data lasted.
func (t *Trace) Valid() bool {
	if !t.TimedOut || t.DataExhausted || len(t.Post) < ValidPostRounds {
		return false
	}
	for _, w := range t.Post {
		if w > 0 {
			return true // the server responded after the timeout
		}
	}
	return false
}

// PostNonzero returns the post-timeout windows with leading
// retransmission-round zeros stripped (w(f) onward in Fig. 8).
func (t *Trace) PostNonzero() []int {
	for i, w := range t.Post {
		if w > 0 {
			return t.Post[i:]
		}
	}
	return nil
}

// String renders the trace compactly for logs and examples.
func (t *Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "env %s wmax=%d mss=%d pre=%v", t.Env, t.WmaxThreshold, t.MSS, t.Pre)
	if t.TimedOut {
		fmt.Fprintf(&b, " | timeout | post=%v", t.Post)
	} else {
		b.WriteString(" | no timeout")
	}
	return b.String()
}

// Special identifies the paper's special valid-trace shapes (Section
// VII-B3, Figs. 14-17). Traces with a Special other than SpecialNone are
// reported as-is instead of being classified by the random forest.
type Special int

// Special trace shapes.
const (
	// SpecialNone marks an ordinary trace.
	SpecialNone Special = iota
	// RemainingAtOne: the window stays at one packet after the timeout.
	RemainingAtOne
	// NonincreasingWindow: the window never grows in congestion
	// avoidance.
	NonincreasingWindow
	// ApproachingWmax: the window increases quickly, then ever more
	// slowly as it approaches w(tmo).
	ApproachingWmax
	// BoundedWindow: the window grows past the slow start threshold but
	// is then pinned at some upper bound (e.g. the send buffer).
	BoundedWindow
)

// String returns the paper's label for the special case.
func (s Special) String() string {
	switch s {
	case SpecialNone:
		return "None"
	case RemainingAtOne:
		return "Remaining at 1 Packet"
	case NonincreasingWindow:
		return "Nonincreasing Window"
	case ApproachingWmax:
		return "Approaching Wmax"
	case BoundedWindow:
		return "Bounded Window"
	default:
		return fmt.Sprintf("Special(%d)", int(s))
	}
}

// minFlatRun is how many identical trailing windows count as "pinned".
const minFlatRun = 5

// DetectSpecial classifies a valid trace into one of the special shapes,
// or SpecialNone for ordinary traces that should go to the random forest.
func DetectSpecial(t *Trace) Special {
	if !t.Valid() {
		return SpecialNone
	}
	q := t.PostNonzero()
	if len(q) < minFlatRun+1 {
		return SpecialNone
	}
	maxW := 0
	for _, w := range q {
		if w > maxW {
			maxW = w
		}
	}
	if maxW <= 1 {
		return RemainingAtOne
	}

	// Slow start ends at the first round that clearly stops doubling;
	// the congestion avoidance region starts one round later (the
	// transition round may be a partial, buffer-capped step).
	ssExit := len(q) - 1
	for i := 0; i+1 < len(q); i++ {
		if float64(q[i+1]) < 1.7*float64(q[i]) {
			ssExit = i
			break
		}
	}
	if ssExit+1 >= len(q) {
		return SpecialNone
	}
	tail := q[ssExit+1:]
	if len(tail) < minFlatRun {
		return SpecialNone
	}

	if flatRun(tail) == len(tail) {
		return NonincreasingWindow
	}
	if run := trailingFlatRun(tail); run >= minFlatRun && tail[len(tail)-1] > tail[0]+1 {
		return BoundedWindow
	}
	if isApproaching(tail, t.WTmo()) {
		return ApproachingWmax
	}
	return SpecialNone
}

// flatRun returns the length of the initial run of equal values.
func flatRun(xs []int) int {
	n := 1
	for n < len(xs) && xs[n] == xs[0] {
		n++
	}
	return n
}

// trailingFlatRun returns the length of the final run of equal values.
func trailingFlatRun(xs []int) int {
	last := xs[len(xs)-1]
	n := 0
	for i := len(xs) - 1; i >= 0 && xs[i] == last; i-- {
		n++
	}
	return n
}

// isApproaching reports whether xs rises toward wTmo with shrinking
// increments and ends within 10% of it without overshooting.
func isApproaching(xs []int, wTmo int) bool {
	if wTmo <= 0 || len(xs) < 4 {
		return false
	}
	last := xs[len(xs)-1]
	if float64(last) < 0.9*float64(wTmo) || float64(last) > 1.02*float64(wTmo) {
		return false
	}
	firstInc := xs[1] - xs[0]
	lastInc := xs[len(xs)-1] - xs[len(xs)-2]
	if firstInc <= 0 {
		return false
	}
	// Increments must shrink substantially and never be negative.
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return false
		}
	}
	return lastInc*3 <= firstInc
}
