package trace

import (
	"strings"
	"testing"
)

// valid18 builds a valid post-timeout sequence of exactly 18 windows.
func valid18(shape func(i int) int) []int {
	out := make([]int, 18)
	for i := range out {
		out[i] = shape(i)
	}
	return out
}

func renoLike() *Trace {
	return &Trace{
		Env:           "A",
		WmaxThreshold: 256,
		MSS:           536,
		Pre:           []int{4, 8, 16, 32, 64, 128, 256, 512},
		Post:          []int{0, 2, 4, 8, 16, 32, 64, 128, 256, 256, 257, 258, 259, 260, 261, 262, 263, 264},
		TimedOut:      true,
	}
}

func TestWTmo(t *testing.T) {
	tr := renoLike()
	if got := tr.WTmo(); got != 512 {
		t.Fatalf("WTmo = %d, want 512", got)
	}
	tr.TimedOut = false
	if got := tr.WTmo(); got != 0 {
		t.Fatalf("WTmo without timeout = %d, want 0", got)
	}
}

func TestMaxWindow(t *testing.T) {
	tr := renoLike()
	if got := tr.MaxWindow(); got != 512 {
		t.Fatalf("MaxWindow = %d", got)
	}
}

func TestValid(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Trace)
		want   bool
	}{
		{"ordinary", func(*Trace) {}, true},
		{"no timeout", func(tr *Trace) { tr.TimedOut = false }, false},
		{"data exhausted", func(tr *Trace) { tr.DataExhausted = true }, false},
		{"short post", func(tr *Trace) { tr.Post = tr.Post[:10] }, false},
		{"silent server", func(tr *Trace) {
			for i := range tr.Post {
				tr.Post[i] = 0
			}
		}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			tr := renoLike()
			tc.mutate(tr)
			if got := tr.Valid(); got != tc.want {
				t.Fatalf("Valid = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestPostNonzero(t *testing.T) {
	tr := renoLike()
	q := tr.PostNonzero()
	if len(q) != 17 || q[0] != 2 {
		t.Fatalf("PostNonzero = %v", q)
	}
	empty := &Trace{Post: []int{0, 0, 0}}
	if got := empty.PostNonzero(); got != nil {
		t.Fatalf("all-zero PostNonzero = %v", got)
	}
}

func TestStringRendering(t *testing.T) {
	tr := renoLike()
	s := tr.String()
	if !strings.Contains(s, "timeout") || !strings.Contains(s, "env A") {
		t.Fatalf("String = %q", s)
	}
	tr.TimedOut = false
	if !strings.Contains(tr.String(), "no timeout") {
		t.Fatal("no-timeout rendering missing")
	}
}

func TestDetectSpecialNoneOnOrdinary(t *testing.T) {
	if got := DetectSpecial(renoLike()); got != SpecialNone {
		t.Fatalf("RENO trace detected as %v", got)
	}
}

func TestDetectRemainingAtOne(t *testing.T) {
	tr := renoLike()
	tr.Post = valid18(func(i int) int {
		if i == 0 {
			return 0
		}
		return 1
	})
	if got := DetectSpecial(tr); got != RemainingAtOne {
		t.Fatalf("got %v, want RemainingAtOne", got)
	}
}

func TestDetectNonincreasing(t *testing.T) {
	tr := renoLike()
	// Slow start to 90 then pinned flat (small send buffer).
	tr.Post = []int{0, 2, 4, 8, 16, 32, 64, 90, 90, 90, 90, 90, 90, 90, 90, 90, 90, 90}
	if got := DetectSpecial(tr); got != NonincreasingWindow {
		t.Fatalf("got %v, want NonincreasingWindow", got)
	}
}

func TestDetectBounded(t *testing.T) {
	tr := renoLike()
	// Slow start to 64, growth past it, then a hard ceiling at 100.
	tr.Post = []int{0, 2, 4, 8, 16, 32, 64, 70, 76, 82, 88, 94, 100, 100, 100, 100, 100, 100}
	if got := DetectSpecial(tr); got != BoundedWindow {
		t.Fatalf("got %v, want BoundedWindow", got)
	}
}

func TestDetectApproaching(t *testing.T) {
	tr := renoLike()
	// Exponential approach from 256 to ~512.
	tr.Post = []int{0, 2, 4, 8, 16, 32, 64, 128, 256, 332, 387, 424, 450, 468, 482, 492, 500, 505}
	if got := DetectSpecial(tr); got != ApproachingWmax {
		t.Fatalf("got %v, want ApproachingWmax", got)
	}
}

func TestDetectSpecialInvalidTrace(t *testing.T) {
	tr := renoLike()
	tr.TimedOut = false
	if got := DetectSpecial(tr); got != SpecialNone {
		t.Fatalf("invalid trace detected as %v", got)
	}
}

func TestSpecialString(t *testing.T) {
	for sp, want := range map[Special]string{
		SpecialNone:         "None",
		RemainingAtOne:      "Remaining at 1 Packet",
		NonincreasingWindow: "Nonincreasing Window",
		ApproachingWmax:     "Approaching Wmax",
		BoundedWindow:       "Bounded Window",
	} {
		if got := sp.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", sp, got, want)
		}
	}
	if Special(42).String() == "" {
		t.Fatal("unknown special must render")
	}
}

// TestDetectSpecialNotFooledByNoise: mild ACK-loss plateaus in an ordinary
// trace must not read as special shapes.
func TestDetectSpecialNotFooledByNoise(t *testing.T) {
	tr := renoLike()
	// RENO under ~50% ACK loss: increments of ~0.5/round.
	tr.Post = []int{0, 2, 3, 6, 11, 21, 40, 77, 148, 256, 256, 257, 257, 258, 258, 259, 259, 260}
	if got := DetectSpecial(tr); got != SpecialNone {
		t.Fatalf("lossy RENO detected as %v", got)
	}
}

// TestClone: the copy must share no storage with the original, including
// through a Recorder reset (the ownership contract Clone exists for).
func TestClone(t *testing.T) {
	if (*Trace)(nil).Clone() != nil {
		t.Fatal("nil.Clone() must be nil")
	}
	var rec Recorder
	tr := rec.Reset("A", 256, 536)
	tr.Pre = append(tr.Pre, 2, 4, 8, 300)
	tr.Post = append(tr.Post, 0, 1, 2)
	tr.TimedOut = true

	cp := tr.Clone()
	rec.Reset("B", 128, 100)
	rec.Trace().Pre = append(rec.Trace().Pre, 99, 99, 99, 99)

	if cp.Env != "A" || cp.WmaxThreshold != 256 || cp.MSS != 536 || !cp.TimedOut {
		t.Fatalf("clone lost fields: %+v", cp)
	}
	if want := []int{2, 4, 8, 300}; len(cp.Pre) != len(want) || cp.Pre[0] != 2 || cp.Pre[3] != 300 {
		t.Fatalf("clone Pre corrupted by recorder reuse: %v", cp.Pre)
	}
	if len(cp.Post) != 3 || cp.Post[2] != 2 {
		t.Fatalf("clone Post corrupted: %v", cp.Post)
	}
}
