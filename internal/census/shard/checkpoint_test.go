package shard

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/probe"
)

// validLine renders one well-formed checkpoint line (without newline).
func validLine(t *testing.T, i int) string {
	t.Helper()
	id := core.Identification{Label: "BIC", Confidence: 0.9, Wmax: 256, MSS: 100, Valid: true, Elapsed: 3 * time.Second}
	data, err := json.Marshal(recordOf(i, 1, id))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestDecodeRecordsTruncation is the crash-artifact table test: a torn
// final line (no trailing newline) is skipped and counted, while the same
// corruption mid-file -- or a newline-terminated corrupt line -- is fatal.
func TestDecodeRecordsTruncation(t *testing.T) {
	l0, l1 := "", ""
	tests := []struct {
		name    string
		build   func(t *testing.T) string
		records int
		skipped int
		wantErr bool
	}{
		{
			name:    "clean log",
			build:   func(t *testing.T) string { return l0 + "\n" + l1 + "\n" },
			records: 2,
		},
		{
			name:    "empty log",
			build:   func(t *testing.T) string { return "" },
			records: 0,
		},
		{
			name:    "blank lines tolerated",
			build:   func(t *testing.T) string { return l0 + "\n\n" + l1 + "\n\n" },
			records: 2,
		},
		{
			name:    "truncated JSON tail skipped",
			build:   func(t *testing.T) string { return l0 + "\n" + l1[:len(l1)/2] },
			records: 1,
			skipped: 1,
		},
		{
			name:    "complete final line without newline is kept",
			build:   func(t *testing.T) string { return l0 + "\n" + l1 },
			records: 2,
		},
		{
			name:    "truncated tail with garbage skipped",
			build:   func(t *testing.T) string { return l0 + "\n\x00\x7f{{" },
			records: 1,
			skipped: 1,
		},
		{
			name:    "out-of-range tail without newline skipped",
			build:   func(t *testing.T) string { return l0 + "\n" + `{"i":999,"attempts":1}` },
			records: 1,
			skipped: 1,
		},
		{
			name:    "corrupt mid-file line is fatal",
			build:   func(t *testing.T) string { return l0[:len(l0)/2] + "\n" + l1 + "\n" },
			wantErr: true,
		},
		{
			name:    "newline-terminated corrupt last line is fatal",
			build:   func(t *testing.T) string { return l0 + "\n" + l1[:len(l1)/2] + "\n" },
			wantErr: true,
		},
		{
			name:    "out-of-range index is fatal",
			build:   func(t *testing.T) string { return `{"i":999,"attempts":1}` + "\n" },
			wantErr: true,
		},
		{
			name:    "negative index is fatal",
			build:   func(t *testing.T) string { return `{"i":-1,"attempts":1}` + "\n" },
			wantErr: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			l0, l1 = validLine(t, 0), validLine(t, 1)
			recs, skipped, err := decodeRecords(strings.NewReader(tt.build(t)), 10)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("want error, got %d records", len(recs))
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != tt.records || skipped != tt.skipped {
				t.Fatalf("got %d records, %d skipped; want %d, %d", len(recs), skipped, tt.records, tt.skipped)
			}
		})
	}
}

// TestLoadCheckpointTruncatedTail drives the same guarantee end to end:
// a checkpoint whose process died mid-append resumes with the torn line
// dropped and everything before it intact.
func TestLoadCheckpointTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	w, err := openCheckpoint(dir, Manifest{Version: manifestVersion, Fingerprint: "f", Targets: 10}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.append(recordOf(i, 1, core.Identification{Valid: true, Label: "BIC", Wmax: 256})); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: tear the last line's final bytes off.
	path := filepath.Join(dir, checkpointFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	m, recs, skipped, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Targets != 10 || len(recs) != 2 || skipped != 1 {
		t.Fatalf("manifest %+v, %d records, %d skipped", m, len(recs), skipped)
	}
	for i, rec := range recs {
		if rec.I != i || !rec.identification().Valid {
			t.Fatalf("record %d corrupted: %+v", i, rec)
		}
	}
}

// TestRecordRoundTrip: a checkpointed identification reconstructs
// value-identical, including the feature vector and invalid reasons.
func TestRecordRoundTrip(t *testing.T) {
	ids := []core.Identification{
		{Label: "CUBIC2-BIG", Confidence: 0.75, Wmax: 512, MSS: 536, Valid: true, Elapsed: 42 * time.Second},
		{Reason: probe.ReasonNoResponse},
		{Reason: ReasonUnreachable},
	}
	ids[0].Vector[0] = 0.123456789
	ids[0].Vector[3] = -7.5
	for _, id := range ids {
		data, err := json.Marshal(recordOf(4, 2, id))
		if err != nil {
			t.Fatal(err)
		}
		rec, err := decodeRecord(data, 10)
		if err != nil {
			t.Fatal(err)
		}
		if got := rec.identification(); got != id {
			t.Fatalf("round trip changed the identification:\n%+v\n%+v", got, id)
		}
		if rec.Attempts != 2 {
			t.Fatalf("attempts = %d", rec.Attempts)
		}
	}
}

// FuzzCheckpoint fuzzes the record-log decoder with arbitrary bytes: it
// must never panic, and whatever it accepts must respect the population
// bound and survive a re-encode/re-decode round trip.
func FuzzCheckpoint(f *testing.F) {
	f.Add([]byte("{\"i\":0,\"attempts\":1,\"label\":\"BIC\",\"valid\":true}\n"), 10)
	f.Add([]byte("{\"i\":1,\"attempts\":2,\"reason\":\"abandoned: unreachable\"}\n{\"i\":2,\"attempts\""), 10)
	f.Add([]byte("\n\n\n"), 3)
	f.Add([]byte("{\"i\":0,\"vector\":[1,2,3]}\n"), 1)
	f.Add([]byte("not json at all"), 0)
	f.Add([]byte{0xff, 0xfe, 0x00}, 5)
	f.Fuzz(func(t *testing.T, data []byte, targets int) {
		if targets < 0 || targets > 1<<20 {
			targets = 0
		}
		recs, skipped, err := decodeRecords(bytes.NewReader(data), targets)
		if err != nil {
			return
		}
		if skipped > 1 {
			t.Fatalf("only the final line can be torn, got %d skips", skipped)
		}
		for _, rec := range recs {
			if rec.I < 0 || (targets > 0 && rec.I >= targets) {
				t.Fatalf("accepted out-of-range record %+v (targets %d)", rec, targets)
			}
			reenc, err := json.Marshal(rec)
			if err != nil {
				t.Fatalf("accepted unmarshalable record %+v: %v", rec, err)
			}
			back, err := decodeRecord(reenc, targets)
			if err != nil {
				t.Fatalf("re-decode of %s failed: %v", reenc, err)
			}
			if back.identification() != rec.identification() {
				t.Fatalf("identification not stable across re-encode: %+v vs %+v", back, rec)
			}
		}
	})
}

// FuzzManifest fuzzes the manifest decoder: no panics, and accepted
// manifests are in-range.
func FuzzManifest(f *testing.F) {
	f.Add([]byte(`{"version":1,"fingerprint":"abc","targets":10,"completed":3}`))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[1,2,3]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err != nil {
			return
		}
		if m.Version != manifestVersion || m.Targets <= 0 || m.Completed < 0 {
			t.Fatalf("accepted out-of-range manifest %+v", m)
		}
	})
}
