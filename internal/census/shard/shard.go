// Package shard rebuilds the census as a coordinator/worker system
// hardened against partial failure, for the paper's Section VII workload:
// a long-lived campaign over tens of thousands of targets where probes
// time out, targets rate-limit, workers die, and the process itself may
// be killed and restarted.
//
// The coordinator consistent-hash-shards the population across N workers.
// Each worker owns a queue and steals from the busiest peer when its own
// runs dry, so a crashed worker's backlog is absorbed by the survivors.
// Failures follow a three-way taxonomy: timeouts retry with a longer
// probe budget under exponential backoff with jitter, rate-limited
// attempts are deferred without consuming a retry, and permanently
// unreachable targets are abandoned with the reason recorded in the
// census report's InvalidByReason. Completed targets stream to an
// append-only JSONL checkpoint with an atomic manifest, so a killed
// census resumes where it stopped.
//
// Everything is deterministic by construction: probe outcomes derive from
// per-(target, attempt) seeds and injected faults (FaultPlan) from
// per-(target, trial) seeds, never from shared streams, and tables
// aggregate in population order. A run that crashes, resumes, loses
// checkpoint writes, or reshuffles work across workers therefore produces
// bit-identical Table IV output to an uninterrupted run with the same
// seed -- the contract the determinism-under-failure tests enforce.
package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/census"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/netem"
	"repro/internal/probe"
	"repro/internal/telemetry"
	"repro/internal/xrand"
)

// Abandonment reasons, surfaced through Report.InvalidByReason so
// given-up targets are accounted for rather than silently dropped.
const (
	// ReasonRetriesExhausted marks a target whose probe attempts all
	// timed out.
	ReasonRetriesExhausted = probe.InvalidReason("abandoned: retries exhausted")
	// ReasonDeferralsExhausted marks a target that stayed rate-limited
	// past the deferral budget.
	ReasonDeferralsExhausted = probe.InvalidReason("abandoned: deferral budget exhausted")
	// ReasonUnreachable marks a permanently unreachable target.
	ReasonUnreachable = probe.InvalidReason("abandoned: unreachable")
)

// Config controls a sharded census run.
type Config struct {
	// Workers is the worker (shard) count; 0 = engine default
	// parallelism, clamped to the population size.
	Workers int
	// Seed drives probing exactly like census.RunConfig.Seed: a shard
	// run with no faults is outcome-identical to census.Run with the
	// same seed.
	Seed int64
	// Probe customizes the prober (zero = paper defaults). Retries grow
	// MaxPreRounds by 50% per attempt on top of this base.
	Probe probe.Config

	// MaxAttempts bounds probe attempts per target before abandoning
	// (default 4). MaxDeferrals bounds rate-limit deferrals (default 8).
	MaxAttempts  int
	MaxDeferrals int

	// BackoffBase and BackoffMax shape the exponential backoff between
	// attempts: delay = min(BackoffBase * 2^(n-1), BackoffMax), scaled
	// by a deterministic jitter in [0.5, 1.5). Defaults 100ms / 5s.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// TargetInterval is the per-target token-bucket floor: a target is
	// contacted at most once per interval. WorkerInterval rate-limits
	// each worker's own probe launches. 0 disables either.
	TargetInterval time.Duration
	WorkerInterval time.Duration

	// Checkpoint is a directory for incremental checkpointing ("" =
	// disabled). Resume loads completed targets from it before running.
	Checkpoint string
	Resume     bool

	// Fault is the deterministic fault-injection plan (nil = none).
	Fault *FaultPlan

	// Metrics, when non-nil, mirrors every counter into an external
	// telemetry sink (the service aggregates all census jobs this way).
	Metrics *Metrics

	// Trace/TraceID, when both set, record the retry taxonomy into the
	// flight recorder under the campaign's trace: one retry event per
	// re-queued timeout (arg: attempt) and one deferral event per
	// rate-limit push-back (arg: deferral count).
	Trace   *telemetry.Flight
	TraceID telemetry.TraceID

	// Test hooks: clock, sleeper, and pre-probe observer. Nil = real
	// time. In-package tests inject a fake clock to verify pacing
	// without wall-clock waits.
	nowFn       func() time.Time
	sleepFn     func(context.Context, time.Duration)
	beforeProbe func(worker, target, attempt int, now time.Time)
}

const (
	defaultMaxAttempts  = 4
	defaultMaxDeferrals = 8
	defaultBackoffBase  = 100 * time.Millisecond
	defaultBackoffMax   = 5 * time.Second

	// idlePoll and maxIdleWait bound how long a starved worker sleeps
	// between queue scans.
	idlePoll    = 200 * time.Microsecond
	maxIdleWait = 10 * time.Millisecond
)

func (c Config) workerCount(targets int) int {
	return engine.Workers(targets, c.Workers)
}

func (c Config) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return defaultMaxAttempts
}

func (c Config) maxDeferrals() int {
	if c.MaxDeferrals > 0 {
		return c.MaxDeferrals
	}
	return defaultMaxDeferrals
}

func (c Config) backoffBase() time.Duration {
	if c.BackoffBase > 0 {
		return c.BackoffBase
	}
	return defaultBackoffBase
}

func (c Config) backoffMax() time.Duration {
	if c.BackoffMax > 0 {
		return c.BackoffMax
	}
	return defaultBackoffMax
}

// ErrStalled reports a run whose workers all crashed with work pending.
var ErrStalled = errors.New("shard: census stalled: every worker exited with targets pending")

// task is one pending target: attempt counts consumed probe attempts,
// deferrals counts rate-limit bounces, notBefore schedules backoff.
type task struct {
	idx       int
	attempt   int
	deferrals int
	notBefore time.Time
}

// workQueue is one worker's FIFO deque. The owner pops from the head,
// thieves take from the tail -- the classic work-stealing split that
// keeps owner and thieves off the same end.
type workQueue struct {
	mu    sync.Mutex
	tasks []task
	head  int
}

func (q *workQueue) push(t task) {
	q.mu.Lock()
	q.tasks = append(q.tasks, t)
	q.mu.Unlock()
}

func (q *workQueue) size() int {
	q.mu.Lock()
	n := len(q.tasks) - q.head
	q.mu.Unlock()
	return n
}

// pop removes the first ready task. When nothing is ready it returns the
// earliest notBefore among pending tasks (zero when the queue is empty).
func (q *workQueue) pop(now time.Time) (task, bool, time.Time) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var earliest time.Time
	for i := q.head; i < len(q.tasks); i++ {
		t := q.tasks[i]
		if !t.notBefore.After(now) {
			if i == q.head {
				q.head++
				if q.head > 64 && q.head*2 >= len(q.tasks) {
					n := copy(q.tasks, q.tasks[q.head:])
					q.tasks = q.tasks[:n]
					q.head = 0
				}
			} else {
				q.tasks = append(q.tasks[:i], q.tasks[i+1:]...)
			}
			return t, true, time.Time{}
		}
		if earliest.IsZero() || t.notBefore.Before(earliest) {
			earliest = t.notBefore
		}
	}
	return task{}, false, earliest
}

// steal removes up to max ready tasks from the tail.
func (q *workQueue) steal(now time.Time, max int) []task {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []task
	for i := len(q.tasks) - 1; i >= q.head && len(out) < max; i-- {
		if !q.tasks[i].notBefore.After(now) {
			out = append(out, q.tasks[i])
			q.tasks = append(q.tasks[:i], q.tasks[i+1:]...)
		}
	}
	return out
}

// Coordinator owns one sharded census run. Build with New, drive with
// Run; Progress and Report are safe to call concurrently with Run (the
// service polls them for job status and partial tables).
type Coordinator struct {
	cfg Config
	pop []census.GroundTruth
	id  *core.Identifier
	db  *netem.Database

	queues   []*workQueue
	assigned []int

	outcomes []census.Outcome
	done     []atomic.Bool
	resumed  int
	skipped  int

	remaining  atomic.Int64
	completed  atomic.Int64
	workerDone []atomic.Int64
	crashed    []atomic.Bool

	// workerNext is each worker's next allowed launch time; index w is
	// touched only by worker w's goroutine.
	workerNext []time.Time

	targetMu  sync.Mutex
	lastProbe map[int]time.Time

	ckpt *checkpointWriter

	m   Metrics  // per-run counters, feeds Progress
	ext *Metrics // optional shared sink (cfg.Metrics)

	ran atomic.Bool
}

// New validates the config, loads any resumable checkpoint, and shards
// the remaining targets across the workers' queues.
func New(pop []census.GroundTruth, id *core.Identifier, db *netem.Database, cfg Config) (*Coordinator, error) {
	if len(pop) == 0 {
		return nil, errors.New("shard: empty population")
	}
	if err := cfg.Fault.validate(); err != nil {
		return nil, err
	}
	nw := cfg.workerCount(len(pop))
	c := &Coordinator{
		cfg:        cfg,
		pop:        pop,
		id:         id,
		db:         db,
		queues:     make([]*workQueue, nw),
		assigned:   make([]int, nw),
		outcomes:   make([]census.Outcome, len(pop)),
		done:       make([]atomic.Bool, len(pop)),
		workerDone: make([]atomic.Int64, nw),
		crashed:    make([]atomic.Bool, nw),
		workerNext: make([]time.Time, nw),
		lastProbe:  map[int]time.Time{},
		ext:        cfg.Metrics,
	}
	for w := range c.queues {
		c.queues[w] = &workQueue{}
	}

	fp := fingerprint(cfg, len(pop))
	if cfg.Checkpoint != "" && cfg.Resume {
		m, recs, skipped, err := LoadCheckpoint(cfg.Checkpoint)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// First run with -resume: nothing to restore.
		case err != nil:
			return nil, err
		case m.Version != 0:
			if m.Fingerprint != fp {
				return nil, fmt.Errorf("%w (checkpoint %s, config %s)", ErrFingerprint, m.Fingerprint, fp)
			}
			for _, rec := range recs {
				c.outcomes[rec.I] = census.Outcome{Truth: pop[rec.I], ID: rec.identification()}
				if !c.done[rec.I].Swap(true) {
					c.resumed++
				}
			}
			c.skipped = skipped
		}
	}
	if cfg.Checkpoint != "" {
		failEvery := 0
		if cfg.Fault != nil {
			failEvery = cfg.Fault.CheckpointFailEvery
		}
		w, err := openCheckpoint(cfg.Checkpoint,
			Manifest{Version: manifestVersion, Fingerprint: fp, Targets: len(pop)},
			c.resumed, failEvery)
		if err != nil {
			return nil, err
		}
		c.ckpt = w
	}

	ring := newRing(nw)
	pending := 0
	for i := range pop {
		if c.done[i].Load() {
			continue
		}
		w := ring.owner(pop[i].Server.Name)
		c.queues[w].push(task{idx: i})
		c.assigned[w]++
		pending++
	}
	c.remaining.Store(int64(pending))
	c.completed.Store(int64(c.resumed))
	return c, nil
}

// Run drives the workers until every target has an outcome, the context
// is cancelled, or every worker has crashed. It may be called once.
func (c *Coordinator) Run(ctx context.Context) error {
	if c.ran.Swap(true) {
		return errors.New("shard: coordinator already ran")
	}
	if c.ckpt != nil {
		defer c.ckpt.close()
	}
	if c.remaining.Load() == 0 {
		return nil
	}
	var wg sync.WaitGroup
	for w := range c.queues {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c.worker(ctx, w, c.id.NewSession())
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	if c.remaining.Load() > 0 {
		return ErrStalled
	}
	return nil
}

// worker is one shard's loop: drain the own queue, steal when dry, die
// on schedule when the fault plan says so.
func (c *Coordinator) worker(ctx context.Context, w int, sess *core.Session) {
	crashAfter := c.cfg.Fault.crashAfter(w)
	for {
		if ctx.Err() != nil {
			return
		}
		// The crash check precedes the done check: a worker scheduled to
		// die at k completions dies even if the census finishes first, so
		// chaos runs always record the planned crash.
		if crashAfter >= 0 && c.workerDone[w].Load() >= int64(crashAfter) {
			if !c.crashed[w].Swap(true) {
				c.bump(func(m *Metrics) *telemetry.Counter { return &m.WorkerCrashes }, 1)
			}
			return
		}
		if c.remaining.Load() == 0 {
			return
		}
		t, ok, wait := c.nextTask(w)
		if !ok {
			d := idlePoll
			if !wait.IsZero() {
				if until := wait.Sub(c.now()); until > d {
					d = until
				}
			}
			if d > maxIdleWait {
				d = maxIdleWait
			}
			c.sleep(ctx, d)
			continue
		}
		c.process(ctx, w, t, sess)
	}
}

// nextTask pops from the worker's own queue, then steals from the
// busiest peer. The wait hint is the own queue's earliest backoff expiry.
func (c *Coordinator) nextTask(w int) (task, bool, time.Time) {
	now := c.now()
	t, ok, earliest := c.queues[w].pop(now)
	if ok {
		return t, true, time.Time{}
	}
	victim, best := -1, 0
	for v := range c.queues {
		if v == w {
			continue
		}
		if n := c.queues[v].size(); n > best {
			best, victim = n, v
		}
	}
	if victim >= 0 {
		if batch := c.queues[victim].steal(now, best/2+1); len(batch) > 0 {
			c.bump(func(m *Metrics) *telemetry.Counter { return &m.Steals }, 1)
			for _, r := range batch[1:] {
				c.queues[w].push(r)
			}
			return batch[0], true, time.Time{}
		}
	}
	return task{}, false, earliest
}

// process runs one task trial: pacing gates, injected faults, then the
// real probe. Transient failures requeue; everything else finishes the
// target.
func (c *Coordinator) process(ctx context.Context, w int, t task, sess *core.Session) {
	now := c.now()
	if iv := c.cfg.WorkerInterval; iv > 0 {
		if next := c.workerNext[w]; now.Before(next) {
			c.bump(func(m *Metrics) *telemetry.Counter { return &m.RateLimitWaits }, 1)
			c.sleep(ctx, next.Sub(now))
			if ctx.Err() != nil {
				return
			}
			now = c.now()
		}
		c.workerNext[w] = now.Add(iv)
	}
	if iv := c.cfg.TargetInterval; iv > 0 {
		c.targetMu.Lock()
		last, seen := c.lastProbe[t.idx]
		if seen && now.Sub(last) < iv {
			c.targetMu.Unlock()
			c.bump(func(m *Metrics) *telemetry.Counter { return &m.RateLimitWaits }, 1)
			t.notBefore = last.Add(iv)
			c.queues[w].push(t)
			return
		}
		c.lastProbe[t.idx] = now
		c.targetMu.Unlock()
	}

	trial := t.attempt + t.deferrals
	if d := c.cfg.Fault.spike(t.idx, trial); d > 0 {
		c.sleep(ctx, d)
		if ctx.Err() != nil {
			return
		}
	}

	switch c.cfg.Fault.decide(t.idx, trial) {
	case failUnreachable:
		c.bump(func(m *Metrics) *telemetry.Counter { return &m.TargetsAbandoned }, 1)
		c.finish(w, t.idx, trial+1, core.Identification{Reason: ReasonUnreachable})

	case failTimeout:
		t.attempt++
		if t.attempt >= c.cfg.maxAttempts() {
			c.bump(func(m *Metrics) *telemetry.Counter { return &m.TargetsAbandoned }, 1)
			c.finish(w, t.idx, trial+1, core.Identification{Reason: ReasonRetriesExhausted})
			return
		}
		c.bump(func(m *Metrics) *telemetry.Counter { return &m.Retries }, 1)
		c.cfg.Trace.Event(c.cfg.TraceID, telemetry.EventRetry, uint64(t.attempt))
		c.requeueAfter(w, t, c.backoffDelay(t.idx, t.attempt, 0))

	case failRateLimited:
		t.deferrals++
		if t.deferrals >= c.cfg.maxDeferrals() {
			c.bump(func(m *Metrics) *telemetry.Counter { return &m.TargetsAbandoned }, 1)
			c.finish(w, t.idx, trial+1, core.Identification{Reason: ReasonDeferralsExhausted})
			return
		}
		c.bump(func(m *Metrics) *telemetry.Counter { return &m.Deferrals }, 1)
		c.cfg.Trace.Event(c.cfg.TraceID, telemetry.EventDeferral, uint64(t.deferrals))
		c.requeueAfter(w, t, c.backoffDelay(t.idx, t.deferrals, 1))

	default:
		rng := c.probeRNG(t.idx, t.attempt)
		cond := c.db.Sample(rng)
		if f := c.cfg.beforeProbe; f != nil {
			f(w, t.idx, t.attempt, now)
		}
		// Pristine ssthresh cache per identification (see census.Run):
		// without this, a target re-probed after a lost checkpoint record
		// would see state from the pre-crash probe and the resumed tables
		// could drift from the uninterrupted run's.
		c.pop[t.idx].Server.ResetCache()
		ident := sess.Identify(c.pop[t.idx].Server, cond, c.probeConfig(t.attempt), rng)
		c.bump(func(m *Metrics) *telemetry.Counter { return &m.Probes }, 1)
		c.finish(w, t.idx, trial+1, ident)
	}
}

// requeueAfter schedules a retry/deferral after delay, floored by the
// target's token bucket.
func (c *Coordinator) requeueAfter(w int, t task, delay time.Duration) {
	c.bump(func(m *Metrics) *telemetry.Counter { return &m.BackoffNanos }, int64(delay))
	t.notBefore = c.now().Add(delay)
	if iv := c.cfg.TargetInterval; iv > 0 {
		c.targetMu.Lock()
		last, seen := c.lastProbe[t.idx]
		c.targetMu.Unlock()
		if seen {
			if floor := last.Add(iv); floor.After(t.notBefore) {
				t.notBefore = floor
				c.bump(func(m *Metrics) *telemetry.Counter { return &m.RateLimitWaits }, 1)
			}
		}
	}
	c.queues[w].push(t)
}

// backoffDelay is the deterministic exponential backoff with jitter for
// retry/deferral n (1-based) of target idx. kind salts the jitter stream
// (0 = retry, 1 = deferral).
func (c *Coordinator) backoffDelay(idx, n, kind int) time.Duration {
	d := c.cfg.backoffBase()
	max := c.cfg.backoffMax()
	for i := 1; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	jitter := 0.5 + xrand.New(mix(c.cfg.Seed, int64(idx)|int64(kind+1)<<60, int64(n))).Float64()
	return time.Duration(float64(d) * jitter)
}

// probeRNG seeds attempt a of target i. Attempt 0 uses census.Run's exact
// per-target stream -- a fault-free shard run is outcome-identical to the
// sequential census -- and retries derive fresh independent streams.
func (c *Coordinator) probeRNG(i, attempt int) *rand.Rand {
	if attempt == 0 {
		return xrand.New(c.cfg.Seed + int64(i)*6700417)
	}
	return xrand.New(mix(c.cfg.Seed, int64(i), int64(1000+attempt)))
}

// probeConfig grows the pre-timeout gathering budget 50% per retry: the
// timeout taxonomy assumes the target is slow, not silent.
func (c *Coordinator) probeConfig(attempt int) probe.Config {
	cfg := c.cfg.Probe
	if attempt == 0 {
		return cfg
	}
	pre := cfg.MaxPreRounds
	if pre <= 0 {
		pre = 40 // the prober's own default
	}
	cfg.MaxPreRounds = pre + attempt*pre/2
	return cfg
}

// finish publishes a target's final outcome: the report slot, the
// attempt histogram, the checkpoint, and the progress counters.
func (c *Coordinator) finish(w, idx, attempts int, ident core.Identification) {
	c.outcomes[idx] = census.Outcome{Truth: c.pop[idx], ID: ident}
	c.done[idx].Store(true)
	c.m.Attempts.Observe(int64(attempts))
	if c.ext != nil {
		c.ext.Attempts.Observe(int64(attempts))
	}
	if c.cfg.TargetInterval > 0 {
		c.targetMu.Lock()
		delete(c.lastProbe, idx)
		c.targetMu.Unlock()
	}
	if c.ckpt != nil {
		if err := c.ckpt.append(recordOf(idx, attempts, ident)); err != nil {
			// Durability degraded, correctness intact: the outcome stays
			// in memory and a resume re-probes it deterministically.
			c.bump(func(m *Metrics) *telemetry.Counter { return &m.CheckpointFailures }, 1)
		} else {
			c.bump(func(m *Metrics) *telemetry.Counter { return &m.CheckpointWrites }, 1)
		}
	}
	c.workerDone[w].Add(1)
	c.completed.Add(1)
	c.remaining.Add(-1)
}

// bump adds n to one counter in the per-run metrics and mirrors it into
// the shared sink when configured.
func (c *Coordinator) bump(get func(*Metrics) *telemetry.Counter, n int64) {
	get(&c.m).Add(n)
	if c.ext != nil {
		get(c.ext).Add(n)
	}
}

func (c *Coordinator) now() time.Time {
	if c.cfg.nowFn != nil {
		return c.cfg.nowFn()
	}
	return time.Now()
}

func (c *Coordinator) sleep(ctx context.Context, d time.Duration) {
	if c.cfg.sleepFn != nil {
		c.cfg.sleepFn(ctx, d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Progress snapshots the run. Safe to call concurrently with Run.
func (c *Coordinator) Progress() Progress {
	p := Progress{
		Targets:            len(c.pop),
		Completed:          int(c.completed.Load()),
		Resumed:            c.resumed,
		Probes:             c.m.Probes.Load(),
		Retries:            c.m.Retries.Load(),
		Deferrals:          c.m.Deferrals.Load(),
		RateLimitWaits:     c.m.RateLimitWaits.Load(),
		Steals:             c.m.Steals.Load(),
		TargetsAbandoned:   c.m.TargetsAbandoned.Load(),
		BackoffSeconds:     float64(c.m.BackoffNanos.Load()) / float64(time.Second),
		CheckpointWrites:   c.m.CheckpointWrites.Load(),
		CheckpointFailures: c.m.CheckpointFailures.Load(),
		CheckpointSkipped:  c.skipped,
		Attempts:           c.m.Attempts.Snapshot(),
	}
	p.Workers = make([]WorkerProgress, len(c.queues))
	for w := range c.queues {
		p.Workers[w] = WorkerProgress{
			Assigned:  c.assigned[w],
			Completed: c.workerDone[w].Load(),
			Crashed:   c.crashed[w].Load(),
		}
	}
	return p
}

// Report aggregates the targets completed so far, in population order.
// After a clean Run it is the full census report (Total = population);
// mid-run or after an interrupted one it covers completed targets only,
// which is how the service serves partial demographic tables.
func (c *Coordinator) Report() *census.Report {
	outcomes := make([]census.Outcome, 0, c.completed.Load())
	for i := range c.done {
		if c.done[i].Load() {
			outcomes = append(outcomes, c.outcomes[i])
		}
	}
	return census.Aggregate(outcomes)
}

// Run shards, probes, and aggregates in one call: the sharded
// counterpart of census.Run, returning the (possibly partial) report,
// final progress, and the run error.
func Run(ctx context.Context, pop []census.GroundTruth, id *core.Identifier, db *netem.Database, cfg Config) (*census.Report, Progress, error) {
	c, err := New(pop, id, db, cfg)
	if err != nil {
		return nil, Progress{}, err
	}
	err = c.Run(ctx)
	return c.Report(), c.Progress(), err
}
