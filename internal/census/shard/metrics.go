package shard

import "repro/internal/telemetry"

// Metrics is an optional external telemetry sink for a sharded census:
// the service wires one per process so /metrics aggregates every census
// job, while the coordinator's own Progress() reports per-run values.
// All fields follow the telemetry package's lock-free, zero-allocation
// contract, so mirroring them adds no synchronization to the hot path.
type Metrics struct {
	// Probes counts real probe executions (injected faults excluded).
	Probes telemetry.Counter
	// Retries counts probe attempts re-queued after an injected timeout.
	Retries telemetry.Counter
	// Deferrals counts rate-limited attempts pushed back without
	// consuming a probe attempt.
	Deferrals telemetry.Counter
	// BackoffNanos accumulates scheduled retry/deferral backoff delay.
	BackoffNanos telemetry.Counter
	// RateLimitWaits counts probes delayed or re-queued by the per-target
	// or per-worker token buckets.
	RateLimitWaits telemetry.Counter
	// Steals counts work batches taken from another worker's queue.
	Steals telemetry.Counter
	// TargetsAbandoned counts targets given up on (retries exhausted,
	// deferral budget exhausted, or permanently unreachable).
	TargetsAbandoned telemetry.Counter
	// CheckpointWrites and CheckpointFailures count durable record
	// appends and failed ones (injected or real).
	CheckpointWrites   telemetry.Counter
	CheckpointFailures telemetry.Counter
	// WorkerCrashes counts injected worker deaths.
	WorkerCrashes telemetry.Counter
	// Attempts is the per-target distribution of contact attempts
	// consumed (1 = first-try success).
	Attempts telemetry.CountHist
}

// Progress is a point-in-time snapshot of a sharded census run, safe to
// marshal (the service's census job status embeds it).
type Progress struct {
	// Targets is the population size; Completed counts targets with a
	// final outcome (probed, resumed, or abandoned); Resumed counts those
	// restored from the checkpoint rather than probed in this run.
	Targets   int `json:"targets"`
	Completed int `json:"completed"`
	Resumed   int `json:"resumed"`

	Probes           int64 `json:"probes"`
	Retries          int64 `json:"retries"`
	Deferrals        int64 `json:"deferrals"`
	RateLimitWaits   int64 `json:"rate_limit_waits"`
	Steals           int64 `json:"steals"`
	TargetsAbandoned int64 `json:"targets_abandoned"`

	// BackoffSeconds is the total scheduled backoff delay.
	BackoffSeconds float64 `json:"backoff_seconds"`

	CheckpointWrites   int64 `json:"checkpoint_writes"`
	CheckpointFailures int64 `json:"checkpoint_failures"`
	// CheckpointSkipped counts torn trailing records dropped on resume.
	CheckpointSkipped int `json:"checkpoint_skipped,omitempty"`

	// Attempts is the per-target contact-attempt distribution.
	Attempts telemetry.CountHistSnapshot `json:"attempts"`

	// Workers reports per-worker completion counts and injected crashes.
	Workers []WorkerProgress `json:"workers"`
}

// WorkerProgress is one worker's slice of a Progress snapshot.
type WorkerProgress struct {
	// Assigned is the worker's initial consistent-hash shard size.
	Assigned int `json:"assigned"`
	// Completed counts targets the worker finished (including steals).
	Completed int64 `json:"completed"`
	// Crashed reports an injected death.
	Crashed bool `json:"crashed"`
}
