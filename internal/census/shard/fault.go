package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/xrand"
)

// FaultPlan is the deterministic fault-injection harness of a sharded
// census: every decision is a pure function of (plan seed, target index,
// trial number), so a chaos run is exactly reproducible in CI regardless
// of worker scheduling -- and, critically, a killed-and-resumed run under
// the same plan replays the same faults and converges to the same tables
// as an uninterrupted one.
//
// The zero value injects nothing.
type FaultPlan struct {
	// Seed drives every fault decision. Two plans with equal knobs and
	// equal seeds inject identical fault sequences.
	Seed int64 `json:"seed"`

	// ProbeErrorRate is the per-trial probability that a probe attempt
	// fails with a transient timeout (the campaign-dominating failure mode
	// of live measurement: lossy paths, slow servers). Timeouts are
	// retried with a longer probe budget.
	ProbeErrorRate float64 `json:"probe_error_rate,omitempty"`

	// RateLimitRate is the per-trial probability that a probe attempt is
	// bounced by the target's rate limiter. Rate-limited attempts are
	// deferred with backoff and do not consume a probe attempt.
	RateLimitRate float64 `json:"rate_limit_rate,omitempty"`

	// UnreachableRate is the per-target probability that a target is
	// permanently unreachable: the invalid-forever class, abandoned on
	// first contact and recorded under ReasonUnreachable.
	UnreachableRate float64 `json:"unreachable_rate,omitempty"`

	// LatencySpikeRate injects a pre-probe latency spike of LatencySpikeMs
	// on that fraction of trials. Spikes slow the run without changing any
	// outcome, exercising pacing and steal paths.
	LatencySpikeRate float64 `json:"latency_spike_rate,omitempty"`
	LatencySpikeMs   float64 `json:"latency_spike_ms,omitempty"`

	// WorkerCrashes kills coordinator workers mid-run: worker Worker stops
	// (without draining its queue) after completing AfterCompleted targets.
	// Surviving workers steal the dead worker's backlog.
	WorkerCrashes []WorkerCrash `json:"worker_crashes,omitempty"`

	// CheckpointFailEvery fails every Nth checkpoint append (the write
	// error is swallowed and counted; the outcome stays in memory and is
	// simply re-probed after a resume). 0 disables.
	CheckpointFailEvery int `json:"checkpoint_fail_every,omitempty"`
}

// WorkerCrash schedules one deterministic worker death.
type WorkerCrash struct {
	// Worker is the coordinator worker index to kill.
	Worker int `json:"worker"`
	// AfterCompleted is how many targets the worker completes first.
	AfterCompleted int `json:"after_completed"`
}

// failureKind classifies one injected fault, driving the retry taxonomy.
type failureKind int

const (
	failNone        failureKind = iota
	failTimeout                 // transient: retry with a longer probe budget
	failRateLimited             // transient: back off and defer, attempt not consumed
	failUnreachable             // permanent: abandon and record why
)

// mix folds (seed, a, b) through a SplitMix64 finalizer into an
// independent derived seed: the per-(target, trial) decision streams and
// the per-(target, attempt) retry RNGs must not correlate with each other
// or with the probing streams.
func mix(seed, a, b int64) int64 {
	z := uint64(seed) + uint64(a)*0x9E3779B97F4A7C15 + uint64(b)*0xC2B2AE3D27D4EB4F + 0x165667B19E3779F9
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// decide classifies trial number `trial` of target i. Trials count every
// contact attempt (probe attempts and rate-limit bounces alike) so the
// decision stream advances whatever the outcome of the previous trial.
func (p *FaultPlan) decide(i, trial int) failureKind {
	if p == nil {
		return failNone
	}
	if p.UnreachableRate > 0 {
		// Per-target, trial-independent: unreachable means every contact
		// fails, so the draw must not vary with the trial number.
		if xrand.New(mix(p.Seed, int64(i), -1)).Float64() < p.UnreachableRate {
			return failUnreachable
		}
	}
	if p.ProbeErrorRate <= 0 && p.RateLimitRate <= 0 {
		return failNone
	}
	r := xrand.New(mix(p.Seed, int64(i), int64(trial))).Float64()
	switch {
	case r < p.ProbeErrorRate:
		return failTimeout
	case r < p.ProbeErrorRate+p.RateLimitRate:
		return failRateLimited
	default:
		return failNone
	}
}

// spike returns the injected pre-probe latency for trial `trial` of
// target i (0 for most trials).
func (p *FaultPlan) spike(i, trial int) time.Duration {
	if p == nil || p.LatencySpikeRate <= 0 || p.LatencySpikeMs <= 0 {
		return 0
	}
	if xrand.New(mix(p.Seed, int64(i)|1<<62, int64(trial))).Float64() < p.LatencySpikeRate {
		return time.Duration(p.LatencySpikeMs * float64(time.Millisecond))
	}
	return 0
}

// crashAfter returns how many targets worker w completes before it dies,
// or -1 when w survives the whole run.
func (p *FaultPlan) crashAfter(w int) int {
	if p == nil {
		return -1
	}
	for _, c := range p.WorkerCrashes {
		if c.Worker == w {
			return c.AfterCompleted
		}
	}
	return -1
}

// Validate rejects plans whose knobs are outside their domains. The
// service pre-validates client-supplied plans at submission time so a bad
// plan is a 400, not a failed job.
func (p *FaultPlan) Validate() error { return p.validate() }

// validate rejects plans whose knobs are outside their domains.
func (p *FaultPlan) validate() error {
	if p == nil {
		return nil
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"probe_error_rate", p.ProbeErrorRate},
		{"rate_limit_rate", p.RateLimitRate},
		{"unreachable_rate", p.UnreachableRate},
		{"latency_spike_rate", p.LatencySpikeRate},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("fault plan: %s must be in [0, 1], got %v", f.name, f.v)
		}
	}
	if p.ProbeErrorRate+p.RateLimitRate > 1 {
		return fmt.Errorf("fault plan: probe_error_rate + rate_limit_rate must not exceed 1")
	}
	if p.LatencySpikeMs < 0 {
		return fmt.Errorf("fault plan: latency_spike_ms must be non-negative")
	}
	if p.CheckpointFailEvery < 0 {
		return fmt.Errorf("fault plan: checkpoint_fail_every must be non-negative")
	}
	for _, c := range p.WorkerCrashes {
		if c.Worker < 0 || c.AfterCompleted < 0 {
			return fmt.Errorf("fault plan: worker crash %+v must be non-negative", c)
		}
	}
	return nil
}

// LoadFaultPlan reads a FaultPlan from a JSON file (the -fault-plan flag
// of cmd/caai-census). Unknown fields are rejected so a typoed knob fails
// loudly instead of silently injecting nothing.
func LoadFaultPlan(path string) (*FaultPlan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p FaultPlan
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("fault plan %s: %v", path, err)
	}
	if err := p.validate(); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &p, nil
}
