package shard

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/feature"
	"repro/internal/probe"
	"repro/internal/trace"
)

// Checkpoint layout: a checkpoint directory holds
//
//	checkpoint.jsonl  -- append-only, one Record per completed target
//	MANIFEST.json     -- atomically replaced (tmp+rename) metadata
//
// The JSONL file is the source of truth: a record is durable the moment
// its line (with trailing newline) hits the file. The manifest carries a
// config fingerprint so a resume against a different population, seed, or
// fault plan fails loudly instead of merging incompatible outcomes. A
// crash can leave a truncated final line; Load skips it (that target is
// simply re-probed -- deterministically, so the tables cannot drift) and
// treats any corruption *before* the final line as fatal.

const (
	checkpointFile = "checkpoint.jsonl"
	manifestFile   = "MANIFEST.json"
)

// Record is one durably completed target in the checkpoint log. It
// round-trips the full Identification except Timings (wall-clock spans,
// zero in shard runs), so a resumed run's outcomes are value-identical to
// an uninterrupted run's.
type Record struct {
	// I is the population index of the target.
	I int `json:"i"`
	// Attempts is the number of contact attempts the target consumed
	// (1 for a first-try success).
	Attempts int `json:"attempts"`

	Label      string    `json:"label,omitempty"`
	Confidence float64   `json:"conf,omitempty"`
	Special    int       `json:"special,omitempty"`
	Vector     []float64 `json:"vector,omitempty"`
	Wmax       int       `json:"wmax,omitempty"`
	MSS        int       `json:"mss,omitempty"`
	Valid      bool      `json:"valid,omitempty"`
	Reason     string    `json:"reason,omitempty"`
	ElapsedNs  int64     `json:"elapsed_ns,omitempty"`
}

// recordOf flattens an identification into its checkpoint record.
func recordOf(i, attempts int, id core.Identification) Record {
	r := Record{
		I:          i,
		Attempts:   attempts,
		Label:      id.Label,
		Confidence: id.Confidence,
		Special:    int(id.Special),
		Wmax:       id.Wmax,
		MSS:        id.MSS,
		Valid:      id.Valid,
		Reason:     string(id.Reason),
		ElapsedNs:  int64(id.Elapsed),
	}
	var zero feature.Vector
	if id.Vector != zero {
		r.Vector = append(r.Vector, id.Vector[:]...)
	}
	return r
}

// identification reconstructs the Identification a record was made from.
func (r Record) identification() core.Identification {
	id := core.Identification{
		Label:      r.Label,
		Confidence: r.Confidence,
		Special:    trace.Special(r.Special),
		Wmax:       r.Wmax,
		MSS:        r.MSS,
		Valid:      r.Valid,
		Reason:     probe.InvalidReason(r.Reason),
		Elapsed:    time.Duration(r.ElapsedNs),
	}
	copy(id.Vector[:], r.Vector)
	return id
}

// Manifest is the atomically replaced checkpoint metadata.
type Manifest struct {
	// Version is the checkpoint format version.
	Version int `json:"version"`
	// Fingerprint binds the checkpoint to its census configuration
	// (population, seed, probe budget, retry policy, fault plan).
	Fingerprint string `json:"fingerprint"`
	// Targets is the population size of the run.
	Targets int `json:"targets"`
	// Completed is the number of records at the last manifest update; the
	// JSONL file may be ahead (records are durable first), never behind.
	Completed int `json:"completed"`
}

// manifestVersion is the current checkpoint format version.
const manifestVersion = 1

// fingerprint hashes the identity-defining parts of a census config. Two
// runs with equal fingerprints probe the same targets with the same seeds
// under the same fault plan, so their outcomes can be merged.
func fingerprint(cfg Config, targets int) string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d|targets=%d|seed=%d|attempts=%d|deferrals=%d|",
		manifestVersion, targets, cfg.Seed, cfg.maxAttempts(), cfg.maxDeferrals())
	fmt.Fprintf(h, "probe=%+v|", cfg.Probe)
	if cfg.Fault != nil {
		plan, _ := json.Marshal(cfg.Fault)
		h.Write(plan)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// ErrFingerprint reports a resume against an incompatible checkpoint.
var ErrFingerprint = errors.New("shard: checkpoint fingerprint does not match census config")

// decodeManifest parses and validates a manifest document.
func decodeManifest(data []byte) (Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&m); err != nil {
		return Manifest{}, fmt.Errorf("shard: manifest: %v", err)
	}
	if m.Version != manifestVersion {
		return Manifest{}, fmt.Errorf("shard: manifest version %d, want %d", m.Version, manifestVersion)
	}
	if m.Targets <= 0 || m.Completed < 0 {
		return Manifest{}, fmt.Errorf("shard: manifest out of range: %+v", m)
	}
	return m, nil
}

// decodeRecords parses a checkpoint JSONL stream. targets bounds the
// population indices (0 disables the bound, for fuzzing arbitrary logs).
// A corrupt or out-of-range *final* line without a trailing newline is
// the torn-write crash artifact: it is skipped and counted, not fatal.
// Corruption anywhere else is fatal.
func decodeRecords(r io.Reader, targets int) (recs []Record, skipped int, err error) {
	br := bufio.NewReader(r)
	for {
		line, rerr := br.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			return nil, 0, rerr
		}
		truncated := rerr == io.EOF && len(line) > 0
		if trimmed := bytes.TrimSpace(line); len(trimmed) > 0 {
			rec, derr := decodeRecord(trimmed, targets)
			switch {
			case derr == nil:
				recs = append(recs, rec)
			case truncated:
				skipped++
			default:
				return nil, 0, fmt.Errorf("shard: corrupt checkpoint record %q: %v", clip(trimmed), derr)
			}
		}
		if rerr == io.EOF {
			return recs, skipped, nil
		}
	}
}

// decodeRecord parses one checkpoint line and range-checks it.
func decodeRecord(line []byte, targets int) (Record, error) {
	var rec Record
	if err := json.Unmarshal(line, &rec); err != nil {
		return Record{}, err
	}
	if rec.I < 0 || (targets > 0 && rec.I >= targets) {
		return Record{}, fmt.Errorf("target index %d out of range [0, %d)", rec.I, targets)
	}
	if rec.Attempts < 0 {
		return Record{}, fmt.Errorf("negative attempts %d", rec.Attempts)
	}
	if len(rec.Vector) > len(feature.Vector{}) {
		return Record{}, fmt.Errorf("vector has %d features, max %d", len(rec.Vector), len(feature.Vector{}))
	}
	return rec, nil
}

// clip bounds a corrupt line for error messages.
func clip(b []byte) []byte {
	if len(b) > 80 {
		return b[:80]
	}
	return b
}

// LoadCheckpoint reads a checkpoint directory. It returns the manifest,
// the durable records (later records win on duplicate indices), and the
// number of torn trailing lines skipped. A directory with no manifest is
// an empty checkpoint (nothing ran); a missing directory is an error.
func LoadCheckpoint(dir string) (Manifest, []Record, int, error) {
	if st, err := os.Stat(dir); err != nil {
		return Manifest{}, nil, 0, err
	} else if !st.IsDir() {
		return Manifest{}, nil, 0, fmt.Errorf("shard: checkpoint path %s is not a directory", dir)
	}
	mdata, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if errors.Is(err, os.ErrNotExist) {
		return Manifest{}, nil, 0, nil
	} else if err != nil {
		return Manifest{}, nil, 0, err
	}
	m, err := decodeManifest(mdata)
	if err != nil {
		return Manifest{}, nil, 0, err
	}
	f, err := os.Open(filepath.Join(dir, checkpointFile))
	if errors.Is(err, os.ErrNotExist) {
		return m, nil, 0, nil
	} else if err != nil {
		return Manifest{}, nil, 0, err
	}
	defer f.Close()
	recs, skipped, err := decodeRecords(f, m.Targets)
	if err != nil {
		return Manifest{}, nil, 0, err
	}
	return m, recs, skipped, nil
}

// checkpointWriter appends records durably and keeps the manifest fresh.
// Appends are serialized (workers complete targets concurrently) and each
// record is flushed with its trailing newline before append returns, so
// the torn-write window is confined to the final line.
type checkpointWriter struct {
	mu        sync.Mutex
	f         *os.File
	dir       string
	manifest  Manifest
	appended  int // records since the last manifest update
	total     int // records ever written (for fault cadence)
	failEvery int // inject a write failure every Nth append (0 = never)
}

// manifestEvery bounds how stale the manifest's Completed count may get.
const manifestEvery = 32

// openCheckpoint opens dir for appending, creating it (and the manifest)
// on first use and validating the fingerprint on reuse. completed is the
// number of records already loaded by the caller.
func openCheckpoint(dir string, m Manifest, completed, failEvery int) (*checkpointWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, checkpointFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	w := &checkpointWriter{f: f, dir: dir, manifest: m, failEvery: failEvery}
	w.manifest.Completed = completed
	if err := w.writeManifest(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// errInjectedWrite is the checkpoint-write failure injected by FaultPlan.
var errInjectedWrite = errors.New("shard: injected checkpoint write failure")

// append writes one record line and flushes it. Injected failures drop
// the record before it reaches the file, modeling a full disk or torn
// write: the in-memory outcome survives, only durability is lost.
func (w *checkpointWriter) append(rec Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.total++
	if w.failEvery > 0 && w.total%w.failEvery == 0 {
		return errInjectedWrite
	}
	if _, err := w.f.Write(append(data, '\n')); err != nil {
		return err
	}
	w.manifest.Completed++
	w.appended++
	if w.appended >= manifestEvery {
		w.appended = 0
		return w.writeManifest()
	}
	return nil
}

// writeManifest atomically replaces the manifest (tmp+rename). Callers
// hold w.mu.
func (w *checkpointWriter) writeManifest() error {
	data, err := json.MarshalIndent(w.manifest, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(w.dir, manifestFile+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(w.dir, manifestFile))
}

// close flushes the final manifest and releases the log file.
func (w *checkpointWriter) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	merr := w.writeManifest()
	if err := w.f.Close(); err != nil {
		return err
	}
	return merr
}
