package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring of worker virtual nodes. Targets hash
// onto the ring by server name and belong to the next vnode clockwise, so
// shard assignment is stable: changing the worker count only remaps the
// ~1/N of targets nearest the moved vnodes, and two runs with the same
// worker count shard identically (the resume path relies on that only for
// load balance, never for correctness -- any worker may finish any target
// via stealing).
type ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash   uint64
	worker int
}

// vnodesPerWorker trades ring size for assignment smoothness; 64 vnodes
// keeps per-worker shard sizes within a few percent of each other.
const vnodesPerWorker = 64

// newRing builds the ring for `workers` workers.
func newRing(workers int) *ring {
	r := &ring{points: make([]ringPoint, 0, workers*vnodesPerWorker)}
	for w := 0; w < workers; w++ {
		for v := 0; v < vnodesPerWorker; v++ {
			r.points = append(r.points, ringPoint{
				hash:   hashKey(fmt.Sprintf("worker-%d-vnode-%d", w, v)),
				worker: w,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].worker < r.points[j].worker
	})
	return r
}

// owner returns the worker whose vnode follows key's hash clockwise.
func (r *ring) owner(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].worker
}

// hashKey hashes a ring key: FNV-1a for the string walk, then a
// SplitMix64 finalizer. Raw FNV of near-identical keys ("worker-0-vnode-1",
// "worker-0-vnode-2") clusters badly on the ring; the finalizer's
// avalanche restores uniform vnode placement. Stable across processes.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	z := h.Sum64()
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
