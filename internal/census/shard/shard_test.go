package shard

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/census"
	"repro/internal/core"
	"repro/internal/netem"
)

// stubClassifier is a deterministic zero-cost model: shard tests exercise
// probing, scheduling, and fault tolerance, not classification quality,
// so they skip forest training entirely.
type stubClassifier struct{}

func (stubClassifier) Name() string { return "stub" }

func (stubClassifier) Classify(features []float64) (string, float64) {
	if len(features) > 0 && features[0] > 0.5 {
		return "BIC", 0.9
	}
	return "RENO", 0.8
}

// testEnv builds a small deterministic census environment.
func testEnv(t testing.TB, servers int) ([]census.GroundTruth, *core.Identifier, *netem.Database) {
	t.Helper()
	cfg := census.DefaultPopulationConfig()
	cfg.Servers = servers
	return census.GeneratePopulation(cfg), core.NewIdentifier(stubClassifier{}), netem.MeasuredDatabase()
}

// fastBackoff keeps fault-heavy tests from sleeping real milliseconds.
func fastBackoff(cfg *Config) {
	cfg.BackoffBase = time.Microsecond
	cfg.BackoffMax = 50 * time.Microsecond
}

// TestNoFaultMatchesCensusRun is the equivalence contract: a sharded run
// with no faults produces outcome-identical results to census.Run with
// the same seed, whatever the worker count.
func TestNoFaultMatchesCensusRun(t *testing.T) {
	pop, id, db := testEnv(t, 120)
	want := census.Run(pop, id, db, census.RunConfig{Seed: 7})

	for _, workers := range []int{1, 3, 8} {
		got, prog, err := Run(context.Background(), pop, id, db, Config{Workers: workers, Seed: 7})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if prog.Completed != len(pop) || prog.Retries != 0 || prog.TargetsAbandoned != 0 {
			t.Fatalf("workers=%d: progress %+v", workers, prog)
		}
		if !reflect.DeepEqual(got.Outcomes, want.Outcomes) {
			t.Fatalf("workers=%d: outcomes differ from census.Run", workers)
		}
		if got.TableIV() != want.TableIV() {
			t.Fatalf("workers=%d: tables differ:\n%s\n--\n%s", workers, got.TableIV(), want.TableIV())
		}
	}
}

// chaosPlan is the fixed plan of the CI chaos smoke: one worker crash,
// 5% probe errors, plus rate limiting, unreachables, latency spikes, and
// lost checkpoint writes.
func chaosPlan() *FaultPlan {
	return &FaultPlan{
		Seed:                3,
		ProbeErrorRate:      0.05,
		RateLimitRate:       0.05,
		UnreachableRate:     0.02,
		LatencySpikeRate:    0.02,
		LatencySpikeMs:      0.01,
		WorkerCrashes:       []WorkerCrash{{Worker: 1, AfterCompleted: 5}},
		CheckpointFailEvery: 7,
	}
}

// TestChaosResumeDeterminism is the determinism-under-failure property
// (and the CI chaos smoke): a census killed mid-run and resumed from its
// checkpoint under a seeded FaultPlan yields byte-identical Table IV and
// accuracy to the uninterrupted run with the same seed.
func TestChaosResumeDeterminism(t *testing.T) {
	pop, id, db := testEnv(t, 120)
	base := Config{Workers: 4, Seed: 9, Fault: chaosPlan()}
	fastBackoff(&base)

	clean, cleanProg, err := Run(context.Background(), pop, id, db, base)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if cleanProg.Retries == 0 || cleanProg.TargetsAbandoned == 0 {
		t.Fatalf("chaos plan injected nothing: %+v", cleanProg)
	}

	// Interrupted run: kill the census after a third of the probes. The
	// cancellation fires from the probe hook, so the cut-off is exact and
	// the test never races the run to completion.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var probes atomic.Int64
	interrupted := base
	interrupted.Checkpoint = t.TempDir()
	interrupted.beforeProbe = func(_, _, _ int, _ time.Time) {
		if probes.Add(1) == int64(len(pop)/3) {
			cancel()
		}
	}
	c, err := New(pop, id, db, interrupted)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	if got := c.Progress().Completed; got >= len(pop) {
		t.Fatalf("interruption came too late to prove anything: %d/%d", got, len(pop))
	}

	// ...then resume in a fresh coordinator, as a restarted process would.
	resume := interrupted
	resume.Resume = true
	resume.beforeProbe = nil
	r, err := New(pop, id, db, resume)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(context.Background()); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	prog := r.Progress()
	if prog.Resumed == 0 {
		t.Fatal("resume restored nothing from the checkpoint")
	}
	got := r.Report()

	if got.TableIV() != clean.TableIV() {
		t.Fatalf("resumed table differs from clean run:\n%s\n--\n%s", got.TableIV(), clean.TableIV())
	}
	if got.Accuracy() != clean.Accuracy() {
		t.Fatalf("accuracy %v != %v", got.Accuracy(), clean.Accuracy())
	}
	if !reflect.DeepEqual(got.Outcomes, clean.Outcomes) {
		t.Fatal("resumed outcomes differ from clean run")
	}
	if !reflect.DeepEqual(got.InvalidByReason, clean.InvalidByReason) {
		t.Fatalf("invalid accounting differs: %v vs %v", got.InvalidByReason, clean.InvalidByReason)
	}
}

// TestAbandonedTargetsAccounted: every given-up target lands in
// InvalidByReason under its abandonment reason -- never silently dropped.
func TestAbandonedTargetsAccounted(t *testing.T) {
	pop, id, db := testEnv(t, 80)
	cfg := Config{
		Workers:      3,
		Seed:         11,
		MaxAttempts:  2,
		MaxDeferrals: 2,
		Fault: &FaultPlan{
			Seed:            5,
			ProbeErrorRate:  0.45,
			RateLimitRate:   0.25,
			UnreachableRate: 0.10,
		},
	}
	fastBackoff(&cfg)
	report, prog, err := Run(context.Background(), pop, id, db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if report.Total != len(pop) {
		t.Fatalf("total = %d, want %d", report.Total, len(pop))
	}
	abandoned := 0
	for _, reason := range []string{
		string(ReasonUnreachable), string(ReasonRetriesExhausted), string(ReasonDeferralsExhausted),
	} {
		n := 0
		for r, c := range report.InvalidByReason {
			if string(r) == reason {
				n = c
			}
		}
		if n == 0 {
			t.Errorf("no targets recorded under %q", reason)
		}
		abandoned += n
	}
	if int64(abandoned) != prog.TargetsAbandoned {
		t.Fatalf("InvalidByReason abandoned sum %d != counter %d", abandoned, prog.TargetsAbandoned)
	}
	if prog.Retries == 0 || prog.Deferrals == 0 {
		t.Fatalf("expected retries and deferrals: %+v", prog)
	}
	if prog.Attempts.Max() < 2 {
		t.Fatalf("attempt histogram never saw a retry: %+v", prog.Attempts)
	}
	if prog.Attempts.Count != int64(len(pop)) {
		t.Fatalf("attempt histogram count %d != population %d", prog.Attempts.Count, len(pop))
	}
}

// fakeClock is a deterministic time source: sleeps advance it instantly,
// so pacing tests assert real token-bucket spacing without waiting.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) sleep(_ context.Context, d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestPerTargetRateLimitHonored drives retries at the same targets and
// asserts no target is ever probed above its token-bucket rate, with the
// limiter's interventions visible in the RateLimitWaits counter.
func TestPerTargetRateLimitHonored(t *testing.T) {
	pop, id, db := testEnv(t, 40)
	clock := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	const interval = 10 * time.Millisecond

	var mu sync.Mutex
	probeTimes := map[int][]time.Time{}

	cfg := Config{
		Workers:        2,
		Seed:           13,
		TargetInterval: interval,
		// Backoff far below the target interval, so only the token bucket
		// can keep retry spacing legal.
		BackoffBase: time.Microsecond,
		BackoffMax:  2 * time.Microsecond,
		Fault:       &FaultPlan{Seed: 21, ProbeErrorRate: 0.5},
		nowFn:       clock.now,
		sleepFn:     clock.sleep,
		beforeProbe: func(_, target, _ int, now time.Time) {
			mu.Lock()
			probeTimes[target] = append(probeTimes[target], now)
			mu.Unlock()
		},
	}
	_, prog, err := Run(context.Background(), pop, id, db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if prog.RateLimitWaits == 0 {
		t.Fatal("token bucket never intervened; the test proves nothing")
	}
	if prog.Retries == 0 {
		t.Fatal("no retries injected; per-target spacing untested")
	}
	for target, times := range probeTimes {
		for i := 1; i < len(times); i++ {
			if gap := times[i].Sub(times[i-1]); gap < interval {
				t.Fatalf("target %d probed %v apart, want >= %v", target, gap, interval)
			}
		}
	}
}

// TestWorkerCrashBacklogStolen: a worker that dies immediately loses no
// work -- survivors steal its entire shard.
func TestWorkerCrashBacklogStolen(t *testing.T) {
	pop, id, db := testEnv(t, 60)
	cfg := Config{
		Workers: 3,
		Seed:    17,
		Fault:   &FaultPlan{Seed: 1, WorkerCrashes: []WorkerCrash{{Worker: 0, AfterCompleted: 0}}},
	}
	report, prog, err := Run(context.Background(), pop, id, db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if report.Total != len(pop) || prog.Completed != len(pop) {
		t.Fatalf("crash dropped work: %+v", prog)
	}
	if !prog.Workers[0].Crashed || prog.Workers[0].Completed != 0 {
		t.Fatalf("worker 0 should have died at 0 completions: %+v", prog.Workers[0])
	}
	if prog.Workers[0].Assigned == 0 {
		t.Fatal("worker 0 had no shard; crash test proves nothing")
	}
	if prog.Steals == 0 {
		t.Fatal("no steals recorded while absorbing a dead worker's shard")
	}
}

// TestAllWorkersCrashedStalls: when every worker dies the run reports
// ErrStalled and the partial report covers exactly the completed targets.
func TestAllWorkersCrashedStalls(t *testing.T) {
	pop, id, db := testEnv(t, 50)
	cfg := Config{
		Workers: 2,
		Seed:    19,
		Fault: &FaultPlan{
			WorkerCrashes: []WorkerCrash{{Worker: 0, AfterCompleted: 3}, {Worker: 1, AfterCompleted: 3}},
		},
	}
	report, prog, err := Run(context.Background(), pop, id, db, cfg)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	if prog.Completed >= len(pop) || prog.Completed < 6 {
		t.Fatalf("completed = %d, want a partial count >= 6", prog.Completed)
	}
	if report.Total != prog.Completed {
		t.Fatalf("partial report covers %d targets, progress says %d", report.Total, prog.Completed)
	}
}

// TestResumeFingerprintMismatch: resuming a checkpoint written under a
// different config fails loudly instead of merging incompatible outcomes.
func TestResumeFingerprintMismatch(t *testing.T) {
	pop, id, db := testEnv(t, 30)
	dir := t.TempDir()
	if _, _, err := Run(context.Background(), pop, id, db, Config{Workers: 2, Seed: 23, Checkpoint: dir}); err != nil {
		t.Fatal(err)
	}
	_, err := New(pop, id, db, Config{Workers: 2, Seed: 24, Checkpoint: dir, Resume: true})
	if !errors.Is(err, ErrFingerprint) {
		t.Fatalf("err = %v, want ErrFingerprint", err)
	}
	// Same config resumes cleanly -- and has nothing left to do.
	r, err := New(pop, id, db, Config{Workers: 2, Seed: 23, Checkpoint: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	prog := r.Progress()
	if prog.Resumed != len(pop) || prog.Probes != 0 {
		t.Fatalf("fully-resumed run should not probe: %+v", prog)
	}
}

// TestRingProperties: deterministic, reasonably balanced, and stable
// under worker-count changes.
func TestRingProperties(t *testing.T) {
	pop, _, _ := testEnv(t, 2000)
	r4, r4b, r5 := newRing(4), newRing(4), newRing(5)
	counts := make([]int, 4)
	moved := 0
	for i := range pop {
		key := pop[i].Server.Name
		w := r4.owner(key)
		if w != r4b.owner(key) {
			t.Fatal("ring assignment not deterministic")
		}
		counts[w]++
		if r5.owner(key) != w {
			moved++
		}
	}
	for w, n := range counts {
		if n < 2000/4/3 {
			t.Fatalf("worker %d got %d of 2000 targets; ring badly unbalanced: %v", w, n, counts)
		}
	}
	// Growing 4 -> 5 workers should remap roughly 1/5 of targets, not
	// reshuffle everything (the consistent-hashing point).
	if moved > 2000/2 {
		t.Fatalf("adding one worker moved %d of 2000 targets", moved)
	}
}
