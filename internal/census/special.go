package census

import (
	"math"
	"time"

	"repro/internal/cc"
)

// unknownAlgorithm is an out-of-catalogue congestion avoidance algorithm
// (an aggressive AIMD with beta 0.6 and increase 2.5/RTT) used to exercise
// the paper's "Unsure TCP" bucket: its feature vector matches none of the
// 14 training classes well.
type unknownAlgorithm struct{}

var _ cc.Algorithm = (*unknownAlgorithm)(nil)

func newUnknownAlgorithm() *unknownAlgorithm { return &unknownAlgorithm{} }

// Name implements cc.Algorithm.
func (*unknownAlgorithm) Name() string { return "UNKNOWN" }

// Reset implements cc.Algorithm.
func (*unknownAlgorithm) Reset(*cc.Conn) {}

// OnAck implements cc.Algorithm.
func (*unknownAlgorithm) OnAck(c *cc.Conn, _ int, _ time.Duration) {
	if c.InSlowStart() {
		c.Cwnd++
		return
	}
	c.Cwnd += 2.5 / c.Cwnd
}

// Ssthresh implements cc.Algorithm.
func (*unknownAlgorithm) Ssthresh(c *cc.Conn) float64 {
	return math.Max(c.Cwnd*0.6, 2)
}

// OnTimeout implements cc.Algorithm.
func (*unknownAlgorithm) OnTimeout(*cc.Conn) {}

// approacher produces the paper's "Approaching w(tmo)" special shape
// (Fig. 16): after a timeout the window climbs quickly at first, then ever
// more slowly as it approaches the pre-timeout window -- the observable
// behaviour of stacks whose buffer auto-tuning converges back to the old
// operating point. The paper itself only hypothesises about the cause; this
// is the documented synthetic stand-in (DESIGN.md).
type approacher struct {
	target float64 // window at the last loss
}

var _ cc.Algorithm = (*approacher)(nil)

func newApproacher() *approacher { return &approacher{} }

// NewApproacherAlgorithm exposes the Approaching-Wmax behaviour to the
// experiments package and examples.
func NewApproacherAlgorithm() cc.Algorithm { return newApproacher() }

// NewUnknownAlgorithm exposes the out-of-catalogue algorithm to the
// experiments package and examples.
func NewUnknownAlgorithm() cc.Algorithm { return newUnknownAlgorithm() }

// Name implements cc.Algorithm.
func (*approacher) Name() string { return "APPROACHER" }

// Reset implements cc.Algorithm.
func (a *approacher) Reset(*cc.Conn) { a.target = 0 }

// OnAck implements cc.Algorithm.
func (a *approacher) OnAck(c *cc.Conn, _ int, _ time.Duration) {
	if c.InSlowStart() {
		c.Cwnd++
		return
	}
	if a.target <= c.Cwnd {
		c.Cwnd += 1 / c.Cwnd // fall back to RENO before any loss
		return
	}
	// Exponential approach: close 30% of the remaining gap per RTT.
	c.Cwnd += 0.3 * (a.target - c.Cwnd) / c.Cwnd
}

// Ssthresh implements cc.Algorithm: exit slow start at half the gap so
// congestion avoidance has a visible approach phase.
func (a *approacher) Ssthresh(c *cc.Conn) float64 {
	a.target = c.Cwnd
	return math.Max(c.Cwnd/2, 2)
}

// OnTimeout implements cc.Algorithm.
func (*approacher) OnTimeout(*cc.Conn) {}
