package census

import (
	"testing"

	"repro/internal/core"
	"repro/internal/forest"
	"repro/internal/netem"
)

// TestDebugSmallCensus runs a reduced census end to end; inspect with -v.
func TestDebugSmallCensus(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	db := netem.MeasuredDatabase()
	ds, err := core.GenerateTrainingSet(db, core.TrainingConfig{ConditionsPerPair: 15, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	model := forest.Train(ds, forest.Config{Seed: 7})
	id := core.NewIdentifier(model)

	cfg := DefaultPopulationConfig()
	cfg.Servers = 600
	pop := GeneratePopulation(cfg)
	report := Run(pop, id, db, RunConfig{Seed: 99})
	t.Logf("\n%s", report.TableIV())
	t.Logf("ground-truth accuracy on valid ordinary traces: %.2f%%", report.Accuracy()*100)
}
