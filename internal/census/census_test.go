package census

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/forest"
	"repro/internal/netem"
	"repro/internal/probe"
	"repro/internal/trace"
)

func TestGeneratePopulationDeterministic(t *testing.T) {
	cfg := DefaultPopulationConfig()
	cfg.Servers = 200
	a := GeneratePopulation(cfg)
	b := GeneratePopulation(cfg)
	if len(a) != 200 || len(b) != 200 {
		t.Fatalf("sizes %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].Algorithm != b[i].Algorithm || a[i].Server.MinMSS != b[i].Server.MinMSS {
			t.Fatalf("population not deterministic at %d", i)
		}
	}
}

func TestPopulationDemographics(t *testing.T) {
	cfg := DefaultPopulationConfig()
	cfg.Servers = 8000
	pop := GeneratePopulation(cfg)
	regions := map[string]int{}
	software := map[string]int{}
	mss := map[int]int{}
	algorithms := map[string]int{}
	for _, gt := range pop {
		regions[gt.Server.Region]++
		software[gt.Server.Software]++
		mss[gt.Server.MinMSS]++
		algorithms[gt.Algorithm]++
	}
	// Europe ~43%, Apache ~70% (Section VII-B1).
	if frac := float64(regions["Europe"]) / 8000; frac < 0.38 || frac > 0.48 {
		t.Fatalf("Europe share = %v", frac)
	}
	if frac := float64(software["Apache"]) / 8000; frac < 0.65 || frac > 0.75 {
		t.Fatalf("Apache share = %v", frac)
	}
	// Most servers accept a 100-byte MSS (Table II).
	if frac := float64(mss[100]) / 8000; frac < 0.7 {
		t.Fatalf("100B MSS share = %v", frac)
	}
	// The mix must include the unknown bucket and all defaults.
	if algorithms["UNKNOWN"] == 0 {
		t.Fatal("no unknown-algorithm servers generated")
	}
	for _, alg := range []string{"BIC", "CUBIC2", "CTCP1", "RENO"} {
		if algorithms[alg] == 0 {
			t.Fatalf("no %s servers generated", alg)
		}
	}
}

func TestPopulationSpecialKnobs(t *testing.T) {
	cfg := DefaultPopulationConfig()
	cfg.Servers = 5000
	pop := GeneratePopulation(cfg)
	specials := map[trace.Special]int{}
	for _, gt := range pop {
		if gt.Special != trace.SpecialNone {
			specials[gt.Special]++
			switch gt.Special {
			case trace.RemainingAtOne:
				if gt.Server.PostTimeoutClamp != 1 {
					t.Fatal("RemainingAtOne knob missing")
				}
			case trace.NonincreasingWindow:
				if gt.Server.SendBufferSegments == 0 {
					t.Fatal("Nonincreasing knob missing")
				}
			case trace.BoundedWindow:
				if gt.Server.CwndClamp == 0 {
					t.Fatal("Bounded knob missing")
				}
			case trace.ApproachingWmax:
				if gt.Server.CustomAlgorithm == nil {
					t.Fatal("Approaching knob missing")
				}
			}
		}
	}
	for sp, frac := range cfg.SpecialFraction {
		got := float64(specials[sp]) / 5000
		if got < frac*0.5 || got > frac*2 {
			t.Errorf("%v share = %v, want ~%v", sp, got, frac)
		}
	}
}

func TestUnknownAlgorithmBehaviour(t *testing.T) {
	alg := NewUnknownAlgorithm()
	c := cc.NewConn(536, 2)
	c.Cwnd, c.Ssthresh = 100, 100
	th := alg.Ssthresh(c)
	if th != 60 {
		t.Fatalf("unknown beta: ssthresh = %v, want 60", th)
	}
	alg.OnAck(c, 1, time.Second)
	if c.Cwnd <= 100 {
		t.Fatal("unknown algorithm must grow")
	}
}

func TestApproacherShape(t *testing.T) {
	alg := NewApproacherAlgorithm()
	c := cc.NewConn(536, 2)
	c.Cwnd, c.Ssthresh = 128, 128
	c.Ssthresh = alg.Ssthresh(c) // loss at 128: target 128, ssthresh 64
	if c.Ssthresh != 64 {
		t.Fatalf("ssthresh = %v, want 64", c.Ssthresh)
	}
	c.Cwnd = 64
	// Increments decay as the window approaches the target.
	var prev, first, last float64
	prev = c.Cwnd
	for r := 0; r < 10; r++ {
		for i := 0; i < int(c.Cwnd); i++ {
			alg.OnAck(c, 1, time.Second)
		}
		inc := c.Cwnd - prev
		if r == 0 {
			first = inc
		}
		last = inc
		prev = c.Cwnd
	}
	if c.Cwnd > 128.5 {
		t.Fatalf("overshot the target: %v", c.Cwnd)
	}
	if last >= first/2 {
		t.Fatalf("increments did not decay: first %v last %v", first, last)
	}
}

func TestRunSmallCensus(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	db := netem.MeasuredDatabase()
	ds, err := core.GenerateTrainingSet(db, core.TrainingConfig{ConditionsPerPair: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	id := core.NewIdentifier(forest.Train(ds, forest.Config{Trees: 30, Seed: 6}))
	cfg := DefaultPopulationConfig()
	cfg.Servers = 250
	pop := GeneratePopulation(cfg)
	report := Run(pop, id, db, RunConfig{Seed: 7})

	if report.Total != 250 {
		t.Fatalf("total = %d", report.Total)
	}
	valid := report.Valid()
	if valid < 80 || valid > 220 {
		t.Fatalf("valid = %d, want a plausible fraction of 250", valid)
	}
	if report.InvalidByReason[probe.ReasonInsufficientData] == 0 {
		t.Fatal("short pages must produce insufficient-data invalids")
	}
	if acc := report.Accuracy(); acc < 0.6 {
		t.Fatalf("ground-truth accuracy = %v, want >= 0.6", acc)
	}
	table := report.TableIV()
	for _, want := range []string{"label \\ wmax", "valid traces", "Servers: 250"} {
		if !strings.Contains(table, want) {
			t.Fatalf("TableIV missing %q:\n%s", want, table)
		}
	}
	// Shares sum to ~100% over valid traces.
	sum := 0.0
	for _, m := range report.ByWmax {
		for l := range m {
			_ = l
		}
	}
	for l := range collectLabels(report) {
		sum += report.LabelShare(l)
	}
	if sum < 99.9 || sum > 100.1 {
		t.Fatalf("label shares sum to %v", sum)
	}
}

func collectLabels(r *Report) map[string]bool {
	out := map[string]bool{}
	for _, m := range r.ByWmax {
		for l := range m {
			out[l] = true
		}
	}
	return out
}

func TestReportAccuracyMath(t *testing.T) {
	r := &Report{
		TruthMatrix: map[string]map[string]int{
			"BIC":  {"BIC": 8, "CUBIC1": 2},
			"RENO": {"RENO-BIG": 0},
		},
	}
	if got := r.Accuracy(); got != 0.8 {
		t.Fatalf("accuracy = %v, want 0.8", got)
	}
	empty := &Report{TruthMatrix: map[string]map[string]int{}}
	if got := empty.Accuracy(); got != 0 {
		t.Fatalf("empty accuracy = %v", got)
	}
}

func TestMinMSSShares(t *testing.T) {
	shares := MinMSSShares()
	total := 0.0
	for _, v := range shares {
		total += v
	}
	if total < 0.99 || total > 1.01 {
		t.Fatalf("MSS shares sum to %v", total)
	}
	if shares[100] < 0.5 {
		t.Fatalf("100B share = %v, want the majority", shares[100])
	}
}

func TestPickWeightedDeterministicBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		seen[pickWeighted(rng, regionWeights)] = true
	}
	if !seen["Europe"] || !seen["North America"] || !seen["Asia"] {
		t.Fatal("large regions never drawn")
	}
}
