// Package census builds the synthetic Internet the paper's measurement
// study runs against -- 63 124 Web servers with realistic page sizes,
// pipelining limits, minimum segment sizes, geography, software, TCP stack
// quirks, and a configurable ground-truth mix of congestion avoidance
// algorithms -- and runs the full CAAI pipeline over it to regenerate
// Table IV.
package census

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cc"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/websim"
)

// GroundTruth ties a generated server to what CAAI should ideally report.
type GroundTruth struct {
	// Server is the simulated Web server.
	Server *websim.Server
	// Algorithm is the effective algorithm name (after proxies), or
	// "UNKNOWN" for the out-of-catalogue algorithm servers.
	Algorithm string
	// Special is the engineered special trace shape, if any.
	Special trace.Special
}

// PopulationConfig controls population generation.
type PopulationConfig struct {
	// Servers is the population size; the paper measured 63 124.
	Servers int
	// Seed drives generation deterministically.
	Seed int64
	// AlgorithmMix maps algorithm names to relative weights among
	// ordinary servers. Defaults to a mix consistent with Table IV.
	AlgorithmMix map[string]float64
	// FRTOFraction of servers run F-RTO (Linux default of the era).
	FRTOFraction float64
	// CachingFraction of servers cache the slow start threshold.
	CachingFraction float64
	// ProxyFraction of IIS servers sit behind Linux load balancers, so
	// CAAI observes the proxy's algorithm.
	ProxyFraction float64
	// IgnoreRTOFraction of servers never respond to the emulated
	// timeout (invalid traces).
	IgnoreRTOFraction float64
	// SpecialFraction of servers per special shape knob.
	SpecialFraction map[trace.Special]float64
	// UnknownFraction of servers run an algorithm outside the 14
	// (feeds the "Unsure TCP" bucket).
	UnknownFraction float64
}

// DefaultPopulationConfig returns a population consistent with the paper's
// census findings: BIC/CUBIC plurality, a large share of early CTCP, a
// small RENO remnant, and a tail of non-default algorithms.
func DefaultPopulationConfig() PopulationConfig {
	return PopulationConfig{
		Servers: 63124,
		Seed:    2011,
		AlgorithmMix: map[string]float64{
			"BIC":      0.235,
			"CUBIC1":   0.060,
			"CUBIC2":   0.135,
			"CTCP1":    0.130,
			"CTCP2":    0.030,
			"RENO":     0.150,
			"HTCP":     0.050,
			"HSTCP":    0.012,
			"ILLINOIS": 0.012,
			"STCP":     0.006,
			"VEGAS":    0.008,
			"VENO":     0.012,
			"WESTWOOD": 0.012,
			"YEAH":     0.008,
		},
		FRTOFraction:      0.35,
		CachingFraction:   0.10,
		ProxyFraction:     0.15,
		IgnoreRTOFraction: 0.01,
		SpecialFraction: map[trace.Special]float64{
			trace.RemainingAtOne:      0.012,
			trace.NonincreasingWindow: 0.015,
			trace.ApproachingWmax:     0.010,
			trace.BoundedWindow:       0.015,
		},
		UnknownFraction: 0.02,
	}
}

// Demographic tables from Section VII-B1.
var (
	regionWeights = []weighted{
		{"Europe", 0.4328}, {"North America", 0.3192}, {"Asia", 0.2146},
		{"South America", 0.0197}, {"Australia", 0.0083}, {"Africa", 0.0054},
	}
	softwareWeights = []weighted{
		{"Apache", 0.7020}, {"Nginx", 0.1285}, {"IIS", 0.1113},
		{"LiteSpeed", 0.0136}, {"Other", 0.0446},
	}
	// Table II: minimum segment sizes accepted (synthetic split; the
	// paper's exact numbers are not in the text, only that most servers
	// accept 100 B).
	minMSSWeights = []weighted{
		{"100", 0.78}, {"300", 0.08}, {"536", 0.09}, {"1460", 0.05},
	}
)

type weighted struct {
	key    string
	weight float64
}

func pickWeighted(rng *rand.Rand, table []weighted) string {
	r := rng.Float64()
	acc := 0.0
	for _, w := range table {
		acc += w.weight
		if r < acc {
			return w.key
		}
	}
	return table[len(table)-1].key
}

// Fig. 6: CDF of the maximum number of repeated HTTP requests accepted
// (about 47% accept only one, ~60% accept three or fewer).
var requestLimitCDF = stats.MustECDF([]stats.Anchor{
	{Value: 1, Cum: 0.47},
	{Value: 2, Cum: 0.55},
	{Value: 3, Cum: 0.60},
	{Value: 5, Cum: 0.68},
	{Value: 8, Cum: 0.75},
	{Value: 12, Cum: 0.84},
	{Value: 20, Cum: 0.91},
	{Value: 50, Cum: 0.97},
	{Value: 100, Cum: 1},
})

// Fig. 7: CDF of default Web page sizes (only ~12% exceed 100 kB).
var defaultPageCDF = stats.MustECDF([]stats.Anchor{
	{Value: 512, Cum: 0},
	{Value: 2 << 10, Cum: 0.12},
	{Value: 10 << 10, Cum: 0.45},
	{Value: 50 << 10, Cum: 0.76},
	{Value: 100 << 10, Cum: 0.88},
	{Value: 1 << 20, Cum: 0.97},
	{Value: 10 << 20, Cum: 1},
})

// Fig. 7: CDF of the longest page the searching tool finds (~48% exceed
// 100 kB).
var longestPageCDF = stats.MustECDF([]stats.Anchor{
	{Value: 1 << 10, Cum: 0},
	{Value: 10 << 10, Cum: 0.15},
	{Value: 50 << 10, Cum: 0.36},
	{Value: 100 << 10, Cum: 0.52},
	{Value: 500 << 10, Cum: 0.74},
	{Value: 1 << 20, Cum: 0.83},
	{Value: 10 << 20, Cum: 0.96},
	{Value: 100 << 20, Cum: 1},
})

// RequestLimitCDF exposes the Fig. 6 distribution.
func RequestLimitCDF() *stats.ECDF { return requestLimitCDF }

// DefaultPageCDF exposes the Fig. 7 default-page distribution.
func DefaultPageCDF() *stats.ECDF { return defaultPageCDF }

// LongestPageCDF exposes the Fig. 7 longest-page distribution.
func LongestPageCDF() *stats.ECDF { return longestPageCDF }

// MinMSSShares returns the Table II acceptance shares.
func MinMSSShares() map[int]float64 {
	out := make(map[int]float64, len(minMSSWeights))
	for _, w := range minMSSWeights {
		var mss int
		fmt.Sscanf(w.key, "%d", &mss)
		out[mss] = w.weight
	}
	return out
}

// windowsAlgorithms is the CTCP/RENO mix used for IIS hosts.
var windowsAlgorithms = []weighted{
	{"CTCP1", 0.55}, {"CTCP2", 0.20}, {"RENO", 0.25},
}

// GeneratePopulation builds the synthetic server population.
func GeneratePopulation(cfg PopulationConfig) []GroundTruth {
	if cfg.Servers <= 0 {
		cfg.Servers = 63124
	}
	if len(cfg.AlgorithmMix) == 0 {
		cfg.AlgorithmMix = DefaultPopulationConfig().AlgorithmMix
	}
	mix := normalizeMix(cfg.AlgorithmMix)
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]GroundTruth, 0, cfg.Servers)
	for i := 0; i < cfg.Servers; i++ {
		out = append(out, generateServer(cfg, mix, rng, i))
	}
	return out
}

func normalizeMix(in map[string]float64) []weighted {
	total := 0.0
	for _, w := range in {
		total += w
	}
	names := cc.CAAINames()
	out := make([]weighted, 0, len(in))
	for _, n := range names {
		if w, ok := in[n]; ok && w > 0 {
			out = append(out, weighted{n, w / total})
		}
	}
	return out
}

func generateServer(cfg PopulationConfig, mix []weighted, rng *rand.Rand, i int) GroundTruth {
	software := pickWeighted(rng, softwareWeights)
	srv := &websim.Server{
		Name:        fmt.Sprintf("srv-%05d", i),
		Software:    software,
		Region:      pickWeighted(rng, regionWeights),
		MaxRequests: int(requestLimitCDF.Sample(rng)),
		MinMSS:      pickMSS(rng),
	}
	srv.DefaultPageBytes = int64(defaultPageCDF.Sample(rng))
	srv.LongestPageBytes = srv.DefaultPageBytes
	if long := int64(longestPageCDF.Sample(rng)); long > srv.LongestPageBytes {
		srv.LongestPageBytes = long
	}

	// Algorithm assignment: IIS hosts run Windows stacks unless a proxy
	// splits the connection; everything else draws from the global mix.
	truthAlg := ""
	if software == "IIS" {
		srv.Algorithm = pickWeighted(rng, windowsAlgorithms)
		if rng.Float64() < cfg.ProxyFraction {
			srv.ProxyAlgorithm = pickWeighted(rng, []weighted{{"BIC", 0.5}, {"CUBIC2", 0.35}, {"CUBIC1", 0.15}})
		}
	} else {
		srv.Algorithm = pickWeighted(rng, mix)
	}
	truthAlg = srv.EffectiveAlgorithm()

	truth := GroundTruth{Server: srv, Algorithm: truthAlg}

	// Stack behaviour knobs.
	if rng.Float64() < cfg.FRTOFraction && software != "IIS" {
		srv.FRTO = true
	}
	if rng.Float64() < cfg.CachingFraction {
		srv.SsthreshCaching = true
		srv.CacheTTL = 5 * time.Minute
	}
	if rng.Float64() < cfg.IgnoreRTOFraction {
		srv.IgnoreRTO = true
	}
	if rng.Float64() < cfg.UnknownFraction {
		srv.CustomAlgorithm = func() cc.Algorithm { return newUnknownAlgorithm() }
		truth.Algorithm = "UNKNOWN"
	}
	applySpecial(cfg, rng, srv, &truth)
	return truth
}

func pickMSS(rng *rand.Rand) int {
	switch pickWeighted(rng, minMSSWeights) {
	case "100":
		return 100
	case "300":
		return 300
	case "536":
		return 536
	default:
		return 1460
	}
}

// applySpecial engineers one of the Section VII-B3 trace shapes on a
// fraction of servers.
func applySpecial(cfg PopulationConfig, rng *rand.Rand, srv *websim.Server, truth *GroundTruth) {
	r := rng.Float64()
	acc := 0.0
	for _, sp := range []trace.Special{
		trace.RemainingAtOne, trace.NonincreasingWindow,
		trace.ApproachingWmax, trace.BoundedWindow,
	} {
		acc += cfg.SpecialFraction[sp]
		if r >= acc {
			continue
		}
		truth.Special = sp
		switch sp {
		case trace.RemainingAtOne:
			// The stack never reopens the window after the timeout.
			srv.PostTimeoutClamp = 1
		case trace.NonincreasingWindow:
			// In-flight data pinned by a small send buffer: the
			// post-timeout window rises to the buffer and stays.
			srv.SendBufferSegments = 70 + int64(rng.Intn(120))
		case trace.ApproachingWmax:
			// Auto-tuned stacks that asymptotically re-approach the
			// pre-timeout window.
			srv.CustomAlgorithm = func() cc.Algorithm { return newApproacher() }
		case trace.BoundedWindow:
			// Window clamp above the slow start threshold: growth,
			// then a hard ceiling.
			srv.CwndClamp = float64(70 + rng.Intn(120))
		}
		return
	}
}
