package census

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/netem"
	"repro/internal/probe"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// RunConfig controls a census run.
type RunConfig struct {
	// Seed drives the per-server network conditions and probing.
	Seed int64
	// Parallelism bounds concurrent servers; 0 = GOMAXPROCS.
	Parallelism int
	// Probe customizes the prober (zero = paper defaults).
	Probe probe.Config
}

// Outcome pairs a server's ground truth with CAAI's identification.
type Outcome struct {
	Truth GroundTruth
	ID    core.Identification
}

// Report aggregates a census run (the paper's Table IV).
type Report struct {
	// Total is the population size.
	Total int
	// InvalidByReason counts servers without valid traces.
	InvalidByReason map[probe.InvalidReason]int
	// ByWmax maps wmax -> label -> count over valid traces; specials
	// appear under their Special.String() label.
	ByWmax map[int]map[string]int
	// ValidByWmax counts valid traces per wmax column.
	ValidByWmax map[int]int
	// Specials counts detected special shapes.
	Specials map[trace.Special]int
	// TruthMatrix maps ground-truth label -> reported label -> count
	// (valid, non-special traces only).
	TruthMatrix map[string]map[string]int
	// Outcomes holds every per-server outcome for downstream analysis.
	Outcomes []Outcome
}

// Valid returns the number of servers with valid traces.
func (r *Report) Valid() int {
	n := 0
	for _, v := range r.ValidByWmax {
		n += v
	}
	return n
}

// LabelShare returns label's percentage among valid traces.
func (r *Report) LabelShare(label string) float64 {
	valid := r.Valid()
	if valid == 0 {
		return 0
	}
	n := 0
	for _, m := range r.ByWmax {
		n += m[label]
	}
	return 100 * float64(n) / float64(valid)
}

// Accuracy returns the fraction of valid, non-special, known-truth servers
// whose report matched the ground truth (merged per the wmax used).
func (r *Report) Accuracy() float64 {
	correct, total := 0, 0
	for truth, row := range r.TruthMatrix {
		for got, n := range row {
			total += n
			if truth == got {
				correct += n
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// windowsLabels are the labels consistent with a Windows TCP stack.
var windowsLabels = map[string]bool{
	"RENO-BIG":        true,
	"CTCP1-BIG":       true,
	"CTCP2-BIG":       true,
	core.LabelRCSmall: true,
}

// IISNonWindowsShare returns the fraction of valid, classified IIS servers
// whose identified algorithm is not a Windows stack (RENO/CTCP). The paper
// observes ~15% and attributes them to TCP proxies splitting the
// connection (Section VII-B1).
func (r *Report) IISNonWindowsShare() float64 {
	iis, nonWindows := 0, 0
	for _, o := range r.Outcomes {
		if o.Truth.Server.Software != "IIS" || !o.ID.Valid {
			continue
		}
		if o.ID.Special != trace.SpecialNone || o.ID.Label == core.LabelUnsure || o.ID.Label == "" {
			continue
		}
		iis++
		if !windowsLabels[o.ID.Label] {
			nonWindows++
		}
	}
	if iis == 0 {
		return 0
	}
	return float64(nonWindows) / float64(iis)
}

// ShareBy aggregates the population share of a string property (region,
// software) over all servers.
func ShareBy(population []GroundTruth, key func(GroundTruth) string) map[string]float64 {
	counts := map[string]int{}
	for _, gt := range population {
		counts[key(gt)]++
	}
	out := make(map[string]float64, len(counts))
	for k, n := range counts {
		out[k] = float64(n) / float64(len(population))
	}
	return out
}

// Run probes every server in the population on the engine's worker pool
// and aggregates Table IV. Each pool worker reuses one pipeline session
// (probe and feature scratch) across the servers it probes; outcomes stay
// independent of worker scheduling.
func Run(population []GroundTruth, id *core.Identifier, db *netem.Database, cfg RunConfig) *Report {
	outcomes := make([]Outcome, len(population))
	sessions := make([]*core.Session, engine.Workers(len(population), cfg.Parallelism))
	for w := range sessions {
		sessions[w] = id.NewSession()
	}
	engine.RunWorkers(context.Background(), len(population), cfg.Parallelism, func(w, i int) {
		rng := xrand.New(cfg.Seed + int64(i)*6700417)
		cond := db.Sample(rng)
		// Start from a pristine ssthresh cache so the outcome is a pure
		// function of (server, seed): re-running a census over the same
		// population reproduces it exactly.
		population[i].Server.ResetCache()
		ident := sessions[w].Identify(population[i].Server, cond, cfg.Probe, rng)
		outcomes[i] = Outcome{Truth: population[i], ID: ident}
	})
	return aggregate(outcomes)
}

// Aggregate folds per-server outcomes into a Report. The fold visits
// outcomes in slice order and every table is a pure function of the
// outcome values, so any runner that fills the slice by population index
// (census.Run, the sharded coordinator in census/shard, a checkpoint
// resume) aggregates to bit-identical tables.
func Aggregate(outcomes []Outcome) *Report { return aggregate(outcomes) }

func aggregate(outcomes []Outcome) *Report {
	r := &Report{
		Total:           len(outcomes),
		InvalidByReason: map[probe.InvalidReason]int{},
		ByWmax:          map[int]map[string]int{},
		ValidByWmax:     map[int]int{},
		Specials:        map[trace.Special]int{},
		TruthMatrix:     map[string]map[string]int{},
		Outcomes:        outcomes,
	}
	for _, o := range outcomes {
		if !o.ID.Valid {
			r.InvalidByReason[o.ID.Reason]++
			continue
		}
		r.ValidByWmax[o.ID.Wmax]++
		m := r.ByWmax[o.ID.Wmax]
		if m == nil {
			m = map[string]int{}
			r.ByWmax[o.ID.Wmax] = m
		}
		label := o.ID.Label
		if o.ID.Special != trace.SpecialNone {
			label = o.ID.Special.String()
			r.Specials[o.ID.Special]++
		}
		m[label]++

		if o.ID.Special == trace.SpecialNone && o.Truth.Special == trace.SpecialNone {
			truth := o.Truth.Algorithm
			if truth != "UNKNOWN" {
				truth = core.TrainingLabel(truth, o.ID.Wmax)
			}
			row := r.TruthMatrix[truth]
			if row == nil {
				row = map[string]int{}
				r.TruthMatrix[truth] = row
			}
			row[label]++
		}
	}
	return r
}

// TableIV renders the census report in the layout of the paper's Table IV:
// one column per wmax, one row per label, percentages over valid traces.
func (r *Report) TableIV() string {
	wmaxes := make([]int, 0, len(r.ByWmax))
	for w := range r.ByWmax {
		wmaxes = append(wmaxes, w)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(wmaxes)))

	labelSet := map[string]bool{}
	for _, m := range r.ByWmax {
		for l := range m {
			labelSet[l] = true
		}
	}
	labels := make([]string, 0, len(labelSet))
	for l := range labelSet {
		labels = append(labels, l)
	}
	sort.Strings(labels)

	valid := r.Valid()
	var b strings.Builder
	fmt.Fprintf(&b, "Servers: %d total, %d with valid traces (%.2f%%)\n",
		r.Total, valid, 100*float64(valid)/float64(r.Total))
	reasons := make([]string, 0, len(r.InvalidByReason))
	for reason := range r.InvalidByReason {
		reasons = append(reasons, string(reason))
	}
	// Sorted so the rendering is byte-deterministic (the shard package's
	// determinism-under-failure contract compares TableIV output).
	sort.Strings(reasons)
	for _, reason := range reasons {
		fmt.Fprintf(&b, "  invalid (%s): %d\n", reason, r.InvalidByReason[probe.InvalidReason(reason)])
	}
	fmt.Fprintf(&b, "%-24s", "label \\ wmax")
	for _, w := range wmaxes {
		fmt.Fprintf(&b, "%9d", w)
	}
	fmt.Fprintf(&b, "%9s\n", "overall")
	for _, l := range labels {
		fmt.Fprintf(&b, "%-24s", l)
		total := 0
		for _, w := range wmaxes {
			n := r.ByWmax[w][l]
			total += n
			fmt.Fprintf(&b, "%8.2f%%", 100*float64(n)/float64(valid))
		}
		fmt.Fprintf(&b, "%8.2f%%\n", 100*float64(total)/float64(valid))
	}
	fmt.Fprintf(&b, "%-24s", "valid traces")
	for _, w := range wmaxes {
		fmt.Fprintf(&b, "%8.2f%%", 100*float64(r.ValidByWmax[w])/float64(valid))
	}
	fmt.Fprintf(&b, "%8.2f%%\n", 100.0)
	return b.String()
}
