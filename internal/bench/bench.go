// Package bench is the machine-readable performance-regression harness:
// it runs the hot-path benchmark suite programmatically (testing.Benchmark,
// no `go test` invocation needed), renders each measurement as a Result,
// aggregates them into a Point, and persists points as BENCH_<n>.json
// trajectory files that CI archives. A checked-in budget file turns the
// trajectory into an enforced contract: exceeding a budget (most
// importantly allocs/op on the service cache-miss path) fails the run.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"testing"

	"repro/internal/stats"
	"repro/internal/trajectory"
)

// Result is one measured benchmark.
type Result struct {
	// Name is the suite-local benchmark name (e.g. "service/identify_miss").
	Name string `json:"name"`
	// N is how many iterations the measurement ran.
	N int `json:"n"`
	// NsPerOp, BytesPerOp, AllocsPerOp are the standard Go benchmark
	// metrics.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Metrics carries b.ReportMetric extras (accuracy, valid-%, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Point is one trajectory point of the perf history (one BENCH_<n>.json).
type Point struct {
	// Schema versions the file layout.
	Schema int `json:"schema"`
	// Label is free-form provenance ("pre-arena baseline", a commit, ...).
	Label string `json:"label,omitempty"`
	// Source records how the numbers were gathered ("caai-bench",
	// "go test -bench" for hand-recorded baselines).
	Source string `json:"source"`
	// GoVersion/GOOS/GOARCH identify the toolchain and platform; points
	// are only comparable within one platform.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// Scale describes the workload scale ("quick", "paper", ...).
	Scale string `json:"scale"`
	// Metrics carries suite-level quality metrics (cross-validation
	// accuracy) so a perf win that costs accuracy is visible in the same
	// file.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Benchmarks are the per-benchmark measurements.
	Benchmarks []Result `json:"benchmarks"`
}

// PointSchema is the current Point layout version.
const PointSchema = 1

// NewPoint returns a Point pre-filled with toolchain/platform provenance.
func NewPoint(label, scale string) Point {
	return Point{
		Schema:    PointSchema,
		Label:     label,
		Source:    "caai-bench",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Scale:     scale,
		Metrics:   map[string]float64{},
	}
}

// Case is one runnable suite benchmark.
type Case struct {
	Name  string
	Bench func(b *testing.B)
}

// Run executes the cases matching filter (nil = all) and returns their
// results, logging one line per finished case to log (nil = silent). A
// benchmark that fails (b.Fatal/b.Error inside the case) is an error:
// testing.Benchmark swallows failures into an N=0 result, which would
// otherwise serialize as NaN and sail through the budget gate as 0
// allocs/op.
func Run(cases []Case, filter *regexp.Regexp, log io.Writer) ([]Result, error) {
	var out []Result
	for _, c := range cases {
		if filter != nil && !filter.MatchString(c.Name) {
			continue
		}
		r := testing.Benchmark(c.Bench)
		if r.N == 0 {
			return nil, fmt.Errorf("bench: %s failed (see the benchmark log above)", c.Name)
		}
		res := Result{
			Name:        c.Name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if len(r.Extra) > 0 {
			res.Metrics = map[string]float64{}
			for k, v := range r.Extra {
				res.Metrics[k] = v
			}
		}
		out = append(out, res)
		if log != nil {
			fmt.Fprintf(log, "%-28s %12.0f ns/op %10d B/op %8d allocs/op\n",
				c.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		}
	}
	return out, nil
}

// filePrefix names the trajectory files (BENCH_<n>.json).
const filePrefix = "BENCH"

// NextPointPath returns the path of the next trajectory file in dir
// (BENCH_<max+1>.json, starting at BENCH_0.json in an empty history).
func NextPointPath(dir string) (string, error) {
	return trajectory.NextPath(dir, filePrefix)
}

// WritePoint writes p to path as indented JSON.
func WritePoint(path string, p Point) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadPoint reads a trajectory point from path.
func ReadPoint(path string) (Point, error) {
	var p Point
	data, err := os.ReadFile(path)
	if err != nil {
		return p, err
	}
	if err := json.Unmarshal(data, &p); err != nil {
		return p, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return p, nil
}

// History loads every BENCH_<n>.json in dir in index order.
func History(dir string) ([]Point, error) {
	entries, err := trajectory.Entries(dir, filePrefix)
	if err != nil {
		return nil, err
	}
	out := make([]Point, len(entries))
	for i, e := range entries {
		p, err := ReadPoint(e.Path)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// Limits bounds one benchmark in the budget file. Absent (null) fields
// are unchecked; pointers keep an explicit 0 enforceable — the
// zero-allocation budgets are the whole point of the gate. Allocation
// budgets are the portable contract (ns/op budgets only make sense on a
// pinned CI machine).
type Limits struct {
	MaxAllocsPerOp *int64   `json:"max_allocs_per_op,omitempty"`
	MaxNsPerOp     *float64 `json:"max_ns_per_op,omitempty"`
	// MaxMetrics bounds b.ReportMetric extras by name (e.g. the telemetry
	// suite's "overhead-%"). A budgeted metric the benchmark did not
	// report is a violation, like a missing benchmark.
	MaxMetrics map[string]float64 `json:"max_metrics,omitempty"`
}

// Budget maps suite benchmark names to their limits.
type Budget map[string]Limits

// LoadBudget reads a budget file.
func LoadBudget(path string) (Budget, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Budget
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bench: parsing budget %s: %w", path, err)
	}
	return b, nil
}

// Check compares results against the budget and returns one human-readable
// violation per exceeded limit (empty = within budget). Budget entries
// with no matching result are reported too: a silently skipped benchmark
// must not pass the gate.
func (b Budget) Check(results []Result) []string {
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Name] = r
	}
	names := make([]string, 0, len(b))
	for name := range b {
		names = append(names, name)
	}
	sort.Strings(names)
	var violations []string
	for _, name := range names {
		lim := b[name]
		r, ok := byName[name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: budgeted benchmark did not run", name))
			continue
		}
		if lim.MaxAllocsPerOp != nil && r.AllocsPerOp > *lim.MaxAllocsPerOp {
			violations = append(violations, fmt.Sprintf("%s: %d allocs/op exceeds budget %d", name, r.AllocsPerOp, *lim.MaxAllocsPerOp))
		}
		if lim.MaxNsPerOp != nil && r.NsPerOp > *lim.MaxNsPerOp {
			violations = append(violations, fmt.Sprintf("%s: %.0f ns/op exceeds budget %.0f", name, r.NsPerOp, *lim.MaxNsPerOp))
		}
		metricNames := make([]string, 0, len(lim.MaxMetrics))
		for mn := range lim.MaxMetrics {
			metricNames = append(metricNames, mn)
		}
		sort.Strings(metricNames)
		for _, mn := range metricNames {
			v, reported := r.Metrics[mn]
			if !reported {
				violations = append(violations, fmt.Sprintf("%s: budgeted metric %q was not reported", name, mn))
				continue
			}
			if v > lim.MaxMetrics[mn] {
				violations = append(violations, fmt.Sprintf("%s: %s = %.2f exceeds budget %.2f", name, mn, v, lim.MaxMetrics[mn]))
			}
		}
	}
	return violations
}

// Compare renders a before/after delta table for the benchmarks present in
// both points (the PR-description workflow). The speedup column uses the
// sorted-once stats view for its summary line.
func Compare(before, after Point) string {
	byName := map[string]Result{}
	for _, r := range before.Benchmarks {
		byName[r.Name] = r
	}
	out := fmt.Sprintf("%-28s %14s %14s %9s %16s\n", "benchmark", "before ns/op", "after ns/op", "speedup", "allocs/op")
	var speedups stats.Sample
	for _, a := range after.Benchmarks {
		b, ok := byName[a.Name]
		if !ok || a.NsPerOp == 0 {
			continue
		}
		sp := b.NsPerOp / a.NsPerOp
		speedups.Add(sp)
		out += fmt.Sprintf("%-28s %14.0f %14.0f %8.2fx %7d -> %5d\n",
			a.Name, b.NsPerOp, a.NsPerOp, sp, b.AllocsPerOp, a.AllocsPerOp)
	}
	if speedups.Len() > 0 {
		v := speedups.Sorted()
		out += fmt.Sprintf("speedup min/median/max: %.2fx / %.2fx / %.2fx\n", v.Min(), v.Median(), v.Max())
	}
	return out
}
