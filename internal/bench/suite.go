package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/feature"
	"repro/internal/flow"
	"repro/internal/forest"
	"repro/internal/netem"
	"repro/internal/pcap"
	"repro/internal/pcapgen"
	"repro/internal/probe"
	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/websim"
)

// Suite builds the hot-path benchmark cases against ctx's (lazily trained
// and cached) model. These are the same measurements `go test -bench`
// exposes through bench_test.go; caai-bench runs them standalone and
// persists the numbers.
func Suite(ctx *experiments.Context) ([]Case, error) {
	model, err := ctx.Model()
	if err != nil {
		return nil, err
	}
	cases := []Case{
		{Name: "probe/gather_env", Bench: GatherSession()},
		{Name: "feature/extract", Bench: FeatureExtraction()},
		{Name: "engine/identify_batch", Bench: IdentifyBatch(model, 64)},
		{Name: "pcap/ingest", Bench: PcapIngest(model)},
		{Name: "pcap/stream_ingest", Bench: PcapStreamIngest()},
		{Name: "service/identify_hit", Bench: ServiceIdentify(model, false)},
		{Name: "service/identify_miss", Bench: ServiceIdentify(model, true)},
		{Name: "service/batch_blocks", Bench: ServiceBatchBlocks(model, 64)},
		{Name: "telemetry/overhead", Bench: TelemetryOverhead(model)},
		{Name: "telemetry/trace_overhead", Bench: TraceOverhead(model)},
	}
	if f, ok := model.(*forest.Forest); ok {
		cases = append([]Case{
			{Name: "forest/votes_into", Bench: ForestVotesInto(f)},
			{Name: "forest/classify", Bench: ForestClassify(model)},
			{Name: "forest/classify_batch", Bench: ForestClassifyBatch(f, 64)},
		}, cases...)
	} else {
		cases = append([]Case{{Name: "forest/classify", Bench: ForestClassify(model)}}, cases...)
	}
	return cases, nil
}

// benchVector is a representative in-distribution feature vector.
var benchVector = []float64{0.7, 18, 110, 0.7, 11, 83, 1, 9}

// ForestVotesInto measures the arena vote walk with a reused buffer (the
// zero-allocation classification core).
func ForestVotesInto(f *forest.Forest) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		votes := f.VotesInto(nil, benchVector)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			votes = f.VotesInto(votes, benchVector)
		}
	}
}

// ForestClassify measures the classify.Classifier entry point (pooled vote
// buffers for the forest backend).
func ForestClassify(model classify.Classifier) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		model.Classify(benchVector) // warm any pools
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			model.Classify(benchVector)
		}
	}
}

// ForestClassifyBatch measures the batched branch-free kernel on a block
// of m spread-out vectors with caller-owned scratch. One op classifies the
// whole block, so ns/op here divided by m is the per-sample cost to weigh
// against forest/classify.
func ForestClassifyBatch(f *forest.Forest, m int) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		rng := rand.New(rand.NewSource(9))
		vecs := make([][]float64, m)
		for i := range vecs {
			v := make([]float64, len(benchVector))
			for d, x := range benchVector {
				v[d] = x * (0.5 + rng.Float64())
			}
			vecs[i] = v
		}
		labels := make([]string, m)
		confs := make([]float64, m)
		var sc forest.BatchScratch
		f.ClassifyBatchInto(&sc, vecs, labels, confs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.ClassifyBatchInto(&sc, vecs, labels, confs)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*m), "ns/sample")
		b.ReportMetric(float64(m), "block")
	}
}

// GatherSession measures one full environment-A gathering session against
// a lossless CUBIC2 testbed server with a reused prober.
func GatherSession() func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		rng := rand.New(rand.NewSource(1))
		p := probe.New(probe.Config{}, netem.Lossless, rng)
		p.Reuse()
		server := websim.Testbed("CUBIC2")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.GatherEnv(server, probe.EnvA(), 256, 536, 64<<20); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// FeatureExtraction measures CAAI step 2 with reused scratch on gathered
// traces.
func FeatureExtraction() func(*testing.B) {
	return func(b *testing.B) {
		rng := rand.New(rand.NewSource(2))
		p := probe.New(probe.Config{}, netem.Lossless, rng)
		ta, err := p.GatherEnv(websim.Testbed("CUBIC2"), probe.EnvA(), 256, 536, 64<<20)
		if err != nil {
			b.Fatal(err)
		}
		tb, err := p.GatherEnv(websim.Testbed("CUBIC2"), probe.EnvB(), 256, 536, 64<<20)
		if err != nil {
			b.Fatal(err)
		}
		var sc feature.Scratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			feature.ExtractWith(&sc, ta, tb)
		}
	}
}

// IdentifyBatch measures batched identification of jobs servers through a
// pretrained model on the worker pool, with per-worker block sessions
// feeding the batched forest kernel (the default engine path since the
// block-inference change; probing still dominates, allocs/op is the
// budgeted number).
func IdentifyBatch(model classify.Classifier, jobs int) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		id := core.NewIdentifier(model)
		rng := rand.New(rand.NewSource(77))
		db := netem.MeasuredDatabase()
		batch := make([]engine.Job, jobs)
		names := cc.CAAINames()
		for i := range batch {
			batch[i] = engine.Job{Server: websim.Testbed(names[i%len(names)]), Cond: db.Sample(rng)}
		}
		b.ResetTimer()
		var valid int
		for i := 0; i < b.N; i++ {
			results := engine.IdentifyBatch[core.Identification](id, batch, engine.BatchConfig[core.Identification]{
				Seed: int64(i),
				NewWorkerBlock: func() engine.BlockIdentifier[core.Identification] {
					return id.NewBlockSession()
				},
			})
			valid = 0
			for _, r := range results {
				if r.Out.Valid {
					valid++
				}
			}
		}
		b.ReportMetric(float64(valid)/float64(jobs)*100, "valid-%")
		b.ReportMetric(float64(jobs), "jobs/op")
	}
}

// ServiceBatchBlocks measures the async batch queue end to end: POST
// /v1/batch with jobs all-miss specs, then poll GET /v1/jobs/{id} until
// the worker has coalesced the queue into inference blocks and finished.
// One op is one whole batch job; seeds vary per iteration so every spec
// is a fresh probe through the block pipeline, never a cache replay.
func ServiceBatchBlocks(model classify.Classifier, jobs int) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		reg := service.NewRegistry()
		reg.Add("bench", model)
		svc := service.New(reg, service.Config{})
		b.Cleanup(svc.Close)
		h := svc.Handler()
		names := cc.CAAINames()

		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var body strings.Builder
			body.WriteString(`{"jobs":[`)
			for k := 0; k < jobs; k++ {
				if k > 0 {
					body.WriteByte(',')
				}
				fmt.Fprintf(&body, `{"server":{"algorithm":%q},"condition":{"loss_rate":0.005},"seed":%d}`,
					names[k%len(names)], int64(i*jobs+k+1))
			}
			body.WriteString(`]}`)
			req := httptest.NewRequest(http.MethodPost, "/v1/batch", strings.NewReader(body.String()))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusAccepted {
				b.Fatalf("submit status %d: %s", rec.Code, rec.Body.String())
			}
			var acc service.BatchAccepted
			if err := json.Unmarshal(rec.Body.Bytes(), &acc); err != nil {
				b.Fatal(err)
			}
			for {
				req = httptest.NewRequest(http.MethodGet, "/v1/jobs/"+acc.JobID, nil)
				rec = httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				var st service.JobStatus
				if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
					b.Fatal(err)
				}
				if st.State == service.StateDone {
					if st.CacheHits != 0 {
						b.Fatalf("batch saw %d cache hits, want all misses", st.CacheHits)
					}
					break
				}
				if st.State == service.StateFailed || st.State == service.StateCancelled {
					b.Fatalf("job ended %s: %s", st.State, st.Error)
				}
				time.Sleep(50 * time.Microsecond)
			}
		}
		b.ReportMetric(float64(jobs), "jobs/op")
	}
}

// PcapIngest measures the passive pipeline end to end -- pcap decode, TCP
// flow reassembly, congestion-window reconstruction, pairing, and
// classification -- over a pregenerated two-server synthetic capture.
// b.SetBytes makes `go test -bench` report MB/s of capture throughput;
// the suite records ns/op and allocs/op against the budget.
func PcapIngest(model classify.Classifier) func(*testing.B) {
	return func(b *testing.B) {
		var buf bytes.Buffer
		if _, err := pcapgen.Generate(&buf, []pcapgen.ServerSpec{
			{Algorithm: "CUBIC2", Seed: 51},
			{Algorithm: "RENO", Seed: 52},
		}, pcapgen.Options{}); err != nil {
			b.Fatal(err)
		}
		data := buf.Bytes()
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		b.ResetTimer()
		var pairs int
		for i := 0; i < b.N; i++ {
			out, _, err := flow.IdentifyCapture(bytes.NewReader(data), model, flow.IdentifyOptions{})
			if err != nil {
				b.Fatal(err)
			}
			pairs = len(out)
		}
		if pairs != 2 {
			b.Fatalf("capture yielded %d identifications, want 2", pairs)
		}
		b.ReportMetric(float64(len(data)), "capture-bytes/op")
	}
}

// PcapStreamIngest measures the streaming pipeline -- bounded ring,
// sharded decode with 4-tuple affinity, online flow tracking, epoch
// expiry -- over a live-monitoring workload: dozens of concurrent bulk
// transfers with MTU-sized segments interleaved packet by packet, the
// shape a `tcpdump -w -` feed has (unlike pcap/ingest's small-MSS probe
// capture). b.SetBytes reports MB/s of capture throughput.
func PcapStreamIngest() func(*testing.B) {
	return func(b *testing.B) {
		const (
			nflows = 64
			rounds = 96
			mss    = 1448
		)
		var buf bytes.Buffer
		w, err := pcap.NewWriter(&buf, pcap.LinkEthernet, 0)
		if err != nil {
			b.Fatal(err)
		}
		ts := time.Unix(1700000000, 0)
		var frame []byte
		write := func(spec *pcap.FrameSpec) {
			frame = pcap.AppendFrame(frame[:0], spec)
			if err := w.WritePacket(ts, len(frame), frame); err != nil {
				b.Fatal(err)
			}
			ts = ts.Add(37 * time.Microsecond)
		}
		type conn struct {
			cli, srv netip.AddrPort
			seq      uint32
		}
		conns := make([]conn, nflows)
		for i := range conns {
			conns[i] = conn{
				cli: netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}), uint16(40000+i)),
				srv: netip.AddrPortFrom(netip.AddrFrom4([4]byte{192, 0, 2, byte(i % 8)}), 443),
				seq: 1,
			}
		}
		for i := range conns {
			c := &conns[i]
			write(&pcap.FrameSpec{Src: c.cli, Dst: c.srv, Flags: pcap.FlagSYN, Window: 65535,
				Opt: pcap.TCPOptions{MSS: mss, HasMSS: true}})
			write(&pcap.FrameSpec{Src: c.srv, Dst: c.cli, Ack: 1, Flags: pcap.FlagSYN | pcap.FlagACK,
				Window: 65535, Opt: pcap.TCPOptions{MSS: mss, HasMSS: true}})
			write(&pcap.FrameSpec{Src: c.cli, Dst: c.srv, Seq: 1, Ack: 1, Flags: pcap.FlagACK, Window: 65535})
		}
		for r := 0; r < rounds; r++ {
			for i := range conns {
				c := &conns[i]
				write(&pcap.FrameSpec{Src: c.srv, Dst: c.cli, Seq: c.seq, Ack: 1,
					Flags: pcap.FlagACK, Window: 65535, PayloadLen: mss})
				c.seq += mss
				if r%4 == 3 {
					write(&pcap.FrameSpec{Src: c.cli, Dst: c.srv, Seq: 1, Ack: c.seq,
						Flags: pcap.FlagACK, Window: 65535})
				}
			}
		}
		data := buf.Bytes()
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		b.ResetTimer()
		var flows int
		for i := 0; i < b.N; i++ {
			flows = 0
			st := flow.NewStream(context.Background(), flow.StreamConfig{
				Tracker: flow.Config{MaxFlows: 4 * nflows, MaxEmitted: -1},
			}, func(*flow.FlowTrace) { flows++ })
			if _, err := st.Write(data); err != nil {
				b.Fatal(err)
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		}
		if flows != nflows {
			b.Fatalf("stream emitted %d flows, want %d", flows, nflows)
		}
		b.ReportMetric(float64(len(data)), "capture-bytes/op")
	}
}

// ServiceIdentify measures the HTTP service path end to end (JSON decode,
// registry lookup, cache, singleflight, pipeline, JSON encode). miss=false
// serves one request repeatedly from the LRU result cache; miss=true
// forces a fresh probe every iteration by varying the seed.
func ServiceIdentify(model classify.Classifier, miss bool) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		reg := service.NewRegistry()
		reg.Add("bench", model)
		svc := service.New(reg, service.Config{})
		b.Cleanup(svc.Close)
		h := svc.Handler()

		do := func(seed int64) service.IdentifyResponse {
			body := fmt.Sprintf(`{"server":{"algorithm":"CUBIC2"},"condition":{"loss_rate":0.005},"seed":%d}`, seed)
			req := httptest.NewRequest(http.MethodPost, "/v1/identify", strings.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
			var resp service.IdentifyResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				b.Fatal(err)
			}
			return resp
		}

		if miss {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if resp := do(int64(i + 1)); resp.Cached {
					b.Fatal("unexpected cache hit")
				}
			}
			return
		}
		do(1) // prime the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if resp := do(1); !resp.Cached {
				b.Fatal("expected a cache hit")
			}
		}
	}
}

// TelemetryOverhead pins the observability contract on the scalar
// identify hot path: the timed op is a span-recording core.Session
// identify feeding a live telemetry.Pipeline (the caai-serve
// configuration); after the timed loop the same iteration count runs on
// an untimed session and the relative slowdown lands in "overhead-%"
// (clamped at zero -- scheduler noise can make the instrumented loop
// come out faster). The budget holds this at 0 allocs/op and <= 5%.
// Both sessions consume identical RNG streams, so the two loops do
// byte-for-byte the same probing work.
func TelemetryOverhead(model classify.Classifier) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		id := core.NewIdentifier(model)
		server := websim.Testbed("CUBIC2")
		var tel telemetry.Pipeline
		timed := id.NewSession()
		timed.EnableTimings(&tel)
		plain := id.NewSession()
		rngTimed := rand.New(rand.NewSource(11))
		rngPlain := rand.New(rand.NewSource(11))
		timed.Identify(server, netem.Lossless, probe.Config{}, rngTimed)
		plain.Identify(server, netem.Lossless, probe.Config{}, rngPlain)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			timed.Identify(server, netem.Lossless, probe.Config{}, rngTimed)
		}
		b.StopTimer()
		enabled := b.Elapsed()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			plain.Identify(server, netem.Lossless, probe.Config{}, rngPlain)
		}
		baseline := time.Since(start)
		overhead := 0.0
		if baseline > 0 {
			overhead = (float64(enabled)/float64(baseline) - 1) * 100
		}
		if overhead < 0 {
			overhead = 0
		}
		b.ReportMetric(overhead, "overhead-%")
	}
}

// TraceOverhead pins the flight-recorder contract the same way
// TelemetryOverhead pins the pipeline's: the timed op is a
// span-recording identify that ALSO writes stage spans and events into a
// live telemetry.Flight's rings (the caai-serve configuration with
// tracing on, SampleN 1 so tail sampling retains every trace); the
// baseline is the identical session without a bound trace. Both consume
// identical RNG streams, so the loops do byte-for-byte the same probing
// work and "overhead-%" isolates the ring writes. The budget holds this
// at 0 allocs/op and <= 5%.
func TraceOverhead(model classify.Classifier) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		id := core.NewIdentifier(model)
		server := websim.Testbed("CUBIC2")
		var tel telemetry.Pipeline
		flight := telemetry.NewFlight(telemetry.FlightConfig{SampleN: 1})
		defer flight.Close()
		traced := id.NewSession()
		traced.EnableTimings(&tel)
		traced.BindTrace(flight, flight.Mint())
		plain := id.NewSession()
		plain.EnableTimings(&tel)
		rngTraced := rand.New(rand.NewSource(11))
		rngPlain := rand.New(rand.NewSource(11))
		traced.Identify(server, netem.Lossless, probe.Config{}, rngTraced)
		plain.Identify(server, netem.Lossless, probe.Config{}, rngPlain)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			traced.Identify(server, netem.Lossless, probe.Config{}, rngTraced)
		}
		b.StopTimer()
		enabled := b.Elapsed()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			plain.Identify(server, netem.Lossless, probe.Config{}, rngPlain)
		}
		baseline := time.Since(start)
		overhead := 0.0
		if baseline > 0 {
			overhead = (float64(enabled)/float64(baseline) - 1) * 100
		}
		if overhead < 0 {
			overhead = 0
		}
		b.ReportMetric(overhead, "overhead-%")
	}
}

// Accuracy runs the reduced-scale Table III cross-validation and returns
// the overall accuracy, the quality metric recorded alongside the perf
// numbers so a speedup that degrades classification is caught in the same
// trajectory file.
func Accuracy(ctx *experiments.Context) (float64, error) {
	res, err := experiments.TableIII(ctx)
	if err != nil {
		return 0, err
	}
	return res.Accuracy, nil
}
