package bench

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestNextPointPathSequencing(t *testing.T) {
	dir := t.TempDir()
	p, err := NextPointPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_0.json" {
		t.Fatalf("empty history starts at %s, want BENCH_0.json", p)
	}
	for _, name := range []string{"BENCH_0.json", "BENCH_3.json", "BENCH_2.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p, err = NextPointPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_4.json" {
		t.Fatalf("next point = %s, want BENCH_4.json (max existing + 1)", p)
	}
}

func TestPointRoundTripAndHistory(t *testing.T) {
	dir := t.TempDir()
	p0 := NewPoint("first", "quick")
	p0.Benchmarks = []Result{{Name: "a/b", N: 10, NsPerOp: 100, AllocsPerOp: 2}}
	p1 := NewPoint("second", "quick")
	p1.Benchmarks = []Result{{Name: "a/b", N: 20, NsPerOp: 50, AllocsPerOp: 0}}
	if err := WritePoint(filepath.Join(dir, "BENCH_0.json"), p0); err != nil {
		t.Fatal(err)
	}
	if err := WritePoint(filepath.Join(dir, "BENCH_1.json"), p1); err != nil {
		t.Fatal(err)
	}
	hist, err := History(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 || hist[0].Label != "first" || hist[1].Label != "second" {
		t.Fatalf("history = %+v", hist)
	}
	table := Compare(hist[0], hist[1])
	if !strings.Contains(table, "2.00x") {
		t.Fatalf("compare table missing the 2x speedup:\n%s", table)
	}
}

func allocLimit(n int64) *int64  { return &n }
func nsLimit(n float64) *float64 { return &n }

func TestBudgetCheck(t *testing.T) {
	b := Budget{
		"hot/path":   {MaxAllocsPerOp: allocLimit(10)},
		"never/ran":  {MaxAllocsPerOp: allocLimit(1)},
		"timed/path": {MaxNsPerOp: nsLimit(1000)},
	}
	results := []Result{
		{Name: "hot/path", AllocsPerOp: 11},
		{Name: "timed/path", NsPerOp: 999},
	}
	violations := b.Check(results)
	if len(violations) != 2 {
		t.Fatalf("violations = %v, want allocs overrun + missing benchmark", violations)
	}
	joined := strings.Join(violations, "\n")
	if !strings.Contains(joined, "hot/path") || !strings.Contains(joined, "never/ran") {
		t.Fatalf("unexpected violations: %v", violations)
	}

	results[0].AllocsPerOp = 10
	results = append(results, Result{Name: "never/ran"})
	if violations := b.Check(results); len(violations) != 0 {
		t.Fatalf("within-budget run reported %v", violations)
	}
}

// TestBudgetCheckMetrics: a max_metrics bound is enforced against the
// benchmark's ReportMetric extras, and a budgeted metric that was never
// reported is a violation of its own (like a missing benchmark).
func TestBudgetCheckMetrics(t *testing.T) {
	b := Budget{"telemetry/overhead": {
		MaxAllocsPerOp: allocLimit(0),
		MaxMetrics:     map[string]float64{"overhead-%": 5},
	}}
	over := []Result{{Name: "telemetry/overhead", Metrics: map[string]float64{"overhead-%": 7.2}}}
	if v := b.Check(over); len(v) != 1 || !strings.Contains(v[0], "overhead-%") {
		t.Fatalf("7.2%% against a 5%% metric budget reported %v, want one violation", v)
	}
	missing := []Result{{Name: "telemetry/overhead"}}
	if v := b.Check(missing); len(v) != 1 || !strings.Contains(v[0], "not reported") {
		t.Fatalf("unreported budgeted metric reported %v, want one violation", v)
	}
	within := []Result{{Name: "telemetry/overhead", Metrics: map[string]float64{"overhead-%": 1.3}}}
	if v := b.Check(within); len(v) != 0 {
		t.Fatalf("within-budget metric reported %v", v)
	}
}

// TestBudgetCheckZeroIsEnforced: an explicit 0 budget is a real limit —
// the zero-allocation contracts are the whole point of the gate.
func TestBudgetCheckZeroIsEnforced(t *testing.T) {
	b := Budget{"forest/votes_into": {MaxAllocsPerOp: allocLimit(0)}}
	if v := b.Check([]Result{{Name: "forest/votes_into", AllocsPerOp: 1}}); len(v) != 1 {
		t.Fatalf("1 alloc against a 0 budget reported %v, want a violation", v)
	}
	if v := b.Check([]Result{{Name: "forest/votes_into", AllocsPerOp: 0}}); len(v) != 0 {
		t.Fatalf("0 allocs against a 0 budget reported %v", v)
	}
}

func TestRunExecutesAndFilters(t *testing.T) {
	ran := map[string]bool{}
	cases := []Case{
		{Name: "group/fast", Bench: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
			}
			ran["group/fast"] = true
			b.ReportMetric(42, "answer")
		}},
		{Name: "other/skip", Bench: func(b *testing.B) { ran["other/skip"] = true }},
	}
	results, err := Run(cases, regexp.MustCompile(`^group/`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ran["group/fast"] || ran["other/skip"] {
		t.Fatalf("filter ran the wrong cases: %v", ran)
	}
	if len(results) != 1 || results[0].Name != "group/fast" {
		t.Fatalf("results = %+v", results)
	}
	if results[0].Metrics["answer"] != 42 {
		t.Fatalf("ReportMetric extras not captured: %+v", results[0])
	}
}

// TestRunSurfacesBenchmarkFailure: a case that b.Fatals must turn into an
// error, not an N=0 result that serializes as NaN and passes the gate.
func TestRunSurfacesBenchmarkFailure(t *testing.T) {
	cases := []Case{{Name: "broken/case", Bench: func(b *testing.B) {
		b.Fatal("boom")
	}}}
	if _, err := Run(cases, nil, nil); err == nil || !strings.Contains(err.Error(), "broken/case") {
		t.Fatalf("err = %v, want a failure naming broken/case", err)
	}
}
