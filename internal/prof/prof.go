// Package prof wires the standard -cpuprofile/-memprofile flags into the
// command-line tools, so hot-path work is profile-driven (go tool pprof)
// rather than guessed. It is deliberately tiny: Start begins CPU profiling
// when a path is given and returns a stop function that finishes the CPU
// profile and snapshots the heap.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling per the (possibly empty) file paths and returns a
// stop function to defer. An empty path disables that profile. The stop
// function is never nil.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: creating cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: starting cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof: creating heap profile:", err)
				return
			}
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "prof: writing heap profile:", err)
			}
			f.Close()
		}
	}, nil
}
