package websim

import (
	"testing"
	"time"

	"repro/internal/cc"
)

func TestAcceptsMSS(t *testing.T) {
	s := &Server{MinMSS: 536}
	if s.AcceptsMSS(100) || s.AcceptsMSS(300) {
		t.Fatal("server must reject MSS below its minimum")
	}
	if !s.AcceptsMSS(536) || !s.AcceptsMSS(1460) {
		t.Fatal("server must accept MSS at or above its minimum")
	}
}

func TestAcceptRequests(t *testing.T) {
	s := &Server{MaxRequests: 3}
	if got := s.AcceptRequests(12); got != 3 {
		t.Fatalf("AcceptRequests(12) = %d, want 3", got)
	}
	if got := s.AcceptRequests(2); got != 2 {
		t.Fatalf("AcceptRequests(2) = %d, want 2", got)
	}
	unlimited := &Server{}
	if got := unlimited.AcceptRequests(12); got != 12 {
		t.Fatalf("unlimited AcceptRequests = %d", got)
	}
}

func TestOpenComputesSegments(t *testing.T) {
	s := Testbed("RENO")
	s.MaxRequests = 2
	s.DefaultPageBytes = 1000
	sender, err := s.Open(100, 12, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 2 requests x 1000 bytes at mss 100 = 20 segments.
	burst := sender.SendBurst(0)
	total := len(burst)
	for len(burst) > 0 {
		sender.BeginRound(1)
		for _, seg := range burst {
			sender.DeliverAck(time.Second, seg.ID+1, time.Second)
		}
		burst = sender.SendBurst(time.Second)
		total += len(burst)
	}
	if total != 20 {
		t.Fatalf("total segments = %d, want 20", total)
	}
}

func TestOpenRejectsSmallMSS(t *testing.T) {
	s := Testbed("RENO")
	s.MinMSS = 536
	if _, err := s.Open(100, 1, 1000, 0); err == nil {
		t.Fatal("Open must reject an MSS below the minimum")
	}
}

func TestOpenUnknownAlgorithm(t *testing.T) {
	s := &Server{Name: "x", Algorithm: "NOPE", MinMSS: 100}
	if _, err := s.Open(536, 1, 1000, 0); err == nil {
		t.Fatal("Open must surface unknown algorithms")
	}
}

func TestEffectiveAlgorithmProxy(t *testing.T) {
	s := &Server{Algorithm: "CTCP1", ProxyAlgorithm: "BIC"}
	if got := s.EffectiveAlgorithm(); got != "BIC" {
		t.Fatalf("EffectiveAlgorithm = %s, want the proxy's BIC", got)
	}
	s.ProxyAlgorithm = ""
	if got := s.EffectiveAlgorithm(); got != "CTCP1" {
		t.Fatalf("EffectiveAlgorithm = %s", got)
	}
}

func TestCustomAlgorithmOverride(t *testing.T) {
	s := Testbed("RENO")
	s.CustomAlgorithm = func() cc.Algorithm { return cc.NewSTCP() }
	sender, err := s.Open(536, 1, 10000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := sender.Algorithm().Name(); got != "STCP" {
		t.Fatalf("algorithm = %s, want the custom STCP", got)
	}
}

func TestSsthreshCaching(t *testing.T) {
	s := Testbed("RENO")
	s.SsthreshCaching = true
	s.CacheTTL = 5 * time.Minute

	first, err := s.Open(536, 1, 1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	first.OnRTOExpired(time.Second) // forces a finite ssthresh
	th := first.CurrentSsthresh()
	s.Close(first, 10*time.Second)

	// Within the TTL the cached threshold applies.
	second, err := s.Open(536, 1, 1<<20, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := second.CurrentSsthresh(); got != th {
		t.Fatalf("cached ssthresh = %v, want %v", got, th)
	}

	// Past the TTL the cache expires (the paper's 10-minute wait).
	third, err := s.Open(536, 1, 1<<20, 10*time.Second+10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if got := third.CurrentSsthresh(); got == th {
		t.Fatal("cache must expire after the TTL")
	}
}

func TestNoCachingWithoutFlag(t *testing.T) {
	s := Testbed("RENO")
	first, _ := s.Open(536, 1, 1<<20, 0)
	first.OnRTOExpired(time.Second)
	s.Close(first, 2*time.Second)
	second, _ := s.Open(536, 1, 1<<20, 3*time.Second)
	if second.CurrentSsthresh() < cc.InitialSsthresh {
		t.Fatal("non-caching server must start with infinite ssthresh")
	}
}

func TestTestbedProperties(t *testing.T) {
	s := Testbed("CUBIC2")
	if !s.AcceptsMSS(100) {
		t.Fatal("testbed must accept the smallest ladder MSS")
	}
	if s.AcceptRequests(12) != 12 {
		t.Fatal("testbed must accept unlimited requests")
	}
	if s.LongestPageBytes < 1<<20 {
		t.Fatal("testbed must host a long page")
	}
	if s.EffectiveAlgorithm() != "CUBIC2" {
		t.Fatal("testbed algorithm mismatch")
	}
}
