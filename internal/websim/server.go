// Package websim models the application side of a Web server as CAAI sees
// it: how many pipelined HTTP requests it accepts (the paper's Fig. 6), how
// long its default and longest pages are (Fig. 7), the smallest MSS it
// accepts (Table II), and the TCP stack options that produce the paper's
// invalid and special traces (F-RTO, slow start threshold caching, send
// buffer limits, proxies).
package websim

import (
	"fmt"
	"time"

	"repro/internal/cc"
	"repro/internal/tcpsim"
)

// Server describes one Web server in the simulated Internet.
type Server struct {
	// Name identifies the server (census bookkeeping).
	Name string
	// Algorithm is the canonical name of the server's congestion
	// avoidance algorithm (a key of the cc registry).
	Algorithm string
	// CustomAlgorithm, when non-nil, overrides Algorithm with an
	// arbitrary implementation (unknown algorithms in the census, the
	// "Approaching w(tmo)" special behaviour, user extensions).
	CustomAlgorithm func() cc.Algorithm
	// ProxyAlgorithm, when non-empty, models a TCP proxy (load
	// balancer) splitting the connection: CAAI observes the proxy's
	// algorithm rather than the server's.
	ProxyAlgorithm string

	// MinMSS is the smallest MSS the server accepts (Table II).
	MinMSS int
	// MaxRequests is the maximum number of repeated pipelined HTTP
	// requests the server serves on one connection (Fig. 6).
	MaxRequests int
	// DefaultPageBytes and LongestPageBytes are the page sizes CAAI can
	// request (Fig. 7). LongestPageBytes is what the page-searching tool
	// can discover; 0 means no page beyond the default exists.
	DefaultPageBytes int64
	LongestPageBytes int64

	// Software is the HTTP server software label (Apache, IIS, ...).
	Software string
	// Region is the continent label used in the census demographics.
	Region string

	// TCP stack behaviour knobs.
	FRTO               bool
	SsthreshCaching    bool
	CacheTTL           time.Duration // ssthresh cache lifetime; 0 = default
	SendBufferSegments int64
	CwndClamp          float64
	PostTimeoutClamp   float64
	IgnoreRTO          bool
	InitialWindow      float64
	// Recovery selects the loss recovery component (default NewReno),
	// and SlowStart the slow start component (default standard) -- the
	// other Fig. 1 components, identified by TBIT rather than CAAI.
	Recovery  tcpsim.RecoveryScheme
	SlowStart tcpsim.SlowStartScheme
	// BurstinessControl enables Linux cwnd moderation on recovery exit.
	BurstinessControl bool

	cachedSsthresh float64
	cachedAt       time.Duration
	hasCache       bool
}

// defaultCacheTTL mirrors typical route-metric cache lifetimes; the paper's
// 10-minute inter-environment wait comfortably outlives it.
const defaultCacheTTL = 5 * time.Minute

// EffectiveAlgorithm returns the algorithm CAAI actually observes,
// accounting for proxies.
func (s *Server) EffectiveAlgorithm() string {
	if s.ProxyAlgorithm != "" {
		return s.ProxyAlgorithm
	}
	return s.Algorithm
}

// AcceptsMSS reports whether the server accepts a connection whose MSS
// option is mss bytes.
func (s *Server) AcceptsMSS(mss int) bool { return mss >= s.MinMSS }

// AcceptRequests returns how many of the requested pipelined HTTP requests
// the server will actually serve.
func (s *Server) AcceptRequests(requested int) int {
	if s.MaxRequests <= 0 {
		return requested
	}
	if requested > s.MaxRequests {
		return s.MaxRequests
	}
	return requested
}

// newAlgorithm instantiates the congestion avoidance component for one
// connection.
func (s *Server) newAlgorithm() (cc.Algorithm, error) {
	if s.CustomAlgorithm != nil {
		return s.CustomAlgorithm(), nil
	}
	return cc.New(s.EffectiveAlgorithm())
}

// Open establishes a connection: mss is the negotiated segment size,
// requests the number of pipelined HTTP requests CAAI sent, pageBytes the
// length of the page each request fetches, and now the wall-clock time
// (drives slow start threshold cache expiry).
func (s *Server) Open(mss, requests int, pageBytes int64, now time.Duration) (*tcpsim.Sender, error) {
	opts, err := s.connOptions(mss, requests, pageBytes, now)
	if err != nil {
		return nil, err
	}
	alg, err := s.newAlgorithm()
	if err != nil {
		return nil, fmt.Errorf("websim: server %s: %w", s.Name, err)
	}
	return tcpsim.New(alg, opts), nil
}

// connOptions computes the tcpsim options one connection runs with: the
// shared half of Open and Dialer.Open.
func (s *Server) connOptions(mss, requests int, pageBytes int64, now time.Duration) (tcpsim.Options, error) {
	if !s.AcceptsMSS(mss) {
		return tcpsim.Options{}, fmt.Errorf("websim: server %s rejects mss %d (minimum %d)", s.Name, mss, s.MinMSS)
	}
	accepted := s.AcceptRequests(requests)
	totalBytes := int64(accepted) * pageBytes
	totalSegs := (totalBytes + int64(mss) - 1) / int64(mss)
	opts := tcpsim.Options{
		MSS:                mss,
		InitialWindow:      s.InitialWindow,
		TotalSegments:      totalSegs,
		SendBufferSegments: s.SendBufferSegments,
		CwndClamp:          s.CwndClamp,
		PostTimeoutClamp:   s.PostTimeoutClamp,
		FRTO:               s.FRTO,
		IgnoreRTO:          s.IgnoreRTO,
		Recovery:           s.Recovery,
		SlowStart:          s.SlowStart,
		BurstinessControl:  s.BurstinessControl,
	}
	if s.SsthreshCaching && s.hasCache {
		ttl := s.CacheTTL
		if ttl <= 0 {
			ttl = defaultCacheTTL
		}
		if now-s.cachedAt <= ttl {
			opts.InitialSsthresh = s.cachedSsthresh
		}
	}
	return opts, nil
}

// ResetCache forgets the cached slow start threshold, as if the paper's
// inter-measurement wait let the route metrics expire. Census runners
// call it before each identification so a server's outcome is a pure
// function of its spec and the probe seed, independent of how many times
// earlier runs or retries probed it. (Caching *within* one
// identification -- the behaviour CAAI must see through -- is untouched:
// it builds up between a single gathering's environments.)
func (s *Server) ResetCache() {
	s.cachedSsthresh = 0
	s.cachedAt = 0
	s.hasCache = false
}

// Close ends a connection at time now, caching the slow start threshold
// when the server implements threshold caching.
func (s *Server) Close(sender *tcpsim.Sender, now time.Duration) {
	if sender == nil || !s.SsthreshCaching {
		return
	}
	if th := sender.CurrentSsthresh(); th < cc.InitialSsthresh {
		s.cachedSsthresh = th
		s.cachedAt = now
		s.hasCache = true
	}
}

// Testbed returns a cooperative lab server running the named algorithm:
// unlimited pipelining, an effectively infinite page, a 100-byte minimum
// MSS, and no special stack behaviours. This is the paper's training
// testbed (Apache/IIS on the lab machines).
func Testbed(algorithm string) *Server {
	return &Server{
		Name:             "testbed-" + algorithm,
		Algorithm:        algorithm,
		MinMSS:           100,
		MaxRequests:      0, // unlimited
		DefaultPageBytes: 64 << 20,
		LongestPageBytes: 64 << 20,
		Software:         "Apache",
		Region:           "Lab",
	}
}
