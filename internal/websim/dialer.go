package websim

import (
	"fmt"
	"time"

	"repro/internal/cc"
	"repro/internal/tcpsim"
)

// Dialer opens connections with recycled state: one Sender (and its Conn)
// is renewed in place per connection, and congestion avoidance components
// are cached per algorithm name and rewound with Reset. Connections opened
// through a Dialer behave exactly like Server.Open's -- Algorithm.Reset's
// contract is that a rewound instance is indistinguishable from a fresh
// one -- but steady-state opens allocate nothing, which is what keeps the
// identification hot path at zero allocations per probe.
//
// The returned sender is valid only until the Dialer's next Open, and a
// Dialer is not safe for concurrent use: it belongs to exactly one prober.
type Dialer struct {
	sender tcpsim.Sender
	algs   map[string]cc.Algorithm
}

// Open is Server.Open with recycled sender and algorithm state. Servers
// with a CustomAlgorithm factory still get a fresh instance per call (the
// factory may close over arbitrary state), so only named-algorithm servers
// hit the zero-allocation path.
func (d *Dialer) Open(s *Server, mss, requests int, pageBytes int64, now time.Duration) (*tcpsim.Sender, error) {
	opts, err := s.connOptions(mss, requests, pageBytes, now)
	if err != nil {
		return nil, err
	}
	alg, err := d.algorithm(s)
	if err != nil {
		return nil, err
	}
	d.sender.Renew(alg, opts)
	return &d.sender, nil
}

// algorithm resolves the connection's congestion avoidance component,
// reusing one cached instance per algorithm name.
func (d *Dialer) algorithm(s *Server) (cc.Algorithm, error) {
	if s.CustomAlgorithm != nil {
		return s.CustomAlgorithm(), nil
	}
	name := s.EffectiveAlgorithm()
	if alg, ok := d.algs[name]; ok {
		return alg, nil
	}
	alg, err := cc.New(name)
	if err != nil {
		return nil, fmt.Errorf("websim: server %s: %w", s.Name, err)
	}
	if d.algs == nil {
		d.algs = make(map[string]cc.Algorithm, 8)
	}
	d.algs[name] = alg
	return alg, nil
}
