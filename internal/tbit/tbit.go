// Package tbit reimplements the TBIT probes (Padhye and Floyd, SIGCOMM
// 2001) that CAAI builds on: the paper identifies the congestion avoidance
// component and defers the initial window and loss recovery components to
// TBIT, whose source CAAI literally extends. The probes here -- initial
// window measurement, loss recovery classification (Tahoe / Reno /
// NewReno), and the multiplicative decrease measured through a *loss
// event* -- also demonstrate why CAAI emulates timeouts instead of loss
// events: Linux burstiness control (cwnd moderation) makes the post-loss
// window far smaller than beta*w(tmo) (Section IV-B).
package tbit

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/netem"
	"repro/internal/tcpsim"
	"repro/internal/websim"
)

// probeRTT is the emulated RTT used by the TBIT sessions.
const probeRTT = time.Second

// ErrNoTrigger reports that the loss event never produced a fast
// retransmit (e.g. the window stayed too small).
var ErrNoTrigger = errors.New("tbit: loss event did not trigger a response")

// Prober runs TBIT measurements against simulated servers. Not safe for
// concurrent use.
type Prober struct {
	cond netem.Condition
	rng  *rand.Rand
}

// New returns a TBIT prober under the given network condition.
func New(cond netem.Condition, rng *rand.Rand) *Prober {
	return &Prober{cond: cond, rng: rng}
}

// session is a minimal per-packet-controlled gathering loop. It plays the
// receiver: received tracks delivered segments at and above base (all
// segments below base were delivered in order during window growth).
type session struct {
	sender   *tcpsim.Sender
	now      time.Duration
	round    int64
	base     int64
	received map[int64]bool
}

func (p *Prober) open(server *websim.Server, mss int) (*session, error) {
	sender, err := server.Open(mss, 12, server.LongestPageBytes, 0)
	if err != nil {
		return nil, fmt.Errorf("tbit: %w", err)
	}
	return &session{sender: sender, received: map[int64]bool{}}, nil
}

// cum returns the receiver's cumulative ACK value: the first segment at or
// above base that has not been delivered.
func (s *session) cum() int64 {
	c := s.base
	for s.received[c] {
		c++
	}
	return c
}

// ackInOrder acknowledges a burst segment-by-segment with in-order
// cumulative ACKs, advancing the emulated clock one RTT and the receiver's
// in-order base.
func (s *session) ackInOrder(burst []tcpsim.Segment) {
	if len(burst) == 0 {
		s.now += probeRTT
		return
	}
	arr := s.now + probeRTT
	s.round++
	s.sender.BeginRound(s.round)
	for _, seg := range burst {
		s.sender.DeliverAck(arr, seg.ID+1, probeRTT)
	}
	s.base = burst[len(burst)-1].ID + 1
	s.now = arr
}

// InitialWindow measures the server's initial congestion window: the size
// of the first burst after connection establishment (the TBIT IW test).
func (p *Prober) InitialWindow(server *websim.Server, mss int) (int, error) {
	sess, err := p.open(server, mss)
	if err != nil {
		return 0, err
	}
	burst := sess.sender.SendBurst(0)
	if len(burst) == 0 {
		return 0, errors.New("tbit: server sent no data")
	}
	return len(burst), nil
}

// growWindow drives the sender with clean ACKs until its burst reaches at
// least target segments, returning that burst.
func (s *session) growWindow(target int) ([]tcpsim.Segment, error) {
	for r := 0; r < 32; r++ {
		burst := s.sender.SendBurst(s.now)
		if len(burst) >= target {
			return burst, nil
		}
		if len(burst) == 0 {
			return nil, errors.New("tbit: sender stalled while growing the window")
		}
		s.ackInOrder(burst)
	}
	return nil, errors.New("tbit: window never reached the target")
}

// lossEvent acknowledges burst while withholding the segments in drops,
// sending the cumulative ACK after each delivered segment -- every segment
// above the first hole produces a duplicate ACK, the classic
// three-dup-ACK loss event.
func (s *session) lossEvent(burst []tcpsim.Segment, drops map[int64]bool) {
	arr := s.now + probeRTT
	s.round++
	s.sender.BeginRound(s.round)
	s.base = burst[0].ID // everything before the burst is already acked
	for _, seg := range burst {
		if drops[seg.ID] {
			continue // lost on the path
		}
		s.received[seg.ID] = true
		s.sender.DeliverAck(arr, s.cum(), probeRTT)
	}
	s.now = arr
}

// MultiplicativeDecrease measures beta through a *loss event*: it grows
// the window to w, drops a single segment, lets fast recovery run, and
// returns postLossWindow / preLossWindow. With Linux burstiness control
// the result is far below the algorithm's true beta -- the paper's
// Section IV-B argument for emulating timeouts instead.
func (p *Prober) MultiplicativeDecrease(server *websim.Server, mss int) (float64, error) {
	sess, err := p.open(server, mss)
	if err != nil {
		return 0, err
	}
	burst, err := sess.growWindow(16)
	if err != nil {
		return 0, err
	}
	pre := len(burst)
	drop := burst[1].ID
	sess.lossEvent(burst, map[int64]bool{drop: true})

	// Drive until recovery completes and a clean post-loss burst of new
	// data appears; its size is the post-loss window.
	for r := 0; r < 8; r++ {
		out := sess.sender.SendBurst(sess.now)
		if len(out) == 0 {
			return 0, ErrNoTrigger
		}
		if allNew(out) && !sess.sender.InRecovery() && r > 0 {
			return float64(len(out)) / float64(pre), nil
		}
		sess.ackCumulative(out)
	}
	return 0, ErrNoTrigger
}

// ackCumulative delivers each segment of the burst to the receiver and
// acknowledges it with the running cumulative value (holes fill in as
// retransmissions arrive).
func (s *session) ackCumulative(burst []tcpsim.Segment) {
	arr := s.now + probeRTT
	s.round++
	s.sender.BeginRound(s.round)
	for _, seg := range burst {
		s.received[seg.ID] = true
		s.sender.DeliverAck(arr, s.cum(), probeRTT)
	}
	s.now = arr
}

// LossRecovery classifies the server's loss recovery scheme with the TBIT
// two-drop test: two segments of the same window are withheld, and the
// retransmission pattern identifies NewReno (second hole retransmitted on
// the partial ACK), Reno (second hole waits for the RTO), or Tahoe
// (window collapses to one and slow starts).
func (p *Prober) LossRecovery(server *websim.Server, mss int) (string, error) {
	sess, err := p.open(server, mss)
	if err != nil {
		return "", err
	}
	burst, err := sess.growWindow(16)
	if err != nil {
		return "", err
	}
	drop1 := burst[1].ID
	drop2 := burst[3].ID
	sess.lossEvent(burst, map[int64]bool{drop1: true, drop2: true})

	rtoFired := false
	postRecoveryBurst := 0
	for r := 0; r < 12; r++ {
		out := sess.sender.SendBurst(sess.now)
		if len(out) == 0 {
			if sess.sender.DataExhausted() {
				break
			}
			// Stalled: the real server's RTO fires.
			sess.now += sess.sender.RTO()
			sess.sender.OnRTOExpired(sess.now)
			rtoFired = true
			continue
		}
		recovered := sess.received[drop1] && sess.received[drop2]
		if recovered && !sess.sender.InRecovery() && allNew(out) {
			postRecoveryBurst = len(out)
			break
		}
		sess.ackCumulative(out)
	}
	switch {
	case !sess.received[drop1] || !sess.received[drop2]:
		return "", ErrNoTrigger
	case rtoFired:
		// Only the RTO recovered the second hole: classic Reno.
		return tcpsim.RecoveryReno.String(), nil
	case postRecoveryBurst > 0 && postRecoveryBurst*3 <= len(burst):
		// The window collapsed to one and is doubling back up: Tahoe.
		return tcpsim.RecoveryTahoe.String(), nil
	default:
		// Both holes retransmitted promptly and the window resumed
		// near half the pre-loss value: NewReno fast recovery.
		return tcpsim.RecoveryNewReno.String(), nil
	}
}

// allNew reports whether a burst contains no retransmissions.
func allNew(burst []tcpsim.Segment) bool {
	for _, seg := range burst {
		if seg.Retransmit {
			return false
		}
	}
	return true
}
