package tbit

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/netem"
	"repro/internal/tcpsim"
	"repro/internal/websim"
)

func newProber(seed int64) *Prober {
	return New(netem.Lossless, rand.New(rand.NewSource(seed)))
}

func TestInitialWindow(t *testing.T) {
	tests := []struct {
		mss  int
		iw   float64
		want int
	}{
		{536, 0, 4},  // RFC 3390 default for 536
		{1460, 0, 3}, // RFC 3390 default for 1460
		{536, 10, 10},
		{536, 2, 2},
	}
	for _, tc := range tests {
		server := websim.Testbed("RENO")
		server.InitialWindow = tc.iw
		got, err := newProber(1).InitialWindow(server, tc.mss)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("mss=%d iw=%v: IW = %d, want %d", tc.mss, tc.iw, got, tc.want)
		}
	}
}

// recoveryServer builds a testbed server with the given recovery scheme.
func recoveryServer(scheme tcpsim.RecoveryScheme, burstiness bool) *websim.Server {
	s := websim.Testbed("RENO")
	s.Recovery = scheme
	s.BurstinessControl = burstiness
	return s
}

func TestLossRecoveryClassification(t *testing.T) {
	tests := []struct {
		scheme tcpsim.RecoveryScheme
		want   string
	}{
		{tcpsim.RecoveryNewReno, "NEWRENO"},
		{tcpsim.RecoveryReno, "RENO"},
		{tcpsim.RecoveryTahoe, "TAHOE"},
	}
	for _, tc := range tests {
		t.Run(tc.want, func(t *testing.T) {
			got, err := newProber(2).LossRecovery(recoveryServer(tc.scheme, false), 536)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("classified as %s, want %s", got, tc.want)
			}
		})
	}
}

func TestMultiplicativeDecreaseWithoutBurstinessControl(t *testing.T) {
	// A RENO server without cwnd moderation: the post-loss-event window
	// is ~half the pre-loss window, so a loss event *would* measure beta
	// accurately.
	beta, err := newProber(3).MultiplicativeDecrease(recoveryServer(tcpsim.RecoveryNewReno, false), 536)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta-0.5) > 0.15 {
		t.Fatalf("beta via loss event = %v, want ~0.5", beta)
	}
}

func TestMultiplicativeDecreaseWithBurstinessControl(t *testing.T) {
	// With Linux burstiness control the window right after the loss
	// event is clamped to in-flight + 3 packets, far below beta*w: the
	// paper's Section IV-B argument for emulating timeouts instead of
	// loss events.
	beta, err := newProber(4).MultiplicativeDecrease(recoveryServer(tcpsim.RecoveryNewReno, true), 536)
	if err != nil {
		t.Fatal(err)
	}
	if beta > 0.4 {
		t.Fatalf("beta via loss event = %v; burstiness control should crush it", beta)
	}
}

func TestLossRecoveryRejectsTinyWindows(t *testing.T) {
	server := recoveryServer(tcpsim.RecoveryNewReno, false)
	server.SendBufferSegments = 4 // window can never reach the target
	if _, err := newProber(5).LossRecovery(server, 536); err == nil {
		t.Fatal("expected an error for a window that cannot grow")
	}
}

func TestInitialWindowErrorsOnRejectedMSS(t *testing.T) {
	server := websim.Testbed("RENO")
	server.MinMSS = 1460
	if _, err := newProber(6).InitialWindow(server, 100); err == nil {
		t.Fatal("expected an MSS rejection error")
	}
}

func TestRecoverySchemeStrings(t *testing.T) {
	if tcpsim.RecoveryNewReno.String() != "NEWRENO" ||
		tcpsim.RecoveryReno.String() != "RENO" ||
		tcpsim.RecoveryTahoe.String() != "TAHOE" {
		t.Fatal("scheme names wrong")
	}
	if tcpsim.RecoveryScheme(42).String() != "UNKNOWN" {
		t.Fatal("unknown scheme must render")
	}
}

// TestMultiplicativeDecreaseAcrossAlgorithms: the loss-event beta tracks
// each algorithm's Ssthresh when burstiness control is off.
func TestMultiplicativeDecreaseAcrossAlgorithms(t *testing.T) {
	tests := []struct {
		alg  string
		want float64
	}{
		{"RENO", 0.5},
		{"STCP", 0.875},
	}
	for _, tc := range tests {
		server := websim.Testbed(tc.alg)
		beta, err := newProber(7).MultiplicativeDecrease(server, 536)
		if err != nil {
			t.Fatalf("%s: %v", tc.alg, err)
		}
		if math.Abs(beta-tc.want) > 0.2 {
			t.Errorf("%s: beta = %v, want ~%v", tc.alg, beta, tc.want)
		}
	}
}
