package probe

import (
	"math/rand"
	"testing"

	"repro/internal/cc"
	"repro/internal/netem"
	"repro/internal/websim"
)

// TestDebugTraceShapes prints the Fig. 3 style traces for eyeballing with
// go test -v -run DebugTraceShapes.
func TestDebugTraceShapes(t *testing.T) {
	for _, name := range cc.Names() {
		for _, envName := range []string{"A", "B"} {
			env := EnvA()
			if envName == "B" {
				env = EnvB()
			}
			p := New(Config{}, netem.Lossless, rand.New(rand.NewSource(1)))
			tr, err := p.GatherEnv(websim.Testbed(name), env, 256, 536, 64<<20)
			if err != nil {
				t.Fatalf("%s env %s: %v", name, envName, err)
			}
			t.Logf("%-9s env %s: %s", name, envName, tr)
		}
	}
}
