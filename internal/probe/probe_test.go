package probe

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/trace"
	"repro/internal/websim"
)

func newLossless(seed int64) *Prober {
	return New(Config{}, netem.Lossless, rand.New(rand.NewSource(seed)))
}

func gatherA(t *testing.T, p *Prober, server *websim.Server, wmax, mss int) *trace.Trace {
	t.Helper()
	tr, err := p.GatherEnv(server, EnvA(), wmax, mss, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestEnvironmentSchedules(t *testing.T) {
	a := EnvA()
	for r := 1; r <= 20; r++ {
		if a.PreRTT(r) != time.Second || a.PostRTT(r) != time.Second {
			t.Fatalf("env A RTT at round %d not 1s", r)
		}
	}
	b := EnvB()
	for r := 1; r <= 3; r++ {
		if b.PreRTT(r) != 800*time.Millisecond {
			t.Fatalf("env B pre round %d = %v, want 0.8s", r, b.PreRTT(r))
		}
	}
	if b.PreRTT(4) != time.Second {
		t.Fatal("env B pre round 4 must be 1s")
	}
	for r := 1; r <= 12; r++ {
		if b.PostRTT(r) != 800*time.Millisecond {
			t.Fatalf("env B post round %d = %v, want 0.8s", r, b.PostRTT(r))
		}
	}
	if b.PostRTT(13) != time.Second {
		t.Fatal("env B post round 13 must be 1s")
	}
}

func TestRenoTraceShape(t *testing.T) {
	tr := gatherA(t, newLossless(1), websim.Testbed("RENO"), 256, 536)
	if !tr.Valid() {
		t.Fatalf("invalid trace: %s", tr)
	}
	// Slow start doubles from the initial window to w(tmo) = 512.
	wantPre := []int{4, 8, 16, 32, 64, 128, 256, 512}
	if !reflect.DeepEqual(tr.Pre, wantPre) {
		t.Fatalf("pre = %v, want %v", tr.Pre, wantPre)
	}
	// Post-timeout: retransmission round (0), doubling to ssthresh 256,
	// then +1 per RTT.
	wantPost := []int{0, 2, 4, 8, 16, 32, 64, 128, 256, 256, 257, 258, 259, 260, 261, 262, 263, 264}
	if !reflect.DeepEqual(tr.Post, wantPost) {
		t.Fatalf("post = %v, want %v", tr.Post, wantPost)
	}
}

func TestGatherDeterministicUnderSeed(t *testing.T) {
	cond := netem.Condition{MeanRTT: 100 * time.Millisecond, RTTStdDev: 20 * time.Millisecond, LossRate: 0.05}
	run := func() *trace.Trace {
		p := New(Config{}, cond, rand.New(rand.NewSource(7)))
		tr, err := p.GatherEnv(websim.Testbed("CUBIC2"), EnvA(), 256, 536, 64<<20)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("nondeterministic gathering:\n%s\n%s", a, b)
	}
}

func TestAllAlgorithmsProduceValidEnvATraces(t *testing.T) {
	for _, name := range []string{"RENO", "BIC", "CTCP1", "CTCP2", "CUBIC1", "CUBIC2", "HSTCP", "HTCP", "ILLINOIS", "STCP", "VEGAS", "VENO", "WESTWOOD", "YEAH"} {
		tr := gatherA(t, newLossless(3), websim.Testbed(name), 256, 536)
		if !tr.Valid() {
			t.Errorf("%s: invalid env A trace: %s", name, tr)
		}
	}
}

func TestVegasEnvBNeverTimesOut(t *testing.T) {
	p := newLossless(4)
	tr, err := p.GatherEnv(websim.Testbed("VEGAS"), EnvB(), 64, 536, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TimedOut {
		t.Fatalf("VEGAS timed out in env B: %s", tr)
	}
	if tr.MaxWindow() > 64 {
		t.Fatalf("VEGAS window reached %d in env B, want <= 64", tr.MaxWindow())
	}
	// The delay-based retreat pins the window well below the slow start
	// peak for the remainder of the gathering.
	last := tr.Pre[len(tr.Pre)-1]
	if last >= 60 {
		t.Fatalf("VEGAS equilibrium window = %d, want pinned low", last)
	}
}

func TestBetaDiffersAcrossEnvironments(t *testing.T) {
	// ILLINOIS: beta 0.875 in env A (no queueing) but 0.5 in env B (the
	// pre-timeout RTT step) -- the paper's reason for two environments.
	p := newLossless(5)
	ta := gatherA(t, p, websim.Testbed("ILLINOIS"), 256, 536)
	tb, err := p.GatherEnv(websim.Testbed("ILLINOIS"), EnvB(), 256, 536, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	la := ta.PostNonzero()
	lb := tb.PostNonzero()
	// Env A boundary near 449 (0.875*512); env B near 256 (0.5*512).
	maxA, maxB := 0, 0
	for _, w := range la[:10] {
		if w > maxA {
			maxA = w
		}
	}
	for _, w := range lb[:10] {
		if w > maxB {
			maxB = w
		}
	}
	if maxA < 400 || maxB > 350 {
		t.Fatalf("env A/B slow start ceilings = %d/%d, want ~449 vs ~256", maxA, maxB)
	}
}

func TestLadderFallsBackOnShortPages(t *testing.T) {
	server := websim.Testbed("RENO")
	// Enough data for wmax=64 (needs ~1000 segs) but not 512.
	server.DefaultPageBytes = 800 * 536
	server.LongestPageBytes = 800 * 536
	server.MaxRequests = 1
	p := newLossless(6)
	res := p.Gather(server)
	if !res.Valid {
		t.Fatalf("expected a valid result at a smaller wmax, got %s", res.Reason)
	}
	if res.Wmax >= 512 {
		t.Fatalf("wmax = %d, want a smaller ladder value", res.Wmax)
	}
}

func TestGatherInsufficientData(t *testing.T) {
	server := websim.Testbed("RENO")
	server.DefaultPageBytes = 10 << 10 // 10 kB total
	server.LongestPageBytes = 10 << 10
	server.MaxRequests = 1
	res := newLossless(7).Gather(server)
	if res.Valid {
		t.Fatal("expected invalid result")
	}
	if res.Reason != ReasonInsufficientData {
		t.Fatalf("reason = %s, want %s", res.Reason, ReasonInsufficientData)
	}
}

func TestGatherNoTimeout(t *testing.T) {
	server := websim.Testbed("RENO")
	server.SendBufferSegments = 40 // window can never exceed 64
	res := newLossless(8).Gather(server)
	if res.Valid {
		t.Fatal("expected invalid result")
	}
	if res.Reason != ReasonNoTimeout {
		t.Fatalf("reason = %s, want %s", res.Reason, ReasonNoTimeout)
	}
}

func TestGatherNoResponseAfterTimeout(t *testing.T) {
	server := websim.Testbed("RENO")
	server.IgnoreRTO = true
	res := newLossless(9).Gather(server)
	if res.Valid {
		t.Fatal("expected invalid result")
	}
	if res.Reason != ReasonNoResponse {
		t.Fatalf("reason = %s, want %s", res.Reason, ReasonNoResponse)
	}
}

func TestMSSNegotiationLadder(t *testing.T) {
	server := websim.Testbed("RENO")
	server.MinMSS = 536
	res := newLossless(10).Gather(server)
	if !res.Valid {
		t.Fatalf("gather failed: %s", res.Reason)
	}
	if res.MSS != 536 {
		t.Fatalf("negotiated mss = %d, want 536", res.MSS)
	}
	reject := websim.Testbed("RENO")
	reject.MinMSS = 9000
	res = newLossless(11).Gather(reject)
	if res.Valid || res.Reason != ReasonMSSRejected {
		t.Fatalf("expected mss rejection, got %+v", res)
	}
}

func TestFRTOCounterMeasure(t *testing.T) {
	server := websim.Testbed("RENO")
	server.FRTO = true
	// With the dup-ACK counter-measure: normal slow start post-timeout.
	tr := gatherA(t, newLossless(12), server, 256, 536)
	if !tr.Valid() {
		t.Fatalf("invalid trace with counter-measure: %s", tr)
	}
	q := tr.PostNonzero()
	if q[0] != 2 || q[1] != 4 {
		t.Fatalf("expected post-timeout slow start, got %v", q)
	}

	// Without it: the spurious-RTO undo keeps the huge window; no
	// doubling restart is observable.
	p := New(Config{DisableDupAck: true}, netem.Lossless, rand.New(rand.NewSource(13)))
	tr2, err := p.GatherEnv(server, EnvA(), 256, 536, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	q2 := tr2.PostNonzero()
	if len(q2) > 0 && q2[0] <= 4 {
		t.Fatalf("undo expected without counter-measure, got slow start %v", q2)
	}
}

func TestSsthreshCachingNeedsWait(t *testing.T) {
	mk := func() *websim.Server {
		s := websim.Testbed("RENO")
		s.SsthreshCaching = true
		s.CacheTTL = 5 * time.Minute
		return s
	}
	// Default config waits 10 minutes: both environments gather cleanly.
	res := New(Config{}, netem.Lossless, rand.New(rand.NewSource(14))).Gather(mk())
	if !res.Valid {
		t.Fatalf("valid gather expected with the wait, got %s", res.Reason)
	}
	// With a 1s wait the env B connection inherits a tiny ssthresh and
	// crawls: it must not produce the same clean doubling trace.
	res2 := New(Config{InterEnvWait: time.Second}, netem.Lossless, rand.New(rand.NewSource(15))).Gather(mk())
	if res2.Valid && res2.Wmax == res.Wmax &&
		reflect.DeepEqual(res2.TraceB.Pre, res.TraceB.Pre) {
		t.Fatal("cached ssthresh had no observable effect")
	}
}

func TestProbeClockAdvances(t *testing.T) {
	p := newLossless(16)
	before := p.clock
	gatherA(t, p, websim.Testbed("RENO"), 64, 536)
	if p.clock <= before {
		t.Fatal("prober clock did not advance")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Requests != 12 || cfg.PostRounds != trace.ValidPostRounds {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.InterEnvWait != 10*time.Minute {
		t.Fatalf("InterEnvWait = %v, want 10m", cfg.InterEnvWait)
	}
	if len(cfg.WmaxLadder) != 4 || cfg.WmaxLadder[0] != 512 {
		t.Fatalf("wmax ladder = %v", cfg.WmaxLadder)
	}
	if len(cfg.MSSLadder) != 4 || cfg.MSSLadder[0] != 100 {
		t.Fatalf("mss ladder = %v", cfg.MSSLadder)
	}
}
