package probe

import (
	"time"

	"repro/internal/tcpsim"
)

// Tap observes a gathering session at the wire level, from the simulated
// server's vantage point: every data segment the server emits and every
// cumulative ACK that reaches it, with the session's emulated clock as
// timestamps. internal/pcapgen implements Tap to turn probe sessions into
// synthetic packet captures that round-trip through the passive
// (pcap -> flow -> classify) pipeline.
//
// Vantage point contract: Data fires for every segment the server sends
// (segments lost on the downlink are still observed leaving the server);
// Ack fires only for ACKs that survive the uplink (lost ACKs never reach
// the capture point). This matches a capture taken at the server's NIC.
type Tap interface {
	// Connect marks the start of one gathering connection in env with the
	// negotiated wmax threshold and MSS, at emulated time now.
	Connect(now time.Duration, env Environment, wmax, mss int)
	// Data reports one data segment leaving the server at time now.
	Data(now time.Duration, seg tcpsim.Segment)
	// Ack reports one cumulative ACK (covering all segments below ackSeg)
	// arriving at the server at time now.
	Ack(now time.Duration, ackSeg int64)
	// Close marks the end of the connection at emulated time now.
	Close(now time.Duration)
}

// SetTap attaches a wire-level observer to every subsequent gathering of
// this prober (nil detaches). Gathering results are identical with or
// without a tap; the tap only observes.
func (p *Prober) SetTap(t Tap) { p.tap = t }
