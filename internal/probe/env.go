// Package probe implements CAAI step 1, trace gathering: it emulates the
// paper's two network environments by controlling when ACKs reach the
// server, measures the server's window each emulated RTT from the highest
// received sequence number, emulates the timeout by going silent, and
// walks the wmax (512/256/128/64) and MSS (100/300/536/1460) ladders until
// it gathers a valid trace.
package probe

import "time"

// Environment is one of the paper's emulated network environments: an RTT
// schedule before and after the emulated timeout (Fig. 2). ACKs are never
// delayed beyond the schedule and never reordered; data loss is masked by
// acknowledging as if nothing was lost.
type Environment struct {
	// Name is "A" or "B".
	Name string
	// preRTT returns the emulated RTT of 1-based round r before the
	// timeout.
	preRTT func(r int) time.Duration
	// postRTT returns the emulated RTT of 1-based round r after the
	// timeout.
	postRTT func(r int) time.Duration
}

// PreRTT returns the emulated RTT of 1-based pre-timeout round r.
func (e Environment) PreRTT(r int) time.Duration { return e.preRTT(r) }

// PostRTT returns the emulated RTT of 1-based post-timeout round r.
func (e Environment) PostRTT(r int) time.Duration { return e.postRTT(r) }

const (
	rttLong  = 1000 * time.Millisecond
	rttShort = 800 * time.Millisecond
)

// EnvA is network environment A: a fixed 1.0 s RTT throughout.
func EnvA() Environment {
	fixed := func(int) time.Duration { return rttLong }
	return Environment{Name: "A", preRTT: fixed, postRTT: fixed}
}

// EnvB is network environment B: 0.8 s for the first three RTTs before the
// timeout and 1.0 s afterwards, then 0.8 s for the first twelve RTTs after
// the timeout and 1.0 s afterwards (Fig. 2). The pre-timeout step exposes
// RTT-dependent multiplicative decrease parameters (ILLINOIS, VENO); the
// post-timeout step exposes RTT-dependent growth functions (CTCP2, YEAH).
func EnvB() Environment {
	return Environment{
		Name: "B",
		preRTT: func(r int) time.Duration {
			if r <= 3 {
				return rttShort
			}
			return rttLong
		},
		postRTT: func(r int) time.Duration {
			if r <= 12 {
				return rttShort
			}
			return rttLong
		},
	}
}
