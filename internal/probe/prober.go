package probe

import (
	"math/rand"
	"time"

	"repro/internal/netem"
	"repro/internal/tcpsim"
	"repro/internal/trace"
	"repro/internal/websim"
)

// Default ladders and budgets from Section IV of the paper.
var (
	// DefaultWmaxLadder is tried in decreasing order: traces above 512
	// are hard to obtain, traces below 64 are almost useless.
	DefaultWmaxLadder = []int{512, 256, 128, 64}
	// DefaultMSSLadder is tried in increasing order: the smaller the
	// MSS, the higher the achievable window.
	DefaultMSSLadder = []int{100, 300, 536, 1460}
)

// Config tunes a Prober. The zero value selects the paper's defaults.
type Config struct {
	// WmaxLadder overrides DefaultWmaxLadder.
	WmaxLadder []int
	// MSSLadder overrides DefaultMSSLadder.
	MSSLadder []int
	// Requests is how many pipelined HTTP requests CAAI repeats
	// (default 12).
	Requests int
	// MaxPreRounds bounds the pre-timeout gathering (default 40).
	MaxPreRounds int
	// PostRounds is the required post-timeout rounds (default 18).
	PostRounds int
	// InterEnvWait separates environments A and B so slow start
	// threshold caches expire (default 10 minutes, as in the paper).
	InterEnvWait time.Duration
	// DisableDupAck turns off the F-RTO counter-measure (for the
	// ablation experiment).
	DisableDupAck bool
	// DisablePageSearch skips the long-page search and uses the default
	// page (for the ablation experiment).
	DisablePageSearch bool
	// PageSearchSuccess is the probability the page-searching tool
	// finds the server's longest page (default 0.95).
	PageSearchSuccess float64
}

func (c Config) withDefaults() Config {
	if len(c.WmaxLadder) == 0 {
		c.WmaxLadder = DefaultWmaxLadder
	}
	if len(c.MSSLadder) == 0 {
		c.MSSLadder = DefaultMSSLadder
	}
	if c.Requests <= 0 {
		c.Requests = 12
	}
	if c.MaxPreRounds <= 0 {
		c.MaxPreRounds = 40
	}
	if c.PostRounds <= 0 {
		c.PostRounds = trace.ValidPostRounds
	}
	if c.InterEnvWait <= 0 {
		c.InterEnvWait = 10 * time.Minute
	}
	if c.PageSearchSuccess <= 0 {
		c.PageSearchSuccess = 0.95
	}
	return c
}

// InvalidReason explains why no valid trace could be gathered (the census
// buckets of Section VII-B2).
type InvalidReason string

// Invalid-trace causes.
const (
	// ReasonNone marks a successful gathering.
	ReasonNone InvalidReason = ""
	// ReasonInsufficientData: no long enough page, or too few repeated
	// HTTP requests accepted.
	ReasonInsufficientData InvalidReason = "insufficient data"
	// ReasonNoTimeout: the window stayed at or below wmax (Fig. 13).
	ReasonNoTimeout InvalidReason = "no timeout"
	// ReasonNoResponse: the server never responded to the timeout.
	ReasonNoResponse InvalidReason = "no response after timeout"
	// ReasonMSSRejected: the server rejected every MSS of the ladder.
	ReasonMSSRejected InvalidReason = "mss rejected"
)

// Result is the outcome of gathering traces from one server.
type Result struct {
	// TraceA and TraceB are the environment A and B traces. TraceB may
	// be a no-timeout trace (the VEGAS signature).
	TraceA *trace.Trace
	TraceB *trace.Trace
	// Wmax and MSS are the ladder values that produced the traces.
	Wmax int
	MSS  int
	// PageBytes is the page length used for the repeated requests.
	PageBytes int64
	// Valid reports whether TraceA is a valid trace.
	Valid bool
	// Reason explains an invalid result.
	Reason InvalidReason
}

// Prober gathers window traces from simulated Web servers under one
// network condition. Not safe for concurrent use (owns an RNG).
type Prober struct {
	cfg  Config
	cond netem.Condition
	// path is the stateful impairment view of cond (Gilbert–Elliott burst
	// state); it is reset per gathering so every connection starts the
	// channel in the good state.
	path netem.Path
	rng  *rand.Rand
	// clock is the wall-clock of this prober's experiments; it advances
	// across sessions and the inter-environment waits.
	clock time.Duration

	// sess is the reusable gathering session (burst/ACK scratch survives
	// across gatherings regardless of the reuse mode below).
	sess session
	// reuse, when set, makes gatherings record into the prober-owned
	// recorders below instead of allocating fresh traces, open
	// connections through the recycling dialer, and return the
	// prober-owned res (see Reuse).
	reuse      bool
	recA, recB trace.Recorder
	dialer     websim.Dialer
	res        Result
	// tap, when set, observes every gathering at the wire level (see
	// SetTap); it survives Rearm so a capture can span many gatherings.
	tap Tap
}

// New returns a prober for the given network condition.
func New(cfg Config, cond netem.Condition, rng *rand.Rand) *Prober {
	return &Prober{cfg: cfg.withDefaults(), cond: cond, rng: rng}
}

// Reuse opts the prober into buffer reuse: each environment records into a
// prober-owned trace whose window buffers are recycled across gatherings,
// connections are opened through a recycling dialer (one sender renewed in
// place, congestion avoidance components cached per algorithm and rewound
// with Reset), and Gather returns a prober-owned Result. Everything Gather
// and GatherEnv return then stays valid only until the prober's next
// gathering — the contract the identification hot path relies on for zero
// steady-state allocations. Leave it off (the default) when gathered
// traces or results must outlive the next probe.
func (p *Prober) Reuse() { p.reuse = true }

// Rearm re-points the prober at a new configuration, network condition,
// and RNG and rewinds its wall clock, exactly as if freshly created with
// New — but keeps the session scratch and (in Reuse mode) the trace
// buffers. It lets one prober serve a stream of independent identification
// jobs with results identical to a fresh prober per job.
func (p *Prober) Rearm(cfg Config, cond netem.Condition, rng *rand.Rand) {
	p.cfg = cfg.withDefaults()
	p.cond = cond
	p.rng = rng
	p.clock = 0
}

// newTrace returns the trace a gathering records into: recycled recorder
// storage in Reuse mode, a fresh allocation otherwise.
func (p *Prober) newTrace(env string, wmax, mss int) *trace.Trace {
	if !p.reuse {
		return &trace.Trace{Env: env, WmaxThreshold: wmax, MSS: mss}
	}
	if env == "B" {
		return p.recB.Reset(env, wmax, mss)
	}
	return p.recA.Reset(env, wmax, mss)
}

// negotiateMSS walks the MSS ladder until the server accepts.
func (p *Prober) negotiateMSS(server *websim.Server) (int, bool) {
	for _, mss := range p.cfg.MSSLadder {
		if server.AcceptsMSS(mss) {
			return mss, true
		}
	}
	return 0, false
}

// findPage models the Web-page searching tool (httrack + dig + header
// probing, Section IV-E): it locates the server's longest page with high
// probability, falling back to the default page.
func (p *Prober) findPage(server *websim.Server) int64 {
	page := server.DefaultPageBytes
	if p.cfg.DisablePageSearch {
		return page
	}
	if server.LongestPageBytes > page && p.rng.Float64() < p.cfg.PageSearchSuccess {
		page = server.LongestPageBytes
	}
	return page
}

// GatherEnv gathers a single trace from server in env with explicit wmax
// and mss, using page bytes of data per request. It is the building block
// Fig. 3 uses directly.
func (p *Prober) GatherEnv(server *websim.Server, env Environment, wmax, mss int, pageBytes int64) (*trace.Trace, error) {
	var sender *tcpsim.Sender
	var err error
	if p.reuse {
		sender, err = p.dialer.Open(server, mss, p.cfg.Requests, pageBytes, p.clock)
	} else {
		sender, err = server.Open(mss, p.cfg.Requests, pageBytes, p.clock)
	}
	if err != nil {
		return nil, err
	}
	t := p.newTrace(env.Name, wmax, mss)
	p.path.Reset(p.cond)
	if p.tap != nil {
		p.tap.Connect(p.clock, env, wmax, mss)
	}
	p.clock = p.sess.run(sender, t, sessionParams{
		env:          env,
		wmax:         wmax,
		mss:          mss,
		path:         &p.path,
		rng:          p.rng,
		maxPreRounds: p.cfg.MaxPreRounds,
		postRounds:   p.cfg.PostRounds,
		dupAck:       !p.cfg.DisableDupAck,
		start:        p.clock,
		tap:          p.tap,
	})
	if p.tap != nil {
		p.tap.Close(p.clock)
	}
	server.Close(sender, p.clock)
	return t, nil
}

// Gather walks the wmax ladder, gathering environment A and B traces, and
// returns the first valid pair. In Reuse mode the returned Result is
// prober-owned and valid only until the next Gather.
func (p *Prober) Gather(server *websim.Server) *Result {
	mss, ok := p.negotiateMSS(server)
	if !ok {
		return p.result(Result{Reason: ReasonMSSRejected})
	}
	page := p.findPage(server)
	reason := ReasonInsufficientData
	for _, wmax := range p.cfg.WmaxLadder {
		ta, err := p.GatherEnv(server, EnvA(), wmax, mss, page)
		if err != nil {
			return p.result(Result{Reason: ReasonMSSRejected, MSS: mss})
		}
		if !ta.Valid() {
			reason = invalidReason(ta)
			continue
		}
		p.clock += p.cfg.InterEnvWait
		tb, err := p.GatherEnv(server, EnvB(), wmax, mss, page)
		if err != nil {
			return p.result(Result{Reason: ReasonMSSRejected, MSS: mss})
		}
		if tb.TimedOut && !tb.Valid() {
			reason = invalidReason(tb)
			continue
		}
		return p.result(Result{
			TraceA:    ta,
			TraceB:    tb,
			Wmax:      wmax,
			MSS:       mss,
			PageBytes: page,
			Valid:     true,
		})
	}
	return p.result(Result{MSS: mss, PageBytes: page, Reason: reason})
}

// result returns r as a pointer: a fresh allocation normally, the recycled
// prober-owned Result in Reuse mode.
func (p *Prober) result(r Result) *Result {
	if !p.reuse {
		out := r
		return &out
	}
	p.res = r
	return &p.res
}

// invalidReason maps a failed trace to its census bucket.
func invalidReason(t *trace.Trace) InvalidReason {
	switch {
	case t.DataExhausted:
		return ReasonInsufficientData
	case !t.TimedOut:
		return ReasonNoTimeout
	default:
		return ReasonNoResponse
	}
}
