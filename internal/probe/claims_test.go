package probe

// Integration tests for the paper's headline claims about the emulated
// environments (Section IV-B: "Why these two network environments?").

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/feature"
	"repro/internal/netem"
	"repro/internal/tcpsim"
	"repro/internal/websim"
)

// gatherPair gathers env A and B traces on the lossless testbed.
func gatherPair(t *testing.T, server *websim.Server, wmax int) feature.Vector {
	t.Helper()
	p := New(Config{}, netem.Lossless, rand.New(rand.NewSource(1)))
	ta, err := p.GatherEnv(server, EnvA(), wmax, 536, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := p.GatherEnv(server, EnvB(), wmax, 536, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	return feature.Extract(ta, tb)
}

// TestEnvAAloneInsufficient: RENO and VEGAS have the same environment A
// features (the paper's example for why environment B exists); the VEGAS
// flag separates them.
func TestEnvAAloneInsufficient(t *testing.T) {
	reno := gatherPair(t, websim.Testbed("RENO"), 256)
	vegas := gatherPair(t, websim.Testbed("VEGAS"), 256)
	// Environment A features coincide up to a one-packet offset (Vegas
	// applies its per-round +1 at a slightly different instant).
	if d := vegas[feature.BetaA] - reno[feature.BetaA]; d > 0.01 || d < -0.01 {
		t.Fatalf("RENO and VEGAS env A betas should coincide: %v vs %v", reno, vegas)
	}
	if d := vegas[feature.G6A] - reno[feature.G6A]; d > 1 || d < -1 {
		t.Fatalf("RENO and VEGAS env A growth should coincide: %v vs %v", reno, vegas)
	}
	if reno[feature.VegasFlag] == vegas[feature.VegasFlag] {
		t.Fatal("the VEGAS flag must separate RENO from VEGAS")
	}
}

// TestSTCPvsYeahNeedsEnvB: STCP and YEAH coincide in environment A (both
// scalable growth, beta 0.875) and split in environment B.
func TestSTCPvsYeahNeedsEnvB(t *testing.T) {
	stcp := gatherPair(t, websim.Testbed("STCP"), 256)
	yeah := gatherPair(t, websim.Testbed("YEAH"), 256)
	if stcp[feature.BetaA] != yeah[feature.BetaA] || stcp[feature.G6A] != yeah[feature.G6A] {
		t.Fatalf("STCP/YEAH env A features differ: %v vs %v", stcp, yeah)
	}
	if stcp[feature.G6B] == yeah[feature.G6B] {
		t.Fatal("environment B must separate STCP from YEAH")
	}
}

// TestCTCPVersionsNeedEnvB: the two CTCP builds coincide in environment A
// and split in environment B's post-timeout RTT step.
func TestCTCPVersionsNeedEnvB(t *testing.T) {
	c1 := gatherPair(t, websim.Testbed("CTCP1"), 256)
	c2 := gatherPair(t, websim.Testbed("CTCP2"), 256)
	if c1[feature.G6A] != c2[feature.G6A] {
		t.Fatalf("CTCP1/CTCP2 env A growth differs: %v vs %v", c1, c2)
	}
	if c1[feature.G6B] == c2[feature.G6B] {
		t.Fatal("environment B must separate CTCP1 from CTCP2")
	}
}

// TestAllFourteenPairwiseDistinguishable: with both environments at
// wmax=256 every pair of the 14 algorithms differs in at least one
// feature -- the paper's Fig. 3 claim.
func TestAllFourteenPairwiseDistinguishable(t *testing.T) {
	algos := []string{"RENO", "BIC", "CTCP1", "CTCP2", "CUBIC1", "CUBIC2", "HSTCP",
		"HTCP", "ILLINOIS", "STCP", "VEGAS", "VENO", "WESTWOOD", "YEAH"}
	vectors := make(map[string]feature.Vector, len(algos))
	for _, a := range algos {
		vectors[a] = gatherPair(t, websim.Testbed(a), 256)
	}
	for i, a := range algos {
		for _, b := range algos[i+1:] {
			if vectors[a] == vectors[b] {
				t.Errorf("%s and %s share the feature vector %v", a, b, vectors[a])
			}
		}
	}
}

// TestHyStartInvisibleToCAAI: the paper claims CUBIC's hybrid slow start
// behaves like the standard one in the emulated environments, "since the
// RTTs of the slow start state after the timeout remain unchanged". In
// environment A (constant RTT throughout) the whole trace is identical;
// in environment B the post-timeout slow start stays pure doubling and
// the extracted beta is unchanged (HyStart may fire on the *pre-timeout*
// RTT step, which only rescales w(tmo)).
func TestHyStartInvisibleToCAAI(t *testing.T) {
	plain := websim.Testbed("CUBIC2")
	hystart := websim.Testbed("CUBIC2")
	hystart.SlowStart = tcpsim.SlowStartHybrid

	gather := func(s *websim.Server, env Environment) *feature.Extraction {
		p := New(Config{}, netem.Lossless, rand.New(rand.NewSource(2)))
		tr, err := p.GatherEnv(s, env, 256, 536, 64<<20)
		if err != nil {
			t.Fatal(err)
		}
		e := feature.ExtractEnv(tr)
		return &e
	}

	// Environment A: identical end to end.
	p1 := New(Config{}, netem.Lossless, rand.New(rand.NewSource(2)))
	t1, err := p1.GatherEnv(plain, EnvA(), 256, 536, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	p2 := New(Config{}, netem.Lossless, rand.New(rand.NewSource(2)))
	t2, err := p2.GatherEnv(hystart, EnvA(), 256, 536, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(t1.Post, t2.Post) || !reflect.DeepEqual(t1.Pre, t2.Pre) {
		t.Fatalf("env A: HyStart changed the trace:\n%v\n%v", t1, t2)
	}

	// Environment B: the extracted beta must match.
	eb1 := gather(plain, EnvB())
	eb2 := gather(hystart, EnvB())
	if d := eb1.Beta - eb2.Beta; d > 0.02 || d < -0.02 {
		t.Fatalf("env B: HyStart changed beta: %v vs %v", eb1.Beta, eb2.Beta)
	}
}

// TestRenoVenoSimilarInEnvB: the paper notes RENO and VENO have very
// similar env B traces; env A separates them through beta (0.5 vs 0.8).
func TestRenoVenoSimilarInEnvB(t *testing.T) {
	reno := gatherPair(t, websim.Testbed("RENO"), 256)
	veno := gatherPair(t, websim.Testbed("VENO"), 256)
	if db := veno[feature.BetaB] - reno[feature.BetaB]; db > 0.05 || db < -0.05 {
		t.Fatalf("env B betas should be close: reno %v veno %v", reno[feature.BetaB], veno[feature.BetaB])
	}
	if da := veno[feature.BetaA] - reno[feature.BetaA]; da < 0.2 {
		t.Fatalf("env A betas should differ by ~0.3: reno %v veno %v", reno[feature.BetaA], veno[feature.BetaA])
	}
}
