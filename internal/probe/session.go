package probe

import (
	"math/rand"
	"time"

	"repro/internal/netem"
	"repro/internal/tcpsim"
	"repro/internal/trace"
)

// sessionParams bundles everything one trace-gathering session needs.
type sessionParams struct {
	env  Environment
	wmax int
	mss  int
	// path is the single source of truth for the network condition: it
	// carries both the immutable knobs (path.Cond()) and the per-
	// connection burst-loss state.
	path         *netem.Path
	rng          *rand.Rand
	maxPreRounds int
	postRounds   int
	dupAck       bool
	start        time.Duration
	// tap, when non-nil, observes the session's packets (see Tap). It
	// must not influence gathering.
	tap Tap
}

// session gathers one window trace from a sender. It owns the emulated
// clock for the connection. Sessions are owned by a Prober and reused
// across gatherings: run re-arms the state while keeping the burst and
// ACK scratch buffers, so steady-state gathering allocates nothing per
// round.
type session struct {
	p          sessionParams
	sender     *tcpsim.Sender
	now        time.Duration
	round      int64 // global round counter fed to the CC algorithms
	maxRecvSeq int64 // highest segment received so far, as a count
	ackedHigh  int64 // highest cumulative ACK value the probe has sent

	// Reused per-round scratch (see run).
	burst []tcpsim.Segment
	acks  []int64
}

// run executes the session against sender, filling t, and returns the
// simulated end time. The session's scratch buffers survive across runs.
func (s *session) run(sender *tcpsim.Sender, t *trace.Trace, p sessionParams) time.Duration {
	burst, acks := s.burst, s.acks
	*s = session{p: p, sender: sender, now: p.start, burst: burst[:0], acks: acks[:0]}
	s.gatherPre(t)
	if t.TimedOut {
		s.emulateTimeout()
		s.gatherPost(t)
	}
	s.sender = nil // drop the connection so it can be collected between runs
	return s.now
}

// receiveBurst simulates the data path: it updates the highest received
// sequence number (subject to data-packet loss) and returns the measured
// window of the round, w = maxSeq(r) - maxSeq(r-1), together with the
// cumulative ACK value CAAI sends for each data packet of the burst. The
// returned ACKs live in the session's scratch and are valid until the next
// round.
//
// Before the timeout CAAI acknowledges each packet as if nothing was lost
// or reordered (the k-th ACK covers the k-th segment of the burst); after
// the timeout every ACK acknowledges all data received so far, which is
// what instantly re-covers the pre-timeout burst during timeout recovery.
func (s *session) receiveBurst(burst []tcpsim.Segment, asIfInOrder bool) (int, []int64) {
	if s.p.path.Cond().Impaired() {
		return s.receiveBurstImpaired(burst, asIfInOrder)
	}
	before := s.maxRecvSeq
	acks := s.acks[:0]
	for k, seg := range burst {
		if !s.p.path.Drop(s.p.rng) {
			if count := seg.ID + 1; count > s.maxRecvSeq {
				s.maxRecvSeq = count
			}
		}
		if asIfInOrder {
			acks = append(acks, burst[0].ID+int64(k)+1)
		} else {
			acks = append(acks, s.maxRecvSeq)
		}
	}
	s.acks = acks
	return int(s.maxRecvSeq - before), acks
}

// receiveBurstImpaired is receiveBurst under the extended netem
// impairments: adjacent reordering and duplication on the data path, plus
// burst loss through the path's Gilbert–Elliott channel state. Before the
// timeout the ACK stream stays sequential no matter what arrived (the
// paper's reordering counter-measure), so a duplicate produces a repeated
// cumulative ACK rather than acknowledging unsent data; after the timeout
// every copy acknowledges everything received so far, as the plain path
// does.
func (s *session) receiveBurstImpaired(burst []tcpsim.Segment, asIfInOrder bool) (int, []int64) {
	before := s.maxRecvSeq
	acks := s.acks[:0]
	path, rng := s.p.path, s.p.rng
	inOrder := int64(0) // as-if-in-order arrival count within the burst
	arrive := func(seg tcpsim.Segment) {
		duplicated := path.Dup(rng)
		for copies := 0; copies < 2; copies++ {
			if !path.Drop(rng) {
				if count := seg.ID + 1; count > s.maxRecvSeq {
					s.maxRecvSeq = count
				}
			}
			if asIfInOrder {
				if copies == 0 {
					inOrder++
				}
				acks = append(acks, burst[0].ID+inOrder)
			} else {
				acks = append(acks, s.maxRecvSeq)
			}
			if !duplicated {
				break
			}
		}
	}
	for i := 0; i < len(burst); i++ {
		if i+1 < len(burst) && path.Reorder(rng) {
			arrive(burst[i+1]) // the successor overtakes this packet
			arrive(burst[i])
			i++
			continue
		}
		arrive(burst[i])
	}
	s.acks = acks
	return int(s.maxRecvSeq - before), acks
}

// deliverAcks sends the prepared cumulative ACKs, each independently
// subject to ACK loss, all arriving after the emulated RTT of the round.
func (s *session) deliverAcks(acks []int64, rtt time.Duration) {
	if len(acks) == 0 {
		return
	}
	arrive := s.now + rtt
	sample := rtt + s.p.path.Cond().Jitter(s.p.rng, rtt)
	s.round++
	s.sender.BeginRound(s.round)
	for _, ackSeg := range acks {
		if ackSeg > s.ackedHigh {
			s.ackedHigh = ackSeg
		}
		if s.p.path.Drop(s.p.rng) {
			continue // ACK lost on the way to the server
		}
		if s.p.tap != nil {
			s.p.tap.Ack(arrive, ackSeg)
		}
		s.sender.DeliverAck(arrive, ackSeg, sample)
	}
	s.now = arrive
}

// gatherPre runs the pre-timeout rounds until the measured window exceeds
// wmax, the data runs out, or the round budget is exhausted.
func (s *session) gatherPre(t *trace.Trace) {
	for r := 1; r <= s.p.maxPreRounds; r++ {
		s.burst = s.sender.AppendBurst(s.burst[:0], s.now)
		if len(s.burst) == 0 {
			if s.sender.DataExhausted() {
				t.DataExhausted = true
				return
			}
			// Every ACK of the previous round was lost: the real
			// server hits its own RTO and retransmits.
			s.now += s.sender.RTO()
			s.sender.OnRTOExpired(s.now)
			continue
		}
		s.tapBurst()
		w, acks := s.receiveBurst(s.burst, true)
		t.Pre = append(t.Pre, w)
		if w > s.p.wmax {
			t.TimedOut = true
			return // go silent: the emulated timeout begins
		}
		s.deliverAcks(acks, s.p.env.PreRTT(r))
	}
}

// emulateTimeout lets the server's RTO fire and defuses F-RTO with a
// duplicate ACK, exactly as the paper's counter-measure does.
func (s *session) emulateTimeout() {
	s.now += s.sender.RTO()
	s.sender.OnRTOExpired(s.now)
	if s.p.dupAck {
		// A duplicate of the last cumulative ACK: forces conventional
		// timeout recovery on F-RTO servers.
		if s.p.tap != nil {
			s.p.tap.Ack(s.now, s.ackedHigh)
		}
		s.sender.DeliverAck(s.now, s.ackedHigh, 0)
	}
}

// tapBurst reports the just-built burst to the session tap, if any: every
// segment leaves the server at the current emulated time.
func (s *session) tapBurst() {
	if s.p.tap == nil {
		return
	}
	for _, seg := range s.burst {
		s.p.tap.Data(s.now, seg)
	}
}

// gatherPost gathers the post-timeout rounds; every received data packet
// is answered with an ACK covering everything received so far.
func (s *session) gatherPost(t *trace.Trace) {
	for r := 1; r <= s.p.postRounds; r++ {
		s.burst = s.sender.AppendBurst(s.burst[:0], s.now)
		if len(s.burst) == 0 && s.sender.DataExhausted() {
			t.DataExhausted = true
			return
		}
		s.tapBurst()
		w, acks := s.receiveBurst(s.burst, false)
		t.Post = append(t.Post, w)
		rtt := s.p.env.PostRTT(r)
		if len(s.burst) == 0 {
			// Silent server (e.g. one that ignores the timeout):
			// time still passes.
			s.now += rtt
			continue
		}
		s.deliverAcks(acks, rtt)
	}
}
