package trajectory

import (
	"os"
	"path/filepath"
	"testing"
)

func touch(t *testing.T, dir, name string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestScanNextAndLatest(t *testing.T) {
	dir := t.TempDir()
	if p, err := NextPath(dir, "BENCH"); err != nil || filepath.Base(p) != "BENCH_0.json" {
		t.Fatalf("empty history NextPath = %v, %v", p, err)
	}
	if _, err := LatestPath(dir, "BENCH"); err == nil {
		t.Fatal("LatestPath on an empty history must error")
	}
	touch(t, dir, "BENCH_0.json")
	touch(t, dir, "BENCH_2.json") // gap: indices need not be dense
	touch(t, dir, "BENCH_10.json")
	touch(t, dir, "ACCURACY_99.json") // other prefix: ignored
	touch(t, dir, "BENCH_x.json")     // malformed: ignored
	entries, err := Entries(dir, "BENCH")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 || entries[0].Index != 0 || entries[2].Index != 10 {
		t.Fatalf("entries = %+v", entries)
	}
	if p, _ := NextPath(dir, "BENCH"); filepath.Base(p) != "BENCH_11.json" {
		t.Fatalf("NextPath = %v", p)
	}
	if p, _ := LatestPath(dir, "BENCH"); filepath.Base(p) != "BENCH_10.json" {
		t.Fatalf("LatestPath = %v", p)
	}
	if p, _ := NextPath(dir, "ACCURACY"); filepath.Base(p) != "ACCURACY_100.json" {
		t.Fatalf("ACCURACY NextPath = %v", p)
	}
}
