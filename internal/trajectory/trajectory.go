// Package trajectory implements the shared <PREFIX>_<n>.json history
// naming used by the machine-readable regression trajectories: the perf
// history (BENCH_<n>.json, internal/bench) and the accuracy history
// (ACCURACY_<n>.json, internal/eval). One scan implementation keeps the
// two histories' indexing behaviour identical.
package trajectory

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// Entry is one history file.
type Entry struct {
	// Index is the <n> of <prefix>_<n>.json.
	Index int
	// Path is the file's full path.
	Path string
}

func pattern(prefix string) *regexp.Regexp {
	return regexp.MustCompile(`^` + regexp.QuoteMeta(prefix) + `_(\d+)\.json$`)
}

// Entries returns dir's history files for prefix in index order.
func Entries(dir, prefix string) ([]Entry, error) {
	list, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pat := pattern(prefix)
	var out []Entry
	for _, e := range list {
		m := pat.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue // only possible on an index overflowing int
		}
		out = append(out, Entry{Index: n, Path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out, nil
}

// NextPath returns the path of the next history file in dir
// (<prefix>_<max+1>.json, starting at <prefix>_0.json in an empty
// history).
func NextPath(dir, prefix string) (string, error) {
	entries, err := Entries(dir, prefix)
	if err != nil {
		return "", err
	}
	next := 0
	if len(entries) > 0 {
		next = entries[len(entries)-1].Index + 1
	}
	return filepath.Join(dir, fmt.Sprintf("%s_%d.json", prefix, next)), nil
}

// LatestPath returns the highest-indexed history file in dir, or an error
// naming the empty history.
func LatestPath(dir, prefix string) (string, error) {
	entries, err := Entries(dir, prefix)
	if err != nil {
		return "", err
	}
	if len(entries) == 0 {
		return "", fmt.Errorf("trajectory: no %s_<n>.json points in %s", prefix, dir)
	}
	return entries[len(entries)-1].Path, nil
}
