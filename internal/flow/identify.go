package flow

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/pcap"
	"repro/internal/probe"
	"repro/internal/telemetry"
)

// IdentifyOptions tunes IdentifyCapture.
type IdentifyOptions struct {
	// Tracker bounds flow reassembly (zero value: defaults).
	Tracker Config
	// Parallelism bounds concurrent classification on the engine pool
	// (0 = all CPUs).
	Parallelism int
	// Timings enables per-stage span recording: each pair's ID.Timings
	// gets its feature/classify spans plus its share of decode+reassembly
	// time under StageGather (the passive pipeline's gather).
	Timings bool
	// Telemetry, when non-nil, aggregates every pair's spans into
	// per-stage histograms (implies Timings).
	Telemetry *telemetry.Pipeline
}

// CaptureStats summarizes one ingested capture for callers and the
// service's /metrics ingest counters.
type CaptureStats struct {
	// Packets, TCPSegments, SkippedPackets, TruncatedPackets mirror the
	// decoder's counters.
	Packets          int64 `json:"packets"`
	TCPSegments      int64 `json:"tcp_segments"`
	SkippedPackets   int64 `json:"skipped_packets"`
	TruncatedPackets int64 `json:"truncated_packets"`
	// Flows is every distinct 4-tuple; Classifiable counts flows whose
	// reconstructed trace is a valid CAAI trace.
	Flows        int64 `json:"flows"`
	Classifiable int64 `json:"classifiable"`
	// EvictedFlows/DroppedFlows/TruncatedFlows are the tracker's bound
	// enforcement counters.
	EvictedFlows   int64 `json:"evicted_flows,omitempty"`
	DroppedFlows   int64 `json:"dropped_flows,omitempty"`
	TruncatedFlows int64 `json:"truncated_flows,omitempty"`
}

// FlowIdentification is the classification of one flow pair: the
// environment-A flow, its optional environment-B companion, and the
// pipeline's identification.
type FlowIdentification struct {
	// A is the primary (timed-out) flow; B is the companion flow paired
	// with it (nil when the capture held no companion).
	A *FlowTrace
	B *FlowTrace
	// ID is the pipeline outcome (label, confidence, special shape, or
	// the invalid reason).
	ID core.Identification
}

// Reassemble decodes a capture stream and reconstructs its flows; the
// building block of IdentifyCapture for callers that want raw traces. On
// a malformed capture it returns the flows reassembled so far along with
// the error.
func Reassemble(r io.Reader, cfg Config) ([]*FlowTrace, CaptureStats, error) {
	var stats CaptureStats
	rd, err := pcap.NewReader(r)
	if err != nil {
		return nil, stats, err
	}
	tracker := NewTracker(cfg)
	var pkt pcap.Packet
	for {
		err = rd.Next(&pkt)
		if err != nil {
			break
		}
		tracker.Observe(&pkt)
	}
	flows := tracker.Finish()
	ds := rd.Stats()
	ts := tracker.Stats()
	stats = CaptureStats{
		Packets:          ds.Packets,
		TCPSegments:      ds.TCP,
		SkippedPackets:   ds.Skipped,
		TruncatedPackets: ds.Truncated,
		Flows:            ts.Flows,
		EvictedFlows:     ts.Evicted,
		DroppedFlows:     ts.Dropped,
		TruncatedFlows:   ts.Truncated,
	}
	for _, f := range flows {
		if f.Trace != nil && f.Trace.Valid() {
			stats.Classifiable++
		}
	}
	if err != io.EOF {
		return flows, stats, err
	}
	return flows, stats, nil
}

// Pair groups flows by (client IP, server endpoint) and pairs each valid
// timed-out trace with the connection that follows it, mirroring how the
// active prober gathers environment A then environment B from one
// server. Flows with no valid trace and no valid predecessor become
// unpaired entries. Pairs are returned in deterministic capture order.
func Pair(flows []*FlowTrace) []FlowIdentification {
	groups := map[string][]*FlowTrace{}
	var order []string
	for _, f := range flows {
		gk := f.ClientIP + "|" + f.Server
		if _, ok := groups[gk]; !ok {
			order = append(order, gk)
		}
		groups[gk] = append(groups[gk], f)
	}
	sort.Strings(order)

	var out []FlowIdentification
	for _, gk := range order {
		fs := groups[gk] // already in capture order (flows are sorted)
		for i := 0; i < len(fs); i++ {
			f := fs[i]
			if f.Trace != nil && f.Trace.Valid() && i+1 < len(fs) {
				out = append(out, FlowIdentification{A: f, B: fs[i+1]})
				i++
				continue
			}
			out = append(out, FlowIdentification{A: f})
		}
	}
	// Restore capture order across groups.
	sort.SliceStable(out, func(i, j int) bool { return flowLess(out[i].A, out[j].A) })
	return out
}

// Classify runs the pipeline over paired flows, filling each pair's ID in
// place: special-shape detection and feature extraction fan out on the
// engine worker pool, then the model classifies every extracted vector in
// one block through its batched kernel -- the same inference path probed
// traces take, with the same per-pair results.
func Classify(pairs []FlowIdentification, model classify.Classifier, parallelism int) {
	_ = ClassifyCtx(context.Background(), pairs, model, parallelism, nil)
}

// ClassifyCtx is Classify with cancellation and a per-pair completion
// callback (both optional), for callers that tally results as they
// land -- the service's async pcap jobs. onResult runs serially on the
// calling goroutine, after the block classification, in pair order; a
// cancelled run returns ctx's error without invoking it.
func ClassifyCtx(ctx context.Context, pairs []FlowIdentification, model classify.Classifier, parallelism int, onResult func(i int)) error {
	return ClassifyAll(ctx, pairs, model, ClassifyOptions{Parallelism: parallelism, OnResult: onResult})
}

// ClassifyOptions tunes ClassifyAll.
type ClassifyOptions struct {
	// Parallelism bounds the preparation fan-out (0 = all CPUs).
	Parallelism int
	// Timings enables per-pair span recording into ID.Timings.
	Timings bool
	// Telemetry, when non-nil, aggregates every pair's spans into
	// per-stage histograms (implies Timings).
	Telemetry *telemetry.Pipeline
	// GatherSpan is the wall-clock cost of decode+reassembly for the
	// capture these pairs came from; span recording charges each pair an
	// equal share of it under StageGather.
	GatherSpan time.Duration
	// OnResult, when non-nil, runs serially in pair order after each
	// pair's ID is filled.
	OnResult func(i int)
}

// ClassifyAll is the full-control classification entry point: ClassifyCtx
// plus optional per-stage span recording (see ClassifyOptions).
func ClassifyAll(ctx context.Context, pairs []FlowIdentification, model classify.Classifier, opts ClassifyOptions) error {
	id := core.NewIdentifier(model)
	ress := make([]*probe.Result, len(pairs))
	for i := range pairs {
		ress[i] = pairResult(&pairs[i])
	}
	record := opts.Timings || opts.Telemetry != nil
	var outs []core.Identification
	var err error
	if record {
		// Telemetry aggregation is deferred below so the gather share is
		// included in the histograms.
		outs, err = id.IdentifyResultsObserved(ctx, ress, opts.Parallelism, nil)
	} else {
		outs, err = id.IdentifyResultsCtx(ctx, ress, opts.Parallelism)
	}
	if err != nil {
		return err
	}
	var gatherShare time.Duration
	if record && len(pairs) > 0 {
		gatherShare = opts.GatherSpan / time.Duration(len(pairs))
	}
	for i := range pairs {
		out := outs[i]
		out.Elapsed = pairs[i].A.End.Sub(pairs[i].A.Start)
		if pairs[i].B != nil {
			out.Elapsed += pairs[i].B.End.Sub(pairs[i].B.Start)
		}
		if record {
			out.Timings[telemetry.StageGather] = gatherShare
			if opts.Telemetry != nil {
				opts.Telemetry.ObserveTimings(&out.Timings)
			}
		}
		pairs[i].ID = out
		if opts.OnResult != nil {
			opts.OnResult(i)
		}
	}
	return nil
}

// pairResult maps one flow pair onto the probe result the identification
// pipeline consumes.
func pairResult(p *FlowIdentification) *probe.Result {
	res := &probe.Result{MSS: p.A.MSS}
	if p.A.Trace != nil {
		// Pairing fixes the environment roles the traces played.
		p.A.Trace.Env = "A"
		res.TraceA = p.A.Trace
		res.Wmax = p.A.Trace.WmaxThreshold
	}
	if p.B != nil && p.B.Trace != nil {
		p.B.Trace.Env = "B"
		res.TraceB = p.B.Trace
	}
	switch {
	case res.TraceA == nil:
		res.Reason = probe.ReasonInsufficientData
	case !res.TraceA.Valid():
		res.Valid = false
		if !res.TraceA.TimedOut {
			res.Reason = probe.ReasonNoTimeout
		} else {
			res.Reason = probe.ReasonNoResponse
		}
	default:
		res.Valid = true
	}
	return res
}

// IdentifyCapture is the passive pipeline end to end: decode r, track and
// reconstruct flows, pair them, and classify every pair with model. The
// capture is streamed; memory stays bounded regardless of its size.
func IdentifyCapture(r io.Reader, model classify.Classifier, opts IdentifyOptions) ([]FlowIdentification, CaptureStats, error) {
	record := opts.Timings || opts.Telemetry != nil
	var start time.Time
	if record {
		start = time.Now()
	}
	flows, stats, err := Reassemble(r, opts.Tracker)
	if err != nil {
		return nil, stats, fmt.Errorf("flow: decoding capture: %w", err)
	}
	var gather time.Duration
	if record {
		gather = time.Since(start)
	}
	pairs := Pair(flows)
	cerr := ClassifyAll(context.Background(), pairs, model, ClassifyOptions{
		Parallelism: opts.Parallelism,
		Timings:     opts.Timings,
		Telemetry:   opts.Telemetry,
		GatherSpan:  gather,
	})
	if cerr != nil {
		return pairs, stats, cerr
	}
	return pairs, stats, nil
}
