package flow

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"flag"
	"io"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/pcapgen"
	"repro/internal/probe"
)

// -update regenerates the golden capture fixtures:
//
//	go test ./internal/flow -run TestGolden -update
//
// Do this only when a deliberate decoder/reconstruction change
// invalidates them, and say so in the commit.
var update = flag.Bool("update", false, "regenerate golden capture fixtures")

const (
	goldenDir     = "testdata/golden"
	goldenCapture = "capture.pcap.gz" // gzip keeps the committed fixture ~15x smaller
	goldenFlows   = "flows.json"
)

// goldenSpecs are the servers baked into the committed capture: a classic
// AIMD, the modern default, and the delay-based special case (no
// environment-B timeout). The small wmax keeps the committed file small.
func goldenSpecs() []pcapgen.ServerSpec {
	return []pcapgen.ServerSpec{
		{Algorithm: "RENO", Seed: 21},
		{Algorithm: "CUBIC2", Seed: 22},
		{Algorithm: "VEGAS", Seed: 23},
	}
}

func goldenOptions() pcapgen.Options {
	return pcapgen.Options{
		// The small wmax and trimmed pre-round budget keep the committed
		// capture small while still exercising timeout detection, the
		// post-timeout series, and the VEGAS no-timeout signature.
		Probe: probe.Config{WmaxLadder: []int{64}, MaxPreRounds: 24},
	}
}

// goldenFlow pins one reconstructed flow bit for bit.
type goldenFlow struct {
	Client      string `json:"client"`
	Server      string `json:"server"`
	Packets     int64  `json:"packets"`
	DataPackets int64  `json:"data_packets"`
	Retransmits int64  `json:"retransmits"`
	RTTMs       int64  `json:"rtt_ms"`
	MSS         int    `json:"mss"`
	SawSYN      bool   `json:"saw_syn"`
	TimedOut    bool   `json:"timed_out"`
	Wmax        int    `json:"wmax"`
	Pre         []int  `json:"pre"`
	Post        []int  `json:"post,omitempty"`
}

// goldenPair pins one paired classification.
type goldenPair struct {
	Server     string    `json:"server"`
	Label      string    `json:"label,omitempty"`
	Confidence float64   `json:"confidence,omitempty"`
	Special    string    `json:"special,omitempty"`
	Valid      bool      `json:"valid"`
	Vector     []float64 `json:"vector,omitempty"`
}

type goldenCaptureFile struct {
	Description string       `json:"description"`
	Stats       CaptureStats `json:"stats"`
	Flows       []goldenFlow `json:"flows"`
	Pairs       []goldenPair `json:"pairs"`
}

func toGoldenFlow(f *FlowTrace) goldenFlow {
	g := goldenFlow{
		Client:      f.Client,
		Server:      f.Server,
		Packets:     f.Packets,
		DataPackets: f.DataPackets,
		Retransmits: f.Retransmits,
		RTTMs:       f.RTT.Milliseconds(),
		MSS:         f.MSS,
		SawSYN:      f.SawSYN,
	}
	if f.Trace != nil {
		g.TimedOut = f.Trace.TimedOut
		g.Wmax = f.Trace.WmaxThreshold
		// nil-preserving copies: the fixture JSON round-trips empty
		// series as absent, so DeepEqual must compare nils to nils.
		g.Pre = append([]int(nil), f.Trace.Pre...)
		g.Post = append([]int(nil), f.Trace.Post...)
	}
	return g
}

// TestGoldenCapture asserts the whole passive pipeline is bit-stable
// against a committed capture file: decoding reproduces the recorded
// per-flow packet counts, flow reconstruction reproduces the recorded
// window series exactly, and the committed model classifies the pairs to
// the recorded labels, confidences, and feature vectors. This is the
// capture-side sibling of internal/eval's golden trace fixtures.
func TestGoldenCapture(t *testing.T) {
	model := loadGoldenModel(t)

	if *update {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := pcapgen.Generate(&buf, goldenSpecs(), goldenOptions()); err != nil {
			t.Fatal(err)
		}
		var gz bytes.Buffer
		zw, _ := gzip.NewWriterLevel(&gz, gzip.BestCompression)
		if _, err := zw.Write(buf.Bytes()); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(goldenDir, goldenCapture), gz.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		pairs, stats, err := IdentifyCapture(bytes.NewReader(buf.Bytes()), model, IdentifyOptions{})
		if err != nil {
			t.Fatal(err)
		}
		file := goldenCaptureFile{
			Description: "bit-stability fixtures for capture ingestion: committed pcap, reconstructed flows, and committed-model classifications",
			Stats:       stats,
		}
		for _, p := range pairs {
			file.Pairs = append(file.Pairs, goldenPair{
				Server:     p.A.Server,
				Label:      p.ID.Label,
				Confidence: p.ID.Confidence,
				Special:    specialString(p),
				Valid:      p.ID.Valid,
				Vector:     vectorOf(p),
			})
			file.Flows = append(file.Flows, toGoldenFlow(p.A))
			if p.B != nil {
				file.Flows = append(file.Flows, toGoldenFlow(p.B))
			}
		}
		data, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(goldenDir, goldenFlows), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes) and %s (%d flows, %d pairs)",
			goldenCapture, buf.Len(), goldenFlows, len(file.Flows), len(file.Pairs))
		return
	}

	gzData, err := os.ReadFile(filepath.Join(goldenDir, goldenCapture))
	if err != nil {
		t.Fatalf("golden capture missing (run with -update to create it): %v", err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(gzData))
	if err != nil {
		t.Fatal(err)
	}
	capture, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	var want goldenCaptureFile
	data, err := os.ReadFile(filepath.Join(goldenDir, goldenFlows))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}

	pairs, stats, err := IdentifyCapture(bytes.NewReader(capture), model, IdentifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats != want.Stats {
		t.Errorf("capture stats drifted:\n got %+v\nwant %+v", stats, want.Stats)
	}
	var flows []goldenFlow
	for _, p := range pairs {
		flows = append(flows, toGoldenFlow(p.A))
		if p.B != nil {
			flows = append(flows, toGoldenFlow(p.B))
		}
	}
	if len(flows) != len(want.Flows) {
		t.Fatalf("reconstructed %d flows, fixture has %d", len(flows), len(want.Flows))
	}
	for i, g := range flows {
		if !reflect.DeepEqual(g, want.Flows[i]) {
			t.Errorf("flow %d drifted:\n got %+v\nwant %+v", i, g, want.Flows[i])
		}
	}
	if len(pairs) != len(want.Pairs) {
		t.Fatalf("classified %d pairs, fixture has %d", len(pairs), len(want.Pairs))
	}
	for i, p := range pairs {
		w := want.Pairs[i]
		if p.A.Server != w.Server || p.ID.Label != w.Label || p.ID.Valid != w.Valid || specialString(p) != w.Special {
			t.Errorf("pair %d drifted: got %s %s valid=%v, want %s %s valid=%v",
				i, p.A.Server, p.ID.Label, p.ID.Valid, w.Server, w.Label, w.Valid)
		}
		if math.Float64bits(p.ID.Confidence) != math.Float64bits(w.Confidence) {
			t.Errorf("pair %d confidence drifted: got %v, want %v", i, p.ID.Confidence, w.Confidence)
		}
		got := vectorOf(p)
		if len(got) != len(w.Vector) {
			t.Fatalf("pair %d vector length %d, want %d", i, len(got), len(w.Vector))
		}
		for f := range got {
			if math.Float64bits(got[f]) != math.Float64bits(w.Vector[f]) {
				t.Errorf("pair %d feature %d drifted: got %v, want %v", i, f, got[f], w.Vector[f])
			}
		}
	}
}

func specialString(p FlowIdentification) string {
	if p.ID.Special == 0 {
		return ""
	}
	return p.ID.Special.String()
}

func vectorOf(p FlowIdentification) []float64 {
	if !p.ID.Valid || p.ID.Label == "" {
		return nil
	}
	return append([]float64{}, p.ID.Vector.Slice()...)
}
