// Package flow reconstructs congestion window traces from passively
// captured TCP traffic: it tracks per-4-tuple flows with bounded memory,
// estimates the path RTT (handshake, then TCP timestamps), buckets each
// direction's data segments into RTT rounds, detects the
// retransmission-after-silence signature of a retransmission timeout, and
// emits the per-round delivered-window series as trace.Trace values --
// the same shape the active prober gathers -- so the existing feature /
// classifier pipeline consumes captured traffic unchanged.
//
// Reconstruction is exact on clean paths (see the round-trip tests
// against internal/pcapgen) and heuristic under impairment; DESIGN.md §7
// documents the failure modes (mid-stream captures without a handshake
// mis-bucket the first rounds, packet loss between server and capture
// point inflates windows, fast-retransmit storms can read as timeouts).
package flow

import (
	"bytes"
	"math"
	"sort"
	"time"

	"repro/internal/pcap"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Config bounds a Tracker. The zero value selects the defaults.
type Config struct {
	// MaxFlows bounds concurrently tracked flows; beyond it the
	// least-recently-active flow is emitted early (default 4096).
	MaxFlows int
	// MaxRounds bounds recorded rounds per flow direction; beyond it the
	// flow keeps counting packets but stops recording windows and is
	// marked truncated (default 256 -- a full probe gathering needs ~60).
	MaxRounds int
	// MaxEmitted bounds the flows a single capture may emit: once the cap
	// fills, every flow that finishes later is dropped and counted, so
	// the earliest-finishing flows are the ones kept. Negative disables
	// the bound (streaming sinks hand flows off as they close, so nothing
	// accumulates). Default 65536.
	MaxEmitted int
	// DefaultRTT seeds round bucketing when a flow has neither a
	// handshake nor usable TCP timestamps (default 200ms).
	DefaultRTT time.Duration
	// MinRoundGap floors the round-boundary gap so sub-millisecond RTT
	// estimates cannot split bursts (default 2ms).
	MinRoundGap time.Duration

	// Epoch is the idle-expiry sweep cadence in online mode (a Tracker
	// with a Stream sink): every Epoch of capture time the tracker walks
	// its LRU tail and emits flows idle past their own expiry threshold.
	// It also floors that threshold, so a sweep never expires a flow
	// whose silence an in-order sweep could not yet have observed.
	// Ignored offline. Default 1s.
	Epoch time.Duration
	// IdleRTTs scales the per-flow idle-expiry threshold in online mode:
	// a flow expires after max(IdleRTTs x RTT, Epoch) of silence, where
	// RTT is the flow's estimate (DefaultRTT when unknown). Default 8.
	IdleRTTs int
}

func (c Config) withDefaults() Config {
	if c.MaxFlows <= 0 {
		c.MaxFlows = 4096
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 256
	}
	if c.MaxEmitted == 0 {
		c.MaxEmitted = 65536
	}
	if c.DefaultRTT <= 0 {
		c.DefaultRTT = 200 * time.Millisecond
	}
	if c.MinRoundGap <= 0 {
		c.MinRoundGap = 2 * time.Millisecond
	}
	if c.Epoch <= 0 {
		c.Epoch = time.Second
	}
	if c.IdleRTTs <= 0 {
		c.IdleRTTs = 8
	}
	return c
}

// endpoint is one side of a connection.
type endpoint struct {
	ip   [16]byte
	port uint16
}

func (e endpoint) String() string {
	var p pcap.Packet
	p.SrcIP, p.SrcPort = e.ip, e.port
	return p.Src()
}

// flowKey is the direction-normalized 4-tuple.
type flowKey struct {
	a, b endpoint
}

// keyOf normalizes the packet's endpoints; dir reports which key side the
// packet came from (0 = a, 1 = b).
func keyOf(p *pcap.Packet) (flowKey, int) {
	src := endpoint{p.SrcIP, p.SrcPort}
	dst := endpoint{p.DstIP, p.DstPort}
	if less(src, dst) {
		return flowKey{src, dst}, 0
	}
	return flowKey{dst, src}, 1
}

func less(x, y endpoint) bool {
	if c := bytes.Compare(x.ip[:], y.ip[:]); c != 0 {
		return c < 0
	}
	return x.port < y.port
}

// seqLT is the wraparound-safe sequence comparison.
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// round is one reconstructed RTT round of a direction.
type round struct {
	start time.Time
	// newBytes is how far the direction's delivery high-water mark
	// advanced during the round: the passive equivalent of the prober's
	// per-round window measurement w = maxSeq(r) - maxSeq(r-1).
	newBytes int64
	packets  int
	retx     int
	// retxStart marks a round whose first segment was a retransmission:
	// after a round boundary's worth of silence this is the signature of
	// a retransmission timeout.
	retxStart bool
}

// dirState tracks one direction of a flow.
type dirState struct {
	packets   int64
	dataBytes int64 // payload bytes seen (including retransmissions)
	retx      int64

	haveSeq bool
	highSeq uint32 // delivery high-water mark (max seq+len seen)

	mssOpt    uint16 // MSS option from this direction's SYN
	maxSegLen int

	rounds       []round
	cur          round
	curOpen      bool
	lastData     time.Time
	timeoutRound int // index into rounds of the first post-timeout round, -1
	truncated    bool

	// TCP timestamp state for RTT sampling: the newest TSVal this
	// direction sent and when it was first seen.
	tsVal     uint32
	tsValAt   time.Time
	tsValSeen bool
}

// state is one tracked flow. Flows form an LRU list for bounded-memory
// eviction.
type state struct {
	key   flowKey
	first time.Time
	last  time.Time

	// Handshake RTT estimation.
	synDir    int // which key side sent the SYN (the client)
	sawSYN    bool
	synAt     time.Time
	sawSynAck bool
	hsRTT     time.Duration
	tsRTT     time.Duration // minimum timestamp-echo RTT sample
	sawFIN    bool
	sawRST    bool

	dirs [2]dirState

	prev, next *state // LRU links (most recent at head)
}

// rtt returns the flow's best RTT estimate (0 when unknown).
func (s *state) rtt() time.Duration {
	if s.hsRTT > 0 {
		return s.hsRTT
	}
	return s.tsRTT
}

// Stats counts tracker-level events for ingest health reporting.
type Stats struct {
	// Flows is every distinct 4-tuple seen.
	Flows int64
	// Evicted counts flows emitted early because MaxFlows was exceeded.
	Evicted int64
	// Dropped counts flows discarded entirely because MaxEmitted was
	// exceeded.
	Dropped int64
	// Truncated counts flows whose round recording hit MaxRounds.
	Truncated int64
	// LiveHighWater is the most flows ever tracked at once; it never
	// exceeds MaxFlows.
	LiveHighWater int64
	// Epochs counts idle-expiry sweeps run in online mode.
	Epochs int64
	// Expired counts flows emitted by idle expiry in online mode.
	Expired int64
}

// TrackerMetrics publishes live tracker state through shared telemetry
// instruments, safe to read from other goroutines while the tracker
// runs. Several shard trackers may share one TrackerMetrics; the gauges
// then aggregate across the whole pipeline. All fields are optional.
type TrackerMetrics struct {
	// Live is the number of currently tracked flows.
	Live *telemetry.Gauge
	// LiveHighWater is the most flows ever tracked at once.
	LiveHighWater *telemetry.Gauge
	// Epochs counts idle-expiry sweeps.
	Epochs *telemetry.Counter
	// Expired counts flows emitted by idle expiry.
	Expired *telemetry.Counter
}

// Tracker reassembles flows from a packet stream. Feed packets with
// Observe, then call Finish for the reconstructed flows. Memory is
// bounded by MaxFlows live flows, MaxRounds rounds each, and MaxEmitted
// finished flows, regardless of capture size. Not safe for concurrent
// use.
type Tracker struct {
	cfg   Config
	flows map[flowKey]*state
	head  *state // most recently active
	tail  *state
	done  []*FlowTrace
	stats Stats
	rec   trace.Recorder // reused build buffer; emitted traces are Clones

	// Online mode: emitted flows go to sink instead of done, and idle
	// flows expire on epoch sweeps instead of waiting for Finish.
	sink    func(*FlowTrace)
	emitted int64     // flows emitted so far, for the MaxEmitted bound
	epochAt time.Time // capture time the current epoch started
	metrics *TrackerMetrics
}

// NewTracker returns a tracker with the given bounds.
func NewTracker(cfg Config) *Tracker {
	return &Tracker{cfg: cfg.withDefaults(), flows: map[flowKey]*state{}}
}

// Stats returns the running tracker counters.
func (t *Tracker) Stats() Stats { return t.stats }

// Live returns the number of currently tracked flows. Like every other
// method it must run on the tracker's own goroutine; cross-goroutine
// observation goes through Instrument.
func (t *Tracker) Live() int { return len(t.flows) }

// Stream switches the tracker to online mode: every finished flow --
// idle-expired, evicted, or drained by Finish -- is handed to sink
// instead of accumulating for Finish, and epoch sweeps (Config.Epoch,
// Config.IdleRTTs) emit flows as soon as they have been idle past their
// expiry threshold. sink runs synchronously on the Observe/Finish
// goroutine and owns the FlowTrace it receives.
func (t *Tracker) Stream(sink func(*FlowTrace)) {
	t.sink = sink
}

// Instrument publishes tracker state through m's shared instruments (see
// TrackerMetrics). Call before the first Observe.
func (t *Tracker) Instrument(m *TrackerMetrics) { t.metrics = m }

// Observe feeds one decoded TCP segment.
func (t *Tracker) Observe(p *pcap.Packet) {
	key, dir := keyOf(p)
	s := t.flows[key]
	if t.sink != nil {
		// Online mode: a flow resuming after its own idle-expiry window
		// was already conceptually emitted -- close it out and let the
		// resumption start a fresh flow. This keeps the split independent
		// of epoch phase and of other traffic.
		if s != nil && p.Time.Sub(s.last) >= t.idleAfter(s) {
			t.expire(s)
			s = nil
		}
		t.sweep(p.Time)
	}
	if s == nil {
		// Evict before inserting so live flows never exceed MaxFlows.
		if len(t.flows) >= t.cfg.MaxFlows {
			t.evictOldest()
		}
		t.stats.Flows++
		s = &state{key: key, first: p.Time, synDir: -1}
		s.dirs[0].timeoutRound = -1
		s.dirs[1].timeoutRound = -1
		t.flows[key] = s
		t.lruPush(s)
		if live := int64(len(t.flows)); live > t.stats.LiveHighWater {
			t.stats.LiveHighWater = live
		}
		if m := t.metrics; m != nil {
			if m.Live != nil {
				live := m.Live.Add(1)
				if m.LiveHighWater != nil {
					m.LiveHighWater.SetMax(live)
				}
			}
		}
	} else {
		t.lruTouch(s)
	}
	s.last = p.Time
	t.observeFlow(s, p, dir)
}

// idleAfter is the flow's idle-expiry threshold in online mode:
// IdleRTTs round trips of silence, floored by the sweep cadence.
func (t *Tracker) idleAfter(s *state) time.Duration {
	rtt := s.rtt()
	if rtt <= 0 {
		rtt = t.cfg.DefaultRTT
	}
	idle := time.Duration(t.cfg.IdleRTTs) * rtt
	if idle < rtt { // overflow on absurd capture-claimed RTTs
		idle = math.MaxInt64
	}
	if idle < t.cfg.Epoch {
		idle = t.cfg.Epoch
	}
	return idle
}

// sweep runs the epoch idle-expiry pass when an epoch of capture time
// has elapsed: walking from the LRU tail (least recently active first),
// it emits every flow idle past its own threshold and stops at the
// first flow idle less than Epoch, which floors every threshold.
func (t *Tracker) sweep(now time.Time) {
	d := now.Sub(t.epochAt)
	if t.epochAt.IsZero() || d < 0 {
		// First packet, or capture time stepped backwards: re-anchor.
		t.epochAt = now
		return
	}
	if d < t.cfg.Epoch {
		return
	}
	t.epochAt = now
	t.stats.Epochs++
	if m := t.metrics; m != nil && m.Epochs != nil {
		m.Epochs.Add(1)
	}
	for cur := t.tail; cur != nil; {
		idle := now.Sub(cur.last)
		if idle < t.cfg.Epoch {
			break
		}
		prev := cur.prev
		if idle >= t.idleAfter(cur) {
			t.expire(cur)
		}
		cur = prev
	}
}

// expire emits one flow through the idle-expiry path.
func (t *Tracker) expire(s *state) {
	t.stats.Expired++
	if m := t.metrics; m != nil && m.Expired != nil {
		m.Expired.Add(1)
	}
	t.emit(s)
}

// observeFlow updates one flow's state with a segment from key side dir.
func (t *Tracker) observeFlow(s *state, p *pcap.Packet, dir int) {
	d := &s.dirs[dir]
	d.packets++
	if p.RST() {
		s.sawRST = true
	}
	if p.FIN() {
		s.sawFIN = true
	}

	// Handshake tracking for the RTT estimate and client identification.
	switch {
	case p.SYN() && !p.ACK():
		if !s.sawSYN {
			s.sawSYN = true
			s.synDir = dir
			s.synAt = p.Time
		}
	case p.SYN() && p.ACK():
		if s.sawSYN && dir != s.synDir {
			s.sawSynAck = true
		}
	case p.ACK() && s.sawSynAck && s.hsRTT == 0 && dir == s.synDir:
		if rtt := p.Time.Sub(s.synAt); rtt > 0 {
			s.hsRTT = rtt
		}
	}
	if p.SYN() && p.Opt.HasMSS {
		d.mssOpt = p.Opt.MSS
	}

	// Timestamp-echo RTT samples: this segment echoes the peer's newest
	// TSVal, so the elapsed time since the peer first sent it is one RTT.
	// The echo field is only defined on segments with ACK set (RFC 7323
	// §3.2); gating on that instead of TSEcr != 0 keeps samples from
	// peers whose timestamp clock starts at or wraps through zero.
	peer := &s.dirs[1-dir]
	if p.Opt.HasTS {
		if p.ACK() && peer.tsValSeen && p.Opt.TSEcr == peer.tsVal {
			if sample := p.Time.Sub(peer.tsValAt); sample > 0 && (s.tsRTT == 0 || sample < s.tsRTT) {
				s.tsRTT = sample
			}
		}
		if !d.tsValSeen || p.Opt.TSVal != d.tsVal {
			d.tsVal = p.Opt.TSVal
			d.tsValAt = p.Time
			d.tsValSeen = true
		}
	}

	// Sequence tracking: only data segments advance the high-water mark
	// and the round series.
	if p.PayloadLen <= 0 {
		if p.SYN() && !d.haveSeq {
			d.haveSeq = true
			d.highSeq = p.Seq + 1
		}
		return
	}
	if p.PayloadLen > d.maxSegLen {
		d.maxSegLen = p.PayloadLen
	}
	d.dataBytes += int64(p.PayloadLen)
	end := p.Seq + uint32(p.PayloadLen)
	if !d.haveSeq {
		d.haveSeq = true
		d.highSeq = p.Seq
	}
	retx := seqLT(p.Seq, d.highSeq)
	if retx {
		d.retx++
	}
	var advance int64
	if seqLT(d.highSeq, end) {
		advance = int64(end - d.highSeq)
		d.highSeq = end
	}
	t.bucket(s, d, p.Time, advance, retx)
	d.lastData = p.Time
}

// bucket assigns one data segment to an RTT round, opening a new round
// after a round boundary's worth of silence.
func (t *Tracker) bucket(s *state, d *dirState, at time.Time, advance int64, retx bool) {
	if d.curOpen && at.Sub(d.lastData) > t.roundGap(s) {
		t.closeRound(d)
	}
	if !d.curOpen {
		d.curOpen = true
		d.cur = round{start: at, retxStart: retx}
		// A round that opens with a retransmission, after the silence
		// that the round boundary implies, is the timeout signature. Only
		// the first such round splits the trace.
		if retx && d.timeoutRound < 0 && (len(d.rounds) > 0 || d.truncated) {
			d.timeoutRound = len(d.rounds)
		}
	}
	d.cur.packets++
	d.cur.newBytes += advance
	if retx {
		d.cur.retx++
	}
}

// closeRound archives the open round, subject to the MaxRounds bound.
func (t *Tracker) closeRound(d *dirState) {
	if !d.curOpen {
		return
	}
	d.curOpen = false
	if len(d.rounds) >= t.cfg.MaxRounds {
		if !d.truncated {
			d.truncated = true
			t.stats.Truncated++
		}
		return
	}
	d.rounds = append(d.rounds, d.cur)
}

// roundGap is the silence that separates two RTT rounds: half the flow's
// RTT estimate, floored by MinRoundGap.
func (t *Tracker) roundGap(s *state) time.Duration {
	rtt := s.rtt()
	if rtt <= 0 {
		rtt = t.cfg.DefaultRTT
	}
	gap := rtt / 2
	if gap < t.cfg.MinRoundGap {
		gap = t.cfg.MinRoundGap
	}
	return gap
}

// Finish emits every remaining flow, ordered by first activity, and
// resets the tracker. The returned traces are independent copies. In
// online mode the remaining flows drain to the sink instead and Finish
// returns nil.
func (t *Tracker) Finish() []*FlowTrace {
	// Emit in LRU order (oldest first), then restore capture order by
	// first-packet time via the done slice append order... flows may
	// interleave, so sort explicitly at the end.
	for t.tail != nil {
		t.emit(t.tail)
	}
	out := t.done
	t.done = nil
	t.flows = map[flowKey]*state{}
	t.emitted = 0
	t.epochAt = time.Time{}
	sortFlows(out)
	return out
}

// evictOldest emits the least-recently-active flow to enforce MaxFlows.
func (t *Tracker) evictOldest() {
	if t.tail == nil {
		return
	}
	t.stats.Evicted++
	t.emit(t.tail)
}

// emit finalizes one flow into a FlowTrace and removes it from the
// tracker: onto the done slice offline, into the sink online. Once
// MaxEmitted flows have been emitted, later-finishing flows are dropped
// (the earliest-finishing flows are the ones kept).
func (t *Tracker) emit(s *state) {
	t.lruRemove(s)
	delete(t.flows, s.key)
	if m := t.metrics; m != nil && m.Live != nil {
		m.Live.Add(-1)
	}
	if t.cfg.MaxEmitted >= 0 && t.emitted >= int64(t.cfg.MaxEmitted) {
		t.stats.Dropped++
		return
	}
	t.emitted++
	ft := t.finalize(s)
	if t.sink != nil {
		t.sink(ft)
		return
	}
	t.done = append(t.done, ft)
}

// sortFlows orders flows by first activity, breaking ties by endpoint
// strings so output is deterministic.
func sortFlows(fs []*FlowTrace) {
	sort.SliceStable(fs, func(i, j int) bool { return flowLess(fs[i], fs[j]) })
}

func flowLess(x, y *FlowTrace) bool {
	if !x.Start.Equal(y.Start) {
		return x.Start.Before(y.Start)
	}
	if x.Server != y.Server {
		return x.Server < y.Server
	}
	return x.Client < y.Client
}

// lruPush inserts s at the head (most recent).
func (t *Tracker) lruPush(s *state) {
	s.prev = nil
	s.next = t.head
	if t.head != nil {
		t.head.prev = s
	}
	t.head = s
	if t.tail == nil {
		t.tail = s
	}
}

func (t *Tracker) lruTouch(s *state) {
	if t.head == s {
		return
	}
	t.lruRemove(s)
	t.lruPush(s)
}

func (t *Tracker) lruRemove(s *state) {
	if s.prev != nil {
		s.prev.next = s.next
	} else if t.head == s {
		t.head = s.next
	}
	if s.next != nil {
		s.next.prev = s.prev
	} else if t.tail == s {
		t.tail = s.prev
	}
	s.prev, s.next = nil, nil
}
