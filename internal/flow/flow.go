// Package flow reconstructs congestion window traces from passively
// captured TCP traffic: it tracks per-4-tuple flows with bounded memory,
// estimates the path RTT (handshake, then TCP timestamps), buckets each
// direction's data segments into RTT rounds, detects the
// retransmission-after-silence signature of a retransmission timeout, and
// emits the per-round delivered-window series as trace.Trace values --
// the same shape the active prober gathers -- so the existing feature /
// classifier pipeline consumes captured traffic unchanged.
//
// Reconstruction is exact on clean paths (see the round-trip tests
// against internal/pcapgen) and heuristic under impairment; DESIGN.md §7
// documents the failure modes (mid-stream captures without a handshake
// mis-bucket the first rounds, packet loss between server and capture
// point inflates windows, fast-retransmit storms can read as timeouts).
package flow

import (
	"sort"
	"time"

	"repro/internal/pcap"
	"repro/internal/trace"
)

// Config bounds a Tracker. The zero value selects the defaults.
type Config struct {
	// MaxFlows bounds concurrently tracked flows; beyond it the
	// least-recently-active flow is emitted early (default 4096).
	MaxFlows int
	// MaxRounds bounds recorded rounds per flow direction; beyond it the
	// flow keeps counting packets but stops recording windows and is
	// marked truncated (default 256 -- a full probe gathering needs ~60).
	MaxRounds int
	// MaxEmitted bounds the flows a single capture may emit; beyond it
	// the oldest-evicted flows are dropped and counted (default 65536).
	MaxEmitted int
	// DefaultRTT seeds round bucketing when a flow has neither a
	// handshake nor usable TCP timestamps (default 200ms).
	DefaultRTT time.Duration
	// MinRoundGap floors the round-boundary gap so sub-millisecond RTT
	// estimates cannot split bursts (default 2ms).
	MinRoundGap time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxFlows <= 0 {
		c.MaxFlows = 4096
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 256
	}
	if c.MaxEmitted <= 0 {
		c.MaxEmitted = 65536
	}
	if c.DefaultRTT <= 0 {
		c.DefaultRTT = 200 * time.Millisecond
	}
	if c.MinRoundGap <= 0 {
		c.MinRoundGap = 2 * time.Millisecond
	}
	return c
}

// endpoint is one side of a connection.
type endpoint struct {
	ip   [16]byte
	port uint16
}

func (e endpoint) String() string {
	var p pcap.Packet
	p.SrcIP, p.SrcPort = e.ip, e.port
	return p.Src()
}

// flowKey is the direction-normalized 4-tuple.
type flowKey struct {
	a, b endpoint
}

// keyOf normalizes the packet's endpoints; dir reports which key side the
// packet came from (0 = a, 1 = b).
func keyOf(p *pcap.Packet) (flowKey, int) {
	src := endpoint{p.SrcIP, p.SrcPort}
	dst := endpoint{p.DstIP, p.DstPort}
	if less(src, dst) {
		return flowKey{src, dst}, 0
	}
	return flowKey{dst, src}, 1
}

func less(x, y endpoint) bool {
	for i := range x.ip {
		if x.ip[i] != y.ip[i] {
			return x.ip[i] < y.ip[i]
		}
	}
	return x.port < y.port
}

// seqLT is the wraparound-safe sequence comparison.
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// round is one reconstructed RTT round of a direction.
type round struct {
	start time.Time
	// newBytes is how far the direction's delivery high-water mark
	// advanced during the round: the passive equivalent of the prober's
	// per-round window measurement w = maxSeq(r) - maxSeq(r-1).
	newBytes int64
	packets  int
	retx     int
	// retxStart marks a round whose first segment was a retransmission:
	// after a round boundary's worth of silence this is the signature of
	// a retransmission timeout.
	retxStart bool
}

// dirState tracks one direction of a flow.
type dirState struct {
	packets   int64
	dataBytes int64 // payload bytes seen (including retransmissions)
	retx      int64

	haveSeq bool
	highSeq uint32 // delivery high-water mark (max seq+len seen)

	mssOpt    uint16 // MSS option from this direction's SYN
	maxSegLen int

	rounds       []round
	cur          round
	curOpen      bool
	lastData     time.Time
	timeoutRound int // index into rounds of the first post-timeout round, -1
	truncated    bool

	// TCP timestamp state for RTT sampling: the newest TSVal this
	// direction sent and when it was first seen.
	tsVal     uint32
	tsValAt   time.Time
	tsValSeen bool
}

// state is one tracked flow. Flows form an LRU list for bounded-memory
// eviction.
type state struct {
	key   flowKey
	first time.Time
	last  time.Time

	// Handshake RTT estimation.
	synDir    int // which key side sent the SYN (the client)
	sawSYN    bool
	synAt     time.Time
	sawSynAck bool
	hsRTT     time.Duration
	tsRTT     time.Duration // minimum timestamp-echo RTT sample
	sawFIN    bool
	sawRST    bool

	dirs [2]dirState

	prev, next *state // LRU links (most recent at head)
}

// rtt returns the flow's best RTT estimate (0 when unknown).
func (s *state) rtt() time.Duration {
	if s.hsRTT > 0 {
		return s.hsRTT
	}
	return s.tsRTT
}

// Stats counts tracker-level events for ingest health reporting.
type Stats struct {
	// Flows is every distinct 4-tuple seen.
	Flows int64
	// Evicted counts flows emitted early because MaxFlows was exceeded.
	Evicted int64
	// Dropped counts flows discarded entirely because MaxEmitted was
	// exceeded.
	Dropped int64
	// Truncated counts flows whose round recording hit MaxRounds.
	Truncated int64
}

// Tracker reassembles flows from a packet stream. Feed packets with
// Observe, then call Finish for the reconstructed flows. Memory is
// bounded by MaxFlows live flows, MaxRounds rounds each, and MaxEmitted
// finished flows, regardless of capture size. Not safe for concurrent
// use.
type Tracker struct {
	cfg   Config
	flows map[flowKey]*state
	head  *state // most recently active
	tail  *state
	done  []*FlowTrace
	stats Stats
	rec   trace.Recorder // reused build buffer; emitted traces are Clones
}

// NewTracker returns a tracker with the given bounds.
func NewTracker(cfg Config) *Tracker {
	return &Tracker{cfg: cfg.withDefaults(), flows: map[flowKey]*state{}}
}

// Stats returns the running tracker counters.
func (t *Tracker) Stats() Stats { return t.stats }

// Observe feeds one decoded TCP segment.
func (t *Tracker) Observe(p *pcap.Packet) {
	key, dir := keyOf(p)
	s := t.flows[key]
	if s == nil {
		t.stats.Flows++
		s = &state{key: key, first: p.Time, synDir: -1}
		s.dirs[0].timeoutRound = -1
		s.dirs[1].timeoutRound = -1
		t.flows[key] = s
		t.lruPush(s)
		if len(t.flows) > t.cfg.MaxFlows {
			t.evictOldest()
		}
	} else {
		t.lruTouch(s)
	}
	s.last = p.Time
	t.observeFlow(s, p, dir)
}

// observeFlow updates one flow's state with a segment from key side dir.
func (t *Tracker) observeFlow(s *state, p *pcap.Packet, dir int) {
	d := &s.dirs[dir]
	d.packets++
	if p.RST() {
		s.sawRST = true
	}
	if p.FIN() {
		s.sawFIN = true
	}

	// Handshake tracking for the RTT estimate and client identification.
	switch {
	case p.SYN() && !p.ACK():
		if !s.sawSYN {
			s.sawSYN = true
			s.synDir = dir
			s.synAt = p.Time
		}
	case p.SYN() && p.ACK():
		if s.sawSYN && dir != s.synDir {
			s.sawSynAck = true
		}
	case p.ACK() && s.sawSynAck && s.hsRTT == 0 && dir == s.synDir:
		if rtt := p.Time.Sub(s.synAt); rtt > 0 {
			s.hsRTT = rtt
		}
	}
	if p.SYN() && p.Opt.HasMSS {
		d.mssOpt = p.Opt.MSS
	}

	// Timestamp-echo RTT samples: this segment echoes the peer's newest
	// TSVal, so the elapsed time since the peer first sent it is one RTT.
	peer := &s.dirs[1-dir]
	if p.Opt.HasTS {
		if p.Opt.TSEcr != 0 && peer.tsValSeen && p.Opt.TSEcr == peer.tsVal {
			if sample := p.Time.Sub(peer.tsValAt); sample > 0 && (s.tsRTT == 0 || sample < s.tsRTT) {
				s.tsRTT = sample
			}
		}
		if !d.tsValSeen || p.Opt.TSVal != d.tsVal {
			d.tsVal = p.Opt.TSVal
			d.tsValAt = p.Time
			d.tsValSeen = true
		}
	}

	// Sequence tracking: only data segments advance the high-water mark
	// and the round series.
	if p.PayloadLen <= 0 {
		if p.SYN() && !d.haveSeq {
			d.haveSeq = true
			d.highSeq = p.Seq + 1
		}
		return
	}
	if p.PayloadLen > d.maxSegLen {
		d.maxSegLen = p.PayloadLen
	}
	d.dataBytes += int64(p.PayloadLen)
	end := p.Seq + uint32(p.PayloadLen)
	if !d.haveSeq {
		d.haveSeq = true
		d.highSeq = p.Seq
	}
	retx := seqLT(p.Seq, d.highSeq)
	if retx {
		d.retx++
	}
	var advance int64
	if seqLT(d.highSeq, end) {
		advance = int64(end - d.highSeq)
		d.highSeq = end
	}
	t.bucket(s, d, p.Time, advance, retx)
	d.lastData = p.Time
}

// bucket assigns one data segment to an RTT round, opening a new round
// after a round boundary's worth of silence.
func (t *Tracker) bucket(s *state, d *dirState, at time.Time, advance int64, retx bool) {
	if d.curOpen && at.Sub(d.lastData) > t.roundGap(s) {
		t.closeRound(d)
	}
	if !d.curOpen {
		d.curOpen = true
		d.cur = round{start: at, retxStart: retx}
		// A round that opens with a retransmission, after the silence
		// that the round boundary implies, is the timeout signature. Only
		// the first such round splits the trace.
		if retx && d.timeoutRound < 0 && (len(d.rounds) > 0 || d.truncated) {
			d.timeoutRound = len(d.rounds)
		}
	}
	d.cur.packets++
	d.cur.newBytes += advance
	if retx {
		d.cur.retx++
	}
}

// closeRound archives the open round, subject to the MaxRounds bound.
func (t *Tracker) closeRound(d *dirState) {
	if !d.curOpen {
		return
	}
	d.curOpen = false
	if len(d.rounds) >= t.cfg.MaxRounds {
		if !d.truncated {
			d.truncated = true
			t.stats.Truncated++
		}
		return
	}
	d.rounds = append(d.rounds, d.cur)
}

// roundGap is the silence that separates two RTT rounds: half the flow's
// RTT estimate, floored by MinRoundGap.
func (t *Tracker) roundGap(s *state) time.Duration {
	rtt := s.rtt()
	if rtt <= 0 {
		rtt = t.cfg.DefaultRTT
	}
	gap := rtt / 2
	if gap < t.cfg.MinRoundGap {
		gap = t.cfg.MinRoundGap
	}
	return gap
}

// Finish emits every remaining flow, ordered by first activity, and
// resets the tracker. The returned traces are independent copies.
func (t *Tracker) Finish() []*FlowTrace {
	// Emit in LRU order (oldest first), then restore capture order by
	// first-packet time via the done slice append order... flows may
	// interleave, so sort explicitly at the end.
	for t.tail != nil {
		t.emit(t.tail)
	}
	out := t.done
	t.done = nil
	t.flows = map[flowKey]*state{}
	sortFlows(out)
	return out
}

// evictOldest emits the least-recently-active flow to enforce MaxFlows.
func (t *Tracker) evictOldest() {
	if t.tail == nil {
		return
	}
	t.stats.Evicted++
	t.emit(t.tail)
}

// emit finalizes one flow into a FlowTrace and removes it from the
// tracker.
func (t *Tracker) emit(s *state) {
	t.lruRemove(s)
	delete(t.flows, s.key)
	if len(t.done) >= t.cfg.MaxEmitted {
		t.stats.Dropped++
		return
	}
	t.done = append(t.done, t.finalize(s))
}

// sortFlows orders flows by first activity, breaking ties by endpoint
// strings so output is deterministic.
func sortFlows(fs []*FlowTrace) {
	sort.SliceStable(fs, func(i, j int) bool { return flowLess(fs[i], fs[j]) })
}

func flowLess(x, y *FlowTrace) bool {
	if !x.Start.Equal(y.Start) {
		return x.Start.Before(y.Start)
	}
	if x.Server != y.Server {
		return x.Server < y.Server
	}
	return x.Client < y.Client
}

// lruPush inserts s at the head (most recent).
func (t *Tracker) lruPush(s *state) {
	s.prev = nil
	s.next = t.head
	if t.head != nil {
		t.head.prev = s
	}
	t.head = s
	if t.tail == nil {
		t.tail = s
	}
}

func (t *Tracker) lruTouch(s *state) {
	if t.head == s {
		return
	}
	t.lruRemove(s)
	t.lruPush(s)
}

func (t *Tracker) lruRemove(s *state) {
	if s.prev != nil {
		s.prev.next = s.next
	} else if t.head == s {
		t.head = s.next
	}
	if s.next != nil {
		s.next.prev = s.prev
	} else if t.tail == s {
		t.tail = s.prev
	}
	s.prev, s.next = nil, nil
}
