package flow

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/cc"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/pcapgen"
)

// goldenModelPath is the committed forest the eval golden fixtures pin;
// reusing it keeps the passive pipeline's expectations anchored to the
// same model without committing a second copy.
var goldenModelPath = filepath.Join("..", "eval", "testdata", "golden", "model.json")

func loadGoldenModel(t *testing.T) classify.Classifier {
	t.Helper()
	model, err := classify.LoadFile(goldenModelPath)
	if err != nil {
		t.Fatalf("loading the committed golden model: %v", err)
	}
	return model
}

// TestRoundTripMatchesDirectPath is the acceptance property of the
// passive pipeline: for every registered CAAI algorithm, simulating a
// probe gathering, writing it as a pcap, decoding it, reconstructing the
// flows, and classifying them must agree with classifying the directly
// gathered traces -- on clean paths, bit for bit: same windows, same
// feature vector, same label and confidence.
func TestRoundTripMatchesDirectPath(t *testing.T) {
	model := loadGoldenModel(t)
	id := core.NewIdentifier(model)

	for i, alg := range cc.CAAINames() {
		alg := alg
		seed := int64(1000 + i)
		t.Run(alg, func(t *testing.T) {
			var buf bytes.Buffer
			results, err := pcapgen.Generate(&buf, []pcapgen.ServerSpec{{Algorithm: alg, Seed: seed}}, pcapgen.Options{})
			if err != nil {
				t.Fatal(err)
			}
			direct := id.IdentifyResult(results[0])
			if !direct.Valid {
				t.Fatalf("direct gathering invalid (%s); pick another seed", results[0].Reason)
			}

			pairs, stats, err := IdentifyCapture(bytes.NewReader(buf.Bytes()), model, IdentifyOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if len(pairs) != 1 {
				for _, p := range pairs {
					t.Logf("pair: A=%s B=%v id=%s", p.A, p.B, p.ID)
				}
				t.Fatalf("capture produced %d identifications, want 1 (stats %+v)", len(pairs), stats)
			}
			got := pairs[0].ID

			// The reconstructed traces must equal the direct ones window
			// for window.
			ta := pairs[0].A.Trace
			if !reflect.DeepEqual(ta.Pre, results[0].TraceA.Pre) || !reflect.DeepEqual(ta.Post, results[0].TraceA.Post) {
				t.Errorf("trace A drifted:\n got pre=%v post=%v\nwant pre=%v post=%v",
					ta.Pre, ta.Post, results[0].TraceA.Pre, results[0].TraceA.Post)
			}
			if pairs[0].B == nil {
				t.Fatalf("no companion flow was paired (stats %+v)", stats)
			}
			tb := pairs[0].B.Trace
			if !reflect.DeepEqual(tb.Pre, results[0].TraceB.Pre) || !reflect.DeepEqual(tb.Post, results[0].TraceB.Post) {
				t.Errorf("trace B drifted:\n got pre=%v post=%v\nwant pre=%v post=%v",
					tb.Pre, tb.Post, results[0].TraceB.Pre, results[0].TraceB.Post)
			}
			if ta.WmaxThreshold != results[0].Wmax {
				t.Errorf("wmax estimate %d, direct %d", ta.WmaxThreshold, results[0].Wmax)
			}
			if got.MSS != results[0].MSS {
				t.Errorf("mss %d, direct %d", got.MSS, results[0].MSS)
			}

			if got.Valid != direct.Valid || got.Label != direct.Label || got.Special != direct.Special {
				t.Fatalf("classification drifted:\n got %s\nwant %s", got, direct)
			}
			if math.Float64bits(got.Confidence) != math.Float64bits(direct.Confidence) {
				t.Errorf("confidence %v, direct %v", got.Confidence, direct.Confidence)
			}
			for f := 0; f < len(got.Vector); f++ {
				if math.Float64bits(got.Vector[f]) != math.Float64bits(direct.Vector[f]) {
					t.Errorf("feature %d: got %v, direct %v", f, got.Vector[f], direct.Vector[f])
				}
			}
		})
	}
}

// TestRoundTripPcapng runs one algorithm through the pcapng format to pin
// the second container end to end.
func TestRoundTripPcapng(t *testing.T) {
	model := loadGoldenModel(t)
	id := core.NewIdentifier(model)
	var buf bytes.Buffer
	results, err := pcapgen.Generate(&buf, []pcapgen.ServerSpec{{Algorithm: "CUBIC2", Seed: 7}},
		pcapgen.Options{Format: "pcapng"})
	if err != nil {
		t.Fatal(err)
	}
	pairs, _, err := IdentifyCapture(bytes.NewReader(buf.Bytes()), model, IdentifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 {
		t.Fatalf("got %d identifications, want 1", len(pairs))
	}
	direct := id.IdentifyResult(results[0])
	if pairs[0].ID.Label != direct.Label {
		t.Fatalf("pcapng label %q, direct %q", pairs[0].ID.Label, direct.Label)
	}
}

// TestMultiServerCapture ingests one capture holding several servers'
// probe flows and expects one identification per server.
func TestMultiServerCapture(t *testing.T) {
	model := loadGoldenModel(t)
	specs := []pcapgen.ServerSpec{
		{Algorithm: "RENO", Seed: 11},
		{Algorithm: "CUBIC2", Seed: 12},
		{Algorithm: "VEGAS", Seed: 13},
	}
	var buf bytes.Buffer
	results, err := pcapgen.Generate(&buf, specs, pcapgen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	id := core.NewIdentifier(model)
	pairs, stats, err := IdentifyCapture(bytes.NewReader(buf.Bytes()), model, IdentifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != len(specs) {
		t.Fatalf("got %d identifications, want %d (stats %+v)", len(pairs), len(specs), stats)
	}
	byServer := map[string]core.Identification{}
	for _, p := range pairs {
		byServer[p.A.Server] = p.ID
	}
	if len(byServer) != len(specs) {
		t.Fatalf("identifications cover %d servers, want %d", len(byServer), len(specs))
	}
	for i := range specs {
		direct := id.IdentifyResult(results[i])
		found := false
		for _, got := range byServer {
			if got.Label == direct.Label && got.Valid == direct.Valid {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no capture identification matched direct %s for %s", direct, specs[i].Algorithm)
		}
	}
}
