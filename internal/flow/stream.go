// Streaming passive identification: an unbounded capture byte stream
// goes in one end, per-flow classifications come out the other as flows
// close, with every stage bounded. The pipeline is
//
//	Write -> pcap.Ring -> framer -> [shard workers] -> funnel -> emitter
//
// The framer reads raw records off the ring (pcap.Reader.NextRaw),
// sniffs each frame's 4-tuple hash (pcap.TupleHash) and batches the raw
// bytes onto the owning shard's channel; shard workers -- long-lived
// jobs on the engine worker pool -- run the full frame decode and their
// own online-mode Tracker; finished flows funnel into one channel that
// a single emitter goroutine drains, so the caller's sink never needs
// locks. Every channel and buffer is bounded, so a slow consumer stalls
// the producer (HTTP body, stdin) instead of growing memory.
package flow

import (
	"context"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/pcap"
	"repro/internal/telemetry"
)

// StreamConfig tunes a Stream. The zero value selects the defaults.
type StreamConfig struct {
	// Tracker bounds flow reassembly. MaxFlows is the bound across the
	// whole pipeline (split evenly over shards); MaxEmitted defaults to
	// unlimited in streaming mode, where emitted flows are handed off
	// instead of accumulating.
	Tracker Config
	// Shards is the number of parallel decode+track workers (default:
	// GOMAXPROCS, capped at 16).
	Shards int
	// RingBytes bounds the ingest ring buffer between the producer and
	// the framer (default 1 MiB).
	RingBytes int
	// BatchPackets is how many raw packets the framer groups per shard
	// handoff (default 128).
	BatchPackets int
	// Metrics, when non-nil, publishes live pipeline state.
	Metrics *StreamMetrics
	// Trace/TraceID, when both set, record a shard-assignment event into
	// the flight recorder each time a shard worker emits a finished flow
	// (arg: shard index), so a stream request's span tree shows which
	// decode shards produced its flows.
	Trace   *telemetry.Flight
	TraceID telemetry.TraceID
}

// StreamMetrics is the caai_stream_* instrument set. All fields are
// optional; several concurrent streams may share one StreamMetrics (the
// gauges then aggregate across streams).
type StreamMetrics struct {
	// Tracker carries the live-flow gauge, its high water, and the
	// epoch/expiry counters, shared by every shard tracker.
	Tracker TrackerMetrics
	// Bytes counts capture bytes accepted by Write.
	Bytes *telemetry.Counter
	// Packets counts capture records framed.
	Packets *telemetry.Counter
	// Flows counts flows emitted (expired, evicted, or drained).
	Flows *telemetry.Counter
	// RingHighWater tracks the fullest the ingest ring has been.
	RingHighWater *telemetry.Gauge
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.Shards > 16 {
		c.Shards = 16
	}
	if c.RingBytes <= 0 {
		c.RingBytes = 1 << 20
	}
	if c.BatchPackets <= 0 {
		c.BatchPackets = 128
	}
	if c.Tracker.MaxEmitted == 0 {
		c.Tracker.MaxEmitted = -1
	}
	return c
}

// rawMeta is one framed packet's record metadata; the frame bytes live
// in the owning batch's buf.
type rawMeta struct {
	time     time.Time
	linkType uint32
	capLen   int32
	origLen  int32
	off, end int32
}

// rawBatch is one framer-to-shard handoff. Batches recycle through a
// per-shard free list, so a steady-state stream stops allocating.
type rawBatch struct {
	buf  []byte
	meta []rawMeta
}

func (b *rawBatch) reset() { b.buf = b.buf[:0]; b.meta = b.meta[:0] }

// shardState is one worker's private pipeline state.
type shardState struct {
	in      chan *rawBatch
	free    chan *rawBatch
	pending *rawBatch // framer-side batch being filled
	tracker *Tracker
	tcp     int64
	skipped int64
	trunc   int64
}

// Stream is a running streaming-identification pipeline. Feed capture
// bytes with Write (any chunking), then Close to drain; flows arrive at
// the sink passed to NewStream as they close. Write/Close may run on a
// different goroutine than the one that built the Stream. Abort tears
// the pipeline down early.
type Stream struct {
	cfg    StreamConfig
	ring   *pcap.Ring
	onFlow func(*FlowTrace)

	ctx    context.Context
	cancel context.CancelFunc
	shards []shardState
	funnel chan *FlowTrace
	done   chan struct{}

	bytesIn atomic.Int64
	err     error        // pipeline error, valid after done
	stats   CaptureStats // valid after done
}

// NewStream starts a streaming pipeline. Every finished flow is handed
// to onFlow serially, in close order, from one emitter goroutine; the
// FlowTrace is owned by the callback. Cancelling ctx aborts the
// pipeline. Callers must call Close (or Abort) exactly once.
func NewStream(ctx context.Context, cfg StreamConfig, onFlow func(*FlowTrace)) *Stream {
	cfg = cfg.withDefaults()
	sctx, cancel := context.WithCancel(ctx)
	s := &Stream{
		cfg:    cfg,
		ring:   pcap.NewRing(cfg.RingBytes),
		onFlow: onFlow,
		ctx:    sctx,
		cancel: cancel,
		shards: make([]shardState, cfg.Shards),
		funnel: make(chan *FlowTrace, 256),
		done:   make(chan struct{}),
	}
	tcfg := cfg.Tracker.withDefaults()
	perShard := tcfg.MaxFlows / cfg.Shards
	if perShard < 16 {
		perShard = 16
	}
	tcfg.MaxFlows = perShard
	for i := range s.shards {
		sh := &s.shards[i]
		shardIdx := uint64(i)
		sh.in = make(chan *rawBatch, 4)
		sh.free = make(chan *rawBatch, 8)
		sh.tracker = NewTracker(tcfg)
		if cfg.Metrics != nil {
			sh.tracker.Instrument(&cfg.Metrics.Tracker)
		}
		sh.tracker.Stream(func(ft *FlowTrace) {
			cfg.Trace.Event(cfg.TraceID, telemetry.EventShardAssign, shardIdx)
			select {
			case s.funnel <- ft:
			case <-s.ctx.Done():
			}
		})
	}
	go s.run()
	// Unblock the pipeline promptly when ctx is cancelled from outside.
	go func() {
		select {
		case <-sctx.Done():
			s.ring.CloseWithError(context.Cause(sctx))
		case <-s.done:
		}
	}()
	return s
}

// Write feeds capture bytes into the pipeline, blocking when the ring
// is full until the decoder catches up (end-to-end backpressure).
func (s *Stream) Write(p []byte) (int, error) {
	n, err := s.ring.Write(p)
	s.bytesIn.Add(int64(n))
	if m := s.cfg.Metrics; m != nil && m.Bytes != nil {
		m.Bytes.Add(int64(n))
	}
	return n, err
}

// Close ends the input, waits for the pipeline to drain (every
// remaining flow is emitted), and returns the first pipeline error.
func (s *Stream) Close() error {
	s.ring.Close()
	<-s.done
	s.cancel()
	return s.err
}

// Abort tears the pipeline down without draining: blocked producers and
// consumers unwind, remaining flows are dropped. Safe to call after
// Close; safe to call concurrently with Write.
func (s *Stream) Abort(err error) {
	if err == nil {
		err = context.Canceled
	}
	s.ring.CloseWithError(err)
	s.cancel()
	<-s.done
}

// Stats reports the merged pipeline counters. Valid after Close/Abort.
func (s *Stream) Stats() CaptureStats { return s.stats }

// BytesIn reports capture bytes accepted so far. Safe to call from any
// goroutine while the stream runs.
func (s *Stream) BytesIn() int64 { return s.bytesIn.Load() }

// run is the pipeline body: it owns the framer loop and supervises the
// shard workers and the emitter.
func (s *Stream) run() {
	defer close(s.done)
	defer s.ring.CloseWithError(io.ErrClosedPipe) // unblock any writer on early exit

	var emitWG sync.WaitGroup
	emitWG.Add(1)
	go func() {
		defer emitWG.Done()
		for ft := range s.funnel {
			if m := s.cfg.Metrics; m != nil && m.Flows != nil {
				m.Flows.Add(1)
			}
			if ft.Trace != nil && ft.Trace.Valid() {
				s.stats.Classifiable++
			}
			s.onFlow(ft)
		}
	}()

	workersDone := make(chan error, 1)
	go func() {
		// Long-lived shard loops as engine pool jobs: n == parallelism,
		// so every shard gets its own worker goroutine.
		werr := engine.RunWorkers(context.Background(), len(s.shards), len(s.shards), func(_, job int) {
			s.shardLoop(&s.shards[job])
		})
		close(s.funnel)
		workersDone <- werr
	}()

	rd, derr := pcap.NewReader(s.ring)
	if derr == nil {
		derr = s.frame(rd)
	}
	for i := range s.shards {
		if s.shards[i].pending != nil && len(s.shards[i].pending.meta) > 0 {
			s.dispatch(&s.shards[i])
		}
		close(s.shards[i].in)
	}
	werr := <-workersDone
	emitWG.Wait()

	// Merge the per-stage counters into one CaptureStats.
	if rd != nil {
		ds := rd.Stats()
		s.stats.Packets = ds.Packets
	}
	for i := range s.shards {
		sh := &s.shards[i]
		s.stats.TCPSegments += sh.tcp
		s.stats.SkippedPackets += sh.skipped
		s.stats.TruncatedPackets += sh.trunc
		ts := sh.tracker.Stats()
		s.stats.Flows += ts.Flows
		s.stats.EvictedFlows += ts.Evicted
		s.stats.DroppedFlows += ts.Dropped
		s.stats.TruncatedFlows += ts.Truncated
	}
	switch {
	case derr != nil && derr != io.EOF:
		s.err = derr
	case werr != nil:
		s.err = werr
	case s.ctx.Err() != nil:
		s.err = s.ctx.Err()
	}
}

// frame is the framer loop: raw records off the reader, tuple-hash
// shard selection, batched handoff. Frames with no sniffable TCP tuple
// round-robin (they decode to skip/truncated on whatever shard).
func (s *Stream) frame(rd *pcap.Reader) error {
	var rec pcap.RawRecord
	var rr uint64
	nshards := uint64(len(s.shards))
	countdown := 0
	for {
		if err := rd.NextRaw(&rec); err != nil {
			return err
		}
		h, span, ok := pcap.TupleSniff(rec.LinkType, rec.Data)
		data := rec.Data
		if !ok {
			h = rr
			rr++
		} else if span < len(data) {
			// Workers decode headers only; the payload length rides in the
			// IP header, so snapping the copy at the sniffed header span
			// changes nothing downstream (TestStreamMatchesOffline).
			data = data[:span]
		}
		sh := &s.shards[h%nshards]
		b := sh.pending
		if b == nil {
			b = s.grab(sh)
			sh.pending = b
		}
		off := len(b.buf)
		b.buf = append(b.buf, data...)
		b.meta = append(b.meta, rawMeta{
			time:     rec.Time,
			linkType: rec.LinkType,
			capLen:   int32(rec.CapturedLen),
			origLen:  int32(rec.OrigLen),
			off:      int32(off),
			end:      int32(len(b.buf)),
		})
		if len(b.meta) >= s.cfg.BatchPackets || len(b.buf) >= 256<<10 {
			s.dispatch(sh)
		}
		if m := s.cfg.Metrics; m != nil {
			if m.Packets != nil {
				m.Packets.Add(1)
			}
			if countdown--; countdown <= 0 {
				countdown = 4096
				if m.RingHighWater != nil {
					m.RingHighWater.SetMax(int64(s.ring.HighWater()))
				}
			}
		}
	}
}

// grab takes a recycled batch off the shard's free list or allocates.
func (s *Stream) grab(sh *shardState) *rawBatch {
	select {
	case b := <-sh.free:
		b.reset()
		return b
	default:
		return &rawBatch{
			buf:  make([]byte, 0, 64<<10),
			meta: make([]rawMeta, 0, s.cfg.BatchPackets),
		}
	}
}

// dispatch hands the shard's pending batch to its worker, blocking when
// the shard is behind (backpressure toward the producer).
func (s *Stream) dispatch(sh *shardState) {
	b := sh.pending
	sh.pending = nil
	select {
	case sh.in <- b:
	case <-s.ctx.Done():
	}
}

// shardLoop is one worker: full frame decode plus online flow tracking
// for every packet whose tuple hashes here.
func (s *Stream) shardLoop(sh *shardState) {
	var pkt pcap.Packet
	for b := range sh.in {
		for i := range b.meta {
			m := &b.meta[i]
			pkt.Time = m.time
			pkt.CapturedLen = int(m.capLen)
			pkt.OrigLen = int(m.origLen)
			switch pcap.ParseFrame(m.linkType, b.buf[m.off:m.end], &pkt) {
			case pcap.FrameTCP:
				sh.tcp++
				sh.tracker.Observe(&pkt)
			case pcap.FrameTruncated:
				sh.trunc++
			default:
				sh.skipped++
			}
		}
		select {
		case sh.free <- b:
		default:
		}
	}
	// End of input: drain this shard's remaining flows to the sink.
	sh.tracker.Finish()
}

// IdentifyStreamOptions tunes NewIdentifyStream.
type IdentifyStreamOptions struct {
	// Stream tunes the underlying pipeline.
	Stream StreamConfig
	// MaxPending bounds flows held waiting for an environment-B
	// companion; beyond it the oldest pending flow classifies unpaired
	// (default 1024).
	MaxPending int
}

// IdentifyStream is a Stream whose flows are paired and classified as
// they close: the streaming equivalent of IdentifyCapture.
type IdentifyStream struct {
	*Stream
	p pairer
}

// NewIdentifyStream starts a streaming pipeline that pairs flows by
// (client IP, server) and classifies each pair with model the moment it
// completes, mirroring the offline Pair+ClassifyAll path. onResult runs
// serially on the emitter goroutine; it owns the FlowIdentification.
// Flow pairing holds a valid timed-out flow until its group's next flow
// closes (or the stream ends), exactly like the active prober's
// environment A then environment B.
func NewIdentifyStream(ctx context.Context, model classify.Classifier, opts IdentifyStreamOptions, onResult func(FlowIdentification)) *IdentifyStream {
	st := &IdentifyStream{}
	st.p = pairer{
		id:         core.NewIdentifier(model),
		pending:    map[string]*FlowTrace{},
		maxPending: opts.MaxPending,
		onResult:   onResult,
	}
	if st.p.maxPending <= 0 {
		st.p.maxPending = 1024
	}
	st.Stream = NewStream(ctx, opts.Stream, st.p.add)
	return st
}

// Close drains the pipeline, classifies every flow still waiting for a
// companion as unpaired, and returns the first pipeline error.
func (st *IdentifyStream) Close() error {
	err := st.Stream.Close()
	st.p.flush()
	return err
}

// pairer groups closing flows by (client IP, server) and classifies
// each pair. It runs entirely on the emitter goroutine: no locks.
type pairer struct {
	id         *core.Identifier
	pending    map[string]*FlowTrace
	order      []string // FIFO of group keys with a pending flow
	maxPending int
	onResult   func(FlowIdentification)
}

func (p *pairer) add(f *FlowTrace) {
	gk := f.ClientIP + "|" + f.Server
	if a, ok := p.pending[gk]; ok {
		delete(p.pending, gk)
		p.dropOrder(gk)
		p.classify(FlowIdentification{A: a, B: f})
		return
	}
	if f.Trace != nil && f.Trace.Valid() {
		// A valid timed-out trace waits for its environment-B companion.
		if len(p.pending) >= p.maxPending {
			oldest := p.order[0]
			p.order = p.order[1:]
			a := p.pending[oldest]
			delete(p.pending, oldest)
			p.classify(FlowIdentification{A: a})
		}
		p.pending[gk] = f
		p.order = append(p.order, gk)
		return
	}
	p.classify(FlowIdentification{A: f})
}

func (p *pairer) dropOrder(gk string) {
	for i, k := range p.order {
		if k == gk {
			p.order = append(p.order[:i], p.order[i+1:]...)
			return
		}
	}
}

// flush classifies every flow still waiting for a companion.
func (p *pairer) flush() {
	for _, gk := range p.order {
		if a, ok := p.pending[gk]; ok {
			delete(p.pending, gk)
			p.classify(FlowIdentification{A: a})
		}
	}
	p.order = p.order[:0]
}

func (p *pairer) classify(fi FlowIdentification) {
	out := p.id.IdentifyResult(pairResult(&fi))
	out.Elapsed = fi.A.End.Sub(fi.A.Start)
	if fi.B != nil {
		out.Elapsed += fi.B.End.Sub(fi.B.Start)
	}
	fi.ID = out
	if p.onResult != nil {
		p.onResult(fi)
	}
}
