package flow

import (
	"testing"
	"time"

	"repro/internal/pcap"
	"repro/internal/telemetry"
)

// pkt builds a decoded TCP segment at ms milliseconds.
func pkt(ms int64, srcLast byte, srcPort uint16, dstLast byte, dstPort uint16, seq, ack uint32, flags uint8, payload int) *pcap.Packet {
	p := &pcap.Packet{
		Time:       time.Unix(1700000000, 0).Add(time.Duration(ms) * time.Millisecond),
		SrcPort:    srcPort,
		DstPort:    dstPort,
		Seq:        seq,
		Ack:        ack,
		Flags:      flags,
		PayloadLen: payload,
	}
	copy(p.SrcIP[:], v4(srcLast))
	copy(p.DstIP[:], v4(dstLast))
	return p
}

func v4(last byte) []byte {
	return []byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 10, 0, 0, last}
}

func TestDirectionAndRounds(t *testing.T) {
	tr := NewTracker(Config{DefaultRTT: 100 * time.Millisecond})
	const mss = 100
	// Client 10.0.0.1:4000 -> server 10.0.0.2:80. No handshake: the
	// DefaultRTT drives round bucketing (gap > 50ms splits rounds).
	seq := uint32(1000)
	send := func(ms int64, segs int) {
		for i := 0; i < segs; i++ {
			tr.Observe(pkt(ms, 2, 80, 1, 4000, seq, 1, pcap.FlagACK, mss))
			seq += mss
		}
	}
	send(0, 2)                                                    // round 1: w=2
	send(100, 4)                                                  // round 2: w=4
	send(200, 8)                                                  // round 3: w=8
	tr.Observe(pkt(300, 1, 4000, 2, 80, 1, seq, pcap.FlagACK, 0)) // pure ack, ignored for rounds

	flows := tr.Finish()
	if len(flows) != 1 {
		t.Fatalf("flows = %d", len(flows))
	}
	f := flows[0]
	if f.Server != "10.0.0.2:80" || f.Client != "10.0.0.1:4000" || f.ClientIP != "10.0.0.1" {
		t.Fatalf("endpoints: server %s client %s (%s)", f.Server, f.Client, f.ClientIP)
	}
	if f.Trace == nil || f.Trace.TimedOut {
		t.Fatalf("trace: %+v", f.Trace)
	}
	if want := []int{2, 4, 8}; len(f.Trace.Pre) != 3 || f.Trace.Pre[0] != 2 || f.Trace.Pre[1] != 4 || f.Trace.Pre[2] != 8 {
		t.Fatalf("pre = %v, want %v", f.Trace.Pre, want)
	}
	if f.MSS != mss {
		t.Fatalf("mss = %d (from max segment), want %d", f.MSS, mss)
	}
}

func TestTimeoutSplitsPrePost(t *testing.T) {
	tr := NewTracker(Config{DefaultRTT: 100 * time.Millisecond})
	const mss = 100
	base := uint32(1000)
	at := func(ms int64, seq uint32, n int) {
		for i := 0; i < n; i++ {
			tr.Observe(pkt(ms, 2, 80, 1, 4000, seq+uint32(i)*mss, 1, pcap.FlagACK, mss))
		}
	}
	at(0, base, 2)       // pre round 1: w=2
	at(100, base+200, 4) // pre round 2: w=4
	// Silence, then a retransmission of the last round's data: timeout.
	at(1300, base+200, 1) // post round 1: retransmit, w=0
	at(1400, base+600, 8) // post round 2: new data, w=8
	flows := tr.Finish()
	f := flows[0]
	if f.Trace == nil || !f.Trace.TimedOut {
		t.Fatalf("timeout not detected: %+v", f.Trace)
	}
	if len(f.Trace.Pre) != 2 || len(f.Trace.Post) != 2 {
		t.Fatalf("pre=%v post=%v", f.Trace.Pre, f.Trace.Post)
	}
	if f.Trace.Post[0] != 0 || f.Trace.Post[1] != 8 {
		t.Fatalf("post = %v, want [0 8]", f.Trace.Post)
	}
	if f.Retransmits != 1 {
		t.Fatalf("retransmits = %d", f.Retransmits)
	}
}

func TestHandshakeRTTDrivesBucketing(t *testing.T) {
	tr := NewTracker(Config{})
	const mss = 100
	// Handshake: SYN at 0, SYN-ACK at 0, client ACK at 1000ms -> RTT 1s.
	syn := pkt(0, 1, 4000, 2, 80, 99, 0, pcap.FlagSYN, 0)
	syn.Opt = pcap.TCPOptions{HasMSS: true, MSS: mss}
	tr.Observe(syn)
	tr.Observe(pkt(0, 2, 80, 1, 4000, 999, 100, pcap.FlagSYN|pcap.FlagACK, 0))
	tr.Observe(pkt(1000, 1, 4000, 2, 80, 100, 1000, pcap.FlagACK, 0))
	// Two bursts 400ms apart: under the 1s RTT estimate (gap threshold
	// 500ms) they are ONE round; with the 200ms default they would split.
	tr.Observe(pkt(1100, 2, 80, 1, 4000, 1000, 101, pcap.FlagACK, mss))
	tr.Observe(pkt(1500, 2, 80, 1, 4000, 1000+mss, 101, pcap.FlagACK, mss))
	// A true round boundary.
	tr.Observe(pkt(2600, 2, 80, 1, 4000, 1000+2*mss, 101, pcap.FlagACK, mss))
	flows := tr.Finish()
	f := flows[0]
	if f.RTT != time.Second {
		t.Fatalf("rtt = %s, want 1s", f.RTT)
	}
	if !f.SawSYN {
		t.Fatal("handshake not recorded")
	}
	if len(f.Trace.Pre) != 2 || f.Trace.Pre[0] != 2 || f.Trace.Pre[1] != 1 {
		t.Fatalf("pre = %v, want [2 1]", f.Trace.Pre)
	}
}

func TestTimestampRTTFallback(t *testing.T) {
	tr := NewTracker(Config{})
	const mss = 100
	// Mid-stream capture: no handshake. Data at t=0 carries TSVal 7;
	// the ack echoing it arrives 80ms later -> RTT sample 80ms.
	d := pkt(0, 2, 80, 1, 4000, 5000, 1, pcap.FlagACK, mss)
	d.Opt = pcap.TCPOptions{HasTS: true, TSVal: 7, TSEcr: 3}
	tr.Observe(d)
	a := pkt(80, 1, 4000, 2, 80, 1, 5000+mss, pcap.FlagACK, 0)
	a.Opt = pcap.TCPOptions{HasTS: true, TSVal: 4, TSEcr: 7}
	tr.Observe(a)
	flows := tr.Finish()
	if got := flows[0].RTT; got != 80*time.Millisecond {
		t.Fatalf("timestamp rtt = %s, want 80ms", got)
	}
}

func TestSequenceWraparound(t *testing.T) {
	tr := NewTracker(Config{DefaultRTT: 100 * time.Millisecond})
	const mss = 100
	start := uint32(0xffffff38) // 200 bytes below the wrap point
	tr.Observe(pkt(0, 2, 80, 1, 4000, start, 1, pcap.FlagACK, mss))
	tr.Observe(pkt(1, 2, 80, 1, 4000, start+mss, 1, pcap.FlagACK, mss)) // ends exactly at 0
	tr.Observe(pkt(100, 2, 80, 1, 4000, 0, 1, pcap.FlagACK, mss))       // wrapped
	tr.Observe(pkt(101, 2, 80, 1, 4000, mss, 1, pcap.FlagACK, mss))
	flows := tr.Finish()
	f := flows[0]
	if len(f.Trace.Pre) != 2 || f.Trace.Pre[0] != 2 || f.Trace.Pre[1] != 2 {
		t.Fatalf("pre = %v, want [2 2] across the wrap", f.Trace.Pre)
	}
	if f.Retransmits != 0 {
		t.Fatalf("wrap misread as retransmission: %d", f.Retransmits)
	}
}

func TestMaxFlowsEviction(t *testing.T) {
	tr := NewTracker(Config{MaxFlows: 4})
	for i := 0; i < 10; i++ {
		tr.Observe(pkt(int64(i), 2, 80, 1, uint16(4000+i), 1, 1, pcap.FlagACK, 10))
	}
	if got := tr.Stats().Evicted; got != 6 {
		t.Fatalf("evicted = %d, want 6", got)
	}
	flows := tr.Finish()
	if len(flows) != 10 {
		t.Fatalf("flows = %d, want 10 (evicted flows still emitted)", len(flows))
	}
	if tr.Stats().Flows != 10 {
		t.Fatalf("flows seen = %d", tr.Stats().Flows)
	}
}

func TestMaxRoundsTruncation(t *testing.T) {
	tr := NewTracker(Config{MaxRounds: 3, DefaultRTT: 10 * time.Millisecond})
	seq := uint32(0)
	for r := 0; r < 8; r++ {
		tr.Observe(pkt(int64(r*100), 2, 80, 1, 4000, seq, 1, pcap.FlagACK, 100))
		seq += 100
	}
	flows := tr.Finish()
	f := flows[0]
	if !f.Truncated || tr.Stats().Truncated != 1 {
		t.Fatalf("truncation not reported: %+v stats %+v", f, tr.Stats())
	}
	if len(f.Trace.Pre) != 3 {
		t.Fatalf("pre = %v, want 3 rounds", f.Trace.Pre)
	}
}

func TestMaxEmittedDropsFlows(t *testing.T) {
	tr := NewTracker(Config{MaxFlows: 2, MaxEmitted: 3})
	for i := 0; i < 8; i++ {
		tr.Observe(pkt(int64(i), 2, 80, 1, uint16(4000+i), 1, 1, pcap.FlagACK, 10))
	}
	flows := tr.Finish()
	if len(flows) != 3 {
		t.Fatalf("emitted %d flows, want 3", len(flows))
	}
	if tr.Stats().Dropped != 5 {
		t.Fatalf("dropped = %d, want 5", tr.Stats().Dropped)
	}
}

// TestEmittedTracesAreIndependent pins the Clone contract: the tracker
// reuses one recorder, so emitted traces must not share storage.
func TestEmittedTracesAreIndependent(t *testing.T) {
	tr := NewTracker(Config{DefaultRTT: 100 * time.Millisecond})
	for port := uint16(4000); port < 4002; port++ {
		seq := uint32(1000)
		n := int(port-4000)*3 + 2
		for i := 0; i < n; i++ {
			tr.Observe(pkt(int64(port-4000), 2, 80, 1, port, seq, 1, pcap.FlagACK, 100))
			seq += 100
		}
	}
	flows := tr.Finish()
	if len(flows) != 2 {
		t.Fatalf("flows = %d", len(flows))
	}
	if flows[0].Trace.Pre[0] == flows[1].Trace.Pre[0] {
		t.Fatalf("distinct flows decoded identically: %v vs %v", flows[0].Trace.Pre, flows[1].Trace.Pre)
	}
}

// TestMaxFlowsNeverExceedsBound pins the evict-before-insert fix: the
// tracker previously evicted only after insertion, so it briefly held
// MaxFlows+1 live flows, contradicting the Config.MaxFlows doc.
func TestMaxFlowsNeverExceedsBound(t *testing.T) {
	tr := NewTracker(Config{MaxFlows: 4})
	for i := 0; i < 10; i++ {
		tr.Observe(pkt(int64(i), 2, 80, 1, uint16(4000+i), 1, 1, pcap.FlagACK, 10))
		if live := tr.Live(); live > 4 {
			t.Fatalf("live flows = %d after packet %d, want <= 4", live, i)
		}
	}
	if got := tr.Stats().LiveHighWater; got != 4 {
		t.Fatalf("live high water = %d, want 4", got)
	}
}

// TestTimestampEchoZeroTSval pins the RFC 7323 fix: a peer whose
// timestamp clock starts at 0 sends TSVal 0, and the echo carrying
// TSecr 0 is a legitimate RTT sample, not "no echo".
func TestTimestampEchoZeroTSval(t *testing.T) {
	tr := NewTracker(Config{})
	const mss = 100
	d := pkt(0, 2, 80, 1, 4000, 5000, 1, pcap.FlagACK, mss)
	d.Opt = pcap.TCPOptions{HasTS: true, TSVal: 0, TSEcr: 3}
	tr.Observe(d)
	a := pkt(80, 1, 4000, 2, 80, 1, 5000+mss, pcap.FlagACK, 0)
	a.Opt = pcap.TCPOptions{HasTS: true, TSVal: 4, TSEcr: 0}
	tr.Observe(a)
	flows := tr.Finish()
	if got := flows[0].RTT; got != 80*time.Millisecond {
		t.Fatalf("timestamp rtt with TSval 0 = %s, want 80ms", got)
	}
}

// TestTimestampEchoIgnoredWithoutACK pins the other half of the RFC 7323
// rule: TSecr is undefined on segments without ACK, so a SYN whose echo
// field happens to match the peer's TSVal must not produce a sample.
func TestTimestampEchoIgnoredWithoutACK(t *testing.T) {
	tr := NewTracker(Config{})
	d := pkt(0, 2, 80, 1, 4000, 5000, 0, 0, 100) // no ACK flag
	d.Opt = pcap.TCPOptions{HasTS: true, TSVal: 9, TSEcr: 0}
	tr.Observe(d)
	e := pkt(80, 1, 4000, 2, 80, 1, 0, pcap.FlagSYN, 0) // SYN, no ACK
	e.Opt = pcap.TCPOptions{HasTS: true, TSVal: 4, TSEcr: 9}
	tr.Observe(e)
	flows := tr.Finish()
	if got := flows[0].RTT; got != 0 {
		t.Fatalf("rtt from ACK-less echo = %s, want 0", got)
	}
}

// TestMaxEmittedKeepsEarliest pins the drop policy the Config doc now
// states: once MaxEmitted flows have been emitted, later-finishing flows
// are dropped, so the earliest-finishing (oldest) flows are kept.
func TestMaxEmittedKeepsEarliest(t *testing.T) {
	tr := NewTracker(Config{MaxFlows: 2, MaxEmitted: 3})
	for i := 0; i < 8; i++ {
		tr.Observe(pkt(int64(i), 2, 80, 1, uint16(4000+i), 1, 1, pcap.FlagACK, 10))
	}
	flows := tr.Finish()
	if len(flows) != 3 {
		t.Fatalf("emitted %d flows, want 3", len(flows))
	}
	for i, f := range flows {
		want := "10.0.0.1:" + itoa(4000+i)
		if f.Client != want {
			t.Fatalf("kept flow %d = %s, want %s (earliest-finishing kept)", i, f.Client, want)
		}
	}
}

func itoa(n int) string {
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestMaxEmittedNegativeUnbounded pins the streaming escape hatch:
// MaxEmitted < 0 disables the cap entirely.
func TestMaxEmittedNegativeUnbounded(t *testing.T) {
	tr := NewTracker(Config{MaxFlows: 2, MaxEmitted: -1})
	for i := 0; i < 8; i++ {
		tr.Observe(pkt(int64(i), 2, 80, 1, uint16(4000+i), 1, 1, pcap.FlagACK, 10))
	}
	flows := tr.Finish()
	if len(flows) != 8 || tr.Stats().Dropped != 0 {
		t.Fatalf("emitted %d flows (dropped %d), want all 8", len(flows), tr.Stats().Dropped)
	}
}

// TestIdleExpiryEmitsMidStream exercises online mode: a flow that goes
// quiet is emitted by an epoch sweep while the stream is still running,
// long before Finish.
func TestIdleExpiryEmitsMidStream(t *testing.T) {
	tr := NewTracker(Config{Epoch: time.Second, IdleRTTs: 8, DefaultRTT: 100 * time.Millisecond})
	var m TrackerMetrics
	m.Live = &telemetry.Gauge{}
	m.LiveHighWater = &telemetry.Gauge{}
	m.Epochs = &telemetry.Counter{}
	m.Expired = &telemetry.Counter{}
	tr.Instrument(&m)
	var emitted []*FlowTrace
	tr.Stream(func(f *FlowTrace) { emitted = append(emitted, f) })

	// Flow A: two packets, then silence. Threshold max(8x100ms, 1s) = 1s.
	tr.Observe(pkt(0, 2, 80, 1, 4000, 100, 1, pcap.FlagACK, 100))
	tr.Observe(pkt(50, 2, 80, 1, 4000, 200, 1, pcap.FlagACK, 100))
	// Flow B keeps the clock moving for 5 captured seconds.
	seq := uint32(0)
	for ms := int64(100); ms <= 5000; ms += 100 {
		tr.Observe(pkt(ms, 2, 80, 1, 5000, seq, 1, pcap.FlagACK, 100))
		seq += 100
	}
	if len(emitted) != 1 {
		t.Fatalf("mid-stream emissions = %d, want 1 (flow A expired)", len(emitted))
	}
	if emitted[0].Client != "10.0.0.1:4000" {
		t.Fatalf("expired flow = %s, want flow A", emitted[0].Client)
	}
	st := tr.Stats()
	if st.Expired != 1 || st.Epochs == 0 {
		t.Fatalf("stats = %+v, want Expired 1 and Epochs > 0", st)
	}
	if m.Live.Load() != 1 || m.Expired.Load() != 1 || m.Epochs.Load() == 0 {
		t.Fatalf("metrics live=%d expired=%d epochs=%d", m.Live.Load(), m.Expired.Load(), m.Epochs.Load())
	}
	tr.Finish()
	if len(emitted) != 2 {
		t.Fatalf("total emissions = %d, want 2 (Finish drains flow B)", len(emitted))
	}
	if m.Live.Load() != 0 {
		t.Fatalf("live gauge after Finish = %d, want 0", m.Live.Load())
	}
}

// TestIdleResumeSplitsFlow pins the online split semantic: packets
// arriving after a flow's own expiry window start a fresh flow,
// independent of epoch phase.
func TestIdleResumeSplitsFlow(t *testing.T) {
	tr := NewTracker(Config{Epoch: time.Second, IdleRTTs: 8, DefaultRTT: 100 * time.Millisecond})
	var emitted []*FlowTrace
	tr.Stream(func(f *FlowTrace) { emitted = append(emitted, f) })
	tr.Observe(pkt(0, 2, 80, 1, 4000, 100, 1, pcap.FlagACK, 100))
	// Resumes 3s later, past the 1s threshold: must split.
	tr.Observe(pkt(3000, 2, 80, 1, 4000, 200, 1, pcap.FlagACK, 100))
	tr.Finish()
	if len(emitted) != 2 {
		t.Fatalf("flows = %d, want 2 (idle resume splits)", len(emitted))
	}
	if tr.Stats().Flows != 2 || tr.Stats().Expired != 1 {
		t.Fatalf("stats = %+v", tr.Stats())
	}
}

func TestPairUnpairedInvalid(t *testing.T) {
	// A lone no-timeout flow pairs with nothing and classifies invalid.
	tr := NewTracker(Config{DefaultRTT: 100 * time.Millisecond})
	tr.Observe(pkt(0, 2, 80, 1, 4000, 0, 1, pcap.FlagACK, 100))
	pairs := Pair(tr.Finish())
	if len(pairs) != 1 || pairs[0].B != nil {
		t.Fatalf("pairs = %+v", pairs)
	}
}
