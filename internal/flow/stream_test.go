package flow

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"net/netip"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/pcap"
	"repro/internal/pcapgen"
	"repro/internal/telemetry"
)

// pktEvent is one generated capture packet, before time-sorting.
type pktEvent struct {
	at    time.Duration
	spec  pcap.FrameSpec
	order int
}

// synthCapture generates a multi-flow classic pcap from a seed: flows
// with handshakes, data rounds, and occasional timeout signatures,
// interleaved in time. Every intra-flow gap stays under 900ms -- below
// the smallest online idle-expiry threshold (1s) -- so online and
// offline reconstruction must agree exactly.
func synthCapture(seed int64, nflows int) []byte {
	rng := rand.New(rand.NewSource(seed))
	base := time.Unix(1700000000, 0).UTC()
	var events []pktEvent
	order := 0
	add := func(at time.Duration, spec pcap.FrameSpec) {
		events = append(events, pktEvent{at: at, spec: spec, order: order})
		order++
	}
	for f := 0; f < nflows; f++ {
		// A handful of (client, server) groups so pairing has material.
		client := netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, byte(1 + f%4), byte(10 + f%50)}), uint16(40000+f))
		server := netip.AddrPortFrom(netip.AddrFrom4([4]byte{192, 168, 0, byte(1 + f%3)}), 80)
		start := time.Duration(rng.Intn(20000)) * time.Millisecond
		rtt := time.Duration(100+rng.Intn(200)) * time.Millisecond
		mss := uint16(500 + rng.Intn(1000))

		// Handshake.
		add(start, pcap.FrameSpec{Src: client, Dst: server, Seq: 0, Flags: pcap.FlagSYN,
			Opt: pcap.TCPOptions{HasMSS: true, MSS: mss}})
		add(start+rtt/2, pcap.FrameSpec{Src: server, Dst: client, Seq: 0, Ack: 1,
			Flags: pcap.FlagSYN | pcap.FlagACK, Opt: pcap.TCPOptions{HasMSS: true, MSS: mss}})
		add(start+rtt, pcap.FrameSpec{Src: client, Dst: server, Seq: 1, Ack: 1, Flags: pcap.FlagACK})

		// Data rounds from the server.
		at := start + rtt + time.Duration(rng.Intn(20))*time.Millisecond
		seq := uint32(1)
		w := 2
		rounds := 3 + rng.Intn(6)
		for r := 0; r < rounds; r++ {
			for i := 0; i < w; i++ {
				add(at+time.Duration(i)*time.Millisecond, pcap.FrameSpec{
					Src: server, Dst: client, Seq: seq, Ack: 1, Flags: pcap.FlagACK,
					PayloadLen: int(mss)})
				seq += uint32(mss)
			}
			at += rtt
			if w < 64 {
				w *= 2
			}
		}
		if rng.Intn(2) == 0 {
			// Timeout signature: silence then a retransmission.
			at += 3 * rtt
			add(at, pcap.FrameSpec{Src: server, Dst: client, Seq: seq - uint32(mss), Ack: 1,
				Flags: pcap.FlagACK, PayloadLen: int(mss)})
			add(at+rtt, pcap.FrameSpec{Src: server, Dst: client, Seq: seq, Ack: 1,
				Flags: pcap.FlagACK, PayloadLen: int(mss)})
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].order < events[j].order
	})
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf, pcap.LinkEthernet, 0)
	if err != nil {
		panic(err)
	}
	for i := range events {
		frame := pcap.AppendFrame(nil, &events[i].spec)
		if err := w.WritePacket(base.Add(events[i].at), len(frame), frame); err != nil {
			panic(err)
		}
	}
	return buf.Bytes()
}

// streamCollect runs data through a Stream and returns the emitted
// flows (sorted in capture order) and stats.
func streamCollect(t testing.TB, data []byte, cfg StreamConfig, chunk int) ([]*FlowTrace, CaptureStats) {
	t.Helper()
	var got []*FlowTrace
	st := NewStream(context.Background(), cfg, func(f *FlowTrace) { got = append(got, f) })
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		if _, err := st.Write(data[off:end]); err != nil {
			t.Fatalf("stream write: %v", err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("stream close: %v", err)
	}
	sortFlows(got)
	return got, st.Stats()
}

// equivalentFlows asserts the two flow sets are identical, trace for
// trace.
func equivalentFlows(t testing.TB, offline, online []*FlowTrace, label string) {
	t.Helper()
	if len(offline) != len(online) {
		t.Fatalf("%s: offline %d flows, online %d", label, len(offline), len(online))
	}
	for i := range offline {
		if !reflect.DeepEqual(offline[i], online[i]) {
			t.Fatalf("%s: flow %d diverged:\noffline %+v\n online %+v", label, i, *offline[i], *online[i])
		}
	}
}

// TestStreamMatchesOffline is the online == offline equivalence
// property: on the same capture, the sharded streaming pipeline (epoch
// expiry, incremental sinks, any shard count, any write chunking) must
// emit exactly the FlowTrace set the offline Finish path produces.
func TestStreamMatchesOffline(t *testing.T) {
	data := synthCapture(42, 40)
	cfg := Config{MaxFlows: 1 << 16, MaxEmitted: -1}
	offline, offStats, err := Reassemble(bytes.NewReader(data), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		for _, chunk := range []int{1777, 1 << 20} {
			online, stats := streamCollect(t, data, StreamConfig{
				Tracker: cfg, Shards: shards, RingBytes: 64 << 10, BatchPackets: 32}, chunk)
			label := "shards=" + itoa(shards) + " chunk=" + itoa(chunk)
			equivalentFlows(t, offline, online, label)
			if stats.Flows != offStats.Flows || stats.TCPSegments != offStats.TCPSegments ||
				stats.Packets != offStats.Packets {
				t.Fatalf("%s: stats %+v, offline %+v", label, stats, offStats)
			}
		}
	}
}

// TestStreamExpiryActuallyFires guards the equivalence test's teeth: on
// the synthetic captures, idle expiry must emit most flows mid-stream,
// not leave everything to the Finish drain.
func TestStreamExpiryActuallyFires(t *testing.T) {
	data := synthCapture(7, 40)
	var m StreamMetrics
	m.Tracker.Live = &telemetry.Gauge{}
	m.Tracker.LiveHighWater = &telemetry.Gauge{}
	m.Tracker.Epochs = &telemetry.Counter{}
	m.Tracker.Expired = &telemetry.Counter{}
	m.Flows = &telemetry.Counter{}
	_, stats := streamCollect(t, data, StreamConfig{
		Tracker: Config{MaxFlows: 1 << 16, MaxEmitted: -1}, Shards: 4, Metrics: &m}, 1<<20)
	if m.Tracker.Expired.Load() < stats.Flows/2 {
		t.Fatalf("only %d of %d flows idle-expired; capture spread should expire most", m.Tracker.Expired.Load(), stats.Flows)
	}
	if m.Tracker.Epochs.Load() == 0 || m.Tracker.LiveHighWater.Load() == 0 {
		t.Fatalf("epoch metrics not threaded: epochs=%d highwater=%d", m.Tracker.Epochs.Load(), m.Tracker.LiveHighWater.Load())
	}
	if m.Tracker.Live.Load() != 0 {
		t.Fatalf("live gauge after close = %d, want 0", m.Tracker.Live.Load())
	}
	if m.Flows.Load() != stats.Flows {
		t.Fatalf("flows counter %d, stats %d", m.Flows.Load(), stats.Flows)
	}
}

// FuzzOnlineOfflineEquivalence fuzzes the equivalence property over
// generated captures: whatever flow mix, timing spread, and shard count
// the seed picks, online must equal offline.
func FuzzOnlineOfflineEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(2))
	f.Add(int64(99), uint8(30), uint8(5))
	f.Add(int64(-7), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, nflows, shards uint8) {
		n := int(nflows)%48 + 1
		data := synthCapture(seed, n)
		cfg := Config{MaxFlows: 1 << 16, MaxEmitted: -1}
		offline, _, err := Reassemble(bytes.NewReader(data), cfg)
		if err != nil {
			t.Fatal(err)
		}
		online, _ := streamCollect(t, data, StreamConfig{
			Tracker: cfg, Shards: int(shards)%8 + 1, RingBytes: 32 << 10}, 4096)
		equivalentFlows(t, offline, online, "fuzz")
	})
}

// TestStreamSoakLiveFlowsBounded is the 100k-concurrent-flow soak: two
// waves of 110k flows each pass through the pipeline, and the live-flow
// gauge must plateau at one wave's width -- idle expiry reclaims wave
// one before wave two peaks, so memory stays flat instead of growing
// with total flows seen.
func TestStreamSoakLiveFlowsBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const wave = 110_000
	base := time.Unix(1700000000, 0).UTC()
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf, pcap.LinkEthernet, 0)
	if err != nil {
		t.Fatal(err)
	}
	server := netip.AddrPortFrom(netip.AddrFrom4([4]byte{192, 168, 0, 1}), 80)
	var frame []byte
	writeWave := func(start time.Duration) {
		// All of a wave's flows are concurrently live: every flow sends
		// at start and again 900ms later, then goes idle.
		for pass := 0; pass < 2; pass++ {
			at := start + time.Duration(pass)*900*time.Millisecond
			for i := 0; i < wave; i++ {
				client := netip.AddrPortFrom(
					netip.AddrFrom4([4]byte{10, 1, byte(i >> 16), byte(i >> 8)}), uint16(20000+i%256))
				frame = pcap.AppendFrame(frame[:0], &pcap.FrameSpec{
					Src: server, Dst: client, Seq: uint32(pass * 100), Ack: 1,
					Flags: pcap.FlagACK, PayloadLen: 100})
				if err := w.WritePacket(base.Add(at), len(frame), frame); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Heartbeats move capture time 4s forward so epoch sweeps expire
		// the wave (threshold: max(8 x 200ms DefaultRTT, 1s) = 1.6s).
		hb := netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 9, 9, 9}), 9999)
		for ms := int64(1000); ms <= 4800; ms += 200 {
			frame = pcap.AppendFrame(frame[:0], &pcap.FrameSpec{
				Src: hb, Dst: server, Seq: uint32(ms), Ack: 1, Flags: pcap.FlagACK, PayloadLen: 1})
			if err := w.WritePacket(base.Add(start+time.Duration(ms)*time.Millisecond), len(frame), frame); err != nil {
				t.Fatal(err)
			}
		}
	}
	writeWave(0)
	writeWave(6 * time.Second)

	var m StreamMetrics
	m.Tracker.Live = &telemetry.Gauge{}
	m.Tracker.LiveHighWater = &telemetry.Gauge{}
	m.Tracker.Expired = &telemetry.Counter{}
	var flows int64
	st := NewStream(context.Background(), StreamConfig{
		Tracker: Config{MaxFlows: 200_000},
		Metrics: &m,
	}, func(*FlowTrace) { flows++ })
	if _, err := io.Copy(st, bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	high := m.Tracker.LiveHighWater.Load()
	if high < 100_000 {
		t.Fatalf("live high water %d, want >= 100k concurrent flows", high)
	}
	if high > wave+4096 {
		t.Fatalf("live high water %d for %d-flow waves: wave one was not reclaimed (gauge not flat)", high, wave)
	}
	if m.Tracker.Live.Load() != 0 {
		t.Fatalf("live gauge after close = %d, want 0", m.Tracker.Live.Load())
	}
	if got := st.Stats().Flows; got < 2*wave {
		t.Fatalf("flows tracked = %d, want >= %d", got, 2*wave)
	}
	if flows != st.Stats().Flows-st.Stats().DroppedFlows {
		t.Fatalf("emitted %d flows, stats %+v", flows, st.Stats())
	}
}

// TestStreamAbortUnblocksWriter pins cancellation: a producer blocked
// on a full ring must unwind promptly when the stream aborts.
func TestStreamAbortUnblocksWriter(t *testing.T) {
	st := NewStream(context.Background(), StreamConfig{RingBytes: 4 << 10}, func(*FlowTrace) {})
	// No valid pcap header: the decoder waits for bytes forever, so
	// writes beyond the ring capacity block.
	junk := make([]byte, 64<<10)
	done := make(chan error, 1)
	go func() {
		_, err := st.Write(junk)
		done <- err
	}()
	boom := errors.New("client went away")
	st.Abort(boom)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("blocked Write returned nil after Abort")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Write still blocked after Abort")
	}
}

// TestStreamContextCancelUnblocks pins the other cancellation path: the
// caller's context, not an explicit Abort.
func TestStreamContextCancelUnblocks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	st := NewStream(ctx, StreamConfig{RingBytes: 4 << 10}, func(*FlowTrace) {})
	junk := make([]byte, 64<<10)
	done := make(chan error, 1)
	go func() {
		_, err := st.Write(junk)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("blocked Write returned nil after context cancel")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Write still blocked after context cancel")
	}
	if err := st.Close(); err == nil {
		t.Fatal("Close after cancel returned nil error")
	}
}

// TestIdentifyStreamMatchesOffline runs a real multi-server pcapgen
// capture through the streaming classify path and expects the same
// label per server as the offline IdentifyCapture path.
func TestIdentifyStreamMatchesOffline(t *testing.T) {
	model := loadGoldenModel(t)
	specs := []pcapgen.ServerSpec{
		{Algorithm: "RENO", Seed: 21},
		{Algorithm: "CUBIC2", Seed: 22},
		{Algorithm: "VEGAS", Seed: 23},
	}
	var buf bytes.Buffer
	if _, err := pcapgen.Generate(&buf, specs, pcapgen.Options{}); err != nil {
		t.Fatal(err)
	}
	pairs, _, err := IdentifyCapture(bytes.NewReader(buf.Bytes()), model, IdentifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for _, p := range pairs {
		want[p.A.Server] = p.ID.Label
	}

	got := map[string]string{}
	var nResults int
	st := NewIdentifyStream(context.Background(), model, IdentifyStreamOptions{}, func(fi FlowIdentification) {
		nResults++
		if fi.B != nil { // the paired (A,B) identification carries the label
			got[fi.A.Server] = fi.ID.Label
		}
	})
	if _, err := io.Copy(st, bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if nResults != len(pairs) {
		t.Fatalf("stream produced %d results, offline %d", nResults, len(pairs))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed labels %v, offline %v", got, want)
	}
}
