package flow

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"repro/internal/pcap"
	"repro/internal/pcapgen"
	"repro/internal/probe"
)

// FuzzReassemble drives the decoder and the flow tracker end to end with
// arbitrary bytes under tight memory bounds: garbage must produce errors
// or empty results -- never a panic, a hang, or memory beyond the
// configured flow/round caps.
func FuzzReassemble(f *testing.F) {
	var seed bytes.Buffer
	if _, err := pcapgen.Generate(&seed, []pcapgen.ServerSpec{{Algorithm: "RENO", Seed: 3}},
		pcapgen.Options{Probe: probe.Config{WmaxLadder: []int{64}, MaxPreRounds: 16}}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add(seed.Bytes()[:80])
	f.Add([]byte{})

	cfg := Config{MaxFlows: 16, MaxRounds: 32, MaxEmitted: 64, DefaultRTT: 50 * time.Millisecond}
	f.Fuzz(func(t *testing.T, data []byte) {
		flows, stats, err := Reassemble(bytes.NewReader(data), cfg)
		if err != nil {
			_ = err.Error()
		}
		if len(flows) > cfg.MaxEmitted {
			t.Fatalf("emitted %d flows past the %d bound", len(flows), cfg.MaxEmitted)
		}
		for _, fl := range flows {
			if fl.Trace == nil {
				continue
			}
			if len(fl.Trace.Pre)+len(fl.Trace.Post) > cfg.MaxRounds {
				t.Fatalf("flow recorded %d rounds past the %d bound",
					len(fl.Trace.Pre)+len(fl.Trace.Post), cfg.MaxRounds)
			}
		}
		if stats.Classifiable > stats.Flows {
			t.Fatalf("inconsistent stats %+v", stats)
		}
		// Pairing must hold up on whatever came out of the tracker.
		if pairs := Pair(flows); len(pairs) > len(flows) {
			t.Fatalf("%d pairs from %d flows", len(pairs), len(flows))
		}
	})
}

// FuzzDecodeStats cross-checks that the decoder's counters account for
// every record it read, whatever the input.
func FuzzDecodeStats(f *testing.F) {
	var buf bytes.Buffer
	w, _ := pcap.NewWriter(&buf, pcap.LinkEthernet, 96)
	frame := pcap.AppendFrame(nil, &pcap.FrameSpec{
		Src:   netip.MustParseAddrPort("10.0.0.1:40000"),
		Dst:   netip.MustParseAddrPort("10.0.0.2:80"),
		Flags: pcap.FlagSYN,
	})
	_ = w.WritePacket(time.Unix(0, 0), len(frame), frame)
	f.Add(buf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := pcap.NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var pkt pcap.Packet
		for {
			if err := r.Next(&pkt); err != nil {
				break
			}
		}
		s := r.Stats()
		if s.TCP+s.Skipped+s.Truncated != s.Packets {
			t.Fatalf("stats do not add up: %+v", s)
		}
	})
}
