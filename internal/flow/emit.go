package flow

import (
	"fmt"
	"time"

	"repro/internal/probe"
	"repro/internal/trace"
)

// FlowTrace is one reconstructed flow: its endpoints, transport
// statistics, and -- when the flow carried data -- the per-RTT window
// trace in the shape the classifier pipeline consumes.
type FlowTrace struct {
	// Client and Server are "ip:port" endpoints; the server is the side
	// that sent the bulk of the data.
	Client string
	Server string
	// ClientIP is the client address without the port (flow pairing
	// groups the connections one client makes to one server).
	ClientIP string
	// Trace is the reconstructed window trace (nil when the flow carried
	// no data). Env is assigned during pairing; WmaxThreshold is the
	// ladder estimate derived from the pre-timeout peak.
	Trace *trace.Trace
	// Packets, DataPackets and Retransmits count both directions,
	// the data direction, and its retransmissions.
	Packets     int64
	DataPackets int64
	Retransmits int64
	Rounds      int
	// RTT is the flow's estimate (handshake, else timestamp echo; 0 when
	// neither was available).
	RTT time.Duration
	// Start and End delimit the flow's activity in capture time.
	Start time.Time
	End   time.Time
	// MSS is the negotiated segment size estimate.
	MSS int
	// Truncated reports that round recording hit the MaxRounds bound.
	Truncated bool
	// SawSYN reports whether the capture included the flow's handshake.
	SawSYN bool
}

// String renders a compact one-line summary.
func (f *FlowTrace) String() string {
	tr := "no data"
	if f.Trace != nil {
		tr = fmt.Sprintf("pre=%d post=%d timeout=%v", len(f.Trace.Pre), len(f.Trace.Post), f.Trace.TimedOut)
	}
	return fmt.Sprintf("%s -> %s pkts=%d rtt=%s %s", f.Client, f.Server, f.Packets, f.RTT, tr)
}

// finalize turns one tracked flow into its FlowTrace.
func (t *Tracker) finalize(s *state) *FlowTrace {
	// The data direction (the "server") is the side that sent more
	// payload; ties go to the SYN-ACK sender when the handshake was seen.
	dataDir := 0
	switch {
	case s.dirs[1].dataBytes > s.dirs[0].dataBytes:
		dataDir = 1
	case s.dirs[1].dataBytes == s.dirs[0].dataBytes && s.synDir == 0:
		dataDir = 1
	}
	d := &s.dirs[dataDir]
	t.closeRound(d)

	ft := &FlowTrace{
		Client:      s.key.sideString(1 - dataDir),
		Server:      s.key.sideString(dataDir),
		ClientIP:    s.key.sideIP(1 - dataDir),
		Packets:     s.dirs[0].packets + s.dirs[1].packets,
		DataPackets: d.packets,
		Retransmits: d.retx,
		Rounds:      len(d.rounds),
		RTT:         s.rtt(),
		Start:       s.first,
		End:         s.last,
		MSS:         negotiatedMSS(s),
		Truncated:   d.truncated,
		SawSYN:      s.sawSYN,
	}
	if len(d.rounds) == 0 || ft.MSS <= 0 {
		return ft // no data: flow summary only
	}

	// Build the window trace in the reused recorder, then clone it out:
	// the recorder's buffers are recycled for the next flow (the
	// trace.Recorder ownership contract).
	tr := t.rec.Reset("", 0, ft.MSS)
	mss := int64(ft.MSS)
	for i, r := range d.rounds {
		// Rounded division: clean captures carry exact multiples of the
		// MSS; rounding absorbs odd-sized tail segments in real traffic.
		w := int((r.newBytes + mss/2) / mss)
		if d.timeoutRound >= 0 && i >= d.timeoutRound {
			tr.Post = append(tr.Post, w)
		} else {
			tr.Pre = append(tr.Pre, w)
		}
	}
	tr.TimedOut = d.timeoutRound >= 0
	tr.WmaxThreshold = estimateWmax(tr)
	ft.Trace = tr.Clone()
	return ft
}

// estimateWmax infers the prober's wmax threshold from a reconstructed
// trace: the timeout fired when the window first exceeded the threshold,
// so the largest standard ladder value below the pre-timeout peak is the
// best estimate (exact whenever the peak did not overshoot past the next
// ladder rung, which clean slow-start paths do not). Without a timeout
// the peak window itself is reported.
func estimateWmax(tr *trace.Trace) int {
	if !tr.TimedOut || len(tr.Pre) == 0 {
		return tr.MaxWindow()
	}
	wTmo := tr.Pre[len(tr.Pre)-1]
	for _, rung := range probe.DefaultWmaxLadder {
		if rung < wTmo {
			return rung
		}
	}
	if wTmo > 1 {
		return wTmo - 1
	}
	return 1
}

// sideString renders key side i (0 = a, 1 = b) as "ip:port".
func (k *flowKey) sideString(i int) string {
	if i == 0 {
		return k.a.String()
	}
	return k.b.String()
}

// sideIP renders key side i's address without the port.
func (k *flowKey) sideIP(i int) string {
	e := k.a
	if i == 1 {
		e = k.b
	}
	e.port = 0
	s := e.String()
	// Strip the ":0" port suffix AddrPort rendering appends.
	return s[:len(s)-2]
}

// negotiatedMSS estimates the segment size: the smaller of the two SYN
// MSS options, else the largest data segment observed.
func negotiatedMSS(s *state) int {
	a, b := s.dirs[0].mssOpt, s.dirs[1].mssOpt
	switch {
	case a > 0 && b > 0:
		if a < b {
			return int(a)
		}
		return int(b)
	case a > 0:
		return int(a)
	case b > 0:
		return int(b)
	}
	d := s.dirs[0].maxSegLen
	if s.dirs[1].maxSegLen > d {
		d = s.dirs[1].maxSegLen
	}
	return d
}
