// Package xrand provides a cheap deterministic random source for the
// identification hot path. math/rand's default lagged-Fibonacci source
// burns ~600 multiplications seeding its 607-word state, which profiles
// showed costing ~5% of a cache-miss identification (the service seeds one
// RNG per request, the engine one per batch job). The SplitMix64 generator
// here seeds in O(1), draws faster, and passes through the standard
// *rand.Rand front end so every consumer keeps its signature.
//
// Streams are deterministic per seed (the repo-wide reproducibility
// contract) but differ from math/rand's streams for the same seed. The
// identification paths (service requests, engine batch jobs, the census
// runner — and therefore the regenerated Table IV) draw from this source;
// training-set generation intentionally stays on math/rand so trained and
// published models are bit-identical to earlier builds.
package xrand

import "math/rand"

// source implements rand.Source64 with the SplitMix64 generator
// (Steele, Lea, Flood 2014) -- 64-bit state, O(1) seeding, passes BigCrush.
type source struct {
	state uint64
}

var _ rand.Source64 = (*source)(nil)

func (s *source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *source) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *source) Seed(seed int64) { s.state = uint64(seed) }

// New returns a *rand.Rand over a SplitMix64 source seeded with seed.
func New(seed int64) *rand.Rand { return rand.New(&source{state: uint64(seed)}) }

// Reseed rewinds r -- which must come from New -- to the exact stream
// New(seed) produces. Per-job paths (the engine's batch workers) keep one
// RNG per worker and reseed it between jobs instead of paying New's two
// allocations per job.
func Reseed(r *rand.Rand, seed int64) { r.Seed(seed) }
