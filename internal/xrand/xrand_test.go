package xrand

import "testing"

// TestStreamsDeterministicPerSeed: the identify-path RNG is a pure
// function of its seed — the repo-wide reproducibility contract every
// seeded path (service requests, engine batch jobs, eval trials) builds
// on.
func TestStreamsDeterministicPerSeed(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 4096; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at draw %d", i)
		}
	}
}

// TestStreamsDistinctAcrossSeeds: neighbouring seeds (the engine derives
// per-job seeds by small strides) must produce distinct streams.
func TestStreamsDistinctAcrossSeeds(t *testing.T) {
	for _, delta := range []int64{1, 2, 15485863, 6700417} {
		a, b := New(1000), New(1000+delta)
		same := 0
		const n = 1024
		for i := 0; i < n; i++ {
			if a.Uint64() == b.Uint64() {
				same++
			}
		}
		if same > 0 {
			t.Fatalf("seeds 1000 and %d share %d/%d draws", 1000+delta, same, n)
		}
	}
}

// TestInt63NonNegative: the rand.Source contract.
func TestInt63NonNegative(t *testing.T) {
	s := &source{state: 42}
	for i := 0; i < 4096; i++ {
		if v := s.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative %d", v)
		}
	}
}

// TestFrontEndUsable: the *rand.Rand front end draws through the
// SplitMix64 source (spot-check the [0,1) and Intn contracts).
func TestFrontEndUsable(t *testing.T) {
	r := New(7)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if n := r.Intn(10); n < 0 || n >= 10 {
			t.Fatalf("Intn out of range: %v", n)
		}
	}
}

// TestReseedMatchesNew: a reseeded RNG must be indistinguishable from a
// freshly constructed one -- the engine's per-worker RNG reuse leans on
// this to keep batch results a pure function of the per-job seed.
func TestReseedMatchesNew(t *testing.T) {
	r := New(0)
	for _, seed := range []int64{1, 42, -7, 15485863} {
		r.Uint64() // advance so Reseed must actually rewind
		Reseed(r, seed)
		fresh := New(seed)
		for i := 0; i < 1024; i++ {
			if r.Uint64() != fresh.Uint64() {
				t.Fatalf("seed %d: reseeded stream diverged from New at draw %d", seed, i)
			}
		}
	}
}
