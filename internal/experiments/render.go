package experiments

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// AsciiChart renders one or more integer series as a fixed-size ASCII
// chart (used for the Fig. 3 trace gallery and the special-trace figures).
func AsciiChart(title string, series map[string][]int, height int) string {
	if height <= 0 {
		height = 12
	}
	maxLen, maxVal := 0, 1
	for _, s := range series {
		if len(s) > maxLen {
			maxLen = len(s)
		}
		for _, v := range s {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	names := make([]string, 0, len(series))
	for n := range series {
		names = append(names, n)
	}
	// Stable glyph assignment by insertion-sorted name order.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	glyphs := "*+ox#@%&"
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", maxLen))
	}
	for gi, n := range names {
		g := glyphs[gi%len(glyphs)]
		for x, v := range series[n] {
			row := height - 1 - v*(height-1)/maxVal
			grid[row][x] = g
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (y max %d packets, x = RTT rounds)\n", title, maxVal)
	for gi, n := range names {
		fmt.Fprintf(&b, "  %c = %s\n", glyphs[gi%len(glyphs)], n)
	}
	for r, row := range grid {
		y := (height - 1 - r) * maxVal / (height - 1)
		fmt.Fprintf(&b, "%6d |%s|\n", y, string(row))
	}
	return b.String()
}

// CDFTable renders an ECDF as a two-column table of (value, cumulative %).
func CDFTable(title, unit string, e *stats.ECDF) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%14s %12s\n", title, unit, "CDF")
	for _, a := range e.Points() {
		fmt.Fprintf(&b, "%14.4f %11.1f%%\n", a.Value, a.Cum*100)
	}
	return b.String()
}

// percent formats a ratio as a percentage string.
func percent(n, total int) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f%%", 100*float64(n)/float64(total))
}
