package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cc"
	"repro/internal/census"
	"repro/internal/core"
	"repro/internal/forest"
	"repro/internal/ml"
)

// TableI renders the catalogue of TCP algorithms per OS family.
func TableI() string {
	var b strings.Builder
	b.WriteString("Table I: TCP algorithms available in major OS families\n")
	fmt.Fprintf(&b, "%-10s %-15s %-8s %s\n", "algorithm", "family", "default", "description")
	for _, info := range cc.All() {
		def := ""
		if info.Default {
			def = "yes"
		}
		fmt.Fprintf(&b, "%-10s %-15s %-8s %s\n", info.Name, info.Family, def, info.Description)
	}
	return b.String()
}

// TableII renders the minimum segment size acceptance shares.
func TableII(ctx *Context) string {
	cfg := census.DefaultPopulationConfig()
	cfg.Servers = ctx.CensusServers
	pop := census.GeneratePopulation(cfg)
	counts := map[int]int{}
	for _, gt := range pop {
		counts[gt.Server.MinMSS]++
	}
	var b strings.Builder
	b.WriteString("Table II: minimum segment sizes of Web servers\n")
	for _, mss := range []int{100, 300, 536, 1460} {
		fmt.Fprintf(&b, "  mss >= %4d B: %s\n", mss, percent(counts[mss], len(pop)))
	}
	return b.String()
}

// TableIIIResult carries the cross-validation confusion matrix.
type TableIIIResult struct {
	Matrix   *forest.ConfusionMatrix
	Accuracy float64
}

// TableIII runs the paper's 10-fold cross validation at K=80, F=4 and
// returns the per-algorithm confusion matrix (paper overall: 96.98%).
func TableIII(ctx *Context) (*TableIIIResult, error) {
	ds, err := ctx.TrainingSet()
	if err != nil {
		return nil, err
	}
	m := forest.CrossValidate(ds, forest.Config{Trees: 80, Subspace: 4, Seed: ctx.Seed + 31}, ctx.Folds, ctx.rng(333))
	return &TableIIIResult{Matrix: m, Accuracy: m.Accuracy()}, nil
}

// String renders Table III.
func (r *TableIIIResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III: identification accuracy per TCP algorithm (overall %.2f%%, paper: 96.98%%)\n", r.Accuracy*100)
	b.WriteString(r.Matrix.String())
	return b.String()
}

// Fig12Point is one (K, F) accuracy measurement.
type Fig12Point struct {
	Trees    int
	Subspace int
	Accuracy float64
}

// Fig12 sweeps the two random forest parameters with k-fold cross
// validation: accuracy should rise with K and flatten by K~80, and be
// nearly flat in F.
func Fig12(ctx *Context, trees []int, subspaces []int) ([]Fig12Point, string, error) {
	if len(trees) == 0 {
		trees = []int{1, 2, 5, 10, 20, 40, 80, 100}
	}
	if len(subspaces) == 0 {
		subspaces = []int{1, 2, 3, 4, 5, 6, 7}
	}
	ds, err := ctx.TrainingSet()
	if err != nil {
		return nil, "", err
	}
	var out []Fig12Point
	var b strings.Builder
	b.WriteString("Fig. 12: cross-validation accuracy vs random forest parameters\n")
	fmt.Fprintf(&b, "%8s", "K \\ F")
	for _, f := range subspaces {
		fmt.Fprintf(&b, "%8d", f)
	}
	b.WriteByte('\n')
	for _, k := range trees {
		fmt.Fprintf(&b, "%8d", k)
		for _, f := range subspaces {
			m := forest.CrossValidate(ds, forest.Config{Trees: k, Subspace: f, Seed: ctx.Seed + int64(k*100+f)}, ctx.Folds, ctx.rng(int64(k*31+f)))
			acc := m.Accuracy()
			out = append(out, Fig12Point{Trees: k, Subspace: f, Accuracy: acc})
			fmt.Fprintf(&b, "%7.2f%%", acc*100)
		}
		b.WriteByte('\n')
	}
	return out, b.String(), nil
}

// TableIVResult carries the census report.
type TableIVResult struct {
	Report *census.Report
}

// TableIV runs the full census: population generation, ladder probing of
// every server, special-case detection, classification with the Unsure
// rule, and aggregation in the paper's layout.
func TableIV(ctx *Context) (*TableIVResult, error) {
	model, err := ctx.Model()
	if err != nil {
		return nil, err
	}
	cfg := census.DefaultPopulationConfig()
	cfg.Servers = ctx.CensusServers
	cfg.Seed = ctx.Seed + 77
	pop := census.GeneratePopulation(cfg)
	report := census.Run(pop, core.NewIdentifier(model), ctx.DB, census.RunConfig{Seed: ctx.Seed + 99})
	return &TableIVResult{Report: report}, nil
}

// String renders Table IV plus the ground-truth check the paper could not
// perform (we know the simulated truth).
func (r *TableIVResult) String() string {
	var b strings.Builder
	b.WriteString("Table IV: identification results of Web servers\n")
	b.WriteString(r.Report.TableIV())
	fmt.Fprintf(&b, "ground-truth agreement on ordinary valid traces: %.2f%%\n", r.Report.Accuracy()*100)
	return b.String()
}

// ClassifierComparison reproduces the paper's Weka classifier comparison:
// random forest against k-NN, naive Bayes, and a single decision tree on a
// held-out split of the training set (random forest should win).
func ClassifierComparison(ctx *Context) (map[string]float64, string, error) {
	ds, err := ctx.TrainingSet()
	if err != nil {
		return nil, "", err
	}
	train, test := ml.Split(ds, 0.3, ctx.rng(444))
	classifiers := []ml.Classifier{
		forest.Train(train, forest.Config{Trees: 80, Subspace: 4, Seed: ctx.Seed + 5}),
		ml.NewKNN(train, 5),
		ml.NewNaiveBayes(train),
		ml.NewSingleTree(train, ctx.Seed+6),
		ml.NewMLP(train, ml.MLPConfig{Seed: ctx.Seed + 7}),
		ml.NewLinearSVM(train, ml.SVMConfig{Seed: ctx.Seed + 8}),
	}
	acc := make(map[string]float64, len(classifiers))
	var b strings.Builder
	b.WriteString("Classifier comparison (held-out 30% split)\n")
	for _, c := range classifiers {
		a := ml.Evaluate(c, test)
		acc[c.Name()] = a
		fmt.Fprintf(&b, "  %-14s %.2f%%\n", c.Name(), a*100)
	}
	return acc, b.String(), nil
}
