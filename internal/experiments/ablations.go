package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/probe"
	"repro/internal/websim"
)

// AblationResult reports one design-choice ablation: the identification
// accuracy with the mechanism on versus off.
type AblationResult struct {
	Name      string
	With      float64
	Without   float64
	Trials    int
	Mechanism string
}

// String renders the ablation outcome.
func (a AblationResult) String() string {
	return fmt.Sprintf("%-22s with: %6.2f%%   without: %6.2f%%   (%d trials; %s)",
		a.Name, a.With*100, a.Without*100, a.Trials, a.Mechanism)
}

// ablationTrials runs repeated identifications of servers produced by mk
// under two probe configurations and reports the accuracy of each.
func ablationTrials(ctx *Context, name, mechanism string, trials int, mk func(i int) (*websim.Server, string), withCfg, withoutCfg probe.Config) (AblationResult, error) {
	model, err := ctx.Model()
	if err != nil {
		return AblationResult{}, err
	}
	id := core.NewIdentifier(model)
	run := func(cfg probe.Config, salt int64) float64 {
		correct := 0
		for i := 0; i < trials; i++ {
			rng := ctx.rng(salt + int64(i)*17)
			cond := ctx.DB.Sample(rng)
			server, truth := mk(i)
			got := id.Identify(server, cond, cfg, rng)
			if got.Valid && got.Label == core.TrainingLabel(truth, got.Wmax) {
				correct++
			}
		}
		return float64(correct) / float64(trials)
	}
	return AblationResult{
		Name:      name,
		Mechanism: mechanism,
		Trials:    trials,
		With:      run(withCfg, 1000),
		Without:   run(withoutCfg, 2000),
	}, nil
}

// AblationFRTO measures the F-RTO duplicate-ACK counter-measure
// (Section IV-C): identifying F-RTO servers with and without the dup ACK.
func AblationFRTO(ctx *Context, trials int) (AblationResult, error) {
	mk := func(i int) (*websim.Server, string) {
		alg := []string{"RENO", "CUBIC2", "BIC", "HTCP"}[i%4]
		s := websim.Testbed(alg)
		s.FRTO = true
		return s, alg
	}
	return ablationTrials(ctx, "F-RTO dup-ACK", "dup ACK after the emulated timeout defuses spurious-RTO detection",
		trials, mk, probe.Config{}, probe.Config{DisableDupAck: true})
}

// AblationInterEnvWait measures the 10-minute wait between environments
// for servers that cache the slow start threshold (Section IV-C).
func AblationInterEnvWait(ctx *Context, trials int) (AblationResult, error) {
	mk := func(i int) (*websim.Server, string) {
		alg := []string{"RENO", "CUBIC2", "STCP", "HSTCP"}[i%4]
		s := websim.Testbed(alg)
		s.SsthreshCaching = true
		s.CacheTTL = 5 * time.Minute
		return s, alg
	}
	return ablationTrials(ctx, "inter-env wait", "waiting 10 min between environments lets ssthresh caches expire",
		trials, mk, probe.Config{}, probe.Config{InterEnvWait: time.Second})
}

// AblationPageSearch measures the long-page searching tool: identification
// of servers whose default page is short but which host a long page.
func AblationPageSearch(ctx *Context, trials int) (AblationResult, error) {
	mk := func(i int) (*websim.Server, string) {
		alg := []string{"CUBIC2", "BIC", "RENO", "CTCP1"}[i%4]
		s := websim.Testbed(alg)
		s.DefaultPageBytes = 40 << 10 // 40 kB default page
		s.LongestPageBytes = 8 << 20  // 8 MB page the tool can find
		return s, alg
	}
	return ablationTrials(ctx, "page search", "finding a long page supplies enough data for 28+ RTTs of windows",
		trials, mk, probe.Config{}, probe.Config{DisablePageSearch: true})
}

// AblationEnvB measures the need for the second network environment: the
// paper argues A alone cannot distinguish all algorithms (e.g. RENO vs
// VEGAS, STCP vs YEAH, CTCP1 vs CTCP2). We compare full A+B feature
// vectors against vectors whose B features are blanked.
func AblationEnvB(ctx *Context, trials int) (AblationResult, error) {
	model, err := ctx.Model()
	if err != nil {
		return AblationResult{}, err
	}
	id := core.NewIdentifier(model)
	pairs := []string{"VEGAS", "RENO", "YEAH", "STCP", "CTCP1", "CTCP2"}
	run := func(blankB bool, salt int64) float64 {
		correct := 0
		for i := 0; i < trials; i++ {
			alg := pairs[i%len(pairs)]
			rng := ctx.rng(salt + int64(i)*13)
			cond := ctx.DB.Sample(rng)
			p := probe.New(probe.Config{}, cond, rng)
			res := p.Gather(websim.Testbed(alg))
			if !res.Valid {
				continue
			}
			if blankB {
				res.TraceB = nil
			}
			got := id.IdentifyResult(res)
			if got.Label == core.TrainingLabel(alg, got.Wmax) {
				correct++
			}
		}
		return float64(correct) / float64(trials)
	}
	return AblationResult{
		Name:      "environment B",
		Mechanism: "the varying-RTT environment separates delay-sensitive algorithms",
		Trials:    trials,
		With:      run(false, 5000),
		Without:   run(true, 6000),
	}, nil
}

// Ablations runs all four mechanism ablations.
func Ablations(ctx *Context, trials int) (string, error) {
	if trials <= 0 {
		trials = 40
	}
	var b strings.Builder
	b.WriteString("Design-choice ablations\n")
	for _, f := range []func(*Context, int) (AblationResult, error){
		AblationFRTO, AblationInterEnvWait, AblationPageSearch, AblationEnvB,
	} {
		res, err := f(ctx, trials)
		if err != nil {
			return "", err
		}
		b.WriteString("  " + res.String() + "\n")
	}
	return b.String(), nil
}
