package experiments

import (
	"strings"
	"testing"

	"repro/internal/feature"
	"repro/internal/trace"
)

// quickCtx caches one reduced-scale context (training is the slow part).
var quickCtx = NewQuickContext()

func TestTableIListsAllAlgorithms(t *testing.T) {
	out := TableI()
	for _, name := range []string{"RENO", "BIC", "CTCP1", "CTCP2", "CUBIC1", "CUBIC2", "HSTCP", "HTCP", "ILLINOIS", "STCP", "VEGAS", "VENO", "WESTWOOD", "YEAH"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table I missing %s", name)
		}
	}
	if !strings.Contains(out, "Windows") || !strings.Contains(out, "Linux") {
		t.Error("Table I missing OS families")
	}
}

func TestFig2Schedules(t *testing.T) {
	out := Fig2()
	if !strings.Contains(out, "env A") || !strings.Contains(out, "env B") {
		t.Fatalf("Fig. 2 output incomplete:\n%s", out)
	}
	if !strings.Contains(out, "0.8s") {
		t.Fatal("env B short RTT missing")
	}
}

func TestFig3ExpectedBetas(t *testing.T) {
	results, rendered, err := Fig3(quickCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 14 {
		t.Fatalf("got %d algorithms", len(results))
	}
	if !strings.Contains(rendered, "Panel (o)") {
		t.Fatal("panel (o) missing")
	}
	// The paper's headline feature values on the lossless testbed.
	wantBetaA := map[string]float64{
		"RENO":   0.5,
		"CUBIC2": 0.70,
		"CUBIC1": 0.80,
		"STCP":   0.875,
	}
	for _, r := range results {
		want, ok := wantBetaA[r.Algorithm]
		if !ok {
			continue
		}
		v := feature.Extract(r.TraceA, r.TraceB)
		if diff := v[feature.BetaA] - want; diff > 0.03 || diff < -0.03 {
			t.Errorf("%s betaA = %v, want ~%v", r.Algorithm, v[feature.BetaA], want)
		}
	}
	// VEGAS: flag 0 (window below 64 in env B).
	for _, r := range results {
		if r.Algorithm != "VEGAS" {
			continue
		}
		v := feature.Extract(r.TraceA, r.TraceB)
		if v[feature.VegasFlag] != 0 {
			t.Errorf("VEGAS flag = %v, want 0", v[feature.VegasFlag])
		}
	}
}

func TestCDFFigures(t *testing.T) {
	for name, out := range map[string]string{
		"Fig4":  Fig4(quickCtx),
		"Fig10": Fig10(quickCtx),
		"Fig11": Fig11(quickCtx),
	} {
		if !strings.Contains(out, "CDF") {
			t.Errorf("%s missing CDF header:\n%s", name, out)
		}
	}
}

func TestFig6PopulationMatchesPaper(t *testing.T) {
	out := Fig6(quickCtx)
	if !strings.Contains(out, "accept only one request") {
		t.Fatalf("Fig. 6 check missing:\n%s", out)
	}
}

func TestFig7PopulationMatchesPaper(t *testing.T) {
	out := Fig7(quickCtx)
	if !strings.Contains(out, "longest pages >100kB") {
		t.Fatalf("Fig. 7 check missing:\n%s", out)
	}
}

func TestTableII(t *testing.T) {
	out := TableII(quickCtx)
	if !strings.Contains(out, "100 B") {
		t.Fatalf("Table II missing rows:\n%s", out)
	}
}

func TestTableIIIAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	res, err := TableIII(quickCtx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.80 {
		t.Fatalf("cross-validation accuracy = %v, want >= 0.80 at reduced scale", res.Accuracy)
	}
	if !strings.Contains(res.String(), "Table III") {
		t.Fatal("render missing title")
	}
}

func TestFig12AccuracyRisesWithTrees(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	points, rendered, err := Fig12(quickCtx, []int{1, 40}, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %v", points)
	}
	if points[1].Accuracy <= points[0].Accuracy {
		t.Fatalf("K=40 accuracy %v not above K=1 %v", points[1].Accuracy, points[0].Accuracy)
	}
	if !strings.Contains(rendered, "K \\ F") {
		t.Fatal("grid header missing")
	}
}

func TestSpecialTracesDetected(t *testing.T) {
	out, err := SpecialTraces(quickCtx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		trace.RemainingAtOne.String(),
		trace.NonincreasingWindow.String(),
		trace.BoundedWindow.String(),
		trace.ApproachingWmax.String(),
		"no timeout",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("special traces output missing %q:\n%s", want, out)
		}
	}
}

func TestTableIVQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	res, err := TableIV(quickCtx)
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	if !strings.Contains(out, "Table IV") || !strings.Contains(out, "valid traces") {
		t.Fatalf("Table IV render incomplete:\n%s", out)
	}
	if res.Report.Valid() == 0 {
		t.Fatal("no valid traces in the census")
	}
}

func TestClassifierComparisonForestWins(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	acc, rendered, err := ClassifierComparison(quickCtx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rendered, "RandomForest") {
		t.Fatal("render incomplete")
	}
	rf := acc["RandomForest"]
	for name, a := range acc {
		if name == "RandomForest" {
			continue
		}
		if a > rf+0.02 {
			t.Errorf("%s (%.3f) beat random forest (%.3f)", name, a, rf)
		}
	}
}

func TestAblationsImprove(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	for _, tc := range []struct {
		name string
		run  func(*Context, int) (AblationResult, error)
	}{
		{"frto", AblationFRTO},
		{"wait", AblationInterEnvWait},
		{"pagesearch", AblationPageSearch},
		{"envB", AblationEnvB},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := tc.run(quickCtx, 16)
			if err != nil {
				t.Fatal(err)
			}
			if res.With < res.Without {
				t.Errorf("%s: with=%.2f < without=%.2f", res.Name, res.With, res.Without)
			}
		})
	}
}

func TestAsciiChart(t *testing.T) {
	out := AsciiChart("test", map[string][]int{"s": {1, 2, 4, 8}}, 8)
	if !strings.Contains(out, "test") || !strings.Contains(out, "*") {
		t.Fatalf("chart render:\n%s", out)
	}
}

func TestSortedKeys(t *testing.T) {
	got := sortedKeys(map[string]int{"b": 1, "a": 2})
	if got[0] != "a" || got[1] != "b" {
		t.Fatalf("sortedKeys = %v", got)
	}
}
