// Package experiments regenerates every table and figure of the paper's
// evaluation: one entry point per exhibit, each returning a result that
// renders as text. The cmd/caai-figures binary and the repository's
// benchmark harness both drive this package; EXPERIMENTS.md records the
// outputs next to the paper's numbers.
package experiments

import (
	"math/rand"
	"sync"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/forest"
	"repro/internal/netem"
)

// Context carries the shared inputs and scale knobs of all experiments.
// The zero value is not usable; call NewContext.
type Context struct {
	// DB is the network condition database (Figs. 4/10/11).
	DB *netem.Database
	// TrainingConditions is the per-(algorithm, wmax) condition count;
	// the paper uses 100. Reduce for quick runs.
	TrainingConditions int
	// CensusServers is the census population size; the paper measured
	// 63124. Reduce for quick runs.
	CensusServers int
	// Folds is the cross-validation fold count (paper: 10).
	Folds int
	// Seed drives all randomness.
	Seed int64

	mu      sync.Mutex
	dataset *forest.Dataset
	model   classify.Classifier
}

// NewContext returns a context with the paper's full-scale defaults.
func NewContext() *Context {
	return &Context{
		DB:                 netem.MeasuredDatabase(),
		TrainingConditions: 100,
		CensusServers:      63124,
		Folds:              10,
		Seed:               2011,
	}
}

// NewQuickContext returns a reduced-scale context suitable for tests and
// benchmarks.
func NewQuickContext() *Context {
	ctx := NewContext()
	ctx.TrainingConditions = 12
	ctx.CensusServers = 400
	ctx.Folds = 5
	return ctx
}

// TrainingSet lazily generates (and caches) the training set.
func (ctx *Context) TrainingSet() (*forest.Dataset, error) {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	if ctx.dataset != nil {
		return ctx.dataset, nil
	}
	ds, err := core.GenerateTrainingSet(ctx.DB, core.TrainingConfig{
		ConditionsPerPair: ctx.TrainingConditions,
		Seed:              ctx.Seed,
	})
	if err != nil {
		return nil, err
	}
	ctx.dataset = ds
	return ds, nil
}

// Model lazily trains (and caches) the paper-parameter random forest
// (K=80, F=4), unless UseModel injected a pretrained classifier first.
func (ctx *Context) Model() (classify.Classifier, error) {
	ctx.mu.Lock()
	if ctx.model != nil {
		defer ctx.mu.Unlock()
		return ctx.model, nil
	}
	ctx.mu.Unlock()
	ds, err := ctx.TrainingSet()
	if err != nil {
		return nil, err
	}
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	if ctx.model == nil {
		ctx.model = forest.Train(ds, forest.Config{Trees: 80, Subspace: 4, Seed: ctx.Seed + 1})
	}
	return ctx.model, nil
}

// UseModel injects a pretrained classifier (e.g. one loaded from disk with
// classify.LoadFile), so experiments that only classify skip the expensive
// training-set generation and model training entirely.
func (ctx *Context) UseModel(c classify.Classifier) {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	ctx.model = c
}

// rng derives a deterministic RNG for one experiment.
func (ctx *Context) rng(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(ctx.Seed ^ (salt * 0x7F4A7C15_9E37_79B9)))
}
