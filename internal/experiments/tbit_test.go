package experiments

import (
	"strings"
	"testing"
)

func TestTimeoutVsLossEvent(t *testing.T) {
	out, err := TimeoutVsLossEvent(quickCtx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "RENO") || !strings.Contains(out, "timeout") {
		t.Fatalf("output incomplete:\n%s", out)
	}
}

func TestTBITSurvey(t *testing.T) {
	out, err := TBITSurvey(quickCtx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"NEWRENO", "RENO", "TAHOE", "iw10"} {
		if !strings.Contains(out, want) {
			t.Fatalf("survey missing %q:\n%s", want, out)
		}
	}
}

func TestDemographics(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	out, err := Demographics(quickCtx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Europe", "Apache", "IIS servers identified"} {
		if !strings.Contains(out, want) {
			t.Fatalf("demographics missing %q:\n%s", want, out)
		}
	}
}
