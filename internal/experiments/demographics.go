package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/census"
)

// paperRegions and paperSoftware are the Section VII-B1 shares.
var paperRegions = map[string]float64{
	"Europe": 0.4328, "North America": 0.3192, "Asia": 0.2146,
	"South America": 0.0197, "Australia": 0.0083, "Africa": 0.0054,
}

var paperSoftware = map[string]float64{
	"Apache": 0.7020, "Nginx": 0.1285, "IIS": 0.1113,
	"LiteSpeed": 0.0136, "Other": 0.0446,
}

// Demographics reproduces the Section VII-B1 server-population breakdowns
// (geography and HTTP software) and the IIS proxy cross-check: roughly 15%
// of IIS servers are identified with non-Windows algorithms because TCP
// proxies split the connection.
func Demographics(ctx *Context) (string, error) {
	cfg := census.DefaultPopulationConfig()
	cfg.Servers = ctx.CensusServers
	pop := census.GeneratePopulation(cfg)

	var b strings.Builder
	b.WriteString("Section VII-B1: Web server demographics\n")
	writeShares(&b, "region", census.ShareBy(pop, func(gt census.GroundTruth) string { return gt.Server.Region }), paperRegions)
	writeShares(&b, "software", census.ShareBy(pop, func(gt census.GroundTruth) string { return gt.Server.Software }), paperSoftware)

	// The proxy cross-check needs identifications: reuse the cached
	// census of Table IV.
	t4, err := TableIV(ctx)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "IIS servers identified with non-Windows algorithms: %.2f%% (paper: ~15%%, attributed to TCP proxies)\n",
		t4.Report.IISNonWindowsShare()*100)
	return b.String(), nil
}

func writeShares(b *strings.Builder, title string, got, want map[string]float64) {
	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(b, "%-16s %10s %10s\n", title, "measured", "paper")
	for _, k := range keys {
		fmt.Fprintf(b, "  %-14s %9.2f%% %9.2f%%\n", k, got[k]*100, want[k]*100)
	}
}
