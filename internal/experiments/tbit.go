package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/feature"
	"repro/internal/netem"
	"repro/internal/probe"
	"repro/internal/tbit"
	"repro/internal/tcpsim"
	"repro/internal/websim"
)

// TimeoutVsLossEvent reproduces the paper's Section IV-B argument for
// emulating a *timeout* instead of a *loss event*: on a Linux-style server
// with burstiness control (cwnd moderation), the window right after a loss
// event is clamped to in-flight + 3 packets, so the multiplicative
// decrease measured through a loss event is far below the true beta, while
// the timeout-based measurement stays accurate.
func TimeoutVsLossEvent(ctx *Context) (string, error) {
	var b strings.Builder
	b.WriteString("Section IV-B: why emulate a timeout instead of a loss event\n")
	fmt.Fprintf(&b, "%-10s %-12s %-22s %-22s\n", "algorithm", "true beta", "beta via loss event", "beta via timeout (CAAI)")
	cases := []struct {
		alg  string
		beta float64
	}{
		{"RENO", 0.5},
		{"STCP", 0.875},
	}
	for _, tc := range cases {
		server := websim.Testbed(tc.alg)
		server.BurstinessControl = true

		p := tbit.New(netem.Lossless, ctx.rng(71))
		lossBeta, err := p.MultiplicativeDecrease(server, 536)
		if err != nil {
			return "", err
		}

		// The CAAI way: the timeout-based extraction of this repo.
		vec, ok := gatherVector(ctx, server)
		if !ok {
			return "", fmt.Errorf("timeout gathering failed for %s", tc.alg)
		}
		fmt.Fprintf(&b, "%-10s %-12.3f %-22.3f %-22.3f\n", tc.alg, tc.beta, lossBeta, vec[0])
		if math.Abs(vec[0]-tc.beta) > 0.05 && tc.alg == "RENO" {
			return "", fmt.Errorf("timeout-based beta drifted: %v", vec[0])
		}
	}
	b.WriteString("(burstiness control crushes the loss-event measurement; the timeout one holds)\n")
	return b.String(), nil
}

// TBITSurvey runs the TBIT component probes (initial window, loss
// recovery, multiplicative decrease) over a spread of server stacks: the
// components the paper defers to TBIT.
func TBITSurvey(ctx *Context) (string, error) {
	var b strings.Builder
	b.WriteString("TBIT component survey (the components CAAI defers to TBIT)\n")
	fmt.Fprintf(&b, "%-26s %-4s %-10s %-10s\n", "server", "IW", "recovery", "beta(loss)")
	stacks := []struct {
		name     string
		alg      string
		iw       float64
		recovery tcpsim.RecoveryScheme
	}{
		{"linux-newreno-cubic", "CUBIC2", 0, tcpsim.RecoveryNewReno},
		{"linux-newreno-bic", "BIC", 0, tcpsim.RecoveryNewReno},
		{"classic-reno", "RENO", 2, tcpsim.RecoveryReno},
		{"ancient-tahoe", "RENO", 1, tcpsim.RecoveryTahoe},
		{"iw10-newreno", "RENO", 10, tcpsim.RecoveryNewReno},
	}
	for _, st := range stacks {
		server := websim.Testbed(st.alg)
		server.InitialWindow = st.iw
		server.Recovery = st.recovery

		p := tbit.New(netem.Lossless, ctx.rng(73))
		iw, err := p.InitialWindow(server, 536)
		if err != nil {
			return "", err
		}
		rec, err := p.LossRecovery(server, 536)
		if err != nil {
			return "", err
		}
		beta, err := p.MultiplicativeDecrease(server, 536)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-26s %-4d %-10s %-10.3f\n", st.name, iw, rec, beta)
		if rec != st.recovery.String() {
			return "", fmt.Errorf("%s: recovery classified as %s, want %s", st.name, rec, st.recovery)
		}
	}
	return b.String(), nil
}

// gatherVector runs the CAAI gathering + extraction against one server on
// the lossless testbed.
func gatherVector(ctx *Context, server *websim.Server) (feature.Vector, bool) {
	p := probe.New(probe.Config{}, netem.Lossless, ctx.rng(79))
	res := p.Gather(server)
	if !res.Valid {
		return feature.Vector{}, false
	}
	return feature.Extract(res.TraceA, res.TraceB), true
}
