package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cc"
	"repro/internal/census"
	"repro/internal/netem"
	"repro/internal/probe"
	"repro/internal/trace"
	"repro/internal/websim"
)

// Fig2 describes the two emulated environments' RTT schedules.
func Fig2() string {
	var b strings.Builder
	b.WriteString("Fig. 2: emulated RTT schedules\n")
	envs := []probe.Environment{probe.EnvA(), probe.EnvB()}
	for _, env := range envs {
		fmt.Fprintf(&b, "env %s pre-timeout : ", env.Name)
		for r := 1; r <= 6; r++ {
			fmt.Fprintf(&b, "%.1fs ", env.PreRTT(r).Seconds())
		}
		fmt.Fprintf(&b, "...\nenv %s post-timeout: ", env.Name)
		for r := 1; r <= 14; r++ {
			fmt.Fprintf(&b, "%.1fs ", env.PostRTT(r).Seconds())
		}
		b.WriteString("...\n")
	}
	return b.String()
}

// Fig3Result holds one algorithm's traces in both environments.
type Fig3Result struct {
	Algorithm string
	TraceA    *trace.Trace
	TraceB    *trace.Trace
}

// Fig3 regenerates the window traces of all 14 algorithms in environments
// A and B on a lossless testbed with wmax=256 and mss=536 (panels a-n),
// plus the RENO/CTCP comparison at wmax=64 (panel o).
func Fig3(ctx *Context) ([]Fig3Result, string, error) {
	var out []Fig3Result
	var b strings.Builder
	b.WriteString("Fig. 3: window traces, lossless testbed, wmax=256, mss=536\n\n")
	for _, name := range cc.CAAINames() {
		res := Fig3Result{Algorithm: name}
		for _, env := range []probe.Environment{probe.EnvA(), probe.EnvB()} {
			p := probe.New(probe.Config{}, netem.Lossless, ctx.rng(int64(len(out))+3))
			tr, err := p.GatherEnv(websim.Testbed(name), env, 256, 536, 64<<20)
			if err != nil {
				return nil, "", err
			}
			if env.Name == "A" {
				res.TraceA = tr
			} else {
				res.TraceB = tr
			}
		}
		out = append(out, res)
		fmt.Fprintf(&b, "%-9s A: %v\n", name, append(res.TraceA.Pre, res.TraceA.Post...))
		fmt.Fprintf(&b, "%-9s B: %v\n", name, append(res.TraceB.Pre, res.TraceB.Post...))
	}

	// Panel (o): RENO vs CTCP1 vs CTCP2 at wmax=64 are nearly identical.
	b.WriteString("\nPanel (o): RENO/CTCP1/CTCP2 at wmax=64 (env A)\n")
	for _, name := range []string{"RENO", "CTCP1", "CTCP2"} {
		p := probe.New(probe.Config{}, netem.Lossless, ctx.rng(977))
		tr, err := p.GatherEnv(websim.Testbed(name), probe.EnvA(), 64, 536, 64<<20)
		if err != nil {
			return nil, "", err
		}
		fmt.Fprintf(&b, "%-9s: %v\n", name, append(tr.Pre, tr.Post...))
	}
	return out, b.String(), nil
}

// Fig4 renders the CDF of mean RTTs of the measured Web servers.
func Fig4(ctx *Context) string {
	return CDFTable("Fig. 4: CDF of Web server RTTs (5000 servers, ping)", "RTT (s)", ctx.DB.RTTCDF())
}

// Fig10 renders the CDF of RTT standard deviations.
func Fig10(ctx *Context) string {
	return CDFTable("Fig. 10: CDF of measured RTT standard deviations", "stddev (s)", ctx.DB.StdDevCDF())
}

// Fig11 renders the CDF of measured packet-loss rates.
func Fig11(ctx *Context) string {
	return CDFTable("Fig. 11: CDF of measured packet-loss rates", "loss rate", ctx.DB.LossCDF())
}

// Fig6 renders the CDF of maximum repeated HTTP requests, both the model
// distribution and an empirical resample of the census population.
func Fig6(ctx *Context) string {
	var b strings.Builder
	b.WriteString(CDFTable("Fig. 6: CDF of max repeated HTTP requests accepted", "requests", census.RequestLimitCDF()))
	cfg := census.DefaultPopulationConfig()
	cfg.Servers = ctx.CensusServers
	pop := census.GeneratePopulation(cfg)
	one, three := 0, 0
	for _, gt := range pop {
		if gt.Server.MaxRequests <= 1 {
			one++
		}
		if gt.Server.MaxRequests <= 3 {
			three++
		}
	}
	fmt.Fprintf(&b, "population check: %s accept only one request (paper: ~47%%), %s accept <= 3 (paper: ~60%%)\n",
		percent(one, len(pop)), percent(three, len(pop)))
	return b.String()
}

// Fig7 renders the CDFs of default and longest page sizes.
func Fig7(ctx *Context) string {
	var b strings.Builder
	b.WriteString(CDFTable("Fig. 7: CDF of default page sizes", "bytes", census.DefaultPageCDF()))
	b.WriteString(CDFTable("Fig. 7: CDF of longest found page sizes", "bytes", census.LongestPageCDF()))
	cfg := census.DefaultPopulationConfig()
	cfg.Servers = ctx.CensusServers
	pop := census.GeneratePopulation(cfg)
	d100, l100 := 0, 0
	for _, gt := range pop {
		if gt.Server.DefaultPageBytes > 100<<10 {
			d100++
		}
		if gt.Server.LongestPageBytes > 100<<10 {
			l100++
		}
	}
	fmt.Fprintf(&b, "population check: default pages >100kB: %s (paper: ~12%%); longest pages >100kB: %s (paper: ~48%%)\n",
		percent(d100, len(pop)), percent(l100, len(pop)))
	return b.String()
}

// SpecialTraces regenerates examples of the paper's invalid and special
// traces (Figs. 13-18).
func SpecialTraces(ctx *Context) (string, error) {
	var b strings.Builder
	rng := ctx.rng(555)
	cases := []struct {
		title  string
		server *websim.Server
	}{
		{"Fig. 13 invalid, no timeout (window below wmax+1)", func() *websim.Server {
			s := websim.Testbed("RENO")
			s.SendBufferSegments = 40
			return s
		}()},
		{"Fig. 14 Remaining at 1 Packet", func() *websim.Server {
			s := websim.Testbed("RENO")
			s.PostTimeoutClamp = 1
			return s
		}()},
		{"Fig. 15 Nonincreasing Window", func() *websim.Server {
			// A BIC stack whose in-flight data is pinned by a small
			// send buffer: the post-timeout slow start runs straight
			// into the buffer (ssthresh sits above it) and the
			// window never grows again.
			s := websim.Testbed("BIC")
			s.SendBufferSegments = 70
			return s
		}()},
		{"Fig. 16 Approaching Wmax", websim.Testbed("RENO")},
		{"Fig. 17 Bounded Window", func() *websim.Server {
			// A CUBIC stack with a window clamp above its slow start
			// threshold: visible growth past w(l), then a ceiling.
			s := websim.Testbed("CUBIC2")
			s.CwndClamp = 100
			return s
		}()},
	}
	// Fig. 16 needs the approacher behaviour.
	cases[3].server.CustomAlgorithm = census.NewApproacherAlgorithm

	wantDetect := map[int]trace.Special{
		1: trace.RemainingAtOne,
		2: trace.NonincreasingWindow,
		3: trace.ApproachingWmax,
		4: trace.BoundedWindow,
	}
	for i, tc := range cases {
		wmax := 64
		p := probe.New(probe.Config{}, netem.Lossless, rng)
		tr, err := p.GatherEnv(tc.server, probe.EnvA(), wmax, 536, 64<<20)
		if err != nil {
			return "", err
		}
		sp := trace.DetectSpecial(tr)
		fmt.Fprintf(&b, "%s\n  trace: %s\n  detector: %s, valid=%v\n\n", tc.title, tr, sp, tr.Valid())
		if want, ok := wantDetect[i]; ok && sp != want {
			return "", fmt.Errorf("special trace %q detected as %s, want %s", tc.title, sp, want)
		}
	}
	return b.String(), nil
}

// sortedKeys returns map keys sorted (small helper for deterministic
// rendering).
func sortedKeys[M ~map[string]int](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
