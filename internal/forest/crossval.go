package forest

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// ConfusionMatrix accumulates per-class classification outcomes (the
// paper's Table III).
type ConfusionMatrix struct {
	classes []string
	index   map[string]int
	// counts[actual][predicted]
	counts [][]int
}

// NewConfusionMatrix creates a matrix over the given classes.
func NewConfusionMatrix(classes []string) *ConfusionMatrix {
	index := make(map[string]int, len(classes))
	cs := make([]string, len(classes))
	copy(cs, classes)
	counts := make([][]int, len(classes))
	for i, c := range cs {
		index[c] = i
		counts[i] = make([]int, len(classes))
	}
	return &ConfusionMatrix{classes: cs, index: index, counts: counts}
}

// Add records one classification outcome. Unknown labels are ignored.
func (m *ConfusionMatrix) Add(actual, predicted string) {
	a, okA := m.index[actual]
	p, okP := m.index[predicted]
	if !okA || !okP {
		return
	}
	m.counts[a][p]++
}

// Accuracy returns the overall fraction of correct classifications.
func (m *ConfusionMatrix) Accuracy() float64 {
	correct, total := 0, 0
	for a, row := range m.counts {
		for p, n := range row {
			total += n
			if a == p {
				correct += n
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// ClassAccuracy returns the per-class recall (the diagonal of Table III).
func (m *ConfusionMatrix) ClassAccuracy(class string) float64 {
	a, ok := m.index[class]
	if !ok {
		return 0
	}
	total := 0
	for _, n := range m.counts[a] {
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(m.counts[a][a]) / float64(total)
}

// Classes returns the class labels in matrix order.
func (m *ConfusionMatrix) Classes() []string {
	out := make([]string, len(m.classes))
	copy(out, m.classes)
	return out
}

// Count returns counts[actual][predicted] by label.
func (m *ConfusionMatrix) Count(actual, predicted string) int {
	a, okA := m.index[actual]
	p, okP := m.index[predicted]
	if !okA || !okP {
		return 0
	}
	return m.counts[a][p]
}

// String renders the matrix as a percentage table like Table III.
func (m *ConfusionMatrix) String() string {
	var b strings.Builder
	short := make([]string, len(m.classes))
	for i, c := range m.classes {
		if len(c) > 8 {
			c = c[:8]
		}
		short[i] = c
	}
	fmt.Fprintf(&b, "%-10s", "")
	for _, c := range short {
		fmt.Fprintf(&b, "%9s", c)
	}
	b.WriteByte('\n')
	for a, row := range m.counts {
		total := 0
		for _, n := range row {
			total += n
		}
		fmt.Fprintf(&b, "%-10s", short[a])
		for _, n := range row {
			if total == 0 {
				fmt.Fprintf(&b, "%9s", "-")
				continue
			}
			fmt.Fprintf(&b, "%8.2f%%", 100*float64(n)/float64(total))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CrossValidate runs k-fold cross validation of a random forest with cfg
// on ds (the paper's 10-fold protocol: random even split, each fold
// validated once) and returns the pooled confusion matrix.
func CrossValidate(ds *Dataset, cfg Config, folds int, rng *rand.Rand) *ConfusionMatrix {
	if folds < 2 {
		folds = 2
	}
	n := ds.Len()
	perm := rng.Perm(n)
	matrix := NewConfusionMatrix(ds.Classes())
	for f := 0; f < folds; f++ {
		var trainIdx, testIdx []int
		for i, j := range perm {
			if i%folds == f {
				testIdx = append(testIdx, j)
			} else {
				trainIdx = append(trainIdx, j)
			}
		}
		foldCfg := cfg
		foldCfg.Seed = cfg.Seed + int64(f)*104729
		model := Train(ds.Subset(trainIdx), foldCfg)
		var votes []int
		for _, j := range testIdx {
			s := ds.Samples()[j]
			var got string
			got, _, votes = model.ClassifyBuf(s.Features, votes)
			matrix.Add(s.Label, got)
		}
	}
	return matrix
}

// sortedCopy is a small helper used by tests.
func sortedCopy(xs []string) []string {
	out := make([]string, len(xs))
	copy(out, xs)
	sort.Strings(out)
	return out
}
