package forest

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/classify"
)

// persistDataset builds a small three-class dataset with enough structure
// that trees actually split.
func persistDataset(t *testing.T) *Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	centers := map[string][]float64{
		"a": {0, 0, 0},
		"b": {6, 6, 0},
		"c": {0, 6, 6},
	}
	var samples []Sample
	for label, c := range centers {
		for i := 0; i < 40; i++ {
			samples = append(samples, Sample{
				Features: []float64{
					c[0] + rng.NormFloat64(),
					c[1] + rng.NormFloat64(),
					c[2] + rng.NormFloat64(),
				},
				Label: label,
			})
		}
	}
	ds, err := NewDataset(samples)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// probeGrid is a deterministic set of query vectors spanning the dataset.
func probeGrid() [][]float64 {
	var grid [][]float64
	for x := -1.0; x <= 7; x += 1.6 {
		for y := -1.0; y <= 7; y += 1.6 {
			for z := -1.0; z <= 7; z += 1.6 {
				grid = append(grid, []float64{x, y, z})
			}
		}
	}
	return grid
}

func TestSaveLoadRoundTripExactLabels(t *testing.T) {
	ds := persistDataset(t)
	orig := Train(ds, Config{Trees: 25, Subspace: 2, Seed: 3})

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(loaded.Classes(), orig.Classes()) {
		t.Fatalf("classes %v != %v", loaded.Classes(), orig.Classes())
	}
	for _, q := range probeGrid() {
		wantL, wantC := orig.Classify(q)
		gotL, gotC := loaded.Classify(q)
		if gotL != wantL || gotC != wantC {
			t.Fatalf("Classify(%v) = (%s, %v) after reload, want (%s, %v)", q, gotL, gotC, wantL, wantC)
		}
		if !reflect.DeepEqual(loaded.Votes(q), orig.Votes(q)) {
			t.Fatalf("Votes(%v) changed across save/load", q)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	ds := persistDataset(t)
	orig := Train(ds, Config{Trees: 10, Subspace: 2, Seed: 5})
	path := filepath.Join(t.TempDir(), "model.json")
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{5.5, 6.2, 0.3}
	wantL, _ := orig.Classify(q)
	if gotL, _ := loaded.Classify(q); gotL != wantL {
		t.Fatalf("got %s, want %s", gotL, wantL)
	}
}

func TestLoadRejectsCorruptModels(t *testing.T) {
	cases := map[string]string{
		"not json":       "pineapple",
		"bad version":    `{"version":99,"classes":["a"],"trees":[{"feature":[-1],"threshold":[0],"left":[0],"right":[0],"label":[0]}]}`,
		"no trees":       `{"version":1,"classes":["a"],"trees":[]}`,
		"no classes":     `{"version":1,"classes":[],"trees":[{"feature":[-1],"threshold":[0],"left":[0],"right":[0],"label":[0]}]}`,
		"ragged arrays":  `{"version":1,"classes":["a"],"trees":[{"feature":[-1,-1],"threshold":[0],"left":[0],"right":[0],"label":[0]}]}`,
		"label range":    `{"version":1,"classes":["a"],"trees":[{"feature":[-1],"threshold":[0],"left":[0],"right":[0],"label":[7]}]}`,
		"child range":    `{"version":1,"classes":["a"],"trees":[{"feature":[0],"threshold":[0],"left":[5],"right":[0],"label":[0]}]}`,
		"empty tree":     `{"version":1,"classes":["a"],"trees":[{"feature":[],"threshold":[],"left":[],"right":[],"label":[]}]}`,
		"negative child": `{"version":1,"classes":["a"],"trees":[{"feature":[0],"threshold":[0],"left":[-1],"right":[0],"label":[0]}]}`,
		"self cycle":     `{"version":1,"classes":["a"],"trees":[{"feature":[0,-1],"threshold":[0,0],"left":[0,0],"right":[1,0],"label":[0,0]}]}`,
		"back edge":      `{"version":1,"classes":["a"],"trees":[{"feature":[0,0,-1],"threshold":[0,0,0],"left":[1,0,0],"right":[2,2,0],"label":[0,0,0]}]}`,
		"feature range":  `{"version":1,"features":2,"classes":["a"],"trees":[{"feature":[9,-1,-1],"threshold":[0,0,0],"left":[1,0,0],"right":[2,0,0],"label":[0,0,0]}]}`,
		"negative width": `{"version":1,"features":-1,"classes":["a"],"trees":[{"feature":[-1],"threshold":[0],"left":[0],"right":[0],"label":[0]}]}`,
	}
	for name, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: Load accepted a corrupt model", name)
		}
	}
}

func TestForestCodecRegistered(t *testing.T) {
	found := false
	for _, b := range classify.Codecs() {
		if b == BackendName {
			found = true
		}
	}
	if !found {
		t.Fatalf("forest codec not registered; have %v", classify.Codecs())
	}

	ds := persistDataset(t)
	orig := Train(ds, Config{Trees: 8, Subspace: 2, Seed: 9})
	var buf bytes.Buffer
	if err := classify.Save(&buf, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := classify.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name() != BackendName {
		t.Fatalf("loaded backend %q", loaded.Name())
	}
	q := []float64{0.2, 5.8, 6.1}
	wantL, wantC := orig.Classify(q)
	if gotL, gotC := loaded.Classify(q); gotL != wantL || gotC != wantC {
		t.Fatalf("envelope round trip changed classification")
	}
}

// TestLoadedModelNeverPanicsOnShortVectors guards the resident-service
// crash vector: a model file whose split indices exceed the query width
// (legacy files have no declared width, so Load cannot reject them) must
// classify at zero confidence instead of panicking mid-tree-walk.
func TestLoadedModelNeverPanicsOnShortVectors(t *testing.T) {
	legacy := `{"version":1,"classes":["a","b"],"trees":[{"feature":[500,-1,-1],"threshold":[0,0,0],"left":[1,0,0],"right":[2,0,0],"label":[0,0,1]}]}`
	f, err := Load(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if _, conf := f.Classify(make([]float64, 8)); conf != 0 {
		t.Fatalf("confidence = %v, want 0 for an undersized vector", conf)
	}
	// A vector wide enough for the declared splits still classifies.
	if label, conf := f.Classify(make([]float64, 501)); label != "a" || conf != 1 {
		t.Fatalf("wide vector classified as %s (%v)", label, conf)
	}
}

// TestSaveRecordsFeatureWidth checks new files carry the width and Load
// enforces it round-trip.
func TestSaveRecordsFeatureWidth(t *testing.T) {
	ds, err := NewDataset([]Sample{
		{Features: []float64{1, 2, 3}, Label: "x"},
		{Features: []float64{4, 5, 6}, Label: "y"},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := Train(ds, Config{Trees: 3, Seed: 1})
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"features":3`) {
		t.Fatalf("saved doc missing feature width: %s", buf.String())
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.width != 3 {
		t.Fatalf("loaded width = %d, want 3", loaded.width)
	}
	if _, conf := loaded.Classify([]float64{1}); conf != 0 {
		t.Fatalf("short vector got confidence %v, want 0", conf)
	}
}
