//go:build amd64

package forest

// The AVX-512 sweep kernel (sweep_amd64.s) evaluates one tree against a
// 64-lane block in breadth-first order using per-node lane-occupancy
// bitmasks: one VBROADCASTSD + eight VCMPPD compare a node's threshold
// against all 64 lanes at once, the children's masks are AND / ANDNOT of
// the parent's, and each leaf ORs its mask into a per-class accumulator.
// Per-lane work is O(1) vector lanes instead of O(path) dependent loads,
// which is where the >= 3x per-sample speedup over the scalar walk comes
// from. See sweep.go for the driver and DESIGN.md section 8 for the
// algorithm.

// forestSweep runs the reach-mask sweep for every tree in the forest
// against one 64-lane chunk, accumulating per-class byte vote counters.
// classMasks must be zeroed on entry (it is left zeroed on return).
// Implemented in sweep_amd64.s; only called when haveAVX512 is true.
//
//go:noescape
func forestSweep(a *sweepArgs)

// cpuidex and xgetbv are tiny assembly shims for feature detection.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// haveAVX512 reports whether the sweep kernel can run: AVX512F for the
// zmm compares and mask registers, AVX512BW for the 64-bit mask-register
// unpacks (KUNPCKWD/KUNPCKDQ, KMOVQ), AVX512DQ for completeness of the
// mask ops, and OS support for saving zmm/opmask state (XCR0 bits
// 1,2,5,6,7).
var haveAVX512 = func() bool {
	_, _, c, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	if c&osxsave == 0 {
		return false
	}
	xlo, _ := xgetbv()
	if xlo&0xe6 != 0xe6 {
		return false
	}
	_, b, _, _ := cpuidex(7, 0)
	const avx512f = 1 << 16
	const avx512dq = 1 << 17
	const avx512bw = 1 << 30
	return b&avx512f != 0 && b&avx512dq != 0 && b&avx512bw != 0
}()
