package forest

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/classify"
)

// BackendName is the name the forest reports through classify.Classifier
// and under which saved models are tagged.
const BackendName = "RandomForest"

// Name implements classify.Classifier, making a trained forest usable
// anywhere the pipeline accepts a pluggable backend.
func (f *Forest) Name() string { return BackendName }

var _ classify.Classifier = (*Forest)(nil)

// The JSON document layout. Node fields are flattened into parallel arrays
// per tree: compact, fast to decode, and stable under gofmt-style diffing.
// The on-disk format is unchanged by the in-memory arena: Save emits the
// same per-tree arrays as before, Load flattens them into the arena.
type forestDoc struct {
	Version int      `json:"version"`
	Classes []string `json:"classes"`
	// Features is the feature-vector width the trees index into. Older
	// files omit it (0): Load then derives the width from the largest
	// split index, so classification stays bounds-safe either way.
	Features int       `json:"features,omitempty"`
	Trees    []treeDoc `json:"trees"`
}

type treeDoc struct {
	// Feature[i] < 0 marks node i as a leaf whose class is Label[i];
	// otherwise node i splits on Feature[i] at Threshold[i] with children
	// Left[i] / Right[i].
	Feature   []int     `json:"feature"`
	Threshold []float64 `json:"threshold"`
	Left      []int32   `json:"left"`
	Right     []int32   `json:"right"`
	Label     []int     `json:"label"`
}

// persistVersion guards the forest payload layout inside the envelope.
const persistVersion = 1

// Save serializes the trained forest to w as JSON. The written model
// reproduces the in-memory forest's classifications exactly: tree
// structure, thresholds, and class order are preserved bit-for-bit.
func (f *Forest) Save(w io.Writer) error {
	nt := f.NumTrees()
	doc := forestDoc{Version: persistVersion, Classes: f.classes, Features: f.width, Trees: make([]treeDoc, nt)}
	for t := 0; t < nt; t++ {
		lo := f.starts[t]
		n := int(f.starts[t+1] - lo)
		td := treeDoc{
			Feature:   make([]int, n),
			Threshold: make([]float64, n),
			Left:      make([]int32, n),
			Right:     make([]int32, n),
			Label:     make([]int, n),
		}
		for j := 0; j < n; j++ {
			i := lo + int32(j)
			if f.feat[i] < 0 {
				td.Feature[j] = -1
				td.Label[j] = int(f.labels[i])
				continue
			}
			td.Feature[j] = int(f.feat[i])
			td.Threshold[j] = f.thr[i]
			td.Left[j] = f.kids[2*i] - lo
			td.Right[j] = f.kids[2*i+1] - lo
		}
		doc.Trees[t] = td
	}
	return json.NewEncoder(w).Encode(doc)
}

// Load deserializes a forest previously written by Save, flattening the
// per-tree node arrays into the classification arena.
func Load(r io.Reader) (*Forest, error) {
	var doc forestDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("forest: decoding model: %w", err)
	}
	if doc.Version != persistVersion {
		return nil, fmt.Errorf("forest: unsupported model version %d (want %d)", doc.Version, persistVersion)
	}
	if len(doc.Classes) == 0 || len(doc.Trees) == 0 {
		return nil, fmt.Errorf("forest: model has %d classes and %d trees", len(doc.Classes), len(doc.Trees))
	}
	if doc.Features < 0 {
		return nil, fmt.Errorf("forest: negative feature width %d", doc.Features)
	}
	total := 0
	for i, td := range doc.Trees {
		n := len(td.Feature)
		if len(td.Threshold) != n || len(td.Left) != n || len(td.Right) != n || len(td.Label) != n {
			return nil, fmt.Errorf("forest: tree %d has inconsistent node arrays", i)
		}
		if n == 0 {
			return nil, fmt.Errorf("forest: tree %d is empty", i)
		}
		total += n
	}
	maxFeature := -1
	trees := make([][]treeNode, len(doc.Trees))
	for i, td := range doc.Trees {
		n := len(td.Feature)
		nodes := make([]treeNode, n)
		for j := 0; j < n; j++ {
			if td.Feature[j] < 0 {
				if td.Label[j] < 0 || td.Label[j] >= len(doc.Classes) {
					return nil, fmt.Errorf("forest: tree %d node %d: label %d out of range", i, j, td.Label[j])
				}
				nodes[j] = treeNode{leaf: true, label: td.Label[j]}
				continue
			}
			if doc.Features > 0 && td.Feature[j] >= doc.Features {
				return nil, fmt.Errorf("forest: tree %d node %d: feature %d out of range (width %d)", i, j, td.Feature[j], doc.Features)
			}
			if td.Feature[j] > maxFeature {
				maxFeature = td.Feature[j]
			}
			if int(td.Left[j]) >= n || int(td.Right[j]) >= n {
				return nil, fmt.Errorf("forest: tree %d node %d: child index out of range", i, j)
			}
			// The builder always places children after their parent, so
			// child <= parent means a corrupt (possibly cyclic) layout
			// that would make classification loop forever.
			if td.Left[j] <= int32(j) || td.Right[j] <= int32(j) {
				return nil, fmt.Errorf("forest: tree %d node %d: child index not after parent", i, j)
			}
			nodes[j] = treeNode{
				feature:   td.Feature[j],
				threshold: td.Threshold[j],
				left:      td.Left[j],
				right:     td.Right[j],
			}
		}
		trees[i] = nodes
	}
	width := doc.Features
	if width == 0 {
		// Legacy file without a declared width: the largest split index
		// bounds what classification will dereference.
		width = maxFeature + 1
	}
	// flatten re-lays the trees in level order and builds the packed batch
	// arena, exactly as Train does, so loaded and freshly trained models
	// share one in-memory representation.
	return flatten(doc.Classes, width, trees), nil
}

// SaveFile writes the forest to path.
func (f *Forest) SaveFile(path string) error {
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Save(w); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// LoadFile reads a forest from path.
func LoadFile(path string) (*Forest, error) {
	r, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return Load(r)
}

// codec adapts Save/Load to the classify.Codec registry so envelope-tagged
// model files round-trip through classify.Save / classify.Load.
type codec struct{}

func (codec) Backend() string { return BackendName }

func (codec) Encode(w io.Writer, c classify.Classifier) error {
	f, ok := c.(*Forest)
	if !ok {
		return fmt.Errorf("forest: codec cannot encode %T", c)
	}
	return f.Save(w)
}

func (codec) Decode(r io.Reader) (classify.Classifier, error) { return Load(r) }

func init() { classify.RegisterCodec(codec{}) }
