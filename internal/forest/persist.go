package forest

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/classify"
)

// BackendName is the name the forest reports through classify.Classifier
// and under which saved models are tagged.
const BackendName = "RandomForest"

// Name implements classify.Classifier, making a trained forest usable
// anywhere the pipeline accepts a pluggable backend.
func (f *Forest) Name() string { return BackendName }

var _ classify.Classifier = (*Forest)(nil)

// The JSON document layout. Node fields are flattened into parallel arrays
// per tree: compact, fast to decode, and stable under gofmt-style diffing.
type forestDoc struct {
	Version int      `json:"version"`
	Classes []string `json:"classes"`
	// Features is the feature-vector width the trees index into. Older
	// files omit it (0): Load then derives the width from the largest
	// split index, so classification stays bounds-safe either way.
	Features int       `json:"features,omitempty"`
	Trees    []treeDoc `json:"trees"`
}

type treeDoc struct {
	// Feature[i] < 0 marks node i as a leaf whose class is Label[i];
	// otherwise node i splits on Feature[i] at Threshold[i] with children
	// Left[i] / Right[i].
	Feature   []int     `json:"feature"`
	Threshold []float64 `json:"threshold"`
	Left      []int32   `json:"left"`
	Right     []int32   `json:"right"`
	Label     []int     `json:"label"`
}

// persistVersion guards the forest payload layout inside the envelope.
const persistVersion = 1

// Save serializes the trained forest to w as JSON. The written model
// reproduces the in-memory forest's classifications exactly: tree
// structure, thresholds, and class order are preserved bit-for-bit.
func (f *Forest) Save(w io.Writer) error {
	doc := forestDoc{Version: persistVersion, Classes: f.classes, Features: f.width, Trees: make([]treeDoc, len(f.trees))}
	for i, t := range f.trees {
		td := treeDoc{
			Feature:   make([]int, len(t.nodes)),
			Threshold: make([]float64, len(t.nodes)),
			Left:      make([]int32, len(t.nodes)),
			Right:     make([]int32, len(t.nodes)),
			Label:     make([]int, len(t.nodes)),
		}
		for j, n := range t.nodes {
			if n.leaf {
				td.Feature[j] = -1
				td.Label[j] = n.label
				continue
			}
			td.Feature[j] = n.feature
			td.Threshold[j] = n.threshold
			td.Left[j] = n.left
			td.Right[j] = n.right
		}
		doc.Trees[i] = td
	}
	return json.NewEncoder(w).Encode(doc)
}

// Load deserializes a forest previously written by Save.
func Load(r io.Reader) (*Forest, error) {
	var doc forestDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("forest: decoding model: %w", err)
	}
	if doc.Version != persistVersion {
		return nil, fmt.Errorf("forest: unsupported model version %d (want %d)", doc.Version, persistVersion)
	}
	if len(doc.Classes) == 0 || len(doc.Trees) == 0 {
		return nil, fmt.Errorf("forest: model has %d classes and %d trees", len(doc.Classes), len(doc.Trees))
	}
	if doc.Features < 0 {
		return nil, fmt.Errorf("forest: negative feature width %d", doc.Features)
	}
	f := &Forest{classes: doc.Classes, trees: make([]*tree, len(doc.Trees))}
	maxFeature := -1
	for i, td := range doc.Trees {
		n := len(td.Feature)
		if len(td.Threshold) != n || len(td.Left) != n || len(td.Right) != n || len(td.Label) != n {
			return nil, fmt.Errorf("forest: tree %d has inconsistent node arrays", i)
		}
		if n == 0 {
			return nil, fmt.Errorf("forest: tree %d is empty", i)
		}
		nodes := make([]treeNode, n)
		for j := 0; j < n; j++ {
			if td.Feature[j] < 0 {
				if td.Label[j] < 0 || td.Label[j] >= len(doc.Classes) {
					return nil, fmt.Errorf("forest: tree %d node %d: label %d out of range", i, j, td.Label[j])
				}
				nodes[j] = treeNode{leaf: true, label: td.Label[j]}
				continue
			}
			if doc.Features > 0 && td.Feature[j] >= doc.Features {
				return nil, fmt.Errorf("forest: tree %d node %d: feature %d out of range (width %d)", i, j, td.Feature[j], doc.Features)
			}
			if td.Feature[j] > maxFeature {
				maxFeature = td.Feature[j]
			}
			if int(td.Left[j]) >= n || int(td.Right[j]) >= n {
				return nil, fmt.Errorf("forest: tree %d node %d: child index out of range", i, j)
			}
			// The builder always places children after their parent, so
			// child <= parent means a corrupt (possibly cyclic) layout
			// that would make classify loop forever.
			if td.Left[j] <= int32(j) || td.Right[j] <= int32(j) {
				return nil, fmt.Errorf("forest: tree %d node %d: child index not after parent", i, j)
			}
			nodes[j] = treeNode{
				feature:   td.Feature[j],
				threshold: td.Threshold[j],
				left:      td.Left[j],
				right:     td.Right[j],
			}
		}
		f.trees[i] = &tree{nodes: nodes}
	}
	f.width = doc.Features
	if f.width == 0 {
		// Legacy file without a declared width: the largest split index
		// bounds what classification will dereference.
		f.width = maxFeature + 1
	}
	return f, nil
}

// SaveFile writes the forest to path.
func (f *Forest) SaveFile(path string) error {
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Save(w); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// LoadFile reads a forest from path.
func LoadFile(path string) (*Forest, error) {
	r, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return Load(r)
}

// codec adapts Save/Load to the classify.Codec registry so envelope-tagged
// model files round-trip through classify.Save / classify.Load.
type codec struct{}

func (codec) Backend() string { return BackendName }

func (codec) Encode(w io.Writer, c classify.Classifier) error {
	f, ok := c.(*Forest)
	if !ok {
		return fmt.Errorf("forest: codec cannot encode %T", c)
	}
	return f.Save(w)
}

func (codec) Decode(r io.Reader) (classify.Classifier, error) { return Load(r) }

func init() { classify.RegisterCodec(codec{}) }
