package forest

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// assertBatchMatchesScalar checks the full batch/scalar contract on one
// block: labels, confidences, and vote counts must be bit-identical to
// per-vector Classify/Votes, including short vectors and non-finite
// features.
func assertBatchMatchesScalar(t *testing.T, f *Forest, vecs [][]float64) {
	t.Helper()
	m := len(vecs)
	labels := make([]string, m)
	confs := make([]float64, m)
	f.ClassifyBatch(vecs, labels, confs)
	votes := f.VotesBatch(nil, vecs, nil)
	nc := f.NumClasses()
	if len(votes) != m*nc {
		t.Fatalf("VotesBatch returned %d entries, want %d", len(votes), m*nc)
	}
	for i, v := range vecs {
		wantLabel, wantConf := f.Classify(v)
		if labels[i] != wantLabel || confs[i] != wantConf {
			t.Fatalf("vec %d: batch (%s, %v) != scalar (%s, %v)", i, labels[i], confs[i], wantLabel, wantConf)
		}
		sv := f.Votes(v)
		for c, n := range sv {
			if votes[i*nc+c] != int32(n) {
				t.Fatalf("vec %d class %d: batch votes %d != scalar %d", i, c, votes[i*nc+c], n)
			}
		}
	}
}

// randomBlock builds a block mixing in-distribution vectors with hostile
// ones: out-of-distribution magnitudes, short vectors, empty vectors, and
// NaN/±Inf features.
func randomBlock(rng *rand.Rand, m, width int) [][]float64 {
	vecs := make([][]float64, m)
	for i := range vecs {
		switch rng.Intn(8) {
		case 0: // short vector: zero votes per the scalar contract
			vecs[i] = make([]float64, rng.Intn(width))
		case 1: // non-finite features
			v := make([]float64, width)
			for d := range v {
				switch rng.Intn(4) {
				case 0:
					v[d] = math.NaN()
				case 1:
					v[d] = math.Inf(1)
				case 2:
					v[d] = math.Inf(-1)
				default:
					v[d] = rng.NormFloat64() * 10
				}
			}
			vecs[i] = v
		default:
			v := make([]float64, width)
			for d := range v {
				v[d] = rng.NormFloat64() * 12
			}
			vecs[i] = v
		}
	}
	return vecs
}

func TestClassifyBatchMatchesScalar(t *testing.T) {
	ds := clusterDataset(t, 40, 101)
	f := Train(ds, Config{Trees: 31, Subspace: 2, Seed: 102})
	if !f.batchable {
		t.Fatal("trained model must be batchable")
	}
	rng := rand.New(rand.NewSource(103))
	// Blocks below batchMin exercise the scalar fallback inside
	// ClassifyBatchInto; larger ones the packed kernel.
	for _, m := range []int{0, 1, 2, 3, 4, 5, 7, 8, 16, 33, 64, 129} {
		assertBatchMatchesScalar(t, f, randomBlock(rng, m, 3))
	}
}

// dyadicDataset builds a dataset whose feature values sit on a k/4 grid,
// which makes every split threshold (a midpoint, so on the k/8 grid)
// exactly representable in float32 -- the lossless-quantization case.
func dyadicDataset(t *testing.T, n int, seed int64) *Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"x", "y", "z"}
	var samples []Sample
	for li, label := range labels {
		for i := 0; i < n; i++ {
			v := make([]float64, 4)
			for d := range v {
				v[d] = float64(li*32+rng.Intn(24)) / 4
			}
			samples = append(samples, Sample{Features: v, Label: label})
		}
	}
	ds, err := NewDataset(samples)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestClassifyBatchQuantizedMatchesScalar(t *testing.T) {
	ds := dyadicDataset(t, 50, 104)
	f := Train(ds, Config{Trees: 25, Subspace: 2, Seed: 105})
	if !f.Quantized() {
		t.Fatal("dyadic thresholds must quantize losslessly to float32")
	}
	rng := rand.New(rand.NewSource(106))
	for _, m := range []int{1, 4, 16, 64, 100} {
		vecs := randomBlock(rng, m, 4)
		// Land some features exactly on the threshold grid (k/8) so the
		// x == thr tie-break goes through both paths.
		for _, v := range vecs {
			for d := range v {
				if rng.Intn(3) == 0 {
					v[d] = float64(rng.Intn(24*8)) / 8
				}
			}
		}
		assertBatchMatchesScalar(t, f, vecs)
	}
}

func TestClassifyBatchUnquantizedModel(t *testing.T) {
	// Gaussian features give midpoint thresholds that essentially never
	// round-trip float32, pinning the float64 kernel specifically.
	ds := clusterDataset(t, 40, 107)
	f := Train(ds, Config{Trees: 20, Subspace: 2, Seed: 108})
	if f.Quantized() {
		t.Skip("model unexpectedly quantized; float64 path covered elsewhere")
	}
	rng := rand.New(rand.NewSource(109))
	assertBatchMatchesScalar(t, f, randomBlock(rng, 64, 3))
}

func TestVotesBatchScalarFallbackModel(t *testing.T) {
	// A model the packed arena cannot represent (zero feature width:
	// every tree is a bare leaf) must still answer through the fallback.
	one := []Sample{{Features: []float64{}, Label: "only"}}
	ds, err := NewDataset(one)
	if err != nil {
		t.Fatal(err)
	}
	f := Train(ds, Config{Trees: 5, Subspace: 1, Seed: 110})
	if f.batchable {
		t.Fatal("width-0 model must not be batchable")
	}
	vecs := [][]float64{{}, {1, 2}, {}}
	assertBatchMatchesScalar(t, f, vecs)
}

func TestBatchArenaInvariants(t *testing.T) {
	ds := clusterDataset(t, 40, 111)
	f := Train(ds, Config{Trees: 17, Subspace: 2, Seed: 112})
	for t2 := 0; t2 < f.NumTrees(); t2++ {
		root := f.starts[t2]
		end := f.starts[t2+1]
		for i := root; i < end; i++ {
			if f.feat[i] < 0 {
				// Leaf: packed self-loop with +Inf threshold.
				if f.meta[i] != i<<f.featShift {
					t.Fatalf("node %d: leaf meta %d != self-loop", i, f.meta[i])
				}
				if !math.IsInf(f.bthr[i], 1) {
					t.Fatalf("node %d: leaf bthr %v != +Inf", i, f.bthr[i])
				}
				continue
			}
			l, r := f.kids[2*i], f.kids[2*i+1]
			if r != l+1 {
				t.Fatalf("node %d: children %d/%d not adjacent (level order broken)", i, l, r)
			}
			if l <= i || r >= end {
				t.Fatalf("node %d: children %d/%d outside (parent, tree end)", i, l, r)
			}
			if f.meta[i] != l<<f.featShift|f.feat[i] {
				t.Fatalf("node %d: meta %d does not pack child %d feature %d", i, f.meta[i], l, f.feat[i])
			}
			if f.bthr[i] != f.thr[i] {
				t.Fatalf("node %d: bthr %v != thr %v", i, f.bthr[i], f.thr[i])
			}
		}
	}
}

func TestSaveLoadSaveIsIdempotent(t *testing.T) {
	// The level-order layout is canonical: once flattened, persisting and
	// reloading must reproduce the byte-identical document.
	ds := clusterDataset(t, 30, 113)
	f := Train(ds, Config{Trees: 9, Subspace: 2, Seed: 114})
	var b1 bytes.Buffer
	if err := f.Save(&b1); err != nil {
		t.Fatal(err)
	}
	g, err := Load(bytes.NewReader(b1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b2 bytes.Buffer
	if err := g.Save(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("Save -> Load -> Save changed the document; level-order layout is not canonical")
	}
	if g.batchable != f.batchable || g.Quantized() != f.Quantized() {
		t.Fatal("Load must rebuild the same batch arena capabilities")
	}
}

func TestLoadBuildsBatchArena(t *testing.T) {
	ds := clusterDataset(t, 30, 115)
	f := Train(ds, Config{Trees: 7, Subspace: 2, Seed: 116})
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.batchable {
		t.Fatal("loaded model must be batchable")
	}
	rng := rand.New(rand.NewSource(117))
	assertBatchMatchesScalar(t, g, randomBlock(rng, 64, 3))
}

func TestClassifyBatchZeroAllocsSteadyState(t *testing.T) {
	ds := clusterDataset(t, 40, 118)
	f := Train(ds, Config{Trees: 21, Subspace: 2, Seed: 119})
	rng := rand.New(rand.NewSource(120))
	vecs := randomBlock(rng, 64, 3)
	labels := make([]string, len(vecs))
	confs := make([]float64, len(vecs))
	var sc BatchScratch
	f.ClassifyBatchInto(&sc, vecs, labels, confs) // warm scratch
	if n := testing.AllocsPerRun(50, func() {
		f.ClassifyBatchInto(&sc, vecs, labels, confs)
	}); n != 0 {
		t.Fatalf("ClassifyBatchInto allocates %.1f per block, want 0", n)
	}
	f.ClassifyBatch(vecs, labels, confs) // warm the pool
	if n := testing.AllocsPerRun(50, func() {
		f.ClassifyBatch(vecs, labels, confs)
	}); n != 0 {
		t.Fatalf("ClassifyBatch allocates %.1f per block, want 0", n)
	}
}

// benchModel trains a forest sized like the production configuration (80
// trees) on a separable synthetic set, for in-package kernel benchmarks.
// The authoritative trajectory numbers come from internal/bench against
// the experiment-scale model.
func benchModel(b *testing.B) (*Forest, [][]float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(121))
	centers := [][]float64{
		{0, 0, 0, 5, 1, 9, 2, 4},
		{10, 10, 0, 1, 8, 2, 7, 3},
		{0, 10, 10, 7, 3, 5, 1, 8},
		{10, 0, 10, 3, 6, 1, 9, 2},
	}
	names := []string{"a", "b", "c", "d"}
	var samples []Sample
	for ci, c := range centers {
		for i := 0; i < 160; i++ {
			v := make([]float64, len(c))
			for d := range v {
				v[d] = c[d] + rng.NormFloat64()*2
			}
			samples = append(samples, Sample{Features: v, Label: names[ci]})
		}
	}
	ds, err := NewDataset(samples)
	if err != nil {
		b.Fatal(err)
	}
	f := Train(ds, Config{Trees: 80, Subspace: 4, Seed: 122})
	vecs := make([][]float64, 64)
	for i := range vecs {
		v := make([]float64, 8)
		c := centers[i%len(centers)]
		for d := range v {
			v[d] = c[d] + rng.NormFloat64()*3
		}
		vecs[i] = v
	}
	return f, vecs
}

func BenchmarkClassifyScalar64(b *testing.B) {
	f, vecs := benchModel(b)
	var votes []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range vecs {
			_, _, votes = f.ClassifyBuf(v, votes)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(vecs)), "ns/sample")
}

func BenchmarkClassifyBatch64(b *testing.B) {
	f, vecs := benchModel(b)
	labels := make([]string, len(vecs))
	confs := make([]float64, len(vecs))
	var sc BatchScratch
	f.ClassifyBatchInto(&sc, vecs, labels, confs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ClassifyBatchInto(&sc, vecs, labels, confs)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(vecs)), "ns/sample")
}
