// Package forest implements the Breiman random forest CAAI uses for
// algorithm classification: CART trees grown without pruning on bootstrap
// samples, with a random subspace of F features considered at every split,
// majority voting, and a vote-share confidence (the paper's "classification
// confidence level"). It also provides k-fold cross validation and
// confusion matrices for Table III and Fig. 12.
//
// Trained trees are not stored as individual node objects: Train and Load
// fuse all trees into one contiguous structure-of-arrays arena (see
// forest.go), so classification walks flat parallel slices instead of
// chasing per-tree heap pointers. This file holds the tree *builder*, which
// still grows one tree at a time into a temporary node slice.
package forest

import (
	"math"
	"math/rand"
	"sort"
)

// treeNode is one node of a tree under construction. It only lives inside
// the builder; finished trees are flattened into the forest arena.
type treeNode struct {
	// feature/threshold define an internal node's split: samples with
	// features[feature] <= threshold go left.
	feature   int
	threshold float64
	left      int32
	right     int32
	// leaf marks terminal nodes; label is the majority class index.
	leaf  bool
	label int
}

// treeBuilder grows one tree from a bootstrap sample.
type treeBuilder struct {
	features [][]float64 // row-major: features[sample][dim]
	labels   []int
	classes  int
	subspace int
	minLeaf  int
	rng      *rand.Rand
	nodes    []treeNode
}

// build grows the tree on the given sample indices and returns its nodes
// (root at index 0).
func (b *treeBuilder) build(idx []int) []treeNode {
	b.nodes = b.nodes[:0]
	b.grow(idx)
	nodes := make([]treeNode, len(b.nodes))
	copy(nodes, b.nodes)
	return nodes
}

// grow recursively grows a subtree on idx and returns its root node index.
func (b *treeBuilder) grow(idx []int) int32 {
	counts := make([]int, b.classes)
	for _, i := range idx {
		counts[b.labels[i]]++
	}
	major, pure := majority(counts, len(idx))
	self := int32(len(b.nodes))
	b.nodes = append(b.nodes, treeNode{leaf: true, label: major})
	if pure || len(idx) <= b.minLeaf {
		return self
	}

	feat, thr, ok := b.bestSplit(idx, counts)
	if !ok {
		return self
	}
	var left, right []int
	for _, i := range idx {
		if b.features[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return self
	}
	l := b.grow(left)
	r := b.grow(right)
	b.nodes[self] = treeNode{feature: feat, threshold: thr, left: l, right: r}
	return self
}

// majority returns the most frequent class and whether the set is pure.
func majority(counts []int, total int) (label int, pure bool) {
	best := -1
	for c, n := range counts {
		if n > best {
			best = n
			label = c
		}
	}
	return label, best == total
}

// bestSplit evaluates a random subspace of features and returns the split
// with the lowest weighted Gini impurity.
func (b *treeBuilder) bestSplit(idx []int, counts []int) (feature int, threshold float64, ok bool) {
	dims := len(b.features[0])
	perm := b.rng.Perm(dims)
	k := b.subspace
	if k > dims {
		k = dims
	}
	parent := gini(counts, len(idx))
	bestGain := 1e-12
	sorted := make([]int, len(idx))
	leftCounts := make([]int, b.classes)
	rightCounts := make([]int, b.classes)
	for _, f := range perm[:k] {
		copy(sorted, idx)
		sort.Slice(sorted, func(a, c int) bool {
			return b.features[sorted[a]][f] < b.features[sorted[c]][f]
		})
		for i := range leftCounts {
			leftCounts[i] = 0
		}
		copy(rightCounts, counts)
		n := len(sorted)
		for i := 0; i < n-1; i++ {
			lab := b.labels[sorted[i]]
			leftCounts[lab]++
			rightCounts[lab]--
			v, next := b.features[sorted[i]][f], b.features[sorted[i+1]][f]
			if v == next {
				continue // can't split between equal values
			}
			nl, nr := i+1, n-i-1
			w := (float64(nl)*gini(leftCounts, nl) + float64(nr)*gini(rightCounts, nr)) / float64(n)
			if gain := parent - w; gain > bestGain {
				bestGain = gain
				feature = f
				threshold = (v + next) / 2
				ok = true
			}
		}
	}
	return feature, threshold, ok
}

// gini computes the Gini impurity of a class count vector.
func gini(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	sum := 0.0
	ft := float64(total)
	for _, n := range counts {
		p := float64(n) / ft
		sum += p * p
	}
	return 1 - sum
}

// sanity guard referenced by tests; NaN thresholds must never appear.
func validThreshold(t float64) bool { return !math.IsNaN(t) && !math.IsInf(t, 0) }
