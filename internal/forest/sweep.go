package forest

import (
	"runtime"
	"unsafe"
)

// This file drives the reach-mask sweep kernel (sweep_amd64.s), the fast
// path behind VotesBatch on AVX-512 hardware.
//
// The portable kernel in batch.go advances each (lane, tree) pair one
// node at a time, so its cost is the sum of path lengths with a few
// nanoseconds of bookkeeping per advance -- enough ILP to match the
// scalar walk but not to beat it 3x. The sweep inverts the loop: instead
// of lanes walking nodes, nodes filter lanes. Each node carries a 64-bit
// occupancy mask of which block lanes are at it. An internal node
// broadcasts its threshold once and compares it against all 64 lanes
// (eight VCMPPD over a feature-major block), splitting its reach mask
// into the two children's; a leaf ORs its reach into a per-class
// accumulator. One pass over the tree routes the whole block, so the
// per-node cost is amortized over up to 64 samples. Because the arena is
// breadth-first, every parent precedes its children, so a tree is
// evaluated by two straight-line passes with no data-dependent branch at
// all: pass 1 streams the internal nodes (split out into their own
// packed array at arena-build time) propagating reach masks, pass 2
// streams the leaves ORing reach into the class masks. After each tree
// the class masks drain into per-lane byte vote counters.
//
// Routing is bit-identical to the scalar walk by construction: VCMPPD
// with predicate GE_OQ computes thr >= x per lane, which is exactly the
// scalar "x <= thr" -- including NaN (unordered compares false, routing
// right, as the scalar walk does) -- so unlike the portable kernel's
// sign-bit trick the sweep needs no input sanitization.

// sweepArgs is the single-pointer argument block for forestSweep. Field
// offsets are hard-coded in sweep_amd64.s -- keep layout in sync.
type sweepArgs struct {
	inodes     unsafe.Pointer // *uint64: internal-node stream (sweepNodes)
	ithr       unsafe.Pointer // *float64: internal-node thresholds (sweepThr)
	lpairs     unsafe.Pointer // *uint64: leaf stream (sweepLeaves)
	reach      unsafe.Pointer // *uint64: per-node lane masks, maxTreeNodes
	x          unsafe.Pointer // *float64: feature-major block, width x 64
	classMasks unsafe.Pointer // *uint64: per-class leaf-lane masks (asm-cleared)
	votes      unsafe.Pointer // *uint8: per-class 64-lane byte counters, nc*64
	istarts    unsafe.Pointer // *int32: per-tree offsets into inodes/ithr, nt+1
	lstarts    unsafe.Pointer // *int32: per-tree offsets into lpairs, nt+1
	nt         int64          // tree count
	live       int64          // live-lane mask for this chunk
	shift      int64          // child-field shift in the routing word
	featMask   int64          // (1<<shift)-1: masks out the feature byte offset
	nc         int64          // class count
}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func growU8(s []uint8, n int) []uint8 {
	if cap(s) < n {
		return make([]uint8, n)
	}
	return s[:n]
}

// sweepEnabled gates dispatch to the assembly kernel; tests flip it off to
// exercise the portable kernel on AVX-512 hardware too.
var sweepEnabled = true

// useSweep reports whether VotesBatch should take the reach-mask kernel.
// The per-lane vote counters are bytes, so the sweep serves forests of up
// to 255 trees (far above the paper's K=80); larger ensembles take the
// portable kernel.
func (f *Forest) useSweep() bool {
	return sweepEnabled && haveAVX512 && f.istarts != nil && f.NumTrees() <= 255
}

// votesSweep services VotesBatch through the reach-mask kernel in 64-lane
// chunks. dst must be zeroed m*nc, sample-major, exactly as votesBatch
// expects it.
//
// Vote accumulation happens inside the kernel: after routing a tree it
// expands each class's leaf-lane mask to 64 bytes and adds it into a
// per-class byte counter row (VPMOVM2B + VPSUBB), then clears the mask
// for the next tree. The Go side only transposes the chunk, loops trees,
// and copies the byte counters out -- no per-(tree,class) work, which
// would otherwise rival the sweep itself at realistic class counts.
func (f *Forest) votesSweep(dst []int32, vecs [][]float64, sc *BatchScratch) {
	w := f.width
	nc := len(f.classes)
	nt := f.NumTrees()
	sc.xT = growF64(sc.xT, w*64)
	sc.reach = growU64(sc.reach, f.maxTreeNodes)
	sc.cmask = growU64(sc.cmask, nc)
	sc.votes8 = growU8(sc.votes8, nc*64)
	xT, reach, cmask, votes8 := sc.xT, sc.reach, sc.cmask, sc.votes8

	// A model can in principle have internal-only or leaf-only streams
	// empty (single-leaf trees have no internal nodes); keep the pointers
	// valid either way.
	var inodes *uint64
	var ithr *float64
	if len(f.sweepNodes) > 0 {
		inodes = &f.sweepNodes[0]
		ithr = &f.sweepThr[0]
	}
	args := sweepArgs{
		inodes:     unsafe.Pointer(inodes),
		ithr:       unsafe.Pointer(ithr),
		lpairs:     unsafe.Pointer(&f.sweepLeaves[0]),
		reach:      unsafe.Pointer(&reach[0]),
		x:          unsafe.Pointer(&xT[0]),
		classMasks: unsafe.Pointer(&cmask[0]),
		votes:      unsafe.Pointer(&votes8[0]),
		istarts:    unsafe.Pointer(&f.istarts[0]),
		lstarts:    unsafe.Pointer(&f.lstarts[0]),
		nt:         int64(nt),
		shift:      int64(f.sweepShift),
		featMask:   int64(1)<<f.sweepShift - 1,
		nc:         int64(nc),
	}

	// The kernel leaves classMasks zeroed behind itself; it only needs to
	// start zero, which growU64's fresh allocation guarantees and every
	// sweep re-establishes.
	for base := 0; base < len(vecs); base += 64 {
		chunk := vecs[base:min(base+64, len(vecs))]

		// Transpose the chunk feature-major: xT[d*64+ln] = chunk[ln][d].
		// Short vectors stay out of the live mask; their xT rows keep
		// stale values, which the reach masks keep out of every result.
		var live uint64
		for ln, v := range chunk {
			if len(v) < w {
				continue
			}
			live |= 1 << uint(ln)
			for d := 0; d < w; d++ {
				xT[d*64+ln] = v[d]
			}
		}
		if live == 0 {
			continue
		}

		for i := range votes8 {
			votes8[i] = 0
		}
		args.live = int64(live)
		forestSweep(&args)

		for ln := range chunk {
			if live&(1<<uint(ln)) == 0 {
				continue
			}
			row := dst[(base+ln)*nc : (base+ln+1)*nc]
			for c := 0; c < nc; c++ {
				row[c] = int32(votes8[c*64+ln])
			}
		}
	}
	runtime.KeepAlive(f)
	runtime.KeepAlive(sc)
}
