package forest

import (
	"math/rand"
	"testing"
)

// forcePortable turns the assembly sweep off for the duration of a test so
// the portable kernel keeps coverage on machines where the sweep would
// otherwise service every batch call.
func forcePortable(t *testing.T) {
	t.Helper()
	was := sweepEnabled
	sweepEnabled = false
	t.Cleanup(func() { sweepEnabled = was })
}

// TestPortableKernelMatchesScalar re-runs the batch/scalar contract with
// the sweep kernel disabled, pinning the portable compaction kernel
// against the scalar walk regardless of host CPU features.
func TestPortableKernelMatchesScalar(t *testing.T) {
	forcePortable(t)
	ds := clusterDataset(t, 40, 301)
	f := Train(ds, Config{Trees: 31, Subspace: 2, Seed: 302})
	rng := rand.New(rand.NewSource(303))
	for _, m := range []int{4, 8, 33, 64, 129} {
		assertBatchMatchesScalar(t, f, randomBlock(rng, m, 3))
	}
}

// TestSweepMatchesPortable pins the assembly reach-mask kernel against the
// portable kernel bit for bit on hostile random blocks: every vote count
// must agree. Skips on hardware without AVX-512 (the dispatcher never
// takes the sweep there).
func TestSweepMatchesPortable(t *testing.T) {
	if !haveAVX512 || !sweepEnabled {
		t.Skip("sweep kernel not available on this host")
	}
	ds := clusterDataset(t, 50, 311)
	f := Train(ds, Config{Trees: 81, Subspace: 2, Seed: 312})
	if !f.useSweep() {
		t.Fatal("trained model must dispatch to the sweep kernel")
	}
	rng := rand.New(rand.NewSource(313))
	nc := f.NumClasses()
	for _, m := range []int{4, 17, 63, 64, 65, 128, 200} {
		vecs := randomBlock(rng, m, 3)
		got := f.VotesBatch(nil, vecs, nil)
		sweepEnabled = false
		want := f.VotesBatch(nil, vecs, nil)
		sweepEnabled = true
		for i := 0; i < m*nc; i++ {
			if got[i] != want[i] {
				t.Fatalf("m=%d vec %d class %d: sweep votes %d != portable %d",
					m, i/nc, i%nc, got[i], want[i])
			}
		}
	}
}

// TestSweepArenaInvariants checks the split-stream encoding the assembly
// kernel consumes: every node of every tree appears exactly once in the
// internal or the leaf stream in breadth-first order, the routing word
// recovers the scalar arena's feature, threshold and (adjacent) children,
// and the leaf pair recovers the label.
func TestSweepArenaInvariants(t *testing.T) {
	ds := clusterDataset(t, 30, 321)
	f := Train(ds, Config{Trees: 13, Subspace: 2, Seed: 322})
	if f.istarts == nil {
		t.Fatal("batchable model must carry the sweep arenas")
	}
	if len(f.sweepNodes) != len(f.sweepThr) {
		t.Fatalf("sweepNodes len %d != sweepThr len %d", len(f.sweepNodes), len(f.sweepThr))
	}
	if len(f.sweepNodes)+len(f.sweepLeaves) != len(f.feat) {
		t.Fatalf("streams hold %d+%d nodes, arena has %d",
			len(f.sweepNodes), len(f.sweepLeaves), len(f.feat))
	}
	maxTree := 0
	for tr := 0; tr < f.NumTrees(); tr++ {
		root := f.starts[tr]
		n := f.starts[tr+1] - root
		if int(n) > maxTree {
			maxTree = int(n)
		}
		in := f.sweepNodes[f.istarts[tr]:f.istarts[tr+1]]
		thr := f.sweepThr[f.istarts[tr]:f.istarts[tr+1]]
		lv := f.sweepLeaves[f.lstarts[tr]:f.lstarts[tr+1]]
		if len(in)+len(lv) != int(n) {
			t.Fatalf("tree %d: %d internal + %d leaves != %d nodes", tr, len(in), len(lv), n)
		}
		prev := int32(-1)
		for k, p := range in {
			j := int32(uint32(p))
			word := uint32(p >> 32)
			if j <= prev {
				t.Fatalf("tree %d: internal stream not in BFS order at %d", tr, k)
			}
			prev = j
			i := root + j
			if f.feat[i] < 0 {
				t.Fatalf("tree %d: leaf %d in internal stream", tr, i)
			}
			if int32(word&(1<<f.sweepShift-1)) != f.feat[i]<<9 {
				t.Fatalf("internal %d: word offset %d != feature %d * 512",
					i, word&(1<<f.sweepShift-1), f.feat[i])
			}
			kid := int32(word >> f.sweepShift)
			if root+kid != f.kids[2*i] || root+kid+1 != f.kids[2*i+1] {
				t.Fatalf("internal %d: word child %d does not match kids (%d,%d) at root %d",
					i, kid, f.kids[2*i], f.kids[2*i+1], root)
			}
			if kid >= n {
				t.Fatalf("internal %d: tree-local child %d out of tree (n=%d)", i, kid, n)
			}
			if thr[k] != f.thr[i] {
				t.Fatalf("internal %d: sweep threshold %v != %v", i, thr[k], f.thr[i])
			}
		}
		for _, p := range lv {
			j := int32(uint32(p))
			label := int32(p >> 32)
			i := root + j
			if f.feat[i] >= 0 {
				t.Fatalf("tree %d: internal node %d in leaf stream", tr, i)
			}
			if label != f.labels[i] {
				t.Fatalf("leaf %d: stream label %d != %d", i, label, f.labels[i])
			}
		}
	}
	if f.maxTreeNodes != maxTree {
		t.Fatalf("maxTreeNodes %d, want %d", f.maxTreeNodes, maxTree)
	}
}
