//go:build amd64

#include "textflag.h"

// func forestSweep(a *sweepArgs)
//
// Reach-mask sweep of every tree against a 64-lane feature block. Each
// tree-local node has a 64-bit mask of the lanes occupying it; the root
// starts with the chunk's live mask. Because the arena is breadth-first
// (every parent precedes its children) a tree evaluates in two
// straight-line passes with no data-dependent branch anywhere:
//
// Pass 1 streams the tree's internal nodes, packed at arena-build time
// into (self index, routing word) pairs with a parallel threshold array
// so every load is sequential. A node broadcasts its threshold and
// compares it against all 64 lanes (8x VCMPPD, predicate GE_OQ: bit =
// thr >= x, exactly the scalar walk's x <= thr including NaN -> right),
// the 8-bit masks are packed into one 64-bit mask m, and the children's
// reach is written as r&m / r&^m. Nodes reached by no lane (r == 0)
// skip the compares and just write two empty children: that branch is
// strongly biased per node position (a node is dead for the whole block
// at once), and on realistic blocks -- cwnd-trace vectors of similar
// flows follow similar paths -- well over half the internal nodes are
// dead, which is where the sweep's headroom over a full scan comes from.
//
// Pass 2 streams the tree's leaves as (self index, label) pairs, ORing
// each leaf's reach mask into classMasks[label]; unreached leaves skip
// the OR to stay off the per-class read-modify-write chains.
//
// After each tree the class masks drain into per-lane byte vote counters
// (VPMOVM2B + VPSUBB) and are cleared for the next tree.
//
// Register plan (pass 1):
//   SI node-pair cursor  R10 end  DX threshold cursor  BX x
//   R8 reach  CX shift  R13 featMask
//   AX pair / word / scratch  R11 self, then left child
//   R12 reach mask  BP x row  DI merged compare mask
// The tree index t lives on the frame; per-tree state reloads from FP.
TEXT ·forestSweep(SB), NOSPLIT, $8-8
	MOVQ a+0(FP), AX
	MOVQ 32(AX), BX         // x
	MOVQ 24(AX), R8         // reach
	MOVQ 88(AX), CX         // shift
	MOVQ 96(AX), R13        // featMask
	MOVQ $0, t-8(SP)

tree_loop:
	MOVQ a+0(FP), AX
	MOVQ t-8(SP), R9
	CMPQ R9, 72(AX)         // nt
	JGE  all_done
	MOVQ 80(AX), R11        // live
	MOVQ R11, (R8)          // reach[root] = live
	MOVQ 56(AX), SI         // istarts
	MOVLQSX (SI)(R9*4), R12    // this tree's first internal node
	MOVLQSX 4(SI)(R9*4), R10   // one past its last
	// One induction variable serves both streams: SI becomes the
	// negative byte offset from the shared end, counted up to zero, so
	// the loop back-edge is a single fused add-and-branch.
	SUBQ R10, R12
	SHLQ $3, R12
	MOVQ 8(AX), DX
	LEAQ (DX)(R10*8), DX    // threshold end pointer
	MOVQ 0(AX), SI
	LEAQ (SI)(R10*8), R10   // node-pair end pointer
	MOVQ R12, SI
	TESTQ SI, SI
	JZ   leaves

	// Keep the hot loop's branch targets off 32-byte boundary straddles
	// and DSB-friendly.
	PCALIGN $32

pass1:
	MOVQ (R10)(SI*1), AX    // low 32: self, high 32: routing word
	VBROADCASTSD (DX)(SI*1), Z0
	MOVL AX, R11            // self (zero-extends)
	MOVQ (R8)(R11*8), R12   // r = reach[self]
	SHRQ $32, AX            // routing word
	MOVL AX, R11
	SHRL CX, R11            // tree-local left child
	// Dead subtree: no lane reaches this node, so both children get
	// empty reach and the compares can be skipped. The branch is
	// strongly biased per node position (a node is dead for a whole
	// block at a time), and on clustered blocks -- the realistic case,
	// where a chunk's vectors follow similar paths -- well over half the
	// internal nodes are dead, so the saved compare/merge work far
	// outweighs the occasional mispredict.
	TESTQ R12, R12
	JZ   dead
	ANDL R13, AX            // feature byte-row offset (pre-scaled by 512)
	LEAQ (BX)(AX*1), BP
	VCMPPD $0x1D, (BP), Z0, K1     // lanes 0-7:   thr >= x
	VCMPPD $0x1D, 64(BP), Z0, K2   // lanes 8-15
	VCMPPD $0x1D, 128(BP), Z0, K3  // lanes 16-23
	VCMPPD $0x1D, 192(BP), Z0, K4  // lanes 24-31
	VCMPPD $0x1D, 256(BP), Z0, K5  // lanes 32-39
	VCMPPD $0x1D, 320(BP), Z0, K6  // lanes 40-47
	VCMPPD $0x1D, 384(BP), Z0, K7  // lanes 48-55
	VCMPPD $0x1D, 448(BP), Z0, K0  // lanes 56-63 (K0 is a legal destination)
	// Merge the eight 8-bit masks: one KUNPCKBW level in mask registers
	// (4 ops), then a balanced KMOVW + shift/or tree in GPRs. Measured
	// best on this generation: a full KUNPCK tree overloads the mask
	// port the compares need, an all-GPR merge spends too many uops.
	KUNPCKBW K1, K2, K1     // lanes 0-15
	KUNPCKBW K3, K4, K3     // lanes 16-31
	KUNPCKBW K5, K6, K5     // lanes 32-47
	KUNPCKBW K7, K0, K7     // lanes 48-63
	KMOVW K1, DI
	KMOVW K3, AX
	SHLQ $16, AX
	ORQ  AX, DI
	KMOVW K5, R9
	KMOVW K7, AX
	SHLQ $16, AX
	ORQ  AX, R9
	SHLQ $32, R9
	ORQ  R9, DI             // all 64 lanes
	MOVQ R12, AX
	ANDQ DI, AX             // left reach = r & m
	ANDNQ R12, DI, DI       // right reach = r &^ m
	MOVQ AX, (R8)(R11*8)    // children are adjacent (BFS)
	MOVQ DI, 8(R8)(R11*8)
	ADDQ $8, SI
	JNZ  pass1
	JMP  leaves

dead:
	MOVQ $0, (R8)(R11*8)
	MOVQ $0, 8(R8)(R11*8)
	ADDQ $8, SI
	JNZ  pass1

leaves:
	MOVQ a+0(FP), AX
	MOVQ t-8(SP), R9
	MOVQ 64(AX), SI         // lstarts
	MOVLQSX (SI)(R9*4), R12
	MOVLQSX 4(SI)(R9*4), R10
	MOVQ 16(AX), SI         // lpairs
	LEAQ (SI)(R10*8), R10   // end pointer
	LEAQ (SI)(R12*8), SI    // leaf-pair cursor
	MOVQ 40(AX), R9         // classMasks

pass2:
	CMPQ SI, R10
	JGE  tree_done
	MOVQ (SI), AX           // low 32: self, high 32: label
	ADDQ $8, SI
	MOVL AX, R11            // self
	SHRQ $32, AX            // label
	MOVQ (R8)(R11*8), R12
	TESTQ R12, R12
	JZ   pass2
	ORQ  R12, (R9)(AX*8)
	JMP  pass2

tree_done:
	// Accumulate this tree's class masks into the per-lane byte vote
	// counters and clear the masks for the next tree: each set mask bit
	// expands to a 0xFF (= -1) byte via VPMOVM2B, and VPSUBB turns that
	// into +1 on the counter row. Unconditional per class -- a zero mask
	// is a cheap no-op, and a skip branch here would be data-dependent.
	MOVQ a+0(FP), AX
	MOVQ 48(AX), DI         // votes byte counters
	MOVQ 104(AX), R10       // nc
	XORQ R11, R11

votes_loop:
	CMPQ R11, R10
	JGE  next_tree
	MOVQ (R9)(R11*8), AX
	KMOVQ AX, K1
	VPMOVM2B K1, Z1
	MOVQ R11, AX
	SHLQ $6, AX             // class row byte offset = c*64
	VMOVDQU8 (DI)(AX*1), Z2
	VPSUBB Z1, Z2, Z2
	VMOVDQU8 Z2, (DI)(AX*1)
	MOVQ $0, (R9)(R11*8)
	INCQ R11
	JMP  votes_loop

next_tree:
	MOVQ t-8(SP), R9
	INCQ R9
	MOVQ R9, t-8(SP)
	JMP  tree_loop

all_done:
	VZEROUPPER
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
