package forest

import (
	"math/rand"
	"testing"
)

func TestSubspaceLargerThanDims(t *testing.T) {
	ds := clusterDataset(t, 20, 31)
	// Subspace 10 > 3 dims must clamp, not panic.
	f := Train(ds, Config{Trees: 5, Subspace: 10, Seed: 32})
	if label, _ := f.Classify([]float64{0, 0, 0}); label != "a" {
		t.Fatalf("got %s", label)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Trees != 80 || cfg.Subspace != 4 || cfg.MinLeaf != 1 {
		t.Fatalf("paper defaults wrong: %+v", cfg)
	}
}

func TestForestClassesImmutableView(t *testing.T) {
	ds := clusterDataset(t, 10, 33)
	f := Train(ds, Config{Trees: 3, Subspace: 2, Seed: 34})
	// Classes returns a shared read-only view: stable across calls (no
	// per-call copy) and aligned with the vote-vector index order.
	a, b := f.Classes(), f.Classes()
	if len(a) == 0 || &a[0] != &b[0] {
		t.Fatal("Classes must return the same shared view every call")
	}
	want := ds.Classes()
	for i, c := range a {
		if c != want[i] {
			t.Fatalf("Classes()[%d] = %q, want %q", i, c, want[i])
		}
	}
}

func TestClassesZeroAllocs(t *testing.T) {
	ds := clusterDataset(t, 10, 33)
	f := Train(ds, Config{Trees: 3, Subspace: 2, Seed: 34})
	var sink []string
	if n := testing.AllocsPerRun(100, func() { sink = f.Classes() }); n != 0 {
		t.Fatalf("Classes allocates %.1f per call, want 0", n)
	}
	_ = sink
}

func TestCrossValidateFoldFloor(t *testing.T) {
	ds := clusterDataset(t, 10, 35)
	// folds < 2 clamps to 2 rather than degenerating.
	m := CrossValidate(ds, Config{Trees: 3, Subspace: 2, Seed: 36}, 1, rand.New(rand.NewSource(37)))
	total := 0
	for _, a := range m.Classes() {
		for _, p := range m.Classes() {
			total += m.Count(a, p)
		}
	}
	if total != ds.Len() {
		t.Fatalf("validated %d, want %d", total, ds.Len())
	}
}

func TestMinLeafStopsSplitting(t *testing.T) {
	ds := clusterDataset(t, 30, 38)
	// A huge MinLeaf forces root-level majority leaves.
	f := Train(ds, Config{Trees: 3, Subspace: 2, MinLeaf: 1000, Seed: 39})
	votes := f.Votes([]float64{0, 0, 0})
	sum := 0
	for _, v := range votes {
		sum += v
	}
	if sum != 3 {
		t.Fatalf("votes = %v", votes)
	}
}

func TestSortedCopyHelper(t *testing.T) {
	in := []string{"b", "a"}
	out := sortedCopy(in)
	if out[0] != "a" || in[0] != "b" {
		t.Fatal("sortedCopy must not mutate input")
	}
}
