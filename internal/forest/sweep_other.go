//go:build !amd64

package forest

// The reach-mask sweep kernel is amd64-only; everywhere else VotesBatch
// always takes the portable kernel in batch.go.
const haveAVX512 = false

func forestSweep(a *sweepArgs) {
	panic("forest: forestSweep called without AVX-512")
}
