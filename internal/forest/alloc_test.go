package forest

import "testing"

// TestVotesIntoZeroAllocs pins the zero-allocation contract of the arena
// walk: once the caller owns a vote buffer, VotesInto must not touch the
// heap. A regression here silently reintroduces per-classification garbage
// on the service hot path.
func TestVotesIntoZeroAllocs(t *testing.T) {
	ds := clusterDataset(t, 40, 21)
	f := Train(ds, Config{Trees: 30, Subspace: 2, Seed: 22})
	vec := []float64{1, 9, 2}
	votes := f.VotesInto(nil, vec)
	if allocs := testing.AllocsPerRun(200, func() {
		votes = f.VotesInto(votes, vec)
	}); allocs != 0 {
		t.Fatalf("VotesInto allocates %v per run, want 0", allocs)
	}
}

// TestClassifyZeroAllocsSteadyState: the pooled Classify path must also be
// allocation-free once the vote pool is warm.
func TestClassifyZeroAllocsSteadyState(t *testing.T) {
	ds := clusterDataset(t, 40, 23)
	f := Train(ds, Config{Trees: 30, Subspace: 2, Seed: 24})
	vec := []float64{0, 1, 10}
	f.Classify(vec) // warm the vote pool
	if allocs := testing.AllocsPerRun(200, func() {
		f.Classify(vec)
	}); allocs != 0 {
		t.Fatalf("Classify allocates %v per run, want 0", allocs)
	}
}

// TestFlattenPreservesClassification: training and then persisting through
// the arena is vote-for-vote identical with Classify/Votes across a probe
// grid (the bit-identical pre/post-flattening guarantee).
func TestFlattenPreservesClassification(t *testing.T) {
	ds := clusterDataset(t, 40, 25)
	f := Train(ds, Config{Trees: 20, Subspace: 2, Seed: 26})
	var votes []int
	for _, x := range []float64{-3, 0, 4, 11} {
		for _, y := range []float64{-2, 5, 10} {
			vec := []float64{x, y, x + y}
			plain := f.Votes(vec)
			votes = f.VotesInto(votes, vec)
			for c := range plain {
				if plain[c] != votes[c] {
					t.Fatalf("VotesInto(%v) = %v, Votes = %v", vec, votes, plain)
				}
			}
			l1, c1 := f.Classify(vec)
			l2, c2, _ := f.ClassifyBuf(vec, votes)
			if l1 != l2 || c1 != c2 {
				t.Fatalf("ClassifyBuf(%v) = (%s, %v), Classify = (%s, %v)", vec, l2, c2, l1, c1)
			}
		}
	}
}
