package forest

import (
	"math"
	"math/bits"
	"sync"
)

// This file implements batched, branch-free forest inference over a packed
// mirror of the level-order arena.
//
// Layout. buildBatchArena derives two parallel arrays from the scalar
// arena: meta[i] packs (leftChild << featShift) | feature into one int32,
// and bthr[i] holds the split threshold (float64, plus a float32 shadow
// bthr32 when quantization is lossless). The breadth-first layout
// guarantees a node's children are adjacent (right == left+1), so a single
// child index suffices and the per-node working set is 12 bytes (8 with
// quantized thresholds) -- small enough that the quick-scale model's trees
// sit in L1 and the full-scale model in L2. Leaves carry meta = i<<shift
// (a self-loop with feature 0) and bthr = +Inf.
//
// Advance. For a lane at node i with feature value x the next node is
//
//	b  := int32(math.Float64bits(bthr[i]-x) >> 63)   // 1 iff x > thr
//	ni := meta[i]>>featShift + b
//
// with no data-dependent branch: the sign bit of thr-x is the select. The
// identity "sign(thr-x) == (x > thr)" holds for all finite x and thr
// because distinct float64s never subtract to exactly zero (gradual
// underflow) and x == thr yields +0 (sign 0, i.e. left, matching the
// scalar walk's x <= thr). Feature values are sanitized at gather time to
// the finite range [-MaxFloat64, MaxFloat64] (NaN and +Inf map to
// MaxFloat64, which routes right at every split exactly as the scalar
// walk's "NaN <= thr is false" does; -Inf maps to -MaxFloat64, routing
// left). With x finite, a leaf's +Inf threshold gives thr-x = +Inf, sign
// 0, so b == 0 and ni == i deterministically -- leaves self-loop and the
// loop needs no depth bound. buildBatchArena refuses models
// with |thr| >= MaxFloat64 (batchable=false, scalar fallback), which is
// the only case where sanitization could disagree with the scalar compare.
//
// Lane compaction. A level-synchronous sweep would cost max-path-length
// advances per lane; instead each tree walks a dense worklist of live
// lanes and retires a lane the moment it self-loops (ni == i), swapping
// the last live lane into its slot. Total advances equal the sum of
// actual path lengths (+1 self-loop detect per lane), the same work the
// scalar walk does -- but the lanes are independent, so the CPU overlaps
// their load chains instead of stalling on one dependent walk per sample.
// The retire branch is taken once per lane per tree and predicts well.

// BatchScratch holds the reusable buffers for one in-flight VotesBatch /
// ClassifyBatchInto call. The zero value is ready to use; buffers grow to
// the largest block seen and are retained, so steady-state batch
// classification performs no allocations. Not safe for concurrent use.
type BatchScratch struct {
	block []float64 // sanitized feature matrix, sample-major, m*width
	idx   []int32   // current node per live lane
	lane  []int32   // sample index per live lane (compacted with idx)
	votes []int32   // per-sample per-class tallies, m*numClasses
	sv    []int     // scalar-fallback vote buffer

	// Reach-mask sweep buffers (sweep.go).
	xT     []float64 // feature-major 64-lane chunk, width*64
	reach  []uint64  // per-node lane-occupancy masks, maxTreeNodes
	cmask  []uint64  // per-class leaf-lane masks for one tree
	votes8 []uint8   // per-class 64-lane byte vote counters, numClasses*64
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// buildBatchArena derives the packed batch mirror (meta/bthr/bthr32) from
// the scalar arena. It must run after the scalar arrays are final and in
// breadth-first order. When the model cannot be packed -- zero feature
// width, a child index too large for the packed field, or a threshold at
// or beyond ±MaxFloat64 (where gather-time sanitization would diverge
// from the scalar compare) -- it leaves batchable false and ClassifyBatch
// degrades to the scalar walk, keeping correctness unconditional.
func (f *Forest) buildBatchArena() {
	f.batchable = false
	total := len(f.feat)
	if f.width <= 0 || total == 0 {
		return
	}
	shift := uint32(bits.Len(uint(f.width - 1)))
	if shift == 0 {
		shift = 1
	}
	if uint(total-1) > uint(math.MaxInt32)>>shift {
		return
	}
	meta := make([]int32, total)
	bthr := make([]float64, total)
	exact32 := true
	for i, fi := range f.feat {
		if fi < 0 {
			meta[i] = int32(i) << shift
			bthr[i] = math.Inf(1)
			continue
		}
		t := f.thr[i]
		if !(t > -math.MaxFloat64 && t < math.MaxFloat64) {
			return
		}
		meta[i] = f.kids[2*i]<<shift | fi
		bthr[i] = t
		if exact32 && float64(float32(t)) != t {
			exact32 = false
		}
	}
	f.featShift = shift
	f.meta = meta
	f.bthr = bthr
	f.batchable = true

	f.buildSweepArena()
	if exact32 {
		f.bthr32 = make([]float32, total)
		for i, t := range bthr {
			f.bthr32[i] = float32(t)
		}
	}
}

// buildSweepArena derives the split-stream encoding the assembly sweep
// kernel consumes (see the Forest field comments and sweep.go). Internal
// nodes and leaves go into separate per-tree runs so the kernel's inner
// loops are branch-free; the feature index is pre-scaled to its byte-row
// offset in the 64-lane feature-major block (feature * 64 * 8) so the
// kernel masks it out ready to use. Must run after the scalar arena is
// final; bails (istarts stays nil, portable kernel serves all batches) if
// a packed field would overflow its 32-bit word.
func (f *Forest) buildSweepArena() {
	shift := f.featShift + 9 // child field sits above feature*512
	if shift >= 31 {
		return
	}
	nt := len(f.starts) - 1
	total := len(f.feat)
	nodes := make([]uint64, 0, total)
	thrs := make([]float64, 0, total)
	leaves := make([]uint64, 0, total)
	istarts := make([]int32, nt+1)
	lstarts := make([]int32, nt+1)
	maxTree := 0
	for t := 0; t < nt; t++ {
		istarts[t] = int32(len(nodes))
		lstarts[t] = int32(len(leaves))
		root := f.starts[t]
		n := int(f.starts[t+1] - root)
		if n > maxTree {
			maxTree = n
		}
		for j := int32(0); j < int32(n); j++ {
			i := root + j
			if f.feat[i] < 0 {
				leaves = append(leaves, uint64(uint32(j))|uint64(uint32(f.labels[i]))<<32)
				continue
			}
			child := f.kids[2*i] - root
			if uint32(child) >= 1<<(32-shift) {
				return
			}
			word := uint32(child)<<shift | uint32(f.feat[i])<<9
			nodes = append(nodes, uint64(uint32(j))|uint64(word)<<32)
			thrs = append(thrs, f.thr[i])
		}
	}
	istarts[nt] = int32(len(nodes))
	lstarts[nt] = int32(len(leaves))
	f.sweepNodes = nodes
	f.sweepThr = thrs
	f.sweepLeaves = leaves
	f.istarts = istarts
	f.lstarts = lstarts
	f.sweepShift = shift
	f.maxTreeNodes = maxTree
}

// Quantized reports whether the batched path evaluates float32 thresholds.
// True only when every split threshold in the model is exactly
// representable in float32, which makes the quantization lossless: the
// float32 compare is bit-identical to the float64 one for every input.
func (f *Forest) Quantized() bool { return f.bthr32 != nil }

// batchMin is the block size below which ClassifyBatchInto uses the scalar
// walk: tiny blocks cannot amortize the gather and per-tree lane resets.
const batchMin = 4

// VotesBatch tallies per-class votes for a block of feature vectors into
// dst, flattened sample-major (row i, length NumClasses, is the vote
// vector for vecs[i], indexed like Classes()). dst is resized, zeroed and
// returned, reallocating only when too small. Vote counts are identical
// to calling VotesInto per vector: vectors shorter than the trained width
// get all-zero rows, and NaN features route the same way the scalar
// compare does. sc may be nil (a temporary scratch is then allocated).
func (f *Forest) VotesBatch(dst []int32, vecs [][]float64, sc *BatchScratch) []int32 {
	m := len(vecs)
	nc := len(f.classes)
	if cap(dst) < m*nc {
		dst = make([]int32, m*nc)
	} else {
		dst = dst[:m*nc]
	}
	for i := range dst {
		dst[i] = 0
	}
	if m == 0 {
		return dst
	}
	if !f.batchable {
		f.votesScalarFallback(dst, vecs, sc)
		return dst
	}
	if sc == nil {
		sc = &BatchScratch{}
	}
	f.votesBatch(dst, vecs, sc)
	return dst
}

// votesScalarFallback services VotesBatch for models the packed encoding
// cannot represent.
func (f *Forest) votesScalarFallback(dst []int32, vecs [][]float64, sc *BatchScratch) {
	nc := len(f.classes)
	var sv []int
	if sc != nil {
		sv = sc.sv
	}
	for s, v := range vecs {
		sv = f.VotesInto(sv, v)
		row := dst[s*nc : (s+1)*nc]
		for c, n := range sv {
			row[c] = int32(n)
		}
	}
	if sc != nil {
		sc.sv = sv
	}
}

// votesBatch is the packed-arena kernel. dst must be zeroed m*nc.
func (f *Forest) votesBatch(dst []int32, vecs [][]float64, sc *BatchScratch) {
	if f.useSweep() {
		f.votesSweep(dst, vecs, sc)
		return
	}
	m := len(vecs)
	nc := len(f.classes)
	w := f.width

	sc.block = growF64(sc.block, m*w)
	sc.idx = growI32(sc.idx, m)
	sc.lane = growI32(sc.lane, m)
	block, idx, lane := sc.block, sc.idx, sc.lane

	// Gather: copy each classifiable vector into a dense sample-major
	// block (row s holds vecs[s]; the kernel indexes rows by sample),
	// clamping every value into the finite float64 range so the sign-bit
	// select below is always defined (see file comment). Vectors shorter
	// than the trained width are excluded from the lane set and keep
	// their all-zero vote rows -- the scalar short-vector contract.
	live := int32(0)
	for s, v := range vecs {
		if len(v) < w {
			continue
		}
		row := block[s*w : s*w+w]
		for d := 0; d < w; d++ {
			x := v[d]
			if !(x >= -math.MaxFloat64) { // NaN or -Inf
				if x < 0 { // -Inf
					x = -math.MaxFloat64
				} else { // NaN routes right everywhere, like the scalar walk
					x = math.MaxFloat64
				}
			} else if x > math.MaxFloat64 { // +Inf
				x = math.MaxFloat64
			}
			row[d] = x
		}
		lane[live] = int32(s)
		live++
	}
	if live == 0 {
		return
	}

	meta := f.meta
	labels := f.labels
	shift := f.featShift
	featMask := int32(1)<<shift - 1

	if f.bthr32 != nil {
		f.sweep32(dst, block, idx, lane, live, meta, labels, shift, featMask, nc, w)
		return
	}
	f.sweep64(dst, block, idx, lane, live, meta, labels, shift, featMask, nc, w)
}

// sweep64 walks every tree for the live lanes against float64 thresholds.
func (f *Forest) sweep64(dst []int32, block []float64, idx, lane []int32, live int32, meta, labels []int32, shift uint32, featMask int32, nc, w int) {
	bthr := f.bthr
	for t := 0; t < len(f.starts)-1; t++ {
		root := f.starts[t]
		// Reset the lane worklist; compaction below destroys its order,
		// but idx/lane swap in tandem so pairs stay aligned.
		for k := int32(0); k < live; k++ {
			idx[k] = root
		}
		active := live
		for active > 0 {
			for k := int32(0); k < active; {
				i := idx[k]
				mt := meta[i]
				x := block[int(lane[k])*w+int(mt&featMask)]
				b := int32(math.Float64bits(bthr[i]-x) >> 63)
				ni := mt>>shift + b
				if ni == i {
					dst[int(lane[k])*nc+int(labels[i])]++
					active--
					idx[k] = idx[active]
					lane[k], lane[active] = lane[active], lane[k]
					continue
				}
				idx[k] = ni
				k++
			}
		}
	}
}

// sweep32 is sweep64 against the quantized float32 threshold arena. The
// compare widens the threshold back to float64, which is exact, so
// routing is bit-identical to sweep64 whenever bthr32 exists.
func (f *Forest) sweep32(dst []int32, block []float64, idx, lane []int32, live int32, meta, labels []int32, shift uint32, featMask int32, nc, w int) {
	bthr := f.bthr32
	for t := 0; t < len(f.starts)-1; t++ {
		root := f.starts[t]
		for k := int32(0); k < live; k++ {
			idx[k] = root
		}
		active := live
		for active > 0 {
			for k := int32(0); k < active; {
				i := idx[k]
				mt := meta[i]
				x := block[int(lane[k])*w+int(mt&featMask)]
				b := int32(math.Float64bits(float64(bthr[i])-x) >> 63)
				ni := mt>>shift + b
				if ni == i {
					dst[int(lane[k])*nc+int(labels[i])]++
					active--
					idx[k] = idx[active]
					lane[k], lane[active] = lane[active], lane[k]
					continue
				}
				idx[k] = ni
				k++
			}
		}
	}
}

// batchPool recycles BatchScratch for ClassifyBatch, whose signature (the
// classify.BatchClassifier entry point) cannot take scratch.
var batchPool = sync.Pool{New: func() any { return new(BatchScratch) }}

// ClassifyBatch classifies a block of feature vectors, writing the
// majority-vote label and confidence for vecs[i] into labels[i] and
// confs[i] (both must have len(vecs) elements). Results are identical to
// calling Classify per vector; blocks of batchMin or more vectors go
// through the batched kernel, smaller ones (and models the packed arena
// cannot represent) take the scalar walk. Steady-state allocation-free.
func (f *Forest) ClassifyBatch(vecs [][]float64, labels []string, confs []float64) {
	sc := batchPool.Get().(*BatchScratch)
	f.ClassifyBatchInto(sc, vecs, labels, confs)
	batchPool.Put(sc)
}

// ClassifyBatchInto is ClassifyBatch with caller-owned scratch, for tight
// loops that want zero synchronization on the pool.
func (f *Forest) ClassifyBatchInto(sc *BatchScratch, vecs [][]float64, labels []string, confs []float64) {
	m := len(vecs)
	if m == 0 {
		return
	}
	_ = labels[m-1]
	_ = confs[m-1]
	if !f.batchable || m < batchMin {
		sv := sc.sv
		for i, v := range vecs {
			labels[i], confs[i], sv = f.ClassifyBuf(v, sv)
		}
		sc.sv = sv
		return
	}
	nc := len(f.classes)
	sc.votes = f.VotesBatch(sc.votes, vecs, sc)
	votes := sc.votes
	trees := float64(f.NumTrees())
	for i := 0; i < m; i++ {
		row := votes[i*nc : (i+1)*nc]
		best, bestN := 0, int32(-1)
		for c, n := range row {
			if n > bestN {
				best, bestN = c, n
			}
		}
		labels[i] = f.classes[best]
		confs[i] = float64(bestN) / trees
	}
}
