package forest

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"

	"repro/internal/engine"
)

// Sample is one labeled feature vector.
type Sample struct {
	Features []float64
	Label    string
}

// Dataset is a set of labeled samples with a stable class index.
type Dataset struct {
	samples []Sample
	classes []string
	index   map[string]int
}

// ErrEmptyDataset reports training on no data.
var ErrEmptyDataset = errors.New("forest: empty dataset")

// NewDataset builds a dataset from samples (copied shallowly; callers must
// not mutate the feature slices afterwards).
func NewDataset(samples []Sample) (*Dataset, error) {
	if len(samples) == 0 {
		return nil, ErrEmptyDataset
	}
	dims := len(samples[0].Features)
	set := map[string]bool{}
	for _, s := range samples {
		if len(s.Features) != dims {
			return nil, fmt.Errorf("forest: inconsistent feature count: %d vs %d", len(s.Features), dims)
		}
		set[s.Label] = true
	}
	classes := make([]string, 0, len(set))
	for c := range set {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	index := make(map[string]int, len(classes))
	for i, c := range classes {
		index[c] = i
	}
	ds := &Dataset{samples: samples, classes: classes, index: index}
	return ds, nil
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.samples) }

// Classes returns the sorted class labels.
func (d *Dataset) Classes() []string {
	out := make([]string, len(d.classes))
	copy(out, d.classes)
	return out
}

// Samples returns the underlying samples (read-only by convention).
func (d *Dataset) Samples() []Sample { return d.samples }

// Subset returns a dataset view containing the given sample indices but
// sharing the full class index (so confusion matrices stay aligned).
func (d *Dataset) Subset(idx []int) *Dataset {
	sub := make([]Sample, len(idx))
	for i, j := range idx {
		sub[i] = d.samples[j]
	}
	return &Dataset{samples: sub, classes: d.classes, index: d.index}
}

// Config holds the two random forest parameters the paper tunes in
// Fig. 12: K (number of trees) and F (random subspace size), plus the
// training seed.
type Config struct {
	// Trees is the paper's K; CAAI uses 80.
	Trees int
	// Subspace is the paper's F, the features considered per split;
	// CAAI uses 4 (Weka's default log2(7)+1 rounds to the same choice).
	Subspace int
	// MinLeaf stops splitting below this many samples (1 = grow fully,
	// no pruning, as the paper specifies).
	MinLeaf int
	// Seed makes training deterministic.
	Seed int64
	// Parallelism bounds concurrent tree construction; 0 means
	// GOMAXPROCS.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.Trees <= 0 {
		c.Trees = 80
	}
	if c.Subspace <= 0 {
		c.Subspace = 4
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 1
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// Forest is a trained random forest. Safe for concurrent classification.
type Forest struct {
	trees   []*tree
	classes []string
	// width is the feature-vector length the trees index into; Votes
	// refuses shorter inputs so a corrupt model or caller cannot panic
	// the classification hot path.
	width int
}

// Train grows cfg.Trees trees on bootstrap samples of ds, each split drawn
// from a random subspace of cfg.Subspace features. Tree construction runs
// in parallel but is deterministic for a fixed seed.
func Train(ds *Dataset, cfg Config) *Forest {
	cfg = cfg.withDefaults()
	n := ds.Len()
	features := make([][]float64, n)
	labels := make([]int, n)
	for i, s := range ds.samples {
		features[i] = s.Features
		labels[i] = ds.index[s.Label]
	}

	trees := make([]*tree, cfg.Trees)
	engine.Run(cfg.Trees, cfg.Parallelism, func(t int) {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(t)*7919))
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n) // bootstrap: sample with replacement
		}
		b := &treeBuilder{
			features: features,
			labels:   labels,
			classes:  len(ds.classes),
			subspace: cfg.Subspace,
			minLeaf:  cfg.MinLeaf,
			rng:      rng,
		}
		trees[t] = b.build(idx)
	})
	width := 0
	if n > 0 {
		width = len(ds.samples[0].Features)
	}
	return &Forest{trees: trees, classes: ds.classes, width: width}
}

// Classes returns the class labels the forest can emit.
func (f *Forest) Classes() []string {
	out := make([]string, len(f.classes))
	copy(out, f.classes)
	return out
}

// Classify returns the majority-vote label and its confidence (the
// fraction of trees voting for it).
func (f *Forest) Classify(features []float64) (string, float64) {
	votes := f.Votes(features)
	best, bestN := 0, -1
	for c, n := range votes {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return f.classes[best], float64(bestN) / float64(len(f.trees))
}

// Votes returns the per-class vote counts, indexed like Classes(). A
// vector shorter than the trained feature width gets zero votes across
// the board (and so classifies at zero confidence) instead of panicking
// mid-walk on an out-of-range feature index.
func (f *Forest) Votes(features []float64) []int {
	votes := make([]int, len(f.classes))
	if f.width > 0 && len(features) < f.width {
		return votes
	}
	for _, t := range f.trees {
		votes[t.classify(features)]++
	}
	return votes
}
