package forest

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/engine"
)

// Sample is one labeled feature vector.
type Sample struct {
	Features []float64
	Label    string
}

// Dataset is a set of labeled samples with a stable class index.
type Dataset struct {
	samples []Sample
	classes []string
	index   map[string]int
}

// ErrEmptyDataset reports training on no data.
var ErrEmptyDataset = errors.New("forest: empty dataset")

// NewDataset builds a dataset from samples (copied shallowly; callers must
// not mutate the feature slices afterwards).
func NewDataset(samples []Sample) (*Dataset, error) {
	if len(samples) == 0 {
		return nil, ErrEmptyDataset
	}
	dims := len(samples[0].Features)
	set := map[string]bool{}
	for _, s := range samples {
		if len(s.Features) != dims {
			return nil, fmt.Errorf("forest: inconsistent feature count: %d vs %d", len(s.Features), dims)
		}
		set[s.Label] = true
	}
	classes := make([]string, 0, len(set))
	for c := range set {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	index := make(map[string]int, len(classes))
	for i, c := range classes {
		index[c] = i
	}
	ds := &Dataset{samples: samples, classes: classes, index: index}
	return ds, nil
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.samples) }

// Classes returns the sorted class labels.
func (d *Dataset) Classes() []string {
	out := make([]string, len(d.classes))
	copy(out, d.classes)
	return out
}

// Samples returns the underlying samples (read-only by convention).
func (d *Dataset) Samples() []Sample { return d.samples }

// Subset returns a dataset view containing the given sample indices but
// sharing the full class index (so confusion matrices stay aligned).
func (d *Dataset) Subset(idx []int) *Dataset {
	sub := make([]Sample, len(idx))
	for i, j := range idx {
		sub[i] = d.samples[j]
	}
	return &Dataset{samples: sub, classes: d.classes, index: d.index}
}

// Config holds the two random forest parameters the paper tunes in
// Fig. 12: K (number of trees) and F (random subspace size), plus the
// training seed.
type Config struct {
	// Trees is the paper's K; CAAI uses 80.
	Trees int
	// Subspace is the paper's F, the features considered per split;
	// CAAI uses 4 (Weka's default log2(7)+1 rounds to the same choice).
	Subspace int
	// MinLeaf stops splitting below this many samples (1 = grow fully,
	// no pruning, as the paper specifies).
	MinLeaf int
	// Seed makes training deterministic.
	Seed int64
	// Parallelism bounds concurrent tree construction; 0 means
	// GOMAXPROCS.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.Trees <= 0 {
		c.Trees = 80
	}
	if c.Subspace <= 0 {
		c.Subspace = 4
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 1
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// leafMarker in the feature array marks a leaf node.
const leafMarker = int32(-1)

// Forest is a trained random forest. Safe for concurrent classification.
//
// All trees live in one contiguous structure-of-arrays arena laid out in
// level order (breadth-first per tree): node i splits on feat[i] at thr[i]
// with children kids[2i] and kids[2i+1] (absolute node indices), or is a
// leaf voting labels[i] when feat[i] < 0. Tree t occupies nodes
// [starts[t], starts[t+1]) with its root at starts[t]. The flat layout
// keeps the whole model in a handful of allocations and turns the per-tree
// walk into branchy-but-local slice indexing instead of pointer chasing
// across 80 separately allocated node slices.
//
// The breadth-first order places a node's two children adjacently
// (kids[2i+1] == kids[2i]+1, a BFS invariant), which is what the batched
// kernel in batch.go exploits: it stores each node as one packed int32
// (left-child index and split feature) plus one threshold, so a block of
// feature vectors advances through a tree level by level with branch-free
// compares. See buildBatchArena for the packed mirror and the optional
// float32 threshold quantization.
type Forest struct {
	classes []string
	// width is the feature-vector length the trees index into; VotesInto
	// refuses shorter inputs so a corrupt model or caller cannot panic
	// the classification hot path.
	width int

	feat   []int32
	thr    []float64
	kids   []int32
	labels []int32
	starts []int32

	// Batched-inference mirror of the arena (see batch.go). meta packs
	// left-child-index<<featShift | feature per node; bthr mirrors thr
	// with +Inf at leaves so leaves self-select branch-free; bthr32 is the
	// quantized threshold arena, built only when every split threshold is
	// exactly representable in float32 (lossless by construction). depth
	// is the per-tree level count. batchable gates the kernel: a model the
	// packed encoding cannot represent falls back to the scalar walk.
	meta      []int32
	bthr      []float64
	bthr32    []float32
	depth     []int32
	featShift uint32
	batchable bool

	// Sweep-kernel arenas (sweep.go). The assembly kernel streams a
	// tree's internal nodes and its leaves as two separate runs so
	// neither inner loop carries a leaf-vs-internal branch. sweepNodes[j]
	// packs an internal node's tree-local index (low 32 bits) with its
	// routing word (high 32 bits: tree-local left child << sweepShift |
	// feature byte-row offset); sweepThr holds the matching split
	// thresholds, loaded sequentially. sweepLeaves[j] packs a leaf's
	// tree-local index (low 32) with its class label (high 32).
	// istarts/lstarts delimit each tree's run; maxTreeNodes bounds the
	// per-tree reach-mask scratch. istarts is nil when the model is not
	// batchable or a packed field would overflow (the portable kernel
	// then serves every batch).
	sweepNodes   []uint64
	sweepThr     []float64
	sweepLeaves  []uint64
	istarts      []int32
	lstarts      []int32
	sweepShift   uint32
	maxTreeNodes int
}

// flatten fuses per-tree node slices into the arena, re-laying every tree
// in level order (breadth-first). Classifications are bit-identical to a
// depth-first layout -- only node order changes -- and Save accepts any
// children-after-parent order, so persistence still round-trips exactly.
// Nodes unreachable from a tree's root (possible only in hand-crafted
// model files; the builder never produces them) are dropped, which cannot
// change any classification.
func flatten(classes []string, width int, trees [][]treeNode) *Forest {
	// Pass 1: breadth-first order per tree. orders[t] lists tree-local
	// node ids in visit order; pos maps node id -> BFS position within
	// its tree; level holds the depth of orders[t][k].
	maxTree := 0
	for _, nodes := range trees {
		if len(nodes) > maxTree {
			maxTree = len(nodes)
		}
	}
	orders := make([][]int32, len(trees))
	pos := make([]int32, maxTree)
	level := make([]int32, maxTree)
	depth := make([]int32, len(trees))
	total := 0
	for t, nodes := range trees {
		order := make([]int32, 0, len(nodes))
		order = append(order, 0)
		pos[0], level[0] = 0, 0
		for k := 0; k < len(order); k++ {
			n := &nodes[order[k]]
			if n.leaf {
				continue
			}
			// Children are appended consecutively, which is what makes
			// kids[2i+1] == kids[2i]+1 hold arena-wide.
			pos[n.left] = int32(len(order))
			level[len(order)] = level[k] + 1
			order = append(order, n.left)
			pos[n.right] = int32(len(order))
			level[len(order)] = level[k] + 1
			order = append(order, n.right)
		}
		depth[t] = level[len(order)-1] + 1
		orders[t] = order
		total += len(order)

		// Pass 2 (interleaved per tree would clobber pos): record the
		// positions now while pos is valid for this tree, by rewriting
		// each node's children to BFS positions in place of ids.
		for _, j := range order {
			n := &nodes[j]
			if !n.leaf {
				n.left, n.right = pos[n.left], pos[n.right]
			}
		}
	}
	f := &Forest{
		classes: classes,
		width:   width,
		feat:    make([]int32, total),
		thr:     make([]float64, total),
		kids:    make([]int32, 2*total),
		labels:  make([]int32, total),
		starts:  make([]int32, len(trees)+1),
		depth:   depth,
	}
	off := int32(0)
	for t, nodes := range trees {
		f.starts[t] = off
		for k, j := range orders[t] {
			i := off + int32(k)
			n := &nodes[j]
			if n.leaf {
				f.feat[i] = leafMarker
				f.labels[i] = int32(n.label)
				continue
			}
			f.feat[i] = int32(n.feature)
			f.thr[i] = n.threshold
			f.kids[2*i] = off + n.left
			f.kids[2*i+1] = off + n.right
		}
		off += int32(len(orders[t]))
	}
	f.starts[len(trees)] = off
	f.buildBatchArena()
	return f
}

// NumTrees returns the number of trees in the forest.
func (f *Forest) NumTrees() int { return len(f.starts) - 1 }

// NumClasses returns the number of classes the forest votes over.
func (f *Forest) NumClasses() int { return len(f.classes) }

// Train grows cfg.Trees trees on bootstrap samples of ds, each split drawn
// from a random subspace of cfg.Subspace features. Tree construction runs
// in parallel but is deterministic for a fixed seed.
func Train(ds *Dataset, cfg Config) *Forest {
	cfg = cfg.withDefaults()
	n := ds.Len()
	features := make([][]float64, n)
	labels := make([]int, n)
	for i, s := range ds.samples {
		features[i] = s.Features
		labels[i] = ds.index[s.Label]
	}

	trees := make([][]treeNode, cfg.Trees)
	engine.Run(cfg.Trees, cfg.Parallelism, func(t int) {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(t)*7919))
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n) // bootstrap: sample with replacement
		}
		b := &treeBuilder{
			features: features,
			labels:   labels,
			classes:  len(ds.classes),
			subspace: cfg.Subspace,
			minLeaf:  cfg.MinLeaf,
			rng:      rng,
		}
		trees[t] = b.build(idx)
	})
	width := 0
	if n > 0 {
		width = len(ds.samples[0].Features)
	}
	return flatten(ds.classes, width, trees)
}

// Classes returns the class labels the forest can emit, indexed like the
// vote vectors. The returned slice is a shared immutable view into the
// model -- callers must not modify it. (It used to be copied defensively,
// which made every label lookup on the service hot path allocate; see
// TestForestClassesImmutableView / TestClassesZeroAllocs.)
func (f *Forest) Classes() []string { return f.classes }

// votePool recycles vote buffers so Classify (the classify.Classifier
// entry point, whose signature cannot take scratch) is allocation-free in
// steady state. Buffers hold *[]int to keep Put/Get off the heap.
var votePool = sync.Pool{New: func() any { return new([]int) }}

// Classify returns the majority-vote label and its confidence (the
// fraction of trees voting for it). Steady-state allocation-free: vote
// buffers come from an internal pool.
func (f *Forest) Classify(features []float64) (string, float64) {
	bp := votePool.Get().(*[]int)
	label, conf, votes := f.ClassifyBuf(features, *bp)
	*bp = votes
	votePool.Put(bp)
	return label, conf
}

// ClassifyBuf is Classify with caller-owned vote scratch: votes is resized
// (and reallocated only if too small) and returned for reuse, so tight
// loops classify with zero allocations.
func (f *Forest) ClassifyBuf(features []float64, votes []int) (string, float64, []int) {
	votes = f.VotesInto(votes, features)
	best, bestN := 0, -1
	for c, n := range votes {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return f.classes[best], float64(bestN) / float64(f.NumTrees()), votes
}

// Votes returns the per-class vote counts, indexed like Classes(). A
// vector shorter than the trained feature width gets zero votes across
// the board (and so classifies at zero confidence) instead of panicking
// mid-walk on an out-of-range feature index.
func (f *Forest) Votes(features []float64) []int {
	return f.VotesInto(nil, features)
}

// VotesInto tallies the per-class votes into dst and returns it, resized
// to the class count (reallocating only when dst is too small). It is the
// zero-allocation core of Votes/Classify: one flat walk over the arena per
// tree, no per-call slice churn. See Votes for the short-vector contract.
func (f *Forest) VotesInto(dst []int, features []float64) []int {
	n := len(f.classes)
	if cap(dst) < n {
		dst = make([]int, n)
	} else {
		dst = dst[:n]
	}
	for i := range dst {
		dst[i] = 0
	}
	if f.width > 0 && len(features) < f.width {
		return dst
	}
	for t := 0; t < len(f.starts)-1; t++ {
		i := f.starts[t]
		for {
			fi := f.feat[i]
			if fi < 0 {
				dst[f.labels[i]]++
				break
			}
			if features[fi] <= f.thr[i] {
				i = f.kids[2*i]
			} else {
				i = f.kids[2*i+1]
			}
		}
	}
	return dst
}
