package forest

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// clusterDataset builds an easily separable three-class dataset.
func clusterDataset(t *testing.T, n int, seed int64) *Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	centers := map[string][]float64{
		"a": {0, 0, 0},
		"b": {10, 10, 0},
		"c": {0, 10, 10},
	}
	var samples []Sample
	for label, c := range centers {
		for i := 0; i < n; i++ {
			f := make([]float64, len(c))
			for d := range f {
				f[d] = c[d] + rng.NormFloat64()
			}
			samples = append(samples, Sample{Features: f, Label: label})
		}
	}
	ds, err := NewDataset(samples)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestNewDatasetValidation(t *testing.T) {
	if _, err := NewDataset(nil); err == nil {
		t.Fatal("empty dataset must error")
	}
	_, err := NewDataset([]Sample{
		{Features: []float64{1, 2}, Label: "x"},
		{Features: []float64{1}, Label: "y"},
	})
	if err == nil {
		t.Fatal("inconsistent dimensions must error")
	}
}

func TestDatasetClassesSorted(t *testing.T) {
	ds := clusterDataset(t, 5, 1)
	want := []string{"a", "b", "c"}
	if got := ds.Classes(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Classes = %v", got)
	}
}

func TestDatasetSubsetSharesClassIndex(t *testing.T) {
	ds := clusterDataset(t, 5, 2)
	sub := ds.Subset([]int{0, 1})
	if !reflect.DeepEqual(sub.Classes(), ds.Classes()) {
		t.Fatal("subset must keep the full class index")
	}
	if sub.Len() != 2 {
		t.Fatalf("subset len = %d", sub.Len())
	}
}

func TestForestLearnsClusters(t *testing.T) {
	ds := clusterDataset(t, 50, 3)
	f := Train(ds, Config{Trees: 30, Subspace: 2, Seed: 4})
	correct := 0
	for _, s := range ds.Samples() {
		if got, conf := f.Classify(s.Features); got == s.Label {
			correct++
			if conf <= 0 || conf > 1 {
				t.Fatalf("confidence %v out of range", conf)
			}
		}
	}
	if acc := float64(correct) / float64(ds.Len()); acc < 0.98 {
		t.Fatalf("training accuracy = %v, want >= 0.98", acc)
	}
}

func TestForestDeterministicForSeed(t *testing.T) {
	ds := clusterDataset(t, 30, 5)
	probe := []float64{5, 5, 5}
	f1 := Train(ds, Config{Trees: 20, Subspace: 2, Seed: 42})
	f2 := Train(ds, Config{Trees: 20, Subspace: 2, Seed: 42})
	l1, c1 := f1.Classify(probe)
	l2, c2 := f2.Classify(probe)
	if l1 != l2 || c1 != c2 {
		t.Fatalf("nondeterministic: %s/%v vs %s/%v", l1, c1, l2, c2)
	}
}

func TestForestParallelismInvariance(t *testing.T) {
	ds := clusterDataset(t, 30, 6)
	probe := []float64{1, 9, 2}
	serial := Train(ds, Config{Trees: 16, Subspace: 2, Seed: 9, Parallelism: 1})
	parallel := Train(ds, Config{Trees: 16, Subspace: 2, Seed: 9, Parallelism: 8})
	v1, v2 := serial.Votes(probe), parallel.Votes(probe)
	if !reflect.DeepEqual(v1, v2) {
		t.Fatalf("parallel training changed the model: %v vs %v", v1, v2)
	}
}

func TestVotesSumToTrees(t *testing.T) {
	ds := clusterDataset(t, 20, 7)
	f := Train(ds, Config{Trees: 25, Subspace: 2, Seed: 10})
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		probe := []float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		votes := f.Votes(probe)
		sum := 0
		for _, v := range votes {
			sum += v
		}
		return sum == 25
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestClassifyReturnsKnownClass(t *testing.T) {
	ds := clusterDataset(t, 20, 8)
	f := Train(ds, Config{Trees: 10, Subspace: 3, Seed: 11})
	known := map[string]bool{"a": true, "b": true, "c": true}
	checker := func(x, y, z float64) bool {
		label, conf := f.Classify([]float64{x, y, z})
		return known[label] && conf > 0 && conf <= 1
	}
	if err := quick.Check(checker, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSingleClassDataset(t *testing.T) {
	samples := make([]Sample, 10)
	for i := range samples {
		samples[i] = Sample{Features: []float64{float64(i)}, Label: "only"}
	}
	ds, err := NewDataset(samples)
	if err != nil {
		t.Fatal(err)
	}
	f := Train(ds, Config{Trees: 5, Subspace: 1, Seed: 12})
	label, conf := f.Classify([]float64{3})
	if label != "only" || conf != 1 {
		t.Fatalf("got %s/%v", label, conf)
	}
}

func TestConstantFeaturesYieldLeaf(t *testing.T) {
	// Identical feature vectors with conflicting labels: no valid split
	// exists; training must terminate with majority leaves.
	samples := []Sample{
		{Features: []float64{1, 1}, Label: "x"},
		{Features: []float64{1, 1}, Label: "x"},
		{Features: []float64{1, 1}, Label: "y"},
	}
	ds, err := NewDataset(samples)
	if err != nil {
		t.Fatal(err)
	}
	f := Train(ds, Config{Trees: 3, Subspace: 2, Seed: 13})
	if label, _ := f.Classify([]float64{1, 1}); label != "x" {
		t.Fatalf("majority = %s, want x", label)
	}
}

func TestGini(t *testing.T) {
	if g := gini([]int{5, 0}, 5); g != 0 {
		t.Fatalf("pure gini = %v", g)
	}
	if g := gini([]int{5, 5}, 10); g != 0.5 {
		t.Fatalf("even gini = %v", g)
	}
	if g := gini(nil, 0); g != 0 {
		t.Fatalf("empty gini = %v", g)
	}
}

func TestConfusionMatrix(t *testing.T) {
	m := NewConfusionMatrix([]string{"a", "b"})
	m.Add("a", "a")
	m.Add("a", "a")
	m.Add("a", "b")
	m.Add("b", "b")
	m.Add("zz", "a") // unknown labels ignored
	if got := m.Accuracy(); got != 0.75 {
		t.Fatalf("accuracy = %v, want 0.75", got)
	}
	if got := m.ClassAccuracy("a"); got < 0.66 || got > 0.67 {
		t.Fatalf("class accuracy a = %v", got)
	}
	if got := m.Count("a", "b"); got != 1 {
		t.Fatalf("Count(a,b) = %d", got)
	}
	if m.String() == "" {
		t.Fatal("empty render")
	}
}

func TestCrossValidateSeparableData(t *testing.T) {
	ds := clusterDataset(t, 40, 14)
	m := CrossValidate(ds, Config{Trees: 15, Subspace: 2, Seed: 15}, 5, rand.New(rand.NewSource(16)))
	if acc := m.Accuracy(); acc < 0.95 {
		t.Fatalf("cross-validation accuracy = %v, want >= 0.95", acc)
	}
	// Every sample is validated exactly once.
	total := 0
	for _, a := range m.Classes() {
		for _, p := range m.Classes() {
			total += m.Count(a, p)
		}
	}
	if total != ds.Len() {
		t.Fatalf("validated %d samples, want %d", total, ds.Len())
	}
}

func TestValidThresholdHelper(t *testing.T) {
	if !validThreshold(1.5) || validThreshold(nan()) {
		t.Fatal("validThreshold misbehaves")
	}
}

func nan() float64 { return float64(0) / zero() }

func zero() float64 { return 0 }
