package classify

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"testing"
)

// constant is a trivial classifier used to exercise the codec registry.
type constant struct {
	Label string  `json:"label"`
	Conf  float64 `json:"conf"`
}

func (c constant) Name() string                         { return "Constant" }
func (c constant) Classify([]float64) (string, float64) { return c.Label, c.Conf }

type constantCodec struct{}

func (constantCodec) Backend() string { return "Constant" }

func (constantCodec) Encode(w io.Writer, c Classifier) error {
	cc, ok := c.(constant)
	if !ok {
		return fmt.Errorf("cannot encode %T", c)
	}
	return json.NewEncoder(w).Encode(cc)
}

func (constantCodec) Decode(r io.Reader) (Classifier, error) {
	var cc constant
	if err := json.NewDecoder(r).Decode(&cc); err != nil {
		return nil, err
	}
	return cc, nil
}

func init() { RegisterCodec(constantCodec{}) }

func TestEnvelopeRoundTrip(t *testing.T) {
	orig := constant{Label: "CUBIC2", Conf: 0.9}
	var buf bytes.Buffer
	if err := Save(&buf, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	label, conf := loaded.Classify(nil)
	if label != "CUBIC2" || conf != 0.9 {
		t.Fatalf("loaded model classifies as (%s, %v)", label, conf)
	}
}

// unregistered has no codec.
type unregistered struct{}

func (unregistered) Name() string                         { return "Mystery" }
func (unregistered) Classify([]float64) (string, float64) { return "", 0 }

func TestSaveUnknownBackend(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, unregistered{}); err == nil {
		t.Fatal("Save accepted a backend with no codec")
	}
}

func TestLoadUnknownBackend(t *testing.T) {
	doc := `{"version":1,"backend":"Mystery","model":{}}`
	if _, err := Load(strings.NewReader(doc)); err == nil {
		t.Fatal("Load accepted an unknown backend")
	}
}

func TestLoadBadVersion(t *testing.T) {
	doc := `{"version":42,"backend":"Constant","model":{"label":"x","conf":1}}`
	if _, err := Load(strings.NewReader(doc)); err == nil {
		t.Fatal("Load accepted a future envelope version")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json at all")); err == nil {
		t.Fatal("Load accepted garbage")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	RegisterCodec(constantCodec{})
}

func TestCodecsSorted(t *testing.T) {
	names := Codecs()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Codecs() not sorted: %v", names)
		}
	}
}
