// Package classify defines the classifier abstraction the CAAI pipeline is
// built on. CAAI step 3 ("classify") only needs a label and a confidence
// for a feature vector; everything that can produce those -- the random
// forest the paper settled on, the Weka comparison classifiers in
// internal/ml, or an out-of-tree experiment -- implements Classifier and
// plugs into core.Identifier, engine.IdentifyBatch, and the census runner
// unchanged.
//
// The package also defines the model persistence layer: a Codec serializes
// one classifier backend, and Save/Load wrap codecs in a self-describing
// versioned envelope so tools can write a trained model once and reload it
// without knowing the backend in advance.
package classify

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// Classifier is the common classification interface (moved here from
// internal/ml so the pipeline does not depend on one model family).
type Classifier interface {
	// Name identifies the classifier backend in reports.
	Name() string
	// Classify returns the predicted label and a confidence in [0, 1].
	Classify(features []float64) (string, float64)
}

// BatchClassifier is implemented by backends that can classify a block of
// feature vectors in one call (the random forest's reach-mask kernel
// amortizes per-tree work over 64 samples at a time). Implementations
// must produce results identical to calling Classify per vector -- the
// pipeline batches opportunistically wherever vectors pile up, and job
// outcomes must not depend on how they were grouped into blocks.
type BatchClassifier interface {
	Classifier
	// ClassifyBatch writes the label and confidence for vecs[i] into
	// labels[i] and confs[i]; both slices must have len(vecs) elements.
	ClassifyBatch(vecs [][]float64, labels []string, confs []float64)
}

// Batch classifies a block of vectors through c's batched entry point
// when it has one, and vector by vector otherwise. It is the dispatch
// helper the pipeline's block paths share, so every consumer gains the
// batched kernel the moment a backend implements BatchClassifier.
func Batch(c Classifier, vecs [][]float64, labels []string, confs []float64) {
	if len(vecs) == 0 {
		return
	}
	if bc, ok := c.(BatchClassifier); ok {
		bc.ClassifyBatch(vecs, labels, confs)
		return
	}
	for i, v := range vecs {
		labels[i], confs[i] = c.Classify(v)
	}
}

// Codec serializes trained classifiers of one backend. Implementations
// register themselves with RegisterCodec (typically from an init function)
// so Save and Load can dispatch on the backend name.
type Codec interface {
	// Backend is the name under which models are saved; it must match the
	// Name() of the classifiers the codec handles.
	Backend() string
	// Encode writes c to w.
	Encode(w io.Writer, c Classifier) error
	// Decode reads a classifier previously written by Encode.
	Decode(r io.Reader) (Classifier, error)
}

var (
	codecMu sync.RWMutex
	codecs  = map[string]Codec{}
)

// RegisterCodec makes a codec available to Save and Load. Registering two
// codecs for the same backend panics (a programming error, like a duplicate
// database/sql driver).
func RegisterCodec(c Codec) {
	codecMu.Lock()
	defer codecMu.Unlock()
	if _, dup := codecs[c.Backend()]; dup {
		panic("classify: duplicate codec for backend " + c.Backend())
	}
	codecs[c.Backend()] = c
}

// Codecs lists the registered backend names, sorted.
func Codecs() []string {
	codecMu.RLock()
	defer codecMu.RUnlock()
	out := make([]string, 0, len(codecs))
	for name := range codecs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func codecFor(backend string) (Codec, error) {
	codecMu.RLock()
	defer codecMu.RUnlock()
	c, ok := codecs[backend]
	if !ok {
		return nil, fmt.Errorf("classify: no codec registered for backend %q (have %v)", backend, Codecs())
	}
	return c, nil
}

// envelopeVersion guards the on-disk model format.
const envelopeVersion = 1

// envelope is the self-describing model file layout: the backend name
// selects the codec, Model holds the codec's own payload.
type envelope struct {
	Version int             `json:"version"`
	Backend string          `json:"backend"`
	Model   json.RawMessage `json:"model"`
}

// Save writes c to w as a versioned envelope using the codec registered
// for c.Name().
func Save(w io.Writer, c Classifier) error {
	codec, err := codecFor(c.Name())
	if err != nil {
		return err
	}
	var payload bytes.Buffer
	if err := codec.Encode(&payload, c); err != nil {
		return fmt.Errorf("classify: encoding %s model: %w", c.Name(), err)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(envelope{Version: envelopeVersion, Backend: c.Name(), Model: json.RawMessage(payload.Bytes())})
}

// Load reads a classifier previously written by Save, dispatching to the
// codec named in the envelope.
func Load(r io.Reader) (Classifier, error) {
	var env envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("classify: reading model envelope: %w", err)
	}
	if env.Version != envelopeVersion {
		return nil, fmt.Errorf("classify: unsupported model version %d (want %d)", env.Version, envelopeVersion)
	}
	codec, err := codecFor(env.Backend)
	if err != nil {
		return nil, err
	}
	c, err := codec.Decode(bytes.NewReader(env.Model))
	if err != nil {
		return nil, fmt.Errorf("classify: decoding %s model: %w", env.Backend, err)
	}
	return c, nil
}

// SaveFile writes c to path (see Save).
func SaveFile(path string, c Classifier) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a classifier from path (see Load).
func LoadFile(path string) (Classifier, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
