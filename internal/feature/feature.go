// Package feature implements CAAI step 2, feature extraction: from a valid
// window trace it estimates the ACK loss rate (the paper's Eq. 1), locates
// the boundary RTT where slow start ends, and derives the two TCP features
// -- the multiplicative decrease parameter beta and the window growth
// offsets G(3) and G(6) -- plus the VEGAS flag, forming the 7-element
// feature vector of Section V.
package feature

import (
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/trace"
)

// NumFeatures is the length of a feature vector.
const NumFeatures = 8

// Indices into a Vector.
const (
	BetaA = iota
	G3A
	G6A
	BetaB
	G3B
	G6B
	VegasFlag
	WmaxLog2
)

// Vector is the feature vector of a Web server: the paper's seven elements
// -- beta, G(3), G(6) for environments A and B, and the VEGAS flag (0 when
// the window never reached 64 packets in environment B) -- plus log2 of
// the wmax threshold the ladder settled on. The eighth element makes the
// RC-small / RENO-big distinction learnable: the paper's seven elements
// are wmax-invariant for RENO, so without the threshold (which CAAI always
// knows) the two classes coincide in feature space (see DESIGN.md).
type Vector [NumFeatures]float64

// String renders the vector for logs.
func (v Vector) String() string {
	return fmt.Sprintf("[betaA=%.3f g3A=%.1f g6A=%.1f betaB=%.3f g3B=%.1f g6B=%.1f flag=%.0f wmax=2^%.0f]",
		v[BetaA], v[G3A], v[G6A], v[BetaB], v[G3B], v[G6B], v[VegasFlag], v[WmaxLog2])
}

// Slice returns the vector as a float slice for classifiers.
func (v Vector) Slice() []float64 { return v[:] }

// ACK loss estimate clamps from Section V-A.
const (
	minAckLoss = 0.15
	maxAckLoss = 0.60
)

// Beta clamps from Section V-B: values inside [minBeta, maxBeta] are kept,
// values below the plausible range (only WESTWOOD+ produces them) map to 0.
const (
	minBeta = 0.5
	maxBeta = 2.0
	// betaFloor is the threshold below which a measured beta is treated
	// as "window stayed far below w(tmo)" and reported as 0.
	betaFloor = 0.45
)

// consecutiveFails is how many consecutive non-doubling RTTs confirm the
// boundary.
const consecutiveFails = 3

// Extraction carries the per-environment features and diagnostics.
type Extraction struct {
	// Beta is the multiplicative decrease parameter w(l)/w(tmo), clamped
	// per the paper; 0 when the boundary RTT was not found or the window
	// stayed far below w(tmo).
	Beta float64
	// G3 and G6 are the growth offsets w(l+3)-w(l) and w(l+6)-w(l).
	G3 float64
	G6 float64
	// BoundaryIdx is the boundary round's index into the nonzero
	// post-timeout windows, or -1.
	BoundaryIdx int
	// AckLoss is the final Eq. 1 loss estimate used for the boundary.
	AckLoss float64
	// Found reports whether the boundary RTT search succeeded.
	Found bool
}

// Scratch holds the reusable buffers of one extraction pipeline. A zero
// Scratch is ready to use; reusing one across extractions (ExtractWith /
// ExtractEnvWith) makes feature extraction allocation-free in steady
// state. Not safe for concurrent use.
type Scratch struct {
	// loss accumulates the Eq. 1 ACK-loss samples of the boundary scan.
	loss stats.Sample
}

// ExtractEnv extracts the features of one environment's trace.
func ExtractEnv(t *trace.Trace) Extraction {
	var sc Scratch
	return ExtractEnvWith(&sc, t)
}

// ExtractEnvWith is ExtractEnv with caller-owned scratch buffers.
func ExtractEnvWith(sc *Scratch, t *trace.Trace) Extraction {
	out := Extraction{BoundaryIdx: -1, AckLoss: minAckLoss}
	if t == nil || !t.Valid() {
		return out
	}
	q := t.PostNonzero()
	wTmo := t.WTmo()
	if len(q) < 2 || wTmo <= 0 {
		return out
	}

	// Scan for the boundary RTT. Rounds that still double (given the
	// running ACK-loss estimate) contribute loss samples p_r =
	// (2*w_r - w_{r+1}) / w_r; the boundary is the first round opening a
	// run of three consecutive non-doubling RTTs.
	sc.loss.Reset()
	boundary := -1
	pHat := minAckLoss
	for i := 1; i < len(q); i++ {
		pHat = stats.Clamp(sc.loss.MeanCI95(), minAckLoss, maxAckLoss)
		if failsDoubling(q, i, pHat) {
			run := 1
			for j := i + 1; j < len(q) && run < consecutiveFails; j++ {
				if !failsDoubling(q, j, pHat) {
					break
				}
				run++
			}
			// Accept shorter runs only at the very end of the trace.
			if run >= consecutiveFails || i+run >= len(q) {
				boundary = i
				break
			}
		}
		if q[i-1] > 0 {
			p := (2*float64(q[i-1]) - float64(q[i])) / float64(q[i-1])
			sc.loss.Add(stats.Clamp(p, 0, 1))
		}
	}
	out.AckLoss = pHat
	if boundary < 0 {
		return out // pure doubling throughout: no boundary, beta = 0
	}
	out.Found = true
	out.BoundaryIdx = boundary

	wl := float64(q[boundary])
	beta := wl / float64(wTmo)
	switch {
	case beta < betaFloor:
		// The window stays far below w(tmo) (the WESTWOOD+ case of
		// Fig. 3(m)): report 0.
		out.Beta = 0
	default:
		out.Beta = stats.Clamp(beta, minBeta, maxBeta)
	}
	out.G3 = float64(q[min(boundary+3, len(q)-1)]) - wl
	out.G6 = float64(q[min(boundary+6, len(q)-1)]) - wl
	return out
}

// failsDoubling reports whether round i did NOT grow its window by one per
// ACK relative to round i-1, under ACK loss estimate pHat.
func failsDoubling(q []int, i int, pHat float64) bool {
	return float64(q[i]) < 2*(1-pHat)*float64(q[i-1])
}

// vegasFlagThreshold: the flag is 0 when the environment B window never
// reaches 64 packets.
const vegasFlagThreshold = 64

// Extract builds the full 7-element feature vector from the environment A
// and B traces. TraceB may be a no-timeout trace (the VEGAS signature); its
// features are then zero and the flag is 0.
func Extract(ta, tb *trace.Trace) Vector {
	var sc Scratch
	return ExtractWith(&sc, ta, tb)
}

// ExtractWith is Extract with caller-owned scratch buffers, for pipelines
// that extract many vectors and want zero steady-state allocations.
func ExtractWith(sc *Scratch, ta, tb *trace.Trace) Vector {
	var v Vector
	a := ExtractEnvWith(sc, ta)
	v[BetaA], v[G3A], v[G6A] = a.Beta, a.G3, a.G6
	if tb != nil && tb.Valid() && tb.MaxWindow() >= vegasFlagThreshold {
		b := ExtractEnvWith(sc, tb)
		v[BetaB], v[G3B], v[G6B] = b.Beta, b.G3, b.G6
		v[VegasFlag] = 1
	}
	if ta != nil && ta.WmaxThreshold > 0 {
		v[WmaxLog2] = math.Log2(float64(ta.WmaxThreshold))
	}
	return v
}
