package feature

import "testing"

// TestExtractWithZeroAllocs pins the zero-allocation contract of feature
// extraction with reused scratch: after one warm-up call (which sizes the
// loss-sample buffer), extracting the full A+B vector must not allocate.
func TestExtractWithZeroAllocs(t *testing.T) {
	ta, tb := renoTrace(), renoTrace()
	var sc Scratch
	ExtractWith(&sc, ta, tb) // warm the scratch
	if allocs := testing.AllocsPerRun(200, func() {
		ExtractWith(&sc, ta, tb)
	}); allocs != 0 {
		t.Fatalf("ExtractWith allocates %v per run, want 0", allocs)
	}
}

// TestExtractWithMatchesExtract: the scratch path is result-identical to
// the allocating convenience wrapper.
func TestExtractWithMatchesExtract(t *testing.T) {
	var sc Scratch
	for i := 0; i < 3; i++ {
		want := Extract(renoTrace(), renoTrace())
		got := ExtractWith(&sc, renoTrace(), renoTrace())
		if got != want {
			t.Fatalf("ExtractWith = %v, Extract = %v", got, want)
		}
	}
}
